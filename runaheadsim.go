// Package runaheadsim is a cycle-level CPU simulator reproducing "Filtered
// Runahead Execution with a Runahead Buffer" (Hashemi & Patt, MICRO-48,
// 2015).
//
// The simulated machine is the paper's Table 1 system: a 4-wide out-of-order
// core with a 192-entry reorder buffer, a 32KB+32KB/1MB write-back cache
// hierarchy, a DDR3 memory system with bank conflicts and FR-FCFS
// scheduling, a POWER4-style stream prefetcher with feedback-directed
// throttling, and six runahead schemes: none, traditional runahead, the
// runahead buffer, the runahead buffer with a chain cache, the hybrid policy
// of Figure 8, and a feedback-directed adaptive hybrid (an extension beyond
// the paper).
//
// The quickest way in:
//
//	res, err := runaheadsim.Run(runaheadsim.Config{
//	    Benchmark: "mcf",
//	    Mode:      runaheadsim.ModeHybrid,
//	})
//	fmt.Printf("IPC %.2f (%.1f%% over baseline)\n", res.IPC, res.IPCDeltaPct)
//
// Workloads are synthetic stand-ins for SPEC CPU2006 (the paper's suite is
// not redistributable); Benchmarks lists all 29. Every table and figure in
// the paper's evaluation can be regenerated with RunExperiment or the
// cmd/runahead-sweep tool; see DESIGN.md and EXPERIMENTS.md.
package runaheadsim

import (
	"fmt"
	"sort"
	"strings"

	"runaheadsim/internal/core"
	"runaheadsim/internal/energy"
	"runaheadsim/internal/harness"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// Mode selects the runahead scheme.
type Mode string

// The Section 6 systems, plus the adaptive-hybrid extension.
const (
	ModeBaseline         Mode = "baseline"
	ModeRunahead         Mode = "runahead"
	ModeRunaheadBuffer   Mode = "runahead-buffer"
	ModeRunaheadBufferCC Mode = "runahead-buffer+cc"
	ModeHybrid           Mode = "hybrid"
	ModeAdaptiveHybrid   Mode = "adaptive-hybrid"
)

// Modes lists all modes.
func Modes() []Mode {
	return []Mode{ModeBaseline, ModeRunahead, ModeRunaheadBuffer, ModeRunaheadBufferCC, ModeHybrid, ModeAdaptiveHybrid}
}

func (m Mode) coreMode() (core.Mode, error) {
	switch m {
	case ModeBaseline, "":
		return core.ModeNone, nil
	case ModeRunahead:
		return core.ModeTraditional, nil
	case ModeRunaheadBuffer:
		return core.ModeBuffer, nil
	case ModeRunaheadBufferCC:
		return core.ModeBufferCC, nil
	case ModeHybrid:
		return core.ModeHybrid, nil
	case ModeAdaptiveHybrid:
		return core.ModeAdaptive, nil
	default:
		return 0, fmt.Errorf("runaheadsim: unknown mode %q (have %v)", m, Modes())
	}
}

// Config selects one simulation.
type Config struct {
	// Benchmark is one of Benchmarks(); see the workload documentation for
	// what each synthetic kernel models.
	Benchmark string
	// Mode selects the runahead scheme (default baseline).
	Mode Mode
	// Enhancements applies the ISCA'05 runahead-efficiency policies (used by
	// the paper's "Runahead Enhancements" and Hybrid systems).
	Enhancements bool
	// Prefetcher enables the stream prefetcher.
	Prefetcher bool
	// DepTrack enables the dependence-walk instrumentation behind Figures
	// 2-5 (slower to simulate, no effect on timing).
	DepTrack bool
	// WarmupUops run before measurement begins (0 = automatic).
	WarmupUops uint64
	// MeasureUops is the measured instruction budget (0 = 150k).
	MeasureUops uint64
	// TimelineInterval, when positive, samples IPC/occupancy/mode every N
	// cycles of the measured region; the samples land in Result.Timeline.
	TimelineInterval int64
	// TimelineSamples bounds the retained timeline ring (0 = 4096). When the
	// run outlives the ring the oldest samples are evicted.
	TimelineSamples int
	// Check attaches the simcheck runtime sanitizer: a lockstep oracle
	// validating every commit against the functional interpreter, plus
	// per-cycle structural invariants. A violation panics with the
	// offending uop, cycle, and CPI-stack context. See DESIGN.md
	// "Correctness tooling".
	Check bool
	// WatchdogCycles overrides the core's deadlock watchdog: positive sets
	// the no-progress cycle budget, negative disables it, 0 keeps the
	// default.
	WatchdogCycles int64
	// FlightDumpDir, when non-empty, is where a dying run writes its flight
	// recorder (the ring of recent trace events every core keeps) as JSONL
	// before the panic propagates. See DESIGN.md "Live telemetry & flight
	// recorder".
	FlightDumpDir string
	// Monitor, when non-nil, receives live phase/progress callbacks from
	// the run (telemetry.Tracker satisfies this; so does any equivalent
	// implementation). Must be safe for concurrent use.
	Monitor Monitor
}

// Monitor receives live progress callbacks from simulated runs; it mirrors
// the harness monitor interface so callers outside the module can plug in a
// telemetry tracker (or their own implementation) without importing internal
// packages. Implementations must be safe for concurrent use.
type Monitor interface {
	RunStart(bench, config string)
	RunDone(bench, config string)
	Phase(bench, config string, interval int, phase string, total uint64)
	Progress(bench, config string, interval int, done uint64)
	Done(bench, config string, interval int)
}

// Result summarizes a simulation.
type Result struct {
	Benchmark string
	Mode      Mode

	// Headline metrics.
	IPC         float64
	IPCDeltaPct float64 // vs. the no-prefetching baseline of the same benchmark
	Cycles      int64
	Committed   uint64
	MPKI        float64
	MemStallPct float64

	// Runahead behaviour.
	RunaheadIntervals    uint64
	MissesPerInterval    float64
	RunaheadBufferCycles int64
	ChainCacheHitRate    float64

	// Energy (synthetic microjoules; see internal/energy).
	EnergyUJ       float64
	EnergyDeltaPct float64 // vs. the no-prefetching baseline
	// EnergyBreakdown carries the per-component split behind EnergyUJ.
	EnergyBreakdown energy.Breakdown

	// DRAM traffic.
	DRAMRequests    uint64
	TrafficDeltaPct float64

	// Chains holds Figure 7-style renderings of the dependence chains left
	// in the chain cache when the run ended (buffer modes only).
	Chains []string

	// Timeline holds the measured region's interval samples when
	// Config.TimelineInterval was set (nil otherwise). Use its WriteCSV /
	// WriteJSON methods to export.
	Timeline *stats.Timeline

	// Stats exposes every raw counter for advanced use.
	Stats *core.Stats
}

// Benchmarks returns the 29 workload names in the paper's Figure 1 order
// (lowest to highest memory intensity).
func Benchmarks() []string { return workload.Names() }

// MediumHighBenchmarks returns the 13 medium and high memory-intensity
// workloads most of the evaluation averages over (Table 2).
func MediumHighBenchmarks() []string {
	var out []string
	for _, s := range workload.MediumHigh() {
		out = append(out, s.Name)
	}
	return out
}

// Run simulates one benchmark under one configuration and also runs the
// matching no-prefetching baseline so the Result can report deltas.
func Run(cfg Config) (Result, error) {
	cm, err := cfg.Mode.coreMode()
	if err != nil {
		return Result{}, err
	}
	if _, ok := workload.SpecOf(cfg.Benchmark); !ok {
		names := Benchmarks()
		sort.Strings(names)
		return Result{}, fmt.Errorf("runaheadsim: unknown benchmark %q (have %s)",
			cfg.Benchmark, strings.Join(names, ", "))
	}
	opts := harness.Options{
		MeasureUops:      cfg.MeasureUops,
		WarmupUops:       cfg.WarmupUops,
		TimelineInterval: cfg.TimelineInterval,
		TimelineSamples:  cfg.TimelineSamples,
		Check:            cfg.Check,
		WatchdogCycles:   cfg.WatchdogCycles,
		FlightDumpDir:    cfg.FlightDumpDir,
	}
	if cfg.Monitor != nil {
		opts.Monitor = cfg.Monitor
	}
	r := harness.NewRunner(opts)
	rc := harness.RunConfig{Mode: cm, Enhancements: cfg.Enhancements, Prefetch: cfg.Prefetcher, DepTrack: cfg.DepTrack}
	res := r.Result(cfg.Benchmark, rc)
	base := res
	if rc != harness.Baseline {
		base = r.Result(cfg.Benchmark, harness.Baseline)
	}
	st := res.Stats
	out := Result{
		Benchmark:            cfg.Benchmark,
		Mode:                 cfg.Mode,
		IPC:                  res.IPC,
		IPCDeltaPct:          100 * (res.IPC/base.IPC - 1),
		Cycles:               st.Cycles,
		Committed:            st.Committed,
		MPKI:                 res.MPKI,
		MemStallPct:          res.MemStallPct,
		RunaheadIntervals:    st.RunaheadIntervals,
		RunaheadBufferCycles: st.RunaheadBufferCycles,
		EnergyUJ:             res.Energy.Total(),
		EnergyDeltaPct:       100 * (res.Energy.Total()/base.Energy.Total() - 1),
		EnergyBreakdown:      res.Energy,
		DRAMRequests:         res.DRAMRequests,
		TrafficDeltaPct:      100 * (float64(res.DRAMRequests)/float64(base.DRAMRequests) - 1),
		Chains:               res.Chains,
		Timeline:             res.Timeline,
		Stats:                st,
	}
	if st.RunaheadIntervals > 0 {
		out.MissesPerInterval = float64(st.RunaheadMissesLLC) / float64(st.RunaheadIntervals)
	}
	if hm := st.ChainCacheHits + st.ChainCacheMisses; hm > 0 {
		out.ChainCacheHitRate = float64(st.ChainCacheHits) / float64(hm)
	}
	if out.Mode == "" {
		out.Mode = ModeBaseline
	}
	return out, nil
}

// ExperimentIDs lists every regenerable paper artifact, in paper order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range harness.Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// RunExperiment regenerates one table or figure ("table1", "figure9", ...)
// and returns it rendered as text. measureUops of 0 selects the default
// budget. Runs are not shared across calls; use cmd/runahead-sweep for a
// full shared-cache sweep.
func RunExperiment(id string, measureUops uint64) (string, error) {
	for _, e := range harness.Experiments() {
		if e.ID == id {
			r := harness.NewRunner(harness.Options{MeasureUops: measureUops})
			t := e.Build(r)
			var sb strings.Builder
			t.Render(&sb)
			return sb.String(), nil
		}
	}
	return "", fmt.Errorf("runaheadsim: unknown experiment %q (have %s)",
		id, strings.Join(ExperimentIDs(), ", "))
}
