package runaheadsim

// This file is the `go test -bench` entry point for regenerating the paper's
// artifacts: one benchmark per table and figure, plus ablation benches for
// the design choices DESIGN.md calls out, and a simulator-throughput bench.
//
// Each figure bench runs the same harness cmd/runahead-sweep uses, scaled
// down (a representative benchmark subset, small instruction budgets) so the
// whole suite completes in minutes; the rendered table is logged, and a key
// aggregate is reported as a custom metric. For full-fidelity regeneration
// run:
//
//	go run ./cmd/runahead-sweep -uops 300000
//
// EXPERIMENTS.md records a full run against the paper's numbers.

import (
	"strconv"
	"strings"
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/harness"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// benchSubset is a representative slice of the suite: two low, one medium,
// and four high-intensity benchmarks covering all kernel families.
var benchSubset = []string{"calculix", "gobmk", "zeusmp", "omnetpp", "sphinx3", "libquantum", "mcf"}

const benchUops = 30_000

func newBenchRunner() *harness.Runner {
	return harness.NewRunner(harness.Options{
		MeasureUops: benchUops,
		WarmupUops:  benchUops,
		Benchmarks:  benchSubset,
	})
}

// lastCell parses the numeric value out of the final cell of a table row
// (strips "%" suffixes).
func lastCell(t harness.Table, row int) float64 {
	cells := t.Rows[row]
	s := strings.TrimSuffix(cells[len(cells)-1], "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func renderTable(t harness.Table) string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// benchExperiment regenerates one artifact per iteration and logs it once.
func benchExperiment(b *testing.B, id string, metric func(harness.Table) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		for _, e := range harness.Experiments() {
			if e.ID != id {
				continue
			}
			t := e.Build(r)
			if i == 0 {
				b.Log("\n" + renderTable(t))
				if metric != nil {
					name, v := metric(t)
					b.ReportMetric(v, name)
				}
			}
		}
	}
}

func BenchmarkTable1Config(b *testing.B) { benchExperiment(b, "table1", nil) }
func BenchmarkTable2MPKI(b *testing.B)   { benchExperiment(b, "table2", nil) }

func BenchmarkFigure1StallCycles(b *testing.B) {
	benchExperiment(b, "figure1", func(t harness.Table) (string, float64) {
		// Stall percentage of the most memory-bound benchmark in the subset.
		return "mcf-stall-%", lastCellOf(t, "mcf", 1)
	})
}

func BenchmarkFigure2SourceData(b *testing.B)      { benchExperiment(b, "figure2", nil) }
func BenchmarkFigure3ChainOps(b *testing.B)        { benchExperiment(b, "figure3", nil) }
func BenchmarkFigure4ChainRepetition(b *testing.B) { benchExperiment(b, "figure4", nil) }
func BenchmarkFigure5ChainLength(b *testing.B)     { benchExperiment(b, "figure5", nil) }

func BenchmarkFigure9Performance(b *testing.B) {
	benchExperiment(b, "figure9", func(t harness.Table) (string, float64) {
		return "hybrid-gmean-%", lastCell(t, len(t.Rows)-1)
	})
}

func BenchmarkFigure10MLP(b *testing.B) {
	benchExperiment(b, "figure10", func(t harness.Table) (string, float64) {
		// Mean runahead-buffer misses per interval (column RB of the Mean row).
		s := strings.TrimSuffix(t.Rows[len(t.Rows)-1][2], "%")
		v, _ := strconv.ParseFloat(s, 64)
		return "buffer-misses/interval", v
	})
}

func BenchmarkFigure11BufferCycles(b *testing.B) {
	benchExperiment(b, "figure11", func(t harness.Table) (string, float64) {
		return "buffer-cycles-%", lastCell(t, len(t.Rows)-1)
	})
}

func BenchmarkFigure12ChainCacheHits(b *testing.B) {
	benchExperiment(b, "figure12", func(t harness.Table) (string, float64) {
		return "chain-cache-hit-%", lastCell(t, len(t.Rows)-1)
	})
}

func BenchmarkFigure13ChainMatch(b *testing.B) { benchExperiment(b, "figure13", nil) }

func BenchmarkFigure14HybridSplit(b *testing.B) {
	benchExperiment(b, "figure14", func(t harness.Table) (string, float64) {
		return "hybrid-buffer-%", lastCell(t, len(t.Rows)-1)
	})
}

func BenchmarkFigure15PrefetchPerf(b *testing.B) {
	benchExperiment(b, "figure15", func(t harness.Table) (string, float64) {
		return "hybrid+pf-gmean-%", lastCell(t, len(t.Rows)-1)
	})
}

func BenchmarkFigure16Traffic(b *testing.B) {
	benchExperiment(b, "figure16", func(t harness.Table) (string, float64) {
		return "pf-traffic-%", lastCell(t, len(t.Rows)-1)
	})
}

func BenchmarkFigure17Energy(b *testing.B) {
	benchExperiment(b, "figure17", func(t harness.Table) (string, float64) {
		return "hybrid-energy-%", lastCell(t, len(t.Rows)-1)
	})
}

func BenchmarkFigure18EnergyPF(b *testing.B) {
	benchExperiment(b, "figure18", func(t harness.Table) (string, float64) {
		return "hybrid+pf-energy-%", lastCell(t, len(t.Rows)-1)
	})
}

// lastCellOf finds the row labelled name and parses column col.
func lastCellOf(t harness.Table, name string, col int) float64 {
	for _, row := range t.Rows {
		if row[0] == name {
			v, _ := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			return v
		}
	}
	return 0
}

// BenchmarkAlg1ChainGen measures dependence-chain generation in isolation:
// the IPC of the pure buffer system on the Figure 7-style workload, where
// every interval exercises Algorithm 1 or the chain cache.
func BenchmarkAlg1ChainGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Mode = core.ModeBuffer
		c := core.New(cfg, workload.MustLoad("mcf"))
		st := c.Run(benchUops)
		if i == 0 {
			b.ReportMetric(float64(st.ChainsGenerated), "chains")
			b.ReportMetric(stats.Ratio(uint64(st.ChainGenCycles), st.ChainsGenerated), "cycles/chain")
		}
	}
}

// --- Ablations --------------------------------------------------------------

// ablate runs mcf under the buffer+chain-cache system with a modified
// configuration and reports the IPC delta vs the Table 1 configuration.
func ablate(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		run := func(mut bool) float64 {
			cfg := core.DefaultConfig()
			cfg.Mode = core.ModeBufferCC
			if mut {
				mutate(&cfg)
			}
			c := core.New(cfg, workload.MustLoad("mcf"))
			c.Run(benchUops)
			c.ResetStats()
			return c.Run(benchUops).IPC()
		}
		baseIPC, mutIPC := run(false), run(true)
		if i == 0 {
			b.ReportMetric(100*(mutIPC/baseIPC-1), "ipc-delta-%")
		}
	}
}

// BenchmarkAblationChainLength16 halves the 32-uop chain cap (Section 5's
// sensitivity analysis picked 32).
func BenchmarkAblationChainLength16(b *testing.B) {
	ablate(b, func(c *core.Config) { c.MaxChainLength = 16; c.RunaheadBufferSize = 16 })
}

// BenchmarkAblationChainCache8 grows the deliberately small 2-entry chain
// cache (Section 4.4 argues small is better, so stale chains age out).
func BenchmarkAblationChainCache8(b *testing.B) {
	ablate(b, func(c *core.Config) { c.ChainCacheEntries = 8 })
}

// BenchmarkAblationNoChainCache removes the chain cache entirely (the
// "Runahead Buffer" bar of Figure 9).
func BenchmarkAblationNoChainCache(b *testing.B) {
	ablate(b, func(c *core.Config) { c.Mode = core.ModeBuffer })
}

// BenchmarkAblationSlowRegSearch halves the dependence-chain generation
// bandwidth (one destination-CAM search per cycle instead of two).
func BenchmarkAblationSlowRegSearch(b *testing.B) {
	ablate(b, func(c *core.Config) { c.RegSearchesPerCycle = 1 })
}

// BenchmarkSimulatorThroughput reports raw simulation speed.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeHybrid
	p := workload.MustLoad("mcf")
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		c := core.New(cfg, p)
		committed += c.Run(50_000).Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "uops/s")
}
