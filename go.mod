module runaheadsim

go 1.22
