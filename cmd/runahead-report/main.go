// Command runahead-report evaluates every headline quantitative claim of
// the paper against this reproduction and prints a verdict table: paper
// value, measured value, and whether the shape (sign, rough magnitude,
// ordering) reproduces.
//
//	runahead-report
//	runahead-report -uops 300000
package main

import (
	"flag"
	"fmt"
	"os"

	"runaheadsim/internal/harness"
)

func main() {
	var (
		uops     = flag.Uint64("uops", 150_000, "measured micro-ops per run")
		quiet    = flag.Bool("q", false, "suppress progress output")
		asJSON   = flag.Bool("json", false, "emit the verdict table as machine-readable JSON")
		cpiStack = flag.Bool("cpi", false, "also emit the CPI-stack breakdown table")
	)
	flag.Parse()

	opts := harness.Options{MeasureUops: *uops}
	if !*quiet {
		opts.Progress = func(bench, config string) {
			fmt.Fprintf(os.Stderr, "running %-12s %s\n", bench, config)
		}
	}
	r := harness.NewRunner(opts)
	tables := []harness.Table{harness.Report(r)}
	if *cpiStack {
		tables = append(tables, harness.CPIStack(r))
	}
	for _, t := range tables {
		if *asJSON {
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		t.Render(os.Stdout)
	}
}
