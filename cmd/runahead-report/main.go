// Command runahead-report evaluates every headline quantitative claim of
// the paper against this reproduction and prints a verdict table: paper
// value, measured value, and whether the shape (sign, rough magnitude,
// ordering) reproduces. With -cores it appends the multi-programmed table:
// per-core IPC, weighted speedup, and slowdown fairness for an N-core mix
// sharing one LLC + DRAM, baseline vs runahead buffer.
//
// With -sample the detailed runs behind the verdicts are sampled instead of
// full-detail, and -sample-mode=phase appends a table of per-metric 95%
// confidence intervals next to the phase-weighted estimates.
//
// With -screen the runs are screened through the calibrated analytical twin
// (-twin points at the artifact): only promoted and out-of-domain pairs
// simulate in detail, the rest are twin predictions, and a provenance table
// naming each bench's tier rides along in both text and -json output.
//
//	runahead-report
//	runahead-report -uops 300000
//	runahead-report -sample -sample-mode=phase
//	runahead-report -screen -twin twin_coeffs.json -json
//	runahead-report -cores 4
//	runahead-report -cores 2 -mix libquantum,mcf -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"runaheadsim/internal/harness"
	"runaheadsim/internal/twin"
)

func main() {
	var (
		uops     = flag.Uint64("uops", 150_000, "measured micro-ops per run")
		quiet    = flag.Bool("q", false, "suppress progress output")
		asJSON   = flag.Bool("json", false, "emit the verdict table as machine-readable JSON")
		cpiStack = flag.Bool("cpi", false, "also emit the CPI-stack breakdown table")
		cores    = flag.Int("cores", 0, "also emit the multi-programmed table for an N-core mix (0 = skip)")
		mix      = flag.String("mix", "", "kernel mix for -cores, one per core (empty = default memory-bound rotation)")

		sample    = flag.Bool("sample", false, "replace full detailed runs with checkpointed sampled intervals")
		sMode     = flag.String("sample-mode", "even", "sampled window placement: \"even\" (evenly spaced) or \"phase\" (BBV clustering, one weighted window per phase)")
		intervals = flag.Int("intervals", 4, "detailed intervals per sampled run (with -sample); in phase mode, the cap on the phase count")
		sWindow   = flag.Uint64("sample-window", 0, "measured uops per sampled interval (0 = the whole region, split)")
		sWarmup   = flag.Uint64("sample-warmup", 0, "detailed warmup uops per sampled interval (0 = 50000)")
		sPhases   = flag.Int("phases", 0, "pin the phase count in -sample-mode=phase (0 = choose by BIC)")
		sBBV      = flag.Int("bbv-windows", 0, "BBV profiling windows in -sample-mode=phase (0 = 32)")

		useScreen = flag.Bool("screen", false, "screen runs through the calibrated analytical twin; only promoted pairs simulate in detail")
		twinPath  = flag.String("twin", "twin_coeffs.json", "calibrated twin artifact for -screen (from runahead-sweep -calibrate)")
		scTopK    = flag.Int("screen-topk", 3, "with -screen: promote the k largest twin-predicted RB-vs-baseline deltas")
		scUnc     = flag.Float64("screen-uncertain", 10, "with -screen: promote benches whose calibration MAPE exceeds this %")
	)
	flag.Parse()

	opts := harness.Options{MeasureUops: *uops}
	if *sample {
		if *sMode != harness.SampleEven && *sMode != harness.SamplePhase {
			fmt.Fprintf(os.Stderr, "unknown -sample-mode %q (want even or phase)\n", *sMode)
			os.Exit(2)
		}
		opts.Sample = &harness.SampleOptions{Mode: *sMode, Intervals: *intervals,
			WindowUops: *sWindow, WarmupUops: *sWarmup,
			Phases: *sPhases, BBVWindows: *sBBV}
	}
	if !*quiet {
		opts.Progress = func(bench, config string) {
			fmt.Fprintf(os.Stderr, "running %-12s %s\n", bench, config)
		}
	}
	r := harness.NewRunner(opts)
	var sc *harness.Screen
	if *useScreen {
		model, err := twin.Load(*twinPath, harness.TwinFingerprint())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if model.MeasureUops != 0 && model.MeasureUops != *uops {
			fmt.Fprintf(os.Stderr, "warning: %s was calibrated at %d measured uops, this report runs %d: accuracy scores do not transfer, consider recalibrating\n",
				*twinPath, model.MeasureUops, *uops)
		}
		plan := r.Plan(func(rr *harness.Runner) {
			harness.Report(rr)
			if *cpiStack {
				harness.CPIStack(rr)
			}
		})
		sc, err = harness.BuildScreen(r, plan, harness.ScreenOptions{
			Model: model, TopK: *scTopK, UncertainPct: *scUnc,
		}, runtime.NumCPU())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		r.SetScreen(sc)
	}
	tables := []harness.Table{harness.Report(r)}
	if *sample && *sMode == harness.SamplePhase {
		tables = append(tables, harness.SamplingTable(r))
	}
	if *cpiStack {
		tables = append(tables, harness.CPIStack(r))
	}
	if sc != nil {
		tables = append(tables, sc.Table())
	}

	// The multi-programmed section renders as a table in text mode; in JSON
	// mode the mix results are emitted as their own objects with per-core
	// stats keyed by core ID, not flattened into table rows.
	var mixResults []*harness.MixResult
	if *cores > 0 || *mix != "" {
		members := harness.DefaultMix(*cores)
		if *mix != "" {
			members = strings.Split(*mix, ",")
			if *cores > 0 && len(members) != *cores {
				fmt.Fprintf(os.Stderr, "-mix names %d kernels but -cores is %d\n", len(members), *cores)
				os.Exit(2)
			}
		}
		for _, rc := range harness.MixConfigs() {
			mixResults = append(mixResults, r.RunMix(members, rc))
		}
		if !*asJSON {
			tables = append(tables, harness.MixTable(mixResults))
		}
	}

	for _, t := range tables {
		if *asJSON {
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		t.Render(os.Stdout)
	}
	if *asJSON {
		for _, res := range mixResults {
			if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
