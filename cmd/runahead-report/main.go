// Command runahead-report evaluates every headline quantitative claim of
// the paper against this reproduction and prints a verdict table: paper
// value, measured value, and whether the shape (sign, rough magnitude,
// ordering) reproduces. With -cores it appends the multi-programmed table:
// per-core IPC, weighted speedup, and slowdown fairness for an N-core mix
// sharing one LLC + DRAM, baseline vs runahead buffer.
//
//	runahead-report
//	runahead-report -uops 300000
//	runahead-report -cores 4
//	runahead-report -cores 2 -mix libquantum,mcf -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"runaheadsim/internal/harness"
)

func main() {
	var (
		uops     = flag.Uint64("uops", 150_000, "measured micro-ops per run")
		quiet    = flag.Bool("q", false, "suppress progress output")
		asJSON   = flag.Bool("json", false, "emit the verdict table as machine-readable JSON")
		cpiStack = flag.Bool("cpi", false, "also emit the CPI-stack breakdown table")
		cores    = flag.Int("cores", 0, "also emit the multi-programmed table for an N-core mix (0 = skip)")
		mix      = flag.String("mix", "", "kernel mix for -cores, one per core (empty = default memory-bound rotation)")
	)
	flag.Parse()

	opts := harness.Options{MeasureUops: *uops}
	if !*quiet {
		opts.Progress = func(bench, config string) {
			fmt.Fprintf(os.Stderr, "running %-12s %s\n", bench, config)
		}
	}
	r := harness.NewRunner(opts)
	tables := []harness.Table{harness.Report(r)}
	if *cpiStack {
		tables = append(tables, harness.CPIStack(r))
	}

	// The multi-programmed section renders as a table in text mode; in JSON
	// mode the mix results are emitted as their own objects with per-core
	// stats keyed by core ID, not flattened into table rows.
	var mixResults []*harness.MixResult
	if *cores > 0 || *mix != "" {
		members := harness.DefaultMix(*cores)
		if *mix != "" {
			members = strings.Split(*mix, ",")
			if *cores > 0 && len(members) != *cores {
				fmt.Fprintf(os.Stderr, "-mix names %d kernels but -cores is %d\n", len(members), *cores)
				os.Exit(2)
			}
		}
		for _, rc := range harness.MixConfigs() {
			mixResults = append(mixResults, r.RunMix(members, rc))
		}
		if !*asJSON {
			tables = append(tables, harness.MixTable(mixResults))
		}
	}

	for _, t := range tables {
		if *asJSON {
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		t.Render(os.Stdout)
	}
	if *asJSON {
		for _, res := range mixResults {
			if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
