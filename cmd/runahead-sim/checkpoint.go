package main

// Checkpoint/restore entry points: -checkpoint-out runs a benchmark, drains
// the machine to quiescence, and serializes it; -restore rebuilds the
// machine from those bytes and keeps simulating. The printed stats digest
// lets a shell script verify restore fidelity against an uninterrupted run.

import (
	"fmt"
	"os"

	"runaheadsim/internal/core"
	"runaheadsim/internal/simcheck"
	"runaheadsim/internal/workload"
)

// buildConfig translates the CLI mode flags into a core configuration.
func buildConfig(mode string, pf, enh bool, pfKind string) (core.Config, error) {
	cfg := core.DefaultConfig()
	switch mode {
	case "baseline":
	case "runahead":
		cfg.Mode = core.ModeTraditional
	case "runahead-buffer":
		cfg.Mode = core.ModeBuffer
	case "runahead-buffer+cc":
		cfg.Mode = core.ModeBufferCC
	case "hybrid":
		cfg.Mode = core.ModeHybrid
	default:
		return cfg, fmt.Errorf("unknown mode %q", mode)
	}
	cfg.Enhancements = enh
	cfg.Mem.EnablePrefetch = pf
	cfg.Mem.PrefetchKind = pfKind
	return cfg, nil
}

// autoWarmup mirrors the harness default: small-footprint benchmarks need
// their arrays wrapped before steady state emerges.
func autoWarmup(bench string, warmup uint64) uint64 {
	if warmup > 0 {
		return warmup
	}
	if spec, ok := workload.SpecOf(bench); ok && spec.Class == workload.Low {
		return 500_000
	}
	return 100_000
}

// checkpointRun simulates warmup+uops micro-ops, drains, and writes the
// snapshot. Returns a process exit code.
func checkpointRun(bench, mode string, pf, enh bool, pfKind string, uops, warmup uint64, outFile string, check bool) int {
	cfg, err := buildConfig(mode, pf, enh, pfKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	p, err := workload.Load(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	c := core.New(cfg, p)
	var chk *simcheck.Checker
	if check {
		chk = simcheck.Attach(c, p, simcheck.Options{})
	}
	w := autoWarmup(bench, warmup)
	st := c.Run(w + uops)
	if err := c.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if chk != nil {
		chk.Finish()
	}
	data, err := c.Snapshot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(outFile, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("checkpoint          %s (%d bytes)\n", outFile, len(data))
	fmt.Printf("benchmark           %s, mode %s\n", bench, mode)
	fmt.Printf("committed uops      %d in %d cycles (drained)\n", st.Committed, c.Now())
	fmt.Printf("resume pc           %#x\n", c.FetchPC())
	fmt.Printf("stats digest        %#x\n", simcheck.StatsDigest(c.Stats()))
	return 0
}

// restoreRun rebuilds a machine from a snapshot and simulates uops more
// micro-ops from the restore point with fresh statistics.
func restoreRun(file, bench, mode string, pf, enh bool, pfKind string, uops uint64, check bool) int {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfg, err := buildConfig(mode, pf, enh, pfKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	p, err := workload.Load(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	c, err := core.RestoreCore(data, cfg, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("restored            %s at cycle %d, pc %#x\n", file, c.Now(), c.FetchPC())
	var chk *simcheck.Checker
	if check {
		chk = simcheck.AttachResumed(c, p, simcheck.Options{})
	}
	c.ResetStats()
	st := c.Run(uops)
	if chk != nil {
		chk.Finish()
	}
	fmt.Printf("benchmark           %s, mode %s\n", bench, mode)
	fmt.Printf("committed uops      %d in %d cycles\n", st.Committed, st.Cycles)
	fmt.Printf("IPC                 %.3f\n", st.IPC())
	fmt.Printf("stats digest        %#x\n", simcheck.StatsDigest(st))
	return 0
}
