// Command runahead-sim runs one benchmark under one runahead configuration
// and prints the headline metrics (plus, optionally, every raw counter).
//
// Examples:
//
//	runahead-sim -bench mcf -mode hybrid
//	runahead-sim -bench sphinx3 -mode runahead-buffer+cc -pf -uops 300000
//	runahead-sim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"runaheadsim"
	"runaheadsim/internal/core"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/simcheck"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/telemetry"
	"runaheadsim/internal/trace"
	"runaheadsim/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "mcf", "benchmark name (see -list)")
		mode   = flag.String("mode", "baseline", "baseline | runahead | runahead-buffer | runahead-buffer+cc | hybrid")
		pf     = flag.Bool("pf", false, "enable the stream prefetcher")
		pfkind = flag.String("pfkind", "stream", "prefetch engine: stream | delta (with -pf and -trace only)")
		enh    = flag.Bool("enh", false, "enable the runahead efficiency enhancements")
		uops   = flag.Uint64("uops", 150_000, "measured micro-ops")
		warmup = flag.Uint64("warmup", 0, "warmup micro-ops (0 = automatic)")
		dump   = flag.Bool("stats", false, "dump raw counters")
		chains = flag.Bool("dumpchains", false, "print the dependence chains left in the chain cache")
		trace  = flag.Int64("trace", 0, "emit a cycle-by-cycle pipeline trace for the first N cycles")
		trFmt  = flag.String("trace-format", "", "trace format: text | jsonl | chrome (implies -trace 10000 when -trace is unset)")
		trOut  = flag.String("trace-out", "", "write the trace to this file (default stdout)")
		tlEach = flag.Int64("timeline", 0, "sample IPC/occupancy/mode every N cycles and export the timeline")
		tlOut  = flag.String("timeline-out", "", "write the timeline to this file (default stdout)")
		tlFmt  = flag.String("timeline-format", "csv", "timeline format: csv | json")
		check  = flag.Bool("check", simcheck.TagEnabled, "run the simcheck sanitizer (lockstep oracle + structural invariants)")
		ckOut  = flag.String("checkpoint-out", "", "simulate warmup+uops, drain, and write a machine snapshot to this file")
		restr  = flag.String("restore", "", "restore a machine snapshot (same -bench/-mode flags) and simulate -uops more micro-ops")
		list   = flag.Bool("list", false, "list benchmarks and exit")
		all    = flag.Bool("all-modes", false, "run every runahead mode on the benchmark and print a comparison")
		pipe   = flag.Bool("pipeline", false, "print the Figure 6 pipeline diagram and exit")
		disasm = flag.Bool("disasm", false, "print the benchmark's program listing and exit")
		showEn = flag.Bool("energy", false, "print the energy breakdown by component")
		tele   = flag.String("telemetry-addr", "", "serve /metrics, /progress, /healthz and pprof on this address (e.g. 127.0.0.1:8080)")
		wdog   = flag.Int64("watchdog", 0, "override the deadlock watchdog: no-progress cycle budget (<0 disables, 0 = default)")
		fdump  = flag.String("flight-dump", ".", "directory for flight-recorder crash dumps (empty disables)")
	)
	flag.Parse()

	// A dying simulation panics with full context (watchdog trips, simcheck
	// violations); by then the flight recorder has already been dumped.
	// Surface it as a clean fatal error instead of a raw Go traceback.
	defer func() {
		if rec := recover(); rec != nil {
			fmt.Fprintf(os.Stderr, "runahead-sim: fatal: %v\n", rec)
			os.Exit(2)
		}
	}()

	var tracker *telemetry.Tracker
	if *tele != "" {
		tracker = telemetry.NewTracker()
		srv, err := telemetry.Start(*tele, nil, tracker)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics /progress /healthz /debug/pprof/\n", srv.Addr())
	}

	if *list {
		for _, n := range runaheadsim.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	if *pipe {
		fmt.Print(pipelineDiagram)
		return
	}

	if *all {
		compareModes(*bench, *pf, *uops, *warmup, *wdog, *fdump)
		return
	}

	if *disasm {
		p, err := workload.Load(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(prog.Disasm(p))
		return
	}

	if *ckOut != "" {
		os.Exit(checkpointRun(*bench, *mode, *pf, *enh, *pfkind, *uops, *warmup, *ckOut, *check))
	}
	if *restr != "" {
		os.Exit(restoreRun(*restr, *bench, *mode, *pf, *enh, *pfkind, *uops, *check))
	}

	if *trace > 0 || *trFmt != "" || *trOut != "" {
		cycles := *trace
		if cycles <= 0 {
			cycles = 10_000
		}
		tracePipeline(*bench, *mode, *pf, *enh, *pfkind, cycles, *trFmt, *trOut, *check, *wdog, *fdump)
		return
	}

	rcfg := runaheadsim.Config{
		Benchmark:        *bench,
		Mode:             runaheadsim.Mode(*mode),
		Prefetcher:       *pf,
		Enhancements:     *enh,
		MeasureUops:      *uops,
		WarmupUops:       *warmup,
		TimelineInterval: *tlEach,
		Check:            *check,
		WatchdogCycles:   *wdog,
		FlightDumpDir:    *fdump,
	}
	if tracker != nil {
		rcfg.Monitor = tracker
	}
	res, err := runaheadsim.Run(rcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("benchmark          %s\n", res.Benchmark)
	fmt.Printf("mode               %s (prefetcher=%v)\n", res.Mode, *pf)
	fmt.Printf("committed uops     %d in %d cycles\n", res.Committed, res.Cycles)
	fmt.Printf("IPC                %.3f (%+.1f%% vs no-PF baseline)\n", res.IPC, res.IPCDeltaPct)
	fmt.Printf("MPKI               %.1f\n", res.MPKI)
	fmt.Printf("memory stall       %.1f%% of cycles\n", res.MemStallPct)
	fmt.Printf("energy             %.1f uJ (%+.1f%% vs baseline)\n", res.EnergyUJ, res.EnergyDeltaPct)
	fmt.Printf("DRAM requests      %d (%+.1f%% vs baseline)\n", res.DRAMRequests, res.TrafficDeltaPct)
	if res.RunaheadIntervals > 0 {
		fmt.Printf("runahead           %d intervals, %.1f misses/interval\n",
			res.RunaheadIntervals, res.MissesPerInterval)
		if res.RunaheadBufferCycles > 0 {
			fmt.Printf("buffer cycles      %d (%.1f%% of run)\n", res.RunaheadBufferCycles,
				100*float64(res.RunaheadBufferCycles)/float64(res.Cycles))
		}
		if res.ChainCacheHitRate > 0 {
			fmt.Printf("chain cache        %.1f%% hit rate\n", 100*res.ChainCacheHitRate)
		}
	}
	if *showEn {
		fmt.Println()
		for _, comp := range res.EnergyBreakdown.Components() {
			fmt.Printf("energy %-28s %10.2f uJ (%4.1f%%)\n", comp.Name, comp.UJ, 100*comp.UJ/res.EnergyUJ)
		}
	}
	if *chains {
		for _, ch := range res.Chains {
			fmt.Printf("\n%s", ch)
		}
		if len(res.Chains) == 0 {
			fmt.Println("\n(no chains cached; use a runahead-buffer mode)")
		}
	}
	if *dump {
		fmt.Printf("\n%s", res.Stats.Counters())
	}
	if res.Timeline != nil {
		if err := writeTimeline(res.Timeline, *tlFmt, *tlOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeTimeline exports the interval samples as CSV or JSON, to a file or
// stdout.
func writeTimeline(tl *stats.Timeline, format, out string) error {
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	} else {
		fmt.Println()
	}
	switch format {
	case "", "csv":
		return tl.WriteCSV(w)
	case "json":
		return tl.WriteJSON(w)
	default:
		return fmt.Errorf("unknown timeline format %q (have csv, json)", format)
	}
}

// tracePipeline drops below the facade to attach a cycle-by-cycle tracer.
func tracePipeline(bench, mode string, pf, enh bool, pfKind string, cycles int64, format, out string, check bool, wdog int64, fdump string) {
	cfg, err := buildConfig(mode, pf, enh, pfKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if wdog > 0 {
		cfg.WatchdogCycles = wdog
	} else if wdog < 0 {
		cfg.WatchdogCycles = 0
	}
	p, err := workload.Load(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	sink, err := trace.NewSink(format, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c := core.New(cfg, p)
	// Crash-safe sink: flush and close the trace even when the run dies
	// mid-stream (watchdog trip, simcheck violation, core bug), so the
	// events leading up to the crash survive on disk — then dump the flight
	// recorder and rethrow for main's fatal handler.
	defer func() {
		rec := recover()
		cerr := c.CloseEventSink()
		if rec != nil {
			if path := dumpFlight(fdump, "flight-"+bench+"-"+mode, c); path != "" {
				rec = fmt.Sprintf("%v\n  (flight recorder dumped to %s)", rec, path)
			}
			panic(rec)
		}
		if cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			os.Exit(1)
		}
	}()
	var chk *simcheck.Checker
	if check {
		chk = simcheck.Attach(c, p, simcheck.Options{})
	}
	c.SetEventSink(sink, cycles)
	for c.Now() < cycles {
		c.Cycle()
	}
	if chk != nil {
		chk.Finish()
	}
}

// dumpFlight writes c's flight recorder to dir/<name>.jsonl, returning the
// path ("" when disabled, empty, or on I/O failure — a crash dump must never
// mask the crash itself).
func dumpFlight(dir, name string, c *core.Core) string {
	fr := c.FlightRecorder()
	if dir == "" || fr == nil || fr.Len() == 0 {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, name+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	if fr.WriteJSONL(f) != nil {
		return ""
	}
	return path
}

// pipelineDiagram is Figure 6: the out-of-order pipeline with the additions
// traditional runahead needs (+) and the further runahead buffer additions
// (*).
const pipelineDiagram = `Figure 6 — the runahead buffer pipeline:

  Fetch -> Decode -> Rename -------> Select/ -> Register -> Execute --> Commit
                       ^             Wakeup     Read(+)     (+)
                       |                        poison      checkpointing,
             Runahead  |                        bits        runahead cache
             Buffer(*) |
                       |
        filled by dependence chain generation(*)
        from the ROB: PC CAM + dest-reg CAM + store-queue CAM (Algorithm 1),
        cached in the 2-entry chain cache(*)

  (+) needed for traditional runahead   (*) added for the runahead buffer
`

// compareModes runs every runahead mode and prints one row per system.
func compareModes(bench string, pf bool, uops, warmup uint64, wdog int64, fdump string) {
	fmt.Printf("%-22s %8s %10s %13s %11s %10s\n",
		"system", "IPC", "IPC gain", "energy diff", "DRAM diff", "intervals")
	for _, m := range runaheadsim.Modes() {
		res, err := runaheadsim.Run(runaheadsim.Config{
			Benchmark:      bench,
			Mode:           m,
			Prefetcher:     pf,
			Enhancements:   m == runaheadsim.ModeHybrid || m == runaheadsim.ModeAdaptiveHybrid,
			MeasureUops:    uops,
			WarmupUops:     warmup,
			WatchdogCycles: wdog,
			FlightDumpDir:  fdump,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-22s %8.3f %9.1f%% %12.1f%% %10.1f%% %10d\n",
			string(m), res.IPC, res.IPCDeltaPct, res.EnergyDeltaPct, res.TrafficDeltaPct, res.RunaheadIntervals)
	}
}
