// Command simlint runs the repository's static-analysis pass: repo-specific
// analyzers built purely on go/ast and go/types — the expression-level
// checks (determinism, stats hygiene, trace hygiene) and the whole-program
// contract analyzers (snapshotcomplete, fingerprint, hotpathalloc,
// lockdiscipline). It exits nonzero if any finding survives the
// //simlint:allow suppressions.
//
// Usage:
//
//	go run ./cmd/simlint [-json] [-list] [patterns...]
//
// Patterns are go-style ("./...", "./internal/...", "./cmd/simlint") and
// default to ./... relative to the enclosing module root.
//
// -json prints findings as a JSON array ({file, line, col, analyzer,
// message}) for tooling; -list prints the analyzer roster (one name per
// line) so CI can assert the analyzer count never regresses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"runaheadsim/internal/simlint"
)

// jsonDiag is the machine-readable finding shape.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "print findings as a JSON array")
	list := flag.Bool("list", false, "print analyzer names, one per line, and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-json] [-list] [patterns...]\n\nAnalyzers:\n")
		for _, a := range simlint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-17s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range simlint.All {
			fmt.Println(a.Name)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := simlint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := simlint.Load(root, patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := simlint.Run(pkgs, simlint.All, simlint.Options{Root: root})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("simlint: %d packages clean (%d analyzers)\n", len(pkgs), len(simlint.All))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(1)
}
