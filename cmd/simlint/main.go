// Command simlint runs the repository's static-analysis pass: repo-specific
// analyzers (determinism, stats hygiene, trace hygiene) built purely on
// go/ast and go/types. It exits nonzero if any finding survives the
// //simlint:allow suppressions.
//
// Usage:
//
//	go run ./cmd/simlint [patterns...]
//
// Patterns are go-style ("./...", "./internal/...", "./cmd/simlint") and
// default to ./internal/... ./cmd/... relative to the enclosing module root.
package main

import (
	"flag"
	"fmt"
	"os"

	"runaheadsim/internal/simlint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [patterns...]\n\nAnalyzers:\n")
		for _, a := range simlint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := simlint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := simlint.Load(root, patterns)
	if err != nil {
		fatal(err)
	}
	diags := simlint.Run(pkgs, simlint.All)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Printf("simlint: %d packages clean\n", len(pkgs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(1)
}
