// Command runahead-sweep regenerates the paper's tables and figures as text
// tables. Simulation runs are shared across experiments, so regenerating
// everything costs far less than the sum of its parts.
//
// Examples:
//
//	runahead-sweep                      # everything, default budget
//	runahead-sweep -experiments figure9,figure17
//	runahead-sweep -uops 300000 -out results.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"runaheadsim/internal/harness"
)

func main() {
	var (
		exps   = flag.String("experiments", "all", "comma-separated experiment ids, or \"all\"")
		uops   = flag.Uint64("uops", 150_000, "measured micro-ops per run")
		warmup = flag.Uint64("warmup", 0, "warmup micro-ops per run (0 = automatic)")
		out    = flag.String("out", "", "write tables to this file instead of stdout")
		asJSON = flag.Bool("json", false, "emit the tables as JSON instead of text")
		quiet  = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	opts := harness.Options{MeasureUops: *uops, WarmupUops: *warmup}
	if !*quiet {
		opts.Progress = func(bench, config string) {
			fmt.Fprintf(os.Stderr, "running %-12s %s\n", bench, config)
		}
	}
	runner := harness.NewRunner(opts)

	want := map[string]bool{}
	if *exps != "all" {
		for _, id := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	known := map[string]bool{}
	var tables []harness.Table
	ran := 0
	for _, e := range harness.Experiments() {
		known[e.ID] = true
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t := e.Build(runner)
		ran++
		if *asJSON {
			tables = append(tables, t)
		} else {
			t.Render(w)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var unknown []string
	//simlint:allow determinism -- collected ids are sorted before reporting
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiments: %s\n", strings.Join(unknown, ", "))
		os.Exit(1)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(1)
	}
}
