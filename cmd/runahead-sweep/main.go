// Command runahead-sweep regenerates the paper's tables and figures as text
// tables. Simulation runs are shared across experiments, so regenerating
// everything costs far less than the sum of its parts. The run set is planned
// up front and simulated on a worker pool (-j); output is byte-identical to a
// sequential sweep. With -sample, each full detailed run is replaced by
// checkpointed sampled intervals (see DESIGN.md, "Checkpointing and sampled
// simulation").
//
// Examples:
//
//	runahead-sweep                      # everything, default budget
//	runahead-sweep -experiments figure9,figure17
//	runahead-sweep -uops 300000 -out results.txt
//	runahead-sweep -sample -j 8         # sampled intervals, 8 workers
//	runahead-sweep -experiments figure9 -bench-out BENCH_sweep.json
//	runahead-sweep -cores 4             # 4-core multi-programmed mix
//	runahead-sweep -cores 2 -mix libquantum,mcf
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"runaheadsim/internal/harness"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("runahead-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps      = fs.String("experiments", "all", "comma-separated experiment ids, or \"all\"")
		uops      = fs.Uint64("uops", 150_000, "measured micro-ops per run")
		warmup    = fs.Uint64("warmup", 0, "warmup micro-ops per run (0 = automatic)")
		benches   = fs.String("benchmarks", "", "comma-separated benchmark subset (empty = every figure's full set)")
		out       = fs.String("out", "", "write tables to this file instead of stdout")
		asJSON    = fs.Bool("json", false, "emit the tables as JSON instead of text")
		quiet     = fs.Bool("q", false, "suppress progress output")
		workers   = fs.Int("j", runtime.NumCPU(), "parallel simulation workers")
		sample    = fs.Bool("sample", false, "replace full detailed runs with checkpointed sampled intervals")
		sMode     = fs.String("sample-mode", "even", "sampled window placement: \"even\" (evenly spaced) or \"phase\" (BBV clustering, one weighted window per phase)")
		intervals = fs.Int("intervals", 4, "detailed intervals per sampled run (with -sample); in phase mode, the cap on the phase count")
		sWindow   = fs.Uint64("sample-window", 0, "measured uops per sampled interval (0 = the whole region, split)")
		sWarmup   = fs.Uint64("sample-warmup", 0, "detailed warmup uops per sampled interval (0 = 50000)")
		sPhases   = fs.Int("phases", 0, "pin the phase count in -sample-mode=phase (0 = choose by BIC)")
		sBBV      = fs.Int("bbv-windows", 0, "BBV profiling windows in -sample-mode=phase (0 = 32)")
		benchOut  = fs.String("bench-out", "", "benchmark the sweep (parallel/sampled vs sequential full-detail) and write the JSON report here")
		benchCore = fs.String("bench-core", "", "benchmark the cycle kernel (event vs scan scheduler, with equivalence checks) and write the JSON report here")
		benchMem  = fs.String("bench-mem", "", "benchmark the memory system + clock warp (warp vs per-cycle clock, with equivalence checks) and write the JSON report here")
		benchMC   = fs.String("bench-mc", "", "benchmark the multi-core subsystem (throughput + weighted-speedup deltas, RB vs baseline at 2/4 cores) and write the JSON report here")
		cores     = fs.Int("cores", 1, "multi-programmed mode: cores sharing one LLC+DRAM (2-8; 1 = normal single-core sweep)")
		mix       = fs.String("mix", "", "multi-programmed mode: comma-separated kernel mix, one per core (empty = default memory-bound rotation)")
		tele      = fs.String("telemetry-addr", "", "serve /metrics, /progress (live per-worker sweep state), /healthz and pprof on this address")
		fdump     = fs.String("flight-dump", ".", "directory for flight-recorder crash dumps (empty disables)")
		calibrate = fs.Bool("calibrate", false, "fit the analytical twin against detailed runs and write the artifact to -twin")
		twinPath  = fs.String("twin", "twin_coeffs.json", "calibration artifact path (written by -calibrate, read by -screen)")
		screen    = fs.Bool("screen", false, "screened sweep: twin predictions everywhere, detailed simulation only on promoted regions (needs a -twin artifact)")
		scTopK    = fs.Int("screen-topk", 3, "promote this many benchmarks with the largest twin-predicted RB-vs-baseline deltas")
		scUnc     = fs.Float64("screen-uncertain", 10, "promote benchmarks whose calibration MAPE exceeds this percentage")
		scCrit    = fs.String("screen-critical", "", "comma-separated benchmarks to always promote to detailed simulation")
		benchTwin = fs.String("bench-twin", "", "benchmark the twin (calibration accuracy + screened-vs-full sweep cost) and write the JSON report here")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	var tracker *telemetry.Tracker
	if *tele != "" {
		tracker = telemetry.NewTracker()
		srv, err := telemetry.Start(*tele, nil, tracker)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: http://%s/metrics /progress /healthz /debug/pprof/\n", srv.Addr())
	}

	if *benchCore != "" || *benchMem != "" || *benchMC != "" {
		var set []string
		if *benches != "" {
			set = strings.Split(*benches, ",")
		}
		if *benchCore != "" {
			if rc := runBenchCore(*benchCore, set, *uops, stderr); rc != 0 {
				return rc
			}
		}
		if *benchMem != "" {
			if rc := runBenchMem(*benchMem, set, *uops, stderr); rc != 0 {
				return rc
			}
		}
		if *benchMC != "" {
			if rc := runBenchMC(*benchMC, *uops, stderr); rc != 0 {
				return rc
			}
		}
		return 0
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}

	opts := harness.Options{MeasureUops: *uops, WarmupUops: *warmup, FlightDumpDir: *fdump}
	if tracker != nil {
		opts.Monitor = tracker
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	if !*quiet {
		opts.Progress = func(bench, config string) {
			fmt.Fprintf(stderr, "running %-12s %s\n", bench, config)
		}
	}
	if *sample {
		if *sMode != harness.SampleEven && *sMode != harness.SamplePhase {
			fmt.Fprintf(stderr, "unknown -sample-mode %q (want even or phase)\n", *sMode)
			return 2
		}
		// Interval-level workers stay at 1: the sweep already keeps -j
		// runs in flight, which parallelizes without oversubscribing.
		opts.Sample = &harness.SampleOptions{Mode: *sMode, Intervals: *intervals,
			WindowUops: *sWindow, WarmupUops: *sWarmup, Workers: 1,
			Phases: *sPhases, BBVWindows: *sBBV}
	}

	if *calibrate {
		var set []string
		if *benches != "" {
			set = strings.Split(*benches, ",")
		}
		return runCalibrate(*twinPath, opts, set, *workers, stderr)
	}
	if *benchTwin != "" {
		return runBenchTwin(*benchTwin, *twinPath,
			opts, screenFlags{topK: *scTopK, uncertain: *scUnc, critical: *scCrit}, *workers, stderr)
	}

	if *cores > 1 || *mix != "" {
		return runMixMode(*cores, *mix, opts, w, *asJSON, stderr)
	}

	expSpec := *exps
	if *screen && expSpec == "all" {
		// Screening targets the headline IPC sweep; the sensitivity and
		// instrumentation experiments are outside the twin's domain and would
		// all promote to detailed anyway.
		expSpec = "figure9"
		fmt.Fprintln(stderr, "screen: narrowing -experiments all to figure9 (pass -experiments explicitly to override)")
	}
	selected, err := selectExperiments(expSpec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	runner := harness.NewRunner(opts)
	plan := runner.Plan(func(r *harness.Runner) {
		for _, e := range selected {
			e.Build(r)
		}
	})
	if tracker != nil {
		tracker.SetTotalRuns(len(plan))
	}

	var sc *harness.Screen
	if *screen {
		if *benchOut != "" {
			fmt.Fprintln(stderr, "-screen does not combine with -bench-out; use -bench-twin for the screened-vs-full comparison")
			return 2
		}
		model, ok := loadTwin(*twinPath, opts.MeasureUops, stderr)
		if !ok {
			return 1
		}
		sc, err = harness.BuildScreen(runner, plan,
			screenFlags{topK: *scTopK, uncertain: *scUnc, critical: *scCrit}.options(model), *workers)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		runner.SetScreen(sc)
	}

	var report *benchReport
	switch {
	case sc != nil:
		runner.Prewarm(sc.Promoted(plan), *workers)
	case *benchOut != "":
		report = benchmarkSweep(runner, opts, plan, *workers, stderr)
	default:
		runner.Prewarm(plan, *workers)
	}

	// Every run is memoized by now, so this render is deterministic and
	// byte-identical to a fully sequential sweep.
	var tables []harness.Table
	for _, e := range selected {
		t := e.Build(runner)
		if *asJSON {
			tables = append(tables, t)
		} else {
			t.Render(w)
		}
	}
	if sc != nil {
		t := sc.Table()
		if *asJSON {
			tables = append(tables, t)
		} else {
			t.Render(w)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	if report != nil {
		report.Experiments = *exps
		report.Sampled = *sample
		if *sample {
			report.SampleMode = *sMode
			report.Intervals = *intervals
		}
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "bench: %d runs, sequential %.1fs, parallel %.1fs (%.2fx), %.0f sim-cycles/s, max IPC err %.2f%%\n",
			report.Runs, report.WallSequentialSec, report.WallParallelSec, report.Speedup,
			report.SimCyclesPerSec, report.MaxIPCRelErrPct)
		for _, sm := range report.SampleModes {
			fmt.Fprintf(stderr, "bench: mode=%-5s detailed %d uops, max IPC err %.2f%%, mean %.2f%%\n",
				sm.Mode, sm.DetailedUops, sm.MaxIPCRelErrPct, sm.MeanIPCRelErrPct)
		}
	}
	return 0
}

// selectExperiments resolves the -experiments flag against the registry.
func selectExperiments(spec string) ([]harness.Experiment, error) {
	all := harness.Experiments()
	if spec == "all" {
		return all, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(spec, ",") {
		want[strings.TrimSpace(id)] = true
	}
	var selected []harness.Experiment
	for _, e := range all {
		if want[e.ID] {
			selected = append(selected, e)
			delete(want, e.ID)
		}
	}
	if len(want) > 0 {
		var unknown []string
		//simlint:allow determinism -- collected ids are sorted before reporting
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiments: %s", strings.Join(unknown, ", "))
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return selected, nil
}

// benchReport is the BENCH_sweep.json schema: the cost of the sweep under
// the requested parallel (and possibly sampled) setup against the
// sequential full-detail reference, plus the sampling accuracy.
type benchReport struct {
	Experiments string `json:"experiments"`
	Runs        int    `json:"runs"`
	Workers     int    `json:"workers"`
	Sampled     bool   `json:"sampled"`
	SampleMode  string `json:"sample_mode,omitempty"`
	Intervals   int    `json:"intervals,omitempty"`

	WallSequentialSec float64 `json:"wall_sequential_sec"`
	WallParallelSec   float64 `json:"wall_parallel_sec"`
	Speedup           float64 `json:"speedup"`

	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`

	// IPC of each pair under the benchmarked setup vs the sequential
	// full-detail reference (nonzero only with -sample).
	MaxIPCRelErrPct  float64 `json:"max_ipc_rel_err_pct"`
	MeanIPCRelErrPct float64 `json:"mean_ipc_rel_err_pct"`

	// SampleModes compares even vs phase placement over the same plan at
	// the same settings against the same full-detail reference (present
	// only with -sample).
	SampleModes []benchSampleMode `json:"sample_modes,omitempty"`
}

// benchSampleMode is one sampling mode's accuracy and cost over the plan.
type benchSampleMode struct {
	Mode string `json:"mode"`
	// DetailedUops is the total detailed-simulation cost across the plan —
	// the budget the accuracy is bought with.
	DetailedUops uint64 `json:"detailed_uops"`
	// Phases is the largest per-run phase count the clustering chose
	// (phase mode only).
	Phases  int     `json:"phases,omitempty"`
	WallSec float64 `json:"wall_sec"`
	// ProfileWallSec is the share of WallSec spent in interpreter-speed
	// profiling (the BBV pass of phase mode) — the planning overhead the
	// placement quality is bought with. Zero in even mode.
	ProfileWallSec   float64 `json:"profile_wall_sec"`
	MaxIPCRelErrPct  float64 `json:"max_ipc_rel_err_pct"`
	MeanIPCRelErrPct float64 `json:"mean_ipc_rel_err_pct"`
}

// benchmarkSweep times the planned run set twice: sequentially at full
// detail (the reference), then on the requested worker pool with the
// requested options — and compares per-run IPC between the two.
func benchmarkSweep(runner *harness.Runner, opts harness.Options, plan []harness.PlannedRun, workers int, stderr io.Writer) *benchReport {
	refOpts := opts
	refOpts.Sample = nil
	ref := harness.NewRunner(refOpts)
	t0 := time.Now()
	ref.Prewarm(plan, 1)
	wallSeq := time.Since(t0).Seconds()

	t0 = time.Now()
	runner.Prewarm(plan, workers)
	wallPar := time.Since(t0).Seconds()

	r := &benchReport{
		Runs:              len(plan),
		Workers:           workers,
		WallSequentialSec: wallSeq,
		WallParallelSec:   wallPar,
		Speedup:           stats.Div(wallSeq, wallPar),
	}
	for _, pr := range plan {
		res := runner.Result(pr.Bench, pr.Config)
		r.SimCycles += res.Stats.Cycles
	}
	r.SimCyclesPerSec = stats.Div(float64(r.SimCycles), wallPar)
	r.MaxIPCRelErrPct, r.MeanIPCRelErrPct = ipcError(runner, ref, plan)

	// With sampling on, also run the plan under the other placement mode so
	// the report compares even vs phase at the same settings (and so the
	// accuracy gate can check that phase buys equal-or-better accuracy at
	// equal-or-lower detailed cost).
	if opts.Sample != nil {
		cur := modeSummary(runner, ref, plan, wallPar)
		for _, mode := range []string{harness.SampleEven, harness.SamplePhase} {
			if mode == cur.Mode {
				r.SampleModes = append(r.SampleModes, cur)
				continue
			}
			altOpts := opts
			so := *opts.Sample
			so.Mode = mode
			altOpts.Sample = &so
			alt := harness.NewRunner(altOpts)
			t0 = time.Now()
			alt.Prewarm(plan, workers)
			r.SampleModes = append(r.SampleModes, modeSummary(alt, ref, plan, time.Since(t0).Seconds()))
		}
	}
	return r
}

// ipcError compares per-run IPC between a runner and the full-detail
// reference, returning the max and mean relative error in percent. A plan may
// legitimately be empty (an experiment subset with no runs) and a reference
// IPC of zero contributes zero error rather than Inf.
func ipcError(runner, ref *harness.Runner, plan []harness.PlannedRun) (maxE, meanE float64) {
	var errSum float64
	for _, pr := range plan {
		res := runner.Result(pr.Bench, pr.Config)
		refRes := ref.Result(pr.Bench, pr.Config)
		e := 100 * stats.Div(abs(res.IPC-refRes.IPC), refRes.IPC)
		errSum += e
		if e > maxE {
			maxE = e
		}
	}
	return maxE, stats.Div(errSum, float64(len(plan)))
}

// modeSummary condenses one sampling mode's accuracy and cost over the plan.
func modeSummary(runner, ref *harness.Runner, plan []harness.PlannedRun, wallSec float64) benchSampleMode {
	sm := benchSampleMode{WallSec: wallSec, ProfileWallSec: runner.ProfileWallSec()}
	sm.MaxIPCRelErrPct, sm.MeanIPCRelErrPct = ipcError(runner, ref, plan)
	for _, pr := range plan {
		if si := runner.Result(pr.Bench, pr.Config).Sampling; si != nil {
			sm.Mode = si.Mode
			sm.DetailedUops += si.DetailedUops
			if si.Phases > sm.Phases {
				sm.Phases = si.Phases
			}
		}
	}
	return sm
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runBenchCore handles -bench-core: time the event-driven scheduler against
// the scan reference on memory-bound workloads (each pair equivalence-checked
// down to snapshot bytes) and write BENCH_core.json.
func runBenchCore(path string, benches []string, uops uint64, stderr io.Writer) int {
	rep, err := harness.BenchCore(benches, uops)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for _, r := range rep.Runs {
		fmt.Fprintf(stderr, "bench-core: %-10s %-18s %9d cycles  scan %8.0f c/s  event %8.0f c/s  %.2fx\n",
			r.Bench, r.Mode, r.SimCycles, r.ScanCyclesPerSec, r.EventCyclesPerSec, r.Speedup)
	}
	fmt.Fprintf(stderr, "bench-core: geomean speedup %.2fx over %d runs\n", rep.GeomeanSpeedup, len(rep.Runs))
	return 0
}

// runBenchMem handles -bench-mem: time the warped clock (event-driven memory
// system + whole-simulator stall skip) against the per-cycle reference on the
// memory-bound workloads (each pair equivalence-checked down to snapshot
// bytes) and write BENCH_mem.json.
// runMixMode is the multi-programmed entry point: N cores, one kernel each,
// sharing one LLC + DRAM controller, run to a fixed per-core uop quota under
// the baseline and the runahead buffer. It renders the per-core
// IPC/weighted-speedup/fairness table (or, with -json, one object per
// configuration with per-core stats keyed by core ID).
func runMixMode(cores int, mixSpec string, opts harness.Options, w io.Writer, asJSON bool, stderr io.Writer) int {
	var mix []string
	if mixSpec != "" {
		mix = strings.Split(mixSpec, ",")
		if cores > 1 && len(mix) != cores {
			fmt.Fprintf(stderr, "-mix names %d kernels but -cores is %d\n", len(mix), cores)
			return 2
		}
	} else {
		mix = harness.DefaultMix(cores)
	}
	if len(mix) < 1 || len(mix) > 8 {
		fmt.Fprintf(stderr, "multi-programmed mode supports 1-8 cores, got %d\n", len(mix))
		return 2
	}
	r := harness.NewRunner(opts)
	var results []*harness.MixResult
	for _, rc := range harness.MixConfigs() {
		results = append(results, r.RunMix(mix, rc))
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	t := harness.MixTable(results)
	t.Render(w)
	return 0
}

// runBenchMC benchmarks the multi-core subsystem and writes BENCH_mc.json.
func runBenchMC(path string, uops uint64, stderr io.Writer) int {
	rep, err := harness.BenchMulticore(nil, uops)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for _, r := range rep.Runs {
		fmt.Fprintf(stderr, "bench-mc: %dc %-8s %9d cycles  %8.0f c/s  WS %.2f  hmean-slowdown %.2f  max %.2f\n",
			r.Cores, r.Config, r.SimCycles, r.CyclesPerSec, r.WeightedSpeedup, r.HmeanSlowdown, r.MaxSlowdown)
	}
	for _, d := range rep.Deltas {
		fmt.Fprintf(stderr, "bench-mc: %dc RB vs base: weighted speedup %+.2f, throughput %.2fx\n",
			d.Cores, d.WSGain, d.ThroughputRatio)
	}
	return 0
}

func runBenchMem(path string, benches []string, uops uint64, stderr io.Writer) int {
	rep, err := harness.BenchMem(benches, uops)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	nDom := 0
	for _, r := range rep.Runs {
		mark := " "
		if r.StallDominated {
			mark = "*"
			nDom++
		}
		fmt.Fprintf(stderr, "bench-mem: %s %-10s %-18s %9d cycles  tick %8.0f c/s  warp %8.0f c/s  %.2fx (%.0f%% warped)\n",
			mark, r.Bench, r.Mode, r.SimCycles, r.TickCyclesPerSec, r.WarpCyclesPerSec, r.Speedup, r.WarpedFrac*100)
	}
	fmt.Fprintf(stderr, "bench-mem:  geomean speedup %.2fx over %d stall-dominated runs (*), %.2fx over all %d runs\n",
		rep.GeomeanSpeedup, nDom, rep.GeomeanSpeedupAll, len(rep.Runs))
	return 0
}
