// The analytical-twin entry points of runahead-sweep: -calibrate fits the
// interval model against detailed runs and persists the artifact,
// -screen runs a screened sweep (twin predictions everywhere, detailed
// simulation only on promoted regions), and -bench-twin measures the twin's
// accuracy and the screened sweep's cost against the full-detail reference.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"runaheadsim/internal/harness"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/twin"
)

// screenFlags carries the -screen-* knobs.
type screenFlags struct {
	topK      int
	uncertain float64
	critical  string
}

func (sf screenFlags) options(model *twin.Model) harness.ScreenOptions {
	so := harness.ScreenOptions{Model: model, TopK: sf.topK, UncertainPct: sf.uncertain}
	if sf.critical != "" {
		so.Critical = strings.Split(sf.critical, ",")
	}
	return so
}

// runCalibrate handles -calibrate: run the detailed calibration matrix, fit
// the twin, persist the artifact, and print the accuracy scores.
func runCalibrate(path string, opts harness.Options, benchSet []string, workers int, stderr io.Writer) int {
	r := harness.NewRunner(opts)
	model, points, err := r.Calibrate(benchSet, nil, workers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := model.Save(path); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "calibrate: %d points, %d groups, IPC MAPE %.2f%%, Pearson r %.4f, energy MAPE %.2f%% -> %s\n",
		len(points), len(model.Groups), model.Scores.MAPEPct, model.Scores.PearsonR, model.Scores.EnergyMAPEPct, path)
	for _, row := range model.Scores.PerWorkload {
		fmt.Fprintf(stderr, "calibrate: %-12s %d points, MAPE %5.2f%%\n", row.Name, row.Points, row.MAPEPct)
	}
	return 0
}

// loadTwin loads and fingerprint-checks the calibration artifact, warning
// when the run's measured length differs from the calibration's (the
// coefficients are largely scale-free but the accuracy scores are not).
func loadTwin(path string, measureUops uint64, stderr io.Writer) (*twin.Model, bool) {
	model, err := twin.Load(path, harness.TwinFingerprint())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, false
	}
	if model.MeasureUops != 0 && model.MeasureUops != measureUops {
		fmt.Fprintf(stderr, "warning: %s was calibrated at %d measured uops, this run uses %d: accuracy scores do not transfer, consider recalibrating\n",
			path, model.MeasureUops, measureUops)
	}
	return model, true
}

// twinReport is the BENCH_twin.json schema: the twin's calibration accuracy
// plus the screened sweep's cost and fidelity against full detail.
type twinReport struct {
	Experiments     string      `json:"experiments"`
	Benches         int         `json:"benches"`
	CalibrationRuns int         `json:"calibration_runs"`
	Scores          twin.Scores `json:"scores"`

	Screen twinScreenReport `json:"screen"`
}

// twinScreenReport compares the screened sweep against the full-detail one.
type twinScreenReport struct {
	TopK         int      `json:"topk"`
	UncertainPct float64  `json:"uncertain_pct"`
	Promoted     []string `json:"promoted"`
	DetailedRuns int      `json:"detailed_runs"`
	TwinRuns     int      `json:"twin_runs"`

	// Wall cost: the full-detail sweep vs the screened one (promoted
	// detailed runs + interpreter-speed profiling + twin evaluation).
	WallFullDetailSec float64 `json:"wall_full_detail_sec"`
	WallScreenedSec   float64 `json:"wall_screened_sec"`
	ProfileWallSec    float64 `json:"profile_wall_sec"`
	WallRatio         float64 `json:"wall_ratio"`

	// RankingMatch: the promoted benches order identically by RB-vs-baseline
	// IPC delta under the screened and the full-detail sweep — and since
	// promoted runs are bit-identical detailed simulations, the deltas agree
	// exactly, not just in order.
	RankingMatch         bool `json:"ranking_match"`
	PromotedBitIdentical bool `json:"promoted_bit_identical"`

	// Twin prediction error on the non-promoted (twin-answered) pairs
	// against the full-detail reference.
	TwinMaxIPCRelErrPct  float64 `json:"twin_max_ipc_rel_err_pct"`
	TwinMeanIPCRelErrPct float64 `json:"twin_mean_ipc_rel_err_pct"`
}

// runBenchTwin handles -bench-twin: full-detail reference sweep, calibration
// (reusing the reference's memoized runs), then a fresh screened sweep —
// reporting accuracy, promoted-region fidelity, and the wall-time ratio.
func runBenchTwin(path, twinPath string, opts harness.Options, sf screenFlags, workers int, stderr io.Writer) int {
	selected, err := selectExperiments("figure9")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	ref := harness.NewRunner(opts)
	plan := ref.Plan(func(r *harness.Runner) {
		for _, e := range selected {
			e.Build(r)
		}
	})
	t0 := time.Now()
	ref.Prewarm(plan, workers)
	wallFull := time.Since(t0).Seconds()

	var benchSet []string
	seen := map[string]bool{}
	for _, pr := range plan {
		if !seen[pr.Bench] {
			seen[pr.Bench] = true
			benchSet = append(benchSet, pr.Bench)
		}
	}
	model, points, err := ref.Calibrate(benchSet, nil, workers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := model.Save(twinPath); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	scr := harness.NewRunner(opts)
	t0 = time.Now()
	sc, err := harness.BuildScreen(scr, plan, sf.options(model), workers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	scr.SetScreen(sc)
	promoted := sc.Promoted(plan)
	scr.Prewarm(promoted, workers)
	// Twin-answered pairs evaluate lazily at render time; force them here so
	// the screened wall time includes every cost a real sweep pays.
	for _, pr := range plan {
		scr.Result(pr.Bench, pr.Config)
	}
	wallScreened := time.Since(t0).Seconds()

	rep := &twinReport{
		Experiments:     "figure9",
		Benches:         len(benchSet),
		CalibrationRuns: len(points),
		Scores:          model.Scores,
		Screen: twinScreenReport{
			TopK:              sf.topK,
			UncertainPct:      sf.uncertain,
			DetailedRuns:      len(promoted),
			TwinRuns:          len(plan) - len(promoted),
			WallFullDetailSec: wallFull,
			WallScreenedSec:   wallScreened,
			ProfileWallSec:    scr.ProfileWallSec(),
			WallRatio:         stats.Div(wallFull, wallScreened),
		},
	}

	// Promoted-region fidelity: every promoted pair must be bit-identical to
	// the reference (it ran the same detailed simulation), and the promoted
	// benches must rank identically by RB-vs-baseline IPC delta.
	var promotedBenches []string
	for _, row := range sc.Rows() {
		if row.Provenance == harness.ProvenanceDetailed {
			promotedBenches = append(promotedBenches, row.Bench)
		}
	}
	rep.Screen.Promoted = promotedBenches
	bitIdent := true
	for _, pr := range promoted {
		a, b := ref.Result(pr.Bench, pr.Config), scr.Result(pr.Bench, pr.Config)
		if a.Stats.Cycles != b.Stats.Cycles || a.IPC != b.IPC {
			bitIdent = false
			fmt.Fprintf(stderr, "bench-twin: promoted %s/%s diverged: %d vs %d cycles\n",
				pr.Bench, pr.Config.Label(), a.Stats.Cycles, b.Stats.Cycles)
		}
	}
	rep.Screen.PromotedBitIdentical = bitIdent
	rep.Screen.RankingMatch = bitIdent && rankingMatches(ref, scr, promotedBenches)

	var errSum, errMax float64
	var n int
	for _, pr := range plan {
		if sc.WantsDetailed(pr.Bench, pr.Config) {
			continue
		}
		e := 100 * stats.Div(abs(scr.Result(pr.Bench, pr.Config).IPC-ref.Result(pr.Bench, pr.Config).IPC),
			ref.Result(pr.Bench, pr.Config).IPC)
		errSum += e
		n++
		if e > errMax {
			errMax = e
		}
	}
	rep.Screen.TwinMaxIPCRelErrPct = errMax
	rep.Screen.TwinMeanIPCRelErrPct = stats.Div(errSum, float64(n))

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "bench-twin: IPC MAPE %.2f%%, r %.4f; screened %d/%d runs detailed, wall %.2fs vs %.2fs full (%.1fx), ranking match %v\n",
		rep.Scores.MAPEPct, rep.Scores.PearsonR, rep.Screen.DetailedRuns, len(plan),
		wallScreened, wallFull, rep.Screen.WallRatio, rep.Screen.RankingMatch)
	return 0
}

// rankingMatches reports whether the promoted benches order identically by
// RB-vs-baseline IPC delta under both runners (ties broken by name, as the
// screening ranking does).
func rankingMatches(a, b *harness.Runner, benches []string) bool {
	order := func(r *harness.Runner) []string {
		type d struct {
			bench string
			delta float64
		}
		ds := make([]d, 0, len(benches))
		for _, bench := range benches {
			base := r.Result(bench, harness.Baseline).IPC
			rb := r.Result(bench, harness.Buffer).IPC
			ds = append(ds, d{bench, 100 * stats.Div(rb-base, base)})
		}
		sort.SliceStable(ds, func(i, j int) bool {
			if ds[i].delta != ds[j].delta {
				return ds[i].delta > ds[j].delta
			}
			return ds[i].bench < ds[j].bench
		})
		out := make([]string, len(ds))
		for i, x := range ds {
			out[i] = x.bench
		}
		return out
	}
	oa, ob := order(a), order(b)
	for i := range oa {
		if oa[i] != ob[i] {
			return false
		}
	}
	return true
}
