package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestParallelSweepByteIdentical is the -j acceptance check: the same sweep
// on one worker and on four must render identical bytes.
func TestParallelSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base := []string{"-experiments", "figure9,figure12", "-benchmarks", "mcf,libquantum",
		"-uops", "8000", "-warmup", "8000", "-q"}
	var seq, par bytes.Buffer
	if code := run(append(append([]string{}, base...), "-j", "1"), &seq, io.Discard); code != 0 {
		t.Fatalf("sequential sweep exited %d", code)
	}
	if code := run(append(append([]string{}, base...), "-j", "4"), &par, io.Discard); code != 0 {
		t.Fatalf("parallel sweep exited %d", code)
	}
	if seq.Len() == 0 {
		t.Fatal("sweep produced no output")
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("-j 4 output differs from -j 1:\n--- j1 ---\n%s\n--- j4 ---\n%s", seq.String(), par.String())
	}
}

// TestSampledSweepRuns checks the -sample path end to end, with a bench
// report carrying the measured speedup and sampling error.
func TestSampledSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	benchFile := filepath.Join(t.TempDir(), "bench.json")
	args := []string{"-experiments", "figure12", "-benchmarks", "mcf",
		"-uops", "60000", "-warmup", "30000", "-q",
		"-sample", "-intervals", "4", "-j", "4", "-bench-out", benchFile}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("sampled sweep exited %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Runs == 0 || rep.WallParallelSec <= 0 || rep.WallSequentialSec <= 0 {
		t.Fatalf("bench report missing timings: %+v", rep)
	}
	if !rep.Sampled || rep.Intervals != 4 {
		t.Fatalf("bench report misdescribes the setup: %+v", rep)
	}
	if rep.SimCycles <= 0 || rep.SimCyclesPerSec <= 0 {
		t.Fatalf("bench report missing throughput: %+v", rep)
	}
	if rep.MaxIPCRelErrPct > 25 {
		t.Errorf("sampling error %.1f%% implausibly large: %+v", rep.MaxIPCRelErrPct, rep)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiments", "figure99"}, &out, &errb); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if !bytes.Contains(errb.Bytes(), []byte("figure99")) {
		t.Fatalf("error does not name the unknown experiment: %s", errb.String())
	}
}

// TestMixModeRuns checks the multi-programmed path end to end: -cores 2
// must render the per-core table with both configurations and the fairness
// summary rows, and the JSON form must key per-core stats by core ID.
func TestMixModeRuns(t *testing.T) {
	args := []string{"-cores", "2", "-mix", "libquantum,mcf", "-uops", "8000", "-warmup", "4000", "-q"}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("mix mode exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"multiprog", "libquantum", "mcf", "WS=", "hmean=", "max=", "Base", "RB"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("mix table missing %q:\n%s", want, out.String())
		}
	}

	var jsOut bytes.Buffer
	if code := run(append(append([]string{}, args...), "-json"), &jsOut, io.Discard); code != 0 {
		t.Fatal("mix mode -json failed")
	}
	var results []struct {
		Config string                     `json:"config"`
		WS     float64                    `json:"weighted_speedup"`
		Cores  map[string]json.RawMessage `json:"cores"`
	}
	if err := json.Unmarshal(jsOut.Bytes(), &results); err != nil {
		t.Fatalf("mix JSON invalid: %v\n%s", err, jsOut.String())
	}
	if len(results) != 2 {
		t.Fatalf("want 2 configurations, got %d", len(results))
	}
	for _, r := range results {
		if r.WS <= 0 || len(r.Cores) != 2 || r.Cores["0"] == nil || r.Cores["1"] == nil {
			t.Fatalf("mix JSON missing per-core-ID stats: %s", jsOut.String())
		}
	}
}

// TestMixModeBadFlags pins flag validation: a -mix/-cores mismatch must be
// rejected.
func TestMixModeBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-cores", "3", "-mix", "mcf,milc"}, &out, &errb); code == 0 {
		t.Fatal("mismatched -mix/-cores accepted")
	}
}
