package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestParallelSweepByteIdentical is the -j acceptance check: the same sweep
// on one worker and on four must render identical bytes.
func TestParallelSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base := []string{"-experiments", "figure9,figure12", "-benchmarks", "mcf,libquantum",
		"-uops", "8000", "-warmup", "8000", "-q"}
	var seq, par bytes.Buffer
	if code := run(append(append([]string{}, base...), "-j", "1"), &seq, io.Discard); code != 0 {
		t.Fatalf("sequential sweep exited %d", code)
	}
	if code := run(append(append([]string{}, base...), "-j", "4"), &par, io.Discard); code != 0 {
		t.Fatalf("parallel sweep exited %d", code)
	}
	if seq.Len() == 0 {
		t.Fatal("sweep produced no output")
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("-j 4 output differs from -j 1:\n--- j1 ---\n%s\n--- j4 ---\n%s", seq.String(), par.String())
	}
}

// TestSampledSweepRuns checks the -sample path end to end, with a bench
// report carrying the measured speedup and sampling error.
func TestSampledSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	benchFile := filepath.Join(t.TempDir(), "bench.json")
	args := []string{"-experiments", "figure12", "-benchmarks", "mcf",
		"-uops", "60000", "-warmup", "30000", "-q",
		"-sample", "-intervals", "4", "-j", "4", "-bench-out", benchFile}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("sampled sweep exited %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Runs == 0 || rep.WallParallelSec <= 0 || rep.WallSequentialSec <= 0 {
		t.Fatalf("bench report missing timings: %+v", rep)
	}
	if !rep.Sampled || rep.Intervals != 4 {
		t.Fatalf("bench report misdescribes the setup: %+v", rep)
	}
	if rep.SimCycles <= 0 || rep.SimCyclesPerSec <= 0 {
		t.Fatalf("bench report missing throughput: %+v", rep)
	}
	if rep.MaxIPCRelErrPct > 25 {
		t.Errorf("sampling error %.1f%% implausibly large: %+v", rep.MaxIPCRelErrPct, rep)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiments", "figure99"}, &out, &errb); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if !bytes.Contains(errb.Bytes(), []byte("figure99")) {
		t.Fatalf("error does not name the unknown experiment: %s", errb.String())
	}
}
