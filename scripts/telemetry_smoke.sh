#!/bin/sh
# Telemetry smoke test (make telemetry-smoke, CI "telemetry" job).
#
# Checks the live-introspection acceptance criteria end to end:
#   1. `-tags nometrics` still builds (the compile-out path stays green).
#   2. Every telemetry endpoint serves while a parallel sampled sweep is
#      actually running: /healthz, /metrics (with engine counters),
#      /metrics.json, /progress (with live units), /debug/vars, and an SSE
#      frame from /progress?stream=1.
#   3. A forced watchdog trip (-watchdog 50) fails the run AND leaves a
#      non-empty flight-recorder JSONL dump whose path is in the error.
set -eu

tmp=$(mktemp -d)
pid=""
trap 'test -n "$pid" && kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT

echo "== build (including -tags nometrics)"
go build -o "$tmp/sweep" ./cmd/runahead-sweep
go build -o "$tmp/sim" ./cmd/runahead-sim
go build -tags nometrics ./...

echo "== live sweep with telemetry"
"$tmp/sweep" -experiments figure9 -benchmarks mcf,lbm,libquantum,milc \
    -uops 400000 -sample -j 4 -q -telemetry-addr 127.0.0.1:0 \
    -out /dev/null 2>"$tmp/sweep.log" &
pid=$!

# The server logs its bound address (port 0 = ephemeral) on startup.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|^telemetry: http://\([^/]*\)/.*|\1|p' "$tmp/sweep.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$tmp/sweep.log"; echo "FAIL: sweep exited before serving"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "FAIL: telemetry address never appeared"; exit 1; }
echo "   serving on $addr"

curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"'
echo "   /healthz ok"

# Engine counters register when the first core is built; retry briefly.
i=0
until curl -fsS "http://$addr/metrics" | grep -q '^sim_cycles_total'; do
    i=$((i + 1))
    [ $i -lt 50 ] || { echo "FAIL: sim_cycles_total never showed up in /metrics"; exit 1; }
    sleep 0.1
done
curl -fsS "http://$addr/metrics" | grep -q '^# TYPE core_warp_skip_cycles histogram'
echo "   /metrics ok"

curl -fsS "http://$addr/metrics.json" | grep -q '"name"'
echo "   /metrics.json ok"

curl -fsS "http://$addr/progress" | grep -q '"runsTotal":20'
echo "   /progress ok"

curl -fsS "http://$addr/debug/vars" | grep -q '"memstats"'
echo "   /debug/vars ok"

# One SSE frame is enough; curl's --max-time abort is expected.
curl -sS -N --max-time 3 "http://$addr/progress?stream=1&intervalMs=200" \
    >"$tmp/sse" 2>/dev/null || true
grep -q '^data: {' "$tmp/sse"
echo "   /progress?stream=1 ok"

wait "$pid" || { cat "$tmp/sweep.log"; echo "FAIL: sweep failed"; exit 1; }
pid=""
echo "   sweep completed"

echo "== forced watchdog trip dumps the flight recorder"
if "$tmp/sim" -bench mcf -mode baseline -uops 50000 -watchdog 50 \
    -flight-dump "$tmp/flight" >/dev/null 2>"$tmp/trip.log"; then
    echo "FAIL: watchdog run unexpectedly succeeded"
    exit 1
fi
grep -q "watchdog" "$tmp/trip.log"
grep -q "flight recorder dumped to" "$tmp/trip.log"
dump="$tmp/flight/flight-mcf-Base.jsonl"
[ -s "$dump" ] || { echo "FAIL: flight dump missing or empty"; exit 1; }
grep -q '"kind":"mark"' "$dump"
echo "   dump ok: $(wc -l <"$dump") events in ${dump##*/}"

echo "telemetry smoke: PASS"
