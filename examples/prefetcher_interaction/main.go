// This example reproduces the Section 6.2 story on two benchmarks: the
// stream prefetcher covers sequential access (libquantum) so runahead adds
// little on top, while prefetcher-hostile strides (zeusmp) leave all the
// latency for runahead to hide — which is why the paper evaluates the
// techniques both with and without prefetching.
package main

import (
	"fmt"
	"log"

	"runaheadsim"
)

func ipc(bench string, mode runaheadsim.Mode, pf bool) float64 {
	res, err := runaheadsim.Run(runaheadsim.Config{
		Benchmark:    bench,
		Mode:         mode,
		Prefetcher:   pf,
		Enhancements: mode == runaheadsim.ModeHybrid,
		MeasureUops:  80_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.IPC
}

func main() {
	fmt.Printf("%-12s %10s %10s %14s %16s\n", "benchmark", "base", "PF only", "hybrid only", "hybrid + PF")
	for _, bench := range []string{"libquantum", "zeusmp"} {
		base := ipc(bench, runaheadsim.ModeBaseline, false)
		pf := ipc(bench, runaheadsim.ModeBaseline, true)
		hy := ipc(bench, runaheadsim.ModeHybrid, false)
		both := ipc(bench, runaheadsim.ModeHybrid, true)
		fmt.Printf("%-12s %10.3f %9.0f%% %13.0f%% %15.0f%%\n",
			bench, base, 100*(pf/base-1), 100*(hy/base-1), 100*(both/base-1))
	}
	fmt.Println("\npercentages are IPC gains over the no-prefetching baseline (Figure 15's axes);")
	fmt.Println("the prefetcher wins on the sequential stream, runahead wins on the hostile")
	fmt.Println("stride, and the combination takes the best of both.")
}
