// This example drops below the facade to the library layers: it builds two
// custom workloads with the program builder — a serial pointer chase and an
// mcf-style independent gather — runs them on the simulated core directly,
// and shows the paper's core insight: runahead only helps when the miss
// dependence chains are independent of the blocked miss. A serial chase
// poisons every subsequent node address; a gather keeps producing new
// misses.
package main

import (
	"fmt"

	"runaheadsim/internal/core"
	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// chase builds one long linked list: node_{k+1} = *node_k. Every next
// pointer depends on the previous miss — runahead's worst case.
func chase() *prog.Program {
	b := prog.NewBuilder("serial-chase")
	const nodes = 1 << 14
	base := b.Alloc(nodes*2112, 64)
	for i := uint64(0); i < nodes; i++ {
		next := (i*40503 + 1) & (nodes - 1)
		b.Mem().Write64(base+i*2112, int64(base+next*2112))
	}
	const rP = isa.Reg(1)
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rP, int64(base)).Jmp(loop)
	loop.Ld(rP, rP, 0).Bnez(rP, loop)
	b.Block("wrap").Movi(rP, int64(base)).Jmp(loop)
	return b.MustBuild()
}

// gather builds mcf-style independent misses: the address of iteration k+1
// never depends on the data of iteration k.
func gather() *prog.Program {
	b := prog.NewBuilder("independent-gather")
	const slots = 1 << 14
	base := b.Alloc(slots*2112, 64)
	const rI, rIdx, rAddr, rV, rAcc = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rI, 0).Movi(rAcc, 0).Movi(rAddr, int64(base)).Jmp(loop)
	loop.OpI(isa.MULI, rIdx, rI, 40503).
		OpI(isa.ANDI, rIdx, rIdx, slots-1).
		OpI(isa.MULI, rIdx, rIdx, 2112).
		Emit(isa.Uop{Op: isa.MOVI, Dst: rAddr, Imm: int64(base)}).
		Add(rAddr, rAddr, rIdx).
		Ld(rV, rAddr, 0).
		Add(rAcc, rAcc, rV).
		Addi(rI, rI, 1).
		Jmp(loop)
	return b.MustBuild()
}

func run(p *prog.Program, mode core.Mode) *core.Stats {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	c := core.New(cfg, p)
	c.Run(20_000) // warm caches and predictors
	c.ResetStats()
	return c.Run(60_000)
}

func main() {
	for _, p := range []*prog.Program{chase(), gather()} {
		base := run(p, core.ModeNone)
		buf := run(p, core.ModeBufferCC)
		mlp := 0.0
		if buf.RunaheadIntervals > 0 {
			mlp = float64(buf.RunaheadMissesLLC) / float64(buf.RunaheadIntervals)
		}
		fmt.Printf("%-20s baseline IPC %.3f | runahead buffer IPC %.3f (%+.0f%%) | %.1f new misses per interval\n",
			p.Name, base.IPC(), buf.IPC(), 100*(buf.IPC()/base.IPC()-1), mlp)
	}
	fmt.Println("\nthe chase's next-pointer loads are poisoned by the blocking miss, so the")
	fmt.Println("buffer loop uncovers nothing; the gather's chains are independent and the")
	fmt.Println("buffer runs far ahead — the filtering insight of Section 3.1.")
}
