// This example reproduces the Figure 17 trade-off on one benchmark: how
// much performance each runahead scheme buys, and what it costs in energy.
// Traditional runahead keeps the front end burning power to fetch filler
// operations; the runahead buffer clock-gates it and loops only the filtered
// chain, turning an energy loss into a saving.
package main

import (
	"fmt"
	"log"

	"runaheadsim"
)

func main() {
	const bench = "mcf"
	type system struct {
		label string
		mode  runaheadsim.Mode
		enh   bool
	}
	systems := []system{
		{"baseline", runaheadsim.ModeBaseline, false},
		{"runahead", runaheadsim.ModeRunahead, false},
		{"runahead enhanced", runaheadsim.ModeRunahead, true},
		{"runahead buffer", runaheadsim.ModeRunaheadBuffer, false},
		{"runahead buffer + CC", runaheadsim.ModeRunaheadBufferCC, false},
		{"hybrid", runaheadsim.ModeHybrid, true},
	}

	fmt.Printf("%-22s %8s %10s %14s %12s\n", "system", "IPC", "IPC gain", "energy (uJ)", "energy diff")
	for _, s := range systems {
		res, err := runaheadsim.Run(runaheadsim.Config{
			Benchmark:    bench,
			Mode:         s.mode,
			Enhancements: s.enh,
			MeasureUops:  80_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.3f %9.1f%% %14.1f %11.1f%%\n",
			s.label, res.IPC, res.IPCDeltaPct, res.EnergyUJ, res.EnergyDeltaPct)
	}
	fmt.Println("\nthe buffer converts traditional runahead's front-end energy overhead into a")
	fmt.Println("saving: it fetches nothing, loops a <=32-uop chain, and still runs further")
	fmt.Println("ahead (Section 6.3).")
}
