// Quickstart: run one benchmark under the baseline, under traditional
// runahead, and under the paper's runahead buffer with chain cache (its most
// energy-efficient system), and print the comparison — the 60-second tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"runaheadsim"
)

func main() {
	const bench = "mcf"

	run := func(mode runaheadsim.Mode) runaheadsim.Result {
		res, err := runaheadsim.Run(runaheadsim.Config{
			Benchmark:   bench,
			Mode:        mode,
			MeasureUops: 100_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(runaheadsim.ModeBaseline)
	trad := run(runaheadsim.ModeRunahead)
	buf := run(runaheadsim.ModeRunaheadBufferCC)

	fmt.Printf("benchmark: %s (MPKI %.1f — %s spends %.0f%% of baseline cycles stalled on DRAM)\n\n",
		bench, base.MPKI, bench, base.MemStallPct)
	fmt.Printf("%-26s %8s %10s %13s\n", "system", "IPC", "IPC gain", "energy diff")
	for _, r := range []struct {
		name string
		res  runaheadsim.Result
	}{
		{"baseline", base},
		{"traditional runahead", trad},
		{"runahead buffer + CC", buf},
	} {
		fmt.Printf("%-26s %8.3f %9.1f%% %12.1f%%\n", r.name, r.res.IPC, r.res.IPCDeltaPct, r.res.EnergyDeltaPct)
	}
	fmt.Printf("\nthe buffer ran %d intervals generating %.1f misses each, with the front end\n",
		buf.RunaheadIntervals, buf.MissesPerInterval)
	fmt.Printf("clock-gated for %.0f%% of all cycles — more memory-level parallelism than\n",
		100*float64(buf.RunaheadBufferCycles)/float64(buf.Cycles))
	fmt.Printf("traditional runahead (%.1f misses/interval) at lower energy\n", trad.MissesPerInterval)
}
