package runaheadsim_test

import (
	"fmt"

	"runaheadsim"
)

// The suite mirrors SPEC CPU2006: 29 benchmarks, 13 of them medium or high
// memory intensity (Table 2).
func ExampleBenchmarks() {
	fmt.Println(len(runaheadsim.Benchmarks()), "benchmarks,",
		len(runaheadsim.MediumHighBenchmarks()), "medium+high")
	fmt.Println("most intense:", runaheadsim.Benchmarks()[28])
	// Output:
	// 29 benchmarks, 13 medium+high
	// most intense: mcf
}

// Runs are deterministic, so even derived quantities are stable. This
// example checks the paper's qualitative claim on mcf rather than printing
// raw numbers: the runahead buffer must beat the baseline.
func ExampleRun() {
	base, err := runaheadsim.Run(runaheadsim.Config{
		Benchmark: "mcf", MeasureUops: 20_000, WarmupUops: 20_000,
	})
	if err != nil {
		panic(err)
	}
	buf, err := runaheadsim.Run(runaheadsim.Config{
		Benchmark: "mcf", Mode: runaheadsim.ModeRunaheadBufferCC,
		MeasureUops: 20_000, WarmupUops: 20_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("buffer faster:", buf.IPC > base.IPC)
	fmt.Println("entered runahead:", buf.RunaheadIntervals > 0)
	// Output:
	// buffer faster: true
	// entered runahead: true
}
