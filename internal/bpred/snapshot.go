package bpred

import "runaheadsim/internal/snapshot"

// SnapshotTo serializes the predictor: geometry first (so a restore into a
// differently-sized predictor fails loudly), then tables, history, BTB, RAS
// and statistics, in declaration order.
func (p *Predictor) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("bpred")
	w.Int(p.cfg.BimodalEntries)
	w.Int(p.cfg.GshareEntries)
	w.Int(p.cfg.ChooserEntries)
	w.Int(p.cfg.HistoryBits)
	w.Int(p.cfg.BTBEntries)
	w.Int(p.cfg.RASEntries)
	w.Bytes64(p.bimodal)
	w.Bytes64(p.gshare)
	w.Bytes64(p.chooser)
	w.U64(p.ghr)
	for i := range p.btb {
		e := &p.btb[i]
		w.U64(e.tag)
		w.U64(e.target)
		w.Bool(e.valid)
	}
	for _, a := range p.ras.entries {
		w.U64(a)
	}
	w.Int(p.ras.top)
	w.Int(p.ras.depth)
	w.U64(p.Lookups)
	w.U64(p.Mispredicts)
	w.U64(p.BTBMisses)
	return nil
}

// RestoreFrom reads state written by SnapshotTo into p, which must have the
// same configuration.
func (p *Predictor) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("bpred")
	for _, g := range []struct {
		name string
		have int
	}{
		{"bimodal entries", p.cfg.BimodalEntries},
		{"gshare entries", p.cfg.GshareEntries},
		{"chooser entries", p.cfg.ChooserEntries},
		{"history bits", p.cfg.HistoryBits},
		{"BTB entries", p.cfg.BTBEntries},
		{"RAS entries", p.cfg.RASEntries},
	} {
		if got := r.Int(); r.Err() == nil && got != g.have {
			r.Failf("bpred: %s is %d, snapshot has %d", g.name, g.have, got)
		}
	}
	if r.Err() != nil {
		return r.Err()
	}
	for _, t := range []struct {
		name string
		dst  []uint8
	}{{"bimodal", p.bimodal}, {"gshare", p.gshare}, {"chooser", p.chooser}} {
		b := r.Bytes64()
		if r.Err() != nil {
			return r.Err()
		}
		if len(b) != len(t.dst) {
			r.Failf("bpred: %s table is %d entries, snapshot has %d", t.name, len(t.dst), len(b))
			return r.Err()
		}
		copy(t.dst, b)
	}
	p.ghr = r.U64() & p.ghrMask
	for i := range p.btb {
		e := &p.btb[i]
		e.tag = r.U64()
		e.target = r.U64()
		e.valid = r.Bool()
	}
	for i := range p.ras.entries {
		p.ras.entries[i] = r.U64()
	}
	p.ras.top = r.Int()
	p.ras.depth = r.Int()
	p.Lookups = r.U64()
	p.Mispredicts = r.U64()
	p.BTBMisses = r.U64()
	return r.Err()
}
