package bpred

import (
	"testing"
	"testing/quick"
)

func newTest() *Predictor {
	cfg := DefaultConfig()
	cfg.BimodalEntries = 256
	cfg.GshareEntries = 256
	cfg.ChooserEntries = 256
	cfg.BTBEntries = 64
	return New(cfg)
}

func TestAlwaysTakenLearns(t *testing.T) {
	p := newTest()
	pc := uint64(0x400100)
	wrong := 0
	for i := 0; i < 100; i++ {
		pr := p.PredictDirection(pc)
		if !pr.Taken {
			wrong++
		}
		p.Resolve(pc, pr, true)
	}
	if wrong > 3 {
		t.Fatalf("always-taken branch mispredicted %d/100 times", wrong)
	}
}

func TestAlternatingPatternLearnedByGshare(t *testing.T) {
	p := newTest()
	pc := uint64(0x400200)
	taken := false
	wrong := 0
	for i := 0; i < 400; i++ {
		pr := p.PredictDirection(pc)
		if pr.Taken != taken {
			wrong++
			// The core repairs the speculative history on every
			// misprediction; without this the gshare history never matches
			// the path that trained it.
			p.RepairHistory(pr.GHRBefore, taken)
		}
		p.Resolve(pc, pr, taken)
		taken = !taken
	}
	// Bimodal cannot learn T/N/T/N; gshare + chooser must pick it up, so the
	// steady-state accuracy should be high.
	if wrong > 60 {
		t.Fatalf("alternating pattern mispredicted %d/400 times", wrong)
	}
}

func TestMispredictCounting(t *testing.T) {
	p := newTest()
	pc := uint64(0x400300)
	pr := p.PredictDirection(pc)
	p.Resolve(pc, pr, !pr.Taken)
	if p.Mispredicts != 1 {
		t.Fatalf("Mispredicts = %d, want 1", p.Mispredicts)
	}
	if p.Lookups != 1 {
		t.Fatalf("Lookups = %d, want 1", p.Lookups)
	}
}

func TestHistoryRepair(t *testing.T) {
	p := newTest()
	pc := uint64(0x400400)
	pr := p.PredictDirection(pc)
	// Pretend more speculative branches polluted the history.
	p.NoteUnconditional()
	p.NoteUnconditional()
	p.RepairHistory(pr.GHRBefore, true)
	want := (pr.GHRBefore << 1) | 1
	if p.GHR() != want&p.ghrMask {
		t.Fatalf("GHR after repair = %#x, want %#x", p.GHR(), want)
	}
}

func TestGHRBounded(t *testing.T) {
	p := newTest()
	f := func(n uint8) bool {
		for i := 0; i < int(n); i++ {
			p.NoteUnconditional()
		}
		return p.GHR() <= p.ghrMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetGHRMasks(t *testing.T) {
	p := newTest()
	p.SetGHR(^uint64(0))
	if p.GHR() != p.ghrMask {
		t.Fatalf("SetGHR did not mask: %#x", p.GHR())
	}
}

func TestBTB(t *testing.T) {
	p := newTest()
	if _, ok := p.LookupBTB(0x400500); ok {
		t.Fatal("empty BTB must miss")
	}
	if p.BTBMisses != 1 {
		t.Fatal("BTB miss not counted")
	}
	p.UpdateBTB(0x400500, 0x400800)
	tgt, ok := p.LookupBTB(0x400500)
	if !ok || tgt != 0x400800 {
		t.Fatalf("BTB lookup = %#x,%v", tgt, ok)
	}
	// A conflicting PC (same index, different tag) must evict.
	conflict := 0x400500 + uint64(64*8)
	p.UpdateBTB(conflict, 0x400900)
	if _, ok := p.LookupBTB(0x400500); ok {
		t.Fatal("direct-mapped BTB should have evicted the old entry")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		if got := r.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if got := r.Pop(); got != 0 {
		t.Fatalf("underflow Pop = %d, want 0", got)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got := r.Pop(); got != 3 {
		t.Fatalf("Pop = %d, want 3", got)
	}
	if got := r.Pop(); got != 2 {
		t.Fatalf("Pop = %d, want 2", got)
	}
	if got := r.Pop(); got != 0 {
		t.Fatalf("beyond capacity Pop = %d, want 0", got)
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(4)
	r.Push(10)
	r.Push(20)
	snap := r.Snapshot()
	r.Pop()
	r.Push(99)
	r.Push(98)
	r.Restore(snap)
	if got := r.Pop(); got != 20 {
		t.Fatalf("after restore Pop = %d, want 20", got)
	}
	if got := r.Pop(); got != 10 {
		t.Fatalf("after restore Pop = %d, want 10", got)
	}
}

func TestNewValidatesSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two table size must panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.BimodalEntries = 100
	New(cfg)
}

func TestBumpSaturates(t *testing.T) {
	if bump(3, true) != 3 {
		t.Fatal("bump must saturate at 3")
	}
	if bump(0, false) != 0 {
		t.Fatal("bump must saturate at 0")
	}
	if bump(1, true) != 2 || bump(2, false) != 1 {
		t.Fatal("bump must move by one")
	}
}

// Distinct PCs train independently in the bimodal table (no aliasing for
// adjacent uop addresses within table reach).
func TestNoAliasingForAdjacentPCs(t *testing.T) {
	p := newTest()
	pcA, pcB := uint64(0x400000), uint64(0x400008)
	for i := 0; i < 50; i++ {
		prA := p.PredictDirection(pcA)
		p.Resolve(pcA, prA, true)
		prB := p.PredictDirection(pcB)
		p.Resolve(pcB, prB, false)
	}
	if pr := p.PredictDirection(pcA); !pr.Taken {
		t.Fatal("pcA should predict taken")
	}
	if pr := p.PredictDirection(pcB); pr.Taken {
		t.Fatal("pcB should predict not-taken")
	}
}
