// Package bpred implements the hybrid branch predictor of the simulated core
// (Table 1: "Hybrid Branch Predictor"): a bimodal table and a gshare table
// arbitrated by a chooser, plus a branch target buffer and a return address
// stack. The global history register is updated speculatively at predict
// time and restored from per-branch snapshots on misprediction or runahead
// exit, exactly the state the paper says runahead must checkpoint.
package bpred

// Config sizes the predictor structures. All table sizes must be powers of
// two.
type Config struct {
	BimodalEntries int
	GshareEntries  int
	ChooserEntries int
	HistoryBits    int
	BTBEntries     int
	RASEntries     int
}

// DefaultConfig matches the simulated core: 8K-entry components, 16 bits of
// global history, a 4K-entry BTB and a 16-entry RAS.
func DefaultConfig() Config {
	return Config{
		BimodalEntries: 8192,
		GshareEntries:  8192,
		ChooserEntries: 8192,
		HistoryBits:    16,
		BTBEntries:     4096,
		RASEntries:     16,
	}
}

// Predictor is the hybrid direction predictor with BTB and RAS.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit saturating counters
	gshare  []uint8
	chooser []uint8 // >= 2 selects gshare
	ghr     uint64
	ghrMask uint64

	btb []btbEntry
	ras *RAS

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
	BTBMisses   uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// New returns a predictor with all counters weakly not-taken.
func New(cfg Config) *Predictor {
	for _, n := range []int{cfg.BimodalEntries, cfg.GshareEntries, cfg.ChooserEntries, cfg.BTBEntries} {
		if n <= 0 || n&(n-1) != 0 {
			panic("bpred: table sizes must be positive powers of two")
		}
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.BimodalEntries),
		gshare:  make([]uint8, cfg.GshareEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
		ghrMask: (1 << cfg.HistoryBits) - 1,
		btb:     make([]btbEntry, cfg.BTBEntries),
		ras:     NewRAS(cfg.RASEntries),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 2 // weakly prefer gshare
	}
	return p
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 3) & uint64(p.cfg.BimodalEntries-1))
}

func (p *Predictor) gshareIdx(pc uint64) int {
	return int(((pc >> 3) ^ p.ghr) & uint64(p.cfg.GshareEntries-1))
}

func (p *Predictor) gshareIdxWithGHR(pc, ghr uint64) int {
	return int(((pc >> 3) ^ ghr) & uint64(p.cfg.GshareEntries-1))
}

func (p *Predictor) chooserIdx(pc uint64) int {
	return int((pc >> 3) & uint64(p.cfg.ChooserEntries-1))
}

// Prediction is the result of a direction lookup, carrying everything needed
// to update the tables later under the history that produced the prediction.
type Prediction struct {
	Taken      bool
	GHRBefore  uint64 // history before the speculative update
	UsedGshare bool
}

// PredictDirection predicts the direction of the conditional branch at pc and
// speculatively shifts the outcome into the global history.
func (p *Predictor) PredictDirection(pc uint64) Prediction {
	p.Lookups++
	bi := p.bimodal[p.bimodalIdx(pc)] >= 2
	gs := p.gshare[p.gshareIdx(pc)] >= 2
	useG := p.chooser[p.chooserIdx(pc)] >= 2
	taken := bi
	if useG {
		taken = gs
	}
	pr := Prediction{Taken: taken, GHRBefore: p.ghr, UsedGshare: useG}
	p.pushHistory(taken)
	return pr
}

// NoteUnconditional shifts a taken outcome into the history for an
// unconditional branch without consulting the tables.
func (p *Predictor) NoteUnconditional() { p.pushHistory(true) }

func (p *Predictor) pushHistory(taken bool) {
	p.ghr = (p.ghr << 1) & p.ghrMask
	if taken {
		p.ghr |= 1
	}
}

// Resolve updates the predictor for a resolved conditional branch. pr must be
// the Prediction returned by PredictDirection for this dynamic branch; the
// gshare update is performed under the history that produced the prediction.
func (p *Predictor) Resolve(pc uint64, pr Prediction, taken bool) {
	if taken != pr.Taken {
		p.Mispredicts++
	}
	bIdx := p.bimodalIdx(pc)
	gIdx := p.gshareIdxWithGHR(pc, pr.GHRBefore)
	cIdx := p.chooserIdx(pc)
	bCorrect := (p.bimodal[bIdx] >= 2) == taken
	gCorrect := (p.gshare[gIdx] >= 2) == taken
	p.bimodal[bIdx] = bump(p.bimodal[bIdx], taken)
	p.gshare[gIdx] = bump(p.gshare[gIdx], taken)
	if bCorrect != gCorrect {
		p.chooser[cIdx] = bump(p.chooser[cIdx], gCorrect)
	}
}

// RepairHistory restores the global history to ghrBefore with the corrected
// outcome shifted in; the core calls this when recovering from a mispredicted
// conditional branch.
func (p *Predictor) RepairHistory(ghrBefore uint64, taken bool) {
	p.ghr = ghrBefore
	p.pushHistory(taken)
}

// GHR returns the current global history (for checkpointing).
func (p *Predictor) GHR() uint64 { return p.ghr }

// SetGHR restores a checkpointed global history.
func (p *Predictor) SetGHR(v uint64) { p.ghr = v & p.ghrMask }

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// LookupBTB returns the predicted target for the branch at pc, if any.
func (p *Predictor) LookupBTB(pc uint64) (uint64, bool) {
	e := &p.btb[(pc>>3)&uint64(p.cfg.BTBEntries-1)]
	if e.valid && e.tag == pc {
		return e.target, true
	}
	p.BTBMisses++
	return 0, false
}

// UpdateBTB records the taken target of the branch at pc.
func (p *Predictor) UpdateBTB(pc, target uint64) {
	e := &p.btb[(pc>>3)&uint64(p.cfg.BTBEntries-1)]
	e.tag, e.target, e.valid = pc, target, true
}

// RAS returns the predictor's return address stack.
func (p *Predictor) RAS() *RAS { return p.ras }

// RAS is a circular return address stack. Overflow wraps (overwriting the
// oldest entry) and underflow returns garbage-but-valid zero, like hardware.
type RAS struct {
	entries []uint64
	top     int // index of the next push slot
	depth   int // current valid depth, capped at len(entries)
}

// NewRAS returns a return address stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("bpred: RAS needs at least one entry")
	}
	return &RAS{entries: make([]uint64, n)}
}

// Push records a return address (on CALL).
func (r *RAS) Push(addr uint64) {
	r.entries[r.top] = addr
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a RET.
func (r *RAS) Pop() uint64 {
	if r.depth == 0 {
		return 0
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top]
}

// Snapshot captures the full RAS state (it is small; the paper checkpoints
// the RAS on runahead entry).
func (r *RAS) Snapshot() RASSnapshot {
	s := RASSnapshot{top: r.top, depth: r.depth}
	s.entries = append(s.entries, r.entries...)
	return s
}

// Restore rewinds the RAS to a snapshot.
func (r *RAS) Restore(s RASSnapshot) {
	copy(r.entries, s.entries)
	r.top, r.depth = s.top, s.depth
}

// RASSnapshot is a saved RAS state.
type RASSnapshot struct {
	entries []uint64
	top     int
	depth   int
}

// ResetStats zeroes the statistics counters, preserving predictor state.
func (p *Predictor) ResetStats() {
	p.Lookups, p.Mispredicts, p.BTBMisses = 0, 0, 0
}
