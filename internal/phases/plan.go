package phases

import (
	"fmt"
	"math"

	"runaheadsim/internal/snapshot"
)

// Phase is one behavior cluster of the measured region. Its representative
// window is simulated in detail and stands in for every member window,
// weighted by the uops the phase covers.
type Phase struct {
	Rep     int     // representative window index (closest to the centroid)
	Members []int   // member window indices, ascending
	Weight  uint64  // total uops across member windows
	AvgDist float64 // uop-weighted mean Manhattan distance of members to the centroid, in [0, 2]
}

// Plan is the outcome of phase analysis: the window grid, the per-window
// phase assignment, and the phases in ascending representative-start order.
type Plan struct {
	Windows []Window
	Assign  []int // window index -> index into Phases
	Phases  []Phase
}

// PlanKind is the snapshot container kind for a serialized Plan.
const PlanKind = "phaseplan"

// Build runs phase analysis over per-window BBVs. vecs[i] is the normalized
// basic-block vector of windows[i]; maxK caps the BIC search and forceK,
// when positive, pins the phase count (the -phases override). The returned
// plan is deterministic: same inputs, same bytes.
func Build(windows []Window, vecs []Vector, maxK, forceK int) *Plan {
	if len(windows) != len(vecs) {
		panic(fmt.Sprintf("phases: %d windows but %d vectors", len(windows), len(vecs)))
	}
	cl := cluster(vecs, maxK, forceK)
	p := &Plan{Windows: windows, Assign: make([]int, len(windows))}
	if len(windows) == 0 {
		return p
	}

	// Gather members per cluster in window order, pick representatives, and
	// drop clusters that ended empty (k exceeded the distinct vectors).
	type draft struct {
		members []int
		rep     int
	}
	drafts := make([]draft, cl.k)
	for i, a := range cl.assign {
		drafts[a].members = append(drafts[a].members, i)
	}
	var kept []draft
	for j := range drafts {
		if len(drafts[j].members) == 0 {
			continue
		}
		// Representative: member closest to the centroid, lowest window
		// index on ties (strict < over an ascending scan).
		rep, repD := drafts[j].members[0], sqDist(vecs[drafts[j].members[0]], cl.centroids[j])
		for _, i := range drafts[j].members[1:] {
			if d := sqDist(vecs[i], cl.centroids[j]); d < repD {
				rep, repD = i, d
			}
		}
		kept = append(kept, draft{members: drafts[j].members, rep: rep})
	}
	// Order phases by representative window start so the fast-forward streams
	// checkpoints in ascending uop order.
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && windows[kept[j].rep].Start < windows[kept[j-1].rep].Start; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	for _, d := range kept {
		ph := Phase{Rep: d.rep, Members: d.members}
		centroid := centroidOf(vecs, d.members)
		var distSum float64
		for _, i := range d.members {
			ph.Weight += windows[i].Len
			distSum += float64(windows[i].Len) * Manhattan(vecs[i], centroid)
		}
		if ph.Weight > 0 {
			ph.AvgDist = distSum / float64(ph.Weight)
		}
		idx := len(p.Phases)
		for _, i := range d.members {
			p.Assign[i] = idx
		}
		p.Phases = append(p.Phases, ph)
	}
	return p
}

// centroidOf recomputes the mean vector of the given members in index order.
func centroidOf(vecs []Vector, members []int) Vector {
	c := make(Vector, len(vecs[members[0]]))
	for _, i := range members {
		for d, x := range vecs[i] {
			c[d] += x
		}
	}
	inv := 1 / float64(len(members))
	for d := range c {
		c[d] *= inv
	}
	return c
}

// K returns the number of phases.
func (p *Plan) K() int { return len(p.Phases) }

// TotalWeight returns the uops the plan covers (the measured region length).
func (p *Plan) TotalWeight() uint64 {
	var w uint64
	for _, ph := range p.Phases {
		w += ph.Weight
	}
	return w
}

// AvgDispersion returns the uop-weighted mean Manhattan distance of windows
// to their phase centroid across the whole plan — the [0, 2] dissimilarity
// the sampling confidence intervals feed on.
func (p *Plan) AvgDispersion() float64 {
	var sum float64
	var w uint64
	for _, ph := range p.Phases {
		sum += float64(ph.Weight) * ph.AvgDist
		w += ph.Weight
	}
	if w == 0 {
		return 0
	}
	return sum / float64(w)
}

// Encode serializes the plan into a self-verifying snapshot container, so a
// sweep can archive the sampling decision next to its checkpoints and a
// later run can verify it reproduced the same plan bit-for-bit.
func (p *Plan) Encode() []byte {
	w := &snapshot.Writer{}
	w.Mark("phases")
	w.Int(len(p.Windows))
	for _, win := range p.Windows {
		w.U64(win.Start)
		w.U64(win.Len)
	}
	w.Int(len(p.Assign))
	for _, a := range p.Assign {
		w.Int(a)
	}
	w.Int(len(p.Phases))
	for _, ph := range p.Phases {
		w.Int(ph.Rep)
		w.Int(len(ph.Members))
		for _, m := range ph.Members {
			w.Int(m)
		}
		w.U64(ph.Weight)
		w.U64(math.Float64bits(ph.AvgDist))
	}
	return snapshot.Encode(PlanKind, w.Bytes())
}

// DecodePlan reads a plan container produced by Encode.
func DecodePlan(data []byte) (*Plan, error) {
	payload, err := snapshot.Decode(data, PlanKind)
	if err != nil {
		return nil, err
	}
	r := snapshot.NewReader(payload)
	r.Expect("phases")
	p := &Plan{}
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	p.Windows = make([]Window, n)
	for i := range p.Windows {
		p.Windows[i].Start = r.U64()
		p.Windows[i].Len = r.U64()
	}
	n = r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	p.Assign = make([]int, n)
	for i := range p.Assign {
		p.Assign[i] = r.Int()
	}
	n = r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	p.Phases = make([]Phase, n)
	for i := range p.Phases {
		ph := &p.Phases[i]
		ph.Rep = r.Int()
		m := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		ph.Members = make([]int, m)
		for j := range ph.Members {
			ph.Members[j] = r.Int()
		}
		ph.Weight = r.U64()
		ph.AvgDist = math.Float64frombits(r.U64())
	}
	return p, r.Err()
}
