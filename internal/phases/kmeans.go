package phases

import "math"

// maxLloydIters bounds the Lloyd refinement loop; assignments on these small
// window sets converge in a handful of iterations, so hitting the bound is a
// safety valve, not an expected exit.
const maxLloydIters = 64

// clustering is one k-means outcome over a fixed vector set.
type clustering struct {
	k         int
	assign    []int    // vector index -> cluster
	centroids []Vector // cluster -> mean vector
	sse       float64  // total within-cluster squared Euclidean error
}

// kmeans clusters vecs into k groups deterministically. Seeding is maximin
// (farthest-point) from vector 0, assignment ties break toward the lowest
// cluster index, and empty clusters are repaired by stealing the globally
// worst-fit vector — all scan-order decisions, no randomness.
func kmeans(vecs []Vector, k int) clustering {
	n := len(vecs)
	if k > n {
		k = n
	}
	cl := clustering{k: k, assign: make([]int, n), centroids: make([]Vector, k)}
	if n == 0 || k == 0 {
		return cl
	}
	dim := len(vecs[0])

	// Maximin seeding: start from vector 0, then repeatedly take the vector
	// farthest from every already-chosen seed (lowest index on ties).
	seeds := make([]int, 1, k)
	minD := make([]float64, n) // distance to the nearest chosen seed
	for i := range minD {
		minD[i] = sqDist(vecs[i], vecs[0])
	}
	for len(seeds) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if minD[i] > bestD {
				best, bestD = i, minD[i]
			}
		}
		seeds = append(seeds, best)
		for i := range minD {
			if d := sqDist(vecs[i], vecs[best]); d < minD[i] {
				minD[i] = d
			}
		}
	}
	for j, s := range seeds {
		c := make(Vector, dim)
		copy(c, vecs[s])
		cl.centroids[j] = c
	}

	counts := make([]int, k)
	for iter := 0; iter < maxLloydIters; iter++ {
		// Assign: nearest centroid, strict < so ties keep the lowest index.
		changed := false
		for i, v := range vecs {
			best, bestD := 0, sqDist(v, cl.centroids[0])
			for j := 1; j < k; j++ {
				if d := sqDist(v, cl.centroids[j]); d < bestD {
					best, bestD = j, d
				}
			}
			if cl.assign[i] != best {
				cl.assign[i] = best
				changed = true
			}
		}
		// Repair empty clusters: move the vector farthest from its assigned
		// centroid (lowest index on ties) into the empty cluster, one at a
		// time in cluster order.
		for j := 0; j < k; j++ {
			counts[j] = 0
		}
		for _, a := range cl.assign {
			counts[a]++
		}
		for j := 0; j < k; j++ {
			if counts[j] > 0 {
				continue
			}
			worst, worstD := -1, -1.0
			for i, v := range vecs {
				if counts[cl.assign[i]] <= 1 {
					continue // don't empty another cluster
				}
				if d := sqDist(v, cl.centroids[cl.assign[i]]); d > worstD {
					worst, worstD = i, d
				}
			}
			if worst < 0 {
				break // fewer distinct vectors than clusters
			}
			counts[cl.assign[worst]]--
			cl.assign[worst] = j
			counts[j] = 1
			changed = true
		}
		// Update: centroid = mean of members, accumulated in index order so
		// float summation order is fixed.
		for j := range cl.centroids {
			for d := 0; d < dim; d++ {
				cl.centroids[j][d] = 0
			}
		}
		for i, v := range vecs {
			c := cl.centroids[cl.assign[i]]
			for d, x := range v {
				c[d] += x
			}
		}
		for j := range cl.centroids {
			if counts[j] == 0 {
				continue
			}
			inv := 1 / float64(counts[j])
			for d := range cl.centroids[j] {
				cl.centroids[j][d] *= inv
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	for i, v := range vecs {
		cl.sse += sqDist(v, cl.centroids[cl.assign[i]])
	}
	return cl
}

// bic scores a clustering with the Bayesian information criterion under the
// identical-spherical-Gaussian model of x-means (Pelleg & Moore): the
// cluster-size log-likelihood terms minus a parameter penalty of k-1 mixing
// weights, k*d centroid coordinates, and one shared variance. Higher is
// better. A (near-)zero-variance clustering — every vector sitting on its
// centroid — scores +Inf, so the smallest k that explains the data exactly
// wins the scan below.
func bic(cl clustering, n, dim int) float64 {
	if n <= cl.k {
		return math.Inf(-1)
	}
	variance := cl.sse / float64(dim*(n-cl.k))
	if variance < 1e-18 {
		return math.Inf(1)
	}
	counts := make([]float64, cl.k)
	for _, a := range cl.assign {
		counts[a]++
	}
	var loglik float64
	for _, c := range counts {
		if c > 0 {
			loglik += c * math.Log(c)
		}
	}
	nf := float64(n)
	loglik -= nf * math.Log(nf)
	loglik -= nf * float64(dim) / 2 * math.Log(2*math.Pi*variance)
	loglik -= float64(n-cl.k) * float64(dim) / 2
	params := float64(cl.k-1) + float64(cl.k*dim) + 1
	return loglik - params/2*math.Log(nf)
}

// bicThreshold is the SimPoint selection rule: rather than the absolute BIC
// maximum (which overfits low-noise data by always paying the parameter
// penalty for a variance win), pick the smallest k whose score covers at
// least this fraction of the observed [worst, best] score range.
const bicThreshold = 0.9

// phaseNoiseEps is the Manhattan radius around the global centroid below
// which BBV variation counts as measurement noise, not phase structure. A
// steady-state workload whose windows differ only in how loop iterations
// straddle window boundaries produces deviations orders of magnitude below
// this (~1e-4 of the uop mass); a real phase change moves whole basic blocks
// in and out of the mix and lands far above it. Without the floor, BIC's
// Gaussian likelihood diverges as within-cluster variance approaches zero
// and happily splits a homogeneous workload into spurious micro-clusters.
const phaseNoiseEps = 0.02

// cluster picks the phase count: forceK > 0 pins it, otherwise BIC scores
// k = 1..maxK and the smallest k reaching bicThreshold of the score range is
// chosen (the SimPoint rule; ties and an all-equal range resolve to the
// smallest k).
func cluster(vecs []Vector, maxK, forceK int) clustering {
	if forceK > 0 {
		return kmeans(vecs, forceK)
	}
	if maxK < 1 {
		maxK = 1
	}
	if maxK > len(vecs) {
		maxK = len(vecs)
	}
	if homogeneous(vecs) {
		return kmeans(vecs, 1)
	}
	cls := make([]clustering, 0, maxK)
	scores := make([]float64, 0, maxK)
	lo, hi := math.Inf(1), math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		cl := kmeans(vecs, k)
		score := bic(cl, len(vecs), dimOf(vecs))
		cls = append(cls, cl)
		scores = append(scores, score)
		// A +Inf score means this k explains the data exactly; no larger k
		// can do better, so the smallest such k wins immediately.
		if math.IsInf(score, 1) {
			return cl
		}
		if !math.IsInf(score, -1) {
			if score < lo {
				lo = score
			}
			if score > hi {
				hi = score
			}
		}
	}
	if math.IsInf(hi, -1) { // every k was degenerate (k >= n throughout)
		return cls[0]
	}
	threshold := hi - (1-bicThreshold)*(hi-lo)
	for i, score := range scores {
		if score >= threshold {
			return cls[i]
		}
	}
	return cls[len(cls)-1]
}

func dimOf(vecs []Vector) int {
	if len(vecs) == 0 {
		return 0
	}
	return len(vecs[0])
}

// homogeneous reports whether every vector lies within phaseNoiseEps of the
// global centroid — a single-phase workload regardless of what BIC would say.
func homogeneous(vecs []Vector) bool {
	if len(vecs) < 2 {
		return true
	}
	centroid := make(Vector, dimOf(vecs))
	for _, v := range vecs {
		for d, x := range v {
			centroid[d] += x
		}
	}
	inv := 1 / float64(len(vecs))
	for d := range centroid {
		centroid[d] *= inv
	}
	for _, v := range vecs {
		if Manhattan(v, centroid) > phaseNoiseEps {
			return false
		}
	}
	return true
}
