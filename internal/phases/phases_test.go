package phases

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// synth builds W windows of len uops whose vectors alternate between nPhases
// well-separated behaviors, dims wide.
func synth(w, nPhases, dims int, winLen uint64) ([]Window, []Vector) {
	wins := make([]Window, w)
	vecs := make([]Vector, w)
	for i := range wins {
		wins[i] = Window{Start: uint64(i) * winLen, Len: winLen}
		v := make(Vector, dims)
		// Phase p concentrates execution on block p with a small spill onto
		// block p+1 that varies slightly by window, so members of one phase
		// are near but not identical.
		p := i % nPhases
		spill := 0.02 + 0.001*float64(i/nPhases)
		v[p] = 1 - spill
		v[(p+1)%dims] = spill
		vecs[i] = v
	}
	return wins, vecs
}

func TestBuildRecoversPlantedPhases(t *testing.T) {
	wins, vecs := synth(24, 3, 8, 1000)
	p := Build(wins, vecs, 6, 0)
	// BIC must separate the three planted behaviors; subdividing within one
	// (the windows carry a small systematic gradient) is acceptable, merging
	// across behaviors is not.
	if p.K() < 3 || p.K() > 6 {
		t.Fatalf("BIC chose k=%d, want 3..6", p.K())
	}
	if got := p.TotalWeight(); got != 24_000 {
		t.Fatalf("total weight %d, want 24000", got)
	}
	// Every member of a phase must share the planted behavior of its
	// representative.
	for pi, ph := range p.Phases {
		for _, m := range ph.Members {
			if m%3 != ph.Rep%3 {
				t.Errorf("phase %d: window %d grouped with rep %d (different planted phase)", pi, m, ph.Rep)
			}
		}
		if ph.Weight != uint64(len(ph.Members))*1000 {
			t.Errorf("phase %d: weight %d != members %d * 1000", pi, ph.Weight, len(ph.Members))
		}
	}
	// Assign must be consistent with Members.
	for i, a := range p.Assign {
		found := false
		for _, m := range p.Phases[a].Members {
			if m == i {
				found = true
			}
		}
		if !found {
			t.Errorf("window %d assigned to phase %d but absent from its members", i, a)
		}
	}
	// Phases are ordered by representative start.
	for i := 1; i < len(p.Phases); i++ {
		if wins[p.Phases[i].Rep].Start <= wins[p.Phases[i-1].Rep].Start {
			t.Errorf("phase reps out of ascending start order: %d then %d", p.Phases[i-1].Rep, p.Phases[i].Rep)
		}
	}
}

func TestBuildHomogeneousCollapsesToOnePhase(t *testing.T) {
	wins := make([]Window, 16)
	vecs := make([]Vector, 16)
	for i := range wins {
		wins[i] = Window{Start: uint64(i) * 500, Len: 500}
		vecs[i] = Vector{0.5, 0.5, 0, 0}
	}
	p := Build(wins, vecs, 8, 0)
	if p.K() != 1 {
		t.Fatalf("identical windows clustered into k=%d, want 1", p.K())
	}
	if p.Phases[0].AvgDist != 0 {
		t.Fatalf("identical windows have dispersion %v, want 0", p.Phases[0].AvgDist)
	}
}

func TestForceKOverride(t *testing.T) {
	wins, vecs := synth(12, 2, 6, 100)
	p := Build(wins, vecs, 6, 4)
	if p.K() != 4 {
		t.Fatalf("forceK=4 produced k=%d", p.K())
	}
}

// TestDeterministicClustering pins the bit-identity guarantee: repeated
// clustering over the same vectors yields byte-identical encoded plans.
func TestDeterministicClustering(t *testing.T) {
	wins, vecs := synth(32, 4, 10, 750)
	ref := Build(wins, vecs, 8, 0).Encode()
	for i := 0; i < 5; i++ {
		// Re-derive the inputs from scratch too, so incidental slice aliasing
		// can't mask a dependence on allocation order.
		w2, v2 := synth(32, 4, 10, 750)
		if got := Build(w2, v2, 8, 0).Encode(); !bytes.Equal(got, ref) {
			t.Fatalf("run %d: encoded plan differs from first run", i)
		}
	}
}

func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	wins, vecs := synth(20, 3, 7, 640)
	p := Build(wins, vecs, 6, 0)
	back, err := DecodePlan(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, p)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]uint64{3, 1, 0})
	want := Vector{0.75, 0.25, 0}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("Normalize = %v, want %v", v, want)
	}
	if z := Normalize([]uint64{0, 0}); z[0] != 0 || z[1] != 0 {
		t.Fatalf("all-zero counts normalized to %v", z)
	}
}

func TestManhattanRange(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 0, 1}
	if d := Manhattan(a, b); math.Abs(d-2) > 1e-12 {
		t.Fatalf("disjoint unit vectors have Manhattan %v, want 2", d)
	}
	if d := Manhattan(a, a); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

// TestKmeansEmptyClusterRepair exercises the repair path: more clusters than
// distinct vectors must not panic or leave empty phases.
func TestKmeansEmptyClusterRepair(t *testing.T) {
	wins := make([]Window, 6)
	vecs := make([]Vector, 6)
	for i := range wins {
		wins[i] = Window{Start: uint64(i) * 10, Len: 10}
		if i < 3 {
			vecs[i] = Vector{1, 0}
		} else {
			vecs[i] = Vector{0, 1}
		}
	}
	p := Build(wins, vecs, 6, 5) // force k beyond the 2 distinct behaviors
	if p.K() < 2 {
		t.Fatalf("k=%d, want at least the 2 distinct behaviors", p.K())
	}
	for i, ph := range p.Phases {
		if len(ph.Members) == 0 {
			t.Fatalf("phase %d kept with no members", i)
		}
	}
	var w uint64
	for _, ph := range p.Phases {
		w += ph.Weight
	}
	if w != 60 {
		t.Fatalf("weights sum to %d, want 60", w)
	}
}
