// Package phases implements SimPoint-style phase analysis for the sampled
// simulation engine: basic-block vectors (BBVs) collected per fixed-length
// window of the functional fast-forward, deterministic k-means clustering
// over them, BIC-guided selection of the phase count, and a sampling plan
// that names one representative window per phase with the uop weight it
// stands in for.
//
// Everything in this package is bit-deterministic by construction: no maps
// are iterated, no randomness is consulted (centroid seeding is a maximin
// farthest-point walk from window zero), and every tie — nearest centroid,
// representative choice, BIC score — breaks toward the lowest index. Two
// runs over the same program produce byte-identical plans, which the
// clustering-determinism CI test pins.
package phases

import "math"

// Vector is one window's basic-block vector: per-block executed-uop counts
// normalized to sum 1 (uop-weighted block frequencies, the SimPoint form).
type Vector []float64

// Window is one fixed-length slice of the measured region, in committed-uop
// coordinates of the full run.
type Window struct {
	Start uint64 // committed-uop offset of the window's first uop
	Len   uint64 // uops in the window
}

// Normalize converts raw per-block uop counts into a Vector. The total is
// passed in (the window length) so an all-zero count slice — impossible for
// a real window, but cheap to guard — normalizes to the zero vector instead
// of NaN.
func Normalize(counts []uint64) Vector {
	var total uint64
	for _, c := range counts {
		total += c
	}
	v := make(Vector, len(counts))
	if total == 0 {
		return v
	}
	inv := 1 / float64(total)
	for i, c := range counts {
		v[i] = float64(c) * inv
	}
	return v
}

// sqDist returns the squared Euclidean distance between a and b.
func sqDist(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Manhattan returns the L1 distance between a and b. For unit-normalized
// vectors it lies in [0, 2]; half of it is the fraction of execution the two
// windows spend in different blocks, the dissimilarity measure the
// confidence intervals use.
func Manhattan(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
