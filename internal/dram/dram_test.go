package dram

import (
	"testing"
	"testing/quick"
)

// run ticks the controller until n requests complete or maxCycles pass,
// returning the completion cycles.
func run(t *testing.T, c *Controller, reqs []*Request, maxCycles int64) []int64 {
	t.Helper()
	var done []int64
	for _, r := range reqs {
		r.Done = func(cycle int64) { done = append(done, cycle) }
		if !c.Enqueue(r) {
			t.Fatal("enqueue rejected in test setup")
		}
	}
	for now := int64(0); now < maxCycles && len(done) < len(reqs); now++ {
		c.Tick(now)
	}
	if len(done) < len(reqs) {
		t.Fatalf("only %d/%d requests completed in %d cycles", len(done), len(reqs), maxCycles)
	}
	return done
}

func TestSingleReadLatency(t *testing.T) {
	c := New(DefaultConfig())
	done := run(t, c, []*Request{{LineAddr: 0, Arrival: 0}}, 1000)
	// Cold bank: tRCD + tCAS + transfer = 44+44+16 = 104, granted at cycle 0.
	if done[0] != 104 {
		t.Fatalf("cold read completed at %d, want 104", done[0])
	}
	if c.RowMisses != 1 || c.RowHits != 0 {
		t.Fatalf("row stats: hits=%d misses=%d", c.RowHits, c.RowMisses)
	}
}

// findAddr scans line addresses for the first one (above start) whose
// mapping satisfies pred.
func findAddr(c *Controller, start uint64, pred func(ch, bk int, row uint64) bool) uint64 {
	for a := start; a < 1<<30; a += 64 {
		if pred(c.mapAddr(a)) {
			return a
		}
	}
	panic("dram test: no address found")
}

func TestRowHitFaster(t *testing.T) {
	c := New(DefaultConfig())
	chA, bkA, rowA := c.mapAddr(0)
	b := findAddr(c, 64, func(ch, bk int, row uint64) bool {
		return ch == chA && bk == bkA && row == rowA
	})
	done := run(t, c, []*Request{{LineAddr: 0}, {LineAddr: b}}, 2000)
	if c.RowHits != 1 {
		t.Fatalf("expected one row hit, got %d", c.RowHits)
	}
	gap := done[1] - done[0]
	// The row hit still pays tCAS+transfer but no activate.
	if gap >= 104 {
		t.Fatalf("row hit gap %d should be far below the cold latency", gap)
	}
}

func TestRowConflictSlower(t *testing.T) {
	c := New(DefaultConfig())
	chA, bkA, rowA := c.mapAddr(0)
	b := findAddr(c, 64, func(ch, bk int, row uint64) bool {
		return ch == chA && bk == bkA && row != rowA
	})
	run(t, c, []*Request{{LineAddr: 0}, {LineAddr: b}}, 2000)
	if c.RowConflicts != 1 {
		t.Fatalf("expected one row conflict, got %d (hits=%d misses=%d)", c.RowConflicts, c.RowHits, c.RowMisses)
	}
}

func TestChannelParallelism(t *testing.T) {
	cfg := DefaultConfig()
	// Two requests on different channels complete at the same cycle; two on
	// the same channel (different banks) serialize on the data bus.
	c1 := New(cfg)
	chA, _, _ := c1.mapAddr(0)
	other := findAddr(c1, 64, func(ch, bk int, row uint64) bool { return ch != chA })
	d1 := run(t, c1, []*Request{{LineAddr: 0}, {LineAddr: other}}, 2000)
	if d1[0] != d1[1] {
		t.Fatalf("different channels should overlap fully: %v", d1)
	}
	c2 := New(cfg)
	chA2, bkA2, _ := c2.mapAddr(0)
	sameCh := findAddr(c2, 64, func(ch, bk int, row uint64) bool { return ch == chA2 && bk != bkA2 })
	d2 := run(t, c2, []*Request{{LineAddr: 0}, {LineAddr: sameCh}}, 2000)
	if d2[1] == d2[0] {
		t.Fatal("same-channel requests cannot finish simultaneously")
	}
}

func TestBankLevelParallelismBeatsSameBank(t *testing.T) {
	cfg := DefaultConfig()
	probe := New(cfg)
	chA, bkA, rowA := probe.mapAddr(0)
	otherBank := findAddr(probe, 64, func(ch, bk int, row uint64) bool { return ch == chA && bk != bkA })
	conflict := findAddr(probe, 64, func(ch, bk int, row uint64) bool { return ch == chA && bk == bkA && row != rowA })

	diff := New(cfg)
	dDiff := run(t, diff, []*Request{{LineAddr: 0}, {LineAddr: otherBank}}, 4000)
	same := New(cfg)
	dSame := run(t, same, []*Request{{LineAddr: 0}, {LineAddr: conflict}}, 4000)
	if maxOf(dDiff) >= maxOf(dSame) {
		t.Fatalf("bank parallelism (%d) should beat bank conflict (%d)", maxOf(dDiff), maxOf(dSame))
	}
}

// TestPowerOfTwoStrideSpreads is the regression behind the XOR interleaving:
// a 2KB stride must not camp on one bank of one channel.
func TestPowerOfTwoStrideSpreads(t *testing.T) {
	c := New(DefaultConfig())
	seen := make(map[[2]int]bool)
	for i := 0; i < 64; i++ {
		ch, bk, _ := c.mapAddr(uint64(i) * 2048)
		seen[[2]int{ch, bk}] = true
	}
	if len(seen) < 8 {
		t.Fatalf("2KB stride touches only %d channel/bank pairs", len(seen))
	}
}

func maxOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestReadPriorityOverWrite(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	var order []bool // true = write granted
	mk := func(addr uint64, wr bool) *Request {
		return &Request{LineAddr: addr, Write: wr, Done: func(int64) { order = append(order, wr) }}
	}
	// Same channel, different bank so only FR-FCFS class ordering decides.
	chA, bkA, _ := c.mapAddr(0)
	other := findAddr(c, 64, func(ch, bk int, row uint64) bool { return ch == chA && bk != bkA })
	// Enqueue write first; the read should still be granted first.
	if !c.Enqueue(mk(0, true)) || !c.Enqueue(mk(other, false)) {
		t.Fatal("enqueue failed")
	}
	for now := int64(0); now < 1000 && len(order) < 2; now++ {
		c.Tick(now)
	}
	if len(order) != 2 || order[0] != false {
		t.Fatalf("grant order = %v, want read first", order)
	}
	if c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d", c.Reads, c.Writes)
	}
}

func TestQueueCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCap = 4
	c := New(cfg)
	for i := 0; i < 4; i++ {
		if !c.Enqueue(&Request{LineAddr: uint64(i * 64)}) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if c.Enqueue(&Request{LineAddr: 0x9000}) {
		t.Fatal("enqueue beyond capacity must fail")
	}
	if c.Rejects != 1 {
		t.Fatal("rejection not counted")
	}
	if c.Pending() != 4 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestMapAddrCoversAllBanks(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	seen := make(map[[2]int]bool)
	for i := 0; i < cfg.Channels*cfg.BanksPerChannel; i++ {
		ch, bk, _ := c.mapAddr(uint64(i * cfg.LineBytes))
		seen[[2]int{ch, bk}] = true
	}
	if len(seen) != cfg.Channels*cfg.BanksPerChannel {
		t.Fatalf("sequential lines touched %d of %d channel/bank pairs", len(seen), cfg.Channels*cfg.BanksPerChannel)
	}
}

// Property: completion cycle is always at least arrival + tCAS + transfer,
// and every enqueued request eventually completes.
func TestPropertyMinimumLatency(t *testing.T) {
	cfg := DefaultConfig()
	f := func(addrs []uint16) bool {
		c := New(cfg)
		min := int64(cfg.TCAS + cfg.TransferCycles)
		n := len(addrs)
		if n > cfg.QueueCap {
			n = cfg.QueueCap
		}
		completed := 0
		ok := true
		for i := 0; i < n; i++ {
			addr := uint64(addrs[i]) * 64
			c.Enqueue(&Request{LineAddr: addr, Arrival: 0, Done: func(cy int64) {
				completed++
				if cy < min {
					ok = false
				}
			}})
		}
		for now := int64(0); now < 100000 && completed < n; now++ {
			c.Tick(now)
		}
		return ok && completed == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshBlocksBanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 1000
	cfg.RefreshCycles = 200
	c := New(cfg)
	// Tick past the first refresh of channel of address 0, then issue: the
	// request must wait out tRFC.
	ch, _, _ := c.mapAddr(0)
	refAt := c.nextRef[ch]
	for now := int64(0); now <= refAt; now++ {
		c.Tick(now)
	}
	if c.Refreshes == 0 {
		t.Fatal("refresh never fired")
	}
	var doneAt int64 = -1
	if !c.Enqueue(&Request{LineAddr: 0, Arrival: refAt, Done: func(cy int64) { doneAt = cy }}) {
		t.Fatal("enqueue failed")
	}
	for now := refAt + 1; now < refAt+2000 && doneAt < 0; now++ {
		c.Tick(now)
	}
	min := refAt + cfg.RefreshCycles // bank busy until tRFC elapses
	if doneAt < min {
		t.Fatalf("request completed at %d, before refresh window ended (%d)", doneAt, min)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 2000
	cfg.RefreshCycles = 100
	c := New(cfg)
	// Open a row, cross a refresh, access the same row again: it must be a
	// row miss (precharge-all closed it), not a hit.
	done := 0
	c.Enqueue(&Request{LineAddr: 0, Done: func(int64) { done++ }})
	for now := int64(0); now < 500 && done < 1; now++ {
		c.Tick(now)
	}
	for now := int64(500); now < 4500; now++ {
		c.Tick(now) // crosses every channel's refresh at least once
	}
	hits := c.RowHits
	c.Enqueue(&Request{LineAddr: 0, Arrival: 4500, Done: func(int64) { done++ }})
	for now := int64(4500); now < 6000 && done < 2; now++ {
		c.Tick(now)
	}
	if done != 2 {
		t.Fatal("second request never completed")
	}
	if c.RowHits != hits {
		t.Fatal("row survived a refresh; precharge-all not modeled")
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 0
	c := New(cfg)
	for now := int64(0); now < 100000; now++ {
		c.Tick(now)
	}
	if c.Refreshes != 0 {
		t.Fatal("refresh fired while disabled")
	}
}
