package dram

import (
	"math/rand"
	"testing"
)

// tickTo advances the controller from *now to target, one cycle at a time.
func tickTo(c *Controller, now *int64, target int64) {
	for ; *now <= target; *now++ {
		c.Tick(*now)
	}
}

// TestRefreshCatchUpAcrossJump is the regression for the single-fire refresh
// bug: `nextRef += RefreshInterval` executed once per Tick drops refreshes
// when now jumps far ahead (clock warp, a long-idle controller). Catch-up
// must replay every due refresh at its scheduled cycle, leaving counters and
// bank state exactly as a per-cycle run would.
func TestRefreshCatchUpAcrossJump(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 1000
	cfg.RefreshCycles = 100

	perCycle := New(cfg)
	var now int64
	tickTo(perCycle, &now, 20_000)

	jumped := New(cfg)
	jumped.Tick(0)
	jumped.Tick(20_000)

	if perCycle.Refreshes == 0 {
		t.Fatal("per-cycle run never refreshed; the test is vacuous")
	}
	if jumped.Refreshes != perCycle.Refreshes {
		t.Fatalf("jumped controller replayed %d refreshes, per-cycle fired %d",
			jumped.Refreshes, perCycle.Refreshes)
	}

	// The replay must also leave identical bank timing: a request issued
	// right after the jump completes at the same cycle in both controllers.
	var dPer, dJump int64 = -1, -1
	perCycle.Enqueue(&Request{LineAddr: 0, Arrival: 20_001, Done: func(cy int64) { dPer = cy }})
	jumped.Enqueue(&Request{LineAddr: 0, Arrival: 20_001, Done: func(cy int64) { dJump = cy }})
	for n := int64(20_001); n < 25_000 && (dPer < 0 || dJump < 0); n++ {
		perCycle.Tick(n)
		jumped.Tick(n)
	}
	if dPer < 0 || dJump < 0 {
		t.Fatal("post-jump request never completed")
	}
	if dPer != dJump {
		t.Fatalf("post-jump request completed at %d after a jump, %d per-cycle", dJump, dPer)
	}
}

// TestRefreshCatchUpMidIntervalJump pins the replay semantics when the jump
// lands between refresh boundaries: every skipped boundary fires at its own
// scheduled cycle (readyAt = boundary + tRFC, not now + tRFC), so a bank is
// available immediately after a jump that clears the last refresh window.
func TestRefreshCatchUpMidIntervalJump(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.RefreshInterval = 1000
	cfg.RefreshCycles = 100
	c := New(cfg)
	c.Tick(0)
	// Jump to well past the last boundary's tRFC window: boundaries 1000,
	// 2000, 3000 are all due; the last ends at 3100 < 3500.
	c.Tick(3500)
	if c.Refreshes != 3 {
		t.Fatalf("replayed %d refreshes, want 3", c.Refreshes)
	}
	var done int64 = -1
	c.Enqueue(&Request{LineAddr: 0, Arrival: 3500, Done: func(cy int64) { done = cy }})
	for n := int64(3501); n < 5000 && done < 0; n++ {
		c.Tick(n)
	}
	// A cold access takes tRCD+tCAS+transfer from its grant; the grant must
	// not have been pushed out by a refresh window stamped at `now`.
	want := 3501 + int64(cfg.TRCD+cfg.TCAS+cfg.TransferCycles)
	if done != want {
		t.Fatalf("post-jump access completed at %d, want %d (refresh window must end at its scheduled cycle)", done, want)
	}
}

// driveAtHorizon runs the controller touching it only at the cycles NextReady
// names, verifying en route that the horizon is sound (CheckInvariants) —
// the access pattern the event-driven clock produces.
func driveAtHorizon(t *testing.T, c *Controller, start, bound int64, stop func() bool) {
	t.Helper()
	now := start
	for now < bound && !stop() {
		c.Tick(now)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", now, err)
		}
		nr := c.NextReady(now)
		if nr == never {
			break
		}
		if nr <= now {
			t.Fatalf("NextReady(%d) = %d went backwards", now, nr)
		}
		now = nr
	}
	if !stop() {
		t.Fatal("horizon-driven run never completed its requests")
	}
}

// TestHorizonDrivenGrantsMatchPerCycle is the soundness property behind the
// whole-simulator stall skip: ticking the controller only at the cycles
// NextReady reports must grant every request at exactly the cycle a
// per-cycle run grants it, across row hits, conflicts, multiple banks,
// starvation promotion, and refresh windows.
func TestHorizonDrivenGrantsMatchPerCycle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := DefaultConfig()
		cfg.RefreshInterval = 700
		cfg.RefreshCycles = 80
		cfg.StarvationLimit = 150
		rng := rand.New(rand.NewSource(seed))

		type spec struct {
			addr  uint64
			write bool
		}
		n := 12 + rng.Intn(12)
		if n > cfg.QueueCap {
			n = cfg.QueueCap
		}
		specs := make([]spec, n)
		for i := range specs {
			// A small address pool forces row hits and conflicts.
			specs[i] = spec{addr: uint64(rng.Intn(48)) * 64, write: rng.Intn(4) == 0}
		}
		mkReqs := func() ([]*Request, []int64) {
			reqs := make([]*Request, n)
			done := make([]int64, n)
			for i := range reqs {
				done[i] = -1
				i := i
				reqs[i] = &Request{LineAddr: specs[i].addr, Write: specs[i].write, Arrival: 0}
				reqs[i].Done = func(cy int64) { done[i] = cy }
			}
			return reqs, done
		}
		allDone := func(done []int64) func() bool {
			return func() bool {
				for _, d := range done {
					if d < 0 {
						return false
					}
				}
				return true
			}
		}

		ref := New(cfg)
		refReqs, refDone := mkReqs()
		for _, r := range refReqs {
			if !ref.Enqueue(r) {
				t.Fatal("enqueue rejected in test setup")
			}
		}
		for now := int64(0); now < 100_000 && !allDone(refDone)(); now++ {
			ref.Tick(now)
		}

		hz := New(cfg)
		hzReqs, hzDone := mkReqs()
		for _, r := range hzReqs {
			if !hz.Enqueue(r) {
				t.Fatal("enqueue rejected in test setup")
			}
		}
		driveAtHorizon(t, hz, 0, 100_000, allDone(hzDone))

		for i := range refDone {
			if refDone[i] != hzDone[i] {
				t.Fatalf("seed %d: request %d (%#x) completed at %d horizon-driven, %d per-cycle",
					seed, i, refReqs[i].LineAddr, hzDone[i], refDone[i])
			}
		}
		if hz.Refreshes != ref.Refreshes || hz.RowHits != ref.RowHits || hz.RowConflicts != ref.RowConflicts {
			t.Fatalf("seed %d: stats diverged: refreshes %d/%d hits %d/%d conflicts %d/%d",
				seed, hz.Refreshes, ref.Refreshes, hz.RowHits, ref.RowHits, hz.RowConflicts, ref.RowConflicts)
		}
	}
}

// TestStarvationPromotionAcrossRefresh exercises the FR-FCFS starvation
// limit while refresh windows repeatedly close the contended row: a
// conflicting request behind a stream of row hits must be promoted to
// highest priority once it ages past the limit, refreshes notwithstanding,
// and must jump ahead of still-queued hits.
func TestStarvationPromotionAcrossRefresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.StarvationLimit = 100
	cfg.RefreshInterval = 150
	cfg.RefreshCycles = 30
	c := New(cfg)

	_, bkA, rowA := c.mapAddr(0)
	hitAddr2 := findAddr(c, 64, func(ch, bk int, row uint64) bool { return bk == bkA && row == rowA })
	confAddr := findAddr(c, 64, func(ch, bk int, row uint64) bool { return bk == bkA && row != rowA })

	// Open row A.
	opened := false
	c.Enqueue(&Request{LineAddr: 0, Done: func(int64) { opened = true }})
	var now int64
	for ; now < 2000 && !opened; now++ {
		c.Tick(now)
	}
	if !opened {
		t.Fatal("opening access never completed")
	}

	// One conflicting request buried under a pile of row hits, all arriving
	// together. Without the limit the hits (class 1) all beat the conflict
	// (class 2); with it the conflict is promoted after 100 cycles.
	start := now
	var confDone int64 = -1
	hitsLeft := 10
	c.Enqueue(&Request{LineAddr: confAddr, Arrival: start, Done: func(cy int64) { confDone = cy }})
	for i := 0; i < 10; i++ {
		addr := uint64(0)
		if i%2 == 1 {
			addr = hitAddr2
		}
		c.Enqueue(&Request{LineAddr: addr, Arrival: start, Done: func(int64) { hitsLeft-- }})
	}
	refBefore := c.Refreshes
	for ; now < start+5000 && (confDone < 0 || hitsLeft > 0); now++ {
		c.Tick(now)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", now, err)
		}
	}
	if confDone < 0 || hitsLeft > 0 {
		t.Fatal("requests never drained")
	}
	if c.Refreshes == refBefore {
		t.Fatal("no refresh fired during the contention window; the interaction is untested")
	}
	// Promotion: the conflicting request may lose to at most the hits that
	// fit in one starvation window plus the one in flight at promotion time.
	if confDone > start+int64(cfg.StarvationLimit)+2*int64(cfg.RefreshCycles)+200 {
		t.Fatalf("conflicting request finished at %d (arrived %d): starved past the limit", confDone, start)
	}
}
