// Package dram models the DDR3 main memory of Table 1: two channels, one
// rank of eight banks per channel, 8KB rows, CAS 13.75ns, an 800 MHz data
// bus, bank conflicts, and FR-FCFS scheduling out of a 64-entry memory queue.
// All timing is expressed in core cycles (3.2 GHz), so 13.75ns ≈ 44 cycles
// and one 64-byte burst occupies the channel's data bus for 16 cycles.
//
// The model is intentionally at the "bank state machine + queue" level: row
// hits cost tCAS, closed banks cost tRCD+tCAS, conflicts cost tRP+tRCD+tCAS,
// and each channel's data bus serializes transfers. That reproduces the
// non-uniform access latency runahead exploits — latency rises steeply with
// queue depth and falls with row locality — without simulating DRAM command
// buses cycle by cycle.
package dram

import "runaheadsim/internal/stats"

// Config holds DRAM geometry and timing (core cycles).
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int
	LineBytes       int

	TCAS           int // column access, row already open
	TRCD           int // row activate
	TRP            int // precharge
	TransferCycles int // data bus occupancy per line
	QueueCap       int // total memory queue entries (Table 1: 64)
	// StarvationLimit escalates any request older than this many cycles to
	// highest priority, as real FR-FCFS controllers do — otherwise a stream
	// of row hits (e.g. from runahead racing down an array) can starve an
	// older conflicting request indefinitely.
	StarvationLimit int64

	// RefreshInterval (tREFI) and RefreshCycles (tRFC) model periodic
	// refresh: every RefreshInterval cycles each channel precharges all rows
	// and is unavailable for RefreshCycles. Zero disables refresh.
	RefreshInterval int64
	RefreshCycles   int64
}

// DefaultConfig matches Table 1 at a 3.2 GHz core clock.
func DefaultConfig() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8192,
		LineBytes:       64,
		TCAS:            44, // 13.75ns
		TRCD:            44,
		TRP:             44,
		TransferCycles:  16, // 64B over a 64-bit DDR bus at 800MHz, in 3.2GHz cycles
		QueueCap:        64,
		StarvationLimit: 280,
		RefreshInterval: 24960, // tREFI = 7.8us at 3.2 GHz
		RefreshCycles:   512,   // tRFC = 160ns
	}
}

// Request is one line-granularity DRAM access.
type Request struct {
	LineAddr uint64
	Write    bool
	Arrival  int64
	// Done is called at the cycle the last data beat leaves the bus. Nil is
	// allowed (writebacks usually don't need completion).
	Done func(cycle int64)

	channel, bank int
	row           uint64
}

type bank struct {
	openRow uint64
	hasOpen bool
	readyAt int64
}

// Controller is the memory controller plus DRAM devices.
type Controller struct {
	cfg     Config
	queues  [][]*Request
	banks   [][]bank
	busAt   []int64
	queued  int
	nextRef []int64

	// OnGrant, when non-nil, is invoked as the controller grants each
	// request (the observability layer's DRAM-access event hook). rowHit
	// reports whether the access hit the bank's open row.
	OnGrant func(now int64, lineAddr uint64, write, rowHit bool)

	// Statistics.
	Refreshes    uint64
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed bank
	RowConflicts uint64 // wrong row open
	Rejects      uint64 // enqueue attempts while full
	Latency      *stats.Histogram
}

// New returns an idle controller.
func New(cfg Config) *Controller {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.QueueCap <= 0 {
		panic("dram: invalid configuration")
	}
	c := &Controller{
		cfg:     cfg,
		queues:  make([][]*Request, cfg.Channels),
		banks:   make([][]bank, cfg.Channels),
		busAt:   make([]int64, cfg.Channels),
		nextRef: make([]int64, cfg.Channels),
		Latency: stats.NewHistogram(64, 16),
	}
	for i := range c.banks {
		c.banks[i] = make([]bank, cfg.BanksPerChannel)
		if cfg.RefreshInterval > 0 {
			// Stagger channel refreshes so they don't align.
			c.nextRef[i] = cfg.RefreshInterval * int64(i+1) / int64(cfg.Channels)
		}
	}
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// mapAddr splits a line address into channel, bank and row. Consecutive
// lines interleave across channels, then banks. Higher address bits are
// XOR-folded into the channel and bank selection (permutation-based
// interleaving in the style of Zhang/Zhu/Zhang, MICRO 2000), as real memory
// controllers do — otherwise power-of-two strides camp on a single bank of a
// single channel and serialize on row conflicts.
func (c *Controller) mapAddr(lineAddr uint64) (ch, bk int, row uint64) {
	ln := lineAddr / uint64(c.cfg.LineBytes)
	ch = int((ln ^ (ln >> 1) ^ (ln >> 5) ^ (ln >> 9) ^ (ln >> 13)) % uint64(c.cfg.Channels))
	lnc := ln / uint64(c.cfg.Channels)
	linesPerRow := uint64(c.cfg.RowBytes / c.cfg.LineBytes)
	row = lnc / uint64(c.cfg.BanksPerChannel) / linesPerRow
	bk = int((lnc ^ (lnc >> 3) ^ (lnc >> 7) ^ (lnc >> 11) ^ row) % uint64(c.cfg.BanksPerChannel))
	return ch, bk, row
}

// Pending returns the number of queued (not yet granted) requests.
func (c *Controller) Pending() int { return c.queued }

// Enqueue adds a request to the memory queue. It reports false (and counts a
// rejection) when the 64-entry queue is full; the caller must retry later.
func (c *Controller) Enqueue(r *Request) bool {
	if c.queued >= c.cfg.QueueCap {
		c.Rejects++
		return false
	}
	r.channel, r.bank, r.row = c.mapAddr(r.LineAddr)
	c.queues[r.channel] = append(c.queues[r.channel], r)
	c.queued++
	return true
}

// Tick advances the controller to cycle now, granting at most one request per
// channel per cycle under FR-FCFS: row-hit reads first, then any ready read,
// then row-hit writes, then any ready write; age breaks ties.
func (c *Controller) Tick(now int64) {
	for ch := range c.queues {
		// Periodic refresh: precharge-all, bank unavailability for tRFC.
		if c.cfg.RefreshInterval > 0 && now >= c.nextRef[ch] {
			c.Refreshes++
			c.nextRef[ch] += c.cfg.RefreshInterval
			for b := range c.banks[ch] {
				bk := &c.banks[ch][b]
				bk.hasOpen = false
				if r := now + c.cfg.RefreshCycles; r > bk.readyAt {
					bk.readyAt = r
				}
			}
		}
		q := c.queues[ch]
		if len(q) == 0 {
			continue
		}
		best := -1
		bestClass := 5
		for i, r := range q {
			b := &c.banks[ch][r.bank]
			if b.readyAt > now {
				continue
			}
			hit := b.hasOpen && b.openRow == r.row
			class := 0
			switch {
			case c.cfg.StarvationLimit > 0 && now-r.Arrival > c.cfg.StarvationLimit:
				class = 0 // starving: jump the row-hit queue
			case hit && !r.Write:
				class = 1
			case !r.Write:
				class = 2
			case hit:
				class = 3
			default:
				class = 4
			}
			if class < bestClass {
				best, bestClass = i, class
			}
		}
		if best < 0 {
			continue
		}
		r := q[best]
		c.queues[ch] = append(q[:best], q[best+1:]...)
		c.queued--
		c.grant(r, now)
	}
}

func (c *Controller) grant(r *Request, now int64) {
	b := &c.banks[r.channel][r.bank]
	rowHit := b.hasOpen && b.openRow == r.row
	if c.OnGrant != nil {
		c.OnGrant(now, r.LineAddr, r.Write, rowHit)
	}
	var access int
	switch {
	case rowHit:
		access = c.cfg.TCAS
		c.RowHits++
	case !b.hasOpen:
		access = c.cfg.TRCD + c.cfg.TCAS
		c.RowMisses++
	default:
		access = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
		c.RowConflicts++
	}
	// Banks work in parallel; only the data transfer serializes on the
	// channel's bus.
	dataAt := now + int64(access)
	transferStart := dataAt
	if c.busAt[r.channel] > transferStart {
		transferStart = c.busAt[r.channel]
	}
	finish := transferStart + int64(c.cfg.TransferCycles)
	b.openRow, b.hasOpen = r.row, true
	b.readyAt = dataAt
	c.busAt[r.channel] = finish
	if r.Write {
		c.Writes++
	} else {
		c.Reads++
	}
	c.Latency.Observe(uint64(finish - r.Arrival))
	if r.Done != nil {
		r.Done(finish)
	}
}

// Activates returns the number of row activations performed (for the energy
// model: every miss or conflict activates a row).
func (c *Controller) Activates() uint64 { return c.RowMisses + c.RowConflicts }

// Requests returns the total granted request count.
func (c *Controller) Requests() uint64 { return c.Reads + c.Writes }

// ResetStats zeroes the statistics counters, preserving bank and queue state.
func (c *Controller) ResetStats() {
	c.Reads, c.Writes = 0, 0
	c.RowHits, c.RowMisses, c.RowConflicts, c.Rejects = 0, 0, 0, 0
	c.Latency = stats.NewHistogram(64, 16)
}
