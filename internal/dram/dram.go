// Package dram models the DDR3 main memory of Table 1: two channels, one
// rank of eight banks per channel, 8KB rows, CAS 13.75ns, an 800 MHz data
// bus, bank conflicts, and FR-FCFS scheduling out of a 64-entry memory queue.
// All timing is expressed in core cycles (3.2 GHz), so 13.75ns ≈ 44 cycles
// and one 64-byte burst occupies the channel's data bus for 16 cycles.
//
// The model is intentionally at the "bank state machine + queue" level: row
// hits cost tCAS, closed banks cost tRCD+tCAS, conflicts cost tRP+tRCD+tCAS,
// and each channel's data bus serializes transfers. That reproduces the
// non-uniform access latency runahead exploits — latency rises steeply with
// queue depth and falls with row locality — without simulating DRAM command
// buses cycle by cycle.
//
// Requests live on per-bank FIFO lists rather than one flat per-channel
// queue, and each channel maintains a grant horizon — a lower bound on the
// next cycle anything could be granted, derived from bank readyAt times and
// the refresh schedule. Tick is O(channels) while the horizon has not
// arrived, and the grant scan only inspects banks that can fire, which is
// what lets the memory system report NextReady to the event-driven clock.
package dram

import (
	"fmt"

	"runaheadsim/internal/stats"
)

// never is the horizon value of a channel with nothing queued: no grant can
// ever happen until an Enqueue lowers it.
const never = int64(1<<63 - 1)

// Config holds DRAM geometry and timing (core cycles).
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int
	LineBytes       int

	TCAS           int // column access, row already open
	TRCD           int // row activate
	TRP            int // precharge
	TransferCycles int // data bus occupancy per line
	QueueCap       int // total memory queue entries (Table 1: 64)
	// StarvationLimit escalates any request older than this many cycles to
	// highest priority, as real FR-FCFS controllers do — otherwise a stream
	// of row hits (e.g. from runahead racing down an array) can starve an
	// older conflicting request indefinitely.
	StarvationLimit int64

	// RefreshInterval (tREFI) and RefreshCycles (tRFC) model periodic
	// refresh: every RefreshInterval cycles each channel precharges all rows
	// and is unavailable for RefreshCycles. Zero disables refresh.
	RefreshInterval int64
	RefreshCycles   int64

	// Reference selects the preserved per-cycle scan: Tick runs the grant
	// scan on every channel every cycle instead of fast-pathing past
	// channels whose grant horizon has not arrived, reproducing the seed
	// controller's cost profile. Grant decisions, timing, and statistics are
	// identical either way — the horizon is a pure skip condition — which is
	// what lets the equivalence suite cross-check the two implementations.
	// The ClockTick reference kernel sets this; it never changes simulated
	// behavior, so snapshots exclude it from the configuration fingerprint.
	//simlint:nofingerprint reference-kernel speed knob; snapshots must interoperate across it
	Reference bool
}

// DefaultConfig matches Table 1 at a 3.2 GHz core clock.
func DefaultConfig() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8192,
		LineBytes:       64,
		TCAS:            44, // 13.75ns
		TRCD:            44,
		TRP:             44,
		TransferCycles:  16, // 64B over a 64-bit DDR bus at 800MHz, in 3.2GHz cycles
		QueueCap:        64,
		StarvationLimit: 280,
		RefreshInterval: 24960, // tREFI = 7.8us at 3.2 GHz
		RefreshCycles:   512,   // tRFC = 160ns
	}
}

// Request is one line-granularity DRAM access.
type Request struct {
	LineAddr uint64
	Write    bool
	Arrival  int64
	// Req identifies the requestor (core) the access serves. Single-requestor
	// hierarchies leave it 0; shared hierarchies stamp it so the controller
	// can keep per-requestor service statistics and hosts can attribute
	// grants to cores.
	Req int
	// Done is called at the cycle the last data beat leaves the bus. Nil is
	// allowed (writebacks usually don't need completion).
	Done func(cycle int64)
	// DoneR is the allocation-free flavor of Done: it receives the request
	// itself, so a caller issuing many requests can install one shared
	// method value instead of a fresh closure per request and recover its
	// context (LineAddr, Write) from the argument. When both are set, DoneR
	// wins.
	DoneR func(r *Request, cycle int64)

	channel, bank int
	row           uint64
	seq           uint64 // per-controller enqueue order; FR-FCFS age tie-break
}

type bank struct {
	openRow uint64
	hasOpen bool
	readyAt int64
	reqs    []*Request // pending requests in enqueue (seq) order
}

// Controller is the memory controller plus DRAM devices.
type Controller struct {
	cfg     Config
	banks   [][]bank
	busAt   []int64
	queued  int
	nextRef []int64
	// horizon[ch] is a lower bound on the next cycle a grant could occur on
	// the channel (never when nothing is queued). It may be conservatively
	// early — a wake-up that grants nothing just recomputes it — but is
	// never late: Tick fast-paths past a channel only while now < horizon.
	//simlint:nosnapshot recomputed from the queue on the first post-restore tick; the queue drains empty anyway
	horizon []int64
	seqCtr  uint64 //simlint:nosnapshot FR-FCFS arrival tiebreaker; meaningless with the queue drained empty

	// OnGrant, when non-nil, is invoked as the controller grants each
	// request (the observability layer's DRAM-access event hook). rowHit
	// reports whether the access hit the bank's open row; the request itself
	// carries the line, direction, and requestor id.
	//simlint:nosnapshot host hook; the restoring hierarchy re-wires it
	OnGrant func(now int64, r *Request, rowHit bool)
	// Release, when non-nil, receives each request after its completion
	// callback has run. The memory hierarchy uses it to recycle requests
	// through a free pool instead of allocating one per miss.
	//simlint:nosnapshot host hook; the restoring hierarchy re-wires it
	Release func(r *Request)

	// Statistics.
	Refreshes    uint64
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed bank
	RowConflicts uint64 // wrong row open
	Rejects      uint64 // enqueue attempts while full
	Latency      *stats.Histogram

	// PerRequestor splits service statistics by Request.Req — the contention
	// picture a shared memory system reports per core. Sized by
	// EnsureRequestors (single-requestor controllers keep one slot); grants
	// from an unregistered requestor grow it on demand.
	PerRequestor []RequestorStats
	// BankGrants and BankConflicts count, per [channel][bank], granted
	// requests and grants that paid a row conflict — where the address
	// streams of competing requestors actually collide.
	BankGrants    [][]uint64
	BankConflicts [][]uint64

	// Simulator self-profiling (not simulated state, not snapshotted):
	// Tick outcomes per channel — how often the grant horizon let the fast
	// path skip a channel versus running the full grant scan. The reference
	// per-cycle kernel scans every tick, so the split measures exactly what
	// the horizon optimization buys on a given workload.
	HorizonSkips uint64 //simlint:nosnapshot simulator self-profiling, not simulated state
	GrantScans   uint64 //simlint:nosnapshot simulator self-profiling, not simulated state
}

// New returns an idle controller.
func New(cfg Config) *Controller {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.QueueCap <= 0 {
		panic("dram: invalid configuration")
	}
	c := &Controller{
		cfg:     cfg,
		banks:   make([][]bank, cfg.Channels),
		busAt:   make([]int64, cfg.Channels),
		nextRef: make([]int64, cfg.Channels),
		horizon: make([]int64, cfg.Channels),
		Latency: stats.NewHistogram(64, 16),
	}
	for i := range c.banks {
		c.banks[i] = make([]bank, cfg.BanksPerChannel)
		c.horizon[i] = never
		if cfg.RefreshInterval > 0 {
			// Stagger channel refreshes so they don't align.
			c.nextRef[i] = cfg.RefreshInterval * int64(i+1) / int64(cfg.Channels)
		}
	}
	c.PerRequestor = make([]RequestorStats, 1)
	c.BankGrants = make([][]uint64, cfg.Channels)
	c.BankConflicts = make([][]uint64, cfg.Channels)
	for i := range c.BankGrants {
		c.BankGrants[i] = make([]uint64, cfg.BanksPerChannel)
		c.BankConflicts[i] = make([]uint64, cfg.BanksPerChannel)
	}
	return c
}

// RequestorStats is one requestor's slice of the controller's service
// statistics. WaitCycles sums enqueue-to-last-data-beat latency over the
// requestor's granted requests, so WaitCycles/(Reads+Writes) is its mean
// memory latency under whatever contention the other requestors generate.
type RequestorStats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowConflicts uint64
	WaitCycles   uint64
}

// EnsureRequestors grows the per-requestor statistics table to n slots. The
// shared memory hierarchy calls it at construction; it never shrinks.
func (c *Controller) EnsureRequestors(n int) {
	for len(c.PerRequestor) < n {
		c.PerRequestor = append(c.PerRequestor, RequestorStats{})
	}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// mapAddr splits a line address into channel, bank and row. Consecutive
// lines interleave across channels, then banks. Higher address bits are
// XOR-folded into the channel and bank selection (permutation-based
// interleaving in the style of Zhang/Zhu/Zhang, MICRO 2000), as real memory
// controllers do — otherwise power-of-two strides camp on a single bank of a
// single channel and serialize on row conflicts.
func (c *Controller) mapAddr(lineAddr uint64) (ch, bk int, row uint64) {
	ln := lineAddr / uint64(c.cfg.LineBytes)
	ch = int((ln ^ (ln >> 1) ^ (ln >> 5) ^ (ln >> 9) ^ (ln >> 13)) % uint64(c.cfg.Channels))
	lnc := ln / uint64(c.cfg.Channels)
	linesPerRow := uint64(c.cfg.RowBytes / c.cfg.LineBytes)
	row = lnc / uint64(c.cfg.BanksPerChannel) / linesPerRow
	bk = int((lnc ^ (lnc >> 3) ^ (lnc >> 7) ^ (lnc >> 11) ^ row) % uint64(c.cfg.BanksPerChannel))
	return ch, bk, row
}

// Pending returns the number of queued (not yet granted) requests.
func (c *Controller) Pending() int { return c.queued }

// Enqueue adds a request to the memory queue. It reports false (and counts a
// rejection) when the 64-entry queue is full; the caller must retry later.
func (c *Controller) Enqueue(r *Request) bool {
	if c.queued >= c.cfg.QueueCap {
		c.Rejects++
		return false
	}
	r.channel, r.bank, r.row = c.mapAddr(r.LineAddr)
	r.seq = c.seqCtr
	c.seqCtr++
	bk := &c.banks[r.channel][r.bank]
	bk.reqs = append(bk.reqs, r)
	c.queued++
	// The new request could be granted as soon as its bank is ready, and no
	// later than the channel's next refresh boundary (a refresh pushes bank
	// readyAt, so the horizon must not sleep past it while work is queued).
	if bk.readyAt < c.horizon[r.channel] {
		c.horizon[r.channel] = bk.readyAt
	}
	if c.cfg.RefreshInterval > 0 && c.nextRef[r.channel] < c.horizon[r.channel] {
		c.horizon[r.channel] = c.nextRef[r.channel]
	}
	return true
}

// Tick advances the controller to cycle now, granting at most one request per
// channel per cycle under FR-FCFS: row-hit reads first, then any ready read,
// then row-hit writes, then any ready write; age breaks ties. Channels whose
// grant horizon has not arrived are skipped after a one-compare refresh
// check, so an idle or blocked controller ticks in O(channels).
//
//simlint:hotpath
func (c *Controller) Tick(now int64) {
	for ch := range c.banks {
		if c.cfg.RefreshInterval > 0 && now >= c.nextRef[ch] {
			c.refreshCatchUp(ch, now)
		}
		if !c.cfg.Reference && now < c.horizon[ch] {
			c.HorizonSkips++
			continue
		}
		c.GrantScans++
		c.grantScan(ch, now)
	}
}

// refreshCatchUp fires every refresh due at or before now, each at its
// scheduled cycle: when Tick runs every cycle this fires exactly at tREFI
// boundaries, and when the clock warps over an idle stretch the replay
// leaves bank state and counters exactly as the per-cycle run would have
// (precharge-all, readyAt = max(readyAt, scheduled + tRFC)). A single-fire
// check here would silently drop refreshes across large now jumps.
func (c *Controller) refreshCatchUp(ch int, now int64) {
	for now >= c.nextRef[ch] {
		at := c.nextRef[ch]
		c.Refreshes++
		c.nextRef[ch] += c.cfg.RefreshInterval
		for b := range c.banks[ch] {
			bk := &c.banks[ch][b]
			bk.hasOpen = false
			if r := at + c.cfg.RefreshCycles; r > bk.readyAt {
				bk.readyAt = r
			}
		}
	}
	c.recomputeHorizon(ch)
}

// grantScan picks and grants the best FR-FCFS candidate on the channel. Only
// banks that are ready this cycle are inspected; within the ready set the
// winner is the lowest (class, enqueue seq) pair, which reproduces exactly
// the old flat-queue scan (queue position order is enqueue order).
//
//simlint:hotpath
func (c *Controller) grantScan(ch int, now int64) {
	var best *Request
	bestBank, bestIdx := -1, -1
	bestClass := 5
	bestSeq := ^uint64(0)
	for b := range c.banks[ch] {
		bk := &c.banks[ch][b]
		if len(bk.reqs) == 0 || bk.readyAt > now {
			continue
		}
		for i, r := range bk.reqs {
			hit := bk.hasOpen && bk.openRow == r.row
			class := 0
			switch {
			case c.cfg.StarvationLimit > 0 && now-r.Arrival > c.cfg.StarvationLimit:
				class = 0 // starving: jump the row-hit queue
			case hit && !r.Write:
				class = 1
			case !r.Write:
				class = 2
			case hit:
				class = 3
			default:
				class = 4
			}
			if class < bestClass || (class == bestClass && r.seq < bestSeq) {
				best, bestBank, bestIdx = r, b, i
				bestClass, bestSeq = class, r.seq
			}
		}
	}
	if best == nil {
		// Woke at a stale horizon (e.g. a refresh pushed readyAt since it
		// was computed); tighten it so the fast path resumes.
		c.recomputeHorizon(ch)
		return
	}
	bk := &c.banks[ch][bestBank]
	n := len(bk.reqs) - 1
	copy(bk.reqs[bestIdx:], bk.reqs[bestIdx+1:])
	bk.reqs[n] = nil // don't retain the granted request in the backing array
	bk.reqs = bk.reqs[:n]
	c.queued--
	c.grant(best, now)
	c.recomputeHorizon(ch)
}

// recomputeHorizon derives the channel's grant horizon from ground truth:
// the earliest readyAt over banks with queued work, clamped by the next
// refresh boundary while anything is pending.
//
//simlint:hotpath
func (c *Controller) recomputeHorizon(ch int) {
	hz := never
	pending := false
	for b := range c.banks[ch] {
		bk := &c.banks[ch][b]
		if len(bk.reqs) == 0 {
			continue
		}
		pending = true
		if bk.readyAt < hz {
			hz = bk.readyAt
		}
	}
	if pending && c.cfg.RefreshInterval > 0 && c.nextRef[ch] < hz {
		hz = c.nextRef[ch]
	}
	c.horizon[ch] = hz
}

// NextReady returns the earliest cycle strictly after now at which any
// channel could grant a request — the controller's contribution to the
// memory system's event horizon. It is a safe lower bound (never later than
// the true next grant; a conservatively early value only costs a no-op
// wake-up) and returns never (MaxInt64) when nothing is queued: refreshes on
// an idle controller are replayed deterministically by refreshCatchUp and
// need no wake-up of their own.
func (c *Controller) NextReady(now int64) int64 {
	next := never
	for _, hz := range c.horizon {
		if hz < next {
			next = hz
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// CheckInvariants verifies the derived scheduling state against ground
// truth: per-bank FIFO seq order and address mapping, the queued-count
// accounting, and — the load-bearing direction — that no channel's horizon
// is later than the earliest cycle a grant could actually occur (a late
// horizon would make the fast path sleep through work forever).
func (c *Controller) CheckInvariants() error {
	total := 0
	for ch := range c.banks {
		earliest := never
		pending := false
		for b := range c.banks[ch] {
			bk := &c.banks[ch][b]
			for i, r := range bk.reqs {
				if r == nil {
					return fmt.Errorf("dram: channel %d bank %d holds a nil request at %d", ch, b, i)
				}
				if r.channel != ch || r.bank != b {
					return fmt.Errorf("dram: request %#x mapped to (%d,%d) but queued on (%d,%d)",
						r.LineAddr, r.channel, r.bank, ch, b)
				}
				if i > 0 && r.seq <= bk.reqs[i-1].seq {
					return fmt.Errorf("dram: channel %d bank %d FIFO order broken at %d (seq %d after %d)",
						ch, b, i, r.seq, bk.reqs[i-1].seq)
				}
				total++
			}
			if len(bk.reqs) > 0 {
				pending = true
				if bk.readyAt < earliest {
					earliest = bk.readyAt
				}
			}
		}
		if pending {
			if c.cfg.RefreshInterval > 0 && c.nextRef[ch] < earliest {
				earliest = c.nextRef[ch]
			}
			if c.horizon[ch] > earliest {
				return fmt.Errorf("dram: channel %d horizon %d is later than the true next grant bound %d",
					ch, c.horizon[ch], earliest)
			}
		}
	}
	if total != c.queued {
		return fmt.Errorf("dram: queued count %d, but %d requests on bank lists", c.queued, total)
	}
	return nil
}

func (c *Controller) grant(r *Request, now int64) {
	b := &c.banks[r.channel][r.bank]
	rowHit := b.hasOpen && b.openRow == r.row
	if c.OnGrant != nil {
		c.OnGrant(now, r, rowHit)
	}
	c.EnsureRequestors(r.Req + 1)
	rs := &c.PerRequestor[r.Req]
	c.BankGrants[r.channel][r.bank]++
	var access int
	switch {
	case rowHit:
		access = c.cfg.TCAS
		c.RowHits++
		rs.RowHits++
	case !b.hasOpen:
		access = c.cfg.TRCD + c.cfg.TCAS
		c.RowMisses++
	default:
		access = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
		c.RowConflicts++
		rs.RowConflicts++
		c.BankConflicts[r.channel][r.bank]++
	}
	// Banks work in parallel; only the data transfer serializes on the
	// channel's bus.
	dataAt := now + int64(access)
	transferStart := dataAt
	if c.busAt[r.channel] > transferStart {
		transferStart = c.busAt[r.channel]
	}
	finish := transferStart + int64(c.cfg.TransferCycles)
	b.openRow, b.hasOpen = r.row, true
	b.readyAt = dataAt
	c.busAt[r.channel] = finish
	if r.Write {
		c.Writes++
		rs.Writes++
	} else {
		c.Reads++
		rs.Reads++
	}
	rs.WaitCycles += uint64(finish - r.Arrival)
	c.Latency.Observe(uint64(finish - r.Arrival))
	if r.DoneR != nil {
		r.DoneR(r, finish)
	} else if r.Done != nil {
		r.Done(finish)
	}
	if c.Release != nil {
		c.Release(r)
	}
}

// Activates returns the number of row activations performed (for the energy
// model: every miss or conflict activates a row).
func (c *Controller) Activates() uint64 { return c.RowMisses + c.RowConflicts }

// Requests returns the total granted request count.
func (c *Controller) Requests() uint64 { return c.Reads + c.Writes }

// ResetStats zeroes the statistics counters, preserving bank and queue state.
func (c *Controller) ResetStats() {
	c.Reads, c.Writes = 0, 0
	c.RowHits, c.RowMisses, c.RowConflicts, c.Rejects = 0, 0, 0, 0
	c.Latency = stats.NewHistogram(64, 16)
	for i := range c.PerRequestor {
		c.PerRequestor[i] = RequestorStats{}
	}
	for ch := range c.BankGrants {
		clear(c.BankGrants[ch])
		clear(c.BankConflicts[ch])
	}
}
