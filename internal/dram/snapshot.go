package dram

import (
	"fmt"

	"runaheadsim/internal/snapshot"
)

// SnapshotTo serializes the controller. Queued requests carry completion
// closures and cannot be serialized, so the queues must be empty — memsys
// drains them before snapshotting. Bank timing fields (readyAt, busAt,
// nextRef) are absolute core cycles; they stay meaningful because the machine
// snapshot carries the core clock and resumes it, never rewinding to zero.
func (c *Controller) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("dram")
	if c.queued != 0 {
		return fmt.Errorf("dram: snapshotting controller with %d queued requests", c.queued)
	}
	w.Int(c.cfg.Channels)
	w.Int(c.cfg.BanksPerChannel)
	for ch := range c.banks {
		for b := range c.banks[ch] {
			bk := &c.banks[ch][b]
			w.U64(bk.openRow)
			w.Bool(bk.hasOpen)
			w.I64(bk.readyAt)
		}
	}
	for _, v := range c.busAt {
		w.I64(v)
	}
	for _, v := range c.nextRef {
		w.I64(v)
	}
	w.U64(c.Refreshes)
	w.U64(c.Reads)
	w.U64(c.Writes)
	w.U64(c.RowHits)
	w.U64(c.RowMisses)
	w.U64(c.RowConflicts)
	w.U64(c.Rejects)
	w.Int(len(c.PerRequestor))
	for i := range c.PerRequestor {
		rs := &c.PerRequestor[i]
		w.U64(rs.Reads)
		w.U64(rs.Writes)
		w.U64(rs.RowHits)
		w.U64(rs.RowConflicts)
		w.U64(rs.WaitCycles)
	}
	for ch := range c.BankGrants {
		for b := range c.BankGrants[ch] {
			w.U64(c.BankGrants[ch][b])
			w.U64(c.BankConflicts[ch][b])
		}
	}
	return c.Latency.SnapshotTo(w)
}

// RestoreFrom reads state written by SnapshotTo into c, which must have the
// same geometry and an empty queue.
func (c *Controller) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("dram")
	if c.queued != 0 {
		r.Failf("dram: restoring into controller with %d queued requests", c.queued)
		return r.Err()
	}
	if got := r.Int(); r.Err() == nil && got != c.cfg.Channels {
		r.Failf("dram: %d channels, snapshot has %d", c.cfg.Channels, got)
	}
	if got := r.Int(); r.Err() == nil && got != c.cfg.BanksPerChannel {
		r.Failf("dram: %d banks/channel, snapshot has %d", c.cfg.BanksPerChannel, got)
	}
	if r.Err() != nil {
		return r.Err()
	}
	for ch := range c.banks {
		for b := range c.banks[ch] {
			bk := &c.banks[ch][b]
			bk.openRow = r.U64()
			bk.hasOpen = r.Bool()
			bk.readyAt = r.I64()
		}
	}
	for i := range c.busAt {
		c.busAt[i] = r.I64()
	}
	for i := range c.nextRef {
		c.nextRef[i] = r.I64()
	}
	c.Refreshes = r.U64()
	c.Reads = r.U64()
	c.Writes = r.U64()
	c.RowHits = r.U64()
	c.RowMisses = r.U64()
	c.RowConflicts = r.U64()
	c.Rejects = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	c.EnsureRequestors(n)
	if len(c.PerRequestor) != n {
		r.Failf("dram: controller tracks %d requestors, snapshot has %d", len(c.PerRequestor), n)
		return r.Err()
	}
	for i := range c.PerRequestor {
		rs := &c.PerRequestor[i]
		rs.Reads = r.U64()
		rs.Writes = r.U64()
		rs.RowHits = r.U64()
		rs.RowConflicts = r.U64()
		rs.WaitCycles = r.U64()
	}
	for ch := range c.BankGrants {
		for b := range c.BankGrants[ch] {
			c.BankGrants[ch][b] = r.U64()
			c.BankConflicts[ch][b] = r.U64()
		}
	}
	return c.Latency.RestoreFrom(r)
}
