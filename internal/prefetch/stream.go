// Package prefetch implements the stream prefetcher of Table 1: 32 streams,
// prefetch distance 32, degree 2, prefetching into the last-level cache,
// modeled on the IBM POWER4 prefetch engine, with Feedback-Directed
// Prefetching (FDP) throttling that adjusts aggressiveness from measured
// accuracy, lateness and pollution.
package prefetch

// Config sizes the prefetcher.
type Config struct {
	Streams  int
	Distance int // how far ahead of the demand stream to run (lines)
	Degree   int // prefetches issued per triggering access
	// LineBytes is the cache line size prefetch addresses are aligned to.
	LineBytes int
	// FDP enables feedback throttling; when false the prefetcher stays at the
	// configured Distance/Degree.
	FDP bool
	// IntervalAccesses is the FDP evaluation interval in triggering demand
	// accesses.
	IntervalAccesses uint64
}

// DefaultConfig matches Table 1.
func DefaultConfig() Config {
	return Config{
		Streams:          32,
		Distance:         32,
		Degree:           2,
		LineBytes:        64,
		FDP:              true,
		IntervalAccesses: 8192,
	}
}

// aggressiveness levels per the FDP paper (distance, degree). Table 1's
// static configuration (32, 2) is level 4.
var levels = [...]struct{ distance, degree int }{
	{4, 1}, {8, 1}, {16, 1}, {16, 2}, {32, 2}, {64, 4},
}

const defaultLevel = 4

type stream struct {
	valid   bool
	dir     int64  // +1 or -1
	last    uint64 // last demand line number seen in the stream
	next    uint64 // next line number to prefetch
	lastUse uint64
}

// Prefetcher is the stream engine. It operates on line numbers internally
// and returns full line addresses from Train.
type Prefetcher struct {
	cfg     Config
	level   int
	streams []stream
	history []uint64 // recent demand-miss line numbers for allocation
	stamp   uint64

	// Pollution filter: a Bloom-style bit array of lines evicted by prefetch
	// fills; a demand miss that hits the filter counts as pollution.
	filter [4096]bool

	// Interval counters for FDP.
	accesses   uint64
	issuedIvl  uint64
	usefulIvl  uint64
	lateIvl    uint64
	pollutIvl  uint64
	demMissIvl uint64

	// Cumulative statistics.
	Issued    uint64
	Useful    uint64
	Late      uint64
	Pollution uint64
	LevelUps  uint64
	LevelDns  uint64
}

// New returns an idle prefetcher.
func New(cfg Config) *Prefetcher {
	if cfg.Streams <= 0 || cfg.LineBytes <= 0 {
		panic("prefetch: invalid configuration")
	}
	p := &Prefetcher{cfg: cfg, level: defaultLevel, streams: make([]stream, cfg.Streams)}
	if !cfg.FDP {
		// Freeze at the static Table 1 setting.
		p.level = defaultLevel
	}
	if cfg.IntervalAccesses == 0 {
		p.cfg.IntervalAccesses = 8192
	}
	return p
}

func (p *Prefetcher) distance() int64 {
	if p.cfg.FDP {
		return int64(levels[p.level].distance)
	}
	return int64(p.cfg.Distance)
}

func (p *Prefetcher) degree() int {
	if p.cfg.FDP {
		return levels[p.level].degree
	}
	return p.cfg.Degree
}

// Level returns the current FDP aggressiveness level (for tests/stats).
func (p *Prefetcher) Level() int { return p.level }

// Train observes one LLC demand access and returns the line addresses to
// prefetch (possibly none). hit reports whether the access hit the LLC;
// wasPrefetchHit reports a first demand hit on a prefetched line (accuracy
// feedback, from the cache's prefetch bits).
func (p *Prefetcher) Train(addr uint64, hit, wasPrefetchHit bool) []uint64 {
	ln := addr / uint64(p.cfg.LineBytes)
	p.accesses++
	if wasPrefetchHit {
		p.Useful++
		p.usefulIvl++
	}
	if !hit {
		p.demMissIvl++
		if p.filter[p.filterIdx(ln)] {
			p.Pollution++
			p.pollutIvl++
			p.filter[p.filterIdx(ln)] = false
		}
	}

	var out []uint64
	if s := p.match(ln); s != nil {
		p.stamp++
		s.lastUse = p.stamp
		if (s.dir > 0 && ln > s.last) || (s.dir < 0 && ln < s.last) {
			s.last = ln
		}
		out = p.advance(s)
	} else if !hit {
		p.train(ln)
	}
	if p.cfg.FDP && p.accesses >= p.cfg.IntervalAccesses {
		p.adjust()
	}
	return out
}

// match finds the stream tracking line ln, i.e. one whose window
// [last, last+distance*dir] contains ln.
func (p *Prefetcher) match(ln uint64) *stream {
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		d := int64(ln) - int64(s.last)
		if s.dir > 0 && d >= 0 && d <= p.distance() {
			return s
		}
		if s.dir < 0 && d <= 0 && -d <= p.distance() {
			return s
		}
	}
	return nil
}

// train looks for two sequential misses to allocate a new stream.
func (p *Prefetcher) train(ln uint64) {
	for _, h := range p.history {
		var dir int64
		switch {
		case ln == h+1:
			dir = 1
		case ln == h-1:
			dir = -1
		default:
			continue
		}
		s := p.victimStream()
		p.stamp++
		*s = stream{valid: true, dir: dir, last: ln, next: ln + uint64(dir)*2, lastUse: p.stamp}
		p.removeHistory(h)
		return
	}
	p.history = append(p.history, ln)
	if len(p.history) > 16 {
		p.history = p.history[1:]
	}
}

func (p *Prefetcher) removeHistory(h uint64) {
	for i, v := range p.history {
		if v == h {
			p.history = append(p.history[:i], p.history[i+1:]...)
			return
		}
	}
}

func (p *Prefetcher) victimStream() *stream {
	vi := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			return &p.streams[i]
		}
		if p.streams[i].lastUse < p.streams[vi].lastUse {
			vi = i
		}
	}
	return &p.streams[vi]
}

// advance issues up to degree prefetches keeping next within distance of the
// demand point.
func (p *Prefetcher) advance(s *stream) []uint64 {
	var out []uint64
	limit := int64(s.last) + p.distance()*s.dir
	for n := 0; n < p.degree(); n++ {
		pos := int64(s.next)
		if s.dir > 0 && pos > limit {
			break
		}
		if s.dir < 0 && pos < limit {
			break
		}
		if pos < 0 {
			break
		}
		out = append(out, uint64(pos)*uint64(p.cfg.LineBytes))
		s.next = uint64(pos + s.dir)
		p.Issued++
		p.issuedIvl++
	}
	return out
}

func (p *Prefetcher) filterIdx(ln uint64) int {
	h := ln * 0x9e3779b97f4a7c15
	return int(h % uint64(len(p.filter)))
}

// NotePrefetchEviction records that a prefetch fill evicted victimAddr
// (pollution feedback).
func (p *Prefetcher) NotePrefetchEviction(victimAddr uint64) {
	ln := victimAddr / uint64(p.cfg.LineBytes)
	p.filter[p.filterIdx(ln)] = true
}

// NoteLatePrefetch records a demand access that merged into an in-flight
// prefetch (the prefetch was useful but late).
func (p *Prefetcher) NoteLatePrefetch() {
	p.Late++
	p.lateIvl++
	p.Useful++
	p.usefulIvl++
}

// adjust applies the FDP policy at an interval boundary: accurate and late →
// more aggressive; inaccurate or polluting → less; otherwise hold.
func (p *Prefetcher) adjust() {
	issued, useful := p.issuedIvl, p.usefulIvl
	late, poll, miss := p.lateIvl, p.pollutIvl, p.demMissIvl
	p.accesses, p.issuedIvl, p.usefulIvl, p.lateIvl, p.pollutIvl, p.demMissIvl = 0, 0, 0, 0, 0, 0
	if issued < 32 {
		return // not enough signal
	}
	acc := float64(useful) / float64(issued)
	lateFrac := 0.0
	if useful > 0 {
		lateFrac = float64(late) / float64(useful)
	}
	pollFrac := 0.0
	if miss > 0 {
		pollFrac = float64(poll) / float64(miss)
	}
	switch {
	case acc >= 0.75 && lateFrac >= 0.10 && pollFrac < 0.25:
		if p.level < len(levels)-1 {
			p.level++
			p.LevelUps++
		}
	case acc < 0.40 || pollFrac >= 0.25:
		if p.level > 0 {
			p.level--
			p.LevelDns++
		}
	}
}

// ResetStats zeroes the cumulative counters, preserving stream-tracking and
// throttling state.
func (p *Prefetcher) ResetStats() {
	p.Issued, p.Useful, p.Late, p.Pollution = 0, 0, 0, 0
	p.LevelUps, p.LevelDns = 0, 0
}
