package prefetch

import "runaheadsim/internal/snapshot"

// Engine is the interface the memory system drives: any prefetcher that
// trains on LLC demand accesses and emits prefetch addresses. Two
// implementations exist — the paper's stream prefetcher (Prefetcher) and a
// region-delta prefetcher (Delta) standing in for the stride prefetchers of
// the paper's related-work section.
type Engine interface {
	// Train observes one LLC demand access and returns line addresses to
	// prefetch.
	Train(addr uint64, hit, wasPrefetchHit bool) []uint64
	// NotePrefetchEviction records that a prefetch fill evicted victimAddr.
	NotePrefetchEviction(victimAddr uint64)
	// NoteLatePrefetch records a demand access that merged into an in-flight
	// prefetch.
	NoteLatePrefetch()
	// ResetStats zeroes counters, preserving training state.
	ResetStats()
	// Counters returns the cumulative statistics.
	Counters() Counters
	// Snapshotter: every engine serializes its own training state so a
	// restored machine prefetches identically to the uninterrupted run.
	snapshot.Snapshotter
}

// Counters summarizes prefetcher activity.
type Counters struct {
	Issued    uint64
	Useful    uint64
	Late      uint64
	Pollution uint64
}

// Counters implements Engine.
func (p *Prefetcher) Counters() Counters {
	return Counters{Issued: p.Issued, Useful: p.Useful, Late: p.Late, Pollution: p.Pollution}
}
