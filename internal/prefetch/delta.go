package prefetch

// Delta is a region-based delta (stride) prefetcher, the classic alternative
// the paper's related-work section groups under stride prefetching [11, 14,
// 27]: for each memory region it tracks the last demand line and the last
// inter-miss delta; when the same delta repeats, it prefetches degree lines
// further along that delta. Unlike the sequential stream prefetcher, it
// locks onto large constant strides (the stencil workloads the stream engine
// cannot see) while still issuing nothing on random access.
type Delta struct {
	regions    []deltaRegion
	regionBits uint   //simlint:nosnapshot derived from configured geometry by the constructor
	lineBytes  uint64 //simlint:nosnapshot derived from configured geometry by the constructor
	degree     int    //simlint:nosnapshot derived from configured geometry by the constructor
	stamp      uint64

	issued    uint64
	useful    uint64
	late      uint64
	pollution uint64
}

type deltaRegion struct {
	valid    bool
	tag      uint64
	lastLine int64
	delta    int64
	conf     uint8
	lastUse  uint64
}

// DeltaConfig sizes the delta prefetcher.
type DeltaConfig struct {
	Regions    int  // tracking entries (LRU)
	RegionBits uint // log2 of the region size in bytes
	LineBytes  int
	Degree     int // prefetches per confident trigger
}

// DefaultDeltaConfig tracks 64 4MB regions at degree 2.
func DefaultDeltaConfig() DeltaConfig {
	return DeltaConfig{Regions: 64, RegionBits: 22, LineBytes: 64, Degree: 2}
}

// NewDelta returns an idle delta prefetcher.
func NewDelta(cfg DeltaConfig) *Delta {
	if cfg.Regions <= 0 || cfg.LineBytes <= 0 || cfg.Degree <= 0 {
		panic("prefetch: invalid delta configuration")
	}
	return &Delta{
		regions:    make([]deltaRegion, cfg.Regions),
		regionBits: cfg.RegionBits,
		lineBytes:  uint64(cfg.LineBytes),
		degree:     cfg.Degree,
	}
}

// Train implements Engine.
func (d *Delta) Train(addr uint64, hit, wasPrefetchHit bool) []uint64 {
	if wasPrefetchHit {
		d.useful++
	}
	if hit {
		return nil // train on misses only; hits carry no new delta information
	}
	line := int64(addr / d.lineBytes)
	tag := addr >> d.regionBits
	r := d.lookup(tag)
	d.stamp++
	r.lastUse = d.stamp
	if !r.valid || r.tag != tag {
		*r = deltaRegion{valid: true, tag: tag, lastLine: line, lastUse: d.stamp}
		return nil
	}
	delta := line - r.lastLine
	r.lastLine = line
	if delta == 0 {
		return nil
	}
	if delta == r.delta {
		if r.conf < 3 {
			r.conf++
		}
	} else {
		r.delta = delta
		r.conf = 0
		return nil
	}
	if r.conf < 1 {
		return nil
	}
	out := make([]uint64, 0, d.degree)
	next := line
	for i := 0; i < d.degree; i++ {
		next += delta
		if next < 0 {
			break
		}
		out = append(out, uint64(next)*d.lineBytes)
	}
	d.issued += uint64(len(out))
	return out
}

func (d *Delta) lookup(tag uint64) *deltaRegion {
	vi := 0
	for i := range d.regions {
		r := &d.regions[i]
		if r.valid && r.tag == tag {
			return r
		}
		if !r.valid {
			vi = i
		} else if d.regions[vi].valid && r.lastUse < d.regions[vi].lastUse {
			vi = i
		}
	}
	return &d.regions[vi]
}

// NotePrefetchEviction implements Engine (the delta engine does not track
// pollution; it simply counts).
func (d *Delta) NotePrefetchEviction(uint64) { d.pollution++ }

// NoteLatePrefetch implements Engine.
func (d *Delta) NoteLatePrefetch() { d.late++; d.useful++ }

// ResetStats implements Engine.
func (d *Delta) ResetStats() { d.issued, d.useful, d.late, d.pollution = 0, 0, 0, 0 }

// Counters implements Engine.
func (d *Delta) Counters() Counters {
	return Counters{Issued: d.issued, Useful: d.useful, Late: d.late, Pollution: d.pollution}
}
