package prefetch

import "runaheadsim/internal/snapshot"

// SnapshotTo serializes the stream engine: FDP level, streams, allocation
// history, the pollution filter (packed as bits), interval counters and
// cumulative statistics, in declaration order.
func (p *Prefetcher) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("pf-stream")
	w.Int(p.cfg.Streams)
	w.Int(p.level)
	for i := range p.streams {
		s := &p.streams[i]
		w.Bool(s.valid)
		w.I64(s.dir)
		w.U64(s.last)
		w.U64(s.next)
		w.U64(s.lastUse)
	}
	w.Int(len(p.history))
	for _, h := range p.history {
		w.U64(h)
	}
	w.U64(p.stamp)
	packed := make([]byte, len(p.filter)/8)
	for i, b := range p.filter {
		if b {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	w.Bytes64(packed)
	w.U64(p.accesses)
	w.U64(p.issuedIvl)
	w.U64(p.usefulIvl)
	w.U64(p.lateIvl)
	w.U64(p.pollutIvl)
	w.U64(p.demMissIvl)
	w.U64(p.Issued)
	w.U64(p.Useful)
	w.U64(p.Late)
	w.U64(p.Pollution)
	w.U64(p.LevelUps)
	w.U64(p.LevelDns)
	return nil
}

// RestoreFrom reads state written by SnapshotTo into p, which must have the
// same stream count.
func (p *Prefetcher) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("pf-stream")
	if got := r.Int(); r.Err() == nil && got != p.cfg.Streams {
		r.Failf("prefetch: %d streams, snapshot has %d", p.cfg.Streams, got)
	}
	if r.Err() != nil {
		return r.Err()
	}
	p.level = r.Int()
	for i := range p.streams {
		s := &p.streams[i]
		s.valid = r.Bool()
		s.dir = r.I64()
		s.last = r.U64()
		s.next = r.U64()
		s.lastUse = r.U64()
	}
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	p.history = make([]uint64, n)
	for i := range p.history {
		p.history[i] = r.U64()
	}
	p.stamp = r.U64()
	packed := r.Bytes64()
	if r.Err() != nil {
		return r.Err()
	}
	if len(packed) != len(p.filter)/8 {
		r.Failf("prefetch: pollution filter is %d bits, snapshot has %d bytes", len(p.filter), len(packed))
		return r.Err()
	}
	for i := range p.filter {
		p.filter[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	p.accesses = r.U64()
	p.issuedIvl = r.U64()
	p.usefulIvl = r.U64()
	p.lateIvl = r.U64()
	p.pollutIvl = r.U64()
	p.demMissIvl = r.U64()
	p.Issued = r.U64()
	p.Useful = r.U64()
	p.Late = r.U64()
	p.Pollution = r.U64()
	p.LevelUps = r.U64()
	p.LevelDns = r.U64()
	return r.Err()
}

// SnapshotTo serializes the delta engine: regions, stamp and statistics.
func (d *Delta) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("pf-delta")
	w.Int(len(d.regions))
	for i := range d.regions {
		g := &d.regions[i]
		w.Bool(g.valid)
		w.U64(g.tag)
		w.I64(g.lastLine)
		w.I64(g.delta)
		w.U8(g.conf)
		w.U64(g.lastUse)
	}
	w.U64(d.stamp)
	w.U64(d.issued)
	w.U64(d.useful)
	w.U64(d.late)
	w.U64(d.pollution)
	return nil
}

// RestoreFrom reads state written by SnapshotTo into d, which must have the
// same region count.
func (d *Delta) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("pf-delta")
	if got := r.Int(); r.Err() == nil && got != len(d.regions) {
		r.Failf("prefetch: %d delta regions, snapshot has %d", len(d.regions), got)
	}
	if r.Err() != nil {
		return r.Err()
	}
	for i := range d.regions {
		g := &d.regions[i]
		g.valid = r.Bool()
		g.tag = r.U64()
		g.lastLine = r.I64()
		g.delta = r.I64()
		g.conf = r.U8()
		g.lastUse = r.U64()
	}
	d.stamp = r.U64()
	d.issued = r.U64()
	d.useful = r.U64()
	d.late = r.U64()
	d.pollution = r.U64()
	return r.Err()
}
