package prefetch

import "testing"

func newDelta() *Delta { return NewDelta(DefaultDeltaConfig()) }

func TestDeltaLocksOntoConstantStride(t *testing.T) {
	d := newDelta()
	const stride = 47 * 64 // the zeusmp stride the stream prefetcher cannot see
	var issued int
	for i := uint64(0); i < 8; i++ {
		issued += len(d.Train(i*stride, false, false))
	}
	if issued == 0 {
		t.Fatal("delta prefetcher never locked onto a constant stride")
	}
	// Once confident, predictions run `stride` ahead.
	out := d.Train(8*stride, false, false)
	if len(out) == 0 || out[0] != 9*stride {
		t.Fatalf("prediction = %v, want next stride point %#x", out, 9*stride)
	}
}

func TestDeltaIgnoresRandomMisses(t *testing.T) {
	d := newDelta()
	addrs := []uint64{0, 13 << 12, 7 << 13, 999 << 10, 5 << 14, 1 << 18}
	total := 0
	for _, a := range addrs {
		total += len(d.Train(a, false, false))
	}
	if total != 0 {
		t.Fatalf("random misses produced %d prefetches", total)
	}
}

func TestDeltaPerRegionTracking(t *testing.T) {
	d := newDelta()
	// Two interleaved strided streams in different 4MB regions must both
	// train despite alternating.
	const strideA, strideB = 3 * 64, 5 * 64
	baseB := uint64(1) << 30
	var issuedA, issuedB int
	for i := uint64(0); i < 10; i++ {
		issuedA += len(d.Train(i*strideA, false, false))
		issuedB += len(d.Train(baseB+i*strideB, false, false))
	}
	if issuedA == 0 || issuedB == 0 {
		t.Fatalf("interleaved regions not tracked independently: %d/%d", issuedA, issuedB)
	}
}

func TestDeltaNegativeStride(t *testing.T) {
	d := newDelta()
	base := uint64(1 << 20)
	issued := 0
	for i := int64(0); i < 8; i++ {
		issued += len(d.Train(base-uint64(i)*128, false, false))
	}
	if issued == 0 {
		t.Fatal("descending stride not detected")
	}
}

func TestDeltaStrideChangeResetsConfidence(t *testing.T) {
	d := newDelta()
	for i := uint64(0); i < 6; i++ {
		d.Train(i*128, false, false)
	}
	before := d.Counters().Issued
	// Change the stride: the first new-delta miss must not prefetch.
	if out := d.Train(6*128+4096, false, false); len(out) != 0 {
		t.Fatal("stride change must reset confidence")
	}
	if d.Counters().Issued != before {
		t.Fatal("issued counter moved on a reset")
	}
}

func TestDeltaHitsDoNotTrain(t *testing.T) {
	d := newDelta()
	for i := uint64(0); i < 8; i++ {
		if out := d.Train(i*128, true, false); len(out) != 0 {
			t.Fatal("hits must not train or prefetch")
		}
	}
}

func TestDeltaCountersAndReset(t *testing.T) {
	d := newDelta()
	for i := uint64(0); i < 8; i++ {
		d.Train(i*128, false, false)
	}
	d.Train(0, true, true) // useful
	d.NoteLatePrefetch()
	d.NotePrefetchEviction(0)
	c := d.Counters()
	if c.Issued == 0 || c.Useful != 2 || c.Late != 1 || c.Pollution != 1 {
		t.Fatalf("counters = %+v", c)
	}
	d.ResetStats()
	if d.Counters() != (Counters{}) {
		t.Fatal("ResetStats did not zero")
	}
	// Training state survives the reset.
	if out := d.Train(8*128, false, false); len(out) == 0 {
		t.Fatal("training state lost across ResetStats")
	}
}

func TestEngineInterfaceSatisfied(t *testing.T) {
	var _ Engine = New(DefaultConfig())
	var _ Engine = NewDelta(DefaultDeltaConfig())
}
