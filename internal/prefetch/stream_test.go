package prefetch

import "testing"

func static() Config {
	c := DefaultConfig()
	c.FDP = false
	return c
}

func TestAllocationNeedsTwoSequentialMisses(t *testing.T) {
	p := New(static())
	if out := p.Train(0*64, false, false); out != nil {
		t.Fatal("first miss must not prefetch")
	}
	if out := p.Train(1*64, false, false); out != nil {
		t.Fatal("allocation itself must not prefetch yet")
	}
	// Third sequential access falls inside the stream window and triggers.
	out := p.Train(2*64, false, false)
	if len(out) != 2 {
		t.Fatalf("expected degree=2 prefetches, got %v", out)
	}
	// Prefetches start past the demand point.
	if out[0] != 3*64 || out[1] != 4*64 {
		t.Fatalf("prefetch addrs = %#v, want lines 3,4", out)
	}
}

func TestDescendingStream(t *testing.T) {
	p := New(static())
	p.Train(100*64, false, false)
	p.Train(99*64, false, false)
	out := p.Train(98*64, false, false)
	if len(out) != 2 || out[0] != 97*64 || out[1] != 96*64 {
		t.Fatalf("descending prefetches = %v", out)
	}
}

func TestStreamStaysWithinDistance(t *testing.T) {
	p := New(static())
	p.Train(0, false, false)
	p.Train(64, false, false)
	issued := 0
	// Repeatedly re-trigger at the same demand point: prefetching must stop
	// once the stream is Distance lines ahead.
	for i := 0; i < 100; i++ {
		issued += len(p.Train(2*64, true, false))
	}
	if issued > 32 {
		t.Fatalf("issued %d prefetches, distance cap is 32", issued)
	}
}

func TestStreamFollowsDemand(t *testing.T) {
	p := New(static())
	total := 0
	for i := uint64(0); i < 64; i++ {
		total += len(p.Train(i*64, i > 1, false))
	}
	// Following the demand stream, the prefetcher keeps issuing.
	if total < 60 {
		t.Fatalf("sustained stream issued only %d prefetches", total)
	}
	if p.Issued != uint64(total) {
		t.Fatal("Issued counter inconsistent")
	}
}

func TestRandomAccessesDoNotPrefetch(t *testing.T) {
	p := New(static())
	addrs := []uint64{0, 5000 * 64, 901 * 64, 77 * 64, 12345 * 64, 3 * 64}
	total := 0
	for _, a := range addrs {
		total += len(p.Train(a, false, false))
	}
	if total != 0 {
		t.Fatalf("random misses should not trigger prefetches, got %d", total)
	}
}

func TestStreamLRUReplacement(t *testing.T) {
	cfg := static()
	cfg.Streams = 2
	p := New(cfg)
	mk := func(base uint64) {
		p.Train(base, false, false)
		p.Train(base+64, false, false)
	}
	mk(0)
	mk(1 << 20)
	mk(1 << 21) // evicts the LRU stream (base 0)
	// The base-0 stream should be gone: accessing its window allocates again
	// rather than advancing, so no prefetches come out immediately.
	if out := p.Train(2*64, false, false); len(out) != 0 {
		t.Fatalf("evicted stream still active: %v", out)
	}
}

func TestUsefulAndLateCounters(t *testing.T) {
	p := New(static())
	p.Train(0, true, true)
	if p.Useful != 1 {
		t.Fatal("prefetch-bit demand hit must count as useful")
	}
	p.NoteLatePrefetch()
	if p.Late != 1 || p.Useful != 2 {
		t.Fatalf("late/useful = %d/%d", p.Late, p.Useful)
	}
}

func TestPollutionFilter(t *testing.T) {
	p := New(static())
	p.NotePrefetchEviction(42 * 64)
	p.Train(42*64, false, false)
	if p.Pollution != 1 {
		t.Fatal("demand miss on prefetch-evicted line must count as pollution")
	}
	// Counted once, then cleared.
	p.Train(42*64, false, false)
	if p.Pollution != 1 {
		t.Fatal("pollution must not double-count")
	}
}

func TestFDPThrottlesDown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntervalAccesses = 256
	p := New(cfg)
	start := p.Level()
	// Strided misses (stride 2 lines) never match, but allocate many streams
	// via the +1 history heuristic... instead drive an inaccurate pattern:
	// allocate a stream, let it prefetch, never use the prefetches.
	next := uint64(0)
	for r := 0; r < 40; r++ {
		base := next
		next += 1 << 16
		p.Train(base, false, false)
		p.Train(base+64, false, false)
		for i := uint64(2); i < 8; i++ {
			p.Train(base+i*64, false, false) // misses: prefetches were "useless"
		}
	}
	if p.Level() >= start {
		t.Fatalf("level %d should have dropped below %d under 0%% accuracy", p.Level(), start)
	}
	if p.LevelDns == 0 {
		t.Fatal("no down-throttle recorded")
	}
}

func TestFDPThrottlesUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntervalAccesses = 256
	p := New(cfg)
	start := p.Level()
	for i := uint64(0); i < 4096; i++ {
		hit := i > 1
		out := p.Train(i*64, hit, hit) // every prefetch useful
		_ = out
		if i%8 == 0 {
			p.NoteLatePrefetch() // and chronically late
		}
	}
	if p.Level() <= start {
		t.Fatalf("level %d should have risen above %d under perfect accuracy + lateness", p.Level(), start)
	}
}

func TestStaticConfigIgnoresFeedback(t *testing.T) {
	p := New(static())
	for i := uint64(0); i < 20000; i++ {
		p.Train(i*64, false, false)
	}
	if p.Level() != defaultLevel {
		t.Fatal("static prefetcher must not change level")
	}
	if p.distance() != 32 || p.degree() != 2 {
		t.Fatalf("static distance/degree = %d/%d, want 32/2", p.distance(), p.degree())
	}
}

func TestResetStatsKeepsStreams(t *testing.T) {
	p := New(static())
	p.Train(0, false, false)
	p.Train(64, false, false)
	p.Train(2*64, false, false) // stream established and prefetching
	if p.Issued == 0 {
		t.Fatal("setup failed")
	}
	p.ResetStats()
	if p.Issued != 0 || p.Useful != 0 {
		t.Fatal("counters not zeroed")
	}
	// The stream itself survives: the next in-window access still prefetches.
	if out := p.Train(3*64, true, false); len(out) == 0 {
		t.Fatal("stream state lost across ResetStats")
	}
}
