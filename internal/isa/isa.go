// Package isa defines the micro-operation instruction set executed by the
// simulator: opcodes, architectural registers, the decoded micro-op (uop)
// format, and the address-space layout of programs.
//
// The ISA is deliberately RISC-like at the uop level — the paper's machine is
// an x86 core, but x86 instructions are cracked into uops before they reach
// the reorder buffer, and everything the runahead buffer does (Algorithm 1,
// the buffer itself) operates on decoded uops. Each uop has at most one
// destination register and two source registers plus an immediate, matching
// the ROB-entry fields the paper relies on (PC, destination register id,
// source register ids).
package isa

import "fmt"

// Reg is an architectural register identifier.
type Reg uint8

// NumArchRegs is the number of architectural integer registers. RegNone is a
// sentinel meaning "no register" and is not part of the architectural file.
const (
	NumArchRegs = 64
	// RegNone marks an absent operand (e.g. the destination of a store).
	RegNone Reg = 255
)

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumArchRegs }

// String implements fmt.Stringer.
func (r Reg) String() string {
	if r == RegNone {
		return "r-"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Opcode enumerates micro-operation kinds.
type Opcode uint8

// Micro-operation opcodes. Arithmetic operates on 64-bit integer values;
// "FP" opcodes reuse integer semantics but carry floating-point execution
// latencies (only dataflow and latency matter to the timing model — FP
// values essentially never feed address generation in the workloads).
const (
	NOP Opcode = iota

	// Integer ALU.
	ADD   // Dst = Src1 + Src2
	SUB   // Dst = Src1 - Src2
	AND   // Dst = Src1 & Src2
	OR    // Dst = Src1 | Src2
	XOR   // Dst = Src1 ^ Src2
	SHL   // Dst = Src1 << (Src2 & 63)
	SHR   // Dst = Src1 >> (Src2 & 63) (logical)
	MUL   // Dst = Src1 * Src2
	DIV   // Dst = Src1 / Src2 (0 if divisor 0)
	ADDI  // Dst = Src1 + Imm
	ANDI  // Dst = Src1 & Imm
	MULI  // Dst = Src1 * Imm
	MOV   // Dst = Src1
	MOVI  // Dst = Imm
	CMPLT // Dst = (Src1 < Src2) ? 1 : 0
	CMPEQ // Dst = (Src1 == Src2) ? 1 : 0

	// Floating-point (latency classes; integer semantics).
	FADD // Dst = Src1 + Src2
	FMUL // Dst = Src1 * Src2
	FDIV // Dst = Src1 / Src2 (0 if divisor 0)

	// Memory. For LD the effective address is Src1 + Imm, or
	// Src1 + Src2*Scale + Imm when Scaled. Stores always use EA = Src1 + Imm
	// because Src2 carries the store data.
	LD // Dst = Mem[EA]
	ST // Mem[Src1+Imm] = Src2

	// Control. Branches name a taken-target block; fall-through is the next
	// block in layout order. JMP is always taken.
	JMP  // unconditional
	BEQZ // taken if Src1 == 0
	BNEZ // taken if Src1 != 0
	BLT  // taken if Src1 < Src2
	BGE  // taken if Src1 >= Src2
	CALL // unconditional; pushes return address (next uop PC) on the RAS
	RET  // returns to Src1 (value holds return PC)

	numOpcodes
)

var opNames = [numOpcodes]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", MUL: "mul", DIV: "div", ADDI: "addi",
	ANDI: "andi", MULI: "muli", MOV: "mov", MOVI: "movi", CMPLT: "cmplt",
	CMPEQ: "cmpeq", FADD: "fadd", FMUL: "fmul", FDIV: "fdiv", LD: "ld",
	ST: "st", JMP: "jmp", BEQZ: "beqz", BNEZ: "bnez", BLT: "blt",
	BGE: "bge", CALL: "call", RET: "ret",
}

// String implements fmt.Stringer.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsBranch reports whether the opcode redirects control flow.
func (o Opcode) IsBranch() bool {
	switch o {
	case JMP, BEQZ, BNEZ, BLT, BGE, CALL, RET:
		return true
	}
	return false
}

// IsConditional reports whether the branch outcome depends on register values.
func (o Opcode) IsConditional() bool {
	switch o {
	case BEQZ, BNEZ, BLT, BGE:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads memory.
func (o Opcode) IsLoad() bool { return o == LD }

// IsStore reports whether the opcode writes memory.
func (o Opcode) IsStore() bool { return o == ST }

// IsMem reports whether the opcode accesses data memory.
func (o Opcode) IsMem() bool { return o == LD || o == ST }

// FUClass groups opcodes by the functional unit that executes them.
type FUClass uint8

// Functional unit classes.
const (
	FUNone   FUClass = iota // NOP
	FUALU                   // single-cycle integer
	FUMul                   // integer multiply
	FUDiv                   // integer divide
	FUFP                    // floating point add/mul
	FUFDiv                  // floating point divide
	FUAGU                   // address generation (loads/stores)
	FUBranch                // control
)

// FU returns the functional unit class for the opcode.
func (o Opcode) FU() FUClass {
	switch o {
	case NOP:
		return FUNone
	case MUL, MULI:
		return FUMul
	case DIV:
		return FUDiv
	case FADD, FMUL:
		return FUFP
	case FDIV:
		return FUFDiv
	case LD, ST:
		return FUAGU
	case JMP, BEQZ, BNEZ, BLT, BGE, CALL, RET:
		return FUBranch
	default:
		return FUALU
	}
}

// ExecLatency returns the execution latency in cycles for the opcode,
// excluding any cache access time for memory operations.
func (o Opcode) ExecLatency() int {
	switch o.FU() {
	case FUMul:
		return 3
	case FUDiv:
		return 24
	case FUFP:
		return 4
	case FUFDiv:
		return 20
	case FUAGU:
		return 1 // address generation; cache latency is added by the memory system
	default:
		return 1
	}
}

// BlockID identifies a basic block within a program.
type BlockID int32

// NoBlock is the absent-block sentinel.
const NoBlock BlockID = -1

// Uop is a decoded micro-operation. It is the static form: dynamic instances
// add runtime state in the core.
type Uop struct {
	Op   Opcode
	Dst  Reg // RegNone when the uop produces no register result
	Src1 Reg // RegNone when unused
	Src2 Reg // RegNone when unused; for ST this is the data register
	Imm  int64

	// Scaled selects the indexed addressing mode EA = Src1 + Src2*Scale + Imm
	// for memory uops. Scale must be a power of two.
	Scaled bool
	Scale  uint8

	// Target is the taken-path block for branches.
	Target BlockID
}

// HasDst reports whether the uop writes an architectural register.
func (u *Uop) HasDst() bool { return u.Dst != RegNone }

// SrcRegs appends the uop's valid source registers to dst and returns it.
// Order is Src1 then Src2.
func (u *Uop) SrcRegs(dst []Reg) []Reg {
	if u.Src1 != RegNone {
		dst = append(dst, u.Src1)
	}
	if u.Src2 != RegNone {
		dst = append(dst, u.Src2)
	}
	return dst
}

// String implements fmt.Stringer.
func (u *Uop) String() string {
	switch {
	case u.Op == MOVI:
		return fmt.Sprintf("%s %s <- #%d", u.Op, u.Dst, u.Imm)
	case u.Op.IsLoad():
		if u.Scaled {
			return fmt.Sprintf("ld %s <- [%s+%s*%d+%d]", u.Dst, u.Src1, u.Src2, u.Scale, u.Imm)
		}
		return fmt.Sprintf("ld %s <- [%s+%d]", u.Dst, u.Src1, u.Imm)
	case u.Op.IsStore():
		return fmt.Sprintf("st [%s+%d] <- %s", u.Src1, u.Imm, u.Src2)
	case u.Op.IsBranch():
		return fmt.Sprintf("%s %s,%s -> B%d", u.Op, u.Src1, u.Src2, u.Target)
	default:
		return fmt.Sprintf("%s %s <- %s,%s #%d", u.Op, u.Dst, u.Src1, u.Src2, u.Imm)
	}
}

// Address-space layout. Program text is laid out at TextBase with a fixed
// UopBytes per uop (uops are stored decoded; 8 bytes matches the paper's
// "micro-op size: 8 bytes"). Data segments for workloads begin at DataBase.
const (
	TextBase = uint64(0x0000_0000_0040_0000)
	UopBytes = 8
	DataBase = uint64(0x0000_0000_1000_0000)
	// StackBase is a conventional location for spill/fill traffic.
	StackBase = uint64(0x0000_0000_7fff_0000)
)
