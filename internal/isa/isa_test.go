package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumArchRegs; r++ {
		if !r.Valid() {
			t.Fatalf("register %v should be valid", r)
		}
	}
	if RegNone.Valid() {
		t.Fatal("RegNone must not be a valid architectural register")
	}
	if Reg(NumArchRegs).Valid() {
		t.Fatal("register one past the file must be invalid")
	}
}

func TestRegString(t *testing.T) {
	if got := Reg(7).String(); got != "r7" {
		t.Fatalf("Reg(7) = %q, want r7", got)
	}
	if got := RegNone.String(); got != "r-" {
		t.Fatalf("RegNone = %q, want r-", got)
	}
}

func TestEveryOpcodeHasName(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op") {
			t.Errorf("opcode %d has no name (got %q)", op, s)
		}
	}
}

func TestBranchClassification(t *testing.T) {
	branches := []Opcode{JMP, BEQZ, BNEZ, BLT, BGE, CALL, RET}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
		if op.FU() != FUBranch {
			t.Errorf("%v should execute on the branch unit", op)
		}
	}
	conditional := map[Opcode]bool{BEQZ: true, BNEZ: true, BLT: true, BGE: true}
	for _, op := range branches {
		if op.IsConditional() != conditional[op] {
			t.Errorf("%v conditional = %v, want %v", op, op.IsConditional(), conditional[op])
		}
	}
	for _, op := range []Opcode{ADD, LD, ST, NOP, MOVI} {
		if op.IsBranch() {
			t.Errorf("%v should not be a branch", op)
		}
	}
}

func TestMemClassification(t *testing.T) {
	if !LD.IsLoad() || !LD.IsMem() || LD.IsStore() {
		t.Error("LD misclassified")
	}
	if !ST.IsStore() || !ST.IsMem() || ST.IsLoad() {
		t.Error("ST misclassified")
	}
	if ADD.IsMem() {
		t.Error("ADD is not a memory op")
	}
	if LD.FU() != FUAGU || ST.FU() != FUAGU {
		t.Error("memory ops should use the AGU")
	}
}

func TestExecLatencyPositive(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if op.ExecLatency() < 1 {
			t.Errorf("%v has non-positive latency", op)
		}
	}
	if MUL.ExecLatency() <= ADD.ExecLatency() {
		t.Error("multiply should be slower than add")
	}
	if DIV.ExecLatency() <= MUL.ExecLatency() {
		t.Error("divide should be slower than multiply")
	}
}

func TestSrcRegs(t *testing.T) {
	u := Uop{Op: ADD, Dst: 1, Src1: 2, Src2: 3}
	got := u.SrcRegs(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("SrcRegs = %v, want [r2 r3]", got)
	}
	u = Uop{Op: MOVI, Dst: 1, Src1: RegNone, Src2: RegNone}
	if got := u.SrcRegs(nil); len(got) != 0 {
		t.Fatalf("MOVI should have no sources, got %v", got)
	}
	u = Uop{Op: ADDI, Dst: 1, Src1: 5, Src2: RegNone}
	if got := u.SrcRegs(nil); len(got) != 1 || got[0] != 5 {
		t.Fatalf("ADDI sources = %v, want [r5]", got)
	}
}

func TestHasDst(t *testing.T) {
	st := Uop{Op: ST, Dst: RegNone, Src1: 1, Src2: 2}
	if st.HasDst() {
		t.Error("stores have no destination register")
	}
	ld := Uop{Op: LD, Dst: 4, Src1: 1}
	if !ld.HasDst() {
		t.Error("loads have a destination register")
	}
}

func TestUopStringCoversAllShapes(t *testing.T) {
	cases := []Uop{
		{Op: MOVI, Dst: 1, Imm: 42},
		{Op: LD, Dst: 2, Src1: 1, Imm: 8},
		{Op: LD, Dst: 2, Src1: 1, Src2: 3, Scaled: true, Scale: 8},
		{Op: ST, Src1: 1, Src2: 2, Imm: 16},
		{Op: BEQZ, Src1: 1, Target: 3},
		{Op: ADD, Dst: 1, Src1: 2, Src2: 3},
	}
	for _, u := range cases {
		if s := u.String(); s == "" {
			t.Errorf("empty String for %+v", u)
		}
	}
}

// Text layout round-trip: addresses and indices must be mutually inverse.
func TestTextLayoutRoundTrip(t *testing.T) {
	f := func(i uint16) bool {
		addr := TextBase + uint64(i)*UopBytes
		return (addr-TextBase)/UopBytes == uint64(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
