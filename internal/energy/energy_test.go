package energy

import (
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/workload"
)

func runMode(t *testing.T, name string, mode core.Mode, n uint64) (Breakdown, *core.Stats) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	c := core.New(cfg, workload.MustLoad(name))
	c.Run(20_000)
	c.ResetStats()
	st := c.Run(n)
	return Compute(DefaultParams(), Measure(c)), st
}

func TestBreakdownComponentsPositive(t *testing.T) {
	b, _ := runMode(t, "mcf", core.ModeNone, 30_000)
	for name, v := range map[string]float64{
		"frontend": b.FrontEnd, "backend": b.Backend, "caches": b.Caches,
		"leakage": b.CoreLeakage, "dramDyn": b.DRAMDynamic, "dramStatic": b.DRAMStatic,
	} {
		if v <= 0 {
			t.Errorf("component %s = %v, want positive", name, v)
		}
	}
	if b.Total() <= 0 {
		t.Fatal("total energy must be positive")
	}
	if b.RunaheadHW != 0 {
		t.Fatal("baseline must not charge runahead hardware")
	}
}

func TestFrontEndShareIsSubstantial(t *testing.T) {
	// The paper's premise: front-end power can reach 40% of core power. Check
	// the FE share of core dynamic energy on a compute-bound benchmark.
	b, _ := runMode(t, "calculix", core.ModeNone, 30_000)
	coreDyn := b.FrontEnd + b.Backend
	share := b.FrontEnd / coreDyn
	if share < 0.25 || share > 0.55 {
		t.Fatalf("front-end share of core dynamic = %.2f, want ~0.4", share)
	}
}

func TestTraditionalRunaheadCostsEnergy(t *testing.T) {
	base, bst := runMode(t, "mcf", core.ModeNone, 30_000)
	ra, rst := runMode(t, "mcf", core.ModeTraditional, 30_000)
	// Traditional runahead fetches and decodes far more uops.
	if rst.Fetched <= bst.Fetched {
		t.Fatal("traditional runahead should fetch more uops than baseline")
	}
	if ra.FrontEnd <= base.FrontEnd {
		t.Fatalf("traditional runahead FE energy %.1f should exceed baseline %.1f",
			ra.FrontEnd, base.FrontEnd)
	}
}

func TestBufferSpendsLessFrontEndThanTraditional(t *testing.T) {
	trad, _ := runMode(t, "mcf", core.ModeTraditional, 30_000)
	buf, bst := runMode(t, "mcf", core.ModeBufferCC, 30_000)
	if bst.BufferUopsIssued == 0 {
		t.Fatal("buffer never used")
	}
	if buf.FrontEnd >= trad.FrontEnd {
		t.Fatalf("buffer FE energy %.1f should be below traditional %.1f",
			buf.FrontEnd, trad.FrontEnd)
	}
	if buf.RunaheadHW == 0 {
		t.Fatal("buffer must charge chain-generation/checkpoint energy")
	}
}

func TestLeakageScalesWithRuntime(t *testing.T) {
	p := DefaultParams()
	a := Activity{Stats: &core.Stats{Cycles: 1000}}
	b1 := Compute(p, a)
	a.Stats = &core.Stats{Cycles: 2000}
	b2 := Compute(p, a)
	if b2.CoreLeakage != 2*b1.CoreLeakage || b2.DRAMStatic != 2*b1.DRAMStatic {
		t.Fatal("static energy must scale linearly with cycles")
	}
}

func TestDRAMEnergyScalesWithTraffic(t *testing.T) {
	p := DefaultParams()
	a := Activity{Stats: &core.Stats{}, DRAMReads: 100, DRAMActivates: 50}
	b1 := Compute(p, a)
	a.DRAMReads, a.DRAMActivates = 200, 100
	b2 := Compute(p, a)
	if b2.DRAMDynamic != 2*b1.DRAMDynamic {
		t.Fatal("DRAM dynamic energy must scale with traffic")
	}
}

// TestEnergyShapeMatchesPaper reproduces the headline energy ordering on a
// buffer-friendly workload: traditional runahead costs energy vs baseline;
// the runahead buffer costs less than traditional runahead.
func TestEnergyShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base, _ := runMode(t, "mcf", core.ModeNone, 40_000)
	trad, _ := runMode(t, "mcf", core.ModeTraditional, 40_000)
	buf, _ := runMode(t, "mcf", core.ModeBufferCC, 40_000)
	if trad.Total() <= base.Total() {
		t.Fatalf("traditional runahead total %.1f should exceed baseline %.1f (paper: +44%%)",
			trad.Total(), base.Total())
	}
	if buf.Total() >= trad.Total() {
		t.Fatalf("runahead buffer total %.1f should be below traditional %.1f",
			buf.Total(), trad.Total())
	}
}
