// Package energy is the McPAT-style event-based energy model behind Figures
// 17 and 18. Every pipeline structure charges a fixed energy per event, each
// structure leaks continuously, and DRAM charges per command plus a
// background rate.
//
// Absolute joules are synthetic — the paper used McPAT 1.3 and CACTI 6.5
// against a real 3.2 GHz design — but the *relative* structure the paper's
// conclusions rest on is preserved:
//
//   - the front end (fetch+decode+predictor) accounts for a large share of
//     core dynamic energy (the paper cites up to 40% [1]), so traditional
//     runahead's extra fetch/decode activity is expensive;
//   - the front end is event-driven (perfectly clock-gated when idle, as
//     McPAT models for all systems), so the runahead buffer's gated mode
//     spends nothing there;
//   - leakage and DRAM background scale with runtime, so any speedup saves
//     static energy;
//   - DRAM dynamic energy scales with traffic, so prefetcher overshoot costs.
//
// All per-event values are in picojoules; totals are reported in microjoules.
package energy

import "runaheadsim/internal/core"

// Params holds the per-event energies (pJ) and leakage rates (pJ/cycle).
type Params struct {
	// Front end, per uop.
	Fetch  float64 // I-cache read + predictor lookup + fetch pipe
	Decode float64

	// Back end, per event.
	Rename      float64 // RAT read/write + free-list
	RSDispatch  float64 // reservation-station write + wakeup + select share
	PRFRead     float64
	PRFWrite    float64
	ROBWrite    float64 // dispatch
	ROBRead     float64 // commit / chain readout
	ALU         float64
	Mul         float64
	Div         float64
	FP          float64
	AGU         float64
	BranchUnit  float64
	L1Access    float64
	LLCAccess   float64
	StoreBufOp  float64
	CheckptReg  float64 // per register read/written at runahead entry
	RACacheOp   float64
	ChainCache  float64
	PCCAM       float64 // program-order PC CAM over the ROB
	DestCAM     float64 // destination-register CAM search
	SQCAM       float64 // store-queue address CAM
	BufferRead  float64 // runahead buffer read per injected uop
	CoreLeakage float64 // pJ per cycle, whole core

	// DRAM.
	DRAMActivate   float64
	DRAMReadWrite  float64
	DRAMBackground float64 // pJ per cycle (all channels)
}

// DefaultParams returns the calibrated parameter set. Fetch+decode ≈ 27 pJ
// of the ≈ 68 pJ a typical 4-wide-issue cycle spends on uop processing —
// the ~40% front-end share the paper cites.
func DefaultParams() Params {
	return Params{
		Fetch:  15,
		Decode: 12,

		Rename:     5,
		RSDispatch: 7,
		PRFRead:    2,
		PRFWrite:   3,
		ROBWrite:   4,
		ROBRead:    3,
		ALU:        4,
		Mul:        10,
		Div:        24,
		FP:         12,
		AGU:        5,
		BranchUnit: 3,
		L1Access:   20,
		LLCAccess:  100,
		StoreBufOp: 4,
		CheckptReg: 3,
		RACacheOp:  2,
		ChainCache: 3,
		PCCAM:      40, // 192-entry program-order CAM
		DestCAM:    40,
		SQCAM:      15,
		BufferRead: 2,

		CoreLeakage: 55,

		DRAMActivate:   220,
		DRAMReadWrite:  150,
		DRAMBackground: 45,
	}
}

// Activity is the event summary of one run, extracted from the core and its
// memory system with Measure.
type Activity struct {
	Stats *core.Stats

	L1DAccesses uint64
	L1IAccesses uint64
	LLCAccesses uint64

	DRAMReads     uint64
	DRAMWrites    uint64
	DRAMActivates uint64
}

// Measure snapshots the activity of a core after a run.
func Measure(c *core.Core) Activity {
	h := c.Hierarchy()
	return Activity{
		Stats:         c.Stats(),
		L1DAccesses:   h.L1D().Hits + h.L1D().Misses,
		L1IAccesses:   h.L1I().Hits + h.L1I().Misses,
		LLCAccesses:   h.LLC().Hits + h.LLC().Misses,
		DRAMReads:     h.DRAM().Reads,
		DRAMWrites:    h.DRAM().Writes,
		DRAMActivates: h.DRAM().Activates(),
	}
}

// Breakdown reports the energy of one run in microjoules.
type Breakdown struct {
	FrontEnd    float64 // fetch + decode dynamic
	Backend     float64 // rename/issue/execute/commit dynamic
	Caches      float64
	RunaheadHW  float64 // checkpointing, chain generation, runahead buffer, runahead cache
	CoreLeakage float64
	DRAMDynamic float64
	DRAMStatic  float64
}

// Total returns the sum of all components (uJ).
func (b Breakdown) Total() float64 {
	return b.FrontEnd + b.Backend + b.Caches + b.RunaheadHW + b.CoreLeakage + b.DRAMDynamic + b.DRAMStatic
}

// Compute evaluates the model over one run's activity.
func Compute(p Params, a Activity) Breakdown {
	st := a.Stats
	var b Breakdown
	pj := func(n uint64, e float64) float64 { return float64(n) * e }

	b.FrontEnd = pj(st.Fetched, p.Fetch) + pj(st.Decoded, p.Decode)

	b.Backend = pj(st.Renamed, p.Rename) +
		pj(st.Renamed, p.ROBWrite) +
		pj(st.Issued, p.RSDispatch) +
		pj(st.PRFReads, p.PRFRead) +
		pj(st.PRFWrites, p.PRFWrite) +
		pj(st.Committed, p.ROBRead) +
		pj(st.ExecALU, p.ALU) +
		pj(st.ExecMul, p.Mul) +
		pj(st.ExecDiv, p.Div) +
		pj(st.ExecFP, p.FP) +
		pj(st.ExecMem, p.AGU) +
		pj(st.ExecBranch, p.BranchUnit)

	b.Caches = pj(a.L1DAccesses, p.L1Access) +
		pj(a.L1IAccesses, p.L1Access) +
		pj(a.LLCAccesses, p.LLCAccess)

	b.RunaheadHW = pj(st.CheckpointRegReads, p.CheckptReg) +
		pj(st.CheckpointRegWrites, p.CheckptReg) +
		pj(st.PCCAMSearches, p.PCCAM) +
		pj(st.DestCAMSearches, p.DestCAM) +
		pj(st.SQCAMSearches, p.SQCAM) +
		pj(st.ROBChainReads, p.ROBRead) +
		pj(st.BufferUopsIssued, p.BufferRead) +
		pj(st.ChainCacheHits+st.ChainCacheMisses, p.ChainCache)

	b.CoreLeakage = float64(st.Cycles) * p.CoreLeakage

	b.DRAMDynamic = pj(a.DRAMReads+a.DRAMWrites, p.DRAMReadWrite) +
		pj(a.DRAMActivates, p.DRAMActivate)
	b.DRAMStatic = float64(st.Cycles) * p.DRAMBackground

	// pJ -> uJ.
	const scale = 1e-6
	b.FrontEnd *= scale
	b.Backend *= scale
	b.Caches *= scale
	b.RunaheadHW *= scale
	b.CoreLeakage *= scale
	b.DRAMDynamic *= scale
	b.DRAMStatic *= scale
	return b
}

// Components returns the breakdown as ordered (name, value-uJ) pairs for
// rendering.
func (b Breakdown) Components() []struct {
	Name string
	UJ   float64
} {
	return []struct {
		Name string
		UJ   float64
	}{
		{"front end (fetch+decode)", b.FrontEnd},
		{"back end (rename..commit)", b.Backend},
		{"caches", b.Caches},
		{"runahead hardware", b.RunaheadHW},
		{"core leakage", b.CoreLeakage},
		{"DRAM dynamic", b.DRAMDynamic},
		{"DRAM background", b.DRAMStatic},
	}
}
