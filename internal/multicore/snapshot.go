package multicore

import (
	"fmt"

	"runaheadsim/internal/core"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/snapshot"
)

// ClusterKind is the container kind of a whole-cluster snapshot: one
// core-only section per core (each self-verifying against its configuration
// fingerprint and program digest) followed by a single shared-hierarchy
// section.
const ClusterKind = "mcluster"

// Snapshot drains the cluster and serializes it into a self-verifying
// container. A restored cluster continues bit-for-bit identically.
func (cl *Cluster) Snapshot() ([]byte, error) {
	if err := cl.Drain(); err != nil {
		return nil, err
	}
	w := &snapshot.Writer{}
	w.Mark("mcluster")
	w.Int(len(cl.cores))
	w.I64(cl.now)
	w.I64(cl.statsZero)
	for _, f := range cl.finish {
		w.I64(f)
	}
	for _, c := range cl.cores {
		if err := c.SnapshotCoreTo(w); err != nil {
			return nil, err
		}
	}
	if err := cl.h.SnapshotTo(w); err != nil {
		return nil, err
	}
	return snapshot.Encode(ClusterKind, w.Bytes()), nil
}

// RestoreCluster decodes a cluster snapshot into a fresh cluster built from
// cfg and progs, which must match the snapshot's topology (core count,
// per-core configuration fingerprint, program text digests).
func RestoreCluster(data []byte, cfg core.Config, progs []*prog.Program) (*Cluster, error) {
	payload, err := snapshot.Decode(data, ClusterKind)
	if err != nil {
		return nil, err
	}
	cl := New(cfg, progs)
	r := snapshot.NewReader(payload)
	r.Expect("mcluster")
	if n := r.Int(); r.Err() == nil && n != len(cl.cores) {
		r.Failf("multicore: cluster has %d cores, snapshot has %d", len(cl.cores), n)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	cl.now = r.I64()
	cl.statsZero = r.I64()
	for i := range cl.finish {
		cl.finish[i] = r.I64()
	}
	for _, c := range cl.cores {
		if err := c.RestoreCoreFrom(r); err != nil {
			return nil, err
		}
	}
	if err := cl.h.RestoreFrom(r); err != nil {
		return nil, err
	}
	if rest := r.Rest(); len(rest) != 0 {
		return nil, fmt.Errorf("multicore: %d trailing bytes after cluster snapshot", len(rest))
	}
	return cl, nil
}
