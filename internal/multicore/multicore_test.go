package multicore

import (
	"bytes"
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/snapshot"
	"runaheadsim/internal/workload"
)

// testConfig is the default machine in the given runahead mode with a
// deadlock watchdog, so a wedged cluster dies loudly instead of hanging the
// suite.
func testConfig(mode core.Mode) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.WatchdogCycles = 2_000_000
	return cfg
}

// stateBytes serializes a core's core-only section plus the hierarchy it is
// attached to — the same calls on the single-core machine and on a cluster
// member, so byte equality compares total machine state independent of the
// outer container format.
func stateBytes(t *testing.T, c *core.Core) []byte {
	t.Helper()
	w := &snapshot.Writer{}
	if err := c.SnapshotCoreTo(w); err != nil {
		t.Fatalf("core snapshot: %v", err)
	}
	if err := c.Hierarchy().SnapshotTo(w); err != nil {
		t.Fatalf("hierarchy snapshot: %v", err)
	}
	return w.Bytes()
}

// TestSingleCoreEquivalence is the multicore-equivalence gate: a 1-core
// cluster must be bit-identical — final cycle, statistics, and snapshot
// bytes — to the existing single-core machine, in all five runahead modes
// and under both clocks. This is what licenses every single-core result to
// stand unchanged after the N-requestor refactor.
func TestSingleCoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential simulation is slow")
	}
	const quota = 20_000
	modes := []core.Mode{core.ModeNone, core.ModeTraditional, core.ModeBuffer, core.ModeBufferCC, core.ModeHybrid}
	for i, mode := range modes {
		for _, clock := range []core.ClockMode{core.ClockWarp, core.ClockTick} {
			cfg := testConfig(mode)
			cfg.ClockMode = clock
			// Alternate between a DRAM-bound and a compute-lean kernel so both
			// regimes (warp-heavy and per-cycle-heavy) are covered.
			bench := "libquantum"
			if i%2 == 1 {
				bench = "zeusmp"
			}
			tag := mode.String() + "/" + clock.String() + "/" + bench

			sc := core.New(cfg, workload.MustLoad(bench))
			sc.Run(quota)
			if err := sc.Drain(); err != nil {
				t.Fatalf("%s: single-core drain: %v", tag, err)
			}

			cl := New(cfg, []*prog.Program{workload.MustLoad(bench)})
			cl.Run(quota)
			if err := cl.Drain(); err != nil {
				t.Fatalf("%s: cluster drain: %v", tag, err)
			}
			mc := cl.Cores()[0]

			if sc.Now() != mc.Now() || cl.Now() != sc.Now() {
				t.Fatalf("%s: single-core finished at cycle %d, 1-core cluster at %d (cluster clock %d)",
					tag, sc.Now(), mc.Now(), cl.Now())
			}
			if sc.Stats().Committed != mc.Stats().Committed || sc.Stats().Cycles != mc.Stats().Cycles {
				t.Fatalf("%s: stats diverge: single committed=%d cycles=%d, cluster committed=%d cycles=%d",
					tag, sc.Stats().Committed, sc.Stats().Cycles, mc.Stats().Committed, mc.Stats().Cycles)
			}
			if sc.ArchRegs() != mc.ArchRegs() {
				t.Fatalf("%s: architectural register state diverged", tag)
			}
			sb, mb := stateBytes(t, sc), stateBytes(t, mc)
			if !bytes.Equal(sb, mb) {
				t.Fatalf("%s: machine state bytes differ (%d vs %d bytes)", tag, len(sb), len(mb))
			}
		}
	}
}

// TestClusterWarpTickLockstep extends the clock-warp acceptance invariant to
// the shared clock: a 2-core mix stepped under the warped clock must finish
// at the same cycle with the same statistics and snapshot bytes as the
// per-cycle reference, and the warp must actually fire on the DRAM-bound mix
// (otherwise the equivalence is vacuous).
func TestClusterWarpTickLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential simulation is slow")
	}
	const quota = 10_000
	mix := []string{"libquantum", "mcf"}
	run := func(clock core.ClockMode) (*Cluster, []byte) {
		cfg := testConfig(core.ModeBuffer)
		cfg.ClockMode = clock
		progs := make([]*prog.Program, len(mix))
		for i, b := range mix {
			progs[i] = workload.MustLoad(b)
		}
		cl := New(cfg, progs)
		cl.Run(quota)
		snap, err := cl.Snapshot()
		if err != nil {
			t.Fatalf("%v: %v", clock, err)
		}
		return cl, snap
	}
	wc, wSnap := run(core.ClockWarp)
	tc, tSnap := run(core.ClockTick)
	if wc.Now() != tc.Now() {
		t.Fatalf("warp clock finished at cycle %d, tick at %d", wc.Now(), tc.Now())
	}
	for i := range mix {
		if wf, tf := wc.FinishCycle(i), tc.FinishCycle(i); wf != tf {
			t.Fatalf("core %d finish cycle diverges: warp %d, tick %d", i, wf, tf)
		}
	}
	if !bytes.Equal(wSnap, tSnap) {
		t.Fatalf("cluster snapshots differ between clock modes (%d vs %d bytes)", len(wSnap), len(tSnap))
	}
	if warps, skipped := wc.WarpStats(); warps == 0 || skipped == 0 {
		t.Fatalf("DRAM-bound 2-core mix never warped (warps=%d skipped=%d)", warps, skipped)
	}
}

// TestDeterministicInterleaving pins the shared-LLC grant order: two
// identical runs of the same 2-core mix must agree on every statistic and
// every snapshot byte. The arbiter is pure FIFO + rotating pointer — no map
// iteration, no host scheduling — so any divergence is a determinism bug.
func TestDeterministicInterleaving(t *testing.T) {
	const quota = 5_000
	run := func() []byte {
		progs := []*prog.Program{workload.MustLoad("milc"), workload.MustLoad("omnetpp")}
		cl := New(testConfig(core.ModeHybrid), progs)
		cl.Run(quota)
		snap, err := cl.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical 2-core runs produced different snapshots (%d vs %d bytes)", len(a), len(b))
	}
}

// TestNoStarvation is the arbitration fairness regression: one core running
// a runahead-buffer prefetch stream must not indefinitely block the other
// core's demand misses at the shared LLC. The rotating grant pointer
// advances past every granted requestor, so each queued access waits at most
// one grant round; the test bounds the observed average arbitration wait and
// requires both cores to make continuous forward progress.
func TestNoStarvation(t *testing.T) {
	const quota = 8_000
	progs := []*prog.Program{workload.MustLoad("libquantum"), workload.MustLoad("mcf")}
	cl := New(testConfig(core.ModeBuffer), progs)
	cl.Run(quota)
	if err := cl.CheckInvariants(true); err != nil {
		t.Fatalf("invariants after mix run: %v", err)
	}
	h := cl.Hierarchy()
	for i := range progs {
		rs := h.Req(i)
		if rs.LLCArbGrants == 0 {
			t.Fatalf("core %d never got an LLC grant (loads=%d misses=%d)", i, rs.Loads, rs.LLCDemandMisses)
		}
		// With 2 requestors and 2 LLC ports the arbiter is effectively
		// contention-free on average; allow generous slack for bursts. A
		// starved requestor would show waits orders of magnitude higher.
		avgWait := float64(rs.LLCArbWaitCycles) / float64(rs.LLCArbGrants)
		if avgWait > 50 {
			t.Fatalf("core %d averages %.1f cycles of LLC arbitration wait — starvation", i, avgWait)
		}
		if cl.FinishCycle(i) == 0 {
			t.Fatalf("core %d never reached its quota", i)
		}
	}
}

// TestClusterSnapshotRoundTrip checks the mcluster container: snapshot a
// 2-core mix mid-run, restore into a fresh cluster, and require (a) an
// immediate re-snapshot to be byte-identical (round-trip digest) and (b) the
// restored cluster to continue to quota bit-identically to the original.
func TestClusterSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig(core.ModeBufferCC)
	mix := []string{"soplex", "sphinx3"}
	load := func() []*prog.Program {
		progs := make([]*prog.Program, len(mix))
		for i, b := range mix {
			progs[i] = workload.MustLoad(b)
		}
		return progs
	}

	cl := New(cfg, load())
	cl.Run(3_000)
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	digest := snapshot.HashBytes(snap)

	rc, err := RestoreCluster(snap, cfg, load())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	resnap, err := rc.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if snapshot.HashBytes(resnap) != digest {
		t.Fatalf("round-trip digest mismatch: %#x vs %#x (%d vs %d bytes)",
			snapshot.HashBytes(resnap), digest, len(resnap), len(snap))
	}

	// Continue both to a larger quota; they must stay in lockstep.
	cl.Run(6_000)
	rc.Run(6_000)
	a, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("original and restored clusters diverged after continuation")
	}
}

// TestRestoreTopologyMismatch pins the container's self-verification: a
// 2-core snapshot must refuse to restore into a 1-core cluster.
func TestRestoreTopologyMismatch(t *testing.T) {
	cfg := testConfig(core.ModeNone)
	cl := New(cfg, []*prog.Program{workload.MustLoad("milc"), workload.MustLoad("soplex")})
	cl.Run(1_000)
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCluster(snap, cfg, []*prog.Program{workload.MustLoad("milc")}); err == nil {
		t.Fatal("2-core snapshot restored into a 1-core cluster without error")
	}
}
