// Package multicore steps N independent cores against one shared memory
// system — the multi-programmed configuration the paper's bandwidth
// discussion (§6) points at: each core runs its own program, all cores
// contend for one inclusive LLC and one FR-FCFS DRAM controller, and a
// runahead core's prefetch stream competes with its neighbors' demand
// misses.
//
// The cluster owns the global clock. Each step advances the shared
// hierarchy once, then every core's pipeline in core-index order — for one
// core this is exactly the single-core Cycle sequence, which is what the
// multicore-equivalence gate pins down: a 1-core cluster is bit-identical
// (cycles, statistics, snapshot bytes) to the single-core machine in every
// runahead mode and both clock modes.
//
// Clock warping generalizes the single-core event-horizon machinery: the
// cluster warps only when every core is individually quiescent, to the
// minimum of all cores' wake sources and the shared hierarchy's event
// horizon, clamped by every core's accounting boundaries.
package multicore

import (
	"fmt"

	"runaheadsim/internal/core"
	"runaheadsim/internal/memsys"
	"runaheadsim/internal/prog"
)

// drainBound caps how many cycles Drain will run waiting for quiescence,
// mirroring the single-core bound: hitting it means a simulator bug, not a
// workload property.
const drainBound = 10_000_000

// Cluster is N cores sharing one memory hierarchy under one clock.
type Cluster struct {
	cfg   core.Config
	h     *memsys.Hierarchy
	cores []*core.Core
	now   int64

	// finish[i] is the cycle core i first reached the Run quota (relative to
	// the same origin as now), or 0 while it has not. Multi-programmed
	// metrics derive per-core IPC from it: a finished core keeps running —
	// and keeps contending for the LLC and DRAM — until every core reaches
	// quota, but its own measurement stops at the crossing.
	finish []int64

	// statsZero mirrors the cores' measurement origin (the cycle of the last
	// ResetStats), so finish times and Cycles stay run-relative.
	statsZero int64

	// Cluster-level warp accounting (host-side speed reporting, never
	// snapshotted — mirrors core.WarpStats).
	warps        int64
	warpedCycles int64
}

// New builds a cluster of len(progs) cores, core i running progs[i], all
// sharing one hierarchy built from cfg.Mem. The same core configuration
// (mode, widths, clock mode) applies to every core; programs carry the
// workload differences.
func New(cfg core.Config, progs []*prog.Program) *Cluster {
	if len(progs) == 0 {
		panic("multicore: a cluster needs at least one program")
	}
	// Same reference-kernel choice as the single-core constructor: the
	// per-cycle clock keeps the exhaustive DRAM grant scan so equivalence
	// compares two independently computed schedules.
	cfg.Mem.DRAM.Reference = cfg.ClockMode == core.ClockTick
	cl := &Cluster{
		cfg:    cfg,
		h:      memsys.NewShared(cfg.Mem, len(progs)),
		cores:  make([]*core.Core, len(progs)),
		finish: make([]int64, len(progs)),
	}
	for i, p := range progs {
		cl.cores[i] = core.NewShared(cfg, p, cl.h, i)
	}
	return cl
}

// Cores returns the member cores, indexed by requestor ID.
func (cl *Cluster) Cores() []*core.Core { return cl.cores }

// Hierarchy returns the shared memory system.
func (cl *Cluster) Hierarchy() *memsys.Hierarchy { return cl.h }

// Now returns the current global cycle.
func (cl *Cluster) Now() int64 { return cl.now }

// FinishCycle returns the run-relative cycle at which core i reached the
// last Run's quota, or 0 if it has not.
func (cl *Cluster) FinishCycle(i int) int64 { return cl.finish[i] }

// WarpStats reports the cluster clock warp's work (warps fired, cycles
// skipped). Like core.WarpStats it is host-side speed accounting, never part
// of simulated results.
func (cl *Cluster) WarpStats() (warps, skipped int64) { return cl.warps, cl.warpedCycles }

// Step advances the whole cluster by one clock: the shared hierarchy ticks
// first, then every core's pipeline in index order — the same sequence as
// the single-core Cycle, fanned out.
func (cl *Cluster) Step() {
	cl.now++
	// Clocks first: hierarchy events fired by Tick invoke core callbacks
	// that stamp the owning core's current cycle.
	for _, c := range cl.cores {
		c.SyncClock(cl.now)
	}
	cl.h.Tick(cl.now)
	for _, c := range cl.cores {
		c.StepExt(cl.now)
	}
	if cl.cfg.ClockMode == core.ClockWarp {
		cl.maybeWarp()
	}
}

// maybeWarp fast-forwards the global clock across a stretch in which every
// core is provably idle. The target is the minimum over all cores' wake
// sources plus the shared hierarchy's event horizon, then clamped by every
// core's accounting boundaries; any single core with work this cycle vetoes
// the warp for everyone (the shared clock cannot split).
func (cl *Cluster) maybeWarp() {
	t := int64(memsys.Never)
	for _, c := range cl.cores {
		ct, ok := c.WarpSources()
		if !ok {
			return
		}
		if ct < t {
			t = ct
		}
	}
	if ht := cl.h.NextEvent(); ht < t {
		t = ht
	}
	if t == memsys.Never {
		return // dead or drained: tick per cycle, as the reference would
	}
	for _, c := range cl.cores {
		t = c.WarpClamp(t)
	}
	if t <= cl.now+1 {
		return
	}
	skip := t - 1 - cl.now
	for _, c := range cl.cores {
		c.ApplyWarp(t)
	}
	cl.now = t - 1
	cl.warps++
	cl.warpedCycles += skip
}

// Run steps the cluster until every core has committed at least quota
// correct-path uops, recording each core's finish cycle at its first
// crossing. Cores that finish early keep executing (their memory traffic is
// the contention under study) but their measurement stops at the crossing.
// It finalizes and returns every core's statistics.
func (cl *Cluster) Run(quota uint64) []*core.Stats { return cl.RunProgress(quota, 0, nil) }

// RunProgress is Run with a live progress hook: report(i, committed) fires
// for core i roughly every `every` committed uops (and once at its quota
// crossing). Chunking an outer Run by calling it repeatedly with growing
// quotas would mis-stamp finish cycles — the first crossing of the final
// quota is the measurement — so progress reporting lives inside the loop.
// The hook observes the run; simulated results are bit-identical to Run.
func (cl *Cluster) RunProgress(quota, every uint64, report func(i int, committed uint64)) []*core.Stats {
	next := make([]uint64, len(cl.cores))
	for i := range next {
		next[i] = cl.cores[i].Stats().Committed + every
	}
	for i := range cl.finish {
		if cl.cores[i].Stats().Committed >= quota && cl.finish[i] == 0 {
			cl.finish[i] = cl.now - cl.statsZero
		}
	}
	for !cl.allFinished(quota) {
		cl.Step()
		for i, c := range cl.cores {
			committed := c.Stats().Committed
			if cl.finish[i] == 0 && committed >= quota {
				cl.finish[i] = cl.now - cl.statsZero
				if report != nil {
					report(i, committed)
				}
			}
			if report != nil && every > 0 && committed >= next[i] {
				next[i] = committed + every
				report(i, committed)
			}
			c.WatchdogCheck()
		}
	}
	out := make([]*core.Stats, len(cl.cores))
	for i, c := range cl.cores {
		out[i] = c.FinalizeRun()
	}
	return out
}

func (cl *Cluster) allFinished(quota uint64) bool {
	for _, c := range cl.cores {
		if c.Stats().Committed < quota {
			return false
		}
	}
	return true
}

// ResetStats zeroes every core's and the shared hierarchy's statistics while
// preserving microarchitectural state, and restarts the finish-cycle
// measurement. Harnesses call it between warmup and measurement.
func (cl *Cluster) ResetStats() {
	for _, c := range cl.cores {
		c.ResetStats() // each call also resets the (shared) hierarchy: idempotent
	}
	for i := range cl.finish {
		cl.finish[i] = 0
	}
	cl.statsZero = cl.now
}

// Quiesced reports whether every core is core-locally quiescent and the
// shared hierarchy is drained.
func (cl *Cluster) Quiesced() bool {
	for _, c := range cl.cores {
		if !c.QuiescedCore() {
			return false
		}
	}
	return cl.h.Drained()
}

// Drain runs the cluster to quiescence with every core's fetch starved, the
// precondition for snapshotting (in-flight work is closures, which have no
// wire format).
func (cl *Cluster) Drain() error {
	for _, c := range cl.cores {
		c.SetDraining(true)
	}
	defer func() {
		for _, c := range cl.cores {
			c.SetDraining(false)
		}
	}()
	start := cl.now
	for !cl.Quiesced() {
		cl.Step()
		if cl.now-start > drainBound {
			return fmt.Errorf("multicore: drain did not quiesce within %d cycles", drainBound)
		}
	}
	return nil
}

// CheckInvariants verifies the shared hierarchy's structural invariants
// (per-requestor MSHR conservation, arbiter bookkeeping, and — with deep —
// cache integrity plus all-requestor inclusion).
func (cl *Cluster) CheckInvariants(deep bool) error {
	return cl.h.CheckInvariants(deep)
}
