package memsys

import (
	"testing"
)

// drive ticks the hierarchy from *now until pred() or the cycle budget runs
// out, returning the final cycle.
func drive(t *testing.T, h *Hierarchy, now *int64, budget int64, pred func() bool) {
	t.Helper()
	for lim := *now + budget; *now < lim; *now++ {
		h.Tick(*now)
		if pred() {
			return
		}
	}
	t.Fatalf("condition not reached within %d cycles", budget)
}

func TestLoadL1Hit(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	var first, second *Outcome
	h.Load(now, 0x1000, false, nil, func(o Outcome) { first = &o })
	drive(t, h, &now, 10000, func() bool { return first != nil })
	if first.Level != LevelMem {
		t.Fatalf("cold load level = %v, want Mem", first.Level)
	}
	start := now
	h.Load(now, 0x1000, false, nil, func(o Outcome) { second = &o })
	drive(t, h, &now, 100, func() bool { return second != nil })
	if second.Level != LevelL1 {
		t.Fatalf("warm load level = %v, want L1", second.Level)
	}
	if d := second.When - start; d != int64(h.cfg.L1Latency) {
		t.Fatalf("L1 hit latency = %d, want %d", d, h.cfg.L1Latency)
	}
}

func TestLoadLLCHit(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	var warm *Outcome
	done := false
	h.Load(now, 0x2000, false, nil, func(Outcome) { done = true })
	drive(t, h, &now, 10000, func() bool { return done })
	// Evict from L1 by filling its set: L1D is 32KB/8-way/64B = 64 sets, so
	// lines 8KB apart collide. 8 more fills push 0x2000 out.
	for i := 1; i <= 8; i++ {
		fillDone := false
		h.Load(now, 0x2000+uint64(i*8192), false, nil, func(Outcome) { fillDone = true })
		drive(t, h, &now, 10000, func() bool { return fillDone })
	}
	start := now
	h.Load(now, 0x2000, false, nil, func(o Outcome) { warm = &o })
	drive(t, h, &now, 1000, func() bool { return warm != nil })
	if warm.Level != LevelLLC {
		t.Fatalf("level = %v, want LLC", warm.Level)
	}
	lat := warm.When - start
	want := int64(h.cfg.L1Latency + h.cfg.LLCLatency)
	if lat < want || lat > want+4 {
		t.Fatalf("LLC hit latency = %d, want about %d", lat, want)
	}
}

func TestColdMissLatencyIsDRAMBound(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	var o *Outcome
	start := now
	h.Load(now, 0x3000, false, nil, func(x Outcome) { o = &x })
	drive(t, h, &now, 10000, func() bool { return o != nil })
	lat := o.When - start
	// L1 + LLC tag checks plus a cold DRAM access (~104) and change.
	if lat < 100 {
		t.Fatalf("cold miss latency %d implausibly low", lat)
	}
	if h.DRAMReadsDemand != 1 {
		t.Fatalf("demand DRAM reads = %d, want 1", h.DRAMReadsDemand)
	}
}

func TestMSHRMergeNoDuplicateDRAM(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	count := 0
	h.Load(now, 0x4000, false, nil, func(Outcome) { count++ })
	h.Load(now, 0x4008, false, nil, func(Outcome) { count++ }) // same line
	drive(t, h, &now, 10000, func() bool { return count == 2 })
	if h.DRAMReadsDemand != 1 {
		t.Fatalf("merged accesses issued %d DRAM reads, want 1", h.DRAMReadsDemand)
	}
}

func TestNoWaitLoadNotifiesEarlyAndStillFills(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	var o *Outcome
	start := now
	h.Load(now, 0x5000, true, nil, func(x Outcome) { o = &x })
	drive(t, h, &now, 10000, func() bool { return o != nil })
	if o.Level != LevelMem {
		t.Fatalf("level = %v, want Mem", o.Level)
	}
	early := o.When - start
	if early > int64(h.cfg.L1Latency+h.cfg.LLCLatency+4) {
		t.Fatalf("no-wait notification at +%d, should be at tag-check time", early)
	}
	// The background fill must complete: wait, then the line hits in L1.
	drive(t, h, &now, 10000, func() bool { return h.Drained() })
	var warm *Outcome
	h.Load(now, 0x5000, false, nil, func(x Outcome) { warm = &x })
	drive(t, h, &now, 100, func() bool { return warm != nil })
	if warm.Level != LevelL1 {
		t.Fatalf("after background fill, level = %v, want L1", warm.Level)
	}
}

func TestNoWaitLoadLLCHitDeliversData(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	done := false
	h.Load(now, 0x6000, false, nil, func(Outcome) { done = true })
	drive(t, h, &now, 10000, func() bool { return done })
	for i := 1; i <= 8; i++ { // push out of L1 as above
		fd := false
		h.Load(now, 0x6000+uint64(i*8192), false, nil, func(Outcome) { fd = true })
		drive(t, h, &now, 10000, func() bool { return fd })
	}
	var o *Outcome
	h.Load(now, 0x6000, true, nil, func(x Outcome) { o = &x })
	drive(t, h, &now, 1000, func() bool { return o != nil })
	if o.Level != LevelLLC {
		t.Fatalf("no-wait LLC hit level = %v, want LLC", o.Level)
	}
}

func TestStoreWriteAllocateAndWriteback(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	done := false
	h.Store(now, 0x7000, func(Outcome) { done = true })
	drive(t, h, &now, 10000, func() bool { return done })
	// Evict the dirty line from L1: conflicting fills force a writeback to
	// the LLC (MarkDirty there, no DRAM write yet).
	for i := 1; i <= 8; i++ {
		fd := false
		h.Load(now, 0x7000+uint64(i*8192), false, nil, func(Outcome) { fd = true })
		drive(t, h, &now, 10000, func() bool { return fd })
	}
	if h.DRAMWrites != 0 {
		t.Fatalf("dirty L1 eviction should write back to LLC, not DRAM (writes=%d)", h.DRAMWrites)
	}
	if h.Stores != 1 {
		t.Fatalf("stores = %d", h.Stores)
	}
}

func TestFetchPath(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	var o *Outcome
	h.Fetch(now, 0x400000, func(x Outcome) { o = &x })
	drive(t, h, &now, 10000, func() bool { return o != nil })
	if o.Level != LevelMem {
		t.Fatalf("cold fetch level = %v", o.Level)
	}
	var warm *Outcome
	h.Fetch(now, 0x400008, func(x Outcome) { warm = &x }) // same line
	drive(t, h, &now, 100, func() bool { return warm != nil })
	if warm.Level != LevelL1 {
		t.Fatalf("warm fetch level = %v, want L1", warm.Level)
	}
}

func TestInclusionInvalidatesL1(t *testing.T) {
	cfg := DefaultConfig()
	// Shrink the LLC to 4KB so it is smaller than L1D reach for the test:
	// filling one LLC set evicts lines that must vanish from L1 too.
	cfg.LLC.SizeBytes = 4096
	cfg.LLC.Ways = 2
	h := New(cfg)
	var now int64
	load := func(addr uint64) {
		done := false
		h.Load(now, addr, false, nil, func(Outcome) { done = true })
		drive(t, h, &now, 20000, func() bool { return done })
	}
	// LLC: 4KB/2way/64B = 32 sets; same-set stride = 2KB.
	load(0x0000)
	load(0x0800)
	load(0x1000) // evicts 0x0000 from LLC, and by inclusion from L1D
	if h.L1D().Probe(0x0000) {
		t.Fatal("inclusion violated: line evicted from LLC still in L1D")
	}
	// Re-access must go to DRAM again.
	before := h.DRAMReadsDemand
	load(0x0000)
	if h.DRAMReadsDemand != before+1 {
		t.Fatal("re-access after inclusion eviction should miss to DRAM")
	}
}

func TestPrefetcherGeneratesRequestsAndHits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnablePrefetch = true
	cfg.Prefetch.FDP = false
	h := New(cfg)
	var now int64
	// Two loads 9 lines apart in the same direction do not form a stream;
	// walk sequentially instead. Use addresses far from other tests' habits.
	base := uint64(1 << 24)
	for i := uint64(0); i < 32; i++ {
		done := false
		h.Load(now, base+i*64, false, nil, func(Outcome) { done = true })
		drive(t, h, &now, 20000, func() bool { return done })
	}
	if h.DRAMReadsPrefetch == 0 {
		t.Fatal("stream prefetcher never issued a request")
	}
	// With the stream established and fills done, later lines hit in LLC.
	drive(t, h, &now, 50000, func() bool { return h.Drained() })
	var o *Outcome
	h.Load(now, base+33*64, false, nil, func(x Outcome) { o = &x })
	drive(t, h, &now, 1000, func() bool { return o != nil })
	if o.Level == LevelMem {
		t.Fatal("prefetched line should not miss to DRAM")
	}
	if h.Prefetcher().Counters().Issued == 0 {
		t.Fatal("prefetcher stats empty")
	}
}

func TestL1DMSHRBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1DMSHRs = 2
	h := New(cfg)
	var now int64
	ok1 := h.Load(now, 0x10000, false, nil, func(Outcome) {})
	ok2 := h.Load(now, 0x20000, false, nil, func(Outcome) {})
	ok3 := h.Load(now, 0x30000, false, nil, func(Outcome) {})
	if !ok1 || !ok2 {
		t.Fatal("loads within MSHR capacity must be accepted")
	}
	if ok3 {
		t.Fatal("load beyond MSHR capacity must be rejected")
	}
	// Same-line access merges and is accepted even when full.
	if !h.Load(now, 0x10008, false, nil, func(Outcome) {}) {
		t.Fatal("mergeable load must be accepted despite full MSHRs")
	}
}

func TestManyOutstandingMissesOverlap(t *testing.T) {
	// MLP: 16 independent misses should complete in far less than 16x the
	// single-miss latency.
	single := New(DefaultConfig())
	var now int64
	done := false
	start := now
	single.Load(now, 1<<20, false, nil, func(Outcome) { done = true })
	drive(t, single, &now, 10000, func() bool { return done })
	oneLat := now - start

	h := New(DefaultConfig())
	var now2 int64
	count := 0
	for i := 0; i < 16; i++ {
		// Spread across banks/channels.
		if !h.Load(now2, uint64(1<<20)+uint64(i)*64*2, false, nil, func(Outcome) { count++ }) {
			t.Fatal("load rejected")
		}
	}
	drive(t, h, &now2, 100000, func() bool { return count == 16 })
	if now2 >= oneLat*8 {
		t.Fatalf("16 overlapped misses took %d cycles vs single %d — no MLP", now2, oneLat)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (int64, uint64) {
		h := New(DefaultConfig())
		var now int64
		count := 0
		for i := 0; i < 32; i++ {
			h.Load(now, uint64(i)*4096, false, nil, func(Outcome) { count++ })
		}
		for now = 0; count < 32; now++ {
			h.Tick(now)
		}
		return now, h.DRAMReadsDemand
	}
	c1, r1 := runOnce()
	c2, r2 := runOnce()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelLLC.String() != "LLC" || LevelMem.String() != "Mem" {
		t.Fatal("Level strings wrong")
	}
}

func TestResetStatsPreservesCacheContents(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	done := false
	h.Load(now, 0x8000, false, nil, func(Outcome) { done = true })
	drive(t, h, &now, 10000, func() bool { return done })
	h.ResetStats()
	if h.Loads != 0 || h.DRAMReadsDemand != 0 || h.L1D().Hits != 0 {
		t.Fatal("counters not zeroed")
	}
	// The line is still resident: the next access hits L1.
	var o *Outcome
	h.Load(now, 0x8000, false, nil, func(x Outcome) { o = &x })
	drive(t, h, &now, 100, func() bool { return o != nil })
	if o.Level != LevelL1 {
		t.Fatalf("post-reset access level = %v, want L1 (state lost)", o.Level)
	}
}

func TestOnMissFiresForDRAMBoundLoads(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	missAt := int64(-1)
	var o *Outcome
	h.Load(now, 0x9000, false, func(cy int64) { missAt = cy }, func(x Outcome) { o = &x })
	drive(t, h, &now, 10000, func() bool { return o != nil })
	if missAt < 0 {
		t.Fatal("onMiss never fired for a DRAM-bound load")
	}
	if missAt >= o.When {
		t.Fatalf("onMiss at %d should precede data at %d", missAt, o.When)
	}
	// A second load to an in-flight DRAM-bound line gets onMiss promptly too.
	h2 := New(DefaultConfig())
	var now2 int64
	var miss2 int64 = -1
	got := 0
	h2.Load(now2, 0xa000, false, nil, func(Outcome) { got++ })
	for now2 = 0; now2 < 40; now2++ {
		h2.Tick(now2)
	}
	h2.Load(now2, 0xa008, false, func(cy int64) { miss2 = cy }, func(Outcome) { got++ })
	drive(t, h2, &now2, 10000, func() bool { return got == 2 })
	if miss2 < 0 {
		t.Fatal("merged load never learned it was DRAM-bound")
	}
}

func TestOnMissNotCalledForHits(t *testing.T) {
	h := New(DefaultConfig())
	var now int64
	done := false
	h.Load(now, 0xb000, false, nil, func(Outcome) { done = true })
	drive(t, h, &now, 10000, func() bool { return done })
	fired := false
	done = false
	h.Load(now, 0xb000, false, func(int64) { fired = true }, func(Outcome) { done = true })
	drive(t, h, &now, 100, func() bool { return done })
	if fired {
		t.Fatal("onMiss fired for an L1 hit")
	}
}

// TestInclusionFoldsL1Dirtiness: when the LLC evicts a line whose L1 copy is
// dirty, the writeback to DRAM must still happen (the dirtiness folds into
// the victim).
func TestInclusionFoldsL1Dirtiness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLC.SizeBytes = 4096
	cfg.LLC.Ways = 2
	h := New(cfg)
	var now int64
	op := func(f func(cb func(Outcome)) bool) {
		done := false
		if !f(func(Outcome) { done = true }) {
			t.Fatal("access rejected")
		}
		drive(t, h, &now, 30000, func() bool { return done })
	}
	// Dirty the line in L1 only (write-allocate; LLC copy stays clean).
	op(func(cb func(Outcome)) bool { return h.Store(now, 0x0000, cb) })
	if h.DRAMWrites != 0 {
		t.Fatal("no writeback should have happened yet")
	}
	// Force the LLC set (stride 2KB) to evict line 0 while its dirty copy
	// still sits in L1.
	op(func(cb func(Outcome)) bool { return h.Load(now, 0x0800, false, nil, cb) })
	op(func(cb func(Outcome)) bool { return h.Load(now, 0x1000, false, nil, cb) })
	drive(t, h, &now, 30000, func() bool { return h.Drained() })
	if h.L1D().Probe(0x0000) {
		t.Fatal("inclusion violation")
	}
	if h.DRAMWrites == 0 {
		t.Fatal("dirty L1 data lost on inclusion eviction (no DRAM writeback)")
	}
}

func TestUnknownPrefetchKindPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnablePrefetch = true
	cfg.PrefetchKind = "oracle"
	defer func() {
		if recover() == nil {
			t.Fatal("unknown prefetch kind must panic")
		}
	}()
	New(cfg)
}

func TestDeltaPrefetchKindWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnablePrefetch = true
	cfg.PrefetchKind = "delta"
	h := New(cfg)
	var now int64
	// A constant 5-line stride the delta engine should cover.
	for i := uint64(0); i < 24; i++ {
		done := false
		h.Load(now, 1<<22+i*5*64, false, nil, func(Outcome) { done = true })
		drive(t, h, &now, 30000, func() bool { return done })
	}
	if h.DRAMReadsPrefetch == 0 {
		t.Fatal("delta engine never prefetched a constant stride")
	}
}
