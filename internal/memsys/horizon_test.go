package memsys

import (
	"fmt"
	"testing"

	"runaheadsim/internal/dram"
)

// TestNextEventIdle: a hierarchy with nothing in flight reports Never, and
// a single load lowers the horizon to its first hop.
func TestNextEventIdle(t *testing.T) {
	h := New(DefaultConfig())
	h.Tick(0)
	if ne := h.NextEvent(); ne != Never {
		t.Fatalf("idle hierarchy NextEvent = %d, want Never", ne)
	}
	h.Load(0, 0x1000, false, nil, func(Outcome) {})
	ne := h.NextEvent()
	if ne != int64(h.cfg.L1Latency) {
		t.Fatalf("NextEvent after a cold load = %d, want the L1 tag-check hop at %d", ne, h.cfg.L1Latency)
	}
}

// TestNextEventDrivenMatchesPerCycle is the hierarchy-level soundness
// property for the clock warp: ticking only at the cycles NextEvent names
// must complete every access at exactly the cycle and level the per-cycle
// reference produces, with identical hierarchy statistics.
func TestNextEventDrivenMatchesPerCycle(t *testing.T) {
	// Distinct lines (DRAM misses), plus re-touches that merge into MSHRs.
	addrs := []uint64{0x10000, 0x20040, 0x30080, 0x400c0, 0x10000, 0x51100, 0x62240}

	type result struct {
		when  int64
		level Level
	}
	run := func(eventDriven bool) ([]result, *Hierarchy, int64) {
		h := New(DefaultConfig())
		got := make([]result, len(addrs))
		pending := len(addrs)
		for i, a := range addrs {
			i := i
			if !h.Load(0, a, false, nil, func(o Outcome) {
				got[i] = result{o.When, o.Level}
				pending--
			}) {
				t.Fatal("load rejected in test setup")
			}
		}
		now := int64(0)
		for now < 100_000 && pending > 0 {
			if eventDriven {
				ne := h.NextEvent()
				if ne == Never {
					t.Fatalf("NextEvent = Never with %d loads outstanding", pending)
				}
				if ne <= now {
					t.Fatalf("NextEvent(%d) = %d did not advance", now, ne)
				}
				now = ne
			} else {
				now++
			}
			h.Tick(now)
			if err := h.CheckInvariants(true); err != nil {
				t.Fatalf("cycle %d: %v", now, err)
			}
		}
		if pending > 0 {
			t.Fatal("loads never completed")
		}
		return got, h, now
	}

	ref, refH, _ := run(false)
	evt, evtH, _ := run(true)
	for i := range ref {
		if ref[i] != evt[i] {
			t.Fatalf("load %d (%#x): event-driven completed %+v, per-cycle %+v", i, addrs[i], evt[i], ref[i])
		}
	}
	if refH.DRAMReadsDemand != evtH.DRAMReadsDemand || refH.LLCDemandMisses != evtH.LLCDemandMisses {
		t.Fatalf("stats diverged: dram reads %d/%d, llc misses %d/%d",
			evtH.DRAMReadsDemand, refH.DRAMReadsDemand, evtH.LLCDemandMisses, refH.LLCDemandMisses)
	}
	if !refH.Drained() || !evtH.Drained() {
		t.Fatal("hierarchies did not drain")
	}
}

// TestLLCRetryMSHRFull pins the llcRetry path when the LLC MSHR file stays
// full across many consecutive Ticks: demand misses beyond the file's
// capacity park on the retry list, NextEvent reports immediate work while
// the backlog exists, every access still completes exactly once, and the
// backlog does not strand entries (Drained afterwards).
func TestLLCRetryMSHRFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLCMSHRs = 2
	h := New(cfg)

	const n = 8
	done := 0
	for i := 0; i < n; i++ {
		// Distinct lines spread across sets: all L1 and LLC misses.
		addr := uint64(0x40000 + i*4096)
		if !h.Load(0, addr, false, nil, func(Outcome) { done++ }) {
			t.Fatal("load rejected in test setup")
		}
	}

	var now int64
	backlogTicks := 0
	maxBacklog := 0
	for now = 1; now < 100_000 && done < n; now++ {
		h.Tick(now)
		if len(h.llcRetry) > 0 {
			backlogTicks++
			if len(h.llcRetry) > maxBacklog {
				maxBacklog = len(h.llcRetry)
			}
			if ne := h.NextEvent(); ne != now+1 {
				t.Fatalf("cycle %d: NextEvent = %d with a retry backlog, want %d", now, ne, now+1)
			}
		}
		if err := h.CheckInvariants(true); err != nil {
			t.Fatalf("cycle %d: %v", now, err)
		}
	}
	if done != n {
		t.Fatalf("only %d/%d loads completed", done, n)
	}
	if maxBacklog != n-cfg.LLCMSHRs {
		t.Fatalf("retry backlog peaked at %d, want %d (misses beyond the MSHR file)", maxBacklog, n-cfg.LLCMSHRs)
	}
	// A full DRAM round trip is ~104 cycles; the file must have stayed full
	// (and the backlog retried) across many Ticks, not just one.
	if backlogTicks < 50 {
		t.Fatalf("retry backlog persisted only %d ticks; the multi-Tick path is untested", backlogTicks)
	}
	if len(h.llcRetry) != 0 || !h.Drained() {
		t.Fatalf("hierarchy did not drain (retry=%d)", len(h.llcRetry))
	}
}

// TestDRAMWaitOverflowRing exercises the dramWait ring under sustained
// back-pressure from a tiny DRAM queue: requests overflow into the ring,
// drain strictly in FIFO order, and the ring releases every slot.
func TestDRAMWaitOverflowRing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAM.QueueCap = 2
	h := New(cfg)

	const n = 24
	done := 0
	for i := 0; i < n; i++ {
		if !h.Load(0, uint64(0x80000+i*4096), false, nil, func(Outcome) { done++ }) {
			t.Fatal("load rejected in test setup")
		}
	}
	overflowed := false
	var now int64
	for now = 1; now < 1_000_000 && done < n; now++ {
		h.Tick(now)
		if h.dramWait.len() > 0 {
			overflowed = true
		}
		if err := h.CheckInvariants(true); err != nil {
			t.Fatalf("cycle %d: %v", now, err)
		}
	}
	if done != n {
		t.Fatalf("only %d/%d loads completed", done, n)
	}
	if !overflowed {
		t.Fatal("dramWait never overflowed; the ring is untested")
	}
	if h.dramWait.len() != 0 || h.dramWait.head != 0 || len(h.dramWait.buf) != 0 {
		t.Fatalf("drained ring not reset: len=%d head=%d cap-in-use=%d",
			h.dramWait.len(), h.dramWait.head, len(h.dramWait.buf))
	}
	if !h.Drained() {
		t.Fatal("hierarchy did not drain")
	}
}

// TestReqRing is the unit test for the overflow FIFO: strict order across
// interleaved pushes and pops, popped slots nil'd immediately (the leak the
// old `q = q[1:]` head-slicing had), and head compaction once the dead
// prefix dominates.
func TestReqRing(t *testing.T) {
	var q reqRing
	next := uint64(0) // next value to push
	want := uint64(0) // next value expected out
	push := func(k int) {
		for i := 0; i < k; i++ {
			q.push(&dram.Request{LineAddr: next})
			next++
		}
	}
	pop := func(k int) {
		for i := 0; i < k; i++ {
			if got := q.front().LineAddr; got != want {
				t.Fatalf("front = %d, want %d", got, want)
			}
			q.pop()
			want++
		}
	}
	// Interleave so the head prefix grows past the compaction threshold
	// while the ring stays non-empty.
	push(100)
	pop(63)
	if q.head == 0 {
		t.Fatal("head never advanced; slicing semantics changed")
	}
	for i := 0; i < q.head; i++ {
		if q.buf[i] != nil {
			t.Fatalf("popped slot %d retains its request", i)
		}
	}
	push(30)
	pop(37) // crosses head >= 64 with head*2 >= len: compaction must fire
	if q.head >= 64 {
		t.Fatalf("head = %d after the compaction threshold; compaction never fired", q.head)
	}
	if q.len() != 30 {
		t.Fatalf("ring holds %d entries, want 30", q.len())
	}
	for i := 0; i < q.head; i++ {
		if q.buf[i] != nil {
			t.Fatalf("dead slot %d retains its request after compaction", i)
		}
	}
	pop(q.len())
	if q.len() != 0 || q.head != 0 || len(q.buf) != 0 {
		t.Fatalf("emptied ring not reset (len=%d head=%d buf=%d)", q.len(), q.head, len(q.buf))
	}
	// Order survives heavy churn.
	for round := 0; round < 50; round++ {
		push(7)
		pop(5)
	}
	pop(q.len())
	if want != next {
		t.Fatal(fmt.Sprintf("popped %d of %d pushed", want, next))
	}
}
