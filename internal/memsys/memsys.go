// Package memsys assembles the memory hierarchy of Table 1: 32KB L1
// instruction and data caches (3-cycle), a 1MB inclusive last-level cache
// (18-cycle), MSHRs at each level, the stream prefetcher (prefetching into
// the LLC), and the DDR3 memory controller. It is a pure timing model —
// data values live in the functional memory image owned by the core.
//
// The hierarchy is driven by the core clock: call Tick once per cycle, and
// issue accesses with Load/Store/Fetch. Completion is delivered through
// callbacks carrying the cycle and the deepest level the access reached.
// Loads may be issued "no-wait" (runahead semantics): the callback then
// fires as soon as an LLC miss is discovered, while the fill itself keeps
// going in the background — that background fill is exactly runahead's
// prefetching effect.
package memsys

import (
	"container/heap"
	"fmt"

	"runaheadsim/internal/cache"
	"runaheadsim/internal/dram"
	"runaheadsim/internal/prefetch"
)

// Level is the deepest level an access had to reach.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelLLC
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelLLC:
		return "LLC"
	default:
		return "Mem"
	}
}

// Outcome reports the completion of an access.
type Outcome struct {
	When  int64
	Level Level
}

// Config describes the hierarchy.
type Config struct {
	L1I, L1D, LLC                cache.Config
	L1Latency, LLCLatency        int
	L1DMSHRs, L1IMSHRs, LLCMSHRs int
	DRAM                         dram.Config
	// EnablePrefetch turns on the prefetcher at the LLC.
	EnablePrefetch bool
	// PrefetchKind selects the engine: "stream" (the paper's Table 1
	// prefetcher, default) or "delta" (the region-delta/stride alternative
	// from the related-work comparison).
	PrefetchKind string
	Prefetch     prefetch.Config
	DeltaPF      prefetch.DeltaConfig
}

// DefaultConfig matches Table 1 (prefetcher disabled; the baseline is
// no-prefetching).
func DefaultConfig() Config {
	return Config{
		L1I:            cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		LLC:            cache.Config{Name: "LLC", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
		L1Latency:      3,
		LLCLatency:     18,
		L1DMSHRs:       32,
		L1IMSHRs:       8,
		LLCMSHRs:       64,
		DRAM:           dram.DefaultConfig(),
		EnablePrefetch: false,
		PrefetchKind:   "stream",
		Prefetch:       prefetch.DefaultConfig(),
		DeltaPF:        prefetch.DefaultDeltaConfig(),
	}
}

type reqKind uint8

const (
	kindData reqKind = iota
	kindInstr
	kindPrefetch
)

// event is a scheduled closure.
type event struct {
	cycle int64
	seq   uint64
	fn    func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	cfg Config

	l1i, l1d, llc             *cache.Cache
	l1iMSHR, l1dMSHR, llcMSHR *cache.MSHRFile
	mem                       *dram.Controller
	pf                        prefetch.Engine

	events   eventHeap
	seq      uint64
	now      int64
	dramWait []*dram.Request // overflow when the 64-entry memory queue is full
	llcRetry []func() bool   // demand misses waiting for a free LLC MSHR

	// OnLLCMiss, when non-nil, is invoked on every LLC demand miss (the
	// observability layer's cache-miss event hook). It fires at miss
	// discovery, before MSHR allocation, so the consumer sees misses that
	// merge or wait for structural resources too.
	OnLLCMiss func(now int64, line uint64, instr bool)

	// Statistics.
	Loads, Stores, Fetches uint64
	LLCDemandAccesses      uint64
	LLCDemandMisses        uint64
	DRAMReadsDemand        uint64
	DRAMReadsPrefetch      uint64
	DRAMWrites             uint64
}

// New assembles an idle hierarchy.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:     cfg,
		l1i:     cache.New(cfg.L1I),
		l1d:     cache.New(cfg.L1D),
		llc:     cache.New(cfg.LLC),
		l1iMSHR: cache.NewMSHRFile(cfg.L1IMSHRs),
		l1dMSHR: cache.NewMSHRFile(cfg.L1DMSHRs),
		llcMSHR: cache.NewMSHRFile(cfg.LLCMSHRs),
		mem:     dram.New(cfg.DRAM),
	}
	if cfg.EnablePrefetch {
		switch cfg.PrefetchKind {
		case "", "stream":
			pcfg := cfg.Prefetch
			pcfg.LineBytes = cfg.LLC.LineBytes
			h.pf = prefetch.New(pcfg)
		case "delta":
			dcfg := cfg.DeltaPF
			dcfg.LineBytes = cfg.LLC.LineBytes
			h.pf = prefetch.NewDelta(dcfg)
		default:
			panic(fmt.Sprintf("memsys: unknown prefetch kind %q", cfg.PrefetchKind))
		}
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// DRAM exposes the memory controller (for statistics).
func (h *Hierarchy) DRAM() *dram.Controller { return h.mem }

// Prefetcher exposes the prefetch engine, nil when disabled.
func (h *Hierarchy) Prefetcher() prefetch.Engine { return h.pf }

// L1D exposes the L1 data cache (for statistics).
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }

// L1I exposes the L1 instruction cache (for statistics).
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }

// LLC exposes the last-level cache (for statistics).
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// TotalDRAMRequests returns all granted DRAM requests (demand + prefetch +
// writeback), the quantity Figure 16 normalizes.
func (h *Hierarchy) TotalDRAMRequests() uint64 {
	return h.DRAMReadsDemand + h.DRAMReadsPrefetch + h.DRAMWrites
}

// OutstandingDataMisses returns the number of in-flight L1D misses.
func (h *Hierarchy) OutstandingDataMisses() int { return h.l1dMSHR.Outstanding() }

func (h *Hierarchy) schedule(cycle int64, fn func()) {
	if cycle <= h.now {
		cycle = h.now + 1
	}
	h.seq++
	heap.Push(&h.events, event{cycle: cycle, seq: h.seq, fn: fn})
}

// Tick advances the hierarchy to cycle now, firing due events, retrying
// back-pressured requests, and granting DRAM requests.
func (h *Hierarchy) Tick(now int64) {
	h.now = now
	// Retry demand misses blocked on a full LLC MSHR file.
	if len(h.llcRetry) > 0 {
		kept := h.llcRetry[:0]
		for _, try := range h.llcRetry {
			if !try() {
				kept = append(kept, try)
			}
		}
		h.llcRetry = kept
	}
	// Drain the overflow queue into the 64-entry memory queue.
	for len(h.dramWait) > 0 && h.mem.Enqueue(h.dramWait[0]) {
		h.dramWait = h.dramWait[1:]
	}
	h.mem.Tick(now)
	for len(h.events) > 0 && h.events[0].cycle <= now {
		e := heap.Pop(&h.events).(event)
		e.fn()
	}
}

// Load issues a data read at cycle now.
//
// onMiss (optional) fires as soon as the access is known to be DRAM-bound —
// the signal that lets a blocked ROB head trigger runahead without waiting
// for the data.
//
// When noWait is set (runahead semantics), done itself fires at miss
// discovery (Level Mem, no data) instead of at data arrival, and the fill
// continues in the background.
//
// Load reports false when the L1D MSHR file is full and the access must be
// retried.
func (h *Hierarchy) Load(now int64, addr uint64, noWait bool, onMiss func(int64), done func(Outcome)) bool {
	h.Loads++
	if hit, _ := h.l1d.Lookup(addr); hit {
		h.schedule(now+int64(h.cfg.L1Latency), func() { done(Outcome{When: h.now, Level: LevelL1}) })
		return true
	}
	line := h.l1d.LineAddr(addr)
	if m, ok := h.l1dMSHR.Lookup(line); ok {
		if onMiss != nil {
			if m.FillFromMem {
				h.schedule(now+int64(h.cfg.L1Latency), func() { onMiss(h.now) })
			} else {
				m.EarlyMiss = append(m.EarlyMiss, onMiss)
			}
		}
		if noWait {
			// The line is already in flight; runahead treats it as a miss in
			// progress and moves on without waiting.
			h.l1dMSHR.Merge(m, true, nil)
			h.schedule(now+int64(h.cfg.L1Latency), func() { done(Outcome{When: h.now, Level: LevelMem}) })
			return true
		}
		h.l1dMSHR.Merge(m, true, func(cy int64) { done(Outcome{When: cy, Level: fillLevel(m)}) })
		return true
	}
	if h.l1dMSHR.FullNow() {
		return false
	}
	m := h.l1dMSHR.Allocate(line, false)
	if onMiss != nil {
		m.EarlyMiss = append(m.EarlyMiss, onMiss)
	}
	if noWait {
		notified := false
		fire := func(cy int64, lvl Level) {
			if !notified {
				notified = true
				done(Outcome{When: cy, Level: lvl})
			}
		}
		// Early notification when the LLC lookup resolves as a miss; if the
		// LLC hits instead, the normal fill path completes quickly.
		m.EarlyMiss = append(m.EarlyMiss, func(cy int64) { fire(cy, LevelMem) })
		h.l1dMSHR.Merge(m, true, func(cy int64) { fire(cy, fillLevel(m)) })
	} else {
		h.l1dMSHR.Merge(m, true, func(cy int64) { done(Outcome{When: cy, Level: fillLevel(m)}) })
	}
	h.schedule(now+int64(h.cfg.L1Latency), func() { h.llcAccess(line, kindData) })
	return true
}

// Store issues a data write at cycle now (write-allocate, write-back). The
// callback fires when the line is writable in the L1D. Store reports false
// when the L1D MSHR file is full.
func (h *Hierarchy) Store(now int64, addr uint64, done func(Outcome)) bool {
	h.Stores++
	if hit, _ := h.l1d.Lookup(addr); hit {
		h.l1d.MarkDirty(addr)
		h.schedule(now+int64(h.cfg.L1Latency), func() { done(Outcome{When: h.now, Level: LevelL1}) })
		return true
	}
	line := h.l1d.LineAddr(addr)
	finish := func(cy int64, m *cache.MSHR) {
		h.l1d.MarkDirty(line)
		done(Outcome{When: cy, Level: fillLevel(m)})
	}
	if m, ok := h.l1dMSHR.Lookup(line); ok {
		h.l1dMSHR.Merge(m, true, func(cy int64) { finish(cy, m) })
		return true
	}
	if h.l1dMSHR.FullNow() {
		return false
	}
	m := h.l1dMSHR.Allocate(line, false)
	h.l1dMSHR.Merge(m, true, func(cy int64) { finish(cy, m) })
	h.schedule(now+int64(h.cfg.L1Latency), func() { h.llcAccess(line, kindData) })
	return true
}

// Fetch issues an instruction read at cycle now. It reports false when the
// L1I MSHR file is full.
func (h *Hierarchy) Fetch(now int64, addr uint64, done func(Outcome)) bool {
	h.Fetches++
	if hit, _ := h.l1i.Lookup(addr); hit {
		h.schedule(now+int64(h.cfg.L1Latency), func() { done(Outcome{When: h.now, Level: LevelL1}) })
		return true
	}
	line := h.l1i.LineAddr(addr)
	if m, ok := h.l1iMSHR.Lookup(line); ok {
		h.l1iMSHR.Merge(m, true, func(cy int64) { done(Outcome{When: cy, Level: fillLevel(m)}) })
		return true
	}
	if h.l1iMSHR.FullNow() {
		return false
	}
	m := h.l1iMSHR.Allocate(line, false)
	h.l1iMSHR.Merge(m, true, func(cy int64) { done(Outcome{When: cy, Level: fillLevel(m)}) })
	h.schedule(now+int64(h.cfg.L1Latency), func() { h.llcAccess(line, kindInstr) })
	return true
}

func fillLevel(m *cache.MSHR) Level {
	if m.FillFromMem {
		return LevelMem
	}
	return LevelLLC
}

// llcAccess handles an L1-level miss (or a prefetch probe) arriving at the
// LLC.
func (h *Hierarchy) llcAccess(line uint64, kind reqKind) {
	demand := kind != kindPrefetch
	hit, wasPf := h.llc.Lookup(line)
	if demand {
		h.LLCDemandAccesses++
		if !hit {
			h.LLCDemandMisses++
			if h.OnLLCMiss != nil {
				h.OnLLCMiss(h.now, line, kind == kindInstr)
			}
		}
		if h.pf != nil {
			for _, pa := range h.pf.Train(line, hit, wasPf) {
				h.issuePrefetch(pa)
			}
		}
	}
	if hit {
		h.schedule(h.now+int64(h.cfg.LLCLatency), func() { h.fillL1(line, kind, false) })
		return
	}
	// LLC miss: the requester learns it is DRAM-bound now, even if the miss
	// has to wait for an MSHR or queue slot (runahead must be able to poison
	// and move past it immediately).
	h.noteEarlyMiss(line, kind)
	if m, ok := h.llcMSHR.Lookup(line); ok {
		if demand && m.Prefetch && h.pf != nil {
			h.pf.NoteLatePrefetch()
		}
		h.llcMSHR.Merge(m, demand, nil)
		h.attachL1Fill(m, line, kind)
		return
	}
	try := func() bool {
		if h.llcMSHR.FullNow() {
			return false
		}
		m := h.llcMSHR.Allocate(line, false)
		m.FillFromMem = true
		h.attachL1Fill(m, line, kind)
		h.DRAMReadsDemand++
		h.enqueueDRAM(&dram.Request{LineAddr: line, Arrival: h.now, Done: func(cy int64) {
			h.schedule(cy, func() { h.fillLLC(line, false) })
		}})
		return true
	}
	if !try() {
		h.llcRetry = append(h.llcRetry, try)
	}
}

// noteEarlyMiss delivers runahead early-miss notifications for data misses
// that are now known to be DRAM-bound.
func (h *Hierarchy) noteEarlyMiss(line uint64, kind reqKind) {
	if kind != kindData {
		return
	}
	if m, ok := h.l1dMSHR.Lookup(line); ok {
		m.FillFromMem = true
		for _, f := range m.EarlyMiss {
			f(h.now)
		}
		m.EarlyMiss = nil
	}
}

// attachL1Fill arranges for the L1 fill when the LLC-level MSHR completes.
func (h *Hierarchy) attachL1Fill(m *cache.MSHR, line uint64, kind reqKind) {
	h.llcMSHR.Merge(m, kind != kindPrefetch, func(cy int64) {
		h.fillL1(line, kind, true)
	})
}

// fillL1 delivers a line into the appropriate L1 and completes its MSHR.
// fromMem marks fills whose data came from DRAM.
func (h *Hierarchy) fillL1(line uint64, kind reqKind, fromMem bool) {
	switch kind {
	case kindData:
		if _, ok := h.l1dMSHR.Lookup(line); !ok {
			return // e.g. duplicate fill after an inclusion invalidation
		}
		v := h.l1d.Insert(line, false)
		if v.Valid && v.Dirty {
			// Write back into the (inclusive) LLC; if it lost the line,
			// forward to memory.
			if !h.llc.MarkDirty(v.Addr) {
				h.writeDRAM(v.Addr)
			}
		}
		m := h.l1dMSHR.Complete(line)
		if fromMem {
			m.FillFromMem = true
		}
		for _, w := range m.Waiters {
			w(h.now)
		}
	case kindInstr:
		if _, ok := h.l1iMSHR.Lookup(line); !ok {
			return
		}
		h.l1i.Insert(line, false)
		m := h.l1iMSHR.Complete(line)
		if fromMem {
			m.FillFromMem = true
		}
		for _, w := range m.Waiters {
			w(h.now)
		}
	}
}

// fillLLC inserts a line arriving from DRAM and completes the LLC MSHR.
func (h *Hierarchy) fillLLC(line uint64, prefetched bool) {
	if _, ok := h.llcMSHR.Lookup(line); !ok {
		return
	}
	m := h.llcMSHR.Complete(line)
	// A prefetch that a demand merged into fills as a demand line.
	pfBit := prefetched && m.Prefetch
	v := h.llc.Insert(line, pfBit)
	if v.Valid {
		// Inclusion: drop L1 copies, folding their dirtiness into the victim.
		dirty := v.Dirty
		if _, d := h.l1d.Invalidate(v.Addr); d {
			dirty = true
		}
		h.l1i.Invalidate(v.Addr)
		if dirty {
			h.writeDRAM(v.Addr)
		}
		if pfBit && h.pf != nil {
			h.pf.NotePrefetchEviction(v.Addr)
		}
	}
	for _, w := range m.Waiters {
		w(h.now)
	}
}

// issuePrefetch injects a prefetch for line addr into the LLC miss path.
// Prefetches are droppable: full structures silently discard them.
func (h *Hierarchy) issuePrefetch(addr uint64) {
	line := h.llc.LineAddr(addr)
	if h.llc.Probe(line) {
		return
	}
	if _, ok := h.llcMSHR.Lookup(line); ok {
		return
	}
	if h.llcMSHR.FullNow() {
		return
	}
	h.llcMSHR.Allocate(line, true)
	h.DRAMReadsPrefetch++
	h.enqueueDRAM(&dram.Request{LineAddr: line, Arrival: h.now, Done: func(cy int64) {
		h.schedule(cy, func() { h.fillLLC(line, true) })
	}})
}

func (h *Hierarchy) writeDRAM(line uint64) {
	h.DRAMWrites++
	h.enqueueDRAM(&dram.Request{LineAddr: line, Write: true, Arrival: h.now})
}

func (h *Hierarchy) enqueueDRAM(r *dram.Request) {
	if len(h.dramWait) > 0 || !h.mem.Enqueue(r) {
		h.dramWait = append(h.dramWait, r)
	}
}

// Drained reports whether no activity is pending anywhere in the hierarchy
// (for tests).
func (h *Hierarchy) Drained() bool {
	return len(h.events) == 0 && len(h.dramWait) == 0 && len(h.llcRetry) == 0 &&
		h.mem.Pending() == 0 && h.l1dMSHR.Outstanding() == 0 &&
		h.l1iMSHR.Outstanding() == 0 && h.llcMSHR.Outstanding() == 0
}

// ResetStats zeroes all statistics counters while preserving cache, MSHR,
// DRAM and prefetcher state — used by harnesses to exclude warmup from
// measurements.
func (h *Hierarchy) ResetStats() {
	h.Loads, h.Stores, h.Fetches = 0, 0, 0
	h.LLCDemandAccesses, h.LLCDemandMisses = 0, 0
	h.DRAMReadsDemand, h.DRAMReadsPrefetch, h.DRAMWrites = 0, 0, 0
	for _, c := range []*cache.Cache{h.l1i, h.l1d, h.llc} {
		c.Hits, c.Misses, c.Evictions = 0, 0, 0
	}
	for _, f := range []*cache.MSHRFile{h.l1iMSHR, h.l1dMSHR, h.llcMSHR} {
		f.Allocs, f.Merges, f.Full = 0, 0, 0
	}
	h.mem.ResetStats()
	if h.pf != nil {
		h.pf.ResetStats()
	}
}
