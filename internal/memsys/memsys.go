// Package memsys assembles the memory hierarchy of Table 1: 32KB L1
// instruction and data caches (3-cycle), a 1MB inclusive last-level cache
// (18-cycle), MSHRs at each level, the stream prefetcher (prefetching into
// the LLC), and the DDR3 memory controller. It is a pure timing model —
// data values live in the functional memory image owned by the core.
//
// The hierarchy is driven by the core clock: call Tick once per cycle, and
// issue accesses with Load/Store/Fetch. Completion is delivered through
// callbacks carrying the cycle and the deepest level the access reached.
// Loads may be issued "no-wait" (runahead semantics): the callback then
// fires as soon as an LLC miss is discovered, while the fill itself keeps
// going in the background — that background fill is exactly runahead's
// prefetching effect.
//
// The hierarchy is natively multi-requestor: NewShared builds one with N
// private L1 front ends (per-requestor caches, MSHRs, and statistics)
// competing for one inclusive LLC and one DRAM controller, which is how the
// multi-core cluster models shared-memory contention. New is the
// single-requestor special case — requestor 0 owns everything — and the
// requestor-less methods (Load, Store, Fetch...) address it, so single-core
// callers are untouched. When more than one requestor exists, L1 misses pass
// through a deterministic round-robin LLC arbiter (Config.LLCPorts grants
// per cycle) instead of going straight to the LLC lookup.
package memsys

import (
	"fmt"

	"runaheadsim/internal/cache"
	"runaheadsim/internal/dram"
	"runaheadsim/internal/prefetch"
)

// Level is the deepest level an access had to reach. Defined in package
// cache (so MSHR waiters can carry completion callbacks without adapter
// closures) and re-exported here for the hierarchy's public API.
type Level = cache.Level

// Hierarchy levels.
const (
	LevelL1  = cache.LevelL1
	LevelLLC = cache.LevelLLC
	LevelMem = cache.LevelMem
)

// Outcome reports the completion of an access; see cache.Outcome.
type Outcome = cache.Outcome

// Config describes the hierarchy.
type Config struct {
	L1I, L1D, LLC                cache.Config
	L1Latency, LLCLatency        int
	L1DMSHRs, L1IMSHRs, LLCMSHRs int
	DRAM                         dram.Config
	// LLCPorts bounds how many L1-miss accesses the shared LLC accepts per
	// cycle when the hierarchy has more than one requestor; the round-robin
	// arbiter queues the excess. Zero means the default (2). Ignored in
	// single-requestor hierarchies, where the L1→LLC path is unarbitrated
	// exactly as in the original single-core model.
	LLCPorts int
	// EnablePrefetch turns on the prefetcher at the LLC.
	EnablePrefetch bool
	// PrefetchKind selects the engine: "stream" (the paper's Table 1
	// prefetcher, default) or "delta" (the region-delta/stride alternative
	// from the related-work comparison).
	PrefetchKind string
	Prefetch     prefetch.Config
	DeltaPF      prefetch.DeltaConfig
}

// DefaultConfig matches Table 1 (prefetcher disabled; the baseline is
// no-prefetching).
func DefaultConfig() Config {
	return Config{
		L1I:            cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		LLC:            cache.Config{Name: "LLC", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
		L1Latency:      3,
		LLCLatency:     18,
		L1DMSHRs:       32,
		L1IMSHRs:       8,
		LLCMSHRs:       64,
		LLCPorts:       2,
		DRAM:           dram.DefaultConfig(),
		EnablePrefetch: false,
		PrefetchKind:   "stream",
		Prefetch:       prefetch.DefaultConfig(),
		DeltaPF:        prefetch.DefaultDeltaConfig(),
	}
}

type reqKind uint8

const (
	kindData reqKind = iota
	kindInstr
	kindPrefetch
)

// Never is the NextEvent value of a hierarchy with no pending work: nothing
// will happen until a new access arrives.
const Never = int64(1<<63 - 1)

// evKind discriminates the typed scheduled events. Events used to be
// closures; on memory-bound runs the per-hop closure allocations dominated
// the heap profile, so the payload now lives in the event value itself and
// only the caller-provided completion callbacks remain funcs.
type evKind uint8

const (
	evDone      evKind = iota // fire done(Outcome{h.now, lvl})
	evMiss                    // fire miss(h.now)
	evLLCAccess               // llcAccess(req, line, rk)
	evFillL1                  // fillL1(req, line, rk, false) — LLC-hit fill
	evFillLLC                 // fillLLC(line, pf) — line arrived from DRAM
)

// event is one scheduled hierarchy action. req routes L1-bound actions to
// the owning requestor's front end.
type event struct {
	cycle int64
	seq   uint64
	kind  evKind
	line  uint64
	req   int32
	rk    reqKind
	lvl   Level
	pf    bool
	done  func(Outcome)
	miss  func(int64)
}

// fire dispatches the event at cycle h.now.
func (h *Hierarchy) fire(e *event) {
	switch e.kind {
	case evDone:
		e.done(Outcome{When: h.now, Level: e.lvl, Line: e.line})
	case evMiss:
		e.miss(h.now)
	case evLLCAccess:
		h.llcAccess(int(e.req), e.line, e.rk)
	case evFillL1:
		h.fillL1(int(e.req), e.line, e.rk, false)
	case evFillLLC:
		h.fillLLC(e.line, e.pf)
	}
}

// reqRing is a FIFO of DRAM requests backed by a slice with a moving head.
// The old `q = q[1:]` head-slicing kept every granted *dram.Request alive in
// the backing array until the whole queue drained; the ring nils slots as
// they pop and compacts once the dead prefix dominates.
type reqRing struct {
	buf  []*dram.Request
	head int
}

func (q *reqRing) len() int             { return len(q.buf) - q.head }
func (q *reqRing) front() *dram.Request { return q.buf[q.head] }
func (q *reqRing) push(r *dram.Request) { q.buf = append(q.buf, r) }
func (q *reqRing) pop() {
	q.buf[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf, q.head = q.buf[:0], 0
	case q.head >= 64 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf, q.head = q.buf[:n], 0
	}
}

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (cycle, seq). container/heap would box every event into an interface on
// Push and Pop — two heap allocations per hierarchy hop, a dominant term in
// memory-bound allocation profiles — so the sift loops are written out here
// (mirroring core's wakeup-queue heap).
type eventHeap []event

func eventBefore(a, b *event) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	*h = s
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !eventBefore(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release callback references held by the dead tail slot
	s = s[:n]
	*h = s
	for i := 0; ; {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventBefore(&s[r], &s[child]) {
			child = r
		}
		if !eventBefore(&s[child], &s[i]) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return top
}

// ReqStats are one requestor's statistics: its private L1 traffic plus its
// share of the shared-LLC and DRAM demand. In a single-requestor hierarchy
// requestor 0's ReqStats mirror the aggregate fields on Hierarchy.
type ReqStats struct {
	Loads, Stores, Fetches uint64
	LLCDemandAccesses      uint64
	LLCDemandMisses        uint64
	DRAMReadsDemand        uint64
	DRAMReadsPrefetch      uint64
	DRAMWrites             uint64
	// LLCArbGrants counts this requestor's accesses granted by the shared-LLC
	// arbiter; LLCArbWaitCycles sums the cycles those accesses queued past
	// their L1→LLC transit, i.e. pure port contention. Both stay zero in a
	// single-requestor hierarchy (no arbitration on that path).
	LLCArbGrants      uint64
	LLCArbWaitCycles  uint64
}

// front is one requestor's private L1 level: instruction and data caches,
// their MSHR files, the cached fill callbacks, per-requestor statistics, and
// the host's observability hook.
type front struct {
	l1i, l1d         *cache.Cache
	l1iMSHR, l1dMSHR *cache.MSHRFile

	// fillL1Data/fillL1Instr are the LLC-MSHR waiters attachL1Fill installs,
	// cached once per front so no closure is allocated per LLC miss (the
	// Outcome carries the line). Rebuilt by the constructor, never
	// snapshotted.
	fillL1Data  func(Outcome)
	fillL1Instr func(Outcome)

	// onLLCMiss, when non-nil, is invoked on every LLC demand miss from this
	// requestor, at miss discovery (before MSHR allocation). Host hook; the
	// restoring host attaches its own.
	onLLCMiss func(now int64, line uint64, instr bool)

	st ReqStats
}

// arbEntry is one L1 miss queued at the shared-LLC arbiter. readyAt is the
// cycle the access completes its L1→LLC transit (enqueue + L1Latency);
// arbitration delay beyond readyAt is port contention, counted in
// LLCArbWaitCycles.
type arbEntry struct {
	line    uint64
	rk      reqKind
	readyAt int64
}

// llcArb is the shared-LLC input arbiter: one FIFO per requestor, drained
// round-robin up to LLCPorts grants per cycle. The grant order depends only
// on queue contents and the rotating pointer — never on map iteration or
// host scheduling — so multi-core interleavings are deterministic. Only the
// rotating pointer is snapshotted: the queues drain empty before a snapshot
// (Drained requires pending == 0).
type llcArb struct {
	q       [][]arbEntry
	head    []int
	next    int
	pending int
}

func (a *llcArb) push(r int, e arbEntry) {
	a.q[r] = append(a.q[r], e)
	a.pending++
}

func (a *llcArb) peek(r int) (arbEntry, bool) {
	if a.head[r] >= len(a.q[r]) {
		return arbEntry{}, false
	}
	return a.q[r][a.head[r]], true
}

func (a *llcArb) pop(r int) arbEntry {
	e := a.q[r][a.head[r]]
	a.head[r]++
	a.pending--
	if a.head[r] == len(a.q[r]) {
		a.q[r], a.head[r] = a.q[r][:0], 0
	}
	return e
}

// Hierarchy is the assembled memory system: N private L1 front ends over one
// shared LLC and DRAM controller (N == 1 for the single-core machine).
type Hierarchy struct {
	cfg  Config
	fr   []front
	arb  llcArb

	llc     *cache.Cache
	llcMSHR *cache.MSHRFile
	mem     *dram.Controller
	pf      prefetch.Engine

	events   eventHeap
	seq      uint64
	now      int64
	dramWait reqRing       // overflow when the 64-entry memory queue is full
	llcRetry []func() bool // demand misses waiting for a free LLC MSHR

	// reqPool recycles dram.Request values: the controller hands each
	// request back through its Release hook after the completion callback
	// runs, and the two shared DoneR method values below replace the
	// per-request fill closures.
	//simlint:nosnapshot host-side recycle pool; its contents never reach simulated state
	reqPool      []*dram.Request
	demandDone   func(r *dram.Request, cy int64) //simlint:nosnapshot method value rebuilt by the constructor
	prefetchDone func(r *dram.Request, cy int64) //simlint:nosnapshot method value rebuilt by the constructor

	// onGrant holds per-requestor DRAM-grant hooks; grantHooks counts the
	// non-nil ones so the controller-side dispatcher is installed only while
	// a consumer exists.
	//simlint:nosnapshot host hooks; the restoring host attaches its own
	onGrant    []func(now int64, line uint64, write, rowHit bool)
	grantHooks int //simlint:nosnapshot derived hook count, host-side only

	// lateEvents counts events that fired after their scheduled cycle. In a
	// correctly driven hierarchy this never happens — Tick runs at every
	// cycle the event horizon names — so a nonzero count means the clock
	// warped over a due event; CheckInvariants reports it.
	//simlint:nosnapshot sanitizer tripwire; zero in any hierarchy healthy enough to snapshot
	lateEvents uint64

	// Aggregate statistics, summed across requestors (the single-core API;
	// per-requestor splits live in ReqStats).
	Loads, Stores, Fetches uint64
	LLCDemandAccesses      uint64
	LLCDemandMisses        uint64
	DRAMReadsDemand        uint64
	DRAMReadsPrefetch      uint64
	DRAMWrites             uint64
}

// New assembles an idle single-requestor hierarchy.
func New(cfg Config) *Hierarchy { return NewShared(cfg, 1) }

// NewShared assembles an idle hierarchy with n private L1 front ends sharing
// the LLC, the prefetcher, and the DRAM controller.
func NewShared(cfg Config, n int) *Hierarchy {
	if n < 1 {
		panic("memsys: a hierarchy needs at least one requestor")
	}
	if cfg.LLCPorts <= 0 {
		cfg.LLCPorts = 2
	}
	h := &Hierarchy{
		cfg:     cfg,
		fr:      make([]front, n),
		llc:     cache.New(cfg.LLC),
		llcMSHR: cache.NewMSHRFile(cfg.LLCMSHRs),
		mem:     dram.New(cfg.DRAM),
		onGrant: make([]func(int64, uint64, bool, bool), n),
	}
	h.arb.q = make([][]arbEntry, n)
	h.arb.head = make([]int, n)
	h.mem.EnsureRequestors(n)
	for i := range h.fr {
		f := &h.fr[i]
		f.l1i = cache.New(cfg.L1I)
		f.l1d = cache.New(cfg.L1D)
		f.l1iMSHR = cache.NewMSHRFile(cfg.L1IMSHRs)
		f.l1dMSHR = cache.NewMSHRFile(cfg.L1DMSHRs)
		// Shared completion callbacks: one closure pair per front instead of
		// one per miss.
		req := i
		f.fillL1Data = func(o Outcome) { h.fillL1(req, o.Line, kindData, true) }
		f.fillL1Instr = func(o Outcome) { h.fillL1(req, o.Line, kindInstr, true) }
	}
	h.demandDone = func(r *dram.Request, cy int64) {
		h.scheduleEv(cy, event{kind: evFillLLC, line: r.LineAddr, pf: false})
	}
	h.prefetchDone = func(r *dram.Request, cy int64) {
		h.scheduleEv(cy, event{kind: evFillLLC, line: r.LineAddr, pf: true})
	}
	h.mem.Release = func(r *dram.Request) {
		*r = dram.Request{}
		h.reqPool = append(h.reqPool, r)
	}
	if cfg.EnablePrefetch {
		switch cfg.PrefetchKind {
		case "", "stream":
			pcfg := cfg.Prefetch
			pcfg.LineBytes = cfg.LLC.LineBytes
			h.pf = prefetch.New(pcfg)
		case "delta":
			dcfg := cfg.DeltaPF
			dcfg.LineBytes = cfg.LLC.LineBytes
			h.pf = prefetch.NewDelta(dcfg)
		default:
			panic(fmt.Sprintf("memsys: unknown prefetch kind %q", cfg.PrefetchKind))
		}
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Requestors returns the number of private L1 front ends.
func (h *Hierarchy) Requestors() int { return len(h.fr) }

// DRAM exposes the memory controller (for statistics).
func (h *Hierarchy) DRAM() *dram.Controller { return h.mem }

// Prefetcher exposes the prefetch engine, nil when disabled.
func (h *Hierarchy) Prefetcher() prefetch.Engine { return h.pf }

// L1D exposes requestor 0's L1 data cache; L1DR addresses any requestor.
func (h *Hierarchy) L1D() *cache.Cache           { return h.fr[0].l1d }
func (h *Hierarchy) L1DR(req int) *cache.Cache   { return h.fr[req].l1d }

// L1I exposes requestor 0's L1 instruction cache; L1IR addresses any
// requestor.
func (h *Hierarchy) L1I() *cache.Cache         { return h.fr[0].l1i }
func (h *Hierarchy) L1IR(req int) *cache.Cache { return h.fr[req].l1i }

// LLC exposes the shared last-level cache (for statistics).
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// Req returns requestor req's statistics.
func (h *Hierarchy) Req(req int) *ReqStats { return &h.fr[req].st }

// SetLLCMissHook installs (or, with nil, removes) requestor req's LLC
// demand-miss hook: invoked at miss discovery, before MSHR allocation, so
// the consumer sees misses that merge or wait for structural resources too.
func (h *Hierarchy) SetLLCMissHook(req int, fn func(now int64, line uint64, instr bool)) {
	h.fr[req].onLLCMiss = fn
}

// SetGrantHook installs (or, with nil, removes) requestor req's DRAM-grant
// hook. The controller-side dispatcher exists only while at least one hook
// does, so hierarchies with no observers pay nothing per grant.
func (h *Hierarchy) SetGrantHook(req int, fn func(now int64, line uint64, write, rowHit bool)) {
	if (h.onGrant[req] == nil) != (fn == nil) {
		if fn == nil {
			h.grantHooks--
		} else {
			h.grantHooks++
		}
	}
	h.onGrant[req] = fn
	if h.grantHooks == 0 {
		h.mem.OnGrant = nil
		return
	}
	h.mem.OnGrant = func(now int64, r *dram.Request, rowHit bool) {
		if g := h.onGrant[r.Req]; g != nil {
			g(now, r.LineAddr, r.Write, rowHit)
		}
	}
}

// TotalDRAMRequests returns all granted DRAM requests (demand + prefetch +
// writeback), the quantity Figure 16 normalizes.
func (h *Hierarchy) TotalDRAMRequests() uint64 {
	return h.DRAMReadsDemand + h.DRAMReadsPrefetch + h.DRAMWrites
}

// OutstandingDataMisses returns requestor 0's in-flight L1D misses;
// OutstandingDataMissesR addresses any requestor.
func (h *Hierarchy) OutstandingDataMisses() int { return h.fr[0].l1dMSHR.Outstanding() }
func (h *Hierarchy) OutstandingDataMissesR(req int) int {
	return h.fr[req].l1dMSHR.Outstanding()
}

// MSHRFiles returns requestor 0's MSHR files plus the shared LLC file, so
// the self-profiling exporter can read their pool counters. MSHRFilesR
// addresses any requestor's private files.
func (h *Hierarchy) MSHRFiles() (l1i, l1d, llc *cache.MSHRFile) {
	return h.fr[0].l1iMSHR, h.fr[0].l1dMSHR, h.llcMSHR
}

// MSHRFilesR returns requestor req's private L1 MSHR files.
func (h *Hierarchy) MSHRFilesR(req int) (l1i, l1d *cache.MSHRFile) {
	return h.fr[req].l1iMSHR, h.fr[req].l1dMSHR
}

// LLCMSHRFile returns the shared LLC MSHR file.
func (h *Hierarchy) LLCMSHRFile() *cache.MSHRFile { return h.llcMSHR }

// scheduleEv enqueues ev to fire at cycle (clamped to at least the next
// cycle, like every hierarchy hop).
func (h *Hierarchy) scheduleEv(cycle int64, ev event) {
	if cycle <= h.now {
		cycle = h.now + 1
	}
	h.seq++
	ev.cycle, ev.seq = cycle, h.seq
	h.events.push(ev)
}

// newReq returns a request from the free pool (or a fresh one), stamped with
// the given fields.
func (h *Hierarchy) newReq(req int, line uint64, write bool) *dram.Request {
	var r *dram.Request
	if n := len(h.reqPool); n > 0 {
		r = h.reqPool[n-1]
		h.reqPool[n-1] = nil
		h.reqPool = h.reqPool[:n-1]
	} else {
		r = &dram.Request{}
	}
	r.LineAddr, r.Write, r.Arrival, r.Req = line, write, h.now, req
	return r
}

// Tick advances the hierarchy to cycle now, firing due events, retrying
// back-pressured requests, granting DRAM requests, and — in shared
// hierarchies — running the LLC arbiter.
func (h *Hierarchy) Tick(now int64) {
	h.now = now
	// Retry demand misses blocked on a full LLC MSHR file.
	if len(h.llcRetry) > 0 {
		kept := h.llcRetry[:0]
		for _, try := range h.llcRetry {
			if !try() {
				kept = append(kept, try)
			}
		}
		for i := len(kept); i < len(h.llcRetry); i++ {
			h.llcRetry[i] = nil // don't retain satisfied retries in the tail
		}
		h.llcRetry = kept
	}
	// Drain the overflow queue into the 64-entry memory queue.
	for h.dramWait.len() > 0 && h.mem.Enqueue(h.dramWait.front()) {
		h.dramWait.pop()
	}
	h.mem.Tick(now)
	if h.arb.pending > 0 {
		h.arbGrant(now)
	}
	for len(h.events) > 0 && h.events[0].cycle <= now {
		e := h.events.pop()
		if e.cycle < now {
			h.lateEvents++ // a warped clock jumped over a due event
		}
		h.fire(&e)
	}
}

// arbGrant runs one cycle of shared-LLC arbitration: up to LLCPorts accesses
// whose L1→LLC transit has completed are granted, round-robin starting at
// the rotating pointer, which advances past each granted requestor so no
// stream can monopolize the ports.
func (h *Hierarchy) arbGrant(now int64) {
	n := len(h.fr)
	for granted := 0; granted < h.cfg.LLCPorts; granted++ {
		r := -1
		for i := 0; i < n; i++ {
			cand := (h.arb.next + i) % n
			if e, ok := h.arb.peek(cand); ok && e.readyAt <= now {
				r = cand
				break
			}
		}
		if r < 0 {
			return
		}
		e := h.arb.pop(r)
		h.arb.next = (r + 1) % n
		st := &h.fr[r].st
		st.LLCArbGrants++
		st.LLCArbWaitCycles += uint64(now - e.readyAt)
		h.llcAccess(r, e.line, e.rk)
	}
}

// reqShift positions each requestor's private physical region in the shared
// LLC/DRAM domain: core i's local line L crosses the boundary as
// L | i<<reqShift — 1 TB apart, far above any kernel's footprint. The
// kernels are independent programs whose virtual ranges overlap, so without
// the offset a multi-programmed mix would falsely share LLC lines (one
// core's fill servicing another's miss), corrupting the contention study.
// Requestor 0's region starts at 0, so a single-requestor hierarchy sees
// unchanged addresses — the bit-identity the equivalence gate pins.
const reqShift = 40

func reqBase(req int) uint64 { return uint64(req) << reqShift }

// sendLLC routes an L1 miss toward the shared LLC, translating the
// requestor-local line into its private region of the shared physical
// space. Single-requestor hierarchies schedule the access directly at
// L1Latency — the original unarbitrated path, preserved bit-for-bit. Shared
// hierarchies queue it at the arbiter with the same transit latency.
func (h *Hierarchy) sendLLC(req int, now int64, line uint64, rk reqKind) {
	line |= reqBase(req)
	if len(h.fr) == 1 {
		h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evLLCAccess, line: line, rk: rk})
		return
	}
	h.arb.push(req, arbEntry{line: line, rk: rk, readyAt: now + int64(h.cfg.L1Latency)})
}

// arbNext returns the earliest cycle the arbiter could grant: now+1 while a
// transit-complete entry waits on ports, else the earliest head transit
// completion. Never when every queue is empty.
func (h *Hierarchy) arbNext() int64 {
	next := Never
	for r := range h.fr {
		if e, ok := h.arb.peek(r); ok {
			if e.readyAt <= h.now {
				return h.now + 1
			}
			if e.readyAt < next {
				next = e.readyAt
			}
		}
	}
	return next
}

// NextEvent returns the next cycle at which the hierarchy has work to do:
// the minimum of the event-heap top, the DRAM controller's grant horizon,
// the LLC arbiter's next grant, and — while any retry backlog exists — the
// very next cycle (back-pressured work is retried every Tick). It returns
// Never when the hierarchy is fully idle. The value is a safe lower bound:
// ticking earlier than it is a no-op, ticking every cycle up to it is
// exactly the per-cycle reference behavior, and no event, retry, grant, or
// arbitration can occur strictly before it.
func (h *Hierarchy) NextEvent() int64 {
	if len(h.llcRetry) > 0 || h.dramWait.len() > 0 {
		return h.now + 1
	}
	next := Never
	if len(h.events) > 0 {
		next = h.events[0].cycle
	}
	if nr := h.mem.NextReady(h.now); nr < next {
		next = nr
	}
	if h.arb.pending > 0 {
		if an := h.arbNext(); an < next {
			next = an
		}
	}
	return next
}

// Load issues requestor 0's data read; LoadR addresses any requestor.
//
// onMiss (optional) fires as soon as the access is known to be DRAM-bound —
// the signal that lets a blocked ROB head trigger runahead without waiting
// for the data.
//
// When noWait is set (runahead semantics), done itself fires at miss
// discovery (Level Mem, no data) instead of at data arrival, and the fill
// continues in the background.
//
// Load reports false when the L1D MSHR file is full and the access must be
// retried.
func (h *Hierarchy) Load(now int64, addr uint64, noWait bool, onMiss func(int64), done func(Outcome)) bool {
	return h.LoadR(0, now, addr, noWait, onMiss, done)
}

// LoadHit is the allocation-free fast path for the common L1D-hit case: if
// addr hits, it counts the access exactly as Load's hit path would (Loads,
// the cache's hit statistic and LRU refresh) and reports true, leaving the
// completion timing — L1Latency cycles, like every hierarchy hop — to the
// caller, which can schedule a typed event of its own instead of threading a
// callback through the hierarchy. On a miss nothing is counted or disturbed
// and the caller falls back to Load. LoadHitR addresses any requestor.
func (h *Hierarchy) LoadHit(addr uint64) bool { return h.LoadHitR(0, addr) }

func (h *Hierarchy) LoadHitR(req int, addr uint64) bool {
	f := &h.fr[req]
	if !f.l1d.Probe(addr) {
		return false
	}
	h.Loads++
	f.st.Loads++
	f.l1d.Lookup(addr)
	return true
}

func (h *Hierarchy) LoadR(req int, now int64, addr uint64, noWait bool, onMiss func(int64), done func(Outcome)) bool {
	f := &h.fr[req]
	h.Loads++
	f.st.Loads++
	if hit, _ := f.l1d.Lookup(addr); hit {
		h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelL1, line: f.l1d.LineAddr(addr), done: done})
		return true
	}
	line := f.l1d.LineAddr(addr)
	if m, ok := f.l1dMSHR.Lookup(line); ok {
		if onMiss != nil {
			if m.FillFromMem {
				h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evMiss, miss: onMiss})
			} else {
				m.EarlyMiss = append(m.EarlyMiss, onMiss)
			}
		}
		if noWait {
			// The line is already in flight; runahead treats it as a miss in
			// progress and moves on without waiting.
			f.l1dMSHR.Merge(m, true, cache.Waiter{})
			h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelMem, done: done})
			return true
		}
		f.l1dMSHR.Merge(m, true, cache.Waiter{Done: done})
		return true
	}
	if f.l1dMSHR.FullNow() {
		return false
	}
	m := f.l1dMSHR.Allocate(line, false)
	if onMiss != nil {
		m.EarlyMiss = append(m.EarlyMiss, onMiss)
	}
	if noWait {
		notified := false
		fire := func(o Outcome) {
			if !notified {
				notified = true
				done(o)
			}
		}
		// Early notification when the LLC lookup resolves as a miss; if the
		// LLC hits instead, the normal fill path completes quickly.
		m.EarlyMiss = append(m.EarlyMiss, func(cy int64) { fire(Outcome{When: cy, Level: LevelMem, Line: line}) })
		f.l1dMSHR.Merge(m, true, cache.Waiter{Done: fire})
	} else {
		f.l1dMSHR.Merge(m, true, cache.Waiter{Done: done})
	}
	h.sendLLC(req, now, line, kindData)
	return true
}

// Store issues requestor 0's data write (write-allocate, write-back); StoreR
// addresses any requestor. The callback fires when the line is writable in
// the L1D. Store reports false when the L1D MSHR file is full.
func (h *Hierarchy) Store(now int64, addr uint64, done func(Outcome)) bool {
	return h.StoreR(0, now, addr, done)
}

func (h *Hierarchy) StoreR(req int, now int64, addr uint64, done func(Outcome)) bool {
	f := &h.fr[req]
	h.Stores++
	f.st.Stores++
	if hit, _ := f.l1d.Lookup(addr); hit {
		f.l1d.MarkDirty(addr)
		h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelL1, line: f.l1d.LineAddr(addr), done: done})
		return true
	}
	line := f.l1d.LineAddr(addr)
	if m, ok := f.l1dMSHR.Lookup(line); ok {
		f.l1dMSHR.Merge(m, true, cache.Waiter{Done: done, MarkDirty: true})
		return true
	}
	if f.l1dMSHR.FullNow() {
		return false
	}
	m := f.l1dMSHR.Allocate(line, false)
	f.l1dMSHR.Merge(m, true, cache.Waiter{Done: done, MarkDirty: true})
	h.sendLLC(req, now, line, kindData)
	return true
}

// Fetch issues requestor 0's instruction read; FetchR addresses any
// requestor. It reports false when the L1I MSHR file is full.
func (h *Hierarchy) Fetch(now int64, addr uint64, done func(Outcome)) bool {
	return h.FetchR(0, now, addr, done)
}

func (h *Hierarchy) FetchR(req int, now int64, addr uint64, done func(Outcome)) bool {
	f := &h.fr[req]
	h.Fetches++
	f.st.Fetches++
	if hit, _ := f.l1i.Lookup(addr); hit {
		h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelL1, line: f.l1i.LineAddr(addr), done: done})
		return true
	}
	line := f.l1i.LineAddr(addr)
	if m, ok := f.l1iMSHR.Lookup(line); ok {
		f.l1iMSHR.Merge(m, true, cache.Waiter{Done: done})
		return true
	}
	if f.l1iMSHR.FullNow() {
		return false
	}
	m := f.l1iMSHR.Allocate(line, false)
	f.l1iMSHR.Merge(m, true, cache.Waiter{Done: done})
	h.sendLLC(req, now, line, kindInstr)
	return true
}

func fillLevel(m *cache.MSHR) Level {
	if m.FillFromMem {
		return LevelMem
	}
	return LevelLLC
}

// llcAccess handles an L1-level miss (or a prefetch probe) arriving at the
// shared LLC on behalf of requestor req.
func (h *Hierarchy) llcAccess(req int, line uint64, kind reqKind) {
	f := &h.fr[req]
	demand := kind != kindPrefetch
	hit, wasPf := h.llc.Lookup(line)
	if demand {
		h.LLCDemandAccesses++
		f.st.LLCDemandAccesses++
		if !hit {
			h.LLCDemandMisses++
			f.st.LLCDemandMisses++
			if f.onLLCMiss != nil {
				f.onLLCMiss(h.now, line, kind == kindInstr)
			}
		}
		if h.pf != nil {
			for _, pa := range h.pf.Train(line, hit, wasPf) {
				h.issuePrefetch(req, pa)
			}
		}
	}
	if hit {
		h.scheduleEv(h.now+int64(h.cfg.LLCLatency), event{kind: evFillL1, line: line, req: int32(req), rk: kind})
		return
	}
	// LLC miss: the requester learns it is DRAM-bound now, even if the miss
	// has to wait for an MSHR or queue slot (runahead must be able to poison
	// and move past it immediately).
	h.noteEarlyMiss(req, line, kind)
	if m, ok := h.llcMSHR.Lookup(line); ok {
		if demand && m.Prefetch && h.pf != nil {
			h.pf.NoteLatePrefetch()
		}
		h.llcMSHR.Merge(m, demand, cache.Waiter{})
		h.attachL1Fill(req, m, kind)
		return
	}
	if !h.tryLLCMiss(req, line, kind) {
		// Only the back-pressured path pays for a closure; the common case
		// (an MSHR is free) allocates nothing here.
		h.llcRetry = append(h.llcRetry, func() bool { return h.tryLLCMiss(req, line, kind) })
	}
}

// tryLLCMiss allocates the LLC MSHR for a demand miss and sends the fill to
// DRAM. It reports false when the MSHR file is full and the miss must be
// retried next Tick.
func (h *Hierarchy) tryLLCMiss(req int, line uint64, kind reqKind) bool {
	if m, ok := h.llcMSHR.Lookup(line); ok {
		// While this miss sat in the retry backlog, another access to the
		// same line (an instruction and a data miss can share one) got its
		// MSHR; join the in-flight fill instead of double-allocating.
		if kind != kindPrefetch && m.Prefetch && h.pf != nil {
			h.pf.NoteLatePrefetch()
		}
		h.llcMSHR.Merge(m, kind != kindPrefetch, cache.Waiter{})
		h.attachL1Fill(req, m, kind)
		return true
	}
	if h.llcMSHR.FullNow() {
		return false
	}
	m := h.llcMSHR.Allocate(line, false)
	m.Req = req
	m.FillFromMem = true
	h.attachL1Fill(req, m, kind)
	h.DRAMReadsDemand++
	h.fr[req].st.DRAMReadsDemand++
	r := h.newReq(req, line, false)
	r.DoneR = h.demandDone
	h.enqueueDRAM(r)
	return true
}

// noteEarlyMiss delivers runahead early-miss notifications for data misses
// that are now known to be DRAM-bound. line arrives in the shared domain
// and is mapped back to the requestor's local space for the L1 MSHR lookup.
func (h *Hierarchy) noteEarlyMiss(req int, line uint64, kind reqKind) {
	if kind != kindData {
		return
	}
	line &^= reqBase(req)
	if m, ok := h.fr[req].l1dMSHR.Lookup(line); ok {
		m.FillFromMem = true
		for _, f := range m.EarlyMiss {
			f(h.now)
		}
		m.EarlyMiss = nil
	}
}

// attachL1Fill arranges for requestor req's L1 fill when the LLC-level MSHR
// completes. The waiters are the fill functions cached on the front at
// construction (the fill loop hands them the line via the Outcome), so no
// closure is allocated per LLC miss. A prefetch probe attaches no waiter —
// the LLC fill itself is the whole effect — but still merges so the
// demand-conversion bookkeeping runs.
func (h *Hierarchy) attachL1Fill(req int, m *cache.MSHR, kind reqKind) {
	var w cache.Waiter
	switch kind {
	case kindData:
		w.Done = h.fr[req].fillL1Data
	case kindInstr:
		w.Done = h.fr[req].fillL1Instr
	}
	h.llcMSHR.Merge(m, kind != kindPrefetch, w)
}

// fillL1 delivers a line into requestor req's appropriate L1 and completes
// its MSHR. fromMem marks fills whose data came from DRAM. Every caller —
// the LLC-hit fill event and the LLC MSHR completion waiters — carries the
// shared-domain line, mapped back to the requestor's local space here;
// outcomes delivered to the core use the local line, matching the L1-hit
// paths.
func (h *Hierarchy) fillL1(req int, line uint64, kind reqKind, fromMem bool) {
	f := &h.fr[req]
	line &^= reqBase(req)
	switch kind {
	case kindData:
		if _, ok := f.l1dMSHR.Lookup(line); !ok {
			return // e.g. duplicate fill after an inclusion invalidation
		}
		v := f.l1d.Insert(line, false)
		if v.Valid && v.Dirty {
			// Write back into the (inclusive) LLC; if it lost the line,
			// forward to memory.
			if !h.llc.MarkDirty(v.Addr | reqBase(req)) {
				h.writeDRAM(req, v.Addr|reqBase(req))
			}
		}
		m := f.l1dMSHR.Complete(line)
		if fromMem {
			m.FillFromMem = true
		}
		o := Outcome{When: h.now, Level: fillLevel(m), Line: line}
		for _, w := range m.Waiters {
			if w.MarkDirty {
				f.l1d.MarkDirty(line)
			}
			w.Done(o)
		}
		f.l1dMSHR.Recycle(m)
	case kindInstr:
		if _, ok := f.l1iMSHR.Lookup(line); !ok {
			return
		}
		f.l1i.Insert(line, false)
		m := f.l1iMSHR.Complete(line)
		if fromMem {
			m.FillFromMem = true
		}
		o := Outcome{When: h.now, Level: fillLevel(m), Line: line}
		for _, w := range m.Waiters {
			w.Done(o)
		}
		f.l1iMSHR.Recycle(m)
	}
}

// fillLLC inserts a line arriving from DRAM and completes the LLC MSHR.
func (h *Hierarchy) fillLLC(line uint64, prefetched bool) {
	if _, ok := h.llcMSHR.Lookup(line); !ok {
		return
	}
	m := h.llcMSHR.Complete(line)
	// A prefetch that a demand merged into fills as a demand line.
	pfBit := prefetched && m.Prefetch
	v := h.llc.Insert(line, pfBit)
	if v.Valid {
		// Inclusion: drop the L1 copies, folding their dirtiness into the
		// victim. The victim's region names its owner — no other
		// requestor's L1 can hold it.
		dirty := v.Dirty
		if owner := int(v.Addr >> reqShift); owner < len(h.fr) {
			local := v.Addr &^ reqBase(owner)
			if _, d := h.fr[owner].l1d.Invalidate(local); d {
				dirty = true
			}
			h.fr[owner].l1i.Invalidate(local)
		}
		if dirty {
			h.writeDRAM(m.Req, v.Addr)
		}
		if pfBit && h.pf != nil {
			h.pf.NotePrefetchEviction(v.Addr)
		}
	}
	o := Outcome{When: h.now, Level: fillLevel(m), Line: m.LineAddr}
	for _, w := range m.Waiters {
		w.Done(o)
	}
	h.llcMSHR.Recycle(m)
}

// issuePrefetch injects a prefetch for line addr into the LLC miss path,
// attributed to the requestor whose access trained it. Prefetches are
// droppable: full structures silently discard them.
func (h *Hierarchy) issuePrefetch(req int, addr uint64) {
	line := h.llc.LineAddr(addr)
	if h.llc.Probe(line) {
		return
	}
	if _, ok := h.llcMSHR.Lookup(line); ok {
		return
	}
	if h.llcMSHR.FullNow() {
		return
	}
	m := h.llcMSHR.Allocate(line, true)
	m.Req = req
	h.DRAMReadsPrefetch++
	h.fr[req].st.DRAMReadsPrefetch++
	r := h.newReq(req, line, false)
	r.DoneR = h.prefetchDone
	h.enqueueDRAM(r)
}

func (h *Hierarchy) writeDRAM(req int, line uint64) {
	h.DRAMWrites++
	h.fr[req].st.DRAMWrites++
	h.enqueueDRAM(h.newReq(req, line, true))
}

func (h *Hierarchy) enqueueDRAM(r *dram.Request) {
	if h.dramWait.len() > 0 || !h.mem.Enqueue(r) {
		h.dramWait.push(r)
	}
}

// Drained reports whether no activity is pending anywhere in the hierarchy
// (for tests and snapshot gating).
func (h *Hierarchy) Drained() bool {
	if len(h.events) != 0 || h.dramWait.len() != 0 || len(h.llcRetry) != 0 ||
		h.arb.pending != 0 || h.mem.Pending() != 0 || h.llcMSHR.Outstanding() != 0 {
		return false
	}
	for i := range h.fr {
		if h.fr[i].l1dMSHR.Outstanding() != 0 || h.fr[i].l1iMSHR.Outstanding() != 0 {
			return false
		}
	}
	return true
}

// ResetStats zeroes all statistics counters (aggregate and per-requestor)
// while preserving cache, MSHR, DRAM and prefetcher state — used by
// harnesses to exclude warmup from measurements.
func (h *Hierarchy) ResetStats() {
	h.Loads, h.Stores, h.Fetches = 0, 0, 0
	h.LLCDemandAccesses, h.LLCDemandMisses = 0, 0
	h.DRAMReadsDemand, h.DRAMReadsPrefetch, h.DRAMWrites = 0, 0, 0
	for i := range h.fr {
		f := &h.fr[i]
		f.st = ReqStats{}
		for _, c := range []*cache.Cache{f.l1i, f.l1d} {
			c.Hits, c.Misses, c.Evictions = 0, 0, 0
		}
		for _, mf := range []*cache.MSHRFile{f.l1iMSHR, f.l1dMSHR} {
			mf.Allocs, mf.Merges, mf.Full = 0, 0, 0
		}
	}
	h.llc.Hits, h.llc.Misses, h.llc.Evictions = 0, 0, 0
	h.llcMSHR.Allocs, h.llcMSHR.Merges, h.llcMSHR.Full = 0, 0, 0
	h.mem.ResetStats()
	if h.pf != nil {
		h.pf.ResetStats()
	}
}
