// Package memsys assembles the memory hierarchy of Table 1: 32KB L1
// instruction and data caches (3-cycle), a 1MB inclusive last-level cache
// (18-cycle), MSHRs at each level, the stream prefetcher (prefetching into
// the LLC), and the DDR3 memory controller. It is a pure timing model —
// data values live in the functional memory image owned by the core.
//
// The hierarchy is driven by the core clock: call Tick once per cycle, and
// issue accesses with Load/Store/Fetch. Completion is delivered through
// callbacks carrying the cycle and the deepest level the access reached.
// Loads may be issued "no-wait" (runahead semantics): the callback then
// fires as soon as an LLC miss is discovered, while the fill itself keeps
// going in the background — that background fill is exactly runahead's
// prefetching effect.
package memsys

import (
	"fmt"

	"runaheadsim/internal/cache"
	"runaheadsim/internal/dram"
	"runaheadsim/internal/prefetch"
)

// Level is the deepest level an access had to reach. Defined in package
// cache (so MSHR waiters can carry completion callbacks without adapter
// closures) and re-exported here for the hierarchy's public API.
type Level = cache.Level

// Hierarchy levels.
const (
	LevelL1  = cache.LevelL1
	LevelLLC = cache.LevelLLC
	LevelMem = cache.LevelMem
)

// Outcome reports the completion of an access; see cache.Outcome.
type Outcome = cache.Outcome

// Config describes the hierarchy.
type Config struct {
	L1I, L1D, LLC                cache.Config
	L1Latency, LLCLatency        int
	L1DMSHRs, L1IMSHRs, LLCMSHRs int
	DRAM                         dram.Config
	// EnablePrefetch turns on the prefetcher at the LLC.
	EnablePrefetch bool
	// PrefetchKind selects the engine: "stream" (the paper's Table 1
	// prefetcher, default) or "delta" (the region-delta/stride alternative
	// from the related-work comparison).
	PrefetchKind string
	Prefetch     prefetch.Config
	DeltaPF      prefetch.DeltaConfig
}

// DefaultConfig matches Table 1 (prefetcher disabled; the baseline is
// no-prefetching).
func DefaultConfig() Config {
	return Config{
		L1I:            cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		LLC:            cache.Config{Name: "LLC", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
		L1Latency:      3,
		LLCLatency:     18,
		L1DMSHRs:       32,
		L1IMSHRs:       8,
		LLCMSHRs:       64,
		DRAM:           dram.DefaultConfig(),
		EnablePrefetch: false,
		PrefetchKind:   "stream",
		Prefetch:       prefetch.DefaultConfig(),
		DeltaPF:        prefetch.DefaultDeltaConfig(),
	}
}

type reqKind uint8

const (
	kindData reqKind = iota
	kindInstr
	kindPrefetch
)

// Never is the NextEvent value of a hierarchy with no pending work: nothing
// will happen until a new access arrives.
const Never = int64(1<<63 - 1)

// evKind discriminates the typed scheduled events. Events used to be
// closures; on memory-bound runs the per-hop closure allocations dominated
// the heap profile, so the payload now lives in the event value itself and
// only the caller-provided completion callbacks remain funcs.
type evKind uint8

const (
	evDone      evKind = iota // fire done(Outcome{h.now, lvl})
	evMiss                    // fire miss(h.now)
	evLLCAccess               // llcAccess(line, rk)
	evFillL1                  // fillL1(line, rk, false) — LLC-hit fill
	evFillLLC                 // fillLLC(line, pf) — line arrived from DRAM
)

// event is one scheduled hierarchy action.
type event struct {
	cycle int64
	seq   uint64
	kind  evKind
	line  uint64
	rk    reqKind
	lvl   Level
	pf    bool
	done  func(Outcome)
	miss  func(int64)
}

// fire dispatches the event at cycle h.now.
func (h *Hierarchy) fire(e *event) {
	switch e.kind {
	case evDone:
		e.done(Outcome{When: h.now, Level: e.lvl, Line: e.line})
	case evMiss:
		e.miss(h.now)
	case evLLCAccess:
		h.llcAccess(e.line, e.rk)
	case evFillL1:
		h.fillL1(e.line, e.rk, false)
	case evFillLLC:
		h.fillLLC(e.line, e.pf)
	}
}

// reqRing is a FIFO of DRAM requests backed by a slice with a moving head.
// The old `q = q[1:]` head-slicing kept every granted *dram.Request alive in
// the backing array until the whole queue drained; the ring nils slots as
// they pop and compacts once the dead prefix dominates.
type reqRing struct {
	buf  []*dram.Request
	head int
}

func (q *reqRing) len() int             { return len(q.buf) - q.head }
func (q *reqRing) front() *dram.Request { return q.buf[q.head] }
func (q *reqRing) push(r *dram.Request) { q.buf = append(q.buf, r) }
func (q *reqRing) pop() {
	q.buf[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf, q.head = q.buf[:0], 0
	case q.head >= 64 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf, q.head = q.buf[:n], 0
	}
}

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (cycle, seq). container/heap would box every event into an interface on
// Push and Pop — two heap allocations per hierarchy hop, a dominant term in
// memory-bound allocation profiles — so the sift loops are written out here
// (mirroring core's wakeup-queue heap).
type eventHeap []event

func eventBefore(a, b *event) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	*h = s
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !eventBefore(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release callback references held by the dead tail slot
	s = s[:n]
	*h = s
	for i := 0; ; {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventBefore(&s[r], &s[child]) {
			child = r
		}
		if !eventBefore(&s[child], &s[i]) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return top
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	cfg Config

	l1i, l1d, llc             *cache.Cache
	l1iMSHR, l1dMSHR, llcMSHR *cache.MSHRFile
	mem                       *dram.Controller
	pf                        prefetch.Engine

	events   eventHeap
	seq      uint64
	now      int64
	dramWait reqRing       // overflow when the 64-entry memory queue is full
	llcRetry []func() bool // demand misses waiting for a free LLC MSHR

	// fillL1Data/fillL1Instr are the LLC-MSHR waiters attachL1Fill installs,
	// cached once here so no closure is allocated per LLC miss (the Outcome
	// carries the line).
	fillL1Data  func(Outcome) //simlint:nosnapshot closure rebuilt by the constructor
	fillL1Instr func(Outcome) //simlint:nosnapshot closure rebuilt by the constructor

	// reqPool recycles dram.Request values: the controller hands each
	// request back through its Release hook after the completion callback
	// runs, and the two shared DoneR method values below replace the
	// per-request fill closures.
	//simlint:nosnapshot host-side recycle pool; its contents never reach simulated state
	reqPool      []*dram.Request
	demandDone   func(r *dram.Request, cy int64) //simlint:nosnapshot method value rebuilt by the constructor
	prefetchDone func(r *dram.Request, cy int64) //simlint:nosnapshot method value rebuilt by the constructor

	// lateEvents counts events that fired after their scheduled cycle. In a
	// correctly driven hierarchy this never happens — Tick runs at every
	// cycle the event horizon names — so a nonzero count means the clock
	// warped over a due event; CheckInvariants reports it.
	//simlint:nosnapshot sanitizer tripwire; zero in any hierarchy healthy enough to snapshot
	lateEvents uint64

	// OnLLCMiss, when non-nil, is invoked on every LLC demand miss (the
	// observability layer's cache-miss event hook). It fires at miss
	// discovery, before MSHR allocation, so the consumer sees misses that
	// merge or wait for structural resources too.
	//simlint:nosnapshot host hook; the restoring host attaches its own
	OnLLCMiss func(now int64, line uint64, instr bool)

	// Statistics.
	Loads, Stores, Fetches uint64
	LLCDemandAccesses      uint64
	LLCDemandMisses        uint64
	DRAMReadsDemand        uint64
	DRAMReadsPrefetch      uint64
	DRAMWrites             uint64
}

// New assembles an idle hierarchy.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:     cfg,
		l1i:     cache.New(cfg.L1I),
		l1d:     cache.New(cfg.L1D),
		llc:     cache.New(cfg.LLC),
		l1iMSHR: cache.NewMSHRFile(cfg.L1IMSHRs),
		l1dMSHR: cache.NewMSHRFile(cfg.L1DMSHRs),
		llcMSHR: cache.NewMSHRFile(cfg.LLCMSHRs),
		mem:     dram.New(cfg.DRAM),
	}
	// Shared completion callbacks and the request free pool: one closure per
	// hierarchy instead of one per miss.
	h.fillL1Data = func(o Outcome) { h.fillL1(o.Line, kindData, true) }
	h.fillL1Instr = func(o Outcome) { h.fillL1(o.Line, kindInstr, true) }
	h.demandDone = func(r *dram.Request, cy int64) {
		h.scheduleEv(cy, event{kind: evFillLLC, line: r.LineAddr, pf: false})
	}
	h.prefetchDone = func(r *dram.Request, cy int64) {
		h.scheduleEv(cy, event{kind: evFillLLC, line: r.LineAddr, pf: true})
	}
	h.mem.Release = func(r *dram.Request) {
		*r = dram.Request{}
		h.reqPool = append(h.reqPool, r)
	}
	if cfg.EnablePrefetch {
		switch cfg.PrefetchKind {
		case "", "stream":
			pcfg := cfg.Prefetch
			pcfg.LineBytes = cfg.LLC.LineBytes
			h.pf = prefetch.New(pcfg)
		case "delta":
			dcfg := cfg.DeltaPF
			dcfg.LineBytes = cfg.LLC.LineBytes
			h.pf = prefetch.NewDelta(dcfg)
		default:
			panic(fmt.Sprintf("memsys: unknown prefetch kind %q", cfg.PrefetchKind))
		}
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// DRAM exposes the memory controller (for statistics).
func (h *Hierarchy) DRAM() *dram.Controller { return h.mem }

// Prefetcher exposes the prefetch engine, nil when disabled.
func (h *Hierarchy) Prefetcher() prefetch.Engine { return h.pf }

// L1D exposes the L1 data cache (for statistics).
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }

// L1I exposes the L1 instruction cache (for statistics).
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }

// LLC exposes the last-level cache (for statistics).
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// TotalDRAMRequests returns all granted DRAM requests (demand + prefetch +
// writeback), the quantity Figure 16 normalizes.
func (h *Hierarchy) TotalDRAMRequests() uint64 {
	return h.DRAMReadsDemand + h.DRAMReadsPrefetch + h.DRAMWrites
}

// OutstandingDataMisses returns the number of in-flight L1D misses.
func (h *Hierarchy) OutstandingDataMisses() int { return h.l1dMSHR.Outstanding() }

// MSHRFiles returns the three MSHR files (instruction, data, LLC) so the
// self-profiling exporter can read their pool counters.
func (h *Hierarchy) MSHRFiles() (l1i, l1d, llc *cache.MSHRFile) {
	return h.l1iMSHR, h.l1dMSHR, h.llcMSHR
}

// scheduleEv enqueues ev to fire at cycle (clamped to at least the next
// cycle, like every hierarchy hop).
func (h *Hierarchy) scheduleEv(cycle int64, ev event) {
	if cycle <= h.now {
		cycle = h.now + 1
	}
	h.seq++
	ev.cycle, ev.seq = cycle, h.seq
	h.events.push(ev)
}

// newReq returns a request from the free pool (or a fresh one), stamped with
// the given fields.
func (h *Hierarchy) newReq(line uint64, write bool) *dram.Request {
	var r *dram.Request
	if n := len(h.reqPool); n > 0 {
		r = h.reqPool[n-1]
		h.reqPool[n-1] = nil
		h.reqPool = h.reqPool[:n-1]
	} else {
		r = &dram.Request{}
	}
	r.LineAddr, r.Write, r.Arrival = line, write, h.now
	return r
}

// Tick advances the hierarchy to cycle now, firing due events, retrying
// back-pressured requests, and granting DRAM requests.
func (h *Hierarchy) Tick(now int64) {
	h.now = now
	// Retry demand misses blocked on a full LLC MSHR file.
	if len(h.llcRetry) > 0 {
		kept := h.llcRetry[:0]
		for _, try := range h.llcRetry {
			if !try() {
				kept = append(kept, try)
			}
		}
		for i := len(kept); i < len(h.llcRetry); i++ {
			h.llcRetry[i] = nil // don't retain satisfied retries in the tail
		}
		h.llcRetry = kept
	}
	// Drain the overflow queue into the 64-entry memory queue.
	for h.dramWait.len() > 0 && h.mem.Enqueue(h.dramWait.front()) {
		h.dramWait.pop()
	}
	h.mem.Tick(now)
	for len(h.events) > 0 && h.events[0].cycle <= now {
		e := h.events.pop()
		if e.cycle < now {
			h.lateEvents++ // a warped clock jumped over a due event
		}
		h.fire(&e)
	}
}

// NextEvent returns the next cycle at which the hierarchy has work to do:
// the minimum of the event-heap top, the DRAM controller's grant horizon,
// and — while any retry backlog exists — the very next cycle (back-pressured
// work is retried every Tick). It returns Never when the hierarchy is fully
// idle. The value is a safe lower bound: ticking earlier than it is a no-op,
// ticking every cycle up to it is exactly the per-cycle reference behavior,
// and no event, retry, or grant can occur strictly before it.
func (h *Hierarchy) NextEvent() int64 {
	if len(h.llcRetry) > 0 || h.dramWait.len() > 0 {
		return h.now + 1
	}
	next := Never
	if len(h.events) > 0 {
		next = h.events[0].cycle
	}
	if nr := h.mem.NextReady(h.now); nr < next {
		next = nr
	}
	return next
}

// Load issues a data read at cycle now.
//
// onMiss (optional) fires as soon as the access is known to be DRAM-bound —
// the signal that lets a blocked ROB head trigger runahead without waiting
// for the data.
//
// When noWait is set (runahead semantics), done itself fires at miss
// discovery (Level Mem, no data) instead of at data arrival, and the fill
// continues in the background.
//
// Load reports false when the L1D MSHR file is full and the access must be
// retried.
//
// LoadHit is the allocation-free fast path for the common L1D-hit case: if
// addr hits, it counts the access exactly as Load's hit path would (Loads,
// the cache's hit statistic and LRU refresh) and reports true, leaving the
// completion timing — L1Latency cycles, like every hierarchy hop — to the
// caller, which can schedule a typed event of its own instead of threading a
// callback through the hierarchy. On a miss nothing is counted or disturbed
// and the caller falls back to Load.
func (h *Hierarchy) LoadHit(addr uint64) bool {
	if !h.l1d.Probe(addr) {
		return false
	}
	h.Loads++
	h.l1d.Lookup(addr)
	return true
}

func (h *Hierarchy) Load(now int64, addr uint64, noWait bool, onMiss func(int64), done func(Outcome)) bool {
	h.Loads++
	if hit, _ := h.l1d.Lookup(addr); hit {
		h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelL1, line: h.l1d.LineAddr(addr), done: done})
		return true
	}
	line := h.l1d.LineAddr(addr)
	if m, ok := h.l1dMSHR.Lookup(line); ok {
		if onMiss != nil {
			if m.FillFromMem {
				h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evMiss, miss: onMiss})
			} else {
				m.EarlyMiss = append(m.EarlyMiss, onMiss)
			}
		}
		if noWait {
			// The line is already in flight; runahead treats it as a miss in
			// progress and moves on without waiting.
			h.l1dMSHR.Merge(m, true, cache.Waiter{})
			h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelMem, done: done})
			return true
		}
		h.l1dMSHR.Merge(m, true, cache.Waiter{Done: done})
		return true
	}
	if h.l1dMSHR.FullNow() {
		return false
	}
	m := h.l1dMSHR.Allocate(line, false)
	if onMiss != nil {
		m.EarlyMiss = append(m.EarlyMiss, onMiss)
	}
	if noWait {
		notified := false
		fire := func(o Outcome) {
			if !notified {
				notified = true
				done(o)
			}
		}
		// Early notification when the LLC lookup resolves as a miss; if the
		// LLC hits instead, the normal fill path completes quickly.
		m.EarlyMiss = append(m.EarlyMiss, func(cy int64) { fire(Outcome{When: cy, Level: LevelMem, Line: line}) })
		h.l1dMSHR.Merge(m, true, cache.Waiter{Done: fire})
	} else {
		h.l1dMSHR.Merge(m, true, cache.Waiter{Done: done})
	}
	h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evLLCAccess, line: line, rk: kindData})
	return true
}

// Store issues a data write at cycle now (write-allocate, write-back). The
// callback fires when the line is writable in the L1D. Store reports false
// when the L1D MSHR file is full.
func (h *Hierarchy) Store(now int64, addr uint64, done func(Outcome)) bool {
	h.Stores++
	if hit, _ := h.l1d.Lookup(addr); hit {
		h.l1d.MarkDirty(addr)
		h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelL1, line: h.l1d.LineAddr(addr), done: done})
		return true
	}
	line := h.l1d.LineAddr(addr)
	if m, ok := h.l1dMSHR.Lookup(line); ok {
		h.l1dMSHR.Merge(m, true, cache.Waiter{Done: done, MarkDirty: true})
		return true
	}
	if h.l1dMSHR.FullNow() {
		return false
	}
	m := h.l1dMSHR.Allocate(line, false)
	h.l1dMSHR.Merge(m, true, cache.Waiter{Done: done, MarkDirty: true})
	h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evLLCAccess, line: line, rk: kindData})
	return true
}

// Fetch issues an instruction read at cycle now. It reports false when the
// L1I MSHR file is full.
func (h *Hierarchy) Fetch(now int64, addr uint64, done func(Outcome)) bool {
	h.Fetches++
	if hit, _ := h.l1i.Lookup(addr); hit {
		h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evDone, lvl: LevelL1, line: h.l1i.LineAddr(addr), done: done})
		return true
	}
	line := h.l1i.LineAddr(addr)
	if m, ok := h.l1iMSHR.Lookup(line); ok {
		h.l1iMSHR.Merge(m, true, cache.Waiter{Done: done})
		return true
	}
	if h.l1iMSHR.FullNow() {
		return false
	}
	m := h.l1iMSHR.Allocate(line, false)
	h.l1iMSHR.Merge(m, true, cache.Waiter{Done: done})
	h.scheduleEv(now+int64(h.cfg.L1Latency), event{kind: evLLCAccess, line: line, rk: kindInstr})
	return true
}

func fillLevel(m *cache.MSHR) Level {
	if m.FillFromMem {
		return LevelMem
	}
	return LevelLLC
}

// llcAccess handles an L1-level miss (or a prefetch probe) arriving at the
// LLC.
func (h *Hierarchy) llcAccess(line uint64, kind reqKind) {
	demand := kind != kindPrefetch
	hit, wasPf := h.llc.Lookup(line)
	if demand {
		h.LLCDemandAccesses++
		if !hit {
			h.LLCDemandMisses++
			if h.OnLLCMiss != nil {
				h.OnLLCMiss(h.now, line, kind == kindInstr)
			}
		}
		if h.pf != nil {
			for _, pa := range h.pf.Train(line, hit, wasPf) {
				h.issuePrefetch(pa)
			}
		}
	}
	if hit {
		h.scheduleEv(h.now+int64(h.cfg.LLCLatency), event{kind: evFillL1, line: line, rk: kind})
		return
	}
	// LLC miss: the requester learns it is DRAM-bound now, even if the miss
	// has to wait for an MSHR or queue slot (runahead must be able to poison
	// and move past it immediately).
	h.noteEarlyMiss(line, kind)
	if m, ok := h.llcMSHR.Lookup(line); ok {
		if demand && m.Prefetch && h.pf != nil {
			h.pf.NoteLatePrefetch()
		}
		h.llcMSHR.Merge(m, demand, cache.Waiter{})
		h.attachL1Fill(m, line, kind)
		return
	}
	if !h.tryLLCMiss(line, kind) {
		// Only the back-pressured path pays for a closure; the common case
		// (an MSHR is free) allocates nothing here.
		h.llcRetry = append(h.llcRetry, func() bool { return h.tryLLCMiss(line, kind) })
	}
}

// tryLLCMiss allocates the LLC MSHR for a demand miss and sends the fill to
// DRAM. It reports false when the MSHR file is full and the miss must be
// retried next Tick.
func (h *Hierarchy) tryLLCMiss(line uint64, kind reqKind) bool {
	if h.llcMSHR.FullNow() {
		return false
	}
	m := h.llcMSHR.Allocate(line, false)
	m.FillFromMem = true
	h.attachL1Fill(m, line, kind)
	h.DRAMReadsDemand++
	r := h.newReq(line, false)
	r.DoneR = h.demandDone
	h.enqueueDRAM(r)
	return true
}

// noteEarlyMiss delivers runahead early-miss notifications for data misses
// that are now known to be DRAM-bound.
func (h *Hierarchy) noteEarlyMiss(line uint64, kind reqKind) {
	if kind != kindData {
		return
	}
	if m, ok := h.l1dMSHR.Lookup(line); ok {
		m.FillFromMem = true
		for _, f := range m.EarlyMiss {
			f(h.now)
		}
		m.EarlyMiss = nil
	}
}

// attachL1Fill arranges for the L1 fill when the LLC-level MSHR completes.
// The waiters are the two fill functions cached on the Hierarchy at
// construction (the fill loop hands them the line via the Outcome), so no
// closure is allocated per LLC miss. A prefetch probe attaches no waiter —
// the LLC fill itself is the whole effect — but still merges so the
// demand-conversion bookkeeping runs.
func (h *Hierarchy) attachL1Fill(m *cache.MSHR, line uint64, kind reqKind) {
	var w cache.Waiter
	switch kind {
	case kindData:
		w.Done = h.fillL1Data
	case kindInstr:
		w.Done = h.fillL1Instr
	}
	h.llcMSHR.Merge(m, kind != kindPrefetch, w)
}

// fillL1 delivers a line into the appropriate L1 and completes its MSHR.
// fromMem marks fills whose data came from DRAM.
func (h *Hierarchy) fillL1(line uint64, kind reqKind, fromMem bool) {
	switch kind {
	case kindData:
		if _, ok := h.l1dMSHR.Lookup(line); !ok {
			return // e.g. duplicate fill after an inclusion invalidation
		}
		v := h.l1d.Insert(line, false)
		if v.Valid && v.Dirty {
			// Write back into the (inclusive) LLC; if it lost the line,
			// forward to memory.
			if !h.llc.MarkDirty(v.Addr) {
				h.writeDRAM(v.Addr)
			}
		}
		m := h.l1dMSHR.Complete(line)
		if fromMem {
			m.FillFromMem = true
		}
		o := Outcome{When: h.now, Level: fillLevel(m), Line: line}
		for _, w := range m.Waiters {
			if w.MarkDirty {
				h.l1d.MarkDirty(line)
			}
			w.Done(o)
		}
		h.l1dMSHR.Recycle(m)
	case kindInstr:
		if _, ok := h.l1iMSHR.Lookup(line); !ok {
			return
		}
		h.l1i.Insert(line, false)
		m := h.l1iMSHR.Complete(line)
		if fromMem {
			m.FillFromMem = true
		}
		o := Outcome{When: h.now, Level: fillLevel(m), Line: line}
		for _, w := range m.Waiters {
			w.Done(o)
		}
		h.l1iMSHR.Recycle(m)
	}
}

// fillLLC inserts a line arriving from DRAM and completes the LLC MSHR.
func (h *Hierarchy) fillLLC(line uint64, prefetched bool) {
	if _, ok := h.llcMSHR.Lookup(line); !ok {
		return
	}
	m := h.llcMSHR.Complete(line)
	// A prefetch that a demand merged into fills as a demand line.
	pfBit := prefetched && m.Prefetch
	v := h.llc.Insert(line, pfBit)
	if v.Valid {
		// Inclusion: drop L1 copies, folding their dirtiness into the victim.
		dirty := v.Dirty
		if _, d := h.l1d.Invalidate(v.Addr); d {
			dirty = true
		}
		h.l1i.Invalidate(v.Addr)
		if dirty {
			h.writeDRAM(v.Addr)
		}
		if pfBit && h.pf != nil {
			h.pf.NotePrefetchEviction(v.Addr)
		}
	}
	o := Outcome{When: h.now, Level: fillLevel(m), Line: m.LineAddr}
	for _, w := range m.Waiters {
		w.Done(o)
	}
	h.llcMSHR.Recycle(m)
}

// issuePrefetch injects a prefetch for line addr into the LLC miss path.
// Prefetches are droppable: full structures silently discard them.
func (h *Hierarchy) issuePrefetch(addr uint64) {
	line := h.llc.LineAddr(addr)
	if h.llc.Probe(line) {
		return
	}
	if _, ok := h.llcMSHR.Lookup(line); ok {
		return
	}
	if h.llcMSHR.FullNow() {
		return
	}
	h.llcMSHR.Allocate(line, true)
	h.DRAMReadsPrefetch++
	r := h.newReq(line, false)
	r.DoneR = h.prefetchDone
	h.enqueueDRAM(r)
}

func (h *Hierarchy) writeDRAM(line uint64) {
	h.DRAMWrites++
	h.enqueueDRAM(h.newReq(line, true))
}

func (h *Hierarchy) enqueueDRAM(r *dram.Request) {
	if h.dramWait.len() > 0 || !h.mem.Enqueue(r) {
		h.dramWait.push(r)
	}
}

// Drained reports whether no activity is pending anywhere in the hierarchy
// (for tests).
func (h *Hierarchy) Drained() bool {
	return len(h.events) == 0 && h.dramWait.len() == 0 && len(h.llcRetry) == 0 &&
		h.mem.Pending() == 0 && h.l1dMSHR.Outstanding() == 0 &&
		h.l1iMSHR.Outstanding() == 0 && h.llcMSHR.Outstanding() == 0
}

// ResetStats zeroes all statistics counters while preserving cache, MSHR,
// DRAM and prefetcher state — used by harnesses to exclude warmup from
// measurements.
func (h *Hierarchy) ResetStats() {
	h.Loads, h.Stores, h.Fetches = 0, 0, 0
	h.LLCDemandAccesses, h.LLCDemandMisses = 0, 0
	h.DRAMReadsDemand, h.DRAMReadsPrefetch, h.DRAMWrites = 0, 0, 0
	for _, c := range []*cache.Cache{h.l1i, h.l1d, h.llc} {
		c.Hits, c.Misses, c.Evictions = 0, 0, 0
	}
	for _, f := range []*cache.MSHRFile{h.l1iMSHR, h.l1dMSHR, h.llcMSHR} {
		f.Allocs, f.Merges, f.Full = 0, 0, 0
	}
	h.mem.ResetStats()
	if h.pf != nil {
		h.pf.ResetStats()
	}
}
