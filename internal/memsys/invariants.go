package memsys

import (
	"fmt"

	"runaheadsim/internal/cache"
)

// CheckInvariants verifies the hierarchy's structural invariants. The cheap
// per-requestor MSHR conservation checks always run; deep adds the
// full-array scans (LRU stack integrity and inclusive-LLC containment),
// which the sanitizer runs on a coarser interval. It returns the first
// violation found.
func (h *Hierarchy) CheckInvariants(deep bool) error {
	for i := range h.fr {
		f := &h.fr[i]
		if err := f.l1iMSHR.CheckConservation(); err != nil {
			return fmt.Errorf("req %d L1I MSHRs: %w", i, err)
		}
		if err := f.l1dMSHR.CheckConservation(); err != nil {
			return fmt.Errorf("req %d L1D MSHRs: %w", i, err)
		}
	}
	if err := h.llcMSHR.CheckConservation(); err != nil {
		return fmt.Errorf("LLC MSHRs: %w", err)
	}
	// Arbiter bookkeeping: the pending count is the sum of live queue
	// segments, and every queued entry belongs to a real requestor.
	queued := 0
	for r := range h.arb.q {
		seg := len(h.arb.q[r]) - h.arb.head[r]
		if seg < 0 {
			return fmt.Errorf("memsys: arbiter queue %d head %d past length %d", r, h.arb.head[r], len(h.arb.q[r]))
		}
		queued += seg
	}
	if queued != h.arb.pending {
		return fmt.Errorf("memsys: arbiter pending=%d but queues hold %d entries", h.arb.pending, queued)
	}
	// Event-horizon soundness: a late event means the warped clock jumped
	// over a due cycle, and a late DRAM grant horizon would make the
	// controller's fast path sleep through grantable work.
	if h.lateEvents > 0 {
		return fmt.Errorf("memsys: %d events fired after their scheduled cycle (clock warped over a due event)", h.lateEvents)
	}
	if err := h.mem.CheckInvariants(); err != nil {
		return err
	}
	if !deep {
		return nil
	}
	for i := range h.fr {
		f := &h.fr[i]
		for _, c := range []*cache.Cache{f.l1i, f.l1d} {
			if err := c.CheckIntegrity(); err != nil {
				return fmt.Errorf("req %d: %w", i, err)
			}
		}
	}
	if err := h.llc.CheckIntegrity(); err != nil {
		return err
	}
	return h.checkInclusion()
}

// checkInclusion verifies the inclusive-LLC property across every requestor:
// every valid L1 line is either present in the shared LLC or has its fill
// still in flight in the LLC MSHRs (an L1 fill is scheduled LLCLatency
// cycles after the LLC lookup, so the line is legitimately L1-bound before
// it lands).
func (h *Hierarchy) checkInclusion() error {
	var violation error
	check := func(req int, l1name string, l1 *cache.Cache) {
		base := reqBase(req)
		l1.ForEachValid(func(line uint64) {
			if violation != nil {
				return
			}
			// L1 lines are requestor-local; the shared LLC holds them in
			// the requestor's private region.
			if h.llc.Probe(line | base) {
				return
			}
			if _, ok := h.llcMSHR.Lookup(line | base); ok {
				return
			}
			violation = fmt.Errorf("inclusion broken: req %d %s holds line %#x absent from the LLC and its MSHRs", req, l1name, line)
		})
	}
	for i := range h.fr {
		check(i, "L1D", h.fr[i].l1d)
		check(i, "L1I", h.fr[i].l1i)
	}
	return violation
}
