package memsys

import (
	"fmt"

	"runaheadsim/internal/cache"
)

// CheckInvariants verifies the hierarchy's structural invariants. The cheap
// MSHR conservation checks always run; deep adds the full-array scans (LRU
// stack integrity and inclusive-LLC containment), which the sanitizer runs
// on a coarser interval. It returns the first violation found.
func (h *Hierarchy) CheckInvariants(deep bool) error {
	files := []struct {
		name string
		f    *cache.MSHRFile
	}{
		{"L1I", h.l1iMSHR},
		{"L1D", h.l1dMSHR},
		{"LLC", h.llcMSHR},
	}
	for _, mf := range files {
		if err := mf.f.CheckConservation(); err != nil {
			return fmt.Errorf("%s MSHRs: %w", mf.name, err)
		}
	}
	// Event-horizon soundness: a late event means the warped clock jumped
	// over a due cycle, and a late DRAM grant horizon would make the
	// controller's fast path sleep through grantable work.
	if h.lateEvents > 0 {
		return fmt.Errorf("memsys: %d events fired after their scheduled cycle (clock warped over a due event)", h.lateEvents)
	}
	if err := h.mem.CheckInvariants(); err != nil {
		return err
	}
	if !deep {
		return nil
	}
	for _, c := range []*cache.Cache{h.l1i, h.l1d, h.llc} {
		if err := c.CheckIntegrity(); err != nil {
			return err
		}
	}
	return h.checkInclusion()
}

// checkInclusion verifies the inclusive-LLC property: every valid L1 line is
// either present in the LLC or has its fill still in flight in the LLC MSHRs
// (an L1 fill is scheduled LLCLatency cycles after the LLC lookup, so the
// line is legitimately L1-bound before it lands).
func (h *Hierarchy) checkInclusion() error {
	var violation error
	check := func(l1name string, l1 *cache.Cache) {
		l1.ForEachValid(func(line uint64) {
			if violation != nil {
				return
			}
			if h.llc.Probe(line) {
				return
			}
			if _, ok := h.llcMSHR.Lookup(line); ok {
				return
			}
			violation = fmt.Errorf("inclusion broken: %s holds line %#x absent from the LLC and its MSHRs", l1name, line)
		})
	}
	check("L1D", h.l1d)
	check("L1I", h.l1i)
	return violation
}
