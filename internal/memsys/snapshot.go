package memsys

import (
	"fmt"

	"runaheadsim/internal/snapshot"
)

// SnapshotTo serializes the hierarchy. Scheduled events, MSHR waiters and
// queued DRAM requests are closures and cannot be serialized, so the whole
// hierarchy must be drained first (core.Drain runs the machine to such a
// point). Layout: shared clock/seq, the requestor count, each front's L1
// caches + MSHR files + per-requestor stats, then the shared LLC, LLC MSHRs,
// DRAM, prefetcher, and aggregate stats. The prefetch engine kind is
// recorded and verified so a snapshot taken with one engine cannot silently
// restore into another.
func (h *Hierarchy) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("memsys")
	if !h.Drained() {
		return fmt.Errorf("memsys: snapshotting an undrained hierarchy (events=%d dramWait=%d llcRetry=%d arb=%d pending=%d llcMSHRs=%d)",
			len(h.events), h.dramWait.len(), len(h.llcRetry), h.arb.pending,
			h.mem.Pending(), h.llcMSHR.Outstanding())
	}
	w.I64(h.now)
	w.U64(h.seq)
	w.Int(len(h.fr))
	w.Int(h.arb.next)
	for i := range h.fr {
		f := &h.fr[i]
		for _, c := range []interface {
			SnapshotTo(*snapshot.Writer) error
		}{f.l1i, f.l1d, f.l1iMSHR, f.l1dMSHR} {
			if err := c.SnapshotTo(w); err != nil {
				return err
			}
		}
		st := &f.st
		for _, v := range []uint64{
			st.Loads, st.Stores, st.Fetches,
			st.LLCDemandAccesses, st.LLCDemandMisses,
			st.DRAMReadsDemand, st.DRAMReadsPrefetch, st.DRAMWrites,
			st.LLCArbGrants, st.LLCArbWaitCycles,
		} {
			w.U64(v)
		}
	}
	for _, c := range []interface {
		SnapshotTo(*snapshot.Writer) error
	}{h.llc, h.llcMSHR, h.mem} {
		if err := c.SnapshotTo(w); err != nil {
			return err
		}
	}
	w.U8(h.pfKind())
	if h.pf != nil {
		if err := h.pf.SnapshotTo(w); err != nil {
			return err
		}
	}
	w.U64(h.Loads)
	w.U64(h.Stores)
	w.U64(h.Fetches)
	w.U64(h.LLCDemandAccesses)
	w.U64(h.LLCDemandMisses)
	w.U64(h.DRAMReadsDemand)
	w.U64(h.DRAMReadsPrefetch)
	w.U64(h.DRAMWrites)
	return nil
}

// pfKind encodes the configured prefetch engine for verification on restore.
func (h *Hierarchy) pfKind() uint8 {
	switch h.pf.(type) {
	case nil:
		return 0
	default:
		if h.cfg.PrefetchKind == "delta" {
			return 2
		}
		return 1
	}
}

// RestoreFrom reads state written by SnapshotTo into h, which must be built
// from the same configuration (including requestor count) and be drained.
func (h *Hierarchy) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("memsys")
	if !h.Drained() {
		r.Failf("memsys: restoring into an undrained hierarchy")
		return r.Err()
	}
	h.now = r.I64()
	h.seq = r.U64()
	if got := r.Int(); r.Err() == nil && got != len(h.fr) {
		r.Failf("memsys: hierarchy has %d requestors, snapshot has %d", len(h.fr), got)
	}
	h.arb.next = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := range h.fr {
		f := &h.fr[i]
		for _, c := range []interface {
			RestoreFrom(*snapshot.Reader) error
		}{f.l1i, f.l1d, f.l1iMSHR, f.l1dMSHR} {
			if err := c.RestoreFrom(r); err != nil {
				return err
			}
		}
		st := &f.st
		for _, p := range []*uint64{
			&st.Loads, &st.Stores, &st.Fetches,
			&st.LLCDemandAccesses, &st.LLCDemandMisses,
			&st.DRAMReadsDemand, &st.DRAMReadsPrefetch, &st.DRAMWrites,
			&st.LLCArbGrants, &st.LLCArbWaitCycles,
		} {
			*p = r.U64()
		}
	}
	for _, c := range []interface {
		RestoreFrom(*snapshot.Reader) error
	}{h.llc, h.llcMSHR, h.mem} {
		if err := c.RestoreFrom(r); err != nil {
			return err
		}
	}
	kind := r.U8()
	if r.Err() != nil {
		return r.Err()
	}
	if kind != h.pfKind() {
		r.Failf("memsys: snapshot has prefetch engine kind %d, hierarchy has %d", kind, h.pfKind())
		return r.Err()
	}
	if h.pf != nil {
		if err := h.pf.RestoreFrom(r); err != nil {
			return err
		}
	}
	h.Loads = r.U64()
	h.Stores = r.U64()
	h.Fetches = r.U64()
	h.LLCDemandAccesses = r.U64()
	h.LLCDemandMisses = r.U64()
	h.DRAMReadsDemand = r.U64()
	h.DRAMReadsPrefetch = r.U64()
	h.DRAMWrites = r.U64()
	return r.Err()
}
