package prog

import (
	"fmt"
	"strings"
)

// Disasm renders the program as a block-annotated listing, one uop per line
// with its address — the debugging view behind `runahead-sim -disasm`.
func Disasm(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %q: %d uops, %d blocks\n", p.Name, len(p.Uops), len(p.BlockStart))
	nextBlock := 0
	for i := range p.Uops {
		for nextBlock < len(p.BlockStart) && p.BlockStart[nextBlock] == i {
			fmt.Fprintf(&sb, "B%d:\n", nextBlock)
			nextBlock++
		}
		fmt.Fprintf(&sb, "  %#x: %v\n", p.AddrOf(i), &p.Uops[i])
	}
	return sb.String()
}
