package prog

import (
	"strings"
	"testing"

	"runaheadsim/internal/isa"
)

func TestBuilderEmitsEveryHelper(t *testing.T) {
	b := NewBuilder("helpers")
	slot := b.Alloc(64, 8)
	e := b.Block("e")
	target := b.Block("target")
	e.Movi(1, int64(slot)).
		Mov(2, 1).
		Addi(3, 2, 8).
		Add(4, 2, 3).
		Op(isa.XOR, 5, 4, 3).
		OpI(isa.MULI, 6, 5, 3).
		Ld(7, 1, 0).
		LdScaled(8, 1, 3, 8, 0).
		St(1, 8, 7).
		Nop(2).
		Beqz(7, target).
		Bnez(7, target).
		Blt(5, 6, target).
		Bge(5, 6, target).
		Jmp(target)
	target.Call(e, 9)
	// An extra block so CALL's fall-through (unused) stays in range.
	fin := b.Block("fin")
	fin.Ret(9)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 5 movi-ish + alu + mem + nops + 5 branches + call + ret
	if p.NumUops() != 18 {
		t.Fatalf("uop count = %d", p.NumUops())
	}
	if target.ID() != 1 {
		t.Fatalf("block id = %d", target.ID())
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild must panic on invalid programs")
		}
	}()
	b := NewBuilder("bad")
	b.Block("nonterminal").Movi(1, 1)
	b.MustBuild()
}

func TestValidateCatchesBadTargets(t *testing.T) {
	p := &Program{
		Name:       "manual",
		Uops:       []isa.Uop{{Op: isa.JMP, Target: 7}},
		BlockOf:    []isa.BlockID{0},
		BlockStart: []int{0},
		Init:       NewMemory(),
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "invalid block") {
		t.Fatalf("expected invalid-target error, got %v", err)
	}
}

func TestValidateEmptyProgram(t *testing.T) {
	p := &Program{Name: "empty", Init: NewMemory()}
	if err := p.Validate(); err == nil {
		t.Fatal("empty program must fail validation")
	}
}

func TestTakenTarget(t *testing.T) {
	b := NewBuilder("tt")
	e := b.Block("e")
	tgt := b.Block("t")
	e.Jmp(tgt)
	tgt.Movi(1, 1).Jmp(tgt)
	p := b.MustBuild()
	jmp := &p.Uops[0]
	if got := p.TakenTarget(jmp); got != p.BlockAddr(tgt.ID()) {
		t.Fatalf("TakenTarget = %#x", got)
	}
	ret := isa.Uop{Op: isa.RET}
	if p.TakenTarget(&ret) != 0 {
		t.Fatal("RET target must be dynamic (0)")
	}
}

func TestUopAt(t *testing.T) {
	b := NewBuilder("ua")
	e := b.Block("e")
	e.Movi(1, 42).Jmp(e)
	p := b.MustBuild()
	if u := p.UopAt(p.AddrOf(0)); u == nil || u.Op != isa.MOVI {
		t.Fatal("UopAt(0) wrong")
	}
	if p.UopAt(0x1234) != nil {
		t.Fatal("UopAt outside text must be nil")
	}
}

func TestInterpPCAccessors(t *testing.T) {
	b := NewBuilder("pc")
	e := b.Block("e")
	e.Movi(1, 1).Jmp(e)
	p := b.MustBuild()
	in := NewInterp(p)
	if in.PC() != p.AddrOf(0) || in.Count() != 0 {
		t.Fatal("fresh interpreter state wrong")
	}
	in.Step()
	if in.PC() != p.AddrOf(1) || in.Count() != 1 {
		t.Fatal("interpreter accessors wrong after a step")
	}
}

func TestInterpPanicsOutOfRange(t *testing.T) {
	b := NewBuilder("oor")
	e := b.Block("e")
	e.Jmp(e)
	p := b.MustBuild()
	in := NewInterp(p)
	in.pc = 99
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range PC must panic")
		}
	}()
	in.Step()
}

func TestInterpRETInvalidTargetPanics(t *testing.T) {
	b := NewBuilder("badret")
	e := b.Block("e")
	e.Movi(1, 3). // not a valid uop address
			Ret(1)
	p := b.MustBuild()
	in := NewInterp(p)
	in.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("RET to garbage must panic in the reference interpreter")
		}
	}()
	in.Step()
}
