package prog

import (
	"testing"

	"runaheadsim/internal/isa"
)

// sumProgram builds: for i in 0..n-1 { sum += a[i] }; then spins.
func sumProgram(t *testing.T, n int64) (*Program, uint64) {
	t.Helper()
	b := NewBuilder("sum")
	arr := b.Alloc(uint64(n)*8, 64)
	for i := int64(0); i < n; i++ {
		b.Mem().Write64(arr+uint64(i)*8, i+1)
	}
	const (
		rI, rN, rSum, rAddr, rV, rDone = 1, 2, 3, 4, 5, 6
	)
	entry := b.Block("entry")
	loop := b.Block("loop")
	done := b.Block("done")

	entry.Movi(rI, 0).Movi(rN, n).Movi(rSum, 0).Movi(rAddr, int64(arr)).Jmp(loop)
	loop.LdScaled(rV, rAddr, rI, 8, 0).
		Add(rSum, rSum, rV).
		Addi(rI, rI, 1).
		Blt(rI, rN, loop)
	resultSlot := b.Alloc(8, 8)
	done.Movi(rDone, int64(resultSlot)).
		St(rDone, 0, rSum).
		Jmp(done)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, resultSlot
}

func TestInterpSumLoop(t *testing.T) {
	p, slot := sumProgram(t, 10)
	in := NewInterp(p)
	in.Run(5 + 10*4 + 3 + 10) // entry + loop iters + store + slack spinning
	if got := in.Mem.Read64(slot); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
	if got := in.Regs[3]; got != 55 {
		t.Fatalf("rSum = %d, want 55", got)
	}
}

func TestInterpBranchOutcomes(t *testing.T) {
	b := NewBuilder("branches")
	e := b.Block("e")
	tgt := b.Block("tgt")
	e.Movi(1, 0).Beqz(1, tgt) // taken
	tgt.Movi(2, 5).Bnez(2, tgt)
	p := b.MustBuild()
	in := NewInterp(p)
	in.Step() // movi
	e2 := in.Step()
	if !e2.Taken {
		t.Fatal("beqz of zero should be taken")
	}
	if e2.NextPC != p.BlockAddr(tgt.ID()) {
		t.Fatalf("taken branch NextPC = %#x, want block start %#x", e2.NextPC, p.BlockAddr(tgt.ID()))
	}
	in.Step() // movi 5
	e4 := in.Step()
	if !e4.Taken {
		t.Fatal("bnez of 5 should be taken")
	}
}

func TestInterpNotTakenFallsThrough(t *testing.T) {
	b := NewBuilder("ft")
	e := b.Block("e")
	next := b.Block("next")
	e.Movi(1, 7).Beqz(1, next) // not taken: falls through to next anyway (layout)
	next.Movi(2, 1).Jmp(next)
	p := b.MustBuild()
	in := NewInterp(p)
	in.Step()
	ex := in.Step()
	if ex.Taken {
		t.Fatal("beqz of 7 must not be taken")
	}
	if ex.NextPC != ex.PC+isa.UopBytes {
		t.Fatalf("fall-through NextPC = %#x, want %#x", ex.NextPC, ex.PC+isa.UopBytes)
	}
}

func TestInterpCallRet(t *testing.T) {
	b := NewBuilder("callret")
	const rLink, rA = 10, 11
	main := b.Block("main")
	after := b.Block("after")
	fn := b.Block("fn")
	main.Call(fn, rLink)
	after.Addi(rA, rA, 100).Jmp(after)
	fn.Movi(rA, 1).Ret(rLink)
	p := b.MustBuild()
	in := NewInterp(p)
	ex := in.Step() // call
	if !ex.Taken || ex.NextPC != p.BlockAddr(fn.ID()) {
		t.Fatalf("call should jump to fn, got next %#x", ex.NextPC)
	}
	in.Step() // movi in fn
	ret := in.Step()
	if ret.NextPC != p.BlockAddr(after.ID()) {
		t.Fatalf("ret should return to after-block, got %#x", ret.NextPC)
	}
	in.Step()
	if in.Regs[rA] != 101 {
		t.Fatalf("rA = %d, want 101", in.Regs[rA])
	}
}

func TestInterpStoreLoadForward(t *testing.T) {
	b := NewBuilder("sl")
	slot := b.Alloc(8, 8)
	e := b.Block("e")
	e.Movi(1, int64(slot)).Movi(2, 99).St(1, 0, 2).Ld(3, 1, 0).Jmp(e)
	p := b.MustBuild()
	in := NewInterp(p)
	in.Run(4)
	if in.Regs[3] != 99 {
		t.Fatalf("load after store = %d, want 99", in.Regs[3])
	}
}

func TestInterpALUSemantics(t *testing.T) {
	cases := []struct {
		op       isa.Opcode
		s1, s2   int64
		imm      int64
		expected int64
	}{
		{isa.ADD, 3, 4, 0, 7},
		{isa.SUB, 3, 4, 0, -1},
		{isa.AND, 0b1100, 0b1010, 0, 0b1000},
		{isa.OR, 0b1100, 0b1010, 0, 0b1110},
		{isa.XOR, 0b1100, 0b1010, 0, 0b0110},
		{isa.SHL, 1, 4, 0, 16},
		{isa.SHL, 1, 64, 0, 1}, // shift masked to 0
		{isa.SHR, -1, 60, 0, 15},
		{isa.MUL, 6, 7, 0, 42},
		{isa.DIV, 42, 7, 0, 6},
		{isa.DIV, 42, 0, 0, 0}, // divide by zero yields 0
		{isa.ADDI, 5, 0, -3, 2},
		{isa.ANDI, 0xff, 0, 0x0f, 0x0f},
		{isa.MULI, 5, 0, 3, 15},
		{isa.MOV, 9, 0, 0, 9},
		{isa.MOVI, 0, 0, 123, 123},
		{isa.CMPLT, 1, 2, 0, 1},
		{isa.CMPLT, 2, 1, 0, 0},
		{isa.CMPEQ, 4, 4, 0, 1},
		{isa.CMPEQ, 4, 5, 0, 0},
		{isa.FADD, 2, 3, 0, 5},
		{isa.FMUL, 2, 3, 0, 6},
		{isa.FDIV, 6, 0, 0, 0},
	}
	for _, c := range cases {
		u := isa.Uop{Op: c.op, Imm: c.imm}
		if got := Eval(&u, c.s1, c.s2); got != c.expected {
			t.Errorf("%v(%d,%d,imm=%d) = %d, want %d", c.op, c.s1, c.s2, c.imm, got, c.expected)
		}
	}
}

func TestEffAddr(t *testing.T) {
	u := isa.Uop{Op: isa.LD, Imm: 16}
	if got := EffAddr(&u, 0x1000, 0); got != 0x1010 {
		t.Fatalf("EA = %#x", got)
	}
	us := isa.Uop{Op: isa.LD, Imm: 8, Scaled: true, Scale: 8}
	if got := EffAddr(&us, 0x1000, 3); got != 0x1000+24+8 {
		t.Fatalf("scaled EA = %#x", got)
	}
	// Stores ignore scaling (Src2 is data).
	st := isa.Uop{Op: isa.ST, Imm: 8, Scaled: true, Scale: 8}
	if got := EffAddr(&st, 0x1000, 3); got != 0x1008 {
		t.Fatalf("store EA = %#x", got)
	}
}

func TestBranchTakenSemantics(t *testing.T) {
	check := func(op isa.Opcode, s1, s2 int64, want bool) {
		u := isa.Uop{Op: op}
		if got := BranchTaken(&u, s1, s2); got != want {
			t.Errorf("%v(%d,%d) = %v, want %v", op, s1, s2, got, want)
		}
	}
	check(isa.JMP, 0, 0, true)
	check(isa.CALL, 0, 0, true)
	check(isa.RET, 0, 0, true)
	check(isa.BEQZ, 0, 0, true)
	check(isa.BEQZ, 1, 0, false)
	check(isa.BNEZ, 1, 0, true)
	check(isa.BNEZ, 0, 0, false)
	check(isa.BLT, -1, 0, true)
	check(isa.BLT, 0, 0, false)
	check(isa.BGE, 0, 0, true)
	check(isa.BGE, -1, 0, false)
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("bad")
	b.Block("empty")
	if _, err := b.Build(); err == nil {
		t.Fatal("empty block must fail validation")
	}

	b2 := NewBuilder("fallsoff")
	b2.Block("only").Movi(1, 1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("program ending in a non-branch must fail validation")
	}
}

func TestBuilderAllocAlignment(t *testing.T) {
	b := NewBuilder("alloc")
	a1 := b.Alloc(10, 64)
	a2 := b.Alloc(8, 64)
	if a1%64 != 0 || a2%64 != 0 {
		t.Fatalf("allocations not aligned: %#x %#x", a1, a2)
	}
	if a2 < a1+10 {
		t.Fatal("allocations overlap")
	}
	if a1 < isa.DataBase {
		t.Fatal("allocation below the data base")
	}
}

func TestProgramAddrIndexRoundTrip(t *testing.T) {
	p, _ := sumProgram(t, 4)
	for i := range p.Uops {
		if got := p.IndexOf(p.AddrOf(i)); got != i {
			t.Fatalf("IndexOf(AddrOf(%d)) = %d", i, got)
		}
	}
	if p.IndexOf(isa.TextBase-8) != -1 {
		t.Fatal("address below text must be invalid")
	}
	if p.IndexOf(isa.TextBase+1) != -1 {
		t.Fatal("misaligned address must be invalid")
	}
	if p.IndexOf(p.AddrOf(len(p.Uops))) != -1 {
		t.Fatal("address past text must be invalid")
	}
}

func TestInterpDeterminism(t *testing.T) {
	p, _ := sumProgram(t, 16)
	a, b := NewInterp(p), NewInterp(p)
	a.Run(200)
	b.Run(200)
	if a.Regs != b.Regs {
		t.Fatal("two interpreter runs diverged")
	}
	if !a.Mem.Equal(b.Mem) {
		t.Fatal("two interpreter runs produced different memory")
	}
}

// TestRunBBVMatchesRun checks the BBV collection path is architecturally
// invisible (same registers, memory, and position as plain Run) and that
// the accumulated counts attribute every executed uop to a valid block.
func TestRunBBVMatchesRun(t *testing.T) {
	p, _ := sumProgram(t, 16)
	plain, bbv := NewInterp(p), NewInterp(p)
	plain.Run(300)
	counts := make([]uint64, p.NumBlocks())
	bbv.RunBBV(300, counts)
	if plain.Regs != bbv.Regs {
		t.Fatal("RunBBV diverged from Run in registers")
	}
	if !plain.Mem.Equal(bbv.Mem) {
		t.Fatal("RunBBV diverged from Run in memory")
	}
	if plain.pc != bbv.pc || plain.count != bbv.count {
		t.Fatalf("RunBBV position (%d, %d) != Run position (%d, %d)", bbv.pc, bbv.count, plain.pc, plain.count)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 300 {
		t.Fatalf("BBV counts sum to %d, want 300 (every uop attributed exactly once)", total)
	}
}
