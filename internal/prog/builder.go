package prog

import (
	"fmt"

	"runaheadsim/internal/isa"
)

// Builder assembles a Program from basic blocks. Blocks are laid out in
// creation order; fall-through goes to the next block created.
type Builder struct {
	name     string
	blocks   []*BlockBuilder
	mem      *Memory
	nextData uint64
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, mem: NewMemory(), nextData: isa.DataBase}
}

// Block creates the next basic block in layout order.
func (b *Builder) Block(label string) *BlockBuilder {
	bb := &BlockBuilder{id: isa.BlockID(len(b.blocks)), label: label}
	b.blocks = append(b.blocks, bb)
	return bb
}

// Alloc reserves size bytes of data memory aligned to align (a power of two)
// and returns the base address.
func (b *Builder) Alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	base := (b.nextData + align - 1) &^ (align - 1)
	b.nextData = base + size
	return base
}

// Mem exposes the initial memory image so workloads can seed data structures
// (linked lists, index arrays, ...).
func (b *Builder) Mem() *Memory { return b.mem }

// Build lays out the blocks and validates the program.
func (b *Builder) Build() (*Program, error) {
	p := &Program{Name: b.name, Init: b.mem}
	for _, bb := range b.blocks {
		p.BlockStart = append(p.BlockStart, len(p.Uops))
		if len(bb.uops) == 0 {
			return nil, fmt.Errorf("prog: block %q is empty", bb.label)
		}
		for _, u := range bb.uops {
			p.Uops = append(p.Uops, u)
			p.BlockOf = append(p.BlockOf, bb.id)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on error. Workload construction errors are
// programming bugs, not runtime conditions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// BlockBuilder accumulates the uops of one basic block.
type BlockBuilder struct {
	id    isa.BlockID
	label string
	uops  []isa.Uop
}

// ID returns the block's identifier.
func (bb *BlockBuilder) ID() isa.BlockID { return bb.id }

// Emit appends an arbitrary uop.
func (bb *BlockBuilder) Emit(u isa.Uop) *BlockBuilder {
	bb.uops = append(bb.uops, u)
	return bb
}

// Op emits a three-operand ALU uop.
func (bb *BlockBuilder) Op(op isa.Opcode, dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

// OpI emits a register-immediate ALU uop.
func (bb *BlockBuilder) OpI(op isa.Opcode, dst, s1 isa.Reg, imm int64) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: op, Dst: dst, Src1: s1, Src2: isa.RegNone, Imm: imm})
}

// Movi emits dst <- imm.
func (bb *BlockBuilder) Movi(dst isa.Reg, imm int64) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.MOVI, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone, Imm: imm})
}

// Mov emits dst <- src.
func (bb *BlockBuilder) Mov(dst, src isa.Reg) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.MOV, Dst: dst, Src1: src, Src2: isa.RegNone})
}

// Addi emits dst <- src + imm.
func (bb *BlockBuilder) Addi(dst, src isa.Reg, imm int64) *BlockBuilder {
	return bb.OpI(isa.ADDI, dst, src, imm)
}

// Add emits dst <- s1 + s2.
func (bb *BlockBuilder) Add(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.Op(isa.ADD, dst, s1, s2)
}

// Ld emits dst <- Mem[base+imm].
func (bb *BlockBuilder) Ld(dst, base isa.Reg, imm int64) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.LD, Dst: dst, Src1: base, Src2: isa.RegNone, Imm: imm})
}

// LdScaled emits dst <- Mem[base + idx*scale + imm].
func (bb *BlockBuilder) LdScaled(dst, base, idx isa.Reg, scale uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.LD, Dst: dst, Src1: base, Src2: idx, Imm: imm, Scaled: true, Scale: scale})
}

// St emits Mem[base+imm] <- data.
func (bb *BlockBuilder) St(base isa.Reg, imm int64, data isa.Reg) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.ST, Dst: isa.RegNone, Src1: base, Src2: data, Imm: imm})
}

// Nop emits n no-ops.
func (bb *BlockBuilder) Nop(n int) *BlockBuilder {
	for i := 0; i < n; i++ {
		bb.Emit(isa.Uop{Op: isa.NOP, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	return bb
}

// Jmp emits an unconditional branch to target.
func (bb *BlockBuilder) Jmp(target *BlockBuilder) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.JMP, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Target: target.id})
}

// Beqz emits a branch to target taken when src == 0.
func (bb *BlockBuilder) Beqz(src isa.Reg, target *BlockBuilder) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.BEQZ, Dst: isa.RegNone, Src1: src, Src2: isa.RegNone, Target: target.id})
}

// Bnez emits a branch to target taken when src != 0.
func (bb *BlockBuilder) Bnez(src isa.Reg, target *BlockBuilder) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.BNEZ, Dst: isa.RegNone, Src1: src, Src2: isa.RegNone, Target: target.id})
}

// Blt emits a branch to target taken when s1 < s2.
func (bb *BlockBuilder) Blt(s1, s2 isa.Reg, target *BlockBuilder) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.BLT, Dst: isa.RegNone, Src1: s1, Src2: s2, Target: target.id})
}

// Bge emits a branch to target taken when s1 >= s2.
func (bb *BlockBuilder) Bge(s1, s2 isa.Reg, target *BlockBuilder) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.BGE, Dst: isa.RegNone, Src1: s1, Src2: s2, Target: target.id})
}

// Call emits a call to target, writing the return address to link.
func (bb *BlockBuilder) Call(target *BlockBuilder, link isa.Reg) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.CALL, Dst: link, Src1: isa.RegNone, Src2: isa.RegNone, Target: target.id})
}

// Ret emits a return to the address held in src.
func (bb *BlockBuilder) Ret(src isa.Reg) *BlockBuilder {
	return bb.Emit(isa.Uop{Op: isa.RET, Dst: isa.RegNone, Src1: src, Src2: isa.RegNone, Target: isa.NoBlock})
}
