package prog

import (
	"strings"
	"testing"
)

func TestDisasm(t *testing.T) {
	b := NewBuilder("d")
	e := b.Block("e")
	l := b.Block("l")
	e.Movi(1, 5).Jmp(l)
	l.Addi(1, 1, 1).Jmp(l)
	out := Disasm(b.MustBuild())
	for _, want := range []string{"program \"d\"", "B0:", "B1:", "movi", "addi", "jmp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "0x") != 4 {
		t.Fatalf("expected 4 addressed uops:\n%s", out)
	}
}
