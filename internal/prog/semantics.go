package prog

import "runaheadsim/internal/isa"

// Eval computes the result value of a non-memory, non-branch uop from its
// source values. It is the single definition of ALU semantics, shared by the
// interpreter and the out-of-order core's execute stage.
func Eval(u *isa.Uop, s1, s2 int64) int64 {
	switch u.Op {
	case isa.ADD, isa.FADD:
		return s1 + s2
	case isa.SUB:
		return s1 - s2
	case isa.AND:
		return s1 & s2
	case isa.OR:
		return s1 | s2
	case isa.XOR:
		return s1 ^ s2
	case isa.SHL:
		return s1 << (uint64(s2) & 63)
	case isa.SHR:
		return int64(uint64(s1) >> (uint64(s2) & 63))
	case isa.MUL, isa.FMUL:
		return s1 * s2
	case isa.DIV, isa.FDIV:
		if s2 == 0 {
			return 0
		}
		return s1 / s2
	case isa.ADDI:
		return s1 + u.Imm
	case isa.ANDI:
		return s1 & u.Imm
	case isa.MULI:
		return s1 * u.Imm
	case isa.MOV:
		return s1
	case isa.MOVI:
		return u.Imm
	case isa.CMPLT:
		if s1 < s2 {
			return 1
		}
		return 0
	case isa.CMPEQ:
		if s1 == s2 {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// EffAddr computes the effective address of a memory uop from its source
// values.
func EffAddr(u *isa.Uop, s1, s2 int64) uint64 {
	ea := uint64(s1) + uint64(u.Imm)
	if u.Scaled && u.Op.IsLoad() {
		ea += uint64(s2) * uint64(u.Scale)
	}
	return ea
}

// BranchTaken computes the outcome of a branch uop from its source values.
// JMP, CALL and RET are always taken.
func BranchTaken(u *isa.Uop, s1, s2 int64) bool {
	switch u.Op {
	case isa.JMP, isa.CALL, isa.RET:
		return true
	case isa.BEQZ:
		return s1 == 0
	case isa.BNEZ:
		return s1 != 0
	case isa.BLT:
		return s1 < s2
	case isa.BGE:
		return s1 >= s2
	default:
		return false
	}
}
