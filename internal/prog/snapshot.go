package prog

import (
	"fmt"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/snapshot"
)

// SnapshotTo serializes the memory image as a counted list of (page number,
// raw page) pairs in ascending page order. All-zero pages are skipped: reads
// of unmapped memory return zero, so dropping them is semantics-preserving
// and keeps checkpoints proportional to the touched footprint.
func (m *Memory) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("mem")
	var zero [pageSize]byte
	pns := m.pageNums()
	live := pns[:0]
	for _, pn := range pns {
		if *m.pages[pn] != zero {
			live = append(live, pn)
		}
	}
	w.Int(len(live))
	for _, pn := range live {
		w.U64(pn)
		w.Raw(m.pages[pn][:])
	}
	return nil
}

// RestoreFrom replaces m's contents with the snapshotted image.
func (m *Memory) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("mem")
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	m.pages = make(map[uint64]*[pageSize]byte, n)
	for i := 0; i < n; i++ {
		pn := r.U64()
		raw := r.Raw(pageSize)
		if r.Err() != nil {
			return r.Err()
		}
		p := new([pageSize]byte)
		copy(p[:], raw)
		m.pages[pn] = p
	}
	return r.Err()
}

// TextDigest returns an FNV digest over the program's name and uop sequence.
// A snapshot embeds it so a checkpoint cannot be restored against a different
// program (or a differently-built variant of the same benchmark). The initial
// data image is deliberately excluded: Init is derived deterministically from
// Name by the workload builder, and the snapshot carries the live memory
// image anyway.
func (p *Program) TextDigest() uint64 {
	w := &snapshot.Writer{}
	w.Str(p.Name)
	w.Int(len(p.Uops))
	for i := range p.Uops {
		w.Str(fmt.Sprintf("%+v", p.Uops[i]))
	}
	return snapshot.HashBytes(w.Bytes())
}

// ArchState is a pure architectural checkpoint: the committed memory image,
// register file, and program position. It contains no microarchitectural
// state, so it can seed a cold detailed core (core.NewFromArch) or a fresh
// interpreter (NewInterpAt).
type ArchState struct {
	Mem   *Memory
	Regs  [isa.NumArchRegs]int64
	Index int    // static uop index of the next uop to execute
	Count uint64 // uops executed so far
}

// ArchState captures the interpreter's architectural state. The memory image
// is deep-cloned, so the checkpoint stays valid as the interpreter runs on.
func (in *Interp) ArchState() ArchState {
	return ArchState{Mem: in.Mem.Clone(), Regs: in.Regs, Index: in.pc, Count: in.count}
}

// NewInterpAt returns an interpreter positioned at the checkpoint. Ownership
// of st.Mem transfers to the interpreter; callers that need the checkpoint
// again must Clone it first.
func NewInterpAt(p *Program, st ArchState) *Interp {
	return &Interp{P: p, Mem: st.Mem, Regs: st.Regs, pc: st.Index, count: st.Count}
}
