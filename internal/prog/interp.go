package prog

import (
	"fmt"

	"runaheadsim/internal/isa"
)

// Exec records the architectural effects of one interpreted uop. The
// simulator's instrumentation and the equivalence tests both consume it.
type Exec struct {
	Index  int    // static uop index
	PC     uint64 // address of the uop
	NextPC uint64 // address of the next uop on the correct path
	Taken  bool   // branch outcome (false for non-branches)
	EA     uint64 // effective address for memory uops
	Value  int64  // destination value (loads: loaded value; stores: stored value)
}

// Interp executes a Program architecturally, one uop at a time. It defines
// the reference semantics against which the out-of-order core is checked.
type Interp struct {
	P    *Program
	Mem  *Memory
	Regs [isa.NumArchRegs]int64

	pc    int // current uop index
	count uint64
}

// NewInterp returns an interpreter positioned at the program entry with a
// fresh copy of the initial memory image.
func NewInterp(p *Program) *Interp {
	return &Interp{P: p, Mem: p.NewMemory()}
}

// PC returns the address of the next uop to execute.
func (in *Interp) PC() uint64 { return in.P.AddrOf(in.pc) }

// Count returns the number of uops executed so far.
func (in *Interp) Count() uint64 { return in.count }

// Step executes one uop and returns its architectural effects.
func (in *Interp) Step() Exec {
	i := in.pc
	if i < 0 || i >= len(in.P.Uops) {
		panic(fmt.Sprintf("prog: interpreter PC %d out of range (program %q)", i, in.P.Name))
	}
	u := &in.P.Uops[i]
	e := Exec{Index: i, PC: in.P.AddrOf(i)}
	next := i + 1
	var s1, s2 int64
	if u.Src1 != isa.RegNone {
		s1 = in.Regs[u.Src1]
	}
	if u.Src2 != isa.RegNone {
		s2 = in.Regs[u.Src2]
	}
	switch {
	case u.Op.IsLoad():
		e.EA = EffAddr(u, s1, s2)
		e.Value = in.Mem.Read64(e.EA)
		in.Regs[u.Dst] = e.Value
	case u.Op.IsStore():
		e.EA = EffAddr(u, s1, s2)
		e.Value = s2
		in.Mem.Write64(e.EA, s2)
	case u.Op.IsBranch():
		e.Taken = BranchTaken(u, s1, s2)
		if u.Op == isa.CALL && u.HasDst() {
			// Link: the return address is the uop after the call.
			in.Regs[u.Dst] = int64(in.P.AddrOf(i + 1))
		}
		if e.Taken {
			if u.Op == isa.RET {
				ti := in.P.IndexOf(uint64(s1))
				if ti < 0 {
					panic(fmt.Sprintf("prog: RET to invalid address %#x (program %q)", uint64(s1), in.P.Name))
				}
				next = ti
			} else {
				next = in.P.BlockStart[u.Target]
			}
		}
	case u.Op == isa.NOP:
		// no effect
	default:
		e.Value = Eval(u, s1, s2)
		in.Regs[u.Dst] = e.Value
	}
	in.pc = next
	e.NextPC = in.P.AddrOf(next)
	in.count++
	return e
}

// Run executes n uops.
func (in *Interp) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		in.Step()
	}
}

// RunBBV executes n uops like Run while accumulating a basic-block vector:
// each executed uop increments counts at its static block id (uop-weighted
// block frequencies, the SimPoint form). counts must have one slot per
// program block; the architectural outcome is identical to Run(n).
func (in *Interp) RunBBV(n uint64, counts []uint64) {
	for i := uint64(0); i < n; i++ {
		counts[in.P.BlockOf[in.pc]]++
		in.Step()
	}
}
