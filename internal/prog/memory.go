// Package prog models programs for the simulator: a basic-block control-flow
// graph of micro-ops with a fixed text-segment layout, a sparse 64-bit memory
// image, a builder DSL for constructing workloads, and a functional
// interpreter that defines the architectural semantics.
//
// The interpreter is the source of truth for uop semantics: the out-of-order
// core's execute stage calls the same Eval/EffAddr helpers, and the
// architectural-equivalence tests check that the pipeline commits exactly the
// state the interpreter produces.
package prog

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, byte-addressable 64-bit memory image backed by 4KB
// pages. Reads of unmapped memory return zero; writes allocate pages on
// demand. It is not safe for concurrent use.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ByteAt returns the byte at addr (zero if unmapped).
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read64 returns the little-endian 64-bit value at addr. The access may span
// a page boundary.
func (m *Memory) Read64(addr uint64) int64 {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		off := addr & pageMask
		var v uint64
		for i := uint64(0); i < 8; i++ {
			v |= uint64(p[off+i]) << (8 * i)
		}
		return int64(v)
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.ByteAt(addr+i)) << (8 * i)
	}
	return int64(v)
}

// Write64 stores val at addr in little-endian order. The access may span a
// page boundary.
func (m *Memory) Write64(addr uint64, val int64) {
	v := uint64(val)
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, true)
		off := addr & pageMask
		for i := uint64(0); i < 8; i++ {
			p[off+i] = byte(v >> (8 * i))
		}
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.SetByte(addr+i, byte(v>>(8*i)))
	}
}

// Clone returns a deep copy of the memory image.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Pages returns the number of mapped pages.
func (m *Memory) Pages() int { return len(m.pages) }

// Equal reports whether the two images hold identical contents. Unmapped and
// all-zero pages are considered equal.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for pn, p := range m.pages {
		q := o.pages[pn]
		if q == nil {
			if *p != ([pageSize]byte{}) {
				return false
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}

// FirstDiff returns the lowest address at which the two images differ, for
// test diagnostics. ok is false when the images are equal.
func (m *Memory) FirstDiff(o *Memory) (addr uint64, ok bool) {
	best := uint64(0)
	found := false
	consider := func(a *Memory, b *Memory) {
		for pn, p := range a.pages {
			q := b.pages[pn]
			for i := 0; i < pageSize; i++ {
				var qb byte
				if q != nil {
					qb = q[i]
				}
				if p[i] != qb {
					d := pn<<pageShift | uint64(i)
					if !found || d < best {
						best, found = d, true
					}
					break
				}
			}
		}
	}
	consider(m, o)
	consider(o, m)
	return best, found
}
