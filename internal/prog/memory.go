// Package prog models programs for the simulator: a basic-block control-flow
// graph of micro-ops with a fixed text-segment layout, a sparse 64-bit memory
// image, a builder DSL for constructing workloads, and a functional
// interpreter that defines the architectural semantics.
//
// The interpreter is the source of truth for uop semantics: the out-of-order
// core's execute stage calls the same Eval/EffAddr helpers, and the
// architectural-equivalence tests check that the pipeline commits exactly the
// state the interpreter produces.
package prog

import "sort"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, byte-addressable 64-bit memory image backed by 4KB
// pages. Reads of unmapped memory return zero; writes allocate pages on
// demand. It is not safe for concurrent use.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ByteAt returns the byte at addr (zero if unmapped).
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read64 returns the little-endian 64-bit value at addr. The access may span
// a page boundary.
func (m *Memory) Read64(addr uint64) int64 {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		off := addr & pageMask
		var v uint64
		for i := uint64(0); i < 8; i++ {
			v |= uint64(p[off+i]) << (8 * i)
		}
		return int64(v)
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.ByteAt(addr+i)) << (8 * i)
	}
	return int64(v)
}

// Write64 stores val at addr in little-endian order. The access may span a
// page boundary.
func (m *Memory) Write64(addr uint64, val int64) {
	v := uint64(val)
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, true)
		off := addr & pageMask
		for i := uint64(0); i < 8; i++ {
			p[off+i] = byte(v >> (8 * i))
		}
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.SetByte(addr+i, byte(v>>(8*i)))
	}
}

// pageNums returns the mapped page numbers in ascending order, so every
// traversal of the image is deterministic regardless of map layout.
func (m *Memory) pageNums() []uint64 {
	pns := make([]uint64, 0, len(m.pages))
	//simlint:allow determinism -- keys are sorted before use
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	return pns
}

// Clone returns a deep copy of the memory image.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for _, pn := range m.pageNums() {
		cp := new([pageSize]byte)
		*cp = *m.pages[pn]
		c.pages[pn] = cp
	}
	return c
}

// Pages returns the number of mapped pages.
func (m *Memory) Pages() int { return len(m.pages) }

// Equal reports whether the two images hold identical contents. Unmapped and
// all-zero pages are considered equal.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for _, pn := range m.pageNums() {
		p := m.pages[pn]
		q := o.pages[pn]
		if q == nil {
			if *p != ([pageSize]byte{}) {
				return false
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}

// FirstDiff returns the lowest address at which the two images differ, for
// test diagnostics. ok is false when the images are equal. Pages are walked
// in ascending order, so the reported address is deterministic.
func (m *Memory) FirstDiff(o *Memory) (addr uint64, ok bool) {
	pns := append(m.pageNums(), o.pageNums()...)
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	var zero [pageSize]byte
	prev := ^uint64(0)
	for _, pn := range pns {
		if pn == prev {
			continue // page mapped in both images, already compared
		}
		prev = pn
		p, q := m.pages[pn], o.pages[pn]
		if p == nil {
			p = &zero
		}
		if q == nil {
			q = &zero
		}
		for i := 0; i < pageSize; i++ {
			if p[i] != q[i] {
				return pn<<pageShift | uint64(i), true
			}
		}
	}
	return 0, false
}
