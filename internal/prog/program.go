package prog

import (
	"fmt"

	"runaheadsim/internal/isa"
)

// Program is a laid-out workload: a flat sequence of uops grouped into basic
// blocks, plus the initial data image. Uop i lives at address
// isa.TextBase + i*isa.UopBytes.
type Program struct {
	Name string

	// Uops is the flattened text segment in layout order.
	Uops []isa.Uop
	// BlockStart[b] is the index into Uops of the first uop of block b.
	BlockStart []int
	// BlockOf[i] is the block containing uop i.
	BlockOf []isa.BlockID

	// Init is the initial memory image. Use NewMemory to obtain a private,
	// mutable copy for a run.
	Init *Memory
}

// NumUops returns the number of static uops in the program.
func (p *Program) NumUops() int { return len(p.Uops) }

// NumBlocks returns the number of basic blocks in the program.
func (p *Program) NumBlocks() int { return len(p.BlockStart) }

// AddrOf returns the address of uop index i.
func (p *Program) AddrOf(i int) uint64 {
	return isa.TextBase + uint64(i)*isa.UopBytes
}

// IndexOf returns the uop index at address addr, or -1 when addr is outside
// the text segment.
func (p *Program) IndexOf(addr uint64) int {
	if addr < isa.TextBase || (addr-isa.TextBase)%isa.UopBytes != 0 {
		return -1
	}
	i := int((addr - isa.TextBase) / isa.UopBytes)
	if i >= len(p.Uops) {
		return -1
	}
	return i
}

// UopAt returns the static uop at addr, or nil when addr is not valid text.
func (p *Program) UopAt(addr uint64) *isa.Uop {
	i := p.IndexOf(addr)
	if i < 0 {
		return nil
	}
	return &p.Uops[i]
}

// BlockAddr returns the address of the first uop of block b.
func (p *Program) BlockAddr(b isa.BlockID) uint64 {
	return p.AddrOf(p.BlockStart[b])
}

// TakenTarget returns the address a branch uop jumps to when taken. For RET
// the target is dynamic and this returns 0.
func (p *Program) TakenTarget(u *isa.Uop) uint64 {
	if u.Op == isa.RET {
		return 0
	}
	return p.BlockAddr(u.Target)
}

// NewMemory returns a fresh copy of the program's initial memory image.
func (p *Program) NewMemory() *Memory { return p.Init.Clone() }

// Validate checks structural invariants: branch targets in range, block
// bookkeeping consistent, terminal uop of the program is a branch (programs
// must not run off the end of the text segment).
func (p *Program) Validate() error {
	if len(p.Uops) == 0 {
		return fmt.Errorf("program %q has no uops", p.Name)
	}
	if len(p.BlockOf) != len(p.Uops) {
		return fmt.Errorf("program %q: BlockOf length %d != uop count %d", p.Name, len(p.BlockOf), len(p.Uops))
	}
	for i := range p.Uops {
		u := &p.Uops[i]
		if u.Op.IsBranch() && u.Op != isa.RET {
			if int(u.Target) < 0 || int(u.Target) >= len(p.BlockStart) {
				return fmt.Errorf("program %q: uop %d (%s) targets invalid block %d", p.Name, i, u, u.Target)
			}
		}
	}
	last := &p.Uops[len(p.Uops)-1]
	if !last.Op.IsBranch() {
		return fmt.Errorf("program %q: final uop %s is not a branch; control would fall off the text segment", p.Name, last)
	}
	for b, start := range p.BlockStart {
		if start < 0 || start >= len(p.Uops) {
			return fmt.Errorf("program %q: block %d starts at invalid index %d", p.Name, b, start)
		}
	}
	return nil
}
