package prog

import "runaheadsim/internal/isa"

// Profile accumulates the architectural mix of an interpreted uop stream:
// the instruction-class counts every first-order performance model starts
// from. It is filled by RunProfile at interpreter speed — no pipeline, no
// timing — so a profile costs microseconds per million uops.
type Profile struct {
	Uops   uint64
	Loads  uint64
	Stores uint64

	Branches      uint64 // all control uops
	CondBranches  uint64
	TakenBranches uint64 // taken control uops (conditional or not)

	// LongLatUops counts non-memory uops whose execution latency exceeds one
	// cycle (multiplies, divides, floating point); ExecLatCycles sums their
	// latencies. Together they bound the execution-latency component of a
	// dataflow-limited region.
	LongLatUops   uint64
	ExecLatCycles uint64
}

// Add accumulates o into p.
func (p *Profile) Add(o *Profile) {
	p.Uops += o.Uops
	p.Loads += o.Loads
	p.Stores += o.Stores
	p.Branches += o.Branches
	p.CondBranches += o.CondBranches
	p.TakenBranches += o.TakenBranches
	p.LongLatUops += o.LongLatUops
	p.ExecLatCycles += o.ExecLatCycles
}

func (p *Profile) note(u *isa.Uop, e Exec) {
	p.Uops++
	switch {
	case u.Op.IsLoad():
		p.Loads++
	case u.Op.IsStore():
		p.Stores++
	case u.Op.IsBranch():
		p.Branches++
		if u.Op.IsConditional() {
			p.CondBranches++
		}
		if e.Taken {
			p.TakenBranches++
		}
	default:
		if lat := u.Op.ExecLatency(); lat > 1 {
			p.LongLatUops++
			p.ExecLatCycles += uint64(lat)
		}
	}
}

// RunProfile executes n uops like Run while accumulating prof and invoking
// hook (when non-nil) for every executed uop with the static uop and its
// architectural effects. Callers layer functional models — caches, branch
// predictors, dataflow schedules — on top of the hook; the architectural
// outcome is identical to Run(n).
func (in *Interp) RunProfile(n uint64, prof *Profile, hook func(u *isa.Uop, e Exec)) {
	for i := uint64(0); i < n; i++ {
		u := &in.P.Uops[in.pc]
		e := in.Step()
		prof.note(u, e)
		if hook != nil {
			hook(u, e)
		}
	}
}
