package prog

import (
	"testing"

	"runaheadsim/internal/isa"
)

// TestRunProfileMatchesRun checks that profiling is architecturally
// transparent: RunProfile leaves the interpreter in exactly the state Run
// does, and the counts agree with an independent per-step classification.
func TestRunProfileMatchesRun(t *testing.T) {
	const n = 200
	p, _ := sumProgram(t, 10)

	ref := NewInterp(p)
	ref.Run(n)

	in := NewInterp(p)
	var prof Profile
	in.RunProfile(n, &prof, nil)

	if in.pc != ref.pc || in.count != ref.count || in.Regs != ref.Regs {
		t.Fatalf("RunProfile diverged from Run: pc %d vs %d, count %d vs %d",
			in.pc, ref.pc, in.count, ref.count)
	}

	// Recount by stepping a third interpreter.
	chk := NewInterp(p)
	var want Profile
	for i := 0; i < n; i++ {
		u := &p.Uops[chk.pc]
		e := chk.Step()
		switch {
		case u.Op.IsLoad():
			want.Loads++
		case u.Op.IsStore():
			want.Stores++
		case u.Op.IsBranch():
			want.Branches++
			if u.Op.IsConditional() {
				want.CondBranches++
			}
			if e.Taken {
				want.TakenBranches++
			}
		}
		want.Uops++
	}
	if prof.Uops != want.Uops || prof.Loads != want.Loads || prof.Stores != want.Stores ||
		prof.Branches != want.Branches || prof.CondBranches != want.CondBranches ||
		prof.TakenBranches != want.TakenBranches {
		t.Fatalf("profile %+v, want (ignoring latency fields) %+v", prof, want)
	}
	if prof.Loads == 0 || prof.Branches == 0 || prof.Stores == 0 {
		t.Fatalf("sum program should exercise loads, stores and branches: %+v", prof)
	}
}

// TestRunProfileHook checks the hook sees every uop with its effects, in
// order, and that latency-class counting covers long-latency ALU ops.
func TestRunProfileHook(t *testing.T) {
	b := NewBuilder("longlat")
	e := b.Block("e")
	e.Movi(1, 7).Movi(2, 3).Op(isa.MUL, 3, 1, 2).Op(isa.DIV, 4, 1, 2).Jmp(e)
	p := b.MustBuild()

	in := NewInterp(p)
	var prof Profile
	var seen []isa.Opcode
	in.RunProfile(5, &prof, func(u *isa.Uop, ex Exec) {
		seen = append(seen, u.Op)
		if u.Op == isa.MUL && ex.Value != 21 {
			t.Fatalf("MUL hook value = %d, want 21", ex.Value)
		}
	})
	if len(seen) != 5 {
		t.Fatalf("hook saw %d uops, want 5", len(seen))
	}
	if prof.LongLatUops != 2 { // MUL + DIV
		t.Fatalf("LongLatUops = %d, want 2", prof.LongLatUops)
	}
	wantLat := uint64(isa.MUL.ExecLatency() + isa.DIV.ExecLatency())
	if prof.ExecLatCycles != wantLat {
		t.Fatalf("ExecLatCycles = %d, want %d", prof.ExecLatCycles, wantLat)
	}

	// Add must accumulate every field.
	var sum Profile
	sum.Add(&prof)
	sum.Add(&prof)
	if sum.Uops != 2*prof.Uops || sum.ExecLatCycles != 2*prof.ExecLatCycles {
		t.Fatalf("Add: %+v not double of %+v", sum, prof)
	}
}
