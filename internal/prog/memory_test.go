package prog

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroByDefault(t *testing.T) {
	m := NewMemory()
	if v := m.Read64(0x1234); v != 0 {
		t.Fatalf("unmapped read = %d, want 0", v)
	}
	if b := m.ByteAt(0xdeadbeef); b != 0 {
		t.Fatalf("unmapped byte = %d, want 0", b)
	}
	if m.Pages() != 0 {
		t.Fatal("reads must not allocate pages")
	}
}

func TestMemoryRead64RoundTrip(t *testing.T) {
	f := func(addr uint64, val int64) bool {
		addr &= 0x7fff_ffff // keep the page map small
		m := NewMemory()
		m.Write64(addr, val)
		return m.Read64(addr) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // spans two pages
	m.Write64(addr, -0x0123456789abcdef)
	if got := m.Read64(addr); got != -0x0123456789abcdef {
		t.Fatalf("straddling read = %#x", got)
	}
	if m.Pages() != 2 {
		t.Fatalf("expected 2 pages, got %d", m.Pages())
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Write64(0x100, 0x0807060504030201)
	for i := uint64(0); i < 8; i++ {
		if got := m.ByteAt(0x100 + i); got != byte(i+1) {
			t.Fatalf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
}

func TestMemoryOverlappingWrites(t *testing.T) {
	m := NewMemory()
	m.Write64(0x200, -1)
	m.Write64(0x204, 0) // overwrite the upper half and beyond
	if got := uint64(m.Read64(0x200)); got != 0x0000_0000_ffff_ffff {
		t.Fatalf("after overlap = %#x", got)
	}
}

func TestMemoryCloneIsolation(t *testing.T) {
	m := NewMemory()
	m.Write64(0x300, 7)
	c := m.Clone()
	c.Write64(0x300, 9)
	m.Write64(0x308, 1)
	if m.Read64(0x300) != 7 {
		t.Fatal("clone write leaked into original")
	}
	if c.Read64(0x308) != 0 {
		t.Fatal("original write leaked into clone")
	}
}

func TestMemoryEqual(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if !a.Equal(b) {
		t.Fatal("empty memories must be equal")
	}
	a.Write64(0x400, 5)
	if a.Equal(b) {
		t.Fatal("differing memories reported equal")
	}
	b.Write64(0x400, 5)
	if !a.Equal(b) {
		t.Fatal("identical memories reported unequal")
	}
	// A mapped all-zero page equals an unmapped page.
	a.Write64(0x5000, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("all-zero page must equal unmapped page")
	}
}

func TestMemoryFirstDiff(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if _, ok := a.FirstDiff(b); ok {
		t.Fatal("equal memories must report no diff")
	}
	a.Write64(0x1000, 1)
	a.Write64(0x9000, 2)
	b.Write64(0x9000, 3)
	addr, ok := a.FirstDiff(b)
	if !ok || addr != 0x1000 {
		t.Fatalf("FirstDiff = %#x,%v want 0x1000,true", addr, ok)
	}
}

// Property: writing n values at distinct 8-byte-aligned addresses then
// reading them back yields the same values regardless of write order.
func TestMemoryPropertyDistinctSlots(t *testing.T) {
	f := func(seed uint32, vals []int64) bool {
		m := NewMemory()
		base := uint64(seed%1024) * 8
		for i, v := range vals {
			m.Write64(base+uint64(i)*8, v)
		}
		for i, v := range vals {
			if m.Read64(base+uint64(i)*8) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
