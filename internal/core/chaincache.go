package core

import (
	"fmt"

	"runaheadsim/internal/isa"
)

// ChainUop is one operation of a dependence chain: the decoded uop plus the
// PC it came from (the runahead buffer stores decoded uops; PCs identify
// them for statistics and signatures).
type ChainUop struct {
	U     isa.Uop
	PC    uint64
	Index int
}

// Chain is a filtered dependence chain in program order — the contents of
// the runahead buffer for one interval.
type Chain struct {
	BlockingPC uint64
	Uops       []ChainUop
	Signature  uint64
}

// Len returns the chain length in uops.
func (ch *Chain) Len() int { return len(ch.Uops) }

// signature hashes the chain's PCs in order (FNV-1a) so chains can be
// compared cheaply (Figure 4's unique/repeated classification, Figure 13's
// exact-match check).
func chainSignature(uops []ChainUop) uint64 {
	h := uint64(1469598103934665603)
	for _, cu := range uops {
		h ^= cu.PC
		h *= 1099511628211
	}
	return h
}

// chainCache is the dependence chain cache of Section 4.4: a very small,
// fully-associative cache indexed by the PC of the operation blocking the
// ROB, holding one chain per PC (no path associativity), LRU-replaced. It is
// deliberately small so stale chains age out.
type chainCache struct {
	entries []chainCacheEntry
	stamp   uint64

	HitCount, MissCount uint64
}

type chainCacheEntry struct {
	valid   bool
	pc      uint64
	chain   Chain
	lastUse uint64
}

func newChainCache(entries int) *chainCache {
	if entries <= 0 {
		panic("core: chain cache needs at least one entry")
	}
	return &chainCache{entries: make([]chainCacheEntry, entries)}
}

// Lookup returns the cached chain for the blocking PC.
func (cc *chainCache) Lookup(pc uint64) (*Chain, bool) {
	for i := range cc.entries {
		e := &cc.entries[i]
		if e.valid && e.pc == pc {
			cc.stamp++
			e.lastUse = cc.stamp
			cc.HitCount++
			return &e.chain, true
		}
	}
	cc.MissCount++
	return nil, false
}

// Insert stores a freshly generated chain, replacing any existing chain for
// the same PC (one chain per PC) or the LRU entry.
func (cc *chainCache) Insert(ch Chain) {
	vi := 0
	for i := range cc.entries {
		e := &cc.entries[i]
		if e.valid && e.pc == ch.BlockingPC {
			vi = i
			goto fill
		}
		if !e.valid {
			vi = i
		} else if cc.entries[vi].valid && e.lastUse < cc.entries[vi].lastUse {
			vi = i
		}
	}
fill:
	cc.stamp++
	cc.entries[vi] = chainCacheEntry{valid: true, pc: ch.BlockingPC, chain: ch, lastUse: cc.stamp}
}

// HitRate returns hits/(hits+misses).
func (cc *chainCache) HitRate() float64 {
	t := cc.HitCount + cc.MissCount
	if t == 0 {
		return 0
	}
	return float64(cc.HitCount) / float64(t)
}

// String renders the chain in the style of Figure 7, one uop per line with
// its PC.
func (ch *Chain) String() string {
	s := fmt.Sprintf("chain for blocking PC %#x (%d uops, sig %#x):\n", ch.BlockingPC, ch.Len(), ch.Signature)
	for _, cu := range ch.Uops {
		s += fmt.Sprintf("  %#x: %v\n", cu.PC, &cu.U)
	}
	return s
}

// CachedChains returns copies of the chains currently resident in the chain
// cache, oldest first (for inspection tools).
func (cc *chainCache) CachedChains() []Chain {
	var out []Chain
	for _, e := range cc.entries {
		if e.valid {
			out = append(out, e.chain)
		}
	}
	return out
}
