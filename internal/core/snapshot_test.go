package core_test

// Round-trip acceptance tests for the checkpoint subsystem: a machine that
// drains, snapshots to bytes, and restores must continue bit-for-bit
// identically to one that just keeps running — same simcheck commit digest,
// same stats digest — in baseline and runahead-buffer modes alike.

import (
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/simcheck"
	"runaheadsim/internal/snapshot"
	"runaheadsim/internal/workload"
)

// testConfig returns a config for mode m sized so runs stay fast.
func testConfig(m core.Mode) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = m
	return cfg
}

// runToDrainedSnapshot runs a fresh core through warmup uops, drains it, and
// returns the core plus its serialized snapshot.
func runToDrainedSnapshot(t *testing.T, cfg core.Config, p *prog.Program, warmup uint64) (*core.Core, []byte) {
	t.Helper()
	c := core.New(cfg, p)
	c.Run(warmup)
	if err := c.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	data, err := c.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return c, data
}

// measure resets stats, attaches a resumed-oracle checker, runs measure uops,
// and returns the commit digest and stats digest.
func measure(t *testing.T, c *core.Core, p *prog.Program, measureUops uint64) (commit, stats uint64) {
	t.Helper()
	c.ResetStats()
	chk := simcheck.AttachResumed(c, p, simcheck.Options{Failf: t.Fatalf})
	target := c.Stats().Committed + measureUops
	c.Run(target)
	chk.Finish()
	return chk.CommitDigest(), simcheck.StatsDigest(c.Stats())
}

func testRoundTrip(t *testing.T, mode core.Mode, bench string) {
	p := workload.MustLoad(bench)
	cfg := testConfig(mode)
	const warmup, measureUops = 60_000, 120_000

	// Reference: drain, snapshot (for the restore path), keep running in place.
	ref, data := runToDrainedSnapshot(t, cfg, p, warmup)

	// Restored: an entirely fresh machine rebuilt from the bytes.
	restored, err := core.RestoreCore(data, cfg, p)
	if err != nil {
		t.Fatalf("RestoreCore: %v", err)
	}
	if got, want := restored.Now(), ref.Now(); got != want {
		t.Fatalf("restored clock %d, reference %d", got, want)
	}
	if got, want := restored.FetchPC(), ref.FetchPC(); got != want {
		t.Fatalf("restored fetch PC %#x, reference %#x", got, want)
	}

	refCommit, refStats := measure(t, ref, p, measureUops)
	resCommit, resStats := measure(t, restored, p, measureUops)

	if refCommit != resCommit {
		t.Errorf("commit digest diverged: continued %#x, restored %#x", refCommit, resCommit)
	}
	if refStats != resStats {
		t.Errorf("stats digest diverged: continued %#x, restored %#x", refStats, resStats)
	}
}

func TestSnapshotRoundTripBaseline(t *testing.T) {
	testRoundTrip(t, core.ModeNone, "mcf")
}

func TestSnapshotRoundTripBuffer(t *testing.T) {
	testRoundTrip(t, core.ModeBuffer, "mcf")
}

func TestSnapshotRoundTripBufferCCLibquantum(t *testing.T) {
	testRoundTrip(t, core.ModeBufferCC, "libquantum")
}

// TestSnapshotRebytesIdentical verifies the canonical-form property: a core
// restored from a snapshot re-serializes to the identical bytes.
func TestSnapshotRebytesIdentical(t *testing.T) {
	p := workload.MustLoad("libquantum")
	cfg := testConfig(core.ModeBuffer)
	_, data := runToDrainedSnapshot(t, cfg, p, 50_000)
	restored, err := core.RestoreCore(data, cfg, p)
	if err != nil {
		t.Fatalf("RestoreCore: %v", err)
	}
	again, err := restored.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if string(again) != string(data) {
		t.Fatalf("snapshot of restored core differs from original (%d vs %d bytes)", len(again), len(data))
	}
}

// TestSnapshotRejectsMismatch verifies the guard rails: wrong configuration,
// wrong program, corrupted container.
func TestSnapshotRejectsMismatch(t *testing.T) {
	p := workload.MustLoad("libquantum")
	cfg := testConfig(core.ModeNone)
	_, data := runToDrainedSnapshot(t, cfg, p, 20_000)

	other := cfg
	other.Mode = core.ModeBuffer
	if _, err := core.RestoreCore(data, other, p); err == nil {
		t.Error("restore under a different configuration was accepted")
	}
	if _, err := core.RestoreCore(data, cfg, workload.MustLoad("mcf")); err == nil {
		t.Error("restore against a different program was accepted")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := core.RestoreCore(corrupt, cfg, p); err == nil {
		t.Error("corrupted snapshot was accepted")
	}
}

// TestSnapshotRefusesUndrained verifies that a mid-flight machine cannot be
// serialized (its in-flight state is closures).
func TestSnapshotRefusesUndrained(t *testing.T) {
	p := workload.MustLoad("mcf")
	c := core.New(testConfig(core.ModeNone), p)
	c.Run(5_000)
	if c.Quiesced() {
		t.Skip("machine happened to be quiescent mid-run")
	}
	if _, err := c.Snapshot(); err == nil {
		t.Error("snapshot of a non-quiesced core was accepted")
	}
}

// TestNewFromArch verifies that a functionally fast-forwarded core commits
// the same architectural stream as the interpreter from that point on.
func TestNewFromArch(t *testing.T) {
	p := workload.MustLoad("libquantum")
	in := prog.NewInterp(p)
	in.Run(30_000)
	st := in.ArchState()

	c := core.NewFromArch(testConfig(core.ModeNone), p, st)
	chk := simcheck.AttachResumed(c, p, simcheck.Options{Failf: t.Fatalf})
	c.Run(50_000)
	chk.Finish()
	if chk.Commits() < 50_000 {
		t.Fatalf("only %d commits observed", chk.Commits())
	}
}

// TestArchStateIsolation verifies the checkpoint is decoupled from the
// interpreter that produced it.
func TestArchStateIsolation(t *testing.T) {
	p := workload.MustLoad("libquantum")
	in := prog.NewInterp(p)
	in.Run(10_000)
	st := in.ArchState()
	sum := snapshot.HashString("")
	w := &snapshot.Writer{}
	if err := st.Mem.SnapshotTo(w); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	sum = snapshot.HashBytes(w.Bytes())
	in.Run(10_000) // keep running: must not disturb the checkpoint
	w2 := &snapshot.Writer{}
	if err := st.Mem.SnapshotTo(w2); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	if snapshot.HashBytes(w2.Bytes()) != sum {
		t.Fatal("interpreter progress mutated a captured ArchState")
	}
}
