package core

// Event-driven wakeup/select scheduler. The seed kernel re-scanned the whole
// ROB every cycle looking for ready uops (O(ROB) per cycle) and walked every
// older store per load issue attempt (O(ROB²) per cycle in the worst case) —
// exactly the wrong shape for a machine whose point is keeping a 192-entry
// window full of in-flight misses. This file replaces both scans:
//
//   - Wakeup: each physical register keeps a waiter list. A uop dispatched
//     with unready sources registers once per unready source and carries a
//     pending-source count; the completion broadcast that sets the register's
//     ready (or poison) bit walks the list, decrements each waiter, and moves
//     uops whose count hits zero into the ready queue. Uops whose sources are
//     all ready at dispatch enter the queue immediately.
//
//   - Select: the ready queue is a min-heap keyed by sequence number, so
//     popping yields exactly the oldest-first order the ROB scan produced.
//     Issue pops until IssueWidth is consumed; memory uops that lose a port
//     or fail disambiguation are set aside on a parked list, reproducing the
//     scan's "skip and retry next cycle" behavior. Because pops happen in
//     seq order, the parked list is itself seq-sorted, so the next cycle
//     merges it with the heap instead of re-pushing every blocked uop —
//     a window full of disambiguation-blocked loads costs O(N) comparisons
//     per cycle, not O(N log N) heap churn.
//
//   - Store-address index: in-window stores with computed addresses are
//     indexed by 8-byte address bucket, and stores whose address is still
//     unknown sit in a seq-ordered heap. loadCanIssue consults the oldest
//     unknown-address store and at most three buckets instead of walking the
//     window; the same index serves store-to-load forwarding in execLoad.
//
// Squash and runahead exit never search these structures: entries are
// invalidated lazily (a popped or woken uop that is squashed, issued, or
// executed is skipped and dropped), and the wholesale runahead flush clears
// everything. At quiescence (Drain) the structures hold only dead entries,
// so snapshots need no scheduler state: a restored core rebuilds them empty,
// which is exactly their canonical drained form.
//
// Config.Scheduler selects between this scheduler (SchedEvent, the default)
// and the preserved reference scan (SchedScan). The two must pick identical
// uop sequences cycle-by-cycle; TestSchedulerLockstep and FuzzEquivalence
// enforce it, and BENCH_core.json records the speedup.

// schedRef is a lazy reference to a uop held in the wakeup/select structures.
// DynInst slots are pooled (Core.newDyn), so a reference that is dropped
// lazily can outlive the uop it was created for; gen is the slot's pool
// generation at capture, and a mismatch marks the reference dead. seq is
// captured too — it is the heap key, and a key must stay immutable even after
// the slot is recycled for a younger uop or heap order silently breaks.
type schedRef struct {
	d   *DynInst
	gen uint64
	seq uint64
}

func mkref(d *DynInst) schedRef { return schedRef{d: d, gen: d.gen, seq: d.Seq} }

// stale reports that the reference is dead: the slot was recycled, or the uop
// left the machine or already went through issue.
func (r schedRef) stale() bool { return r.d.gen != r.gen || schedStale(r.d) }

// issueSched is the scheduler state embedded in Core.
type issueSched struct {
	readyQ   readyHeap    // ready, unissued uops, keyed by captured seq
	parked   []schedRef   // seq-sorted: uops popped earlier but port/disambiguation-blocked
	deferred []schedRef   // scratch for building next cycle's parked list
	waiters  [][]schedRef // per physical register: uops waiting on its broadcast

	unknownStores seqHeap               // in-window stores with no computed address, keyed by captured seq
	storeIdx      map[uint64][]*DynInst // in-window EAValid stores by EA>>3 bucket (maintained eagerly)
	bucketPool    [][]*DynInst          // recycled bucket backing arrays (see dropStore)
}

func newIssueSched(numPhys int) issueSched {
	return issueSched{
		waiters:  make([][]schedRef, numPhys),
		storeIdx: make(map[uint64][]*DynInst),
	}
}

// clear drops every entry — the wholesale runahead-exit flush and the
// drained-core normalization. The waiter lists are truncated in place so
// their backing arrays stay warm.
func (s *issueSched) clear() {
	s.readyQ = s.readyQ[:0]
	s.parked = s.parked[:0]
	s.deferred = s.deferred[:0]
	for i := range s.waiters {
		s.waiters[i] = s.waiters[i][:0]
	}
	s.unknownStores = s.unknownStores[:0]
	//simlint:allow determinism -- pool refill order never affects simulated state
	for _, bucket := range s.storeIdx {
		for i := range bucket {
			bucket[i] = nil
		}
		s.bucketPool = append(s.bucketPool, bucket[:0])
	}
	clear(s.storeIdx)
}

// schedStale reports that a uop's scheduler entry is dead: it left the
// machine or already went through issue. Entries are dropped lazily when
// popped or woken.
func schedStale(d *DynInst) bool {
	return d.Squashed || d.Issued || d.Executed
}

// enroll registers a freshly dispatched uop: count its unready sources onto
// the per-register waiter lists, or queue it as ready immediately. A source
// counts as ready when free, ready, or poisoned (poison propagates at
// execute, so it satisfies wakeup just like a value). Under SchedScan the
// scan finds ready uops itself and the wakeup structures stay empty.
//
//simlint:hotpath
func (c *Core) enroll(d *DynInst) {
	if c.cfg.Scheduler == SchedScan {
		return
	}
	r := mkref(d)
	if d.U.Op.IsStore() {
		c.sched.unknownStores.push(r)
	}
	pending := int8(0)
	if !c.srcReady(d.PSrc1) {
		pending++
		c.sched.waiters[d.PSrc1] = append(c.sched.waiters[d.PSrc1], r)
	}
	if !c.srcReady(d.PSrc2) {
		pending++
		c.sched.waiters[d.PSrc2] = append(c.sched.waiters[d.PSrc2], r)
	}
	d.pendingSrcs = pending
	if pending == 0 {
		c.sched.readyQ.push(r)
	}
}

// broadcast wakes the waiters of physical register p after its ready (or
// poison) bit is set. Each waiter appears once per formerly-unready source,
// so decrementing per list entry is exact even when both sources name p.
//
//simlint:hotpath
func (c *Core) broadcast(p PhysReg) {
	if c.cfg.Scheduler == SchedScan || p == noPhys {
		return
	}
	ws := c.sched.waiters[p]
	if len(ws) == 0 {
		return
	}
	c.prof.schedBroadcasts++
	c.prof.schedWakeups += uint64(len(ws))
	c.sched.waiters[p] = ws[:0]
	for _, w := range ws {
		if w.stale() {
			continue
		}
		if w.d.pendingSrcs--; w.d.pendingSrcs == 0 {
			c.sched.readyQ.push(w)
		}
	}
}

// noteStoreAddr moves a store from the unknown-address set into the address
// index once its effective address is computed. The unknown-store heap drops
// it lazily (EAValid entries are skipped at peek). Index maintenance runs
// under both schedulers: execLoad's forwarding lookup uses it whenever the
// event scheduler is selected, including during runahead.
func (c *Core) noteStoreAddr(d *DynInst) {
	if c.cfg.Scheduler == SchedScan {
		return
	}
	b := d.EA >> 3
	bucket, ok := c.sched.storeIdx[b]
	if !ok {
		// Fresh bucket: reuse a recycled backing array. Buckets are deleted
		// when their last store leaves (dropStore), so without the pool a
		// streaming workload allocates one slice per store lifetime.
		if n := len(c.sched.bucketPool); n > 0 {
			bucket = c.sched.bucketPool[n-1]
			c.sched.bucketPool[n-1] = nil
			c.sched.bucketPool = c.sched.bucketPool[:n-1]
		}
	}
	c.sched.storeIdx[b] = append(bucket, d)
}

// dropStore removes a store from the address index when it leaves the window
// (commit, pseudo-retire, or squash). Buckets hold the handful of in-window
// stores that share an 8-byte granule, so the scan is short.
func (c *Core) dropStore(d *DynInst) {
	if c.cfg.Scheduler == SchedScan || !d.EAValid {
		return
	}
	b := d.EA >> 3
	bucket := c.sched.storeIdx[b]
	for i, s := range bucket {
		if s == d {
			bucket[i] = bucket[len(bucket)-1]
			bucket[len(bucket)-1] = nil
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.sched.storeIdx, b)
		if cap(bucket) > 0 {
			c.sched.bucketPool = append(c.sched.bucketPool, bucket)
		}
	} else {
		c.sched.storeIdx[b] = bucket
	}
}

// oldestUnknownStoreSeq returns the sequence number of the oldest in-window
// store whose address is still unknown, or ^uint64(0) when every store has
// one. Stale heads (recycled slots and squashed, poisoned, or
// address-computed stores) are popped permanently: a gen mismatch is final,
// and the three flags are monotonic for a store's lifetime in the window.
func (c *Core) oldestUnknownStoreSeq() uint64 {
	h := &c.sched.unknownStores
	for h.len() > 0 {
		r := h.peek()
		if r.d.gen != r.gen || r.d.Squashed || r.d.Poisoned || r.d.EAValid {
			h.pop()
			continue
		}
		return r.seq
	}
	return ^uint64(0)
}

// overlapBuckets yields the at most three address buckets a load at ea can
// overlap ([ea-7, ea+7] spans at most three 8-byte granules). Wrapping
// arithmetic matches overlaps(), which also compares with wraparound.
func overlapBuckets(ea uint64) [3]uint64 {
	return [3]uint64{(ea - 7) >> 3, ea >> 3, (ea + 7) >> 3}
}

// forwardingStore returns the youngest older EAValid store overlapping the
// load — the indexed equivalent of execLoad's backward window walk.
func (c *Core) forwardingStore(d *DynInst) *DynInst {
	var best *DynInst
	bs := overlapBuckets(d.EA)
	for i, b := range bs {
		if (i > 0 && b == bs[0]) || (i > 1 && b == bs[1]) {
			continue
		}
		for _, s := range c.sched.storeIdx[b] {
			if s.Seq < d.Seq && overlaps(s.EA, d.EA) && (best == nil || s.Seq > best.Seq) {
				best = s
			}
		}
	}
	return best
}

// issueStageEvent selects up to IssueWidth ready uops, oldest first, bounded
// by data-cache ports — the event-driven replacement for the ROB scan.
// Candidates come from two seq-sorted sources merged on the fly: the parked
// list (uops blocked on a port or disambiguation in an earlier cycle) and the
// ready heap (fresh wakeups). The merge emits exactly the oldest-first order
// a single heap produced, including same-cycle wakeups: a uop completed
// during this loop (poison propagation) broadcasts into the heap and, being
// younger than its producer, is reached in the same relative order the
// forward scan used. Blocked uops land on the deferred scratch in emission
// (= seq) order, and entries the width cut-off never reached follow them —
// still sorted, because everything emitted precedes everything unexamined —
// so the scratch becomes the next cycle's parked list with no heap re-insert.
//
//simlint:hotpath
func (c *Core) issueStageEvent() {
	issued, memIssued := 0, 0
	s := &c.sched
	c.prof.schedSelects++
	c.prof.schedQueueSum += uint64(len(s.readyQ) + len(s.parked))
	def := s.deferred[:0]
	pi := 0
	for issued < c.cfg.IssueWidth {
		var r schedRef
		switch {
		case pi < len(s.parked) && (len(s.readyQ) == 0 || s.parked[pi].seq < s.readyQ[0].seq):
			r = s.parked[pi]
			s.parked[pi] = schedRef{}
			pi++
		case len(s.readyQ) > 0:
			r = s.readyQ.pop()
		default:
			pi = len(s.parked)
		}
		if r.d == nil {
			break
		}
		d := r.d
		if r.stale() || !d.Renamed {
			continue
		}
		if d.U.Op.IsMem() {
			if memIssued >= c.cfg.MemPorts {
				def = append(def, r)
				continue
			}
			if d.U.Op.IsLoad() && !c.loadCanIssueEvent(d) {
				def = append(def, r)
				continue
			}
		}
		c.issue(d)
		issued++
		if d.U.Op.IsMem() {
			memIssued++
		}
	}
	def = append(def, s.parked[pi:]...)
	s.parked, s.deferred = def, s.parked[:0]
}

// loadCanIssueEvent is the indexed form of the loadCanIssue walk: consult
// the oldest unknown-address store and at most three address buckets instead
// of every older store in the window. Semantics are identical to the scan
// reference, including the conservative unknown-EA wait.
func (c *Core) loadCanIssueEvent(d *DynInst) bool {
	if c.ra.active {
		return true
	}
	ea, ok := d.predictedEA(c)
	if !ok {
		// The load's own address is unknowable (poisoned sources): wait
		// rather than disambiguate against a fabricated address.
		return false
	}
	if c.oldestUnknownStoreSeq() < d.Seq {
		return false
	}
	bs := overlapBuckets(ea)
	for i, b := range bs {
		if (i > 0 && b == bs[0]) || (i > 1 && b == bs[1]) {
			continue
		}
		for _, s := range c.sched.storeIdx[b] {
			if s.Seq < d.Seq && !s.Poisoned && overlaps(s.EA, ea) && !s.Executed {
				return false
			}
		}
	}
	return true
}

// readyHeap is a min-heap of schedRefs keyed by captured sequence number:
// pop order is the ROB scan's oldest-first order. Hand-rolled (not
// container/heap) to keep push/pop free of interface conversions on the hot
// path.
type readyHeap []schedRef

func (h *readyHeap) push(r schedRef) {
	*h = append(*h, r)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].seq <= q[i].seq {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *readyHeap) pop() schedRef {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = schedRef{}
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q) && q[l].seq < q[min].seq {
			min = l
		}
		if r < len(q) && q[r].seq < q[min].seq {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// seqHeap is the same min-heap shape used for unknown-address stores.
type seqHeap []schedRef

func (h *seqHeap) len() int        { return len(*h) }
func (h *seqHeap) peek() schedRef  { return (*h)[0] }
func (h *seqHeap) push(r schedRef) { (*readyHeap)(h).push(r) }
func (h *seqHeap) pop() schedRef   { return (*readyHeap)(h).pop() }
