package core

import (
	"sort"

	"runaheadsim/internal/memsys"
)

// depTracker implements the dependence-walk instrumentation behind the
// paper's analysis figures:
//
//   - Figure 2: fraction of demand DRAM misses whose address-generation
//     chain contains no other concurrently-windowed DRAM miss ("source data
//     available on-chip").
//   - Figure 3: fraction of uops executed during traditional runahead that
//     lie on the dependence chain of some runahead-generated miss.
//   - Figure 4: unique vs repeated miss chains within a runahead interval.
//   - Figure 5: miss dependence-chain length.
//
// It keeps a ring of lightweight per-uop records keyed by sequence number;
// chains are recovered by walking producer tags recorded at execute time.
type depTracker struct {
	ring []depRec

	// Per-runahead-interval state.
	intervalStart  uint64 // first seq of the interval
	intervalSigs   map[uint64]int
	intervalUops   map[uint64]bool // seqs of uops on some miss chain
	intervalActive bool
}

type depRec struct {
	seq        uint64
	pc         uint64
	prod1      uint64
	prod2      uint64
	prodStore  uint64
	isLoad     bool
	level      memsys.Level
	runahead   bool
	fromBuffer bool
	issueCycle int64
	doneCycle  int64
}

const depRingSize = 1 << 13

func newDepTracker() *depTracker {
	return &depTracker{ring: make([]depRec, depRingSize)}
}

func (t *depTracker) record(c *Core, d *DynInst) {
	t.ring[d.Seq%depRingSize] = depRec{
		seq:        d.Seq,
		pc:         d.PC,
		prod1:      d.Prod1,
		prod2:      d.Prod2,
		prodStore:  d.ProdStore,
		isLoad:     d.U.Op.IsLoad(),
		level:      d.MemLevel,
		runahead:   d.Runahead,
		fromBuffer: d.FromBuffer,
		issueCycle: d.IssueCycle,
		doneCycle:  d.DoneCycle,
	}
	if d.Runahead && c.ra.active && !c.ra.usingBuffer {
		c.st.RATotalUops++
	}
	if !c.ra.active && !d.Runahead && d.U.Op.IsLoad() && d.MemLevel == memsys.LevelMem && !d.Squashed {
		t.classifyDemandMiss(c, d)
	}
}

func (t *depTracker) lookup(seq uint64) (*depRec, bool) {
	if seq == 0 {
		return nil, false
	}
	r := &t.ring[seq%depRingSize]
	if r.seq != seq {
		return nil, false
	}
	return r, true
}

// walk collects the ancestor set of seq (inclusive), bounded by maxNodes and
// by minSeq (ancestors older than minSeq are outside the window of
// interest). The result is sorted by sequence number.
func (t *depTracker) walk(seq, minSeq uint64, maxNodes int) []*depRec {
	var out []*depRec
	seen := map[uint64]bool{}
	stack := []uint64{seq}
	for len(stack) > 0 && len(out) < maxNodes {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == 0 || s < minSeq || seen[s] {
			continue
		}
		seen[s] = true
		r, ok := t.lookup(s)
		if !ok {
			continue
		}
		out = append(out, r)
		stack = append(stack, r.prod1, r.prod2, r.prodStore)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// classifyDemandMiss implements Figure 2: the miss has "source data on chip"
// unless an ancestor within ROB reach is itself a DRAM miss.
func (t *depTracker) classifyDemandMiss(c *Core, d *DynInst) {
	c.st.DemandDRAMMisses++
	minSeq := uint64(1)
	if d.Seq > uint64(c.cfg.ROBSize) {
		minSeq = d.Seq - uint64(c.cfg.ROBSize)
	}
	chain := t.walk(d.Seq, minSeq, 64)
	for _, r := range chain {
		if r.seq == d.Seq {
			continue
		}
		if r.isLoad && r.level == memsys.LevelMem {
			return // off-chip source
		}
	}
	c.st.MissSourcesOnChip++
}

// beginInterval starts per-interval bookkeeping at runahead entry.
func (t *depTracker) beginInterval(c *Core) {
	t.intervalStart = c.seq
	t.intervalSigs = map[uint64]int{}
	t.intervalUops = map[uint64]bool{}
	t.intervalActive = true
}

// onRunaheadMiss records the dependence chain of a miss generated during
// (traditional) runahead: its length (Fig 5), its novelty within the
// interval (Fig 4), and its members (Fig 3).
func (t *depTracker) onRunaheadMiss(c *Core, d *DynInst) {
	if !t.intervalActive || c.ra.usingBuffer {
		return
	}
	chain := t.walk(d.Seq, t.intervalStart, 128)
	if len(chain) == 0 {
		return
	}
	// The chain's identity and length are in static terms — the distinct
	// operations that must execute per iteration — matching what Algorithm 1
	// would extract; the dynamic slice revisits the same PCs across loop
	// iterations.
	pcs := make([]uint64, 0, len(chain))
	seen := map[uint64]bool{}
	for _, r := range chain {
		t.intervalUops[r.seq] = true
		if !seen[r.pc] {
			seen[r.pc] = true
			pcs = append(pcs, r.pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	c.st.ChainLengths.Observe(uint64(len(pcs)))
	sig := uint64(1469598103934665603)
	for _, pc := range pcs {
		sig ^= pc
		sig *= 1099511628211
	}
	if t.intervalSigs[sig] > 0 {
		c.st.RAChainsRepeated++
	} else {
		c.st.RAChainsUnique++
	}
	t.intervalSigs[sig]++
}

// endInterval folds the interval's chain-membership set into Figure 3's
// counters.
func (t *depTracker) endInterval(c *Core) {
	if !t.intervalActive {
		return
	}
	c.st.RAChainUops += uint64(len(t.intervalUops))
	t.intervalActive = false
	t.intervalSigs = nil
	t.intervalUops = nil
}
