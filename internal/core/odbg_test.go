package core

import (
	"fmt"
	"testing"

	"runaheadsim/internal/memsys"
	"runaheadsim/internal/workload"
)

func TestDebugOmnetRA(t *testing.T) {
	p := workload.MustLoad("omnetpp")
	c := New(testConfig(ModeTraditional), p)
	c.Run(30000)
	type k struct {
		pc       uint64
		poisoned bool
	}
	counts := map[k]int{}
	lvl := map[memsys.Level]int{}
	for i := 0; i < 60000; i++ {
		c.Cycle()
		if !c.ra.active {
			continue
		}
		for j := 0; j < c.rob.size(); j++ {
			d := c.rob.at(j)
			if d.U.Op.IsLoad() && d.Executed && d.Runahead && d.DoneCycle == c.now {
				counts[k{d.PC, d.Poisoned}]++
				if !d.Poisoned {
					lvl[d.MemLevel]++
				}
			}
		}
	}
	for key, v := range counts {
		if v > 30 {
			fmt.Printf("LOAD pc=%#x poisoned=%v count=%d\n", key.pc, key.poisoned, v)
		}
	}
	fmt.Printf("levels: %v\n", lvl)
	st := c.st
	fmt.Printf("raUops=%d raLoads=%d poisoned=%d mispred=%d branches=%d intervals=%d\n",
		st.RunaheadUops, st.RunaheadLoads, st.PoisonedUops, st.Mispredicts, st.Branches, st.RunaheadIntervals)
}
