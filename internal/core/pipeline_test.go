package core

import (
	"strings"
	"testing"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// --- Front end ---------------------------------------------------------------

func TestFetchStopsAtTakenBranch(t *testing.T) {
	// A tight 2-uop loop: fetch can deliver at most one iteration per cycle
	// (one taken branch per fetch cycle), so IPC caps at 2 even on a 4-wide
	// machine.
	b := prog.NewBuilder("tiny")
	loop := b.Block("loop")
	loop.Addi(1, 1, 1).Jmp(loop)
	c := New(testConfig(ModeNone), b.MustBuild())
	st := c.Run(20_000)
	st.Cycles = c.Now()
	if ipc := st.IPC(); ipc > 2.05 {
		t.Fatalf("2-uop loop IPC = %.2f; the taken-branch limit should cap it at 2", ipc)
	}
}

func TestBTBColdStartMispredicts(t *testing.T) {
	// First encounter of a taken branch has no BTB entry: the core must
	// fall through and recover at execute; afterwards the BTB supplies the
	// target.
	b := prog.NewBuilder("btb")
	entry := b.Block("entry")
	far := b.Block("far")
	pad := b.Block("pad")
	entry.Movi(1, 0).Jmp(far)
	pad.Nop(1).Jmp(pad) // wrong-path landing zone
	far.Addi(1, 1, 1).Jmp(far)
	p := b.MustBuild()
	c := New(testConfig(ModeNone), p)
	st := c.Run(1_000)
	if st.Mispredicts == 0 {
		t.Fatal("cold BTB should cause at least one misprediction")
	}
	// Steady state: the loop branch hits in the BTB, mispredicts stay rare.
	if st.Mispredicts > 10 {
		t.Fatalf("%d mispredicts in a trivially predictable program", st.Mispredicts)
	}
}

func TestRedirectFetchClearsFrontQueue(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	// Block rename so fetched uops accumulate in the front queue.
	saved := c.rsCount
	c.rsCount = c.cfg.RSSize
	for i := 0; i < 500; i++ { // enough for the cold I-fetch to fill
		c.Cycle()
	}
	c.rsCount = saved
	if len(c.frontQ) == 0 {
		t.Fatal("front queue should have filled")
	}
	gen := c.fetchGen
	c.redirectFetch(c.p.AddrOf(0), 3)
	if len(c.frontQ) != 0 {
		t.Fatal("redirect must discard fetched uops")
	}
	if c.fetchGen != gen+1 {
		t.Fatal("redirect must bump the fetch generation")
	}
	if c.fetchStallUntil != c.now+3 {
		t.Fatal("redirect penalty not applied")
	}
}

// --- Store buffer -------------------------------------------------------------

func TestStoreBufferDrains(t *testing.T) {
	c := New(testConfig(ModeNone), storeLoadLoop())
	c.Run(20_000)
	// After a run with stores, the buffer must not be wedged.
	for i := 0; i < 5_000 && len(c.storeBuf) > 0; i++ {
		c.Cycle()
	}
	if len(c.storeBuf) > c.cfg.StoreBufSize {
		t.Fatalf("store buffer overgrew: %d entries", len(c.storeBuf))
	}
}

func TestStoreBufferBackpressureStallsCommit(t *testing.T) {
	// With a 1-entry store buffer, a burst of stores to distinct lines must
	// stall commit (StoreBufFullStall) rather than lose stores.
	b := prog.NewBuilder("storeburst")
	base := b.Alloc(1<<20, 64)
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(1, int64(base)).Movi(2, 7).Jmp(loop)
	for i := int64(0); i < 8; i++ {
		loop.St(1, i*4096, 2)
	}
	loop.Addi(1, 1, 8).Jmp(loop)
	cfg := testConfig(ModeNone)
	cfg.StoreBufSize = 1
	c := New(cfg, b.MustBuild())
	st := c.Run(5_000)
	if st.StoreBufFullStall == 0 {
		t.Fatal("1-entry store buffer should stall commit")
	}
	// Architectural equivalence is preserved regardless.
	in := prog.NewInterp(c.p)
	in.Run(st.Committed)
	if !c.Mem().Equal(in.Mem) {
		t.Fatal("store backpressure corrupted memory state")
	}
}

// --- Watchdog & dump ------------------------------------------------------------

func TestWatchdogFiresOnDeadlock(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	c.cfg.WatchdogCycles = 100
	// Simulate a wedge: empty the ROB and stall fetch forever.
	c.fetchStallUntil = 1 << 60
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("watchdog must panic on no progress")
		}
		if !strings.Contains(r.(string), "watchdog") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c.Run(1)
}

func TestDumpRendersState(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	for i := 0; i < 30; i++ {
		c.Cycle()
	}
	d := c.dump()
	for _, want := range []string{"cycle=", "rob=", "fetchPC="} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

// --- ResetStats -----------------------------------------------------------------

func TestResetStatsZerosCountersKeepsState(t *testing.T) {
	c := New(testConfig(ModeHybrid), gatherLoop(8))
	c.Run(10_000)
	priorMisses := c.h.LLCDemandMisses
	if priorMisses == 0 {
		t.Fatal("warmup generated no misses")
	}
	c.ResetStats()
	if c.st.Committed != 0 || c.st.Cycles != 0 || c.h.LLCDemandMisses != 0 {
		t.Fatal("counters not zeroed")
	}
	if c.h.DRAM().Reads != 0 || c.bp.Lookups != 0 {
		t.Fatal("component counters not zeroed")
	}
	// Microarchitectural state survives: the next run must be warmer (fewer
	// misses per uop) than a cold machine.
	st := c.Run(10_000)
	cold := New(testConfig(ModeHybrid), gatherLoop(8))
	cst := cold.Run(10_000)
	cst.Cycles = cold.Now()
	if st.IPC() < cst.IPC() {
		t.Fatalf("post-reset IPC %.3f below cold-start %.3f; state was lost", st.IPC(), cst.IPC())
	}
}

func TestRunCyclesRelativeToReset(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	c.Run(10_000)
	c.ResetStats()
	st := c.Run(10_000)
	if st.Cycles <= 0 || st.Cycles >= c.Now() {
		t.Fatalf("post-reset Cycles = %d (absolute now = %d); must be the delta", st.Cycles, c.Now())
	}
}

// --- Poison semantics -------------------------------------------------------------

func TestPoisonNeverEscapesRunahead(t *testing.T) {
	// After any run in any mode, no architectural register may be poisoned
	// (in normal mode the identity registers must always be clean).
	for _, m := range []Mode{ModeTraditional, ModeBufferCC, ModeHybrid} {
		c := New(testConfig(m), gatherLoop(8))
		c.Run(20_000)
		if c.ra.active {
			// Finish the interval so the reset runs.
			for i := 0; i < 500_000 && c.ra.active; i++ {
				c.Cycle()
			}
		}
		for i := 0; i < isa.NumArchRegs; i++ {
			if c.prf.poison[i] && c.ren.rat[i] == PhysReg(i) {
				t.Fatalf("%v: architectural register r%d left poisoned", m, i)
			}
		}
	}
}

func TestRunaheadCountersConsistent(t *testing.T) {
	c := New(testConfig(ModeHybrid), gatherLoop(8))
	st := c.Run(30_000)
	if st.RunaheadBufferCycles+st.RunaheadTradCycles != st.RunaheadCycles {
		t.Fatalf("mode cycles %d+%d != total runahead cycles %d",
			st.RunaheadBufferCycles, st.RunaheadTradCycles, st.RunaheadCycles)
	}
	if st.RunaheadCycles > c.Now() {
		t.Fatal("runahead cycles exceed total cycles")
	}
	if st.HybridChoseBuffer+st.HybridChoseTrad != st.RunaheadIntervals {
		t.Fatalf("hybrid decisions %d+%d != intervals %d",
			st.HybridChoseBuffer, st.HybridChoseTrad, st.RunaheadIntervals)
	}
}

// --- Config -----------------------------------------------------------------------

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	checks := map[string]bool{
		"4-wide":            cfg.IssueWidth == 4 && cfg.FetchWidth == 4 && cfg.CommitWidth == 4,
		"192-entry ROB":     cfg.ROBSize == 192,
		"92-entry RS":       cfg.RSSize == 92,
		"32-uop buffer":     cfg.RunaheadBufferSize == 32 && cfg.MaxChainLength == 32,
		"2-entry CC":        cfg.ChainCacheEntries == 2,
		"512B RA cache":     cfg.RACacheBytes == 512 && cfg.RACacheWays == 4 && cfg.RACacheLineBytes == 8,
		"16-entry SRSL":     cfg.SRSLSize == 16,
		"2 reg searches":    cfg.RegSearchesPerCycle == 2,
		"2 mem ports":       cfg.MemPorts == 2,
		"32KB L1":           cfg.Mem.L1D.SizeBytes == 32<<10 && cfg.Mem.L1I.SizeBytes == 32<<10,
		"1MB LLC":           cfg.Mem.LLC.SizeBytes == 1<<20,
		"64-entry memqueue": cfg.Mem.DRAM.QueueCap == 64,
		"2 channels":        cfg.Mem.DRAM.Channels == 2,
		"8 banks":           cfg.Mem.DRAM.BanksPerChannel == 8,
		"8KB rows":          cfg.Mem.DRAM.RowBytes == 8192,
	}
	for name, ok := range checks {
		if !ok {
			t.Errorf("Table 1 mismatch: %s", name)
		}
	}
}

// --- Wrong-path execution -----------------------------------------------------

// TestWrongPathLoadsCounted: a data-dependent branch steering between two
// gather streams mispredicts often; the loads fetched down the wrong path
// must be counted (and their memory requests persist — the wrong-path
// prefetching effect of the paper's reference [23]).
func TestWrongPathLoadsCounted(t *testing.T) {
	b := prog.NewBuilder("wrongpath")
	const slots = 1 << 14
	data := b.Alloc(slots*2112, 64)
	const rI, rIdx, rAddr, rV, rB = 1, 2, 3, 4, 5
	entry := b.Block("entry")
	loop := b.Block("loop")
	alt := b.Block("alt")
	tail := b.Block("tail")
	entry.Movi(rI, 0).Movi(rV, 0).Jmp(loop)
	// The branch depends on the previous iteration's gather load (a DRAM
	// miss), so it resolves hundreds of cycles after the wrong path was
	// fetched — plenty of time for wrong-path loads to issue.
	loop.Op(isa.ADD, rB, rV, rI).
		OpI(isa.ANDI, rB, rB, 1<<4).
		Bnez(rB, alt).
		OpI(isa.MULI, rIdx, rI, 40503).
		Jmp(tail)
	alt.OpI(isa.MULI, rIdx, rI, 48271)
	tail.OpI(isa.ANDI, rIdx, rIdx, slots-1).
		OpI(isa.MULI, rAddr, rIdx, 2112).
		Addi(rAddr, rAddr, int64(data)).
		Ld(rV, rAddr, 0).
		Addi(rI, rI, 1).
		Jmp(loop)
	c := New(testConfig(ModeNone), b.MustBuild())
	st := c.Run(30_000)
	if st.Mispredicts == 0 {
		t.Fatal("hash-directed branch should mispredict")
	}
	if st.SquashedUops == 0 {
		t.Fatal("mispredicts must squash uops")
	}
	if st.WrongPathLoads == 0 {
		t.Fatal("wrong-path loads never counted")
	}
	if st.WrongPathLoads > st.SquashedUops {
		t.Fatal("wrong-path loads cannot exceed squashed uops")
	}
}

// --- Store forwarding ---------------------------------------------------------

func TestStoreForwardingCounted(t *testing.T) {
	// A store immediately followed by a load of the same address must
	// forward from the store queue, not the cache.
	b := prog.NewBuilder("fwd")
	slot := b.Alloc(64, 64)
	e := b.Block("e")
	loop := b.Block("loop")
	e.Movi(1, int64(slot)).Movi(2, 0).Jmp(loop)
	loop.Addi(2, 2, 1).
		St(1, 0, 2).
		Ld(3, 1, 0).
		Add(4, 4, 3).
		Jmp(loop)
	c := New(testConfig(ModeNone), b.MustBuild())
	st := c.Run(10_000)
	if st.StoreForward == 0 {
		t.Fatal("store-to-load forwarding never happened")
	}
	// Architectural correctness of the forwarded values.
	in := prog.NewInterp(c.p)
	in.Run(st.Committed)
	if c.ArchRegs()[4] != in.Regs[4] {
		t.Fatalf("forwarded accumulation wrong: %d vs %d", c.ArchRegs()[4], in.Regs[4])
	}
}

func TestLoadWaitsForStoreData(t *testing.T) {
	// Conservative disambiguation: a load behind a store whose data comes
	// off a slow MUL chain must hold at issue until the store executes, and
	// must still forward the right value (checked against the interpreter).
	b := prog.NewBuilder("fwdwait")
	slot := b.Alloc(64, 64)
	e := b.Block("e")
	loop := b.Block("loop")
	e.Movi(1, int64(slot)).Movi(2, 3).Jmp(loop)
	loop.OpI(isa.MULI, 2, 2, 3). // slow producer of the store data
					OpI(isa.MULI, 2, 2, 5).
					OpI(isa.ANDI, 2, 2, 0xffff).
					St(1, 0, 2).
					Ld(3, 1, 0).
					Add(4, 4, 3).
					Jmp(loop)
	c := New(testConfig(ModeNone), b.MustBuild())
	st := c.Run(10_000)
	if st.StoreForward == 0 {
		t.Fatal("load never forwarded from the slow store")
	}
	in := prog.NewInterp(c.p)
	in.Run(st.Committed)
	if c.ArchRegs()[4] != in.Regs[4] {
		t.Fatalf("forwarded values wrong under slow store data: %d vs %d",
			c.ArchRegs()[4], in.Regs[4])
	}
}

func TestICacheStallsOnHugeFootprint(t *testing.T) {
	// A program whose text exceeds the 32KB L1I must show I-cache stalls:
	// build ~6000 uops of straight-line code in a loop (48KB of text).
	b := prog.NewBuilder("bigtext")
	loop := b.Block("loop")
	for i := 0; i < 6000; i++ {
		loop.OpI(isa.ADDI, isa.Reg(1+i%8), isa.Reg(1+i%8), 1)
	}
	loop.Jmp(loop)
	c := New(testConfig(ModeNone), b.MustBuild())
	st := c.Run(30_000)
	if st.ICacheStallCycles == 0 {
		t.Fatal("48KB of text never stalled the 32KB I-cache")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ROBSize = 2 },
		func(c *Config) { c.RSSize = c.ROBSize + 1 },
		func(c *Config) { c.NumPhysRegs = 64 },
		func(c *Config) { c.MaxChainLength = c.RunaheadBufferSize + 1 },
		func(c *Config) { c.ChainCacheEntries = 0 },
		func(c *Config) { c.MemPorts = 0 },
		func(c *Config) { c.SQSize = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// New panics on invalid configs.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New must panic on an invalid config")
			}
		}()
		bad := DefaultConfig()
		bad.IssueWidth = 0
		New(bad, simpleLoop())
	}()
}
