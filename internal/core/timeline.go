package core

import "runaheadsim/internal/stats"

// timelineState accumulates per-interval sums between samples. The per-cycle
// cost while enabled is two integer adds; when no timeline is attached the
// only cost is a nil check in Cycle.
type timelineState struct {
	tl *stats.Timeline

	// Interval accumulators, reset at each sample.
	robOccSum    int64
	mshrOccSum   int64
	raCycles     int64
	cycles       int64
	lastCommit   uint64
	lastCCHits   uint64
	lastCCMisses uint64
}

// SetTimeline attaches a timeline; the core appends one sample every
// tl.Interval cycles. Passing nil detaches. Attach after ResetStats (or at
// construction) so interval deltas line up with the measured region.
func (c *Core) SetTimeline(tl *stats.Timeline) {
	if tl == nil {
		c.tl = nil
		return
	}
	c.tl = &timelineState{
		tl:           tl,
		lastCommit:   c.st.Committed,
		lastCCHits:   c.ccache.HitCount,
		lastCCMisses: c.ccache.MissCount,
	}
}

// Timeline returns the attached timeline (nil when sampling is off).
func (c *Core) Timeline() *stats.Timeline {
	if c.tl == nil {
		return nil
	}
	return c.tl.tl
}

// tickTimeline runs once per cycle while a timeline is attached.
func (c *Core) tickTimeline() {
	t := c.tl
	t.robOccSum += int64(c.rob.size())
	t.mshrOccSum += int64(c.h.OutstandingDataMissesR(c.memReq))
	if c.ra.active {
		t.raCycles++
	}
	t.cycles++
	if t.cycles < t.tl.Interval {
		return
	}
	n := float64(t.cycles)
	mode := "normal"
	if c.ra.active {
		if c.ra.usingBuffer {
			mode = "runahead-buffer"
		} else {
			mode = "runahead-traditional"
		}
	}
	hits := c.ccache.HitCount - t.lastCCHits
	misses := c.ccache.MissCount - t.lastCCMisses
	s := stats.TimelineSample{
		Cycle:        c.now,
		Committed:    c.st.Committed,
		IPC:          float64(c.st.Committed-t.lastCommit) / n,
		ROBOcc:       float64(t.robOccSum) / n,
		MSHROcc:      float64(t.mshrOccSum) / n,
		Mode:         mode,
		RunaheadFrac: float64(t.raCycles) / n,
	}
	if probes := hits + misses; probes > 0 {
		s.ChainCacheHitRate = float64(hits) / float64(probes)
	}
	t.tl.Append(s)
	t.robOccSum, t.mshrOccSum, t.raCycles, t.cycles = 0, 0, 0, 0
	t.lastCommit = c.st.Committed
	t.lastCCHits, t.lastCCMisses = c.ccache.HitCount, c.ccache.MissCount
}
