package core

import (
	"math/rand"
	"strings"
	"testing"
)

// runUntil advances the core until cond holds (or the cycle budget runs
// out, which fails the test).
func runUntil(t *testing.T, c *Core, cond func() bool) {
	t.Helper()
	for i := 0; i < 50_000; i++ {
		if cond() {
			return
		}
		c.Cycle()
	}
	t.Fatal("condition never reached within the cycle budget")
}

// TestInvariantsHoldEveryCycle sweeps the full invariant set (deep every
// cycle — affordable at test scale) across a random program in every mode.
func TestInvariantsHoldEveryCycle(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeTraditional, ModeBufferCC, ModeHybrid} {
		p := randomProgram(rand.New(rand.NewSource(7)))
		c := New(testConfig(mode), p)
		c.SetCycleHook(func() {
			if err := c.CheckInvariants(true); err != nil {
				t.Fatalf("mode %v, cycle %d: %v\n%s", mode, c.Now(), err, c.DebugDump())
			}
		})
		c.Run(3_000)
	}
}

// The corruption tests seed a specific inconsistency into a live machine and
// assert the matching check names it — proof the invariants can actually
// fire, not just that the machine happens to satisfy them.

func TestInvariantsCatchDoubleFree(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	runUntil(t, c, func() bool { return c.rob.size() >= 4 })
	if err := c.CheckInvariants(true); err != nil {
		t.Fatalf("pre-corruption: %v", err)
	}
	// Push an already-free register back onto the free list: a double
	// release. The fast count check sees the imbalance; the deep partition
	// would name the register.
	c.ren.release(c.ren.free[0])
	err := c.CheckInvariants(false)
	if err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("double free not caught: %v", err)
	}
}

func TestInvariantsCatchDoubleClaim(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	runUntil(t, c, func() bool { return c.rob.size() >= 4 })
	// Alias two RAT entries to one physical register. The old rat[5] mapping
	// leaks and rat[4]'s is double-claimed, but the counts stay balanced —
	// only the exact partition scan can see it.
	c.ren.rat[5] = c.ren.rat[4]
	if err := c.CheckInvariants(false); err != nil {
		t.Fatalf("fast check should stay balanced: %v", err)
	}
	err := c.CheckInvariants(true)
	if err == nil || !strings.Contains(err.Error(), "claimed by both") {
		t.Fatalf("double claim not caught: %v", err)
	}
}

func TestInvariantsCatchSeqCorruption(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	runUntil(t, c, func() bool { return c.rob.size() >= 2 })
	c.rob.at(1).Seq = c.rob.at(0).Seq
	err := c.CheckInvariants(false)
	if err == nil || !strings.Contains(err.Error(), "seq order") {
		t.Fatalf("seq corruption not caught: %v", err)
	}
}

func TestInvariantsCatchQueueMiscount(t *testing.T) {
	c := New(testConfig(ModeNone), storeLoadLoop())
	runUntil(t, c, func() bool { return c.rob.size() >= 2 })
	c.lqCount++
	err := c.CheckInvariants(false)
	if err == nil || !strings.Contains(err.Error(), "load-queue") {
		t.Fatalf("load-queue miscount not caught: %v", err)
	}
}
