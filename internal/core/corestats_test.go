package core

import (
	"testing"
)

// TestCommittedCounterSingleSource is the regression test for the old
// Committed/CommittedInstrs duplication: there is one committed counter, the
// commit stage increments it, Run's target honors it, and the exported
// counter set (what report code consumes) carries the same value.
func TestCommittedCounterSingleSource(t *testing.T) {
	const target = 1_000
	c := New(testConfig(ModeNone), simpleLoop())
	st := c.Run(target)
	if st.Committed < target {
		t.Fatalf("Run(%d) stopped at Committed=%d", target, st.Committed)
	}
	set := st.Counters()
	if got := set.Get("Committed"); got != st.Committed {
		t.Fatalf("exported Committed=%d, struct Committed=%d", got, st.Committed)
	}
	// IPC must be derived from the same counter.
	if want := float64(st.Committed) / float64(st.Cycles); st.IPC() != want {
		t.Fatalf("IPC()=%v, want Committed/Cycles=%v", st.IPC(), want)
	}
}

// TestCountersExportStable checks the reflection-based export covers the
// headline counters and renders deterministically.
func TestCountersExportStable(t *testing.T) {
	c := New(testConfig(ModeBufferCC), gatherLoop(4))
	st := c.Run(3_000)
	set := st.Counters()
	names := map[string]bool{}
	for _, n := range set.Names() {
		names[n] = true
	}
	for _, name := range []string{"Cycles", "Committed", "Fetched", "RunaheadCycles",
		"cpi.base", "cpi.dram", "cpi.runahead-overhead", "ChainLengths.count"} {
		if !names[name] {
			t.Errorf("exported counter %q is missing", name)
		}
	}
	for _, name := range []string{"Cycles", "Committed", "Fetched", "RunaheadCycles"} {
		if set.Get(name) == 0 {
			t.Errorf("exported counter %q is zero", name)
		}
	}
	if set.String() != st.Counters().String() {
		t.Fatal("Counters export must be deterministic")
	}
}

// TestStatsMergeScaled checks the weighted-merge path the phase-sampled
// engine uses: scaling by w/w is exactly Merge, counters scale by the
// rational weight with rounding, and histogram extrema stay unscaled.
func TestStatsMergeScaled(t *testing.T) {
	src := NewStats()
	src.Cycles = 1000
	src.Committed = 400
	src.RunaheadMissesLLC = 7
	src.CPIStack[0] = 1000
	src.ChainLengths.Observe(8)

	same := NewStats()
	same.MergeScaled(src, 5, 5)
	plain := NewStats()
	plain.Merge(src)
	if same.Cycles != plain.Cycles || same.Committed != plain.Committed ||
		same.ChainLengths.Count != plain.ChainLengths.Count {
		t.Fatal("MergeScaled(o, w, w) differs from Merge(o)")
	}

	scaled := NewStats()
	scaled.MergeScaled(src, 3, 2) // 1.5x
	if scaled.Cycles != 1500 || scaled.Committed != 600 || scaled.RunaheadMissesLLC != 11 {
		t.Fatalf("scaled counters: cycles=%d committed=%d misses=%d", scaled.Cycles, scaled.Committed, scaled.RunaheadMissesLLC)
	}
	if scaled.CPIStack[0] != 1500 {
		t.Fatalf("CPI stack scaled to %d, want 1500", scaled.CPIStack[0])
	}
	if scaled.ChainLengths.Count != 2 { // 1*3/2 = 1.5 rounds to 2
		t.Fatalf("histogram count scaled to %d, want 2", scaled.ChainLengths.Count)
	}
	if scaled.ChainLengths.MaxSeen != 8 {
		t.Fatalf("histogram MaxSeen %d, extrema must not scale", scaled.ChainLengths.MaxSeen)
	}
}
