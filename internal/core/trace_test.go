package core

import (
	"strings"
	"testing"
)

func TestTracerEmitsPipelineEvents(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeNone), simpleLoop())
	c.SetTracer(&sb, 0)
	c.Run(200)
	out := sb.String()
	for _, want := range []string{"fetch", "dispatch", "issue", "complete", "commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q events:\n%.500s", want, out)
		}
	}
	if !strings.Contains(out, "cycle=") {
		t.Fatal("trace lines must carry cycles")
	}
}

func TestTracerRunaheadEvents(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeBufferCC), gatherLoop(8))
	c.SetTracer(&sb, 0)
	c.Run(5_000)
	out := sb.String()
	if !strings.Contains(out, "runahead enter") || !strings.Contains(out, "mode=buffer") {
		t.Fatal("trace missing runahead entry")
	}
	if !strings.Contains(out, "runahead exit") {
		t.Fatal("trace missing runahead exit")
	}
	if !strings.Contains(out, "pretire") {
		t.Fatal("trace missing pseudo-retirement")
	}
	if !strings.Contains(out, "from=buffer") {
		t.Fatal("trace missing buffer-injected dispatches")
	}
}

func TestTracerLimitStopsOutput(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeNone), simpleLoop())
	c.SetTracer(&sb, 50)
	c.Run(2_000)
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if !strings.HasPrefix(line, "cycle=") {
			continue
		}
		var cy int64
		if _, err := fmtSscanf(line, &cy); err != nil {
			t.Fatalf("unparseable trace line %q", line)
		}
		if cy > 50 {
			t.Fatalf("trace line beyond the limit: %q", line)
		}
	}
	c.SetTracer(nil, 0)
	n := sb.Len()
	c.Run(3_000)
	if sb.Len() != n {
		t.Fatal("disabled tracer still wrote")
	}
}

// fmtSscanf extracts the cycle number from a trace line.
func fmtSscanf(line string, cy *int64) (int, error) {
	rest := strings.TrimPrefix(line, "cycle=")
	i := strings.IndexByte(rest, ' ')
	if i < 0 {
		i = len(rest)
	}
	var v int64
	for _, ch := range rest[:i] {
		if ch < '0' || ch > '9' {
			return 0, errBadTrace
		}
		v = v*10 + int64(ch-'0')
	}
	*cy = v
	return 1, nil
}

var errBadTrace = errorString("bad trace line")

type errorString string

func (e errorString) Error() string { return string(e) }
