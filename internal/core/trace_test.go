package core

import (
	"encoding/json"
	"strings"
	"testing"

	"runaheadsim/internal/trace"
)

func TestTracerEmitsPipelineEvents(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeNone), simpleLoop())
	c.SetTracer(&sb, 0)
	c.Run(200)
	out := sb.String()
	for _, want := range []string{"fetch", "dispatch", "issue", "complete", "commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q events:\n%.500s", want, out)
		}
	}
	if !strings.Contains(out, "cycle=") {
		t.Fatal("trace lines must carry cycles")
	}
}

func TestTracerRunaheadEvents(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeBufferCC), gatherLoop(8))
	c.SetTracer(&sb, 0)
	c.Run(5_000)
	out := sb.String()
	if !strings.Contains(out, "runahead enter") || !strings.Contains(out, "mode=buffer") {
		t.Fatal("trace missing runahead entry")
	}
	if !strings.Contains(out, "runahead exit") {
		t.Fatal("trace missing runahead exit")
	}
	if !strings.Contains(out, "pretire") {
		t.Fatal("trace missing pseudo-retirement")
	}
	if !strings.Contains(out, "from=buffer") {
		t.Fatal("trace missing buffer-injected dispatches")
	}
}

func TestTracerLimitStopsOutput(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeNone), simpleLoop())
	c.SetTracer(&sb, 50)
	c.Run(2_000)
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if !strings.HasPrefix(line, "cycle=") {
			continue
		}
		var cy int64
		if _, err := fmtSscanf(line, &cy); err != nil {
			t.Fatalf("unparseable trace line %q", line)
		}
		// The limit is exclusive: tracing runs while now < limit, so the
		// last possible traced cycle is limit-1.
		if cy >= 50 {
			t.Fatalf("trace line at or beyond the limit: %q", line)
		}
	}
	c.SetTracer(nil, 0)
	n := sb.Len()
	c.Run(3_000)
	if sb.Len() != n {
		t.Fatal("disabled tracer still wrote")
	}
}

// TestTracerLimitBoundary pins the exclusive-limit contract directly on the
// on() predicate: cycle limit-1 is traced, cycle limit is not.
func TestTracerLimitBoundary(t *testing.T) {
	tr := &Tracer{limit: 50}
	if !tr.on(49) {
		t.Fatal("cycle limit-1 must be traced")
	}
	if tr.on(50) {
		t.Fatal("cycle == limit must not be traced (limit is exclusive)")
	}
	unlimited := &Tracer{limit: 0}
	if !unlimited.on(1 << 40) {
		t.Fatal("limit <= 0 means unlimited tracing")
	}
}

// TestEventSinkJSONLThroughCore runs a memory-bound workload with the JSONL
// sink attached and checks that every line parses and that the memory-system
// event kinds (llc-miss, dram-access, sample) show up alongside the pipeline
// kinds.
func TestEventSinkJSONLThroughCore(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeBufferCC), gatherLoop(8))
	c.SetEventSink(trace.NewJSONLSink(&sb), 0)
	c.Run(5_000)
	if err := c.CloseEventSink(); err != nil {
		t.Fatalf("close: %v", err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
		k, _ := ev["kind"].(string)
		kinds[k]++
	}
	for _, want := range []string{"fetch", "dispatch", "issue", "complete", "commit",
		"runahead-enter", "runahead-exit", "llc-miss", "dram", "sample"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in JSONL trace (kinds seen: %v)", want, kinds)
		}
	}
}

// TestEventSinkChromeThroughCore runs with the Chrome sink attached and checks
// the output is a valid trace_event JSON document.
func TestEventSinkChromeThroughCore(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeBufferCC), gatherLoop(8))
	c.SetEventSink(trace.NewChromeSink(&sb), 0)
	c.Run(5_000)
	if err := c.CloseEventSink(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

// TestTracerSquashEvents checks that branch mispredictions produce squash
// events on a branchy workload.
func TestTracerSquashEvents(t *testing.T) {
	var sb strings.Builder
	c := New(testConfig(ModeNone), simpleLoop())
	c.SetTracer(&sb, 0)
	c.Run(2_000)
	if c.Stats().SquashedUops > 0 && !strings.Contains(sb.String(), "squash") {
		t.Fatal("uops were squashed but no squash events were traced")
	}
}

// fmtSscanf extracts the cycle number from a trace line.
func fmtSscanf(line string, cy *int64) (int, error) {
	rest := strings.TrimPrefix(line, "cycle=")
	i := strings.IndexByte(rest, ' ')
	if i < 0 {
		i = len(rest)
	}
	var v int64
	for _, ch := range rest[:i] {
		if ch < '0' || ch > '9' {
			return 0, errBadTrace
		}
		v = v*10 + int64(ch-'0')
	}
	*cy = v
	return 1, nil
}

var errBadTrace = errorString("bad trace line")

type errorString string

func (e errorString) Error() string { return string(e) }
