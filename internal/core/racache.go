package core

// raCache is the runahead cache (Table 1: 512 bytes, 4-way set associative,
// 8-byte lines). Runahead stores write it so their data can be forwarded to
// runahead loads without becoming architecturally visible; entries may be
// poisoned. It is reset on every runahead exit.
type raCache struct {
	sets  [][]raLine
	ways  int
	shift uint
	mask  uint64
	stamp uint64

	Writes, Hits, Misses uint64
}

type raLine struct {
	tag      uint64
	valid    bool
	poisoned bool
	value    int64
	lastUse  uint64
}

func newRACache(sizeBytes, ways, lineBytes int) *raCache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 || sizeBytes%(ways*lineBytes) != 0 {
		panic("core: invalid runahead cache geometry")
	}
	nsets := sizeBytes / (ways * lineBytes)
	if nsets&(nsets-1) != 0 || lineBytes&(lineBytes-1) != 0 {
		panic("core: runahead cache sets/lines must be powers of two")
	}
	c := &raCache{ways: ways, mask: uint64(nsets - 1)}
	for 1<<c.shift != lineBytes {
		c.shift++
	}
	c.sets = make([][]raLine, nsets)
	backing := make([]raLine, nsets*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways]
	}
	return c
}

func (c *raCache) setOf(addr uint64) []raLine { return c.sets[(addr>>c.shift)&c.mask] }
func (c *raCache) tagOf(addr uint64) uint64   { return addr >> c.shift }

// Write records a runahead store. Poisoned data is recorded as poisoned so
// forwarding propagates the poison.
func (c *raCache) Write(addr uint64, value int64, poisoned bool) {
	c.Writes++
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	vi := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			vi = i
			goto fill
		}
		if !set[i].valid {
			vi = i
		} else if set[vi].valid && set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
fill:
	c.stamp++
	set[vi] = raLine{tag: tag, valid: true, poisoned: poisoned, value: value, lastUse: c.stamp}
}

// Read forwards runahead store data to a runahead load.
func (c *raCache) Read(addr uint64) (value int64, poisoned, hit bool) {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stamp++
			set[i].lastUse = c.stamp
			c.Hits++
			return set[i].value, set[i].poisoned, true
		}
	}
	c.Misses++
	return 0, false, false
}

// Reset invalidates everything (runahead exit).
func (c *raCache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = raLine{}
		}
	}
}
