package core

import (
	"testing"

	"runaheadsim/internal/prog"
)

// TestCPIStackSumsToCycles is the accounting invariant: every cycle of every
// run lands in exactly one CPI bucket, so the bucket sum equals the cycle
// count — across every workload × runahead mode combination.
func TestCPIStackSumsToCycles(t *testing.T) {
	progs := []struct {
		name   string
		mk     func() *prog.Program
		target uint64
	}{
		{"simple-loop", simpleLoop, 2_000},
		{"gather-loop", func() *prog.Program { return gatherLoop(4) }, 5_000},
		{"pointer-chase", pointerChase, 3_000},
	}
	modes := []Mode{ModeNone, ModeTraditional, ModeBuffer, ModeBufferCC, ModeHybrid, ModeAdaptive}
	for _, p := range progs {
		for _, mode := range modes {
			t.Run(p.name+"/"+mode.String(), func(t *testing.T) {
				c := New(testConfig(mode), p.mk())
				st := c.Run(p.target)
				if st.Cycles == 0 {
					t.Fatal("run completed in zero cycles")
				}
				if sum := st.CPIStackSum(); sum != st.Cycles {
					t.Fatalf("CPI stack sum %d != cycles %d (stack: %v)",
						sum, st.Cycles, st.CPIStack)
				}
			})
		}
	}
}

// TestCPIStackSurvivesResetStats checks the invariant still holds when the
// measurement window starts mid-run (the harness's warmup + ResetStats flow).
func TestCPIStackSurvivesResetStats(t *testing.T) {
	c := New(testConfig(ModeBufferCC), gatherLoop(4))
	c.Run(2_000)
	c.ResetStats()
	st := c.Run(c.Stats().Committed + 5_000)
	if sum := st.CPIStackSum(); sum != st.Cycles {
		t.Fatalf("post-reset CPI stack sum %d != cycles %d (stack: %v)", sum, st.Cycles, st.CPIStack)
	}
}

// TestCPIStackBucketsPlausible sanity-checks bucket attribution on two
// extremes: a compute loop should be dominated by base cycles, and a
// memory-bound gather should show memory-side stalls in the baseline.
func TestCPIStackBucketsPlausible(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	st := c.Run(5_000)
	if frac := st.CPIFraction(CPIBase); frac < 0.3 {
		t.Errorf("compute loop: base fraction %.2f, want >= 0.3 (stack: %v)", frac, st.CPIStack)
	}

	c = New(testConfig(ModeNone), gatherLoop(0))
	st = c.Run(5_000)
	memFrac := st.CPIFraction(CPIDRAM) + st.CPIFraction(CPILLCMiss)
	if memFrac < 0.2 {
		t.Errorf("gather loop baseline: memory-stall fraction %.2f, want >= 0.2 (stack: %v)", memFrac, st.CPIStack)
	}

	c = New(testConfig(ModeBufferCC), gatherLoop(0))
	st = c.Run(5_000)
	if st.RunaheadCycles > 0 && st.CPIStack[CPIRunaheadOverhead] == 0 {
		t.Error("runahead ran but no cycles were attributed to runahead-overhead")
	}
}

// TestCPIBucketStrings keeps the bucket labels stable (they appear in CSV
// headers and report output).
func TestCPIBucketStrings(t *testing.T) {
	want := []string{"base", "frontend", "branch-recovery", "llc-miss", "dram", "runahead-overhead", "other"}
	for i, b := range CPIBuckets() {
		if b.String() != want[i] {
			t.Errorf("bucket %d: got %q, want %q", i, b.String(), want[i])
		}
	}
}
