package core

import (
	"fmt"
	"reflect"

	"runaheadsim/internal/stats"
)

// Stats aggregates every event counter the figures and the energy model
// consume. All counts are in micro-ops unless noted.
type Stats struct {
	Cycles    int64
	Committed uint64 // correct-path retired uops (excludes runahead pseudo-retires)

	// Front end.
	Fetched            uint64
	Decoded            uint64
	FetchActiveCycles  int64 // cycles the fetch stage did work (for clock gating)
	DecodeActiveCycles int64
	FEGatedCycles      int64 // cycles fetch+decode were clock-gated in buffer mode
	ICacheStallCycles  int64

	// Rename/dispatch/issue/execute.
	Renamed      uint64
	Issued       uint64
	ExecALU      uint64
	ExecMul      uint64
	ExecDiv      uint64
	ExecFP       uint64
	ExecMem      uint64
	ExecBranch   uint64
	PRFReads     uint64
	PRFWrites    uint64
	LoadRetries  uint64
	StoreForward uint64

	// Branches and wrong-path execution. Wrong-path loads keep their memory
	// requests after the squash — often a useful prefetch (the paper cites
	// Mutlu et al. [23] on wrong-path references being beneficial).
	Branches       uint64
	Mispredicts    uint64
	SquashedUops   uint64
	WrongPathLoads uint64

	// Commit-side.
	StoreBufFullStall int64
	ROBStallCycles    int64 // cycles commit could not retire anything
	MemStallCycles    int64 // subset of ROBStallCycles where the head was a DRAM-bound load

	// Runahead generally.
	RunaheadIntervals     uint64
	RunaheadCycles        int64
	RunaheadBufferCycles  int64 // cycles in buffer-driven runahead
	RunaheadTradCycles    int64 // cycles in traditional (front-end-driven) runahead
	RunaheadUops          uint64
	RunaheadLoads         uint64
	RunaheadMissesLLC     uint64 // new DRAM-bound demand misses generated in runahead
	PoisonedUops          uint64
	RunaheadEntrySkipped  uint64 // entries suppressed by the enhancements
	RunaheadEntriesFailed uint64 // buffer-only mode: no chain available, stalled instead

	// Chain generation / chain cache.
	ChainsGenerated   uint64
	ChainGenFailures  uint64 // no matching PC in the ROB
	ChainsTooLong     uint64 // generated chain exceeded MaxChainLength
	ChainGenCycles    int64
	PCCAMSearches     uint64
	DestCAMSearches   uint64
	SQCAMSearches     uint64
	ROBChainReads     uint64
	ChainCacheHits    uint64
	ChainCacheMisses  uint64
	ChainCacheExact   uint64 // cache hits whose chain matches the fresh ROB chain
	ChainCacheChecked uint64 // cache hits where a fresh chain could be generated to compare
	BufferUopsIssued  uint64
	HybridChoseBuffer uint64
	HybridChoseTrad   uint64
	AdaptiveDemotions uint64

	// Checkpointing energy events.
	CheckpointRegReads  uint64
	CheckpointRegWrites uint64

	// Dependence-walk instrumentation (Figures 2-5).
	DemandDRAMMisses     uint64           // normal-mode loads that went to DRAM
	MissSourcesOnChip    uint64           // of those, misses whose chain has no off-chip ancestor
	RAChainUops          uint64           // distinct runahead uops on some miss chain (Fig 3)
	RATotalUops          uint64           // runahead uops executed while tracking (Fig 3)
	RAChainsUnique       uint64           // Fig 4
	RAChainsRepeated     uint64           // Fig 4
	ChainLengths         *stats.Histogram // Fig 5 (uops per miss chain)
	MissesPerInterval    *stats.Histogram // Fig 10
	RunaheadIntervalLens *stats.Histogram

	// CPIStack attributes every cycle to exactly one bucket (see CPIBucket);
	// the per-bucket counts sum to Cycles.
	CPIStack [NumCPIBuckets]int64
}

func newStats() *Stats {
	return &Stats{
		ChainLengths:         stats.NewHistogram(40, 4),
		MissesPerInterval:    stats.NewHistogram(64, 1),
		RunaheadIntervalLens: stats.NewHistogram(64, 32),
	}
}

// IPC returns committed uops per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Counters exports every scalar counter into a stats.Set keyed by field
// name, with histograms summarized as <name>.count/.mean/.max and the CPI
// stack as cpi.<bucket>. The Set's sorted String renderer gives output whose
// line set and order are stable across runs and code motion — the format the
// -stats dump and CI trace-diffing rely on.
func (s *Stats) Counters() *stats.Set {
	set := stats.NewSet()
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		name := t.Field(i).Name
		switch f.Kind() {
		case reflect.Int64:
			set.Add(name, uint64(f.Int()))
		case reflect.Uint64:
			set.Add(name, f.Uint())
		case reflect.Array: // CPIStack
			for b := CPIBucket(0); b < NumCPIBuckets; b++ {
				set.Add(fmt.Sprintf("cpi.%s", b), uint64(s.CPIStack[b]))
			}
		case reflect.Ptr: // *stats.Histogram
			if h, ok := f.Interface().(*stats.Histogram); ok && h != nil {
				set.Add(name+".count", h.Count)
				set.Add(name+".mean", uint64(h.Mean()))
				set.Add(name+".max", h.MaxSeen)
			}
		}
	}
	return set
}
