package core

import (
	"bytes"
	"math/rand"
	"testing"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/trace"
)

// issueRecorder is a trace.Sink that keeps the exact issue stream — (cycle,
// seq) pairs in emission order — plus a seq→PC map built from dispatch
// events. The lockstep test compares streams across schedulers; the PRF-read
// test maps issued uops back to their static source counts.
type issueRecorder struct {
	issues []issueRec
	pcOf   map[uint64]uint64
}

type issueRec struct {
	cycle int64
	seq   uint64
}

func (r *issueRecorder) Emit(ev *trace.Event) {
	switch ev.Kind {
	case trace.Dispatch:
		if r.pcOf != nil {
			r.pcOf[ev.Seq] = ev.PC
		}
	case trace.Issue:
		r.issues = append(r.issues, issueRec{cycle: ev.Cycle, seq: ev.Seq})
	}
}

func (r *issueRecorder) Close() error { return nil }

// runRecorded runs one core over p to target commits with an issue recorder
// attached, drains it, and returns the recorder and the machine snapshot.
func runRecorded(t *testing.T, cfg Config, p *prog.Program, target uint64) (*issueRecorder, *Core, []byte) {
	t.Helper()
	c := New(cfg, p)
	rec := &issueRecorder{pcOf: make(map[uint64]uint64)}
	c.SetEventSink(rec, 0)
	c.Run(target)
	c.SetEventSink(nil, 0)
	if err := c.Drain(); err != nil {
		t.Fatalf("%v scheduler: %v", cfg.Scheduler, err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("%v scheduler: %v", cfg.Scheduler, err)
	}
	return rec, c, snap
}

// lockstepCompare runs the same program under both schedulers and requires
// the complete issue streams — which uop issued on which cycle, in selection
// order — to be identical, along with final cycle counts, statistics-bearing
// snapshots, and architectural state. This is the acceptance invariant for
// the event-driven scheduler: not "same final answer", but the same selection
// sequence cycle by cycle.
func lockstepCompare(t *testing.T, tag string, cfg Config, p *prog.Program, target uint64) {
	t.Helper()
	evCfg, scanCfg := cfg, cfg
	evCfg.Scheduler = SchedEvent
	scanCfg.Scheduler = SchedScan
	evRec, evCore, evSnap := runRecorded(t, evCfg, p, target)
	scanRec, scanCore, scanSnap := runRecorded(t, scanCfg, p, target)

	if len(evRec.issues) != len(scanRec.issues) {
		t.Fatalf("%s: event scheduler issued %d uops, scan issued %d", tag, len(evRec.issues), len(scanRec.issues))
	}
	for i := range evRec.issues {
		if evRec.issues[i] != scanRec.issues[i] {
			t.Fatalf("%s: issue %d diverges: event picked seq %d at cycle %d, scan picked seq %d at cycle %d",
				tag, i, evRec.issues[i].seq, evRec.issues[i].cycle, scanRec.issues[i].seq, scanRec.issues[i].cycle)
		}
	}
	if evCore.Now() != scanCore.Now() {
		t.Fatalf("%s: event scheduler finished at cycle %d, scan at %d", tag, evCore.Now(), scanCore.Now())
	}
	if evCore.ArchRegs() != scanCore.ArchRegs() {
		t.Fatalf("%s: architectural register state diverged", tag)
	}
	// Snapshot bytes carry every statistic, the memory image, cache and
	// predictor contents; the configuration fingerprint excludes Scheduler,
	// so byte equality is the strongest equivalence statement available.
	if !bytes.Equal(evSnap, scanSnap) {
		t.Fatalf("%s: machine snapshots differ between schedulers (%d vs %d bytes)", tag, len(evSnap), len(scanSnap))
	}
}

// TestSchedulerLockstep is the scan-vs-event property test over randomized
// programs and all runahead flavors the paper evaluates (baseline, runahead
// buffer, runahead buffer + chain cache), plus the hybrid and traditional
// modes that route through the same issue logic.
func TestSchedulerLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential simulation is slow")
	}
	modes := []Mode{ModeNone, ModeTraditional, ModeBuffer, ModeBufferCC, ModeHybrid}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		cfg := testConfig(modes[seed%int64(len(modes))])
		cfg.Enhancements = seed%2 == 0
		lockstepCompare(t, p.Name, cfg, p, 10_000)
	}
}

// TestSchedulerLockstepMemoryBound repeats the lockstep check on the
// memory-bound gather workload, where runahead intervals (and therefore
// flush/re-enroll churn in the scheduler) dominate.
func TestSchedulerLockstepMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("differential simulation is slow")
	}
	p := gatherLoop(2)
	for _, mode := range []Mode{ModeNone, ModeBufferCC, ModeHybrid} {
		lockstepCompare(t, "gather/"+mode.String(), testConfig(mode), p, 20_000)
	}
}

// srcCount returns how many register sources a static uop names — the number
// of physical-register-file reads its issue costs.
func srcCount(u *isa.Uop) int {
	n := 0
	if u.Src1 != isa.RegNone {
		n++
	}
	if u.Src2 != isa.RegNone {
		n++
	}
	return n
}

// TestPRFReadsCountsActualSources pins the PRF-read accounting: the energy
// model charges one read per register source actually named, summed over
// every issued uop (wrong-path and runahead included — those reads happen in
// hardware too). The seed accounting charged a flat two reads per issue,
// over-counting immediates, moves, and single-source ops.
func TestPRFReadsCountsActualSources(t *testing.T) {
	p := storeLoadLoop() // known mix: 0-source MOVIs, 1-source ALU/loads, 2-source ops
	c := New(testConfig(ModeNone), p)
	rec := &issueRecorder{pcOf: make(map[uint64]uint64)}
	c.SetEventSink(rec, 0)
	st := c.Run(20_000)
	c.SetEventSink(nil, 0)

	expected := uint64(0)
	for _, is := range rec.issues {
		pc, ok := rec.pcOf[is.seq]
		if !ok {
			t.Fatalf("issued seq %d never dispatched", is.seq)
		}
		idx := int((pc - isa.TextBase) / isa.UopBytes)
		if idx < 0 || idx >= p.NumUops() {
			t.Fatalf("issued seq %d has PC %#x outside the program", is.seq, pc)
		}
		expected += uint64(srcCount(&p.Uops[idx]))
	}
	if st.Issued != uint64(len(rec.issues)) {
		t.Fatalf("Issued = %d but %d issue events traced", st.Issued, len(rec.issues))
	}
	if st.PRFReads != expected {
		t.Fatalf("PRFReads = %d, want %d (one per named source of each issued uop)", st.PRFReads, expected)
	}
	// The mix must actually exercise the fix: with 0- and 1-source uops in
	// flight, the correct count is strictly below the old flat 2×issued.
	if st.PRFReads >= 2*st.Issued {
		t.Fatalf("PRFReads = %d not below 2×Issued = %d; instruction mix does not cover the regression", st.PRFReads, 2*st.Issued)
	}
}

// TestPredictedEAConservative pins the disambiguation fix: a load whose
// address sources are poisoned has an unknowable address, so predictedEA must
// refuse (not fabricate an EA from the stale register value) and both
// schedulers' loadCanIssue must conservatively hold the load.
func TestPredictedEAConservative(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	u := &isa.Uop{Op: isa.LD, Dst: isa.Reg(3), Src1: isa.Reg(1), Src2: isa.RegNone}
	d := &DynInst{Seq: 7, U: u, PDst: 100, PSrc1: 64, PSrc2: noPhys, POld: noPhys, Renamed: true}

	c.prf.ready[64] = true
	c.prf.val[64] = 0x2000
	if ea, ok := d.predictedEA(c); !ok || ea != 0x2000 {
		t.Fatalf("clean sources: predictedEA = (%#x, %v), want (0x2000, true)", ea, ok)
	}

	c.prf.poison[64] = true
	if _, ok := d.predictedEA(c); ok {
		t.Fatal("poisoned base register: predictedEA claimed the address is knowable")
	}
	if c.loadCanIssueScan(0, d) {
		t.Fatal("scan scheduler issued a load with an unknowable address")
	}
	if c.loadCanIssueEvent(d) {
		t.Fatal("event scheduler issued a load with an unknowable address")
	}

	// A scaled load also depends on its index register.
	c.prf.poison[64] = false
	us := &isa.Uop{Op: isa.LD, Dst: isa.Reg(3), Src1: isa.Reg(1), Src2: isa.Reg(2), Scaled: true}
	ds := &DynInst{Seq: 8, U: us, PDst: 101, PSrc1: 64, PSrc2: 65, POld: noPhys, Renamed: true}
	c.prf.poison[65] = true
	if _, ok := ds.predictedEA(c); ok {
		t.Fatal("poisoned index register: predictedEA claimed the address is knowable")
	}
}

// TestWatchdogRunaheadEntryProgress pins the watchdog fix: committing to a
// runahead entry is forward progress (the preceding stall was a legal
// DRAM-bound wait), so entry must advance lastProgress before any
// pseudo-retirement happens.
func TestWatchdogRunaheadEntryProgress(t *testing.T) {
	c := New(testConfig(ModeTraditional), simpleLoop())
	c.now = 1000
	c.lastProgress = 3
	u := &isa.Uop{Op: isa.LD, Dst: isa.Reg(3), Src1: isa.Reg(1), Src2: isa.RegNone}
	d := &DynInst{Seq: 1, PC: isa.TextBase, U: u, PDst: 100, PSrc1: 64, PSrc2: noPhys, POld: noPhys, DRAMBound: true}
	c.tryEnterRunahead(d)
	if !c.ra.active {
		t.Fatal("traditional-mode entry did not activate runahead")
	}
	if c.lastProgress != c.now {
		t.Fatalf("runahead entry left lastProgress at %d (now %d)", c.lastProgress, c.now)
	}
}

// TestWatchdogSurvivesRunaheadEntry drives the memory-bound workload with the
// watchdog clock pinned to its limit on every pre-entry cycle. Entry must
// reset the clock; if it did not, the first entry would trip the watchdog
// immediately (the panic the seed code produced under a small WatchdogCycles
// with long legal stalls).
func TestWatchdogSurvivesRunaheadEntry(t *testing.T) {
	for _, mode := range []Mode{ModeTraditional, ModeBufferCC} {
		cfg := testConfig(mode)
		cfg.WatchdogCycles = 10_000
		c := New(cfg, gatherLoop(0))
		entered := false
		c.SetCycleHook(func() {
			if c.ra.active {
				entered = true
				return
			}
			// Keep the machine exactly at the watchdog limit until entry: any
			// post-entry cycle without progress accounting would panic.
			c.lastProgress = c.now - cfg.WatchdogCycles
		})
		c.Run(3_000)
		if !entered {
			t.Fatalf("%v: gather workload never entered runahead", mode)
		}
	}
}
