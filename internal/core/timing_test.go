package core

import (
	"testing"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// These directed microbenchmarks pin the pipeline's timing behaviour: issue
// width, functional-unit latency, and dependency serialization must all be
// visible in measured IPC.

// serialChain builds a loop of n dependent ops of the given opcode.
func serialChain(op isa.Opcode, n int) *prog.Program {
	b := prog.NewBuilder("serial")
	loop := b.Block("loop")
	for i := 0; i < n; i++ {
		loop.OpI(op, 1, 1, 3)
	}
	loop.Jmp(loop)
	return b.MustBuild()
}

// parallelOps builds a loop of n independent ops across distinct registers.
func parallelOps(op isa.Opcode, n int) *prog.Program {
	b := prog.NewBuilder("parallel")
	loop := b.Block("loop")
	for i := 0; i < n; i++ {
		loop.OpI(op, isa.Reg(1+i%30), isa.Reg(1+i%30), 3)
	}
	loop.Jmp(loop)
	return b.MustBuild()
}

func ipcOf(t *testing.T, p *prog.Program) float64 {
	t.Helper()
	c := New(testConfig(ModeNone), p)
	c.Run(5_000) // warm
	c.ResetStats()
	st := c.Run(30_000)
	return st.IPC()
}

func TestSerialMulChainBoundByLatency(t *testing.T) {
	// A dependent MULI chain can retire at most one op per MUL latency
	// (3 cycles): IPC ≈ 1/3.
	ipc := ipcOf(t, serialChain(isa.MULI, 24))
	if ipc > 0.40 || ipc < 0.25 {
		t.Fatalf("serial MUL chain IPC = %.3f, want ≈ 1/3", ipc)
	}
}

func TestSerialAddChainBoundByLatency(t *testing.T) {
	// A dependent ADDI chain is bound by the 1-cycle ALU: IPC ≈ 1.
	ipc := ipcOf(t, serialChain(isa.ADDI, 24))
	if ipc > 1.1 || ipc < 0.85 {
		t.Fatalf("serial ADD chain IPC = %.3f, want ≈ 1", ipc)
	}
}

func TestParallelOpsReachIssueWidth(t *testing.T) {
	// Independent single-cycle ops should approach the 4-wide machine width
	// (fetch's taken-branch limit shaves a little off a 31-uop body).
	ipc := ipcOf(t, parallelOps(isa.ADDI, 30))
	if ipc < 3.0 {
		t.Fatalf("independent ALU IPC = %.2f, want near 4", ipc)
	}
}

func TestDivSerializesHard(t *testing.T) {
	// Dependent DIVs at 24-cycle latency: IPC ≈ 1/24.
	ipc := ipcOf(t, serialChain(isa.DIV, 24))
	if ipc > 0.06 {
		t.Fatalf("serial DIV chain IPC = %.3f, want ≈ 0.04", ipc)
	}
}

func TestLoadToUseLatency(t *testing.T) {
	// A pointer-follow loop over one cached line: each iteration is a
	// 1 (issue->AGU) + 3 (L1) load-to-use chain plus the loop overhead.
	b := prog.NewBuilder("l2u")
	slot := b.Alloc(64, 64)
	b.Mem().Write64(slot, int64(slot)) // self-pointer
	e := b.Block("e")
	loop := b.Block("loop")
	e.Movi(1, int64(slot)).Jmp(loop)
	loop.Ld(1, 1, 0).Bnez(1, loop)
	p := b.MustBuild()
	c := New(testConfig(ModeNone), p)
	c.Run(2_000)
	c.ResetStats()
	st := c.Run(10_000)
	cyclesPerIter := 2 * float64(st.Cycles) / float64(st.Committed)
	// The serial load-to-use path should be ~4-6 cycles per iteration.
	if cyclesPerIter < 3.5 || cyclesPerIter > 8 {
		t.Fatalf("load-to-use loop = %.1f cycles/iter, want ≈ 5", cyclesPerIter)
	}
}

func TestMemPortLimitVisible(t *testing.T) {
	// A loop of independent cached loads is bound by the 2 D-cache ports,
	// not the 4-wide issue width.
	b := prog.NewBuilder("ports")
	base := b.Alloc(4096, 64)
	e := b.Block("e")
	loop := b.Block("loop")
	e.Movi(1, int64(base)).Jmp(loop)
	for i := 0; i < 16; i++ {
		loop.Ld(isa.Reg(2+i%8), 1, int64(i*8))
	}
	loop.Jmp(loop)
	p := b.MustBuild()
	c := New(testConfig(ModeNone), p)
	c.Run(2_000)
	c.ResetStats()
	st := c.Run(30_000)
	ipc := st.IPC()
	if ipc > 2.4 {
		t.Fatalf("all-load IPC = %.2f; the 2 memory ports should cap it near 2", ipc)
	}
	if ipc < 1.5 {
		t.Fatalf("all-load IPC = %.2f implausibly low", ipc)
	}
}
