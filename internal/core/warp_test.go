package core

import (
	"bytes"
	"math/rand"
	"testing"

	"runaheadsim/internal/prog"
	"runaheadsim/internal/stats"
)

// runClocked runs one core over p to target commits with an issue recorder
// attached, drains it, and returns the recorder, the core, and the machine
// snapshot — the clock-mode twin of runRecorded.
func runClocked(t *testing.T, cfg Config, p *prog.Program, target uint64) (*issueRecorder, *Core, []byte) {
	t.Helper()
	c := New(cfg, p)
	rec := &issueRecorder{}
	c.SetEventSink(rec, 0)
	c.Run(target)
	c.SetEventSink(nil, 0)
	if err := c.Drain(); err != nil {
		t.Fatalf("%v clock: %v", cfg.ClockMode, err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("%v clock: %v", cfg.ClockMode, err)
	}
	return rec, c, snap
}

// clockLockstepCompare runs the same program under the warped and per-cycle
// clocks and requires the complete issue streams, final cycle counts,
// statistics-bearing snapshots, and architectural state to be identical.
// This is the acceptance invariant for the clock warp: skipped spans must be
// provably cycle-exact no-ops, not approximations.
func clockLockstepCompare(t *testing.T, tag string, cfg Config, p *prog.Program, target uint64) {
	t.Helper()
	warpCfg, tickCfg := cfg, cfg
	warpCfg.ClockMode = ClockWarp
	tickCfg.ClockMode = ClockTick
	wRec, wCore, wSnap := runClocked(t, warpCfg, p, target)
	tRec, tCore, tSnap := runClocked(t, tickCfg, p, target)

	if len(wRec.issues) != len(tRec.issues) {
		t.Fatalf("%s: warp clock issued %d uops, tick issued %d", tag, len(wRec.issues), len(tRec.issues))
	}
	for i := range wRec.issues {
		if wRec.issues[i] != tRec.issues[i] {
			t.Fatalf("%s: issue %d diverges: warp picked seq %d at cycle %d, tick picked seq %d at cycle %d",
				tag, i, wRec.issues[i].seq, wRec.issues[i].cycle, tRec.issues[i].seq, tRec.issues[i].cycle)
		}
	}
	if wCore.Now() != tCore.Now() {
		t.Fatalf("%s: warp clock finished at cycle %d, tick at %d", tag, wCore.Now(), tCore.Now())
	}
	if wCore.ArchRegs() != tCore.ArchRegs() {
		t.Fatalf("%s: architectural register state diverged", tag)
	}
	if wCore.Stats().CPIStackSum() != tCore.Stats().CPIStackSum() {
		t.Fatalf("%s: CPI stack totals diverged: warp %d, tick %d",
			tag, wCore.Stats().CPIStackSum(), tCore.Stats().CPIStackSum())
	}
	// Snapshot bytes carry every statistic, the memory image, cache and
	// predictor contents; the configuration fingerprint excludes ClockMode,
	// so byte equality is the strongest equivalence statement available.
	if !bytes.Equal(wSnap, tSnap) {
		t.Fatalf("%s: machine snapshots differ between clock modes (%d vs %d bytes)", tag, len(wSnap), len(tSnap))
	}
}

// TestClockWarpLockstep is the warp-vs-tick property test over randomized
// programs and all five runahead flavors, mirroring TestSchedulerLockstep.
// Half the seeds also flip the issue scheduler so the warp is exercised over
// both select implementations.
func TestClockWarpLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential simulation is slow")
	}
	modes := []Mode{ModeNone, ModeTraditional, ModeBuffer, ModeBufferCC, ModeHybrid}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		cfg := testConfig(modes[seed%int64(len(modes))])
		cfg.Enhancements = seed%2 == 0
		if seed%2 == 1 {
			cfg.Scheduler = SchedScan
		}
		clockLockstepCompare(t, p.Name, cfg, p, 10_000)
	}
}

// TestClockWarpLockstepMemoryBound repeats the lockstep check on the
// memory-bound gather workload — the regime the warp exists for, where the
// ROB sits blocked on DRAM for hundreds of cycles at a time — and requires
// the warp to have actually skipped a substantial share of the simulated
// cycles (otherwise the equivalence holds vacuously).
func TestClockWarpLockstepMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("differential simulation is slow")
	}
	p := gatherLoop(2)
	for _, mode := range []Mode{ModeNone, ModeBufferCC, ModeHybrid} {
		clockLockstepCompare(t, "gather/"+mode.String(), testConfig(mode), p, 20_000)
	}

	c := New(testConfig(ModeNone), p)
	c.Run(20_000)
	warps, skipped := c.WarpStats()
	if warps == 0 || skipped == 0 {
		t.Fatalf("baseline gather run never warped (warps=%d skipped=%d)", warps, skipped)
	}
	if frac := float64(skipped) / float64(c.Now()); frac < 0.5 {
		t.Fatalf("warp skipped only %.1f%% of %d cycles on a DRAM-bound workload", frac*100, c.Now())
	}
}

// TestClockWarpObservability pins the warp's interaction with the per-cycle
// observability hooks: tracer occupancy samples and timeline intervals fire
// at exact cycle boundaries, so the warp must split spans there rather than
// jump over them. Timelines under both clocks must match sample for sample.
func TestClockWarpObservability(t *testing.T) {
	p := gatherLoop(0)
	run := func(mode ClockMode) *Core {
		cfg := testConfig(ModeBufferCC)
		cfg.ClockMode = mode
		c := New(cfg, p)
		c.SetTimeline(stats.NewTimeline(512, 4096))
		c.Run(5_000)
		return c
	}
	w, tk := run(ClockWarp), run(ClockTick)
	if w.Now() != tk.Now() {
		t.Fatalf("final cycles diverge with a timeline attached: warp %d, tick %d", w.Now(), tk.Now())
	}
	ws, ts := w.Timeline().Samples(), tk.Timeline().Samples()
	if len(ws) != len(ts) {
		t.Fatalf("warp produced %d timeline samples, tick %d", len(ws), len(ts))
	}
	for i := range ws {
		if ws[i] != ts[i] {
			t.Fatalf("timeline sample %d diverges:\nwarp: %+v\ntick: %+v", i, ws[i], ts[i])
		}
	}
	if warps, _ := w.WarpStats(); warps == 0 {
		t.Fatal("warp never fired with a timeline attached; the clamp test is vacuous")
	}
}
