package core

import (
	"fmt"

	"runaheadsim/internal/isa"
)

// regFile is the physical register file with per-register value, ready bit,
// poison bit (the runahead addition shown shaded in Figure 6), and producer
// tag for the dependence-walk instrumentation.
type regFile struct {
	val    []int64
	ready  []bool
	poison []bool
	prod   []uint64
}

func newRegFile(n int) *regFile {
	return &regFile{
		val:    make([]int64, n),
		ready:  make([]bool, n),
		poison: make([]bool, n),
		prod:   make([]uint64, n),
	}
}

// renamer holds the register alias table and free list.
type renamer struct {
	rat  [isa.NumArchRegs]PhysReg
	free []PhysReg
}

func newRenamer(numPhys int) *renamer {
	r := &renamer{}
	for i := range r.rat {
		r.rat[i] = PhysReg(i)
	}
	r.free = make([]PhysReg, 0, numPhys)
	for p := numPhys - 1; p >= isa.NumArchRegs; p-- {
		r.free = append(r.free, PhysReg(p))
	}
	return r
}

func (r *renamer) haveFree() bool { return len(r.free) > 0 }

func (r *renamer) alloc() PhysReg {
	if len(r.free) == 0 {
		panic("core: rename with empty free list")
	}
	p := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	return p
}

func (r *renamer) release(p PhysReg) { r.free = append(r.free, p) }

// reset restores the identity mapping (arch register i in physical register
// i) and refills the free list — the wholesale restore used on runahead exit.
func (r *renamer) reset(numPhys int) {
	for i := range r.rat {
		r.rat[i] = PhysReg(i)
	}
	r.free = r.free[:0]
	for p := numPhys - 1; p >= isa.NumArchRegs; p-- {
		r.free = append(r.free, PhysReg(p))
	}
}

// checkInvariant verifies that no physical register is both free and mapped,
// and that mapped+free+inflight counts add up. Used by tests.
func (r *renamer) checkInvariant(rob *robFile, numPhys int) error {
	seen := make(map[PhysReg]string, numPhys)
	for a, p := range r.rat {
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("phys %d mapped twice (%s and rat[r%d])", p, prev, a)
		}
		seen[p] = fmt.Sprintf("rat[r%d]", a)
	}
	for _, p := range r.free {
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("phys %d both free and %s", p, prev)
		}
		seen[p] = "free"
	}
	for i := 0; i < rob.count; i++ {
		d := rob.at(i)
		for _, p := range []PhysReg{d.POld} {
			if p == noPhys {
				continue
			}
			if prev, dup := seen[p]; dup && prev == "free" {
				return fmt.Errorf("phys %d (POld of seq %d) also on free list", p, d.Seq)
			}
		}
	}
	return nil
}

// robFile is the reorder buffer: a ring of in-flight instructions.
type robFile struct {
	entries []*DynInst
	head    int
	count   int
}

func newROB(n int) *robFile { return &robFile{entries: make([]*DynInst, n)} }

func (r *robFile) full() bool  { return r.count == len(r.entries) }
func (r *robFile) empty() bool { return r.count == 0 }
func (r *robFile) size() int   { return r.count }

// at returns the i-th oldest instruction (0 = head).
func (r *robFile) at(i int) *DynInst {
	return r.entries[(r.head+i)%len(r.entries)]
}

func (r *robFile) push(d *DynInst) {
	if r.full() {
		panic("core: ROB overflow")
	}
	pos := (r.head + r.count) % len(r.entries)
	d.ROBPos = pos
	r.entries[pos] = d
	r.count++
}

func (r *robFile) popHead() *DynInst {
	if r.empty() {
		panic("core: ROB underflow")
	}
	d := r.entries[r.head]
	r.entries[r.head] = nil
	r.head = (r.head + 1) % len(r.entries)
	r.count--
	return d
}

// popTail removes and returns the youngest instruction (squash path).
func (r *robFile) popTail() *DynInst {
	if r.empty() {
		panic("core: ROB underflow")
	}
	pos := (r.head + r.count - 1) % len(r.entries)
	d := r.entries[pos]
	r.entries[pos] = nil
	r.count--
	return d
}

func (r *robFile) clear() {
	for i := range r.entries {
		r.entries[i] = nil
	}
	r.head, r.count = 0, 0
}
