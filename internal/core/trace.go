package core

import (
	"io"

	"runaheadsim/internal/trace"
)

// sampleInterval is how often an attached tracer emits occupancy Sample
// events (the Chrome sink's ROB/MSHR counter tracks).
const sampleInterval = 64

// Tracer forwards structured pipeline events to a trace.Sink until the cycle
// limit. The zero-cost default is off: every emission site in the pipeline is
// guarded by a single `c.tracer != nil` check, so a disabled tracer costs
// nothing on the hot path.
type Tracer struct {
	sink  trace.Sink
	limit int64 // stop tracing at this cycle (0 = no limit)
	ev    trace.Event
}

// SetTracer starts emitting the classic text trace to w for every cycle
// strictly before limit (0 for unlimited). Passing nil w disables tracing.
// It is a convenience wrapper over SetEventSink with a trace.TextSink.
func (c *Core) SetTracer(w io.Writer, limit int64) {
	if w == nil {
		c.SetEventSink(nil, 0)
		return
	}
	c.SetEventSink(trace.NewTextSink(w), limit)
}

// SetEventSink attaches a structured event sink, replacing any previous one.
// Events are emitted for cycles strictly before limit ("trace until cycle
// limit"); limit 0 means no limit. Passing a nil sink disables tracing. The
// caller owns the sink and must Close it after the run to flush buffered
// output. The memory-system event hooks (LLC misses, DRAM grants) are shared
// with the always-on flight recorder — installMemHooks keeps them live for
// the recorder even while no tracer is attached.
func (c *Core) SetEventSink(s trace.Sink, limit int64) {
	if s == nil {
		c.tracer = nil
	} else {
		c.tracer = &Tracer{sink: s, limit: limit}
	}
	c.installMemHooks()
}

// CloseEventSink closes the attached sink (flushing buffered output and, for
// the Chrome sink, writing the document trailer) and detaches it. It is a
// no-op when no sink is attached.
func (c *Core) CloseEventSink() error {
	t := c.tracer
	c.SetEventSink(nil, 0)
	if t == nil {
		return nil
	}
	return t.sink.Close()
}

// on reports whether events at cycle now pass the limit filter: tracing runs
// until the limit cycle, i.e. the event at cycle == limit is NOT emitted.
func (t *Tracer) on(now int64) bool {
	return t.limit <= 0 || now < t.limit
}

// emit fills the tracer's reusable event with the common header and hands it
// to the sink. It is nil-safe: with no tracer attached (or past the cycle
// limit) it returns before touching the sink, so call sites need no guard of
// their own — though the hot-path helpers below keep one to skip building
// the Event value entirely.
func (c *Core) emit(ev trace.Event) {
	t := c.tracer
	if t == nil || !t.on(c.now) {
		return
	}
	ev.Cycle = c.now
	t.ev = ev
	t.sink.Emit(&t.ev)
}

func (c *Core) traceFetch(d *DynInst) {
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.Fetch, Seq: d.Seq, PC: d.PC, Op: d.U.Op.String(), PredTaken: d.PredTaken})
	}
}

func (c *Core) traceDispatch(d *DynInst) {
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.Dispatch, Seq: d.Seq, PC: d.PC, ROBPos: d.ROBPos, FromBuffer: d.FromBuffer})
	}
}

func (c *Core) traceIssue(d *DynInst) {
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.Issue, Seq: d.Seq, Op: d.U.Op.String()})
	}
}

func (c *Core) traceComplete(d *DynInst) {
	if c.tracer != nil {
		ev := trace.Event{Kind: trace.Complete, Seq: d.Seq, Op: d.U.Op.String(), Value: d.Value, Poisoned: d.Poisoned}
		if !d.Poisoned && d.U.Op.IsMem() {
			ev.EA, ev.Level = d.EA, d.MemLevel.String()
		}
		c.emit(ev)
	}
}

func (c *Core) traceCommit(d *DynInst, pseudo bool) {
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.Commit, Seq: d.Seq, PC: d.PC, Op: d.U.Op.String(), Pseudo: pseudo, Start: d.FetchCycle})
	}
}

func (c *Core) traceSquash(d *DynInst) {
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.Squash, Seq: d.Seq, PC: d.PC})
	}
}

func (c *Core) traceRunaheadEnter(pc uint64, mode string, chainLen int) {
	if c.flight != nil {
		c.flight.Record(&trace.Event{Cycle: c.now, Kind: trace.RunaheadEnter, PC: pc, Mode: mode, ChainLen: chainLen})
	}
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.RunaheadEnter, PC: pc, Mode: mode, ChainLen: chainLen})
	}
}

func (c *Core) traceRunaheadExit(misses uint64) {
	if c.flight != nil {
		c.flight.Record(&trace.Event{Cycle: c.now, Kind: trace.RunaheadExit, Misses: misses})
	}
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.RunaheadExit, Misses: misses})
	}
}

// traceSample emits the periodic occupancy snapshot feeding counter tracks.
// Called from Cycle every sampleInterval cycles while a tracer is attached.
func (c *Core) traceSample() {
	if c.tracer != nil {
		c.emit(trace.Event{Kind: trace.Sample, ROBOcc: c.rob.size(), MSHROcc: c.h.OutstandingDataMissesR(c.memReq)})
	}
}
