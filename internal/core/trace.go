package core

import (
	"fmt"
	"io"
)

// Tracer receives a line per pipeline event. Attach one with SetTracer to
// watch the machine cycle by cycle; the zero-cost default is off. The format
// is one event per line:
//
//	cycle=123 fetch    seq=45 pc=0x400048 muli
//	cycle=125 dispatch seq=45 rob=17
//	cycle=127 issue    seq=45
//	cycle=128 complete seq=45 val=90
//	cycle=130 commit   seq=45
//	cycle=140 runahead enter pc=0x400080 mode=buffer chain=9
//	cycle=260 runahead exit  misses=7
type Tracer struct {
	w     io.Writer
	limit int64 // stop tracing after this cycle (0 = no limit)
}

// SetTracer starts emitting pipeline events to w until cycle limit (0 for
// unlimited). Passing nil w disables tracing.
func (c *Core) SetTracer(w io.Writer, limit int64) {
	if w == nil {
		c.tracer = nil
		return
	}
	c.tracer = &Tracer{w: w, limit: limit}
}

func (c *Core) tracef(format string, args ...any) {
	t := c.tracer
	if t == nil || (t.limit > 0 && c.now > t.limit) {
		return
	}
	fmt.Fprintf(t.w, "cycle=%d ", c.now)
	fmt.Fprintf(t.w, format, args...)
	fmt.Fprintln(t.w)
}

func (c *Core) traceFetch(d *DynInst) {
	if c.tracer != nil {
		c.tracef("fetch    seq=%d pc=%#x %v predTaken=%v", d.Seq, d.PC, d.U.Op, d.PredTaken)
	}
}

func (c *Core) traceDispatch(d *DynInst) {
	if c.tracer != nil {
		src := ""
		if d.FromBuffer {
			src = " from=buffer"
		}
		c.tracef("dispatch seq=%d pc=%#x rob=%d%s", d.Seq, d.PC, d.ROBPos, src)
	}
}

func (c *Core) traceIssue(d *DynInst) {
	if c.tracer != nil {
		c.tracef("issue    seq=%d %v", d.Seq, d.U.Op)
	}
}

func (c *Core) traceComplete(d *DynInst) {
	if c.tracer != nil {
		extra := ""
		if d.Poisoned {
			extra = " POISONED"
		} else if d.U.Op.IsMem() {
			extra = fmt.Sprintf(" ea=%#x lvl=%v", d.EA, d.MemLevel)
		}
		c.tracef("complete seq=%d %v val=%d%s", d.Seq, d.U.Op, d.Value, extra)
	}
}

func (c *Core) traceCommit(d *DynInst, pseudo bool) {
	if c.tracer != nil {
		kind := "commit  "
		if pseudo {
			kind = "pretire "
		}
		c.tracef("%s seq=%d pc=%#x", kind, d.Seq, d.PC)
	}
}

func (c *Core) traceRunahead(event string, args ...any) {
	if c.tracer != nil {
		c.tracef("runahead "+event, args...)
	}
}
