package core

import (
	"fmt"

	"runaheadsim/internal/bpred"
	"runaheadsim/internal/isa"
	"runaheadsim/internal/memsys"
	"runaheadsim/internal/metrics"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/trace"
)

// eventWindow bounds how far ahead core-internal events (execution
// completions, load replays) can be scheduled. The longest operation latency
// is far below this.
const eventWindow = 128

// evKind names a core-internal event. Events are typed records rather than
// closures so the per-uop hot path allocates nothing beyond the DynInst
// itself; every event is a (kind, uop) pair dispatched by fireEvent.
type evKind uint8

const (
	evExecLoad    evKind = iota // AGU + disambiguation + memory access
	evExecStore                 // AGU + store-data capture
	evExecBranch                // branch resolution
	evALUComplete               // ALU/MUL/DIV/FP result write-back
	evComplete                  // plain completion (value already in d.Value)
)

// coreEvent is one scheduled core-internal event. gen snapshots the uop's
// pool generation at schedule time; a mismatch at fire time means the slot
// was recycled and the event is dead. at is the cycle the event is due;
// Cycle verifies it on dispatch — a mismatch means the warped clock jumped
// over a due event, which the warp's target computation must make impossible.
type coreEvent struct {
	kind evKind
	d    *DynInst
	gen  uint64
	at   int64
}

// Core is the simulated processor: one out-of-order core attached to the
// memory hierarchy, running one program.
type Core struct {
	cfg Config
	p   *prog.Program
	mem *prog.Memory // architectural (committed) memory image
	h   *memsys.Hierarchy
	// memReq is this core's requestor ID in the (possibly shared) hierarchy:
	// 0 for a private single-core hierarchy, the core index in a cluster.
	//simlint:nosnapshot construction-time topology; the restoring host rebuilds the same cluster shape
	memReq int
	bp     *bpred.Predictor

	prf *regFile
	ren *renamer
	rob *robFile //simlint:nosnapshot empty in a drained core; restore targets a freshly constructed machine
	st  *Stats

	now int64
	seq uint64

	// archVal mirrors the committed architectural register values — the
	// checkpoint runahead restores.
	archVal [isa.NumArchRegs]int64

	// Front end.
	fetchPC         uint64
	fetchStallUntil int64
	fetchGen        uint64 // bumped on redirects (snapshot/debug epoch marker)
	icacheWait      bool   //simlint:nosnapshot no I-fetch is outstanding in a drained core
	//simlint:nosnapshot only meaningful while icacheWait is set, which a drained core never is
	fetchWaitLine uint64 // line the live outstanding I-fetch is waiting on
	lastFetchLine uint64
	//simlint:nosnapshot the front-end queue is empty in a drained core
	frontQ       []*DynInst // fetched & decoding; ready for rename at readyAt
	frontReadyAt []int64    //simlint:nosnapshot parallel to frontQ, which drains empty
	//simlint:nosnapshot head index of frontQ, which drains empty
	frontHead int // index of the queue head (see frontPop)

	// Back end occupancy.
	rsCount  int       //simlint:nosnapshot zero in a drained core (occupancy counter)
	lqCount  int       //simlint:nosnapshot zero in a drained core (occupancy counter)
	sqCount  int       //simlint:nosnapshot zero in a drained core (occupancy counter)
	storeBuf []sbEntry //simlint:nosnapshot the store buffer drains empty before a snapshot
	sbHead   int       //simlint:nosnapshot head index of storeBuf, which drains empty

	// Core-internal scheduled events (completions, replays). Slots are
	// reused in place: firing truncates to length zero, keeping the backing
	// arrays warm. pendingCoreEvents counts events in the wheel (including
	// ones whose uop died; they still fire and no-op) so the clock warp can
	// skip the slot scan entirely when the wheel is empty.
	events            [eventWindow][]coreEvent //simlint:nosnapshot the event wheel is empty in a quiesced core
	pendingCoreEvents int                      //simlint:nosnapshot zero when the wheel is empty
	//simlint:nosnapshot cache over the empty wheel; recomputed as events are scheduled
	nextCoreEvCache int64 // lower bound on the earliest pending event's cycle

	// Event-driven wakeup/select scheduler state (see sched.go). Always
	// allocated; under SchedScan only the store-address index is bypassed and
	// the wakeup structures stay empty. The restore path rebuilds it, so the
	// snapshot-completeness contract sees it referenced.
	sched issueSched

	// dynPool recycles DynInst allocations. A uop is released exactly once —
	// at commit, pseudo-retire, squash, or front-end discard — and its gen is
	// bumped so outstanding lazy references recognize the slot as recycled.
	// Reuse order is LIFO and deterministic.
	//simlint:nosnapshot host-side allocation pool; its contents never reach simulated state
	dynPool []*DynInst

	// Runahead machinery.
	ra      raState
	racache *raCache
	ccache  *chainCache

	// missAge records, per line, the cycle at which the line's DRAM request
	// was first issued. The first runahead enhancement ("issued to memory
	// less than 250 instructions ago") reads it: a blocking load whose
	// underlying request is old — typically because a previous runahead
	// interval already prefetched it — is about to return, so entering
	// runahead for it would buy almost nothing.
	missAge map[uint64]int64

	// pcScore is the adaptive-hybrid policy's per-PC productivity table.
	pcScore map[uint64]uint8

	// Instrumentation.
	dep    *depTracker //simlint:nosnapshot DepTrack cores refuse to snapshot (no wire format)
	tracer *Tracer     //simlint:nosnapshot observability only; the restoring host attaches its own
	//simlint:nosnapshot observability only; rebuilt from config by the restoring host
	flight   *trace.Ring    // always-on flight recorder (nil when disabled)
	flightIn int64          //simlint:nosnapshot sampling countdown for the non-snapshotted recorder
	tl       *timelineState //simlint:nosnapshot observability only; the restoring host attaches its own
	//simlint:nosnapshot host hook; the restoring harness re-registers it
	onCommit func(*DynInst) // correct-path retirement hook (simcheck oracle)
	//simlint:nosnapshot host hook; the restoring harness re-registers it
	onCycle      func() // end-of-cycle hook (simcheck invariants)
	lastProgress int64
	statsZero    int64 // cycle at the last ResetStats

	// CPI-stack accounting signals.
	//simlint:nosnapshot per-cycle scratch; zero between cycles
	cycleCommits       int   // correct-path commits this cycle
	branchRecoverUntil int64 // redirect+refill shadow of the last misprediction
	raRecoverUntil     int64 // flush+refill shadow of the last runahead exit

	// Clock-warp signals (warp.go). cycleIssued/cycleRenamed gate the
	// quiescence detector; warps/warpedCycles count its work for reporting
	// and deliberately live outside Stats so snapshot bytes stay identical
	// across clock modes.
	cycleIssued  int   //simlint:nosnapshot per-cycle scratch; zero between cycles
	cycleRenamed int   //simlint:nosnapshot per-cycle scratch; zero between cycles
	warps        int64 //simlint:nosnapshot host-side speed accounting; kept out so bytes match across clock modes
	warpedCycles int64 //simlint:nosnapshot host-side speed accounting; kept out so bytes match across clock modes

	// prof accumulates simulator self-profiling counters in plain fields;
	// publishMetrics (metrics.go) flushes deltas to the process-wide
	// registry at Run boundaries. Never snapshotted, never part of Stats.
	//simlint:nosnapshot simulator self-profiling; flushed to the metrics registry, never simulated state
	prof coreProf

	// Shared memory-system callbacks, built once in New. The store buffer
	// drains in order with one inflight write, and the I-fetch wait is
	// identified by (icacheWait, fetchWaitLine) rather than a captured
	// generation — so neither needs a per-request closure.
	storeDone func(memsys.Outcome) //simlint:nosnapshot closure rebuilt by the constructor
	fetchDone func(memsys.Outcome) //simlint:nosnapshot closure rebuilt by the constructor

	// draining gates the fetch stage while Drain runs the machine to
	// quiescence for a snapshot.
	//simlint:nosnapshot transient Drain flag; snapshots are taken after draining completes
	draining bool
}

type sbEntry struct {
	addr     uint64
	inflight bool
}

// New builds a core running program p. The program's initial memory image is
// cloned, so multiple cores can run the same program.
func New(cfg Config, p *prog.Program) *Core {
	// The per-cycle reference kernel keeps the seed's per-cycle DRAM grant
	// scan, so the equivalence suite compares two independently computed
	// readiness schedules (horizon vs. exhaustive scan), not one fast path
	// against itself.
	cfg.Mem.DRAM.Reference = cfg.ClockMode == ClockTick
	return NewShared(cfg, p, memsys.New(cfg.Mem), 0)
}

// NewShared builds a core running program p as requestor req of hierarchy h.
// The multi-core cluster uses it to attach N cores to one shared memory
// system; h must have been built from cfg.Mem (with the requestor count and
// DRAM reference-mode choices the caller wants). The program's initial
// memory image is cloned, so multiple cores can run the same program.
func NewShared(cfg Config, p *prog.Program, h *memsys.Hierarchy, req int) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid program: %v", err))
	}
	c := &Core{
		cfg:     cfg,
		p:       p,
		mem:     p.NewMemory(),
		h:       h,
		memReq:  req,
		bp:      bpred.New(cfg.BPred),
		prf:     newRegFile(cfg.NumPhysRegs),
		ren:     newRenamer(cfg.NumPhysRegs),
		rob:     newROB(cfg.ROBSize),
		st:      newStats(),
		fetchPC: p.AddrOf(0),
		racache: newRACache(cfg.RACacheBytes, cfg.RACacheWays, cfg.RACacheLineBytes),
		ccache:  newChainCache(cfg.ChainCacheEntries),
		missAge: make(map[uint64]int64),
		sched:   newIssueSched(cfg.NumPhysRegs),
	}
	for i := 0; i < isa.NumArchRegs; i++ {
		c.prf.ready[i] = true
	}
	if cfg.DepTrack {
		c.dep = newDepTracker()
	}
	c.lastFetchLine = ^uint64(0)
	if n := cfg.FlightRecorderEvents; n >= 0 {
		if n == 0 {
			n = defaultFlightEvents
		}
		c.flight = trace.NewRing(n)
		c.flightIn = flightSampleEvery
	}
	c.installMemHooks()
	if metrics.Enabled {
		regCoreMetrics() // instruments exist before the first warp observes one
	}
	c.storeDone = func(memsys.Outcome) { c.sbPop() }
	c.fetchDone = func(o memsys.Outcome) {
		// A stale fill (for a fetch the front end was redirected away from)
		// either finds icacheWait already clear or names a different line;
		// only the live wait matches both. A redirect straight back to the
		// same still-missing line merges into the same MSHR, so the stale and
		// live callbacks fire on the same cycle and the early clear is
		// indistinguishable from the live one.
		if c.icacheWait && o.Line == c.fetchWaitLine {
			c.icacheWait = false
			c.lastFetchLine = o.Line
		}
	}
	return c
}

// Stats returns the core's statistics.
func (c *Core) Stats() *Stats { return c.st }

// Mem returns the committed memory image (for equivalence tests).
func (c *Core) Mem() *prog.Memory { return c.mem }

// ArchRegs returns the committed architectural register values.
func (c *Core) ArchRegs() [isa.NumArchRegs]int64 { return c.archVal }

// Hierarchy returns the memory system (for statistics).
func (c *Core) Hierarchy() *memsys.Hierarchy { return c.h }

// Bpred returns the branch predictor (for statistics).
func (c *Core) Bpred() *bpred.Predictor { return c.bp }

// ChainCache returns the dependence chain cache (for statistics).
func (c *Core) ChainCacheStats() (hits, misses uint64) {
	return c.ccache.HitCount, c.ccache.MissCount
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// CachedChains returns the dependence chains currently held in the chain
// cache (for inspection; see Chain.String for Figure 7-style rendering).
func (c *Core) CachedChains() []Chain { return c.ccache.CachedChains() }

// newDyn returns a zeroed DynInst, reusing a recycled slot when one is
// available. The generation survives the reset — that is the whole point.
func (c *Core) newDyn() *DynInst {
	n := len(c.dynPool)
	if n == 0 {
		c.prof.dynPoolNews++
		return &DynInst{}
	}
	c.prof.dynPoolHits++
	d := c.dynPool[n-1]
	c.dynPool[n-1] = nil
	c.dynPool = c.dynPool[:n-1]
	*d = DynInst{gen: d.gen}
	return d
}

// freeDyn releases a uop that has left the machine. Bumping gen invalidates
// every outstanding lazy reference (events, memory callbacks, scheduler
// entries) without searching for them.
func (c *Core) freeDyn(d *DynInst) {
	d.gen++
	c.dynPool = append(c.dynPool, d)
}

func (c *Core) schedule(at int64, kind evKind, d *DynInst) {
	if at <= c.now {
		at = c.now + 1
	}
	if at-c.now >= eventWindow {
		panic("core: event scheduled beyond the event window")
	}
	slot := at % eventWindow
	c.events[slot] = append(c.events[slot], coreEvent{kind: kind, d: d, gen: d.gen, at: at})
	if c.pendingCoreEvents == 0 || at < c.nextCoreEvCache {
		c.nextCoreEvCache = at
	}
	c.pendingCoreEvents++
}

// nextCoreEventAt returns the cycle of the earliest scheduled core event, or
// memsys.Never when the wheel is empty. Every slot holds events for exactly
// one future cycle (schedule bounds at-now to the window), so the first
// non-empty slot going forward is the answer. nextCoreEvCache keeps the call
// O(1) on the warp's hot path: schedule maintains it as the running minimum,
// and it only goes stale (pointing at an already-fired cycle) when the
// minimum event fires — the one case that pays for a wheel scan to refresh
// it. Only the warp calls this, and only when pendingCoreEvents > 0.
func (c *Core) nextCoreEventAt() int64 {
	if c.nextCoreEvCache > c.now {
		return c.nextCoreEvCache
	}
	for dt := int64(1); dt < eventWindow; dt++ {
		if len(c.events[(c.now+dt)%eventWindow]) > 0 {
			c.nextCoreEvCache = c.now + dt
			return c.now + dt
		}
	}
	return memsys.Never
}

// fireEvent dispatches one typed event. ALU results are computed here rather
// than at issue: the sources of an issued uop are stable (ready bits are
// monotonic for a consumer's lifetime and physical registers are never
// reused while a reader is in flight), so the value is the same and the
// closure capture the old scheduler needed is avoided.
func (c *Core) fireEvent(ev coreEvent) {
	d := ev.d
	if d.gen != ev.gen {
		return // the slot was recycled; this event belongs to a dead uop
	}
	switch ev.kind {
	case evExecLoad:
		c.execLoad(d)
	case evExecStore:
		c.execStore(d)
	case evExecBranch:
		c.execBranch(d)
	case evALUComplete:
		if d.Squashed || d.Executed {
			return
		}
		d.Prod1, d.Prod2 = c.srcProd(d.PSrc1), c.srcProd(d.PSrc2)
		d.Value = prog.Eval(d.U, c.srcVal(d.PSrc1), c.srcVal(d.PSrc2))
		c.complete(d)
	case evComplete:
		c.complete(d)
	}
}

// Run executes until target correct-path uops have committed. It returns the
// statistics (also available via Stats).
func (c *Core) Run(target uint64) *Stats {
	for c.st.Committed < target {
		c.Cycle()
		c.WatchdogCheck()
	}
	return c.FinalizeRun()
}

// WatchdogCheck panics when the core has made no forward progress for
// Config.WatchdogCycles cycles (and that bound is positive). Run calls it
// every cycle; the multi-core cluster calls it per core per step, so a
// wedged core in a mix dies with the same diagnostics as a single-core run.
func (c *Core) WatchdogCheck() {
	if c.cfg.WatchdogCycles > 0 && c.now-c.lastProgress > c.cfg.WatchdogCycles {
		msg := fmt.Sprintf("core: watchdog — no progress for %d cycles at cycle %d (program %q, mode %v, ROB %d/%d, committed %d, runahead=%v)",
			c.cfg.WatchdogCycles, c.now, c.p.Name, c.cfg.Mode, c.rob.size(), c.cfg.ROBSize, c.st.Committed, c.ra.active)
		// Pin the terminal condition into the flight recorder so the
		// crash dump ends with the why, then die. The recover sites
		// (harness workers, the CLIs) write the ring out as JSONL.
		if c.flight != nil {
			c.flight.Mark(c.now, msg)
		}
		panic(msg)
	}
}

// FinalizeRun stamps the run-relative cycle count into the statistics and
// flushes self-profiling metrics — the bookkeeping Run performs when its
// commit target is reached. Externally clocked cores (cluster members) have
// no Run loop, so their owner calls this when the run ends.
func (c *Core) FinalizeRun() *Stats {
	c.st.Cycles = c.now - c.statsZero
	c.publishMetrics()
	return c.st
}

// Cycle advances the machine by one clock: it ticks the private memory
// hierarchy, then runs the pipeline stages via cycleBody.
//
//simlint:hotpath
func (c *Core) Cycle() {
	c.now++
	c.h.Tick(c.now)
	c.cycleBody()
	if c.cfg.ClockMode == ClockWarp {
		c.maybeWarp()
	}
}

// SyncClock sets the core's clock without running a cycle. The cluster
// calls it on every core BEFORE ticking the shared hierarchy: hierarchy
// events fire core callbacks (miss notifications, fill completions) that
// stamp c.now, and in the single-core sequence the clock is advanced before
// Tick — so an externally clocked core must see the new cycle the same way.
func (c *Core) SyncClock(now int64) { c.now = now }

// StepExt advances the core one cycle under an external clock — the
// multi-core cluster's, which owns the shared hierarchy and has already
// ticked it to now (after SyncClock). The stage sequence is exactly Cycle's,
// so a 1-core cluster stepping `now++; core.SyncClock(now); h.Tick(now);
// core.StepExt(now)` is bit-identical to the single-core `Cycle()`. Clock
// warping is the cluster's job (it must consider every core's wake sources),
// so StepExt never warps on its own.
func (c *Core) StepExt(now int64) {
	c.now = now
	c.cycleBody()
}

// cycleBody runs one cycle's pipeline stages and per-cycle accounting at the
// already-advanced clock c.now, with the hierarchy already ticked.
//
//simlint:hotpath
func (c *Core) cycleBody() {
	c.cycleCommits = 0
	c.cycleIssued = 0
	c.cycleRenamed = 0

	// Fire core events due this cycle. The slot is truncated, not nilled, so
	// the backing array is reused; no handler can append to the firing slot
	// (that would need an event exactly eventWindow cycles out, which
	// schedule rejects).
	slot := c.now % eventWindow
	if evs := c.events[slot]; len(evs) > 0 {
		c.events[slot] = evs[:0]
		c.pendingCoreEvents -= len(evs)
		for _, ev := range evs {
			if ev.at != c.now {
				panicWarpedEvent(ev.at, c.now)
			}
			c.fireEvent(ev)
		}
	}

	if c.ra.active && c.ra.pendingExit {
		c.exitRunahead()
	}

	c.commitStage()
	c.issueStage()
	c.renameStage()
	c.fetchStage()

	// Per-cycle accounting.
	if c.ra.active {
		c.st.RunaheadCycles++
		if c.ra.usingBuffer {
			c.st.RunaheadBufferCycles++
			c.st.FEGatedCycles++
		} else {
			c.st.RunaheadTradCycles++
		}
	}
	c.accountCycle()

	// Observability hooks: all stay behind nil checks so the hot path is
	// untouched when tracing and timelines are off. The flight recorder is
	// the exception — it is always on — so its per-cycle cost is exactly one
	// countdown decrement; the Event copy happens once per flightSampleEvery
	// executed cycles. (Warped spans skip sample cycles entirely: the ring is
	// diagnostic, not part of simulated results, so it deliberately does NOT
	// clamp the warp the way an attached tracer does.)
	if c.flight != nil {
		if c.flightIn--; c.flightIn <= 0 {
			c.flightIn = flightSampleEvery
			c.flight.Record(&trace.Event{Cycle: c.now, Kind: trace.Sample, ROBOcc: c.rob.size(), MSHROcc: c.h.OutstandingDataMissesR(c.memReq)})
		}
	}
	if c.tracer != nil && c.now%sampleInterval == 0 {
		c.traceSample()
	}
	if c.tl != nil {
		c.tickTimeline()
	}
	if c.onCycle != nil {
		c.onCycle()
	}
}

// panicWarpedEvent reports an event that fired off its due cycle — a clock
// bug, not a workload property. Split out of Cycle so the message formatting
// keeps its allocations off the hot path.
//
//go:noinline
func panicWarpedEvent(due, now int64) {
	panic(fmt.Sprintf("core: event due at cycle %d fired at cycle %d (clock warped over a due event)", due, now))
}

// WarpStats reports the clock warp's work: how many warps fired and how many
// cycles they skipped. Deliberately not part of Stats (and not serialized):
// both clock modes must produce bit-identical statistics and snapshots.
func (c *Core) WarpStats() (warps, skipped int64) { return c.warps, c.warpedCycles }

// dump renders a short machine state summary for panics and debugging.
func (c *Core) dump() string {
	s := fmt.Sprintf("cycle=%d committed=%d rob=%d rs=%d lq=%d sq=%d fetchPC=%#x runahead=%v buffer=%v\n",
		c.now, c.st.Committed, c.rob.size(), c.rsCount, c.lqCount, c.sqCount, c.fetchPC, c.ra.active, c.ra.usingBuffer)
	n := c.rob.size()
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		d := c.rob.at(i)
		s += fmt.Sprintf("  rob[%d] seq=%d pc=%#x %v renamed=%v issued=%v exec=%v poison=%v dram=%v\n",
			i, d.Seq, d.PC, d.U.Op, d.Renamed, d.Issued, d.Executed, d.Poisoned, d.DRAMBound)
	}
	return s
}

// ResetStats zeroes every statistics counter in the core and its memory
// system while preserving all microarchitectural state (caches, predictor,
// chain cache contents, in-flight work). Harnesses call it after a warmup
// run so measurements exclude cold-start effects. The cycle and committed
// counts reported by a subsequent Run are relative to this point.
func (c *Core) ResetStats() {
	// Flush self-profiling deltas first: Committed is about to reset, and its
	// published prev must reset with it so the next flush's delta is the
	// post-reset count, not a uint64 wraparound.
	c.publishMetrics()
	c.prof.prev.committed = 0
	c.st = newStats()
	c.statsZero = c.now
	c.h.ResetStats()
	c.bp.ResetStats()
	clear(c.missAge)
	c.ccache.HitCount, c.ccache.MissCount = 0, 0
	c.racache.Writes, c.racache.Hits, c.racache.Misses = 0, 0, 0
	c.ra.haveFurthestReach = false
	c.ra.dramReadsAtEntry = 0
	c.ra.committedAtEntry = 0
}
