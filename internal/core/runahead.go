package core

import (
	"runaheadsim/internal/bpred"
	"runaheadsim/internal/isa"
)

// raState is the runahead controller state for one interval.
type raState struct {
	active      bool
	usingBuffer bool
	pendingExit bool

	blockingSeq  uint64
	blockingPC   uint64
	entryCycle   int64
	lastAttempt  uint64 // blocking seq of the last entry attempt
	retryAt      int64  // next cycle a failed buffer decision may retry (ROB keeps filling)
	noRetry      bool   // the attempt was suppressed for this stall; don't retry
	checkpointPC uint64
	ghrSnapshot  uint64
	rasSnapshot  bpred.RASSnapshot

	// Runahead buffer.
	chain         *Chain
	bufferPos     int
	bufferReadyAt int64

	// Interval statistics baselines.
	bufferMemLoads    uint64 // buffer-injected loads that reached DRAM this interval
	bufferForwards    uint64 // buffer-injected loads satisfied by store/runahead-cache forwarding
	bufferRealLoads   uint64 // buffer-injected loads that executed with a valid (unpoisoned) address
	dramReadsAtEntry  uint64
	committedAtEntry  uint64
	pseudoRetired     uint64
	furthestReach     uint64 // committed-instruction position reached by the last interval
	haveFurthestReach bool
}

// tryEnterRunahead is called when a DRAM-bound load d blocks the ROB head.
func (c *Core) tryEnterRunahead(d *DynInst) {
	if c.ra.lastAttempt == d.Seq && (c.ra.noRetry || c.now < c.ra.retryAt) {
		return // already decided for this stall
	}
	if c.ra.lastAttempt != d.Seq {
		c.ra.lastAttempt = d.Seq
		c.ra.noRetry = false
	}

	// Runahead enhancements (Section 4.6): suppress intervals that would be
	// too short (the miss was sent to memory long ago) or overlapping (the
	// previous interval already ran past this point).
	if c.cfg.Enhancements {
		if at, ok := c.missAge[d.EA&^63]; ok && c.now-at >= c.cfg.EnhAgeCycles {
			// The request behind this miss went out long ago (usually issued
			// by an earlier runahead interval); the data is nearly here.
			c.st.RunaheadEntrySkipped++
			c.ra.noRetry = true
			return
		}
		if c.ra.haveFurthestReach && c.st.Committed <= c.ra.furthestReach {
			// The previous interval already ran past this point.
			c.st.RunaheadEntrySkipped++
			c.ra.noRetry = true
			return
		}
	}

	useBuffer := false
	var chain *Chain
	genCycles := int64(0)

	switch c.cfg.Mode {
	case ModeTraditional:
		// Nothing to decide.
	case ModeBuffer, ModeBufferCC, ModeHybrid, ModeAdaptive:
		useBuffer, chain, genCycles = c.decideBuffer(d)
		if useBuffer && c.cfg.Mode == ModeAdaptive && c.bufferScore(d.PC) == 0 {
			// Feedback demotion: past buffer intervals for this PC produced
			// no buffer-driven misses (a serial dependence chain), so no
			// runahead flavour can help — skip the interval and save the
			// pipeline flush and replay it would cost.
			c.st.AdaptiveDemotions++
			c.ra.noRetry = true
			return
		}
		if !useBuffer && c.cfg.Mode != ModeHybrid && c.cfg.Mode != ModeAdaptive {
			// The pure runahead buffer systems have no fallback: without a
			// chain the core stays stalled for now. The window keeps filling
			// while the head is blocked, so another dynamic instance of the
			// blocking PC may yet arrive — retry shortly.
			c.st.RunaheadEntriesFailed++
			c.ra.retryAt = c.now + 8
			return
		}
		if c.cfg.Mode == ModeHybrid || c.cfg.Mode == ModeAdaptive {
			if useBuffer {
				c.st.HybridChoseBuffer++
			} else {
				c.st.HybridChoseTrad++
			}
		}
	}

	// Commit to entering: checkpoint architectural state (the committed
	// register values are already mirrored in archVal), branch history and
	// the return address stack (Section 3), and charge the checkpoint energy
	// events (Section 5).
	c.ra.active = true
	c.ra.usingBuffer = useBuffer
	c.ra.pendingExit = false
	// Entering runahead IS forward progress for watchdog purposes: the stall
	// so far was a legal DRAM-bound wait, and pseudo-retirement (which also
	// advances lastProgress) may take a few more cycles to start. Without
	// this, a long legal stall followed by a legal runahead interval could
	// trip a small WatchdogCycles budget mid-interval.
	c.lastProgress = c.now
	c.ra.blockingSeq = d.Seq
	c.ra.blockingPC = d.PC
	c.ra.entryCycle = c.now
	c.ra.checkpointPC = d.PC
	c.ra.ghrSnapshot = c.bp.GHR()
	c.ra.rasSnapshot = c.bp.RAS().Snapshot()
	c.ra.chain = chain
	c.ra.bufferPos = 0
	c.ra.bufferReadyAt = c.now + genCycles
	c.ra.dramReadsAtEntry = c.h.Req(c.memReq).DRAMReadsDemand
	c.ra.committedAtEntry = c.st.Committed
	c.ra.pseudoRetired = 0
	c.ra.bufferMemLoads = 0
	c.ra.bufferForwards = 0
	c.ra.bufferRealLoads = 0
	c.st.RunaheadIntervals++
	c.st.CheckpointRegReads += isa.NumArchRegs
	c.st.CheckpointRegWrites += isa.NumArchRegs
	if c.tracer != nil || c.flight != nil {
		mode, chainLen := "traditional", 0
		if useBuffer {
			mode = "buffer"
			chainLen = chain.Len()
		}
		c.traceRunaheadEnter(d.PC, mode, chainLen)
	}

	if c.dep != nil {
		c.dep.beginInterval(c)
	}

	// Poison every load that is waiting on DRAM — classic runahead marks
	// their results invalid so the window can drain past them.
	for i := 0; i < c.rob.size(); i++ {
		e := c.rob.at(i)
		if e.U.Op.IsLoad() && !e.Executed && e.DRAMBound {
			c.poisonComplete(e)
		}
	}
}

// decideBuffer implements the Figure 8 policy: probe the chain cache, else
// generate a chain from the ROB; report whether the runahead buffer should
// be used, with which chain, and how many cycles the decision costs.
func (c *Core) decideBuffer(d *DynInst) (useBuffer bool, chain *Chain, genCycles int64) {
	// One CAM search over the ROB's PC field to find another dynamic
	// instance of the blocking load (Section 4.2).
	c.st.PCCAMSearches++
	match := c.findOtherInstance(d)
	withCC := c.cfg.Mode == ModeBufferCC || c.cfg.Mode == ModeHybrid || c.cfg.Mode == ModeAdaptive
	if match == nil {
		// Without another instance we predict this PC won't miss again soon:
		// traditional runahead is the better mode (Section 4.5).
		c.st.ChainGenFailures++
		return false, nil, 0
	}
	if withCC {
		if cached, ok := c.ccache.Lookup(d.PC); ok {
			c.st.ChainCacheHits++
			// Figure 13 instrumentation: does the cached chain match what
			// the ROB would generate right now? The comparison is free in
			// hardware terms — undo its energy-event counts.
			dest, sq, reads := c.st.DestCAMSearches, c.st.SQCAMSearches, c.st.ROBChainReads
			fresh, _, _ := c.generateChain(match)
			c.st.DestCAMSearches, c.st.SQCAMSearches, c.st.ROBChainReads = dest, sq, reads
			if fresh != nil {
				c.st.ChainCacheChecked++
				if fresh.Signature == cached.Signature {
					c.st.ChainCacheExact++
				}
			}
			return true, cached, 1
		}
		c.st.ChainCacheMisses++
	}
	fresh, searches, truncated := c.generateChain(match)
	if fresh == nil {
		c.st.ChainGenFailures++
		return false, nil, 0
	}
	c.st.ChainsGenerated++
	if truncated {
		c.st.ChainsTooLong++
		if c.cfg.Mode == ModeHybrid || c.cfg.Mode == ModeAdaptive {
			// A chain that overflowed the cap predicts a divergent
			// instruction stream: use traditional runahead (Figure 8).
			return false, nil, 0
		}
	}
	// Timing: one PC CAM cycle, two destination-register searches per cycle,
	// then reading the chain out of the ROB at the superscalar width.
	genCycles = 1 + (int64(searches)+1)/int64(c.cfg.RegSearchesPerCycle) + (int64(fresh.Len())+3)/4
	c.st.ChainGenCycles += genCycles
	if withCC {
		c.ccache.Insert(*fresh)
	}
	return true, fresh, genCycles
}

// findOtherInstance returns the oldest ROB entry with the blocking PC other
// than the blocking load itself.
func (c *Core) findOtherInstance(d *DynInst) *DynInst {
	for i := 0; i < c.rob.size(); i++ {
		e := c.rob.at(i)
		if e.Seq != d.Seq && e.PC == d.PC {
			return e
		}
	}
	return nil
}

// exitRunahead performs the wholesale restore: flush the pipeline, restore
// the checkpointed register state, branch history and RAS, reset the
// runahead cache, and refetch from the blocking load (which now hits).
func (c *Core) exitRunahead() {
	// Interval statistics.
	// Per-requestor so a cluster core counts only its own interval misses,
	// not its neighbors' (identical to the aggregate on a private hierarchy).
	misses := c.h.Req(c.memReq).DRAMReadsDemand - c.ra.dramReadsAtEntry
	c.st.RunaheadMissesLLC += misses
	c.st.MissesPerInterval.Observe(misses)
	c.st.RunaheadIntervalLens.Observe(uint64(c.now - c.ra.entryCycle))
	if c.dep != nil {
		c.dep.endInterval(c)
	}
	if c.cfg.Mode == ModeAdaptive && c.ra.usingBuffer && c.now-c.ra.entryCycle >= 30 {
		// The serial-barren signature is a buffer loop whose loads never
		// even compute a valid address (the chain poisons itself). Loops
		// that execute real loads — hits, forwards or misses — are healthy
		// regardless of how many new misses this particular interval found.
		switch {
		case c.ra.bufferMemLoads > 0:
			c.updateBufferScore(c.ra.blockingPC, c.ra.bufferMemLoads)
		case c.ra.bufferRealLoads == 0 && c.ra.bufferForwards == 0:
			c.updateBufferScore(c.ra.blockingPC, 0)
		}
	}
	if c.cfg.Enhancements && !c.ra.usingBuffer {
		// The "don't re-enter until execution passes the last interval's
		// reach" rule measures front-end progress; buffer-mode pseudo-retires
		// are chain-loop iterations, not program distance, so only
		// traditional intervals update the reach.
		c.ra.furthestReach = c.ra.committedAtEntry + c.ra.pseudoRetired
		c.ra.haveFurthestReach = true
	}

	// Flush everything speculative, including the scheduler's ready queue,
	// waiter lists, and store-address index — nothing in them survives the
	// wholesale restore.
	for c.rob.size() > 0 {
		t := c.rob.popTail()
		t.Squashed = true
		c.freeDyn(t)
	}
	c.rob.clear()
	c.sched.clear()
	c.rsCount, c.lqCount, c.sqCount = 0, 0, 0
	c.dropFrontQ()

	// Restore architectural register state into the identity mapping.
	c.ren.reset(c.cfg.NumPhysRegs)
	for i := 0; i < isa.NumArchRegs; i++ {
		c.prf.val[i] = c.archVal[i]
		c.prf.ready[i] = true
		c.prf.poison[i] = false
		c.prf.prod[i] = 0
	}
	for i := isa.NumArchRegs; i < c.cfg.NumPhysRegs; i++ {
		c.prf.ready[i] = false
		c.prf.poison[i] = false
	}
	c.racache.Reset()
	c.bp.SetGHR(c.ra.ghrSnapshot)
	c.bp.RAS().Restore(c.ra.rasSnapshot)
	c.redirectFetch(c.ra.checkpointPC, 1)

	c.ra.active = false
	c.ra.usingBuffer = false
	c.ra.pendingExit = false
	c.ra.chain = nil
	c.lastProgress = c.now
	// Empty-window cycles inside this shadow are the interval's exit cost
	// (CPI-stack runahead-overhead bucket): flush, refetch, refill.
	c.raRecoverUntil = c.now + 1 + int64(c.cfg.DecodeDepth)
	c.traceRunaheadExit(misses)
}

// bufferScore reads the adaptive policy's 2-bit confidence for a blocking
// PC (starts at weakly-productive).
func (c *Core) bufferScore(pc uint64) uint8 {
	if c.pcScore == nil {
		return 1
	}
	if v, ok := c.pcScore[pc]; ok {
		return v
	}
	return 1
}

// updateBufferScore trains the adaptive policy at interval exit: intervals
// that uncovered misses strengthen the PC, barren ones weaken it.
func (c *Core) updateBufferScore(pc uint64, misses uint64) {
	if c.pcScore == nil {
		c.pcScore = make(map[uint64]uint8)
	}
	if len(c.pcScore) > 4096 {
		clear(c.pcScore)
	}
	v := c.bufferScore(pc)
	if misses >= 1 {
		// Productive intervals rebuild confidence quickly; one good interval
		// outweighs one barren one.
		v += 2
		if v > 3 {
			v = 3
		}
	} else if v > 0 {
		v--
	}
	c.pcScore[pc] = v
}
