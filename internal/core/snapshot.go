package core

import (
	"fmt"
	"reflect"
	"sort"

	"runaheadsim/internal/prog"
	"runaheadsim/internal/snapshot"
	"runaheadsim/internal/stats"
)

// MachineKind is the container kind of a whole-machine snapshot.
const MachineKind = "machine"

// NewStats returns a zeroed Stats with its histograms allocated — the same
// shape newStats gives a fresh core. The sampled-simulation engine merges
// per-interval results into one of these.
func NewStats() *Stats { return newStats() }

// NewPlaceholderStats returns a Stats that stands in for a run that has not
// happened yet: histograms allocated, and the denominators (cycles,
// committed instructions) set to 1 so figure builders that divide don't
// trip. The stat-ownership rule keeps these writes inside the core package.
func NewPlaceholderStats() *Stats {
	st := newStats()
	st.Cycles, st.Committed = 1, 1
	return st
}

// NewTwinStats returns a Stats carrying an analytical-twin prediction: the
// predicted cycle count, the committed-uop count the prediction covers, and
// a CPI stack whose buckets the caller has already scaled to sum to cycles.
// Histograms are allocated but empty — the twin does not predict
// distributions. The stat-ownership rule keeps these writes inside the core
// package.
func NewTwinStats(cycles int64, committed uint64, cpi [NumCPIBuckets]int64) *Stats {
	st := newStats()
	st.Cycles = cycles
	st.Committed = committed
	st.CPIStack = cpi
	return st
}

// SnapshotTo serializes every counter by reflection in declaration order,
// with the field name on the wire: a restore into a build whose Stats struct
// drifted fails on the first mismatched name instead of silently shearing
// every later counter.
func (s *Stats) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("stats")
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	w.Int(t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		w.Str(t.Field(i).Name)
		switch f.Kind() {
		case reflect.Int64:
			w.I64(f.Int())
		case reflect.Uint64:
			w.U64(f.Uint())
		case reflect.Array: // CPIStack
			w.Int(f.Len())
			for j := 0; j < f.Len(); j++ {
				w.I64(f.Index(j).Int())
			}
		case reflect.Ptr: // *stats.Histogram
			h, ok := f.Interface().(*stats.Histogram)
			if !ok || h == nil {
				return fmt.Errorf("core: stats field %s is not a histogram", t.Field(i).Name)
			}
			if err := h.SnapshotTo(w); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: stats field %s has unserializable kind %v", t.Field(i).Name, f.Kind())
		}
	}
	return nil
}

// RestoreFrom reads counters written by SnapshotTo into s.
func (s *Stats) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("stats")
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	if n := r.Int(); r.Err() == nil && n != t.NumField() {
		r.Failf("core: stats has %d fields, snapshot has %d", t.NumField(), n)
	}
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		name := r.Str()
		if r.Err() != nil {
			return r.Err()
		}
		if name != t.Field(i).Name {
			r.Failf("core: stats field %d is %s, snapshot has %s", i, t.Field(i).Name, name)
			return r.Err()
		}
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(r.I64())
		case reflect.Uint64:
			f.SetUint(r.U64())
		case reflect.Array:
			if n := r.Int(); r.Err() == nil && n != f.Len() {
				r.Failf("core: stats array %s has %d entries, snapshot has %d", name, f.Len(), n)
			}
			if r.Err() != nil {
				return r.Err()
			}
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(r.I64())
			}
		case reflect.Ptr:
			h := f.Interface().(*stats.Histogram)
			if err := h.RestoreFrom(r); err != nil {
				return err
			}
		}
	}
	return r.Err()
}

// Merge folds o's counters into s: scalar counters and the CPI stack add,
// histograms merge. The sampled-simulation engine uses it to combine
// per-interval measurements into whole-program figures.
func (s *Stats) Merge(o *Stats) {
	v := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < v.NumField(); i++ {
		f, of := v.Field(i), ov.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(f.Int() + of.Int())
		case reflect.Uint64:
			f.SetUint(f.Uint() + of.Uint())
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(f.Index(j).Int() + of.Index(j).Int())
			}
		case reflect.Ptr:
			if h, ok := f.Interface().(*stats.Histogram); ok && h != nil {
				if oh, ok := of.Interface().(*stats.Histogram); ok && oh != nil {
					h.Merge(oh)
				}
			}
		}
	}
}

// MergeScaled folds o's counters into s scaled by the rational num/den
// (round-to-nearest): the phase-weighted sampled engine extrapolates one
// representative window's counters to the full uop weight of its phase.
// MergeScaled(o, w, w) is exactly Merge(o). Histogram MaxSeen fields are
// extrema, not counts, and merge unscaled.
func (s *Stats) MergeScaled(o *Stats, num, den uint64) {
	if num == den {
		s.Merge(o)
		return
	}
	v := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < v.NumField(); i++ {
		f, of := v.Field(i), ov.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(f.Int() + stats.ScaleI64(of.Int(), num, den))
		case reflect.Uint64:
			f.SetUint(f.Uint() + stats.ScaleU64(of.Uint(), num, den))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(f.Index(j).Int() + stats.ScaleI64(of.Index(j).Int(), num, den))
			}
		case reflect.Ptr:
			if h, ok := f.Interface().(*stats.Histogram); ok && h != nil {
				if oh, ok := of.Interface().(*stats.Histogram); ok && oh != nil {
					h.MergeScaled(oh, num, den)
				}
			}
		}
	}
}

// configFingerprint digests the full configuration. Config is maps-free, so
// the %+v rendering is deterministic, and any parameter difference — pipeline
// widths, cache geometry, runahead mode — changes the digest. The Scheduler,
// ClockMode, DRAM Reference, and FlightRecorderEvents fields are zeroed
// first: they differ only in simulator speed or observability, never in
// simulated behavior, so snapshots taken under any combination interoperate
// (and the equivalence tests compare digests across them directly).
func configFingerprint(cfg Config) uint64 {
	cfg.Scheduler = SchedEvent
	cfg.ClockMode = ClockWarp
	cfg.Mem.DRAM.Reference = false
	cfg.FlightRecorderEvents = 0
	return snapshot.HashString(fmt.Sprintf("%+v", cfg))
}

// ConfigFingerprint is the exported form of the snapshot configuration
// digest: two configurations share a fingerprint exactly when they simulate
// identically. The analytical twin keys its calibration artifacts on it, so
// a coefficient set fitted against one machine can never be silently applied
// to another.
func ConfigFingerprint(cfg Config) uint64 { return configFingerprint(cfg) }

// Snapshot serializes the whole machine into a self-verifying container. The
// core must be quiesced (call Drain first); dependence-walk instrumentation
// holds cross-interval state with no wire format, so DepTrack cores refuse to
// snapshot.
func (c *Core) Snapshot() ([]byte, error) {
	if c.cfg.DepTrack {
		return nil, fmt.Errorf("core: DepTrack cores cannot be snapshotted (dependence tracker state has no wire format)")
	}
	if !c.Quiesced() {
		return nil, fmt.Errorf("core: snapshotting a non-quiesced core; call Drain first\n%s", c.dump())
	}
	c.normalizeDrained()
	w := &snapshot.Writer{}
	if err := c.snapshotTo(w); err != nil {
		return nil, err
	}
	return snapshot.Encode(MachineKind, w.Bytes()), nil
}

func (c *Core) snapshotTo(w *snapshot.Writer) error {
	if err := c.snapshotCoreTo(w); err != nil {
		return err
	}
	return c.h.SnapshotTo(w)
}

// SnapshotCoreTo serializes the core-only state (pipeline, runahead
// controller, predictor, architectural memory) without the memory hierarchy.
// The multi-core container writes one such section per core followed by a
// single shared-hierarchy section; single-core snapshots append the private
// hierarchy to the same bytes. The core must be quiesced and drained.
func (c *Core) SnapshotCoreTo(w *snapshot.Writer) error {
	if c.cfg.DepTrack {
		return fmt.Errorf("core: DepTrack cores cannot be snapshotted (dependence tracker state has no wire format)")
	}
	if !c.Quiesced() {
		return fmt.Errorf("core: snapshotting a non-quiesced core\n%s", c.dump())
	}
	c.normalizeDrained()
	return c.snapshotCoreTo(w)
}

func (c *Core) snapshotCoreTo(w *snapshot.Writer) error {
	w.Mark("core")
	w.U64(configFingerprint(c.cfg))
	w.Str(c.p.Name)
	w.Int(c.p.NumUops())
	w.U64(c.p.TextDigest())

	w.I64(c.now)
	w.U64(c.seq)
	for _, v := range c.archVal {
		w.I64(v)
	}
	w.U64(c.fetchPC)
	w.I64(c.fetchStallUntil)
	w.U64(c.fetchGen)
	w.U64(c.lastFetchLine)
	w.I64(c.lastProgress)
	w.I64(c.statsZero)
	w.I64(c.branchRecoverUntil)
	w.I64(c.raRecoverUntil)

	// Persistent runahead-controller state: everything else in raState is
	// (re)written at the next interval entry or only read while active.
	w.Mark("ra")
	w.U64(c.ra.lastAttempt)
	w.I64(c.ra.retryAt)
	w.Bool(c.ra.noRetry)
	w.U64(c.ra.furthestReach)
	w.Bool(c.ra.haveFurthestReach)

	w.Mark("missage")
	ages := make([]uint64, 0, len(c.missAge))
	//simlint:allow determinism -- keys are sorted before use
	for line := range c.missAge {
		ages = append(ages, line)
	}
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	w.Int(len(ages))
	for _, line := range ages {
		w.U64(line)
		w.I64(c.missAge[line])
	}

	w.Mark("pcscore")
	pcs := make([]uint64, 0, len(c.pcScore))
	//simlint:allow determinism -- keys are sorted before use
	for pc := range c.pcScore {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.Int(len(pcs))
	for _, pc := range pcs {
		w.U64(pc)
		w.U8(c.pcScore[pc])
	}

	if err := c.st.SnapshotTo(w); err != nil {
		return err
	}

	// Chain cache: chains store decoded uops; only (index, PC) goes on the
	// wire and the uop is rebuilt from the program text on restore.
	w.Mark("ccache")
	w.U64(c.ccache.stamp)
	w.U64(c.ccache.HitCount)
	w.U64(c.ccache.MissCount)
	w.Int(len(c.ccache.entries))
	for i := range c.ccache.entries {
		e := &c.ccache.entries[i]
		w.Bool(e.valid)
		w.U64(e.pc)
		w.U64(e.lastUse)
		w.U64(e.chain.BlockingPC)
		w.U64(e.chain.Signature)
		w.Int(len(e.chain.Uops))
		for _, cu := range e.chain.Uops {
			w.Int(cu.Index)
			w.U64(cu.PC)
		}
	}

	// Runahead cache: contents are reset on every runahead exit and written
	// only during runahead, so at quiescence only stamp and statistics carry
	// state.
	w.Mark("racache")
	w.U64(c.racache.stamp)
	w.U64(c.racache.Writes)
	w.U64(c.racache.Hits)
	w.U64(c.racache.Misses)

	if err := c.bp.SnapshotTo(w); err != nil {
		return err
	}
	return c.mem.SnapshotTo(w)
}

// RestoreCore decodes a whole-machine snapshot into a fresh core built from
// cfg and p. The configuration fingerprint and program text digest must match
// the snapshot's; a restored core continues bit-for-bit identically to the
// machine that was snapshotted.
func RestoreCore(data []byte, cfg Config, p *prog.Program) (*Core, error) {
	if cfg.DepTrack {
		return nil, fmt.Errorf("core: DepTrack cores cannot be restored from a snapshot")
	}
	payload, err := snapshot.Decode(data, MachineKind)
	if err != nil {
		return nil, err
	}
	c := New(cfg, p)
	r := snapshot.NewReader(payload)
	if err := c.restoreFrom(r); err != nil {
		return nil, err
	}
	if rest := r.Rest(); len(rest) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after machine snapshot", len(rest))
	}
	return c, nil
}

func (c *Core) restoreFrom(r *snapshot.Reader) error {
	if err := c.restoreCoreFrom(r); err != nil {
		return err
	}
	if err := c.h.RestoreFrom(r); err != nil {
		return err
	}
	c.normalizeDrained()
	return nil
}

// RestoreCoreFrom reads the core-only state written by SnapshotCoreTo into
// c, which must be freshly built (from the same configuration and program)
// and not yet run. The caller restores the shared hierarchy separately.
func (c *Core) RestoreCoreFrom(r *snapshot.Reader) error {
	if c.cfg.DepTrack {
		return fmt.Errorf("core: DepTrack cores cannot be restored from a snapshot")
	}
	if err := c.restoreCoreFrom(r); err != nil {
		return err
	}
	c.normalizeDrained()
	return nil
}

func (c *Core) restoreCoreFrom(r *snapshot.Reader) error {
	r.Expect("core")
	if fp := r.U64(); r.Err() == nil && fp != configFingerprint(c.cfg) {
		r.Failf("core: snapshot was taken under a different configuration (fingerprint %#x, this core %#x)", fp, configFingerprint(c.cfg))
	}
	if name := r.Str(); r.Err() == nil && name != c.p.Name {
		r.Failf("core: snapshot is of program %q, this core runs %q", name, c.p.Name)
	}
	if n := r.Int(); r.Err() == nil && n != c.p.NumUops() {
		r.Failf("core: snapshot program has %d uops, this core's has %d", n, c.p.NumUops())
	}
	if d := r.U64(); r.Err() == nil && d != c.p.TextDigest() {
		r.Failf("core: snapshot program text digest mismatch (snapshot %#x, this core %#x)", d, c.p.TextDigest())
	}
	if r.Err() != nil {
		return r.Err()
	}

	c.now = r.I64()
	c.seq = r.U64()
	for i := range c.archVal {
		c.archVal[i] = r.I64()
	}
	c.fetchPC = r.U64()
	c.fetchStallUntil = r.I64()
	c.fetchGen = r.U64()
	c.lastFetchLine = r.U64()
	c.lastProgress = r.I64()
	c.statsZero = r.I64()
	c.branchRecoverUntil = r.I64()
	c.raRecoverUntil = r.I64()

	r.Expect("ra")
	c.ra.lastAttempt = r.U64()
	c.ra.retryAt = r.I64()
	c.ra.noRetry = r.Bool()
	c.ra.furthestReach = r.U64()
	c.ra.haveFurthestReach = r.Bool()

	r.Expect("missage")
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	c.missAge = make(map[uint64]int64, n)
	for i := 0; i < n; i++ {
		line := r.U64()
		c.missAge[line] = r.I64()
	}

	r.Expect("pcscore")
	n = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	// An absent table and an empty one behave identically; restore count==0
	// as nil so a re-snapshot of the restored core is byte-identical.
	c.pcScore = nil
	if n > 0 {
		c.pcScore = make(map[uint64]uint8, n)
		for i := 0; i < n; i++ {
			pc := r.U64()
			c.pcScore[pc] = r.U8()
		}
	}

	if err := c.st.RestoreFrom(r); err != nil {
		return err
	}

	r.Expect("ccache")
	c.ccache.stamp = r.U64()
	c.ccache.HitCount = r.U64()
	c.ccache.MissCount = r.U64()
	if n := r.Int(); r.Err() == nil && n != len(c.ccache.entries) {
		r.Failf("core: chain cache has %d entries, snapshot has %d", len(c.ccache.entries), n)
	}
	if r.Err() != nil {
		return r.Err()
	}
	for i := range c.ccache.entries {
		e := &c.ccache.entries[i]
		e.valid = r.Bool()
		e.pc = r.U64()
		e.lastUse = r.U64()
		e.chain.BlockingPC = r.U64()
		e.chain.Signature = r.U64()
		nu := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		e.chain.Uops = make([]ChainUop, nu)
		for j := range e.chain.Uops {
			idx := r.Int()
			pc := r.U64()
			if r.Err() != nil {
				return r.Err()
			}
			if idx < 0 || idx >= c.p.NumUops() {
				r.Failf("core: cached chain references uop index %d of %d", idx, c.p.NumUops())
				return r.Err()
			}
			e.chain.Uops[j] = ChainUop{U: c.p.Uops[idx], PC: pc, Index: idx}
		}
	}

	r.Expect("racache")
	c.racache.stamp = r.U64()
	c.racache.Writes = r.U64()
	c.racache.Hits = r.U64()
	c.racache.Misses = r.U64()

	if err := c.bp.RestoreFrom(r); err != nil {
		return err
	}
	if err := c.mem.RestoreFrom(r); err != nil {
		return err
	}
	return r.Err()
}
