package core

import (
	"testing"
	"testing/quick"

	"runaheadsim/internal/isa"
)

// --- Runahead cache (Table 1: 512B, 4-way, 8B lines) -----------------------

func TestRACacheReadWrite(t *testing.T) {
	c := newRACache(512, 4, 8)
	if _, _, hit := c.Read(0x1000); hit {
		t.Fatal("empty runahead cache must miss")
	}
	c.Write(0x1000, 42, false)
	v, pois, hit := c.Read(0x1000)
	if !hit || pois || v != 42 {
		t.Fatalf("read = %d,%v,%v", v, pois, hit)
	}
	if c.Writes != 1 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats = %d/%d/%d", c.Writes, c.Hits, c.Misses)
	}
}

func TestRACachePoisonForwarding(t *testing.T) {
	c := newRACache(512, 4, 8)
	c.Write(0x2000, 7, true)
	_, pois, hit := c.Read(0x2000)
	if !hit || !pois {
		t.Fatal("poisoned store data must forward as poisoned")
	}
	// Overwrite with clean data clears the poison.
	c.Write(0x2000, 8, false)
	v, pois, _ := c.Read(0x2000)
	if pois || v != 8 {
		t.Fatal("clean overwrite must clear poison")
	}
}

func TestRACacheLRUWithinSet(t *testing.T) {
	c := newRACache(512, 4, 8) // 16 sets; same set every 128 bytes
	addrs := []uint64{0, 128, 256, 384}
	for i, a := range addrs {
		c.Write(a, int64(i), false)
	}
	c.Read(0) // refresh the oldest
	c.Write(512, 99, false)
	if _, _, hit := c.Read(0); !hit {
		t.Fatal("recently-read line should have survived")
	}
	if _, _, hit := c.Read(128); hit {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestRACacheReset(t *testing.T) {
	c := newRACache(512, 4, 8)
	c.Write(0x3000, 1, false)
	c.Reset()
	if _, _, hit := c.Read(0x3000); hit {
		t.Fatal("reset must invalidate everything")
	}
}

func TestRACacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry must panic")
		}
	}()
	newRACache(500, 4, 8)
}

// Property: after writing distinct 8-byte-aligned addresses within one set's
// associativity, every written value reads back.
func TestRACacheProperty(t *testing.T) {
	f := func(vals [4]int64) bool {
		c := newRACache(512, 4, 8)
		for i, v := range vals {
			c.Write(uint64(i)*128, v, false) // all in set 0, 4 ways
		}
		for i, v := range vals {
			got, _, hit := c.Read(uint64(i) * 128)
			if !hit || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Chain cache (Section 4.4) ---------------------------------------------

func mkChain(pc uint64, n int) Chain {
	ch := Chain{BlockingPC: pc}
	for i := 0; i < n; i++ {
		ch.Uops = append(ch.Uops, ChainUop{U: isa.Uop{Op: isa.ADDI, Dst: 1, Src1: 1, Imm: int64(i)}, PC: pc + uint64(i*8)})
	}
	ch.Signature = chainSignature(ch.Uops)
	return ch
}

func TestChainCacheHitMiss(t *testing.T) {
	cc := newChainCache(2)
	if _, ok := cc.Lookup(0x100); ok {
		t.Fatal("empty chain cache must miss")
	}
	cc.Insert(mkChain(0x100, 5))
	got, ok := cc.Lookup(0x100)
	if !ok || got.Len() != 5 || got.BlockingPC != 0x100 {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if cc.HitCount != 1 || cc.MissCount != 1 {
		t.Fatalf("hit/miss = %d/%d", cc.HitCount, cc.MissCount)
	}
	if cc.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", cc.HitRate())
	}
}

func TestChainCacheOneChainPerPC(t *testing.T) {
	cc := newChainCache(2)
	cc.Insert(mkChain(0x100, 5))
	cc.Insert(mkChain(0x100, 9)) // replaces, no path associativity
	got, ok := cc.Lookup(0x100)
	if !ok || got.Len() != 9 {
		t.Fatal("second insert for the same PC must replace the first")
	}
	// Only one entry consumed: another PC still fits.
	cc.Insert(mkChain(0x200, 3))
	if _, ok := cc.Lookup(0x100); !ok {
		t.Fatal("first PC evicted despite free entry")
	}
}

func TestChainCacheLRUReplacement(t *testing.T) {
	cc := newChainCache(2)
	cc.Insert(mkChain(0x100, 1))
	cc.Insert(mkChain(0x200, 1))
	cc.Lookup(0x100) // 0x200 becomes LRU
	cc.Insert(mkChain(0x300, 1))
	if _, ok := cc.Lookup(0x200); ok {
		t.Fatal("LRU entry should have been replaced")
	}
	if _, ok := cc.Lookup(0x100); !ok {
		t.Fatal("MRU entry should have survived")
	}
}

func TestChainSignature(t *testing.T) {
	a := mkChain(0x100, 5)
	b := mkChain(0x100, 5)
	if a.Signature != b.Signature {
		t.Fatal("identical chains must have identical signatures")
	}
	c := mkChain(0x100, 6)
	if a.Signature == c.Signature {
		t.Fatal("different chains should differ in signature")
	}
	// Order matters: reversing the uops changes the signature.
	rev := a
	rev.Uops = append([]ChainUop(nil), a.Uops...)
	for i, j := 0, len(rev.Uops)-1; i < j; i, j = i+1, j-1 {
		rev.Uops[i], rev.Uops[j] = rev.Uops[j], rev.Uops[i]
	}
	if chainSignature(rev.Uops) == a.Signature {
		t.Fatal("signature must be order-sensitive")
	}
}

func TestChainCachePanicsOnZeroEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-entry chain cache must panic")
		}
	}()
	newChainCache(0)
}

// --- ROB ring ---------------------------------------------------------------

func TestROBOrdering(t *testing.T) {
	r := newROB(4)
	u := &isa.Uop{Op: isa.NOP}
	for i := 1; i <= 4; i++ {
		r.push(&DynInst{Seq: uint64(i), U: u})
	}
	if !r.full() {
		t.Fatal("should be full")
	}
	if r.at(0).Seq != 1 || r.at(3).Seq != 4 {
		t.Fatal("at() must index from the oldest")
	}
	if got := r.popHead(); got.Seq != 1 {
		t.Fatalf("popHead = %d", got.Seq)
	}
	if got := r.popTail(); got.Seq != 4 {
		t.Fatalf("popTail = %d", got.Seq)
	}
	if r.size() != 2 {
		t.Fatalf("size = %d", r.size())
	}
	// Wrap-around: push two more.
	r.push(&DynInst{Seq: 5, U: u})
	r.push(&DynInst{Seq: 6, U: u})
	want := []uint64{2, 3, 5, 6}
	for i, w := range want {
		if r.at(i).Seq != w {
			t.Fatalf("after wrap, at(%d) = %d, want %d", i, r.at(i).Seq, w)
		}
	}
}

func TestROBOverflowPanics(t *testing.T) {
	r := newROB(1)
	r.push(&DynInst{Seq: 1, U: &isa.Uop{}})
	defer func() {
		if recover() == nil {
			t.Fatal("overflow must panic")
		}
	}()
	r.push(&DynInst{Seq: 2, U: &isa.Uop{}})
}

func TestROBUnderflowPanics(t *testing.T) {
	r := newROB(1)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow must panic")
		}
	}()
	r.popHead()
}

// Property: any sequence of pushes and head-pops preserves FIFO order.
func TestROBFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := newROB(16)
		u := &isa.Uop{}
		next, expect := uint64(1), uint64(1)
		for _, push := range ops {
			if push {
				if r.full() {
					continue
				}
				r.push(&DynInst{Seq: next, U: u})
				next++
			} else {
				if r.empty() {
					continue
				}
				if r.popHead().Seq != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Renamer -----------------------------------------------------------------

func TestRenamerAllocRelease(t *testing.T) {
	r := newRenamer(96) // 64 arch + 32 rename
	if !r.haveFree() {
		t.Fatal("fresh renamer must have free registers")
	}
	seen := map[PhysReg]bool{}
	for i := 0; i < 32; i++ {
		p := r.alloc()
		if p < isa.NumArchRegs || int(p) >= 96 {
			t.Fatalf("allocated out-of-range register %d", p)
		}
		if seen[p] {
			t.Fatalf("register %d allocated twice", p)
		}
		seen[p] = true
	}
	if r.haveFree() {
		t.Fatal("all rename registers allocated; none should be free")
	}
	r.release(PhysReg(64))
	if !r.haveFree() {
		t.Fatal("released register must be reusable")
	}
	if got := r.alloc(); got != 64 {
		t.Fatalf("realloc = %d, want 64", got)
	}
}

func TestRenamerAllocEmptyPanics(t *testing.T) {
	r := newRenamer(65) // one rename register
	r.alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("alloc on empty free list must panic")
		}
	}()
	r.alloc()
}

func TestRenamerReset(t *testing.T) {
	r := newRenamer(96)
	r.rat[3] = r.alloc()
	r.reset(96)
	for i := range r.rat {
		if r.rat[i] != PhysReg(i) {
			t.Fatalf("rat[%d] = %d after reset", i, r.rat[i])
		}
	}
	if len(r.free) != 96-isa.NumArchRegs {
		t.Fatalf("free list has %d entries after reset", len(r.free))
	}
}

// --- Mode --------------------------------------------------------------------

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeNone:        "baseline",
		ModeTraditional: "runahead",
		ModeBuffer:      "runahead-buffer",
		ModeBufferCC:    "runahead-buffer+cc",
		ModeHybrid:      "hybrid",
		Mode(99):        "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	for _, m := range []Mode{ModeBuffer, ModeBufferCC, ModeHybrid} {
		if !m.UsesBuffer() {
			t.Errorf("%v should use the buffer", m)
		}
	}
	for _, m := range []Mode{ModeNone, ModeTraditional} {
		if m.UsesBuffer() {
			t.Errorf("%v should not use the buffer", m)
		}
	}
}
