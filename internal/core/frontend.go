package core

import (
	"runaheadsim/internal/isa"
)

// frontQCap bounds the fetch/decode queue.
const frontQCap = 32

// fetchStage fetches up to FetchWidth uops per cycle down the predicted
// path, at most one taken branch per cycle, stalling on I-cache misses. In
// runahead-buffer mode the front end is clock-gated and does nothing.
func (c *Core) fetchStage() {
	if c.draining {
		return // Drain starves the front end so the window empties
	}
	if c.ra.active && c.ra.usingBuffer {
		return
	}
	if c.icacheWait || c.now < c.fetchStallUntil {
		c.st.ICacheStallCycles++
		return
	}
	fetched := 0
	for fetched < c.cfg.FetchWidth && c.frontLen() < frontQCap {
		u := c.p.UopAt(c.fetchPC)
		if u == nil {
			// Wrong-path fetch ran off valid text; wait for a redirect.
			break
		}
		line := c.fetchPC &^ uint64(c.cfg.Mem.L1I.LineBytes-1)
		if line != c.lastFetchLine {
			if c.h.L1IR(c.memReq).Probe(line) {
				c.h.L1IR(c.memReq).Lookup(line) // count the hit, refresh LRU
				c.lastFetchLine = line
			} else {
				// c.fetchDone is one shared callback; it matches the fill's
				// line against fetchWaitLine (and the icacheWait gate) instead
				// of capturing a per-fetch generation, so no closure is
				// allocated per I-miss.
				c.icacheWait = true
				c.fetchWaitLine = line
				if !c.h.FetchR(c.memReq, c.now, line, c.fetchDone) {
					c.icacheWait = false // MSHR full; retry next cycle
				}
				break
			}
		}

		c.seq++
		d := c.newDyn()
		d.Seq = c.seq
		d.PC = c.fetchPC
		d.Index = c.p.IndexOf(c.fetchPC)
		d.U = u
		d.PDst, d.PSrc1, d.PSrc2, d.POld = noPhys, noPhys, noPhys, noPhys
		d.FetchCycle = c.now
		d.Runahead = c.ra.active
		nextPC := c.fetchPC + isa.UopBytes
		if u.Op.IsBranch() {
			d.IsBranch = true
			c.predictBranch(d)
			if d.PredTaken {
				nextPC = d.PredTarget
			}
		}
		c.traceFetch(d)
		c.frontQ = append(c.frontQ, d)
		c.frontReadyAt = append(c.frontReadyAt, c.now+int64(c.cfg.DecodeDepth))
		c.st.Fetched++
		c.st.Decoded++
		fetched++
		c.fetchPC = nextPC
		if d.PredTaken {
			break // one taken branch per fetch cycle
		}
	}
	if fetched > 0 {
		c.st.FetchActiveCycles++
		c.st.DecodeActiveCycles++
	}
}

// predictBranch fills the prediction fields of a branch at fetch.
func (c *Core) predictBranch(d *DynInst) {
	u := d.U
	fallThrough := d.PC + isa.UopBytes
	switch u.Op {
	case isa.JMP, isa.CALL:
		c.bp.NoteUnconditional()
		d.PredTaken = true
		if tgt, ok := c.bp.LookupBTB(d.PC); ok {
			d.PredTarget = tgt
		} else {
			// Unknown target on first encounter: fetch falls through and the
			// branch redirects at execute.
			d.PredTaken = false
			d.PredTarget = fallThrough
		}
		if u.Op == isa.CALL {
			c.bp.RAS().Push(fallThrough)
		}
	case isa.RET:
		c.bp.NoteUnconditional()
		d.PredTaken = true
		d.PredTarget = c.bp.RAS().Pop()
		if d.PredTarget == 0 {
			d.PredTaken = false
			d.PredTarget = fallThrough
		}
	default: // conditional
		d.Pred = c.bp.PredictDirection(d.PC)
		d.PredTaken = d.Pred.Taken
		d.PredTarget = fallThrough
		if d.PredTaken {
			if tgt, ok := c.bp.LookupBTB(d.PC); ok {
				d.PredTarget = tgt
			} else {
				d.PredTaken = false
			}
		}
	}
}

// redirectFetch restarts fetch at target after a misprediction or runahead
// exit, discarding everything in the front-end queue.
func (c *Core) redirectFetch(target uint64, penalty int64) {
	c.fetchPC = target
	c.fetchStallUntil = c.now + penalty
	c.fetchGen++
	c.icacheWait = false
	c.lastFetchLine = ^uint64(0)
	c.dropFrontQ()
}

// frontLen returns the number of uops in the fetch/decode queue.
func (c *Core) frontLen() int { return len(c.frontQ) - c.frontHead }

// frontPop removes the queue head. The queue is a moving-head slice, like
// memsys' reqRing: popping `q = q[1:]` would both keep every renamed uop
// reachable through the backing array's dead prefix and force append to
// reallocate once per window of throughput. The popped slot is nil-ed and the
// live window (at most frontQCap entries) is copied down before the head can
// run away, so steady state allocates nothing.
func (c *Core) frontPop() {
	c.frontQ[c.frontHead] = nil
	c.frontHead++
	switch {
	case c.frontHead == len(c.frontQ):
		c.frontQ = c.frontQ[:0]
		c.frontReadyAt = c.frontReadyAt[:0]
		c.frontHead = 0
	case c.frontHead >= 2*frontQCap:
		n := copy(c.frontQ, c.frontQ[c.frontHead:])
		for i := n; i < len(c.frontQ); i++ {
			c.frontQ[i] = nil
		}
		c.frontQ = c.frontQ[:n]
		copy(c.frontReadyAt, c.frontReadyAt[c.frontHead:])
		c.frontReadyAt = c.frontReadyAt[:n]
		c.frontHead = 0
	}
}

// dropFrontQ discards the front-end queue, recycling uops that were never
// dispatched (their only reference is the queue itself).
func (c *Core) dropFrontQ() {
	for i := c.frontHead; i < len(c.frontQ); i++ {
		c.freeDyn(c.frontQ[i])
		c.frontQ[i] = nil
	}
	c.frontQ = c.frontQ[:0]
	c.frontReadyAt = c.frontReadyAt[:0]
	c.frontHead = 0
}
