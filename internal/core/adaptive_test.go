package core

import (
	"testing"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// chaseGatherMix is the adaptive-hybrid policy's motivating workload: every
// iteration advances a serial pointer chase (the dominant, blocking miss)
// and also performs an independent gather. The chase PC appears many times
// in the ROB and its 2-uop chain sails through the Figure 8 checks — but
// looping it in the buffer is barren (the next pointer is poisoned), while
// traditional runahead executes the whole loop and prefetches the gathers.
func chaseGatherMix() *prog.Program {
	b := prog.NewBuilder("chase-gather")
	const nodes = 1 << 15
	const nodeStride = 192
	chase := b.Alloc(nodes*nodeStride, 64)
	for i := uint64(0); i < nodes; i++ {
		next := (i + 40503) & (nodes - 1)
		b.Mem().Write64(chase+i*nodeStride, int64(chase+next*nodeStride))
	}
	const slots = 1 << 14
	data := b.Alloc(slots*2112, 64)

	const rP, rI, rIdx, rAddr, rV, rAcc, rB = 1, 2, 3, 4, 5, 6, 7
	entry := b.Block("entry")
	loop := b.Block("loop")
	doChase := b.Block("chase")
	body := b.Block("body")
	entry.Movi(rP, int64(chase)).Movi(rI, 0).Movi(rAcc, 0).Jmp(loop)
	// Every other iteration walks the serial node list; the tight spacing
	// keeps several instances of the chase PC in the ROB, so the Figure 8
	// checks pass and plain hybrid buffers the barren serial chain.
	loop.OpI(isa.ANDI, rB, rI, 1).
		Bnez(rB, body)
	doChase.Ld(rP, rP, 0)
	body.OpI(isa.MULI, rIdx, rI, 40503).
		OpI(isa.ANDI, rIdx, rIdx, slots-1).
		OpI(isa.MULI, rAddr, rIdx, 2112).
		Addi(rAddr, rAddr, int64(data)).
		Ld(rV, rAddr, 0). // the independent gather: the dominant miss stream
		Add(rAcc, rAcc, rV)
	for k := 0; k < 8; k++ {
		body.OpI(isa.ADDI, isa.Reg(20+k%4), isa.Reg(20+k%4), int64(k))
	}
	body.Addi(rI, rI, 1).Jmp(loop)
	return b.MustBuild()
}

// TestAdaptiveBeatsHybridOnSerialChains: the plain hybrid policy keeps
// feeding the chase chain into the buffer (it passes every Figure 8 check)
// and pays a pipeline flush and replay for every barren interval; the
// adaptive extension learns the chain is barren and skips those intervals.
func TestAdaptiveBeatsHybridOnSerialChains(t *testing.T) {
	run := func(mode Mode) *Stats {
		cfg := testConfig(mode)
		c := New(cfg, chaseGatherMix())
		c.Run(30_000)
		c.ResetStats()
		st := c.Run(60_000)
		return st
	}
	hy := run(ModeHybrid)
	ad := run(ModeAdaptive)
	if ad.AdaptiveDemotions == 0 {
		t.Fatal("adaptive policy never demoted the barren chase chain")
	}
	if ad.IPC() <= hy.IPC() {
		t.Fatalf("adaptive %.3f IPC should beat plain hybrid %.3f on serial-chain blocking",
			ad.IPC(), hy.IPC())
	}
	// And the adaptive mode must not regress the buffer's showcase.
	gHy := func(mode Mode) float64 {
		cfg := testConfig(mode)
		c := New(cfg, gatherLoop(20))
		c.Run(20_000)
		c.ResetStats()
		return c.Run(40_000).IPC()
	}
	if a, h := gHy(ModeAdaptive), gHy(ModeHybrid); a < h*0.97 {
		t.Fatalf("adaptive (%.3f) regressed hybrid (%.3f) on a productive-buffer workload", a, h)
	}
}

// TestAdaptiveEquivalence: the new mode preserves architectural semantics.
func TestAdaptiveEquivalence(t *testing.T) {
	p := chaseGatherMix()
	c := New(testConfig(ModeAdaptive), p)
	st := c.Run(30_000)
	in := prog.NewInterp(p)
	in.Run(st.Committed)
	regs := c.ArchRegs()
	for r := 0; r < isa.NumArchRegs; r++ {
		if regs[r] != in.Regs[r] {
			t.Fatalf("r%d = %d, interpreter %d", r, regs[r], in.Regs[r])
		}
	}
	if !c.Mem().Equal(in.Mem) {
		t.Fatal("memory state diverged")
	}
}

func TestBufferScoreTable(t *testing.T) {
	c := New(testConfig(ModeAdaptive), simpleLoop())
	if c.bufferScore(0x1234) != 1 {
		t.Fatal("unseen PC must start weakly productive")
	}
	c.updateBufferScore(0x1234, 0)
	if c.bufferScore(0x1234) != 0 {
		t.Fatal("barren interval must weaken the PC")
	}
	c.updateBufferScore(0x1234, 3)
	if c.bufferScore(0x1234) != 2 {
		t.Fatal("productive interval must rebuild confidence by two")
	}
	c.updateBufferScore(0x1234, 5)
	if c.bufferScore(0x1234) != 3 {
		t.Fatal("score must saturate at 3")
	}
}
