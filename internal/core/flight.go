package core

import "runaheadsim/internal/trace"

// Flight recorder: an always-on ring of the most recent coarse trace events
// (runahead transitions, LLC misses, DRAM grants, occupancy samples), sized
// by Config.FlightRecorderEvents. It exists so that when a run dies — a
// watchdog trip, a simcheck violation, a worker panic — the owner can dump
// the last moments as JSONL instead of staring at an opaque hang.
//
// Cost discipline: the recorder never sees per-uop events (fetch, issue,
// commit), only per-miss / per-grant / per-transition ones plus one occupancy
// sample every flightSampleEvery executed cycles, so leaving it on costs a
// closure call per LLC miss rather than per instruction. Unlike a tracer it
// also does not clamp the clock warp: samples are diagnostic, so a warped
// span simply carries fewer of them.

const (
	// defaultFlightEvents sizes the ring when Config.FlightRecorderEvents is
	// zero: 512 events is a few thousand bytes per core and typically covers
	// tens of thousands of cycles of memory-system activity before a wedge.
	defaultFlightEvents = 512

	// flightSampleEvery is the occupancy-sample period in executed (unwarped)
	// cycles — deliberately coarser than the tracer's sampleInterval because
	// the ring is always on.
	flightSampleEvery = 256
)

// FlightRecorder returns the always-on flight recorder, or nil when
// Config.FlightRecorderEvents is negative. Callers that catch a dying run
// (harness workers, the CLIs' panic handlers) use it to write a crash dump:
//
//	if r := c.FlightRecorder(); r != nil && r.Len() > 0 {
//		r.WriteJSONL(f)
//	}
func (c *Core) FlightRecorder() *trace.Ring { return c.flight }

// FlightMark pins an out-of-band annotation into the flight recorder at the
// current cycle — the terminal condition a crash dump should end with (the
// watchdog message, a simcheck violation). No-op when the recorder is off.
func (c *Core) FlightMark(msg string) {
	if c.flight != nil {
		c.flight.Mark(c.now, msg)
	}
}

// installMemHooks (re)installs the memory-system event callbacks so they feed
// both the flight recorder and any attached tracer. Called from New and from
// SetEventSink, so attaching or detaching a tracer never disturbs the flight
// recorder's view. When neither consumer exists the hooks are nil and the
// memory system pays nothing.
func (c *Core) installMemHooks() {
	if c.flight == nil && c.tracer == nil {
		c.h.SetLLCMissHook(c.memReq, nil)
		c.h.SetGrantHook(c.memReq, nil)
		return
	}
	c.h.SetLLCMissHook(c.memReq, func(now int64, line uint64, instr bool) {
		ev := trace.Event{Cycle: now, Kind: trace.CacheMiss, Line: line, Instr: instr}
		if c.flight != nil {
			c.flight.Record(&ev)
		}
		if tr := c.tracer; tr != nil && tr.on(now) {
			tr.ev = ev
			tr.sink.Emit(&tr.ev)
		}
	})
	c.h.SetGrantHook(c.memReq, func(now int64, line uint64, write, rowHit bool) {
		ev := trace.Event{Cycle: now, Kind: trace.DRAMAccess, Line: line, Write: write, RowHit: rowHit}
		if c.flight != nil {
			c.flight.Record(&ev)
		}
		if tr := c.tracer; tr != nil && tr.on(now) {
			tr.ev = ev
			tr.sink.Emit(&tr.ev)
		}
	})
}
