package core

import (
	"runaheadsim/internal/bpred"
	"runaheadsim/internal/isa"
	"runaheadsim/internal/memsys"
)

// PhysReg names a physical register.
type PhysReg uint16

// noPhys marks an absent physical operand.
const noPhys = PhysReg(0xffff)

// DynInst is one dynamic micro-op in flight.
type DynInst struct {
	Seq   uint64
	PC    uint64
	Index int // static uop index in the program (-1 for none)
	U     *isa.Uop

	// Rename state.
	PDst, PSrc1, PSrc2 PhysReg
	POld               PhysReg // previous mapping of the destination, for recovery
	ROBPos             int     // position in the ROB ring (stable while in flight)

	// Lifecycle flags.
	Renamed  bool
	Issued   bool
	Executed bool
	Squashed bool

	// Provenance.
	Runahead   bool // renamed while the core was in runahead mode
	FromBuffer bool // issued from the runahead buffer

	// Branch state.
	IsBranch   bool
	Pred       bpred.Prediction
	PredTaken  bool
	PredTarget uint64
	Taken      bool
	Target     uint64
	Mispred    bool

	// Memory state.
	EA        uint64
	EAValid   bool
	StoreData int64
	MemLevel  memsys.Level
	DRAMBound bool // the miss was seen to go to DRAM
	// memIssued records that the memory request for a load has been sent
	// (prevents double issue across retries).
	memIssued bool

	// Value and poison.
	Value    int64
	Poisoned bool

	// pendingSrcs counts register sources still awaiting a wakeup broadcast
	// (event scheduler only; see sched.go). Meaningless after a squash —
	// stale scheduler entries are dropped lazily.
	pendingSrcs int8

	// gen is the pool-reuse generation (see Core.newDyn). Every reference
	// that can outlive the uop's window residency — scheduled events, memory
	// completion callbacks, lazy scheduler entries — captures gen at creation
	// and ignores the reference when it no longer matches: the slot has been
	// recycled for a different dynamic instruction.
	gen uint64

	// Timing.
	FetchCycle, IssueCycle, DoneCycle int64

	// Dependence-tracking provenance (valid when cfg.DepTrack).
	Prod1, Prod2, ProdStore uint64 // producing seq numbers, 0 = none
}

// srcReady reports whether physical register p satisfies an operand: free
// (no operand), ready, or poisoned (poison counts as ready and propagates at
// execute).
func (c *Core) srcReady(p PhysReg) bool {
	if p == noPhys {
		return true
	}
	return c.prf.ready[p] || c.prf.poison[p]
}

func (c *Core) srcPoisoned(p PhysReg) bool {
	return p != noPhys && c.prf.poison[p]
}

func (c *Core) srcVal(p PhysReg) int64 {
	if p == noPhys {
		return 0
	}
	return c.prf.val[p]
}

func (c *Core) srcProd(p PhysReg) uint64 {
	if p == noPhys {
		return 0
	}
	return c.prf.prod[p]
}
