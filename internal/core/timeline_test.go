package core

import (
	"testing"

	"runaheadsim/internal/stats"
)

// TestCoreTimelineSampling checks the core appends one sample per interval
// with sane IPC and occupancy values.
func TestCoreTimelineSampling(t *testing.T) {
	c := New(testConfig(ModeBufferCC), gatherLoop(4))
	tl := stats.NewTimeline(256, 1024)
	c.SetTimeline(tl)
	st := c.Run(5_000)
	if got := c.Timeline(); got != tl {
		t.Fatal("Timeline() must return the attached timeline")
	}
	wantSamples := int(st.Cycles / 256)
	if tl.Len() < wantSamples-1 || tl.Len() == 0 {
		t.Fatalf("timeline has %d samples over %d cycles (interval 256)", tl.Len(), st.Cycles)
	}
	var committedSum float64
	var sawROB bool
	prevCycle := int64(0)
	for _, s := range tl.Samples() {
		if s.Cycle <= prevCycle {
			t.Fatalf("samples not strictly increasing in cycle: %v then %v", prevCycle, s.Cycle)
		}
		prevCycle = s.Cycle
		if s.IPC < 0 || s.IPC > float64(testConfig(ModeNone).CommitWidth)+1 {
			t.Fatalf("implausible interval IPC %v", s.IPC)
		}
		if s.ROBOcc > 0 {
			sawROB = true
		}
		if s.Mode == "" {
			t.Fatal("sample missing mode")
		}
		committedSum += s.IPC * 256
	}
	if !sawROB {
		t.Fatal("no sample ever saw a non-empty ROB")
	}
	// Interval IPC integrated over the timeline approximates total commits.
	if committedSum < float64(st.Committed)/2 {
		t.Fatalf("integrated IPC %v far below committed %d", committedSum, st.Committed)
	}
}

// TestCoreTimelineDetach checks nil detaches sampling.
func TestCoreTimelineDetach(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	tl := stats.NewTimeline(64, 16)
	c.SetTimeline(tl)
	c.Run(500)
	n := tl.Len()
	if n == 0 {
		t.Fatal("attached timeline collected nothing")
	}
	c.SetTimeline(nil)
	if c.Timeline() != nil {
		t.Fatal("Timeline() must be nil after detach")
	}
	c.Run(2_000)
	if tl.Len() != n {
		t.Fatal("detached timeline still collected samples")
	}
}
