package core

import (
	"fmt"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// drainBound caps how many cycles Drain will run waiting for quiescence.
// Every in-flight operation bounds out in far fewer cycles (the deepest is a
// DRAM-bound fill behind a full memory queue); hitting the bound means a
// simulator bug, not a workload property.
const drainBound = 10_000_000

// Quiesced reports whether the machine holds no in-flight state: empty
// window, empty front end, no scheduled events, no runahead interval, and a
// fully drained memory hierarchy. Only a quiesced core can be snapshotted —
// in-flight work is closures, which have no wire representation.
func (c *Core) Quiesced() bool {
	return c.QuiescedCore() && c.h.Drained()
}

// QuiescedCore is Quiesced restricted to core-local state: it ignores the
// memory hierarchy, which in a cluster is shared and checked once globally
// rather than once per core.
func (c *Core) QuiescedCore() bool {
	if c.rob.size() != 0 || c.frontLen() != 0 || c.rsCount != 0 || c.lqCount != 0 || c.sqCount != 0 {
		return false
	}
	if c.sbLen() != 0 || c.ra.active || c.icacheWait {
		return false
	}
	for i := range c.events {
		if len(c.events[i]) > 0 {
			return false
		}
	}
	return true
}

// SetDraining starves (or releases) the fetch stage, the same gate Drain
// holds while running a core to quiescence. The multi-core cluster drives
// the clock itself, so it drains by setting the flag on every core and
// stepping the cluster until quiescence.
func (c *Core) SetDraining(on bool) { c.draining = on }

// Drain runs the machine to quiescence: fetch is starved, the window retires
// everything in flight, and the memory hierarchy completes all outstanding
// fills and writebacks. It then normalizes the rename and physical-register
// state to the canonical post-flush form (the identity mapping exitRunahead
// restores), so a core that continues in place and a core rebuilt from the
// snapshot are bit-for-bit identical. fetchPC is left at the next
// correct-path uop — at quiescence every branch has resolved, so the
// predicted PC is the architectural one.
func (c *Core) Drain() error {
	c.draining = true
	defer func() { c.draining = false }()
	start := c.now
	for !c.Quiesced() {
		c.Cycle()
		if c.now-start > drainBound {
			return fmt.Errorf("core: drain did not quiesce within %d cycles (%s)", drainBound, c.dump())
		}
	}
	c.normalizeDrained()
	return nil
}

// normalizeDrained puts rename/PRF bookkeeping into the canonical empty-window
// form. With nothing in flight, the only live register state is the committed
// architectural values; everything else is dead and is zeroed so equal
// machine states serialize to equal bytes.
func (c *Core) normalizeDrained() {
	c.ren.reset(c.cfg.NumPhysRegs)
	for i := 0; i < isa.NumArchRegs; i++ {
		c.prf.val[i] = c.archVal[i]
		c.prf.ready[i] = true
		c.prf.poison[i] = false
		c.prf.prod[i] = 0
	}
	for i := isa.NumArchRegs; i < c.cfg.NumPhysRegs; i++ {
		c.prf.val[i] = 0
		c.prf.ready[i] = false
		c.prf.poison[i] = false
		c.prf.prod[i] = 0
	}
	c.racache.Reset()
	c.lastFetchLine = ^uint64(0)
	// Scheduler wakeup/select state holds at most stale (squashed or
	// executed) entries at quiescence; its canonical drained form is empty,
	// which is also what a restored core starts with — so snapshots carry no
	// scheduler state at all.
	c.sched.clear()
}

// FetchPC returns the address fetch will resume from — after Drain, the next
// correct-path uop.
func (c *Core) FetchPC() uint64 { return c.fetchPC }

// NewFromArch builds a cold core (empty caches, untrained predictor, cycle
// zero) whose architectural state — memory image, registers, program position
// — comes from a functional checkpoint. The sampled-simulation engine uses it
// to start a detailed interval at an arbitrary point of the program; the
// interval's detailed warmup then re-warms the microarchitectural state.
// Ownership of st.Mem transfers to the core.
func NewFromArch(cfg Config, p *prog.Program, st prog.ArchState) *Core {
	c := New(cfg, p)
	c.mem = st.Mem
	c.archVal = st.Regs
	for i := 0; i < isa.NumArchRegs; i++ {
		c.prf.val[i] = st.Regs[i]
	}
	c.fetchPC = p.AddrOf(st.Index)
	return c
}
