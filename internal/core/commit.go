package core

// commitStage retires up to CommitWidth executed uops in order, drains the
// store buffer, and triggers runahead entry when a DRAM-bound load blocks
// the ROB head.
func (c *Core) commitStage() {
	c.drainStoreBuffer()
	committed := 0
	for committed < c.cfg.CommitWidth && !c.rob.empty() {
		d := c.rob.at(0)
		if !d.Executed {
			c.st.ROBStallCycles++
			if d.U.Op.IsLoad() && d.DRAMBound {
				c.st.MemStallCycles++
				// Runahead begins "once a miss has propagated to the top of
				// the reorder buffer" (Section 4.2) — retirement is stalled
				// and every cycle from here on is otherwise wasted.
				if !c.ra.active && c.cfg.Mode != ModeNone {
					c.tryEnterRunahead(d)
				}
			}
			return
		}
		if c.ra.active {
			// Pseudo-retirement: runahead results never touch architectural
			// state; the slot is recycled and the previous mapping of the
			// destination freed so runahead can keep renaming indefinitely
			// (Section 3). The wholesale reset at exit discards everything.
			c.rob.popHead()
			c.recycle(d)
			c.traceCommit(d, true)
			if d.POld != noPhys {
				c.ren.release(d.POld)
			}
			c.ra.pseudoRetired++
			c.lastProgress = c.now
			committed++
			c.freeDyn(d)
			continue
		}
		if d.U.Op.IsStore() {
			if c.sbLen() >= c.cfg.StoreBufSize {
				c.st.StoreBufFullStall++
				return
			}
			c.mem.Write64(d.EA, d.StoreData)
			c.storeBuf = append(c.storeBuf, sbEntry{addr: d.EA})
		}
		if d.PDst != noPhys {
			c.archVal[d.U.Dst] = d.Value
		}
		c.rob.popHead()
		c.recycle(d)
		c.traceCommit(d, false)
		if d.POld != noPhys {
			c.ren.release(d.POld)
		}
		c.st.Committed++
		c.cycleCommits++
		c.lastProgress = c.now
		committed++
		if c.onCommit != nil {
			c.onCommit(d)
		}
		c.freeDyn(d)
	}
}

// recycle returns d's queue occupancy and scheduler index entries. During
// runahead, physical registers are not individually reclaimed — the
// wholesale reset at exit rebuilds the free list.
func (c *Core) recycle(d *DynInst) {
	if d.U.Op.IsLoad() {
		c.lqCount--
	}
	if d.U.Op.IsStore() {
		c.sqCount--
		c.dropStore(d)
	}
}

// drainStoreBuffer writes the oldest committed store into the data cache.
func (c *Core) drainStoreBuffer() {
	if c.sbLen() == 0 || c.storeBuf[c.sbHead].inflight {
		return
	}
	e := &c.storeBuf[c.sbHead]
	if c.h.StoreR(c.memReq, c.now, e.addr, c.storeDone) {
		e.inflight = true
	}
}

// sbLen returns the store-buffer occupancy. Like frontQ, the buffer is a
// moving-head slice: popping `buf = buf[1:]` would shrink the backing
// array's usable capacity and force one reallocation per buffer length of
// committed stores, which profiles as the top allocation site on
// store-heavy workloads.
func (c *Core) sbLen() int { return len(c.storeBuf) - c.sbHead }

// sbPop removes the drained head entry (sbEntry holds no pointers, so the
// dead slot needs no clearing).
func (c *Core) sbPop() {
	c.sbHead++
	switch {
	case c.sbHead == len(c.storeBuf):
		c.storeBuf = c.storeBuf[:0]
		c.sbHead = 0
	case c.sbHead >= 2*c.cfg.StoreBufSize:
		n := copy(c.storeBuf, c.storeBuf[c.sbHead:])
		c.storeBuf = c.storeBuf[:n]
		c.sbHead = 0
	}
}
