package core

import (
	"runaheadsim/internal/isa"
	"runaheadsim/internal/memsys"
	"runaheadsim/internal/prog"
)

// renameStage renames and dispatches up to RenameWidth uops per cycle, from
// the front-end queue normally, or from the runahead buffer in buffer mode
// (pre-decoded chain uops injected at the rename stage, Section 4.3).
func (c *Core) renameStage() {
	if c.ra.active && c.ra.usingBuffer {
		c.feedFromBuffer()
		return
	}
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.frontLen() == 0 || c.frontReadyAt[c.frontHead] > c.now {
			return
		}
		d := c.frontQ[c.frontHead]
		if !c.canDispatch(d.U) {
			return
		}
		c.frontPop()
		c.dispatch(d)
	}
}

// feedFromBuffer injects the dependence chain as a loop (Section 4.3):
// renamed at up to the superscalar width, front end gated.
func (c *Core) feedFromBuffer() {
	if c.now < c.ra.bufferReadyAt || c.ra.chain == nil || len(c.ra.chain.Uops) == 0 {
		return
	}
	for n := 0; n < c.cfg.RenameWidth; n++ {
		cu := &c.ra.chain.Uops[c.ra.bufferPos]
		if !c.canDispatch(&cu.U) {
			return
		}
		c.seq++
		d := c.newDyn()
		d.Seq = c.seq
		d.PC = cu.PC
		d.Index = cu.Index
		d.U = &cu.U
		d.PDst, d.PSrc1, d.PSrc2, d.POld = noPhys, noPhys, noPhys, noPhys
		d.FetchCycle = c.now
		d.Runahead = true
		d.FromBuffer = true
		c.ra.bufferPos = (c.ra.bufferPos + 1) % len(c.ra.chain.Uops)
		c.st.BufferUopsIssued++
		c.dispatch(d)
	}
}

// canDispatch checks structural resources for one uop.
func (c *Core) canDispatch(u *isa.Uop) bool {
	if c.rob.full() || c.rsCount >= c.cfg.RSSize {
		return false
	}
	if u.Op.IsLoad() && c.lqCount >= c.cfg.LQSize {
		return false
	}
	if u.Op.IsStore() && c.sqCount >= c.cfg.SQSize {
		return false
	}
	if u.Dst != isa.RegNone && !c.ren.haveFree() {
		return false
	}
	return true
}

// dispatch renames d and inserts it into the ROB and reservation station.
func (c *Core) dispatch(d *DynInst) {
	u := d.U
	if u.Src1 != isa.RegNone {
		d.PSrc1 = c.ren.rat[u.Src1]
	}
	if u.Src2 != isa.RegNone {
		d.PSrc2 = c.ren.rat[u.Src2]
	}
	if u.Dst != isa.RegNone {
		d.POld = c.ren.rat[u.Dst]
		d.PDst = c.ren.alloc()
		c.ren.rat[u.Dst] = d.PDst
		c.prf.ready[d.PDst] = false
		c.prf.poison[d.PDst] = false
		c.prf.prod[d.PDst] = d.Seq
	}
	c.rob.push(d)
	c.traceDispatch(d)
	c.cycleRenamed++
	d.Renamed = true
	c.enroll(d)
	c.rsCount++
	if u.Op.IsLoad() {
		c.lqCount++
	}
	if u.Op.IsStore() {
		c.sqCount++
	}
	c.st.Renamed++
	if d.Runahead {
		c.st.RunaheadUops++
	}
}

// issueStage selects up to IssueWidth ready uops, oldest first, bounded by
// data-cache ports for memory operations. The event-driven scheduler
// (sched.go) is the default; the ROB scan is preserved as the reference the
// lockstep equivalence tests compare against.
func (c *Core) issueStage() {
	if c.cfg.Scheduler == SchedScan {
		c.issueStageScan()
		return
	}
	c.issueStageEvent()
}

// issue performs the selection bookkeeping shared by both schedulers.
func (c *Core) issue(d *DynInst) {
	d.Issued = true
	d.IssueCycle = c.now
	c.rsCount--
	c.st.Issued++
	c.cycleIssued++
	// PRF read energy: one read per register source actually named. Uops
	// with zero or one source (immediates, moves, branches on one register)
	// previously over-counted at a flat two reads per issue.
	if d.PSrc1 != noPhys {
		c.st.PRFReads++
	}
	if d.PSrc2 != noPhys {
		c.st.PRFReads++
	}
	c.traceIssue(d)
	c.startExec(d)
}

// issueStageScan is the reference O(ROB) selection loop.
func (c *Core) issueStageScan() {
	issued, memIssued := 0, 0
	for i := 0; i < c.rob.size() && issued < c.cfg.IssueWidth; i++ {
		d := c.rob.at(i)
		if d.Issued || !d.Renamed || d.Executed {
			continue
		}
		if !c.srcReady(d.PSrc1) || !c.srcReady(d.PSrc2) {
			continue
		}
		if d.U.Op.IsMem() {
			if memIssued >= c.cfg.MemPorts {
				continue
			}
			if d.U.Op.IsLoad() && !c.loadCanIssueScan(i, d) {
				continue
			}
		}
		c.issue(d)
		issued++
		if d.U.Op.IsMem() {
			memIssued++
		}
	}
}

// loadCanIssueScan enforces conservative memory disambiguation on the
// correct path: a load waits until every older store in the window has a
// computed address, and until an overlapping older store has its data ready
// (so it can forward). During runahead all results are speculative and
// discarded, so loads ignore unknown-address stores entirely (classic
// runahead semantics — the runahead cache catches the forwarding that
// matters); stalling them behind slow store-data chains would strangle the
// prefetching the mode exists for. This is the reference walk; the event
// scheduler's loadCanIssueEvent (sched.go) must agree with it exactly.
func (c *Core) loadCanIssueScan(idx int, d *DynInst) bool {
	if c.ra.active {
		return true
	}
	ea, eaKnown := d.predictedEA(c)
	if !eaKnown {
		// The load's own address is unknowable (poisoned sources): wait
		// rather than disambiguate against a fabricated address, which could
		// falsely overlap (or falsely clear) a real store. Unreachable on
		// the correct path today — poison exists only inside runahead, where
		// disambiguation is skipped — so waiting costs nothing and fails
		// loudly (watchdog) if that ever changes.
		return false
	}
	for j := idx - 1; j >= 0; j-- {
		s := c.rob.at(j)
		if !s.U.Op.IsStore() {
			continue
		}
		if s.Poisoned {
			continue // unknown address in runahead; classic runahead ignores it
		}
		if !s.EAValid {
			return false
		}
		if overlaps(s.EA, ea) {
			if !s.Executed {
				return false
			}
		}
	}
	return true
}

// predictedEA computes the load's address from ready sources. ok is false
// when a source is poisoned: the address is unknowable and callers must
// treat the load conservatively instead of comparing a dummy value.
func (d *DynInst) predictedEA(c *Core) (ea uint64, ok bool) {
	if c.srcPoisoned(d.PSrc1) || (d.U.Scaled && c.srcPoisoned(d.PSrc2)) {
		return 0, false
	}
	return prog.EffAddr(d.U, c.srcVal(d.PSrc1), c.srcVal(d.PSrc2)), true
}

func overlaps(a, b uint64) bool {
	d := a - b
	return d < 8 || -d < 8
}

// startExec begins execution of an issued uop.
func (c *Core) startExec(d *DynInst) {
	u := d.U
	// Poison propagation (runahead): any poisoned source poisons the result
	// without real execution. Stores with poisoned data still record the
	// poison in the runahead cache via execStore.
	poisoned := c.srcPoisoned(d.PSrc1) || c.srcPoisoned(d.PSrc2)
	if poisoned && !u.Op.IsStore() {
		c.poisonComplete(d)
		return
	}
	switch {
	case u.Op.IsLoad():
		c.st.ExecMem++
		c.schedule(c.now+1, evExecLoad, d)
	case u.Op.IsStore():
		c.st.ExecMem++
		c.schedule(c.now+1, evExecStore, d)
	case u.Op.IsBranch():
		c.st.ExecBranch++
		c.schedule(c.now+int64(u.Op.ExecLatency()), evExecBranch, d)
	default:
		switch u.Op.FU() {
		case isa.FUMul:
			c.st.ExecMul++
		case isa.FUDiv:
			c.st.ExecDiv++
		case isa.FUFP, isa.FUFDiv:
			c.st.ExecFP++
		default:
			c.st.ExecALU++
		}
		// Value and producer tags are computed when the event fires
		// (fireEvent): issued sources are stable, so the result is identical
		// and no closure is allocated.
		c.schedule(c.now+int64(u.Op.ExecLatency()), evALUComplete, d)
	}
}

// execStore computes the store's address and data one cycle after issue.
// Runahead stores write the runahead cache (Section 4.3); normal stores wait
// for commit to become visible.
func (c *Core) execStore(d *DynInst) {
	if d.Squashed || d.Executed {
		return
	}
	addrPoisoned := c.srcPoisoned(d.PSrc1)
	dataPoisoned := c.srcPoisoned(d.PSrc2)
	if !addrPoisoned {
		d.EA = prog.EffAddr(d.U, c.srcVal(d.PSrc1), 0)
		d.EAValid = true
		d.StoreData = c.srcVal(d.PSrc2)
		c.noteStoreAddr(d)
	}
	d.Prod1, d.Prod2 = c.srcProd(d.PSrc1), c.srcProd(d.PSrc2)
	if c.ra.active {
		if addrPoisoned {
			c.poisonComplete(d)
			return
		}
		c.racache.Write(d.EA, d.StoreData, dataPoisoned)
		d.Poisoned = dataPoisoned
		c.complete(d)
		return
	}
	c.complete(d)
}

// execLoad runs one cycle after issue (AGU): disambiguate against older
// stores, forward, consult the runahead cache in runahead mode, then access
// the memory hierarchy.
func (c *Core) execLoad(d *DynInst) {
	if d.Squashed || d.Executed {
		return
	}
	if c.srcPoisoned(d.PSrc1) || (d.U.Scaled && c.srcPoisoned(d.PSrc2)) {
		c.poisonComplete(d)
		return
	}
	d.EA = prog.EffAddr(d.U, c.srcVal(d.PSrc1), c.srcVal(d.PSrc2))
	d.EAValid = true
	d.Prod1, d.Prod2 = c.srcProd(d.PSrc1), c.srcProd(d.PSrc2)
	if d.FromBuffer && c.ra.active {
		c.ra.bufferRealLoads++
	}

	// Store-queue forwarding: youngest older store with an overlapping
	// address — via the address index under the event scheduler, via the
	// reference window walk under the scan scheduler.
	var fwd *DynInst
	if c.cfg.Scheduler == SchedScan {
		for i := c.robIndexOf(d) - 1; i >= 0; i-- {
			s := c.rob.at(i)
			if !s.U.Op.IsStore() || !s.EAValid {
				continue
			}
			if overlaps(s.EA, d.EA) {
				fwd = s
				break
			}
		}
	} else {
		fwd = c.forwardingStore(d)
	}
	if fwd != nil {
		if !fwd.Executed {
			// Defensive replay: unreachable while stores compute address and
			// data in the same cycle, correct if those ever split.
			c.st.LoadRetries++
			c.schedule(c.now+1, evExecLoad, d)
			return
		}
		c.st.StoreForward++
		if d.FromBuffer && c.ra.active {
			c.ra.bufferForwards++
		}
		d.ProdStore = fwd.Seq
		if fwd.Poisoned {
			c.poisonComplete(d)
			return
		}
		d.Value = fwd.StoreData
		d.MemLevel = memsys.LevelL1
		c.schedule(c.now+2, evComplete, d)
		return
	}

	// Runahead cache forwarding (runahead stores are invisible to memory).
	if c.ra.active {
		if v, pois, hit := c.racache.Read(d.EA); hit {
			if d.FromBuffer {
				c.ra.bufferForwards++
			}
			if pois {
				c.poisonComplete(d)
				return
			}
			d.Value = v
			d.MemLevel = memsys.LevelL1
			c.schedule(c.now+2, evComplete, d)
			return
		}
	}

	// Memory access. The value is snapshotted now: all older overlapping
	// stores have been handled, so the committed image holds the right data.
	value := c.mem.Read64(d.EA)
	noWait := c.ra.active
	if d.memIssued {
		return
	}
	// Fast path: an L1D hit needs no hierarchy callbacks at all. The hierarchy
	// counts the access, the core stamps the outcome and schedules its own
	// typed completion at the L1 latency — the closure pair below is built
	// only for misses, where it earns its keep. (A hit can never be runahead's
	// DRAM-bound blocking load, so the exit check in the miss path's callback
	// has no analogue here.)
	if c.h.LoadHitR(c.memReq, d.EA) {
		d.Value = value
		d.MemLevel = memsys.LevelL1
		c.schedule(c.now+int64(c.cfg.Mem.L1Latency), evComplete, d)
		d.memIssued = true
		if d.Runahead {
			c.st.RunaheadLoads++
		}
		return
	}
	// The callbacks below can fire long after d has left the machine and its
	// slot been recycled (pseudo-retire frees the runahead blocking load while
	// its DRAM fill is still outstanding). gen gates every mutation of d; the
	// captured seq and ea keep the machine-level effects — runahead exit and
	// miss-age bookkeeping — correct independently of the slot's fate.
	gen, seq, ea := d.gen, d.Seq, d.EA
	ok := c.h.LoadR(c.memReq, c.now, ea, noWait,
		func(int64) { // DRAM-bound miss discovered
			line := ea &^ 63
			if _, seen := c.missAge[line]; !seen {
				if len(c.missAge) > 8192 {
					clear(c.missAge)
				}
				c.missAge[line] = c.now
			}
			if d.gen != gen {
				return
			}
			d.DRAMBound = true
			// Classic runahead invalidates every load that misses to DRAM
			// while in runahead mode, so the window can drain past it. Loads
			// issued no-wait poison through their own completion path.
			if c.ra.active && !noWait && !d.Executed && !d.Squashed && seq != c.ra.blockingSeq {
				d.MemLevel = memsys.LevelMem
				c.poisonComplete(d)
			}
		},
		func(o memsys.Outcome) {
			if c.ra.active && seq == c.ra.blockingSeq {
				// The data that blocked the ROB is back: leave runahead.
				c.ra.pendingExit = true
			}
			if d.gen != gen || d.Squashed || d.Executed {
				return
			}
			d.MemLevel = o.Level
			if noWait && o.Level == memsys.LevelMem {
				if d.FromBuffer && c.ra.active {
					c.ra.bufferMemLoads++
				}
				// Runahead: no data — mark invalid and move on.
				c.poisonComplete(d)
				return
			}
			d.Value = value
			c.complete(d)
		})
	if !ok {
		c.st.LoadRetries++
		c.schedule(c.now+1, evExecLoad, d)
		return
	}
	d.memIssued = true
	if d.Runahead {
		c.st.RunaheadLoads++
	}
}

// poisonComplete finishes a uop whose result is invalid (runahead poison).
func (c *Core) poisonComplete(d *DynInst) {
	if d.Squashed || d.Executed {
		return
	}
	d.Poisoned = true
	c.st.PoisonedUops++
	c.complete(d)
}

// complete retires execution of d: writes the register file, resolves
// branches, and records instrumentation.
func (c *Core) complete(d *DynInst) {
	if d.Squashed || d.Executed {
		return
	}
	if !d.Issued {
		// Completed without issuing (poisoned at runahead entry); free its
		// reservation-station slot.
		d.Issued = true
		c.rsCount--
	}
	d.Executed = true
	d.DoneCycle = c.now
	c.traceComplete(d)
	if d.PDst != noPhys {
		c.prf.val[d.PDst] = d.Value
		c.prf.ready[d.PDst] = true
		c.prf.poison[d.PDst] = d.Poisoned
		c.prf.prod[d.PDst] = d.Seq
		c.st.PRFWrites++
		c.broadcast(d.PDst)
	}
	if d.IsBranch && !d.Poisoned {
		c.resolveBranch(d)
	}
	if c.dep != nil {
		c.dep.record(c, d)
	}
	if d.Runahead && d.U.Op.IsLoad() && d.MemLevel == memsys.LevelMem && c.dep != nil {
		c.dep.onRunaheadMiss(c, d)
	}
}

// execBranch resolves a branch at the end of its execution latency.
func (c *Core) execBranch(d *DynInst) {
	if d.Squashed || d.Executed {
		return
	}
	if c.srcPoisoned(d.PSrc1) || c.srcPoisoned(d.PSrc2) {
		// Poisoned sources: trust the prediction, never recover (Section 3).
		c.poisonComplete(d)
		return
	}
	s1, s2 := c.srcVal(d.PSrc1), c.srcVal(d.PSrc2)
	d.Prod1, d.Prod2 = c.srcProd(d.PSrc1), c.srcProd(d.PSrc2)
	d.Taken = prog.BranchTaken(d.U, s1, s2)
	if d.U.Op == isa.CALL && d.U.HasDst() {
		d.Value = int64(d.PC + isa.UopBytes)
	}
	switch {
	case d.U.Op == isa.RET:
		d.Target = uint64(s1)
	case d.Taken:
		d.Target = c.p.TakenTarget(d.U)
	default:
		d.Target = d.PC + isa.UopBytes
	}
	c.complete(d)
}

// resolveBranch trains the predictor and recovers from mispredictions.
func (c *Core) resolveBranch(d *DynInst) {
	c.st.Branches++
	if d.U.Op.IsConditional() {
		c.bp.Resolve(d.PC, d.Pred, d.Taken)
	}
	if d.Taken && d.U.Op != isa.RET {
		c.bp.UpdateBTB(d.PC, d.Target)
	}
	actualNext := d.Target
	if !d.Taken {
		actualNext = d.PC + isa.UopBytes
	}
	predNext := d.PredTarget
	if !d.PredTaken {
		predNext = d.PC + isa.UopBytes
	}
	d.Mispred = actualNext != predNext
	if !d.Mispred {
		return
	}
	c.st.Mispredicts++
	if d.U.Op.IsConditional() {
		c.bp.RepairHistory(d.Pred.GHRBefore, d.Taken)
	}
	c.squashAfter(d)
	c.redirectFetch(actualNext, int64(c.cfg.RedirectPenalty))
	// Empty-window cycles inside this shadow are the misprediction's cost
	// (CPI-stack branch-recovery bucket): the redirect bubble plus the
	// fetch-to-rename refill.
	c.branchRecoverUntil = c.now + int64(c.cfg.RedirectPenalty+c.cfg.DecodeDepth)
}

// robIndexOf returns d's distance from the ROB head.
func (c *Core) robIndexOf(d *DynInst) int {
	idx := d.ROBPos - c.rob.head
	if idx < 0 {
		idx += len(c.rob.entries)
	}
	return idx
}

// squashAfter removes every instruction younger than d from the machine,
// unwinding the RAT through the saved previous mappings.
func (c *Core) squashAfter(d *DynInst) {
	for c.rob.size() > 0 {
		t := c.rob.at(c.rob.size() - 1)
		if t == d {
			break
		}
		c.rob.popTail()
		c.squash(t)
	}
}

func (c *Core) squash(t *DynInst) {
	t.Squashed = true
	c.st.SquashedUops++
	c.traceSquash(t)
	if t.U.Op.IsStore() {
		c.dropStore(t)
	}
	if t.U.Op.IsLoad() && t.memIssued {
		// The request outlives the squash; it may prefetch a line the
		// correct path wants.
		c.st.WrongPathLoads++
	}
	if t.PDst != noPhys {
		c.ren.rat[t.U.Dst] = t.POld
		c.ren.release(t.PDst)
	}
	if t.Renamed && !t.Issued && !t.Executed {
		c.rsCount--
	}
	if t.U.Op.IsLoad() {
		c.lqCount--
	}
	if t.U.Op.IsStore() {
		c.sqCount--
	}
	// The ROB slot was the last owning reference; outstanding events, memory
	// callbacks, and scheduler entries all hold gen captures and go dead now.
	c.freeDyn(t)
}
