package core

import (
	"math/rand"
	"testing"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// randomProgram generates a structurally valid random program: a handful of
// blocks of random ALU/memory/branch uops over a bounded data region, with
// every block ending in a branch so control never escapes. It is the
// adversarial input for the architectural-equivalence invariant: whatever
// the out-of-order machine speculates — wrong paths, runahead, poison — it
// must commit exactly what the interpreter computes.
func randomProgram(rng *rand.Rand) *prog.Program {
	b := prog.NewBuilder("fuzz")
	const (
		nBlocks  = 6
		dataSize = 1 << 16
	)
	data := b.Alloc(dataSize, 64)
	// Seed some memory so loads return varied values.
	for i := 0; i < 64; i++ {
		b.Mem().Write64(data+uint64(rng.Intn(dataSize/8))*8, rng.Int63())
	}

	blocks := make([]*prog.BlockBuilder, nBlocks)
	for i := range blocks {
		blocks[i] = b.Block("b")
	}
	// Register conventions: r1 holds the data base (re-established in every
	// block so wrong paths cannot wander), r2 a bounded offset, r3..r9 data.
	reg := func() isa.Reg { return isa.Reg(3 + rng.Intn(7)) }
	for bi, bb := range blocks {
		bb.Movi(1, int64(data))
		bb.OpI(isa.ANDI, 2, 2, dataSize-8) // keep the offset in range
		n := 3 + rng.Intn(12)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2:
				bb.Op([]isa.Opcode{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.MUL, isa.FADD}[rng.Intn(7)],
					reg(), reg(), reg())
			case 3:
				bb.OpI([]isa.Opcode{isa.ADDI, isa.MULI, isa.ANDI}[rng.Intn(3)],
					reg(), reg(), int64(rng.Intn(1024)))
			case 4:
				bb.Movi(reg(), rng.Int63n(1<<20))
			case 5, 6:
				// Bounded load: EA = base + (offset & mask).
				bb.Op(isa.ADD, 10, 1, 2)
				bb.Ld(reg(), 10, int64(rng.Intn(8)*8))
			case 7:
				// Bounded store.
				bb.Op(isa.ADD, 10, 1, 2)
				bb.St(10, int64(rng.Intn(8)*8), reg())
			case 8:
				// Advance the offset (data-dependent, stays bounded).
				bb.Op(isa.ADD, 2, 2, reg())
				bb.OpI(isa.ANDI, 2, 2, dataSize-8)
			case 9:
				// DIV exercises the long-latency unit and the /0 path.
				bb.Op(isa.DIV, reg(), reg(), reg())
			}
		}
		// Terminator: a conditional branch to a random block, falling through
		// to the next (or wrapping to block 0 with an unconditional branch).
		tgt := blocks[rng.Intn(nBlocks)]
		switch rng.Intn(3) {
		case 0:
			bb.Beqz(reg(), tgt)
		case 1:
			bb.Bnez(reg(), tgt)
		default:
			bb.Blt(reg(), reg(), tgt)
		}
		if bi == nBlocks-1 {
			bb.Jmp(blocks[0])
		} else {
			// Fall-through to the next block is implicit; also allow it.
			bb.Jmp(blocks[bi+1])
		}
	}
	return b.MustBuild()
}

// TestFuzzEquivalence runs random programs under every runahead mode and
// checks bit-exact architectural equivalence with the reference interpreter.
func TestFuzzEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow")
	}
	modes := []Mode{ModeNone, ModeTraditional, ModeBufferCC, ModeHybrid}
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		mode := modes[seed%int64(len(modes))]
		cfg := testConfig(mode)
		cfg.Enhancements = seed%2 == 0
		cfg.Mem.EnablePrefetch = seed%3 == 0
		c := New(cfg, p)
		st := c.Run(15_000)
		in := prog.NewInterp(p)
		in.Run(st.Committed)
		regs := c.ArchRegs()
		for r := 0; r < isa.NumArchRegs; r++ {
			if regs[r] != in.Regs[r] {
				t.Fatalf("seed %d mode %v: r%d = %d, interpreter %d", seed, mode, r, regs[r], in.Regs[r])
			}
		}
		if !c.Mem().Equal(in.Mem) {
			addr, _ := c.Mem().FirstDiff(in.Mem)
			t.Fatalf("seed %d mode %v: memory differs at %#x", seed, mode, addr)
		}
	}
}

// TestFuzzDeterminism: the same random program must produce cycle-identical
// runs.
func TestFuzzDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := randomProgram(rng)
	run := func() (uint64, int64) {
		c := New(testConfig(ModeHybrid), p)
		st := c.Run(10_000)
		return st.Committed, c.Now()
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, n1, c2, n2)
	}
}

// FuzzEquivalence is the native fuzz target behind the two tests above: the
// fuzzer mutates (seed, mode, enhancement bits), each input generating a
// random program that must commit exactly what the interpreter computes
// while every structural invariant holds on every cycle, and must behave
// cycle-identically under the event-driven and scan issue schedulers and
// under the warped and per-cycle clocks. CI
// runs it briefly (-fuzz FuzzEquivalence -fuzztime 30s); locally it doubles
// as a regression runner over the seed corpus.
func FuzzEquivalence(f *testing.F) {
	f.Add(int64(1), byte(0), false, false)
	f.Add(int64(2), byte(1), true, false)
	f.Add(int64(3), byte(2), false, true)
	f.Add(int64(4), byte(3), true, true)
	modes := []Mode{ModeNone, ModeTraditional, ModeBufferCC, ModeHybrid}
	f.Fuzz(func(t *testing.T, seed int64, modeByte byte, enh, pf bool) {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		cfg := testConfig(modes[int(modeByte)%len(modes)])
		cfg.Enhancements = enh
		cfg.Mem.EnablePrefetch = pf
		c := New(cfg, p)
		c.SetCycleHook(func() {
			deep := c.Now()%256 == 0
			if err := c.CheckInvariants(deep); err != nil {
				t.Fatalf("cycle %d: %v\n%s", c.Now(), err, c.DebugDump())
			}
		})
		st := c.Run(8_000)
		in := prog.NewInterp(p)
		in.Run(st.Committed)
		regs := c.ArchRegs()
		for r := 0; r < isa.NumArchRegs; r++ {
			if regs[r] != in.Regs[r] {
				t.Fatalf("r%d = %d, interpreter %d", r, regs[r], in.Regs[r])
			}
		}
		if !c.Mem().Equal(in.Mem) {
			addr, _ := c.Mem().FirstDiff(in.Mem)
			t.Fatalf("memory differs at %#x", addr)
		}
		// Scheduler equivalence: the scan reference must land on the same
		// cycle with the same architectural state as the event scheduler run.
		scanCfg := cfg
		scanCfg.Scheduler = SchedScan
		sc := New(scanCfg, p)
		sst := sc.Run(8_000)
		if sst.Committed != st.Committed || sc.Now() != c.Now() {
			t.Fatalf("scan scheduler diverged: committed %d at cycle %d, event committed %d at cycle %d",
				sst.Committed, sc.Now(), st.Committed, c.Now())
		}
		if sc.ArchRegs() != regs {
			t.Fatal("scan scheduler diverged in architectural register state")
		}
		// Clock equivalence: the per-cycle reference must land on the same
		// cycle with the same architectural state as the warped run (the
		// primary run above uses the default ClockWarp).
		tickCfg := cfg
		tickCfg.ClockMode = ClockTick
		tc := New(tickCfg, p)
		tst := tc.Run(8_000)
		if tst.Committed != st.Committed || tc.Now() != c.Now() {
			t.Fatalf("tick clock diverged: committed %d at cycle %d, warp committed %d at cycle %d",
				tst.Committed, tc.Now(), st.Committed, c.Now())
		}
		if tc.ArchRegs() != regs {
			t.Fatal("tick clock diverged in architectural register state")
		}
		if tc.Stats().CPIStackSum() != c.Stats().CPIStackSum() {
			t.Fatalf("tick clock diverged in CPI accounting: tick %d, warp %d",
				tc.Stats().CPIStackSum(), c.Stats().CPIStackSum())
		}
	})
}
