package core

import (
	"fmt"

	"runaheadsim/internal/isa"
)

// This file is the core half of the simcheck sanitizer: hook registration
// plus the structural invariants of the out-of-order engine. The checks are
// split by cost — CheckInvariants(false) is O(ROB) and safe to run every
// cycle; CheckInvariants(true) adds the full physical-register partition and
// cache-array scans, which the sanitizer runs on a coarser interval and at
// the end of a run.

// SetCommitHook registers fn to run after every correct-path retirement,
// with the retired instruction (runahead pseudo-retires do not fire it).
// The simcheck lockstep oracle attaches here. Passing nil detaches.
func (c *Core) SetCommitHook(fn func(*DynInst)) { c.onCommit = fn }

// SetCycleHook registers fn to run at the end of every Cycle, after all
// stages and accounting. The simcheck invariant sweep attaches here.
// Passing nil detaches.
func (c *Core) SetCycleHook(fn func()) { c.onCycle = fn }

// DebugDump renders a short machine-state summary (cycle, occupancies, the
// oldest ROB entries) for sanitizer reports and debugging.
func (c *Core) DebugDump() string { return c.dump() }

// CheckInvariants verifies the core's structural invariants and those of its
// memory hierarchy, returning the first violation. With deep false only the
// per-cycle-cheap checks run: ROB seq order, queue-occupancy conservation,
// free-list count conservation, and MSHR conservation. deep adds the exact
// physical-register partition, runahead-cache LRU integrity, cache LRU
// integrity, and inclusive-LLC containment.
func (c *Core) CheckInvariants(deep bool) error {
	if err := c.checkFast(); err != nil {
		return err
	}
	if deep {
		if err := c.checkDeep(); err != nil {
			return err
		}
	}
	return c.h.CheckInvariants(deep)
}

// checkFast holds the O(ROB) per-cycle checks.
func (c *Core) checkFast() error {
	// ROB seq order: program-order allocation means strictly increasing
	// sequence numbers from head to tail.
	var loads, stores, unissued, polds int
	for i := 0; i < c.rob.size(); i++ {
		d := c.rob.at(i)
		if d == nil {
			return fmt.Errorf("rob[%d] is nil with count %d", i, c.rob.size())
		}
		if i > 0 && d.Seq <= c.rob.at(i-1).Seq {
			return fmt.Errorf("rob seq order broken: rob[%d] seq %d after rob[%d] seq %d",
				i, d.Seq, i-1, c.rob.at(i-1).Seq)
		}
		if d.U.Op.IsLoad() {
			loads++
		}
		if d.U.Op.IsStore() {
			stores++
		}
		if d.Renamed && !d.Issued {
			unissued++
		}
		if d.POld != noPhys {
			polds++
		}
	}
	if loads != c.lqCount {
		return fmt.Errorf("load-queue count %d, but %d loads in the ROB", c.lqCount, loads)
	}
	if stores != c.sqCount {
		return fmt.Errorf("store-queue count %d, but %d stores in the ROB", c.sqCount, stores)
	}
	if unissued != c.rsCount {
		return fmt.Errorf("reservation-station count %d, but %d renamed-unissued uops in the ROB", c.rsCount, unissued)
	}
	// Free-list conservation: every physical register is in the free list,
	// named by the RAT, or held as some in-flight instruction's previous
	// mapping. The counts must add up every cycle (checkDeep verifies the
	// partition is exact, not just numerically balanced).
	if got := len(c.ren.free) + isa.NumArchRegs + polds; got != c.cfg.NumPhysRegs {
		return fmt.Errorf("free-list conservation broken: %d free + %d mapped + %d held as POld = %d, want %d phys regs",
			len(c.ren.free), isa.NumArchRegs, polds, got, c.cfg.NumPhysRegs)
	}
	if len(c.storeBuf) > c.cfg.StoreBufSize {
		return fmt.Errorf("store buffer holds %d entries, capacity %d", len(c.storeBuf), c.cfg.StoreBufSize)
	}
	return nil
}

// checkDeep holds the full-scan checks.
func (c *Core) checkDeep() error {
	if err := c.checkPhysRegPartition(); err != nil {
		return err
	}
	return c.racache.checkIntegrity()
}

// checkPhysRegPartition verifies that {RAT mappings} ∪ {free list} ∪
// {in-flight POld} is an exact partition of the physical register file: every
// register in exactly one place. Double-frees, double-mappings, and leaks all
// surface here with the offending register named.
func (c *Core) checkPhysRegPartition() error {
	owner := make([]string, c.cfg.NumPhysRegs)
	claim := func(p PhysReg, who string) error {
		if int(p) < 0 || int(p) >= c.cfg.NumPhysRegs {
			return fmt.Errorf("phys reg %d out of range (%s)", p, who)
		}
		if prev := owner[p]; prev != "" {
			return fmt.Errorf("phys reg %d claimed by both %s and %s", p, prev, who)
		}
		owner[p] = who
		return nil
	}
	for a, p := range c.ren.rat {
		if err := claim(p, fmt.Sprintf("rat[r%d]", a)); err != nil {
			return err
		}
	}
	for _, p := range c.ren.free {
		if err := claim(p, "the free list"); err != nil {
			return err
		}
	}
	for i := 0; i < c.rob.size(); i++ {
		d := c.rob.at(i)
		if d.POld == noPhys {
			continue
		}
		if err := claim(d.POld, fmt.Sprintf("POld of seq %d", d.Seq)); err != nil {
			return err
		}
	}
	for p, who := range owner {
		if who == "" {
			return fmt.Errorf("phys reg %d leaked: not free, not mapped, not held as POld", p)
		}
	}
	return nil
}

// checkIntegrity verifies the runahead cache's LRU stacks the same way
// cache.CheckIntegrity does for the main arrays.
func (c *raCache) checkIntegrity() error {
	for si, set := range c.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			if set[i].lastUse > c.stamp {
				return fmt.Errorf("runahead cache: set %d way %d stamp %d exceeds global stamp %d",
					si, i, set[i].lastUse, c.stamp)
			}
			for j := i + 1; j < len(set); j++ {
				if !set[j].valid {
					continue
				}
				if set[i].tag == set[j].tag {
					return fmt.Errorf("runahead cache: set %d holds tag %#x in ways %d and %d", si, set[i].tag, i, j)
				}
				if set[i].lastUse == set[j].lastUse {
					return fmt.Errorf("runahead cache: set %d ways %d and %d share LRU stamp %d", si, i, j, set[i].lastUse)
				}
			}
		}
	}
	return nil
}
