package core

import (
	"fmt"

	"runaheadsim/internal/isa"
)

// This file is the core half of the simcheck sanitizer: hook registration
// plus the structural invariants of the out-of-order engine. The checks are
// split by cost — CheckInvariants(false) is O(ROB) and safe to run every
// cycle; CheckInvariants(true) adds the full physical-register partition and
// cache-array scans, which the sanitizer runs on a coarser interval and at
// the end of a run.

// SetCommitHook registers fn to run after every correct-path retirement,
// with the retired instruction (runahead pseudo-retires do not fire it).
// The simcheck lockstep oracle attaches here. Passing nil detaches.
func (c *Core) SetCommitHook(fn func(*DynInst)) { c.onCommit = fn }

// SetCycleHook registers fn to run at the end of every Cycle, after all
// stages and accounting. The simcheck invariant sweep attaches here.
// Passing nil detaches.
func (c *Core) SetCycleHook(fn func()) { c.onCycle = fn }

// DebugDump renders a short machine-state summary (cycle, occupancies, the
// oldest ROB entries) for sanitizer reports and debugging.
func (c *Core) DebugDump() string { return c.dump() }

// CheckInvariants verifies the core's structural invariants and those of its
// memory hierarchy, returning the first violation. With deep false only the
// per-cycle-cheap checks run: ROB seq order, queue-occupancy conservation,
// free-list count conservation, and MSHR conservation. deep adds the exact
// physical-register partition, runahead-cache LRU integrity, cache LRU
// integrity, and inclusive-LLC containment.
func (c *Core) CheckInvariants(deep bool) error {
	if err := c.checkFast(); err != nil {
		return err
	}
	if deep {
		if err := c.checkDeep(); err != nil {
			return err
		}
	}
	return c.h.CheckInvariants(deep)
}

// checkFast holds the O(ROB) per-cycle checks.
func (c *Core) checkFast() error {
	// ROB seq order: program-order allocation means strictly increasing
	// sequence numbers from head to tail.
	var loads, stores, unissued, polds int
	for i := 0; i < c.rob.size(); i++ {
		d := c.rob.at(i)
		if d == nil {
			return fmt.Errorf("rob[%d] is nil with count %d", i, c.rob.size())
		}
		if i > 0 && d.Seq <= c.rob.at(i-1).Seq {
			return fmt.Errorf("rob seq order broken: rob[%d] seq %d after rob[%d] seq %d",
				i, d.Seq, i-1, c.rob.at(i-1).Seq)
		}
		if d.U.Op.IsLoad() {
			loads++
		}
		if d.U.Op.IsStore() {
			stores++
		}
		if d.Renamed && !d.Issued {
			unissued++
		}
		if d.POld != noPhys {
			polds++
		}
	}
	if loads != c.lqCount {
		return fmt.Errorf("load-queue count %d, but %d loads in the ROB", c.lqCount, loads)
	}
	if stores != c.sqCount {
		return fmt.Errorf("store-queue count %d, but %d stores in the ROB", c.sqCount, stores)
	}
	if unissued != c.rsCount {
		return fmt.Errorf("reservation-station count %d, but %d renamed-unissued uops in the ROB", c.rsCount, unissued)
	}
	// Free-list conservation: every physical register is in the free list,
	// named by the RAT, or held as some in-flight instruction's previous
	// mapping. The counts must add up every cycle (checkDeep verifies the
	// partition is exact, not just numerically balanced).
	if got := len(c.ren.free) + isa.NumArchRegs + polds; got != c.cfg.NumPhysRegs {
		return fmt.Errorf("free-list conservation broken: %d free + %d mapped + %d held as POld = %d, want %d phys regs",
			len(c.ren.free), isa.NumArchRegs, polds, got, c.cfg.NumPhysRegs)
	}
	if c.sbLen() > c.cfg.StoreBufSize {
		return fmt.Errorf("store buffer holds %d entries, capacity %d", c.sbLen(), c.cfg.StoreBufSize)
	}
	return nil
}

// checkDeep holds the full-scan checks.
func (c *Core) checkDeep() error {
	if err := c.checkPhysRegPartition(); err != nil {
		return err
	}
	if err := c.checkSched(); err != nil {
		return err
	}
	return c.racache.checkIntegrity()
}

// checkSched verifies the event scheduler's bookkeeping against the ROB, the
// ground truth both schedulers select from. The load-bearing direction is
// liveness — a ready uop missing from the ready queue would stall forever
// under the event scheduler while the scan would have found it — plus exact
// correspondence of the store-address index (a leaked dead store would block
// or mis-forward loads).
func (c *Core) checkSched() error {
	s := &c.sched
	if c.cfg.Scheduler == SchedScan {
		// The scan consults none of these; enroll/broadcast keep them empty.
		if len(s.readyQ) != 0 || len(s.unknownStores) != 0 || len(s.storeIdx) != 0 {
			return fmt.Errorf("scan scheduler selected but wakeup structures are populated (readyQ %d, unknownStores %d, storeIdx %d)",
				len(s.readyQ), len(s.unknownStores), len(s.storeIdx))
		}
		return nil
	}
	if len(s.deferred) != 0 {
		return fmt.Errorf("scheduler deferred list holds %d entries between cycles", len(s.deferred))
	}
	inReady := make(map[*DynInst]bool, len(s.readyQ)+len(s.parked))
	for _, r := range s.readyQ {
		if r.stale() {
			continue // recycled slot or dead uop; dropped lazily at pop
		}
		if r.d.pendingSrcs != 0 {
			return fmt.Errorf("seq %d is in the ready queue with %d pending sources", r.seq, r.d.pendingSrcs)
		}
		inReady[r.d] = true
	}
	// Parked entries are ready uops too — popped earlier, blocked on a port
	// or disambiguation, awaiting the merge. The list must stay seq-sorted
	// or the merge would emit out of oldest-first order.
	for i, r := range s.parked {
		if i > 0 && s.parked[i-1].seq >= r.seq {
			return fmt.Errorf("parked list out of order at %d: seq %d after %d", i, r.seq, s.parked[i-1].seq)
		}
		if r.stale() {
			continue
		}
		if r.d.pendingSrcs != 0 {
			return fmt.Errorf("seq %d is parked with %d pending sources", r.seq, r.d.pendingSrcs)
		}
		inReady[r.d] = true
	}
	inUnknown := make(map[*DynInst]bool, len(s.unknownStores))
	for _, r := range s.unknownStores {
		if r.d.gen == r.gen {
			inUnknown[r.d] = true
		}
	}
	idxStores := 0
	//simlint:allow determinism -- order-insensitive validation scan
	for b, bucket := range s.storeIdx {
		for _, st := range bucket {
			idxStores++
			if st.Squashed {
				return fmt.Errorf("store index bucket %#x holds squashed seq %d", b, st.Seq)
			}
			if !st.EAValid || st.EA>>3 != b {
				return fmt.Errorf("store index bucket %#x holds seq %d with EA %#x (valid %v)", b, st.Seq, st.EA, st.EAValid)
			}
		}
	}
	robStores := 0
	for i := 0; i < c.rob.size(); i++ {
		d := c.rob.at(i)
		if d.Squashed {
			continue
		}
		if d.Renamed && !d.Issued && !d.Executed && c.srcReady(d.PSrc1) && c.srcReady(d.PSrc2) && !inReady[d] {
			return fmt.Errorf("lost wakeup: seq %d (%v) has ready sources but is not in the ready queue", d.Seq, d.U.Op)
		}
		if d.U.Op.IsStore() {
			if d.EAValid {
				robStores++
			} else if !d.Poisoned && !inUnknown[d] {
				return fmt.Errorf("store seq %d has no address yet but is missing from the unknown-store heap", d.Seq)
			}
		}
	}
	if robStores != idxStores {
		return fmt.Errorf("store index holds %d entries, but the ROB holds %d addressed stores", idxStores, robStores)
	}
	for p := range s.waiters {
		for _, w := range s.waiters[p] {
			if w.stale() {
				continue
			}
			if c.srcReady(PhysReg(p)) {
				return fmt.Errorf("seq %d still waits on phys reg %d, which is ready", w.seq, p)
			}
			if w.d.pendingSrcs <= 0 {
				return fmt.Errorf("seq %d waits on phys reg %d with pending count %d", w.seq, p, w.d.pendingSrcs)
			}
		}
	}
	return nil
}

// checkPhysRegPartition verifies that {RAT mappings} ∪ {free list} ∪
// {in-flight POld} is an exact partition of the physical register file: every
// register in exactly one place. Double-frees, double-mappings, and leaks all
// surface here with the offending register named.
func (c *Core) checkPhysRegPartition() error {
	owner := make([]string, c.cfg.NumPhysRegs)
	claim := func(p PhysReg, who string) error {
		if int(p) < 0 || int(p) >= c.cfg.NumPhysRegs {
			return fmt.Errorf("phys reg %d out of range (%s)", p, who)
		}
		if prev := owner[p]; prev != "" {
			return fmt.Errorf("phys reg %d claimed by both %s and %s", p, prev, who)
		}
		owner[p] = who
		return nil
	}
	for a, p := range c.ren.rat {
		if err := claim(p, fmt.Sprintf("rat[r%d]", a)); err != nil {
			return err
		}
	}
	for _, p := range c.ren.free {
		if err := claim(p, "the free list"); err != nil {
			return err
		}
	}
	for i := 0; i < c.rob.size(); i++ {
		d := c.rob.at(i)
		if d.POld == noPhys {
			continue
		}
		if err := claim(d.POld, fmt.Sprintf("POld of seq %d", d.Seq)); err != nil {
			return err
		}
	}
	for p, who := range owner {
		if who == "" {
			return fmt.Errorf("phys reg %d leaked: not free, not mapped, not held as POld", p)
		}
	}
	return nil
}

// checkIntegrity verifies the runahead cache's LRU stacks the same way
// cache.CheckIntegrity does for the main arrays.
func (c *raCache) checkIntegrity() error {
	for si, set := range c.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			if set[i].lastUse > c.stamp {
				return fmt.Errorf("runahead cache: set %d way %d stamp %d exceeds global stamp %d",
					si, i, set[i].lastUse, c.stamp)
			}
			for j := i + 1; j < len(set); j++ {
				if !set[j].valid {
					continue
				}
				if set[i].tag == set[j].tag {
					return fmt.Errorf("runahead cache: set %d holds tag %#x in ways %d and %d", si, set[i].tag, i, j)
				}
				if set[i].lastUse == set[j].lastUse {
					return fmt.Errorf("runahead cache: set %d ways %d and %d share LRU stamp %d", si, i, j, set[i].lastUse)
				}
			}
		}
	}
	return nil
}
