package core

import (
	"testing"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// testConfig shrinks nothing — the Table 1 machine — but disables the
// watchdog escape hatch being too lenient for unit tests.
func testConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.WatchdogCycles = 500_000
	return cfg
}

// --- Test programs -------------------------------------------------------

// simpleLoop: sum integers 1..n repeatedly; no memory traffic beyond I-fetch.
func simpleLoop() *prog.Program {
	b := prog.NewBuilder("simple-loop")
	const rI, rSum, rN = 1, 2, 3
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rI, 0).Movi(rSum, 0).Movi(rN, 100).Jmp(loop)
	loop.Addi(rI, rI, 1).
		Add(rSum, rSum, rI).
		Blt(rI, rN, loop)
	reset := b.Block("reset")
	reset.Movi(rI, 0).Jmp(loop)
	return b.MustBuild()
}

// storeLoadLoop: writes then reads back memory with data-dependent control.
func storeLoadLoop() *prog.Program {
	b := prog.NewBuilder("store-load")
	const n = 512
	arr := b.Alloc(n*8, 64)
	for i := int64(0); i < n; i++ {
		b.Mem().Write64(arr+uint64(i)*8, i*3+1)
	}
	const rI, rBase, rV, rX, rT, rN = 1, 2, 3, 4, 5, 6
	entry := b.Block("entry")
	loop := b.Block("loop")
	odd := b.Block("odd")
	even := b.Block("even")
	tail := b.Block("tail")
	entry.Movi(rI, 0).Movi(rBase, int64(arr)).Movi(rX, 7).Movi(rN, n).Jmp(loop)
	loop.LdScaled(rV, rBase, rI, 8, 0).
		OpI(isa.ANDI, rT, rV, 1).
		Bnez(rT, odd)
	even.Op(isa.XOR, rX, rX, rV).Jmp(tail)
	odd.Add(rX, rX, rV)
	tail.Op(isa.MUL, rT, rI, rI). // keep the ALUs busy
					St(rBase, 0, rX). // store to a[0]: forwarding target
					Addi(rI, rI, 1).
					Blt(rI, rN, loop)
	reset := b.Block("reset")
	reset.Movi(rI, 0).Jmp(loop)
	return b.MustBuild()
}

// gatherLoop generates one independent DRAM miss per iteration with a short
// address chain — the mcf-like pattern the runahead buffer thrives on. The
// index array is sequential (cheap); the gathered array is huge and accessed
// with a large pseudo-random stride so nearly every access misses the LLC.
func gatherLoop(extraALU int) *prog.Program {
	b := prog.NewBuilder("gather")
	const slots = 1 << 15 // 32K slots x 2KB stride = 64MB footprint
	data := b.Alloc(slots*2048, 64)
	const rI, rIdx, rAddr, rV, rAcc, rMask, rBase, rT = 1, 2, 3, 4, 5, 6, 7, 8
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rI, 0).
		Movi(rAcc, 0).
		Movi(rMask, slots-1).
		Movi(rBase, int64(data)).
		Jmp(loop)
	// idx = (i*40503) & mask; addr = base + idx*2048; v = *addr
	loop.OpI(isa.MULI, rIdx, rI, 40503).
		Op(isa.AND, rIdx, rIdx, rMask).
		OpI(isa.MULI, rAddr, rIdx, 2048).
		Add(rAddr, rAddr, rBase).
		Ld(rV, rAddr, 0).
		Add(rAcc, rAcc, rV)
	for j := 0; j < extraALU; j++ {
		loop.OpI(isa.ADDI, rT, rAcc, int64(j))
	}
	loop.Addi(rI, rI, 1).Jmp(loop)
	return b.MustBuild()
}

// pointerChase builds a single linked list walked serially — dependent
// misses runahead cannot parallelize.
func pointerChase() *prog.Program {
	b := prog.NewBuilder("chase")
	const nodes = 1 << 14
	base := b.Alloc(nodes*2048, 64)
	// next[i] = node (i*40503)&mask, a full-cycle permutation walk.
	for i := uint64(0); i < nodes; i++ {
		next := (i*40503 + 1) & (nodes - 1)
		b.Mem().Write64(base+i*2048, int64(base+next*2048))
	}
	const rP = 1
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rP, int64(base)).Jmp(loop)
	loop.Ld(rP, rP, 0).Bnez(rP, loop)
	exit := b.Block("exit")
	exit.Jmp(loop)
	return b.MustBuild()
}

// --- Equivalence ----------------------------------------------------------

// checkEquivalence runs p for n committed uops under cfg and verifies the
// committed architectural state equals the reference interpreter's.
func checkEquivalence(t *testing.T, p *prog.Program, cfg Config, n uint64) *Stats {
	t.Helper()
	c := New(cfg, p)
	st := c.Run(n)
	in := prog.NewInterp(p)
	in.Run(st.Committed)
	regs := c.ArchRegs()
	for r := 0; r < isa.NumArchRegs; r++ {
		if regs[r] != in.Regs[r] {
			t.Fatalf("%s/%v: r%d = %d, interpreter has %d (after %d uops)\n%s",
				p.Name, cfg.Mode, r, regs[r], in.Regs[r], st.Committed, c.dump())
		}
	}
	if !c.Mem().Equal(in.Mem) {
		addr, _ := c.Mem().FirstDiff(in.Mem)
		t.Fatalf("%s/%v: memory differs at %#x: core=%d interp=%d (after %d uops)",
			p.Name, cfg.Mode, addr, c.Mem().Read64(addr), in.Mem.Read64(addr), st.Committed)
	}
	return st
}

func TestEquivalenceSimpleLoop(t *testing.T) {
	checkEquivalence(t, simpleLoop(), testConfig(ModeNone), 20_000)
}

func TestEquivalenceStoreLoad(t *testing.T) {
	checkEquivalence(t, storeLoadLoop(), testConfig(ModeNone), 20_000)
}

func TestEquivalenceAllModesAllPrograms(t *testing.T) {
	programs := []*prog.Program{simpleLoop(), storeLoadLoop(), gatherLoop(8), pointerChase()}
	modes := []Mode{ModeNone, ModeTraditional, ModeBuffer, ModeBufferCC, ModeHybrid, ModeAdaptive}
	for _, p := range programs {
		for _, m := range modes {
			p, m := p, m
			t.Run(p.Name+"/"+m.String(), func(t *testing.T) {
				cfg := testConfig(m)
				checkEquivalence(t, p, cfg, 30_000)
			})
		}
	}
}

func TestEquivalenceWithEnhancementsAndPrefetch(t *testing.T) {
	cfg := testConfig(ModeTraditional)
	cfg.Enhancements = true
	cfg.Mem.EnablePrefetch = true
	checkEquivalence(t, gatherLoop(8), cfg, 30_000)

	cfg2 := testConfig(ModeHybrid)
	cfg2.Enhancements = true
	cfg2.Mem.EnablePrefetch = true
	checkEquivalence(t, storeLoadLoop(), cfg2, 30_000)
}

// --- Pipeline behaviour ---------------------------------------------------

func TestIPCIsSane(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	st := c.Run(50_000)
	st.Cycles = c.Now()
	ipc := st.IPC()
	// A 3-uop fully-predictable loop on a 4-wide machine: near-ALU-bound.
	if ipc < 1.0 || ipc > 4.0 {
		t.Fatalf("simple loop IPC = %.2f, expected between 1 and 4", ipc)
	}
}

func TestBranchPredictionLearnsLoop(t *testing.T) {
	c := New(testConfig(ModeNone), simpleLoop())
	st := c.Run(50_000)
	rate := float64(st.Mispredicts) / float64(st.Branches)
	if rate > 0.05 {
		t.Fatalf("loop branch misprediction rate = %.3f, should be tiny", rate)
	}
}

func TestMemoryBoundWorkloadStalls(t *testing.T) {
	c := New(testConfig(ModeNone), gatherLoop(8))
	st := c.Run(20_000)
	st.Cycles = c.Now()
	if st.MemStallCycles == 0 {
		t.Fatal("gather workload produced no memory stalls")
	}
	frac := float64(st.MemStallCycles) / float64(st.Cycles)
	if frac < 0.3 {
		t.Fatalf("gather workload memory-stall fraction = %.2f, expected memory-bound", frac)
	}
	if st.IPC() > 1.0 {
		t.Fatalf("gather IPC = %.2f, expected well under 1", st.IPC())
	}
}

func TestRenamerInvariantHolds(t *testing.T) {
	c := New(testConfig(ModeHybrid), storeLoadLoop())
	for i := 0; i < 20_000; i++ {
		c.Cycle()
		if i%4096 == 0 {
			if err := c.ren.checkInvariant(c.rob, c.cfg.NumPhysRegs); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, int64, uint64) {
		c := New(testConfig(ModeHybrid), gatherLoop(8))
		st := c.Run(15_000)
		return st.Committed, c.Now(), c.h.DRAMReadsDemand
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic run: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

// --- Runahead behaviour ---------------------------------------------------

func TestTraditionalRunaheadEntersAndHelps(t *testing.T) {
	// A 46-uop loop body: only ~4 iterations fit in the ROB, so the baseline
	// window extracts little MLP and runahead has room to run ahead.
	base := New(testConfig(ModeNone), gatherLoop(40))
	bst := base.Run(20_000)
	bst.Cycles = base.Now()

	ra := New(testConfig(ModeTraditional), gatherLoop(40))
	rst := ra.Run(20_000)
	rst.Cycles = ra.Now()

	if rst.RunaheadIntervals == 0 {
		t.Fatal("runahead never entered on a memory-bound workload")
	}
	if rst.RunaheadCycles == 0 || rst.RunaheadUops == 0 {
		t.Fatal("runahead executed nothing")
	}
	if rst.IPC() <= bst.IPC()*1.02 {
		t.Fatalf("runahead IPC %.3f should beat baseline %.3f", rst.IPC(), bst.IPC())
	}
}

func TestRunaheadBufferGeneratesMoreMLP(t *testing.T) {
	// With a large loop body, traditional runahead spends fetch bandwidth on
	// filler ops; the runahead buffer loops only the 8-uop chain.
	mk := func(m Mode) *Stats {
		c := New(testConfig(m), gatherLoop(40))
		st := c.Run(20_000)
		st.Cycles = c.Now()
		return st
	}
	trad := mk(ModeTraditional)
	buf := mk(ModeBufferCC)
	if buf.RunaheadIntervals == 0 || buf.BufferUopsIssued == 0 {
		t.Fatal("runahead buffer never used")
	}
	tradMLP := float64(trad.RunaheadMissesLLC) / float64(trad.RunaheadIntervals)
	bufMLP := float64(buf.RunaheadMissesLLC) / float64(buf.RunaheadIntervals)
	if bufMLP <= tradMLP {
		t.Fatalf("buffer MLP %.2f should exceed traditional %.2f", bufMLP, tradMLP)
	}
	if buf.IPC() <= trad.IPC() {
		t.Fatalf("buffer IPC %.3f should beat traditional %.3f on filler-heavy gather", buf.IPC(), trad.IPC())
	}
}

func TestRunaheadPointerChaseGivesLittle(t *testing.T) {
	// A serial pointer chase poisons each next-pointer: runahead generates no
	// extra MLP (every chase load depends on the blocked one).
	c := New(testConfig(ModeTraditional), pointerChase())
	st := c.Run(3_000)
	if st.RunaheadIntervals == 0 {
		t.Fatal("chase should trigger runahead")
	}
	mlp := float64(st.RunaheadMissesLLC) / float64(st.RunaheadIntervals)
	if mlp > 2.0 {
		t.Fatalf("serial chase generated %.2f misses/interval; dependent misses should be poisoned", mlp)
	}
}

func TestChainCacheHitsOnRepetitiveWorkload(t *testing.T) {
	c := New(testConfig(ModeBufferCC), gatherLoop(8))
	c.Run(20_000)
	hits, misses := c.ChainCacheStats()
	if hits == 0 {
		t.Fatal("chain cache never hit on a single-PC miss workload")
	}
	if hits < misses {
		t.Fatalf("chain cache hits %d < misses %d on repetitive workload", hits, misses)
	}
}

func TestHybridPrefersBufferOnShortChains(t *testing.T) {
	c := New(testConfig(ModeHybrid), gatherLoop(8))
	st := c.Run(20_000)
	if st.HybridChoseBuffer == 0 {
		t.Fatal("hybrid never chose the buffer on a short-chain workload")
	}
	if st.HybridChoseBuffer < st.HybridChoseTrad {
		t.Fatalf("hybrid chose buffer %d vs traditional %d; short chains should prefer the buffer",
			st.HybridChoseBuffer, st.HybridChoseTrad)
	}
}

func TestEnhancementsReduceRunaheadWork(t *testing.T) {
	plain := New(testConfig(ModeTraditional), gatherLoop(8))
	pst := plain.Run(20_000)
	enh := New(func() Config { c := testConfig(ModeTraditional); c.Enhancements = true; return c }(), gatherLoop(8))
	est := enh.Run(20_000)
	if est.RunaheadEntrySkipped == 0 {
		t.Fatal("enhancements never suppressed an interval")
	}
	if est.RunaheadUops >= pst.RunaheadUops {
		t.Fatalf("enhanced runahead executed %d uops, plain %d — should be fewer",
			est.RunaheadUops, pst.RunaheadUops)
	}
}

func TestFrontEndGatedDuringBufferMode(t *testing.T) {
	c := New(testConfig(ModeBufferCC), gatherLoop(8))
	st := c.Run(20_000)
	st.Cycles = c.Now()
	if st.FEGatedCycles == 0 {
		t.Fatal("front end never gated in buffer mode")
	}
	if st.FEGatedCycles != st.RunaheadBufferCycles {
		t.Fatalf("gated cycles %d != buffer cycles %d", st.FEGatedCycles, st.RunaheadBufferCycles)
	}
}

func TestRunaheadExitRestoresState(t *testing.T) {
	// Equivalence (tested above) already proves restoration; here, check the
	// machinery: after a full run the core is never left in runahead with an
	// empty ROB.
	c := New(testConfig(ModeBufferCC), gatherLoop(8))
	c.Run(10_000)
	for i := 0; i < 3; i++ {
		if c.ra.active && c.rob.empty() && !c.ra.usingBuffer {
			t.Fatal("stuck in runahead with an empty window")
		}
		c.Cycle()
	}
}

// --- Chain generation (Algorithm 1 / Figure 7) ----------------------------

// TestChainGenerationMCFExample reconstructs the spirit of Figure 7: a
// blocking load whose chain is load <- mov <- add <- add <- load, with
// unrelated filler between the links.
func TestChainGenerationMCFExample(t *testing.T) {
	b := prog.NewBuilder("fig7")
	const slots = 1 << 14
	arr := b.Alloc(slots*2048, 64)
	const rI, rB, r3, r5, r9, r6, r7, r8, rF = 1, 2, 3, 4, 5, 6, 7, 8, 9
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rI, 0).Movi(rB, int64(arr)).Movi(r3, int64(arr)).Jmp(loop)
	// The Figure 7 chain, with filler ops interleaved.
	loop.OpI(isa.MULI, r5, rI, 2048). // "LD [R3] -> R5" stand-in: index math
						Emit(isa.Uop{Op: isa.ADD, Dst: r9, Src1: r5, Src2: isa.RegNone}). // ADD R4,R5 -> R9
						OpI(isa.ADDI, rF, rI, 3).                                         // filler
						OpI(isa.ANDI, r9, r9, slots*2048-2048).                           // keep address in range
						Add(r6, r9, rB).                                                  // ADD R9,R1 -> R6
						OpI(isa.ADDI, rF, rF, 1).                                         // filler
						Mov(r7, r6).                                                      // MOV R6 -> R7
						Ld(r8, r7, 0).                                                    // LD [R7] -> R8 (the miss)
						Addi(rI, rI, 1).
						Jmp(loop)
	p := b.MustBuild()

	cfg := testConfig(ModeBuffer)
	c := New(cfg, p)
	st := c.Run(20_000)
	if st.ChainsGenerated == 0 {
		t.Fatal("no chains generated")
	}
	if st.RunaheadIntervals == 0 || st.BufferUopsIssued == 0 {
		t.Fatal("buffer never ran")
	}
	// The generated chain must include the address-generation ops but not
	// the filler: chain length well under the loop body.
	avgLen := float64(st.ROBChainReads) / float64(st.ChainsGenerated)
	if avgLen > 9 {
		t.Fatalf("average chain length %.1f — filtering failed (body is 10 uops)", avgLen)
	}
	if avgLen < 4 {
		t.Fatalf("average chain length %.1f — chain lost its links", avgLen)
	}
}

func TestChainGenerationUnitWalk(t *testing.T) {
	// Drive the machine until a recognizable state, then call generateChain
	// directly on a ROB snapshot.
	c := New(testConfig(ModeNone), gatherLoop(8))
	var blocked *DynInst
	for i := 0; i < 200_000 && blocked == nil; i++ {
		c.Cycle()
		if !c.rob.empty() {
			h := c.rob.at(0)
			if h.U.Op.IsLoad() && !h.Executed && h.DRAMBound && c.rob.size() > 50 {
				blocked = h
			}
		}
	}
	if blocked == nil {
		t.Fatal("never observed a blocking load")
	}
	match := c.findOtherInstance(blocked)
	if match == nil {
		t.Fatal("no other dynamic instance of the blocking PC in a tight loop")
	}
	ch, searches, truncated := c.generateChain(match)
	if ch == nil || ch.Len() == 0 {
		t.Fatal("chain generation failed")
	}
	if truncated {
		t.Fatal("8-uop loop chain should not be truncated")
	}
	if searches == 0 {
		t.Fatal("no destination-CAM searches counted")
	}
	if ch.Len() > c.cfg.MaxChainLength {
		t.Fatalf("chain length %d exceeds the cap", ch.Len())
	}
	// The chain must contain the gather load and be in program order.
	hasLoad := false
	for i := 1; i < len(ch.Uops); i++ {
		if ch.Uops[i-1].Index > ch.Uops[i].Index &&
			!(ch.Uops[i-1].Index > ch.Uops[i].Index && ch.Uops[i].Index >= 0) {
			t.Fatal("chain not in a consistent order")
		}
	}
	for _, cu := range ch.Uops {
		if cu.U.Op.IsLoad() {
			hasLoad = true
		}
		if cu.U.Op.IsBranch() {
			t.Fatal("control ops must be excluded from chains")
		}
	}
	if !hasLoad {
		t.Fatal("chain lost the miss-generating load")
	}
	if ch.Signature == 0 {
		t.Fatal("empty signature")
	}
}

func TestChainIncludesStoreForwarding(t *testing.T) {
	// Spill/fill: the chain of a miss whose address is reloaded from a spill
	// slot must include the spilling store.
	b := prog.NewBuilder("spill")
	const slots = 1 << 14
	arr := b.Alloc(slots*2048, 64)
	slot := b.Alloc(8, 8)
	const rI, rB, rA, rV, rS = 1, 2, 3, 4, 5
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rI, 0).Movi(rB, int64(arr)).Movi(rS, int64(slot)).Jmp(loop)
	loop.OpI(isa.MULI, rA, rI, 40503).
		OpI(isa.ANDI, rA, rA, slots-1).
		OpI(isa.MULI, rA, rA, 2048).
		Add(rA, rA, rB).
		St(rS, 0, rA). // spill the address
		Ld(rA, rS, 0). // fill it back
		Ld(rV, rA, 0). // the miss
		Addi(rI, rI, 1).
		Jmp(loop)
	p := b.MustBuild()
	c := New(testConfig(ModeBuffer), p)
	st := c.Run(20_000)
	if st.SQCAMSearches == 0 {
		t.Fatal("store-queue CAM was never searched during chain generation")
	}
	if st.RunaheadIntervals == 0 {
		t.Fatal("no runahead on the spill workload")
	}
}

// --- Instrumentation ------------------------------------------------------

func TestDepTrackFig2SourcesOnChip(t *testing.T) {
	cfg := testConfig(ModeNone)
	cfg.DepTrack = true
	c := New(cfg, gatherLoop(8))
	st := c.Run(20_000)
	if st.DemandDRAMMisses == 0 {
		t.Fatal("no demand misses recorded")
	}
	frac := float64(st.MissSourcesOnChip) / float64(st.DemandDRAMMisses)
	if frac < 0.9 {
		t.Fatalf("gather misses should be ~100%% on-chip-sourced, got %.2f", frac)
	}

	c2 := New(cfg, pointerChase())
	st2 := c2.Run(3_000)
	if st2.DemandDRAMMisses == 0 {
		t.Fatal("no chase misses recorded")
	}
	frac2 := float64(st2.MissSourcesOnChip) / float64(st2.DemandDRAMMisses)
	if frac2 > 0.5 {
		t.Fatalf("chase misses depend on prior misses; on-chip fraction %.2f too high", frac2)
	}
}

func TestDepTrackFig345ChainStats(t *testing.T) {
	cfg := testConfig(ModeTraditional)
	cfg.DepTrack = true
	c := New(cfg, gatherLoop(20))
	st := c.Run(30_000)
	if st.RAChainsUnique+st.RAChainsRepeated == 0 {
		t.Fatal("no runahead miss chains recorded")
	}
	if st.RAChainsRepeated <= st.RAChainsUnique {
		t.Fatalf("single-PC gather chains should repeat: unique=%d repeated=%d",
			st.RAChainsUnique, st.RAChainsRepeated)
	}
	if st.ChainLengths.Count == 0 || st.ChainLengths.Mean() < 2 {
		t.Fatalf("chain length histogram empty or degenerate (mean %.1f)", st.ChainLengths.Mean())
	}
	if st.RATotalUops == 0 || st.RAChainUops == 0 {
		t.Fatal("figure 3 counters empty")
	}
	frac := float64(st.RAChainUops) / float64(st.RATotalUops)
	if frac <= 0.05 || frac >= 1.0 {
		t.Fatalf("chain-op fraction %.2f out of plausible range", frac)
	}
}
