package core

import (
	"math/rand"
	"testing"

	"runaheadsim/internal/isa"
)

// buildSyntheticROB fills a fresh core's ROB with n dynamic uops whose
// dependency structure is random but well-formed, returning the instance of
// targetPC closest to the head (as findOtherInstance would).
func buildSyntheticROB(rng *rand.Rand, c *Core, n int, targetPC uint64) *DynInst {
	uops := make([]*isa.Uop, 0, n)
	for i := 0; i < n; i++ {
		var u isa.Uop
		switch rng.Intn(8) {
		case 0, 1, 2, 3:
			u = isa.Uop{Op: isa.ADDI, Dst: isa.Reg(rng.Intn(16)), Src1: isa.Reg(rng.Intn(16)), Src2: isa.RegNone, Imm: 1}
		case 4:
			u = isa.Uop{Op: isa.LD, Dst: isa.Reg(rng.Intn(16)), Src1: isa.Reg(rng.Intn(16)), Src2: isa.RegNone}
		case 5:
			u = isa.Uop{Op: isa.ST, Dst: isa.RegNone, Src1: isa.Reg(rng.Intn(16)), Src2: isa.Reg(rng.Intn(16))}
		case 6:
			u = isa.Uop{Op: isa.BEQZ, Dst: isa.RegNone, Src1: isa.Reg(rng.Intn(16)), Src2: isa.RegNone, Target: 0}
		default:
			u = isa.Uop{Op: isa.ADD, Dst: isa.Reg(rng.Intn(16)), Src1: isa.Reg(rng.Intn(16)), Src2: isa.Reg(rng.Intn(16))}
		}
		uops = append(uops, &u)
	}
	var match *DynInst
	for i, u := range uops {
		c.seq++
		pc := isa.TextBase + uint64(i)*isa.UopBytes
		// Sprinkle extra instances of the target PC.
		if rng.Intn(8) == 0 {
			pc = targetPC
			u = &isa.Uop{Op: isa.LD, Dst: isa.Reg(rng.Intn(16)), Src1: isa.Reg(rng.Intn(16)), Src2: isa.RegNone}
		}
		d := &DynInst{
			Seq: c.seq, PC: pc, Index: i, U: u,
			PDst: noPhys, PSrc1: noPhys, PSrc2: noPhys, POld: noPhys,
			Renamed: true,
		}
		if u.Op.IsMem() && rng.Intn(2) == 0 {
			d.EA = uint64(rng.Intn(1<<12) * 8)
			d.EAValid = true
		}
		c.rob.push(d)
		if pc == targetPC && match == nil {
			match = d
		}
	}
	return match
}

// TestChainGenerationProperties drives Algorithm 1 over many random ROB
// contents and checks its invariants: it terminates, respects the 32-uop
// cap, never includes control ops, always includes the matched load, and
// emits the chain in program order.
func TestChainGenerationProperties(t *testing.T) {
	const targetPC = isa.TextBase + 999*isa.UopBytes
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig(ModeBuffer), simpleLoop())
		match := buildSyntheticROB(rng, c, 40+rng.Intn(150), targetPC)
		if match == nil {
			continue
		}
		ch, searches, truncated := c.generateChain(match)
		if ch == nil {
			t.Fatalf("seed %d: generation returned nil for a valid match", seed)
		}
		if ch.Len() == 0 || ch.Len() > c.cfg.MaxChainLength {
			t.Fatalf("seed %d: chain length %d outside (0, %d]", seed, ch.Len(), c.cfg.MaxChainLength)
		}
		if truncated && ch.Len() < c.cfg.MaxChainLength-c.cfg.SRSLSize {
			t.Fatalf("seed %d: truncated chain of only %d uops", seed, ch.Len())
		}
		if searches < 0 {
			t.Fatalf("seed %d: negative searches", seed)
		}
		foundMatch := false
		for i, cu := range ch.Uops {
			if cu.U.Op.IsBranch() {
				t.Fatalf("seed %d: control op %v in chain", seed, cu.U.Op)
			}
			if cu.PC == match.PC {
				foundMatch = true
			}
			if i > 0 && ch.Uops[i-1].Index >= cu.Index {
				t.Fatalf("seed %d: chain not in program order (%d then %d)",
					seed, ch.Uops[i-1].Index, cu.Index)
			}
		}
		if !foundMatch {
			t.Fatalf("seed %d: matched load missing from its own chain", seed)
		}
		if ch.Signature != chainSignature(ch.Uops) {
			t.Fatalf("seed %d: signature inconsistent", seed)
		}
	}
}
