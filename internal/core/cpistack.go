package core

// CPI-stack cycle accounting: every simulated cycle is attributed to exactly
// one bucket, so per-bucket cycle counts always sum to Stats.Cycles (an
// invariant the tests enforce). The classification is retirement-centric, the
// convention CPI stacks use: a cycle is "base" when the machine retired
// correct-path work, and otherwise is charged to whatever is blocking
// retirement.

// CPIBucket indexes one slice of the CPI stack.
type CPIBucket uint8

// The buckets, in stack-rendering order.
const (
	// CPIBase: at least one correct-path uop committed this cycle.
	CPIBase CPIBucket = iota
	// CPIFrontend: the ROB is empty — fetch/decode could not supply uops
	// (I-cache misses, fetch-width limits, taken-branch bubbles).
	CPIFrontend
	// CPIBranchRecovery: the ROB is empty inside the redirect+refill shadow
	// of a branch misprediction.
	CPIBranchRecovery
	// CPILLCMiss: the ROB head is an in-flight memory access that has not
	// (yet) been discovered to be DRAM-bound — L1-miss/LLC-hit latency.
	CPILLCMiss
	// CPIDRAM: the ROB head is a load waiting on DRAM and the core is NOT in
	// runahead (stall cycles runahead exists to attack but is not covering).
	CPIDRAM
	// CPIRunaheadOverhead: cycles spent in runahead mode plus the flush and
	// refill shadow after each exit. During these cycles the blocking DRAM
	// miss is still outstanding, but the machine is doing prefetch work
	// rather than sitting idle, so they are charged to runahead, not DRAM.
	CPIRunaheadOverhead
	// CPIOther: everything else — execution latency at the ROB head,
	// store-buffer back-pressure, commit-width limits.
	CPIOther

	// NumCPIBuckets sizes the per-bucket array.
	NumCPIBuckets
)

// String implements fmt.Stringer.
func (b CPIBucket) String() string {
	switch b {
	case CPIBase:
		return "base"
	case CPIFrontend:
		return "frontend"
	case CPIBranchRecovery:
		return "branch-recovery"
	case CPILLCMiss:
		return "llc-miss"
	case CPIDRAM:
		return "dram"
	case CPIRunaheadOverhead:
		return "runahead-overhead"
	case CPIOther:
		return "other"
	default:
		return "unknown"
	}
}

// CPIBuckets lists the buckets in rendering order.
func CPIBuckets() []CPIBucket {
	out := make([]CPIBucket, NumCPIBuckets)
	for i := range out {
		out[i] = CPIBucket(i)
	}
	return out
}

// accountCycle attributes the cycle that just executed to exactly one CPI
// bucket. Called once per Cycle, after all stages have run, so it sees the
// cycle's commit count and the post-stage machine state.
func (c *Core) accountCycle() {
	var b CPIBucket
	switch {
	case c.ra.active:
		b = CPIRunaheadOverhead
	case c.cycleCommits > 0:
		b = CPIBase
	case !c.rob.empty():
		d := c.rob.at(0)
		switch {
		case d.Executed:
			// Executed but unretired head: store-buffer full or the commit
			// stage ran before the completion event this cycle.
			b = CPIOther
		case d.U.Op.IsLoad() && d.DRAMBound:
			b = CPIDRAM
		case d.U.Op.IsMem() && d.memIssued:
			b = CPILLCMiss
		default:
			b = CPIOther
		}
	case c.now <= c.raRecoverUntil:
		// Empty window right after a runahead exit: the flush/refetch cost of
		// the interval, charged to runahead rather than the front end.
		b = CPIRunaheadOverhead
	case c.now <= c.branchRecoverUntil:
		b = CPIBranchRecovery
	default:
		b = CPIFrontend
	}
	c.st.CPIStack[b]++
}

// CPIStackSum returns the total cycles attributed across all buckets. The
// accounting invariant is CPIStackSum() == Cycles after a Run.
func (s *Stats) CPIStackSum() int64 {
	var sum int64
	for _, v := range s.CPIStack {
		sum += v
	}
	return sum
}

// CPIFraction returns bucket b's share of all attributed cycles (0 when no
// cycles have been accounted).
func (s *Stats) CPIFraction(b CPIBucket) float64 {
	sum := s.CPIStackSum()
	if sum == 0 {
		return 0
	}
	return float64(s.CPIStack[b]) / float64(sum)
}
