package core

import "runaheadsim/internal/isa"

// generateChain implements Algorithm 1: the pseudo-wakeup walk that filters
// the dependence chain of a cache miss out of the reorder buffer.
//
// match is a dynamic instance of the blocking load found by the PC CAM.
// The walk maintains a source-register search list (bounded at SRSLSize);
// each dequeued register searches the ROB's destination-register CAM for the
// youngest older producer. Producing loads additionally search the store
// queue by address so spill/fill pairs pull the store (and its sources) into
// the chain. Membership is tracked with a bit vector over ROB positions; the
// final chain is read out in program order.
//
// It returns the chain (nil only if match is nil), the number of
// destination-CAM searches performed (for timing and energy), and whether
// the walk was truncated by the MaxChainLength cap.
func (c *Core) generateChain(match *DynInst) (ch *Chain, searches int, truncated bool) {
	if match == nil {
		return nil, 0, false
	}
	n := c.rob.size()
	inChain := make([]bool, n)
	matchIdx := c.robIndexOf(match)
	if matchIdx < 0 || matchIdx >= n {
		return nil, 0, false
	}
	inChain[matchIdx] = true
	chainLen := 1

	type want struct {
		reg      isa.Reg
		consumer int // ROB index of the consuming op; search strictly older
	}
	var srsl []want
	enqueue := func(d *DynInst, idx int) {
		for _, r := range d.U.SrcRegs(nil) {
			if len(srsl) >= c.cfg.SRSLSize {
				return // bounded hardware list; drop the rest
			}
			srsl = append(srsl, want{reg: r, consumer: idx})
		}
	}
	enqueue(match, matchIdx)

	for len(srsl) > 0 && chainLen < c.cfg.MaxChainLength {
		w := srsl[0]
		srsl = srsl[1:]
		searches++
		c.st.DestCAMSearches++
		// Youngest producer older than the consumer.
		prodIdx := -1
		for i := w.consumer - 1; i >= 0; i-- {
			e := c.rob.at(i)
			if e.U.Dst != isa.RegNone && e.U.Dst == w.reg {
				prodIdx = i
				break
			}
		}
		if prodIdx < 0 {
			continue // value comes from before the window (architectural)
		}
		if inChain[prodIdx] {
			continue
		}
		p := c.rob.at(prodIdx)
		if p.U.Op.IsBranch() {
			continue // control ops are never part of the chain (Figure 7)
		}
		inChain[prodIdx] = true
		chainLen++
		enqueue(p, prodIdx)

		// Register fills: a producing load may take its value from an older
		// store in the window (common for x86 spill/fill traffic).
		if p.U.Op.IsLoad() && p.EAValid && chainLen < c.cfg.MaxChainLength {
			c.st.SQCAMSearches++
			for i := prodIdx - 1; i >= 0; i-- {
				s := c.rob.at(i)
				if !s.U.Op.IsStore() || !s.EAValid || !overlaps(s.EA, p.EA) {
					continue
				}
				if !inChain[i] {
					inChain[i] = true
					chainLen++
					enqueue(s, i)
				}
				break
			}
		}
	}
	truncated = len(srsl) > 0 || chainLen >= c.cfg.MaxChainLength

	// Read the chain out of the ROB in program order.
	ch = &Chain{BlockingPC: match.PC}
	for i := 0; i < n; i++ {
		if !inChain[i] {
			continue
		}
		e := c.rob.at(i)
		ch.Uops = append(ch.Uops, ChainUop{U: *e.U, PC: e.PC, Index: e.Index})
		c.st.ROBChainReads++
	}
	ch.Signature = chainSignature(ch.Uops)
	return ch, searches, truncated
}
