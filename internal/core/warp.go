package core

import (
	"runaheadsim/internal/memsys"
	"runaheadsim/internal/metrics"
)

// Clock warp: fast-forward across provably idle stretches.
//
// The paper's workloads spend most of their cycles with the ROB blocked on a
// DRAM miss. In that regime the per-cycle loop does no useful work: commit
// bumps a stall counter and returns, select re-defers the same entries,
// rename and fetch are blocked, and the memory hierarchy is between events.
// maybeWarp detects that state at the end of a cycle and jumps c.now to one
// cycle before the earliest future cycle at which anything can change, in one
// step, attributing the skipped span to exactly the counters the per-cycle
// loop would have incremented.
//
// The correctness argument has two halves:
//
// Inertness — a skipped cycle must be a no-op in the per-cycle reference.
// Every state change during a stall is event-driven (memory-system events,
// the core event wheel, timer expiries), so it suffices that (a) this cycle's
// stages did nothing a future cycle could extend (no issues, no renames, no
// commit possible, fetch blocked by a stable condition), and (b) the warp
// target never jumps past any event or timer. For select specifically:
// wakeup broadcasts run before issueStage (h.Tick and the event wheel fire
// first), so cycleIssued == 0 means every ready-queue entry was evaluated and
// deferred this cycle for a reason frozen until the next event — with zero
// issues the port budget was untouched, leaving only disambiguation and
// source state, which only events change. The same holds for the ROB-scan
// scheduler. cycleRenamed == 0 plus the front-end timers pins rename, and
// fetchInert pins fetch (a blocked fetch that still calls h.Fetch every cycle
// — MSHR-full retry — mutates hierarchy counters and is deliberately NOT
// inert).
//
// Accounting — the per-cycle loop increments stall counters during idle
// cycles (ROBStallCycles, MemStallCycles, ICacheStallCycles, the runahead
// cycle counters, one CPI bucket, timeline accumulators). The skipped span is
// attributed in bulk under the frozen machine state; the warp target is
// clamped to every boundary at which any of those classifications could flip
// (recovery-shadow expiries, tracer sample ticks, timeline intervals), so the
// classification is uniform across the span.
//
// The machinery is split in three so the multi-core cluster can reuse it:
// WarpSources runs the quiescence vetoes and collects this core's own wake
// sources (everything except the memory hierarchy, which the cluster
// shares); WarpClamp lowers a candidate target to this core's accounting
// boundaries; ApplyWarp performs the bulk attribution and moves the clock.
// maybeWarp composes them for the single-core machine; the cluster takes
// the min of every core's sources plus the shared hierarchy's NextEvent,
// clamps through every core, and applies to all.
//
//simlint:hotpath
func (c *Core) maybeWarp() {
	t, ok := c.WarpSources()
	if !ok {
		return
	}
	if ht := c.h.NextEvent(); ht < t {
		t = ht
	}
	if t == memsys.Never {
		c.prof.veto[vetoNoEvent]++
		return
	}
	t = c.WarpClamp(t)
	if t <= c.now+1 {
		c.prof.veto[vetoAdjacent]++
		return // the next cycle has work; nothing to skip
	}
	c.ApplyWarp(t)
}

// WarpSources runs the quiescence vetoes and, when the core is provably
// idle, returns the earliest future cycle at which the core's own state can
// change — excluding the shared memory hierarchy, whose NextEvent the caller
// merges. It returns (memsys.Never, true) for a quiescent core with no
// core-local wake source, and ok == false when this cycle's activity vetoes
// warping.
func (c *Core) WarpSources() (t int64, ok bool) {
	// This cycle moved uops through rename or issue: the next cycle may move
	// more with no event in between (width and port budgets reset). A cycle
	// that committed must not warp either — not because the machine isn't
	// idle afterwards, but because Run's loop exits the moment its commit
	// target is reached, and that exit must land on the same cycle under
	// both clocks (a warp here would overshoot the boundary and inflate the
	// recorded cycle count relative to the per-cycle reference).
	if c.cycleIssued != 0 || c.cycleRenamed != 0 || c.cycleCommits != 0 {
		c.prof.veto[vetoProgress]++
		return 0, false
	}
	// A pending runahead exit flushes the pipeline next cycle.
	if c.ra.pendingExit {
		c.prof.veto[vetoRunaheadExit]++
		return 0, false
	}
	// Commit: inert only when the window is empty or its head has not
	// executed (an executed head retires — or pseudo-retires — next cycle).
	var head *DynInst
	if c.rob.size() > 0 {
		head = c.rob.at(0)
		if head.Executed {
			c.prof.veto[vetoCommitHead]++
			return 0, false
		}
	}
	// Store buffer: a head entry not yet in flight retries h.Store every
	// cycle (and each attempt mutates hierarchy counters).
	if c.sbLen() > 0 && !c.storeBuf[c.sbHead].inflight {
		c.prof.veto[vetoStoreBuffer]++
		return 0, false
	}
	if !c.fetchInert() {
		c.prof.veto[vetoFetch]++
		return 0, false
	}
	// Runahead entry: while a DRAM-bound load blocks the head, commitStage
	// calls tryEnterRunahead every cycle. That call is a pure no-op only in
	// its "already decided for this stall" early return; otherwise the
	// attempt mutates statistics and possibly the machine.
	raRetry := false
	if head != nil && !c.ra.active && c.cfg.Mode != ModeNone &&
		head.U.Op.IsLoad() && head.DRAMBound {
		if c.ra.lastAttempt != head.Seq {
			c.prof.veto[vetoRunaheadEntry]++
			return 0, false // no attempt recorded yet for this stall
		}
		if !c.ra.noRetry {
			if c.ra.retryAt <= c.now {
				c.prof.veto[vetoRunaheadEntry]++
				return 0, false // the retry is due; the next cycle re-attempts
			}
			raRetry = true
		}
	}

	// Wake sources: the earliest future cycle at which the core's own state
	// can change. If none exists here or in the shared hierarchy the machine
	// is dead or drained — tick per cycle and let Run's loop, the watchdog,
	// or Drain's quiescence check decide, at exactly the cycle the reference
	// would.
	t = memsys.Never
	if c.pendingCoreEvents > 0 {
		if at := c.nextCoreEventAt(); at < t {
			t = at
		}
	}
	if raRetry && c.ra.retryAt < t {
		t = c.ra.retryAt
	}
	if c.frontLen() > 0 && c.frontReadyAt[c.frontHead] > c.now && c.frontReadyAt[c.frontHead] < t {
		t = c.frontReadyAt[c.frontHead] // decode completes; rename may resume
	}
	if c.fetchStallUntil > c.now && c.fetchStallUntil < t {
		t = c.fetchStallUntil // redirect penalty expires; fetch resumes
	}
	if c.ra.active && c.ra.usingBuffer && c.ra.bufferReadyAt > c.now && c.ra.bufferReadyAt < t {
		t = c.ra.bufferReadyAt // chain generation completes; buffer feeds
	}
	return t, true
}

// WarpClamp lowers candidate warp target t to this core's accounting
// boundaries: cycles that do not wake the machine but change how skipped
// cycles are classified (or must themselves execute), so the attributed span
// stays uniform.
func (c *Core) WarpClamp(t int64) int64 {
	if c.cfg.WatchdogCycles > 0 {
		if bound := c.lastProgress + c.cfg.WatchdogCycles + 1; bound < t {
			t = bound // Run panics at this cycle; reach it, don't pass it
		}
	}
	if c.raRecoverUntil > c.now && c.raRecoverUntil+1 < t {
		t = c.raRecoverUntil + 1
	}
	if c.branchRecoverUntil > c.now && c.branchRecoverUntil+1 < t {
		t = c.branchRecoverUntil + 1
	}
	if c.tracer != nil {
		if next := (c.now/sampleInterval + 1) * sampleInterval; next < t {
			t = next // occupancy samples must fire at their exact cycles
		}
	}
	if c.tl != nil {
		if next := c.now + (c.tl.tl.Interval - c.tl.cycles); next < t {
			t = next // the sample-emitting cycle must execute
		}
	}
	return t
}

// ApplyWarp jumps the core's clock to one cycle before target t (already
// vetted by WarpSources and clamped by WarpClamp, with t > now+1),
// attributing the skipped span in bulk to exactly the counters the per-cycle
// loop would have incremented under the frozen machine state.
func (c *Core) ApplyWarp(t int64) {
	var head *DynInst
	if c.rob.size() > 0 {
		head = c.rob.at(0)
	}
	skip := t - 1 - c.now
	if metrics.Enabled {
		// Warps are rare next to cycles (each replaces at least two), so the
		// jump-size histogram observes the registry directly instead of going
		// through the publishMetrics delta flush.
		cm.warpSkip.Observe(skip)
	}

	// Bulk attribution: exactly what the per-cycle loop would have counted
	// over cycles (c.now, t), evaluated once under the frozen state.
	if head != nil {
		c.st.ROBStallCycles += skip
		if head.U.Op.IsLoad() && head.DRAMBound {
			c.st.MemStallCycles += skip
		}
	}
	if !c.draining && !(c.ra.active && c.ra.usingBuffer) &&
		(c.icacheWait || c.fetchStallUntil > c.now+1) {
		c.st.ICacheStallCycles += skip
	}
	if c.ra.active {
		c.st.RunaheadCycles += skip
		if c.ra.usingBuffer {
			c.st.RunaheadBufferCycles += skip
			c.st.FEGatedCycles += skip
		} else {
			c.st.RunaheadTradCycles += skip
		}
	}
	c.st.CPIStack[c.warpBucket(head)] += skip
	if c.tl != nil {
		c.tl.robOccSum += int64(c.rob.size()) * skip
		c.tl.mshrOccSum += int64(c.h.OutstandingDataMissesR(c.memReq)) * skip
		if c.ra.active {
			c.tl.raCycles += skip
		}
		c.tl.cycles += skip
	}

	c.now = t - 1
	c.warps++
	c.warpedCycles += skip
}

// fetchInert reports that fetchStage will do nothing (beyond the stall
// accounting the warp replicates) every cycle until the warp target: the
// drain starves it, buffer-mode gates it, a stall timer or I-cache wait
// blocks it, the front queue is full, or fetch ran off valid text. A fetch
// blocked only until c.now+1 is not inert — the very next cycle fetches.
func (c *Core) fetchInert() bool {
	if c.draining || (c.ra.active && c.ra.usingBuffer) {
		return true
	}
	if c.icacheWait || c.fetchStallUntil > c.now+1 {
		return true
	}
	if c.frontLen() >= frontQCap {
		return true
	}
	return c.p.UopAt(c.fetchPC) == nil
}

// warpBucket classifies every skipped cycle into the CPI bucket accountCycle
// would pick: state is frozen across the span, no commits happen, and the
// recovery-shadow clamps guarantee the time-dependent arms are uniform.
func (c *Core) warpBucket(head *DynInst) CPIBucket {
	switch {
	case c.ra.active:
		return CPIRunaheadOverhead
	case head != nil:
		switch {
		case head.U.Op.IsLoad() && head.DRAMBound:
			return CPIDRAM
		case head.U.Op.IsMem() && head.memIssued:
			return CPILLCMiss
		default:
			return CPIOther
		}
	case c.raRecoverUntil > c.now:
		return CPIRunaheadOverhead
	case c.branchRecoverUntil > c.now:
		return CPIBranchRecovery
	default:
		return CPIFrontend
	}
}
