// Package core implements the simulated processor: a 4-wide out-of-order
// pipeline with a 192-entry reorder buffer (Table 1), traditional runahead
// execution, and the paper's contribution — the runahead buffer with
// dependence-chain generation (Algorithm 1), a chain cache, and the hybrid
// policy (Figure 8).
package core

import (
	"fmt"

	"runaheadsim/internal/bpred"
	"runaheadsim/internal/memsys"
)

// Mode selects the runahead scheme, matching the systems evaluated in
// Section 6.
type Mode uint8

// Runahead modes.
const (
	// ModeNone never enters runahead (the baseline).
	ModeNone Mode = iota
	// ModeTraditional is classic out-of-order runahead: the front-end keeps
	// fetching down the predicted path while the core would be stalled.
	ModeTraditional
	// ModeBuffer is the runahead buffer without a chain cache: a dependence
	// chain is generated from the ROB on every entry.
	ModeBuffer
	// ModeBufferCC adds the two-entry chain cache.
	ModeBufferCC
	// ModeHybrid switches between the runahead buffer (with chain cache) and
	// traditional runahead per Figure 8.
	ModeHybrid
	// ModeAdaptive extends the hybrid policy with feedback (an extension
	// beyond the paper, in the spirit of Section 4.5's "hybrid policies"):
	// per blocking PC, it remembers whether past buffer intervals actually
	// generated misses, and demotes chronically unproductive PCs to
	// traditional runahead even when their chains pass the Figure 8 checks.
	ModeAdaptive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "baseline"
	case ModeTraditional:
		return "runahead"
	case ModeBuffer:
		return "runahead-buffer"
	case ModeBufferCC:
		return "runahead-buffer+cc"
	case ModeHybrid:
		return "hybrid"
	case ModeAdaptive:
		return "adaptive-hybrid"
	default:
		return "unknown"
	}
}

// UsesBuffer reports whether the mode can execute from the runahead buffer.
func (m Mode) UsesBuffer() bool {
	return m == ModeBuffer || m == ModeBufferCC || m == ModeHybrid || m == ModeAdaptive
}

// SchedulerKind selects the issue-scheduler implementation. Both produce
// identical simulated behavior — cycle counts, statistics, and snapshot
// bytes — which the lockstep equivalence tests enforce; only simulator speed
// differs.
type SchedulerKind uint8

const (
	// SchedEvent is the event-driven wakeup/select scheduler (sched.go):
	// per-register waiter lists, an age-ordered ready queue, and a
	// store-address index. The default.
	SchedEvent SchedulerKind = iota
	// SchedScan is the reference implementation: re-scan the ROB every cycle
	// and walk older stores per load. Kept for differential testing.
	SchedScan
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	switch k {
	case SchedEvent:
		return "event"
	case SchedScan:
		return "scan"
	default:
		return "unknown"
	}
}

// ClockMode selects how the simulation clock advances. Both modes produce
// identical simulated behavior — final cycle count, statistics, and snapshot
// bytes — which the clock-warp lockstep tests enforce; only simulator speed
// differs.
type ClockMode uint8

const (
	// ClockWarp fast-forwards the clock across provably idle stretches
	// (warp.go): when every pipeline stage is quiescent at the end of a
	// cycle, the clock jumps to the next cycle at which anything can happen
	// (memory-system event horizon, core event wheel, runahead retry,
	// front-end timers), attributing the skipped span to the same stall
	// buckets the per-cycle loop would have. The default.
	ClockWarp ClockMode = iota
	// ClockTick advances one cycle at a time — the reference the equivalence
	// tests compare against.
	ClockTick
)

// String implements fmt.Stringer.
func (m ClockMode) String() string {
	switch m {
	case ClockWarp:
		return "warp"
	case ClockTick:
		return "tick"
	default:
		return "unknown"
	}
}

// Config holds every core parameter. DefaultConfig reproduces Table 1.
type Config struct {
	// Pipeline widths (Table 1: 4-wide issue).
	FetchWidth, DecodeWidth, RenameWidth, IssueWidth, CommitWidth int
	// Window sizes (Table 1: 192-entry ROB, 92-entry reservation station).
	ROBSize, RSSize int
	LQSize, SQSize  int
	StoreBufSize    int
	// NumPhysRegs includes the 64 architectural registers.
	NumPhysRegs int
	// DecodeDepth is the fetch-to-rename pipe depth in cycles; it sets the
	// front-end part of the misprediction penalty.
	DecodeDepth int
	// RedirectPenalty is the extra bubble after a branch resolves wrong.
	RedirectPenalty int
	// MemPorts bounds data-cache accesses per cycle (Table 1: 2 ports).
	MemPorts int

	// Scheduler selects the issue-scheduler implementation (simulator speed
	// only; simulated behavior is identical across kinds). The zero value is
	// SchedEvent. Excluded from the snapshot configuration fingerprint so
	// snapshots from either kind interoperate.
	//simlint:nofingerprint simulator speed knob; snapshots must interoperate across scheduler kinds
	Scheduler SchedulerKind

	// ClockMode selects how the simulation clock advances (simulator speed
	// only; simulated behavior is identical across modes). The zero value is
	// ClockWarp. Excluded from the snapshot configuration fingerprint so
	// snapshots from either mode interoperate.
	//simlint:nofingerprint simulator speed knob; snapshots must interoperate across clock modes
	ClockMode ClockMode

	// Runahead policy.
	Mode Mode
	// Enhancements enables the two ISCA'05 runahead-efficiency policies
	// (Section 4.6): suppress stale-miss entries and overlapping intervals.
	Enhancements bool
	// EnhAgeCycles implements the "issued to memory less than 250
	// instructions ago" rule in cycle terms: an entry is suppressed when the
	// blocking line's underlying memory request is older than this, because
	// the data is about to arrive and the interval would be too short to pay
	// for itself.
	EnhAgeCycles int64

	// Runahead buffer parameters (Table 1 / Section 5).
	RunaheadBufferSize  int // 32 uops
	MaxChainLength      int // 32 uops
	ChainCacheEntries   int // 2 chains
	SRSLSize            int // 16-entry source register search list
	RegSearchesPerCycle int // 2 destination-CAM searches per cycle
	// RunaheadCache geometry (Table 1: 512B, 4-way, 8B lines).
	RACacheBytes, RACacheWays, RACacheLineBytes int

	// DepTrack enables the dependence-walk instrumentation behind Figures
	// 2-5 (it costs simulation time, not simulated cycles).
	DepTrack bool

	BPred bpred.Config
	Mem   memsys.Config

	// WatchdogCycles aborts the simulation when no instruction commits (or
	// pseudo-retires) for this many cycles — a simulator deadlock, not a
	// workload property. Zero disables.
	WatchdogCycles int64

	// FlightRecorderEvents sizes the always-on flight recorder: a ring of
	// the most recent coarse trace events (runahead transitions, LLC misses,
	// DRAM grants, occupancy samples) dumped as JSONL when a run dies. Zero
	// means the default (512); negative disables the recorder. Simulator
	// observability only — it never affects simulated behavior — so it is
	// excluded from the snapshot configuration fingerprint.
	//simlint:nofingerprint observability ring size; never affects simulated behavior
	FlightRecorderEvents int
}

// DefaultConfig returns the Table 1 machine with runahead disabled.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		DecodeWidth: 4,
		RenameWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,

		ROBSize:      192,
		RSSize:       92,
		LQSize:       64,
		SQSize:       32,
		StoreBufSize: 16,
		NumPhysRegs:  320,

		DecodeDepth:     3,
		RedirectPenalty: 3,
		MemPorts:        2,

		Mode:         ModeNone,
		Enhancements: false,
		EnhAgeCycles: 400,

		RunaheadBufferSize:  32,
		MaxChainLength:      32,
		ChainCacheEntries:   2,
		SRSLSize:            16,
		RegSearchesPerCycle: 2,
		RACacheBytes:        512,
		RACacheWays:         4,
		RACacheLineBytes:    8,

		DepTrack: false,

		BPred: bpred.DefaultConfig(),
		Mem:   memsys.DefaultConfig(),

		WatchdogCycles: 2_000_000,
	}
}

// Validate checks the configuration for values the pipeline cannot operate
// with. New panics on an invalid configuration — a construction bug, not a
// runtime condition.
func (c Config) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{c.FetchWidth >= 1 && c.DecodeWidth >= 1 && c.RenameWidth >= 1 && c.IssueWidth >= 1 && c.CommitWidth >= 1,
			"pipeline widths must be at least 1"},
		{c.ROBSize >= 4, "ROB must have at least 4 entries"},
		{c.RSSize >= 1 && c.RSSize <= c.ROBSize, "reservation station must fit within the ROB"},
		{c.LQSize >= 1 && c.SQSize >= 1 && c.StoreBufSize >= 1, "load/store queues must be non-empty"},
		{c.NumPhysRegs >= 64+c.ROBSize/2, "too few physical registers for the window"},
		{c.MemPorts >= 1, "at least one data cache port"},
		{c.RunaheadBufferSize >= 1 && c.MaxChainLength >= 1, "runahead buffer and chain cap must be positive"},
		{c.MaxChainLength <= c.RunaheadBufferSize, "chains must fit in the runahead buffer"},
		{c.ChainCacheEntries >= 1, "chain cache needs at least one entry"},
		{c.SRSLSize >= 1 && c.RegSearchesPerCycle >= 1, "chain generation needs search capacity"},
		{c.DecodeDepth >= 0 && c.RedirectPenalty >= 0, "pipeline depths cannot be negative"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("core: invalid configuration: %s", ch.msg)
		}
	}
	return nil
}
