package core

import (
	"testing"

	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// callRetProgram exercises CALL/RET and the return address stack: a loop
// calling two leaf functions alternately, each doing a little work.
func callRetProgram() *prog.Program {
	b := prog.NewBuilder("callret")
	const (
		rI, rLink, rA, rB_, rSel = 1, 2, 3, 4, 5
	)
	entry := b.Block("entry")
	loop := b.Block("loop")
	callB := b.Block("callB")
	tail := b.Block("tail")
	fnA := b.Block("fnA")
	fnB := b.Block("fnB")

	entry.Movi(rI, 0).Movi(rA, 0).Jmp(loop)
	loop.OpI(isa.ANDI, rSel, rI, 1).
		Bnez(rSel, callB).
		Call(fnA, rLink)
	callB.Call(fnB, rLink)
	tail.Addi(rI, rI, 1).Jmp(loop)
	fnA.Addi(rA, rA, 1).Ret(rLink)
	fnB.OpI(isa.MULI, rB_, rA, 3).Ret(rLink)
	return b.MustBuild()
}

func TestCallRetEquivalence(t *testing.T) {
	for _, m := range []Mode{ModeNone, ModeHybrid} {
		p := callRetProgram()
		c := New(testConfig(m), p)
		st := c.Run(20_000)
		in := prog.NewInterp(p)
		in.Run(st.Committed)
		regs := c.ArchRegs()
		for r := 0; r < isa.NumArchRegs; r++ {
			if regs[r] != in.Regs[r] {
				t.Fatalf("%v: r%d = %d, interpreter %d", m, r, regs[r], in.Regs[r])
			}
		}
	}
}

func TestRASPredictsReturns(t *testing.T) {
	c := New(testConfig(ModeNone), callRetProgram())
	st := c.Run(30_000)
	// After warmup (cold BTB misses for the calls), returns should predict
	// via the RAS: the overall misprediction rate must be small even though
	// the program alternates return targets every iteration.
	rate := float64(st.Mispredicts) / float64(st.Branches)
	if rate > 0.10 {
		t.Fatalf("call/ret misprediction rate %.3f — RAS not working", rate)
	}
}

// TestCallRetUnderRunahead: runahead must checkpoint and restore the RAS
// (Section 3). Interleave calls with a memory-bound gather so runahead
// triggers, and check equivalence still holds.
func TestCallRetUnderRunahead(t *testing.T) {
	b := prog.NewBuilder("callret-mem")
	const slots = 1 << 14
	data := b.Alloc(slots*2112, 64)
	const rI, rLink, rIdx, rAddr, rV, rAcc = 1, 2, 3, 4, 5, 6
	entry := b.Block("entry")
	loop := b.Block("loop")
	fn := b.Block("fn")
	entry.Movi(rI, 0).Movi(rAcc, 0).Jmp(loop)
	loop.OpI(isa.MULI, rIdx, rI, 40503).
		OpI(isa.ANDI, rIdx, rIdx, slots-1).
		OpI(isa.MULI, rAddr, rIdx, 2112).
		Addi(rAddr, rAddr, int64(data)).
		Ld(rV, rAddr, 0).
		Call(fn, rLink)
	after := b.Block("after")
	after.Addi(rI, rI, 1).Jmp(loop)
	fn.Add(rAcc, rAcc, rV).Ret(rLink)
	p := b.MustBuild()

	c := New(testConfig(ModeHybrid), p)
	st := c.Run(20_000)
	if st.RunaheadIntervals == 0 {
		t.Fatal("gather with calls never entered runahead")
	}
	in := prog.NewInterp(p)
	in.Run(st.Committed)
	regs := c.ArchRegs()
	for r := 0; r < isa.NumArchRegs; r++ {
		if regs[r] != in.Regs[r] {
			t.Fatalf("r%d = %d, interpreter %d", r, regs[r], in.Regs[r])
		}
	}
}
