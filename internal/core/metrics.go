package core

import (
	"sync"

	"runaheadsim/internal/metrics"
)

// Self-profiling: the simulator measuring itself (not the simulated machine).
//
// The hot path never touches the process-wide atomic registry. Per-cycle and
// per-event counts accumulate in plain fields on the single-goroutine Core
// (coreProf, plus counters owned by the scheduler, DRAM controller, and MSHR
// files), and publishMetrics flushes the deltas into metrics.Default at Run
// boundaries. That keeps the per-cycle cost of metrics at a handful of plain
// increments — the same discipline Stats uses — while the registry still sees
// process-wide totals across every core a sweep runs.
//
// The one exception is the warp-jump histogram: warps are orders of magnitude
// rarer than cycles (each one replaces at least two), so Observe goes straight
// to the registry.

// warpVeto classifies why maybeWarp declined to fast-forward at the end of a
// cycle. The veto mix tells you what the warp is paying for on a workload:
// compute-bound programs veto on progress nearly every cycle (the warp buys
// nothing), memory-bound ones should veto rarely and jump far.
type warpVeto uint8

const (
	vetoProgress      warpVeto = iota // uops issued/renamed/committed this cycle
	vetoRunaheadExit                  // pending runahead exit flushes next cycle
	vetoCommitHead                    // executed ROB head retires next cycle
	vetoStoreBuffer                   // store-buffer head still retrying
	vetoFetch                         // fetch stage not inert
	vetoRunaheadEntry                 // runahead entry attempt unresolved
	vetoNoEvent                       // no future wake source exists
	vetoAdjacent                      // next event is the very next cycle
	nWarpVetoes
)

var warpVetoNames = [nWarpVetoes]string{
	"progress", "runahead_exit", "commit_head", "store_buffer",
	"fetch", "runahead_entry", "no_event", "adjacent",
}

// coreProf holds the plain-field accumulators and the last-published snapshot
// (prev) that publishMetrics diffs against. None of it is simulated state:
// nothing here is snapshotted, compared by equivalence tests, or reset by
// ResetStats (except the prevs of counters ResetStats zeroes).
type coreProf struct {
	veto            [nWarpVetoes]uint64
	schedBroadcasts uint64 // completion broadcasts with at least one waiter
	schedWakeups    uint64 // waiter entries released by broadcasts (fan-out sum)
	schedSelects    uint64 // issue-select invocations (≈ unwarped cycles)
	schedQueueSum   uint64 // ready+parked entries observed per select
	dynPoolHits     uint64 // DynInsts recycled from the pool
	dynPoolNews     uint64 // DynInsts from the Go allocator

	prev struct {
		veto                                                       [nWarpVetoes]uint64
		schedBroadcasts, schedWakeups, schedSelects, schedQueueSum uint64
		dynPoolHits, dynPoolNews                                   uint64
		warps, warpedCycles, now, committed                        uint64
		dramSkips, dramScans                                       uint64
		mshrHits, mshrNews                                         uint64
		flightDropped                                              uint64
	}
}

// cm caches the registry instruments; registered once per process on the
// first Core construction. All fields are nil under the nometrics build tag
// (and metrics methods are nil-safe besides).
var cm struct {
	once sync.Once

	cycles, instructions *metrics.Counter

	warps, warpedCycles *metrics.Counter
	warpSkip            *metrics.Histogram
	veto                [nWarpVetoes]*metrics.Counter

	schedBroadcasts, schedWakeups   *metrics.Counter
	schedSelects, schedQueueEntries *metrics.Counter

	dramHorizonSkips, dramGrantScans *metrics.Counter
	mshrPoolHits, mshrPoolNews       *metrics.Counter
	dynPoolHits, dynPoolNews         *metrics.Counter

	flightDropped *metrics.Counter
}

func regCoreMetrics() {
	cm.once.Do(func() {
		r := metrics.Default
		cm.cycles = r.Counter("sim_cycles_total", "simulated cycles executed (all cores, including warped spans)")
		cm.instructions = r.Counter("sim_instructions_total", "instructions committed on the correct path (all cores)")
		cm.warps = r.Counter("core_warp_jumps_total", "clock-warp fast-forwards taken")
		cm.warpedCycles = r.Counter("core_warp_skipped_cycles_total", "simulated cycles skipped by clock warps")
		cm.warpSkip = r.Histogram("core_warp_skip_cycles", "clock-warp jump size distribution, in skipped cycles")
		for v := warpVeto(0); v < nWarpVetoes; v++ {
			cm.veto[v] = r.Counter("core_warp_veto_"+warpVetoNames[v]+"_total",
				"cycles the quiescence gate vetoed a warp: "+warpVetoNames[v])
		}
		cm.schedBroadcasts = r.Counter("sched_broadcasts_total", "register-ready broadcasts delivered to at least one waiter")
		cm.schedWakeups = r.Counter("sched_wakeups_total", "waiter entries released by broadcasts (fan-out sum)")
		cm.schedSelects = r.Counter("sched_selects_total", "issue-select invocations of the event scheduler")
		cm.schedQueueEntries = r.Counter("sched_queue_entries_total",
			"ready+parked entries observed across selects (divide by sched_selects_total for mean depth)")
		cm.dramHorizonSkips = r.Counter("dram_horizon_skips_total", "DRAM channel ticks skipped by the grant horizon")
		cm.dramGrantScans = r.Counter("dram_grant_scans_total", "DRAM channel ticks that ran the full grant scan")
		cm.mshrPoolHits = r.Counter("mshr_pool_hits_total", "MSHR allocations served from the recycle pool (all levels)")
		cm.mshrPoolNews = r.Counter("mshr_pool_news_total", "MSHR allocations that hit the Go allocator (all levels)")
		cm.dynPoolHits = r.Counter("core_dyn_pool_hits_total", "DynInst allocations served from the recycle pool")
		cm.dynPoolNews = r.Counter("core_dyn_pool_news_total", "DynInst allocations that hit the Go allocator")
		cm.flightDropped = r.Counter("flight_overwritten_events_total", "flight-recorder events overwritten by ring wraparound")
	})
}

// pubDelta adds cur-prev to ctr and advances prev. Counters here are
// monotonic between flushes, so the delta is never negative.
//
//simlint:hotpath
func pubDelta(ctr *metrics.Counter, cur uint64, prev *uint64) {
	if d := cur - *prev; d != 0 {
		ctr.Add(d)
		*prev = cur
	}
}

// publishMetrics flushes the self-profiling deltas accumulated since the last
// flush into the process-wide registry. Called at the end of every Run — off
// the per-cycle path by construction, but sampled intervals call Run once per
// interval, so the flush itself stays allocation-free.
//
//simlint:hotpath
func (c *Core) publishMetrics() {
	if !metrics.Enabled {
		return
	}
	regCoreMetrics()
	p := &c.prof.prev

	pubDelta(cm.cycles, uint64(c.now), &p.now)
	pubDelta(cm.instructions, c.st.Committed, &p.committed)

	pubDelta(cm.warps, uint64(c.warps), &p.warps)
	pubDelta(cm.warpedCycles, uint64(c.warpedCycles), &p.warpedCycles)
	for v := warpVeto(0); v < nWarpVetoes; v++ {
		pubDelta(cm.veto[v], c.prof.veto[v], &p.veto[v])
	}

	pubDelta(cm.schedBroadcasts, c.prof.schedBroadcasts, &p.schedBroadcasts)
	pubDelta(cm.schedWakeups, c.prof.schedWakeups, &p.schedWakeups)
	pubDelta(cm.schedSelects, c.prof.schedSelects, &p.schedSelects)
	pubDelta(cm.schedQueueEntries, c.prof.schedQueueSum, &p.schedQueueSum)

	dc := c.h.DRAM()
	pubDelta(cm.dramHorizonSkips, dc.HorizonSkips, &p.dramSkips)
	pubDelta(cm.dramGrantScans, dc.GrantScans, &p.dramScans)

	l1i, l1d := c.h.MSHRFilesR(c.memReq)
	llc := c.h.LLCMSHRFile()
	pubDelta(cm.mshrPoolHits, l1i.PoolHits+l1d.PoolHits+llc.PoolHits, &p.mshrHits)
	pubDelta(cm.mshrPoolNews, l1i.PoolNews+l1d.PoolNews+llc.PoolNews, &p.mshrNews)

	pubDelta(cm.dynPoolHits, c.prof.dynPoolHits, &p.dynPoolHits)
	pubDelta(cm.dynPoolNews, c.prof.dynPoolNews, &p.dynPoolNews)

	if c.flight != nil {
		pubDelta(cm.flightDropped, c.flight.Dropped(), &p.flightDropped)
	}
}
