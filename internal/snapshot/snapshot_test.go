package snapshot

import (
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	w := &Writer{}
	w.Mark("sect")
	w.U8(0xab)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(192)
	w.Bool(true)
	w.Bool(false)
	w.Str("hello")
	w.Bytes64([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	r.Expect("sect")
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 192 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round trip broken")
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	b := r.Bytes64()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("Bytes64 = %v", b)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean round trip errored: %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64() // truncated
	if r.Err() == nil {
		t.Fatal("truncated read did not error")
	}
	first := r.Err()
	_ = r.U64()
	_ = r.Str()
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}

func TestExpectMismatch(t *testing.T) {
	w := &Writer{}
	w.Mark("bpred")
	r := NewReader(w.Bytes())
	r.Expect("cache")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "bpred") {
		t.Fatalf("section mismatch error = %v, want it to name the found section", err)
	}
}

func TestContainer(t *testing.T) {
	payload := []byte("state bytes")
	data := Encode("machine", payload)

	got, err := Decode(data, "machine")
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}

	if _, err := Decode(data, "other"); err == nil {
		t.Error("wrong kind accepted")
	}
	if _, err := Decode([]byte("XXXX"), "machine"); err == nil {
		t.Error("bad magic accepted")
	}

	// Flip one payload byte: the self-digest must catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, err := Decode(corrupt, "machine"); err == nil {
		t.Error("corrupt payload accepted")
	}

	// Truncate: must error, not panic.
	if _, err := Decode(data[:len(data)-4], "machine"); err == nil {
		t.Error("truncated container accepted")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := Encode("k", []byte{9, 8, 7})
	b := Encode("k", []byte{9, 8, 7})
	if string(a) != string(b) {
		t.Fatal("Encode is not deterministic")
	}
}
