// Package snapshot is the checkpoint/restore substrate of the simulator: a
// versioned, deterministic binary wire format plus the Snapshotter contract
// every stateful layer implements.
//
// Design rules (enforced by the Writer/Reader API and the simlint
// determinism analyzer, which covers this package):
//
//   - stable field order — every layer writes its fields in declaration
//     order, and map-backed state is always emitted under sorted keys, so
//     the same machine state always produces the same bytes;
//   - no maps in the wire format — only fixed-width scalars, length-prefixed
//     byte strings, and counted lists;
//   - self-describing sections — each layer opens its region with a Mark
//     the Reader verifies, so a skew between writer and reader fails with
//     the section name instead of silently misparsing;
//   - a self-digest in the container header — an FNV-1a 64 over the payload,
//     verified before any field is parsed.
//
// The format carries microarchitectural state only at quiescence: closures
// (in-flight MSHR waiters, scheduled events) are unserializable by design,
// so layers that own them refuse to snapshot until drained. core.Drain
// brings the whole machine to such a point.
package snapshot

import "fmt"

// Magic identifies a snapshot container.
const Magic = "RSNP"

// Version is the wire-format version. Bump it on any incompatible layout
// change; Decode rejects mismatches.
const Version = 1

// FNV-1a 64-bit parameters (the same constants simcheck's digests use).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// HashBytes returns the FNV-1a 64 digest of b.
func HashBytes(b []byte) uint64 { return fnvBytes(fnvOffset, b) }

// HashString returns the FNV-1a 64 digest of s.
func HashString(s string) uint64 { return fnvBytes(fnvOffset, []byte(s)) }

// Snapshotter is implemented by every stateful layer. SnapshotTo serializes
// the layer's state in a stable order; RestoreFrom reads it back into an
// already-constructed instance of compatible configuration. Implementations
// must be symmetric: RestoreFrom(SnapshotTo(x)) leaves the layer bit-exact
// with x for every field that can influence subsequent simulation.
type Snapshotter interface {
	SnapshotTo(w *Writer) error
	RestoreFrom(r *Reader) error
}

// Encode frames a payload into a self-verifying container:
//
//	magic[4] version:u32 kindLen:u32 kind payloadLen:u64 digest:u64 payload
//
// kind names the container content (e.g. "machine") so a file is rejected
// when fed to the wrong restorer.
func Encode(kind string, payload []byte) []byte {
	w := &Writer{}
	w.buf = append(w.buf, Magic...)
	w.U32(Version)
	w.Str(kind)
	w.U64(uint64(len(payload)))
	w.U64(HashBytes(payload))
	w.buf = append(w.buf, payload...)
	return w.buf
}

// Decode verifies a container's magic, version, kind and payload digest, and
// returns the payload.
func Decode(data []byte, kind string) ([]byte, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic (not a %s container)", Magic)
	}
	r := NewReader(data[len(Magic):])
	if v := r.U32(); v != Version {
		return nil, fmt.Errorf("snapshot: wire format version %d, this build reads %d", v, Version)
	}
	k := r.Str()
	n := r.U64()
	digest := r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header: %w", err)
	}
	if k != kind {
		return nil, fmt.Errorf("snapshot: container holds %q, want %q", k, kind)
	}
	payload := r.Rest()
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("snapshot: payload is %d bytes, header says %d", len(payload), n)
	}
	if got := HashBytes(payload); got != digest {
		return nil, fmt.Errorf("snapshot: payload digest %#x does not match header %#x (corrupt or truncated)", got, digest)
	}
	return payload, nil
}
