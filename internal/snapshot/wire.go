package snapshot

import "fmt"

// Writer builds a snapshot payload. All integers are little-endian and
// fixed-width; there is deliberately no varint or map encoding, so equal
// state always serializes to equal bytes.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the payload size so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes an int64 as its two's-complement bits.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64 (platform-independent width).
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes64 writes a length-prefixed byte string.
func (w *Writer) Bytes64(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw writes b with no length prefix, for fixed-size blocks whose length both
// sides know (e.g. memory pages).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Mark opens a named section. The matching Reader.Expect verifies it, so a
// writer/reader skew fails with the section name instead of misparsing.
func (w *Writer) Mark(name string) { w.Str(name) }

// Reader parses a snapshot payload with a sticky error: after the first
// failure every subsequent read returns zero values, and Err reports the
// original failure. Callers read a whole section and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Failf records an error (used by layers for semantic validation, e.g. a
// geometry mismatch). The first recorded error sticks.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("snapshot: truncated payload: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Rest returns all unread bytes without consuming them.
func (r *Reader) Rest() []byte { return r.buf[r.off:] }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.U32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes64 reads a length-prefixed byte string (a fresh copy).
func (r *Reader) Bytes64() []byte {
	n := r.U64()
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Raw reads n unprefixed bytes written by Writer.Raw. The returned slice
// aliases the payload; callers copy it into their own storage.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Expect verifies a section mark written by Writer.Mark.
func (r *Reader) Expect(name string) {
	got := r.Str()
	if r.err == nil && got != name {
		r.err = fmt.Errorf("snapshot: expected section %q, found %q", name, got)
	}
}
