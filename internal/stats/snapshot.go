package stats

import "runaheadsim/internal/snapshot"

// SnapshotTo serializes the histogram: geometry first so a restore into a
// histogram of different shape fails loudly, then the observation state.
func (h *Histogram) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("hist")
	w.U64(h.BucketWidth)
	w.Int(len(h.Buckets))
	for _, b := range h.Buckets {
		w.U64(b)
	}
	w.U64(h.Count)
	w.U64(h.Sum)
	w.U64(h.MaxSeen)
	return nil
}

// RestoreFrom reads state written by SnapshotTo into h, which must have the
// same bucket geometry.
func (h *Histogram) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("hist")
	if bw := r.U64(); r.Err() == nil && bw != h.BucketWidth {
		r.Failf("stats: histogram bucket width %d, snapshot has %d", h.BucketWidth, bw)
	}
	if n := r.Int(); r.Err() == nil && n != len(h.Buckets) {
		r.Failf("stats: histogram has %d buckets, snapshot has %d", len(h.Buckets), n)
	}
	if r.Err() != nil {
		return r.Err()
	}
	for i := range h.Buckets {
		h.Buckets[i] = r.U64()
	}
	h.Count = r.U64()
	h.Sum = r.U64()
	h.MaxSeen = r.U64()
	return r.Err()
}

// Merge folds o's observations into h. Both histograms must have the same
// bucket geometry; Merge panics otherwise, since merging mismatched shapes
// would silently misattribute samples.
func (h *Histogram) Merge(o *Histogram) {
	if h.BucketWidth != o.BucketWidth || len(h.Buckets) != len(o.Buckets) {
		panic("stats: merging histograms of different geometry")
	}
	for i, b := range o.Buckets {
		h.Buckets[i] += b
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.MaxSeen > h.MaxSeen {
		h.MaxSeen = o.MaxSeen
	}
}

// MergeScaled folds o's observations into h with every count scaled by the
// rational num/den (round-to-nearest) — the phase-weighted sampled engine
// extrapolating one representative window's histogram to the uops its phase
// covers. Geometry must match, as in Merge. MaxSeen is an observed extremum,
// not a count, so it merges unscaled.
func (h *Histogram) MergeScaled(o *Histogram, num, den uint64) {
	if h.BucketWidth != o.BucketWidth || len(h.Buckets) != len(o.Buckets) {
		panic("stats: merging histograms of different geometry")
	}
	for i, b := range o.Buckets {
		h.Buckets[i] += ScaleU64(b, num, den)
	}
	h.Count += ScaleU64(o.Count, num, den)
	h.Sum += ScaleU64(o.Sum, num, den)
	if o.MaxSeen > h.MaxSeen {
		h.MaxSeen = o.MaxSeen
	}
}
