// Package stats provides the counters, histograms and derived-metric helpers
// used by every simulator component. All figures in the paper are
// aggregations over these raw event counts.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Set is a named collection of counters. The zero value is not usable; call
// NewSet.
type Set struct {
	names  []string
	values map[string]*uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{values: make(map[string]*uint64)}
}

// Counter returns (creating if needed) the counter with the given name.
func (s *Set) Counter(name string) *uint64 {
	if c, ok := s.values[name]; ok {
		return c
	}
	c := new(uint64)
	s.values[name] = c
	s.names = append(s.names, name)
	return c
}

// Add increments the named counter by n.
func (s *Set) Add(name string, n uint64) { *s.Counter(name) += n }

// Get returns the value of the named counter (zero when absent).
func (s *Set) Get(name string) uint64 {
	if c, ok := s.values[name]; ok {
		return *c
	}
	return 0
}

// Names returns the counter names in creation order.
func (s *Set) Names() []string { return append([]string(nil), s.names...) }

// String renders the set sorted by name, one counter per line.
func (s *Set) String() string {
	names := s.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, *s.values[n])
	}
	return b.String()
}

// Ratio returns a/b as a float, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct returns 100*a/b, or 0 when b is zero.
func Pct(a, b uint64) float64 { return 100 * Ratio(a, b) }

// Div returns a/b, or 0 when b is zero or the quotient is not finite. Every
// derived metric that can see an empty denominator — a configuration that
// never enters runahead, an empty benchmark subset, a zero-length sampled
// window — must divide through here (or Ratio/Pct) so tables and -json
// output never carry NaN or Inf, which encoding/json rejects outright.
func Div(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	q := a / b
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return 0
	}
	return q
}

// ScaleU64 returns v*num/den rounded to nearest, using 128-bit intermediate
// math so large counters scaled by large uop weights cannot overflow. den
// must be nonzero.
func ScaleU64(v, num, den uint64) uint64 {
	hi, lo := bits.Mul64(v, num)
	lo, carry := bits.Add64(lo, den/2, 0)
	hi += carry
	if hi >= den { // quotient exceeds 64 bits; saturate rather than panic
		return math.MaxUint64
	}
	q, _ := bits.Div64(hi, lo, den)
	return q
}

// ScaleI64 is ScaleU64 over a signed magnitude (counters that are declared
// int64 but are logically non-negative cycle counts).
func ScaleI64(v int64, num, den uint64) int64 {
	if v < 0 {
		return -int64(ScaleU64(uint64(-v), num, den))
	}
	return int64(ScaleU64(uint64(v), num, den))
}

// PctDelta returns the percent difference of v relative to base:
// 100*(v-base)/base. Returns 0 when base is 0.
func PctDelta(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (v - base) / base
}

// GeoMean returns the geometric mean of xs. Non-positive entries are clamped
// to a tiny positive value so a single zero does not zero the whole mean.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a fixed-bucket histogram over non-negative integer samples.
type Histogram struct {
	// BucketWidth is the width of each bucket; bucket i covers
	// [i*BucketWidth, (i+1)*BucketWidth).
	BucketWidth uint64
	Buckets     []uint64
	Count       uint64
	Sum         uint64
	MaxSeen     uint64
}

// NewHistogram returns a histogram with n buckets of the given width.
// Samples beyond the last bucket are clamped into it.
func NewHistogram(n int, width uint64) *Histogram {
	if n <= 0 || width == 0 {
		panic("stats: histogram needs n > 0 buckets of width > 0")
	}
	return &Histogram{BucketWidth: width, Buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := v / h.BucketWidth
	if i >= uint64(len(h.Buckets)) {
		i = uint64(len(h.Buckets)) - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.MaxSeen {
		h.MaxSeen = v
	}
}

// Mean returns the mean of the observed samples (0 when empty).
func (h *Histogram) Mean() float64 { return Ratio(h.Sum, h.Count) }

// Percentile returns the smallest bucket upper bound covering at least
// p (0..1) of the samples.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.Count)))
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			return uint64(i+1) * h.BucketWidth
		}
	}
	return uint64(len(h.Buckets)) * h.BucketWidth
}
