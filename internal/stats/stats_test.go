package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetCounters(t *testing.T) {
	s := NewSet()
	s.Add("a", 3)
	s.Add("a", 2)
	s.Add("b", 1)
	if s.Get("a") != 5 || s.Get("b") != 1 || s.Get("missing") != 0 {
		t.Fatalf("counter values wrong: a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	c := s.Counter("a")
	*c += 10
	if s.Get("a") != 15 {
		t.Fatal("Counter pointer must alias the stored value")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if !strings.Contains(s.String(), "a") {
		t.Fatal("String must render counter names")
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio(3,4) != 0.75")
	}
	if Pct(1, 4) != 25 {
		t.Fatal("Pct(1,4) != 25")
	}
}

func TestPctDelta(t *testing.T) {
	if got := PctDelta(1.172, 1.0); math.Abs(got-17.2) > 1e-9 {
		t.Fatalf("PctDelta = %v", got)
	}
	if PctDelta(5, 0) != 0 {
		t.Fatal("PctDelta with zero base must be 0")
	}
	if got := PctDelta(0.9, 1.0); math.Abs(got+10) > 1e-9 {
		t.Fatalf("negative delta = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	// Zero entries are clamped rather than annihilating the mean.
	if GeoMean([]float64{0, 4}) <= 0 {
		t.Fatal("geomean with a zero entry must stay positive")
	}
}

func TestGeoMeanProperty(t *testing.T) {
	// Geomean of identical positive values is that value.
	f := func(v uint16, n uint8) bool {
		x := 1 + float64(v)/100
		k := int(n%8) + 1
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = x
		}
		return math.Abs(GeoMean(xs)-x) < 1e-9*x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean(1,2,3) != 2")
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []uint64{0, 5, 15, 100} {
		h.Observe(v)
	}
	if h.Count != 4 || h.Sum != 120 || h.MaxSeen != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count, h.Sum, h.MaxSeen)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Mean() != 30 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(10, 1)
	for v := uint64(0); v < 10; v++ {
		h.Observe(v)
	}
	if p := h.Percentile(0.5); p != 5 {
		t.Fatalf("p50 = %d, want 5", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Fatalf("p100 = %d, want 10", p)
	}
	empty := NewHistogram(4, 1)
	if empty.Percentile(0.5) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 0) must panic")
		}
	}()
	NewHistogram(0, 0)
}

func TestHistogramPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with zero bucket width must panic")
		}
	}()
	NewHistogram(4, 0)
}

func TestHistogramOverflowClampsToLastBucket(t *testing.T) {
	h := NewHistogram(4, 10)
	h.Observe(39)             // last in-range bucket
	h.Observe(40)             // first overflow value
	h.Observe(math.MaxUint64) // extreme overflow
	if h.Buckets[3] != 3 {
		t.Fatalf("overflow samples must clamp into the last bucket, got %v", h.Buckets)
	}
	if h.Count != 3 || h.MaxSeen != math.MaxUint64 {
		t.Fatalf("count/max = %d/%d", h.Count, h.MaxSeen)
	}
	// Percentile of an all-overflow distribution is the histogram's top edge.
	if p := h.Percentile(1.0); p != 40 {
		t.Fatalf("p100 = %d, want 40 (top edge)", p)
	}
}

func TestSetCreationOrderStable(t *testing.T) {
	s := NewSet()
	in := []string{"z", "m", "a", "q", "b"}
	for _, n := range in {
		s.Counter(n)
	}
	// Re-requesting existing counters must not reorder or duplicate.
	s.Counter("a")
	s.Counter("z")
	names := s.Names()
	if len(names) != len(in) {
		t.Fatalf("Names = %v, want %v (no duplicates)", names, in)
	}
	for i, n := range in {
		if names[i] != n {
			t.Fatalf("Names = %v, want creation order %v", names, in)
		}
	}
	// Names returns a copy: mutating it must not corrupt the set.
	names[0] = "corrupted"
	if s.Names()[0] != "z" {
		t.Fatal("Names must return a copy")
	}
}

func TestSetStringSortedByName(t *testing.T) {
	s := NewSet()
	s.Add("zeta", 1)
	s.Add("alpha", 2)
	out := s.String()
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("String must render sorted by name:\n%s", out)
	}
}

func TestZeroDenominators(t *testing.T) {
	if Ratio(0, 0) != 0 || Pct(7, 0) != 0 {
		t.Fatal("zero denominators must yield 0, not NaN/Inf")
	}
	if v := PctDelta(0, 0); v != 0 || math.IsNaN(v) {
		t.Fatal("PctDelta(0,0) must be 0")
	}
}

func TestDivSafe(t *testing.T) {
	if got := Div(6, 3); got != 2 {
		t.Fatalf("Div(6,3) = %v", got)
	}
	if got := Div(1, 0); got != 0 {
		t.Fatalf("Div(1,0) = %v, want 0", got)
	}
	if got := Div(0, 0); got != 0 {
		t.Fatalf("Div(0,0) = %v, want 0", got)
	}
	if got := Div(math.Inf(1), 2); got != 0 {
		t.Fatalf("Div(+Inf,2) = %v, want 0 (non-finite quotient)", got)
	}
}

func TestScaleU64(t *testing.T) {
	cases := []struct{ v, num, den, want uint64 }{
		{10, 1, 1, 10},
		{10, 3, 1, 30},
		{10, 1, 3, 3},   // 3.33 rounds to 3
		{10, 1, 4, 3},   // 2.5 rounds to 3 (round half up)
		{0, 7, 3, 0},
		{1 << 62, 1000, 1, math.MaxUint64}, // overflowing quotient saturates
		{1 << 40, 1 << 30, 1 << 20, 1 << 50},
	}
	for _, c := range cases {
		if got := ScaleU64(c.v, c.num, c.den); got != c.want {
			t.Errorf("ScaleU64(%d, %d, %d) = %d, want %d", c.v, c.num, c.den, got, c.want)
		}
	}
	if got := ScaleI64(-12, 1, 5); got != -2 {
		t.Errorf("ScaleI64(-12, 1, 5) = %d, want -2", got)
	}
}

func TestHistogramMergeScaled(t *testing.T) {
	a := NewHistogram(4, 10)
	b := NewHistogram(4, 10)
	for i := 0; i < 3; i++ {
		b.Observe(5)
	}
	b.Observe(25)
	a.MergeScaled(b, 3, 1)
	if a.Count != 12 || a.Sum != 3*(3*5+25) {
		t.Fatalf("scaled merge Count=%d Sum=%d", a.Count, a.Sum)
	}
	if a.Buckets[0] != 9 || a.Buckets[2] != 3 {
		t.Fatalf("scaled merge buckets %v", a.Buckets)
	}
	if a.MaxSeen != 25 {
		t.Fatalf("MaxSeen %d scaled; extrema must merge unscaled", a.MaxSeen)
	}
}
