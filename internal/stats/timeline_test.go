package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample(cycle int64) TimelineSample {
	return TimelineSample{Cycle: cycle, Committed: uint64(cycle), IPC: 1}
}

func TestTimelineAppendAndOrder(t *testing.T) {
	tl := NewTimeline(100, 4)
	for c := int64(1); c <= 3; c++ {
		tl.Append(sample(c * 100))
	}
	if tl.Len() != 3 || tl.Dropped() != 0 {
		t.Fatalf("len/dropped = %d/%d", tl.Len(), tl.Dropped())
	}
	ss := tl.Samples()
	for i, s := range ss {
		if s.Cycle != int64(i+1)*100 {
			t.Fatalf("samples out of order: %v", ss)
		}
	}
}

func TestTimelineRingEvictsOldest(t *testing.T) {
	tl := NewTimeline(10, 3)
	for c := int64(1); c <= 5; c++ {
		tl.Append(sample(c * 10))
	}
	if tl.Len() != 3 || tl.Dropped() != 2 {
		t.Fatalf("len/dropped = %d/%d, want 3/2", tl.Len(), tl.Dropped())
	}
	ss := tl.Samples()
	want := []int64{30, 40, 50}
	for i, s := range ss {
		if s.Cycle != want[i] {
			t.Fatalf("ring kept %v, want cycles %v", ss, want)
		}
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := NewTimeline(10, 4)
	tl.Append(TimelineSample{Cycle: 10, Committed: 25, IPC: 2.5, ROBOcc: 100.25, Mode: "normal"})
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV = %q, want header + units + 1 row", sb.String())
	}
	if lines[0] != "cycle,committed,ipc,robOcc,mshrOcc,mode,runaheadFrac,chainCacheHitRate" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "# units: cycle,uops,uops/cycle,entries,misses,enum,fraction,fraction" {
		t.Fatalf("CSV units row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "10,25,2.5000,100.25,") {
		t.Fatalf("CSV row = %q", lines[2])
	}
}

// TestTimelineCSVMatchesJSONKeys pins the schema contract: the CSV header
// names are exactly the JSON keys of TimelineSample, in marshalling order, so
// the two export formats describe the same columns.
func TestTimelineCSVMatchesJSONKeys(t *testing.T) {
	b, err := json.Marshal(TimelineSample{})
	if err != nil {
		t.Fatal(err)
	}
	var asMap map[string]any
	if err := json.Unmarshal(b, &asMap); err != nil {
		t.Fatal(err)
	}
	if len(asMap) != len(timelineColumns) {
		t.Fatalf("TimelineSample has %d JSON keys but the CSV schema has %d columns — update timelineColumns", len(asMap), len(timelineColumns))
	}
	for _, col := range timelineColumns {
		if _, ok := asMap[col.name]; !ok {
			t.Errorf("CSV column %q is not a TimelineSample JSON key", col.name)
		}
	}
	// Marshalling order follows struct field order; the CSV table must too.
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.Token() // consume '{'
	for i := 0; dec.More(); i++ {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		key := tok.(string)
		if key != timelineColumns[i].name {
			t.Fatalf("column %d: CSV has %q, JSON has %q — orders differ", i, timelineColumns[i].name, key)
		}
		var skip any
		dec.Decode(&skip)
	}
}

func TestTimelineJSON(t *testing.T) {
	tl := NewTimeline(10, 2)
	for c := int64(1); c <= 3; c++ {
		tl.Append(sample(c * 10))
	}
	var sb strings.Builder
	if err := tl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Interval int64            `json:"interval"`
		Dropped  uint64           `json:"dropped"`
		Samples  []TimelineSample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("timeline JSON does not parse: %v", err)
	}
	if doc.Interval != 10 || doc.Dropped != 1 || len(doc.Samples) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestTimelinePanicsOnBadArgs(t *testing.T) {
	for _, args := range [][2]int64{{0, 4}, {10, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTimeline(%d, %d) must panic", args[0], args[1])
				}
			}()
			NewTimeline(args[0], int(args[1]))
		}()
	}
}
