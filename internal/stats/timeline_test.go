package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample(cycle int64) TimelineSample {
	return TimelineSample{Cycle: cycle, Committed: uint64(cycle), IPC: 1}
}

func TestTimelineAppendAndOrder(t *testing.T) {
	tl := NewTimeline(100, 4)
	for c := int64(1); c <= 3; c++ {
		tl.Append(sample(c * 100))
	}
	if tl.Len() != 3 || tl.Dropped() != 0 {
		t.Fatalf("len/dropped = %d/%d", tl.Len(), tl.Dropped())
	}
	ss := tl.Samples()
	for i, s := range ss {
		if s.Cycle != int64(i+1)*100 {
			t.Fatalf("samples out of order: %v", ss)
		}
	}
}

func TestTimelineRingEvictsOldest(t *testing.T) {
	tl := NewTimeline(10, 3)
	for c := int64(1); c <= 5; c++ {
		tl.Append(sample(c * 10))
	}
	if tl.Len() != 3 || tl.Dropped() != 2 {
		t.Fatalf("len/dropped = %d/%d, want 3/2", tl.Len(), tl.Dropped())
	}
	ss := tl.Samples()
	want := []int64{30, 40, 50}
	for i, s := range ss {
		if s.Cycle != want[i] {
			t.Fatalf("ring kept %v, want cycles %v", ss, want)
		}
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := NewTimeline(10, 4)
	tl.Append(TimelineSample{Cycle: 10, Committed: 25, IPC: 2.5, ROBOcc: 100.25, Mode: "normal"})
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV = %q, want header + 1 row", sb.String())
	}
	if lines[0] != "cycle,committed,ipc,rob_occ,mshr_occ,mode,runahead_frac,chain_cache_hit_rate" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,25,2.5000,100.25,") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestTimelineJSON(t *testing.T) {
	tl := NewTimeline(10, 2)
	for c := int64(1); c <= 3; c++ {
		tl.Append(sample(c * 10))
	}
	var sb strings.Builder
	if err := tl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Interval int64            `json:"interval"`
		Dropped  uint64           `json:"dropped"`
		Samples  []TimelineSample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("timeline JSON does not parse: %v", err)
	}
	if doc.Interval != 10 || doc.Dropped != 1 || len(doc.Samples) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestTimelinePanicsOnBadArgs(t *testing.T) {
	for _, args := range [][2]int64{{0, 4}, {10, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTimeline(%d, %d) must panic", args[0], args[1])
				}
			}()
			NewTimeline(args[0], int(args[1]))
		}()
	}
}
