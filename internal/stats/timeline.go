package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TimelineSample is one per-interval snapshot of the machine: the interval's
// IPC, average occupancies, the execution mode, and cumulative progress. The
// fields cover what SimPoint-style interval analysis and phase plots need.
type TimelineSample struct {
	// Cycle is the cycle at which the sample was taken (the interval's end).
	Cycle int64 `json:"cycle"`
	// Committed is the cumulative correct-path committed uop count.
	Committed uint64 `json:"committed"`
	// IPC is the interval's committed uops per cycle.
	IPC float64 `json:"ipc"`
	// ROBOcc is the interval's average reorder-buffer occupancy.
	ROBOcc float64 `json:"robOcc"`
	// MSHROcc is the interval's average outstanding L1D miss count.
	MSHROcc float64 `json:"mshrOcc"`
	// Mode is the execution mode at sample time: "normal", "runahead-buffer"
	// or "runahead-traditional".
	Mode string `json:"mode"`
	// RunaheadFrac is the fraction of the interval's cycles spent in
	// runahead.
	RunaheadFrac float64 `json:"runaheadFrac"`
	// ChainCacheHitRate is the interval's chain-cache hit rate (0 when the
	// interval had no chain-cache probes).
	ChainCacheHitRate float64 `json:"chainCacheHitRate"`
}

// Timeline is a bounded ring of per-interval samples. When the ring is full
// the oldest samples are overwritten, so long runs keep the most recent
// window at a fixed memory cost; Dropped counts what was lost.
type Timeline struct {
	// Interval is the sampling period in cycles.
	Interval int64

	samples []TimelineSample
	cap     int
	start   int
	dropped uint64
}

// NewTimeline returns a timeline sampling every interval cycles and
// retaining at most maxSamples (the ring capacity).
func NewTimeline(interval int64, maxSamples int) *Timeline {
	if interval <= 0 || maxSamples <= 0 {
		panic("stats: timeline needs a positive interval and capacity")
	}
	return &Timeline{Interval: interval, cap: maxSamples}
}

// Append records one sample, evicting the oldest when the ring is full.
func (t *Timeline) Append(s TimelineSample) {
	if len(t.samples) < t.cap {
		t.samples = append(t.samples, s)
		return
	}
	t.samples[t.start] = s
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Len returns the number of retained samples.
func (t *Timeline) Len() int { return len(t.samples) }

// Dropped returns how many samples were evicted by the ring.
func (t *Timeline) Dropped() uint64 { return t.dropped }

// Samples returns the retained samples, oldest first.
func (t *Timeline) Samples() []TimelineSample {
	out := make([]TimelineSample, 0, len(t.samples))
	out = append(out, t.samples[t.start:]...)
	out = append(out, t.samples[:t.start]...)
	return out
}

// timelineColumns is the single source of truth for the CSV export schema.
// Column names are exactly the JSON keys of TimelineSample, in field order,
// so rows from the two export formats join column-for-column; the units row
// and per-sample formatting derive from the same table, which keeps the
// formats from drifting apart (timeline_test.go checks the CSV header
// against the marshalled JSON keys).
var timelineColumns = []struct {
	name string // JSON key of the TimelineSample field
	unit string
	fmt  func(*TimelineSample) string
}{
	{"cycle", "cycle", func(s *TimelineSample) string { return fmt.Sprintf("%d", s.Cycle) }},
	{"committed", "uops", func(s *TimelineSample) string { return fmt.Sprintf("%d", s.Committed) }},
	{"ipc", "uops/cycle", func(s *TimelineSample) string { return fmt.Sprintf("%.4f", s.IPC) }},
	{"robOcc", "entries", func(s *TimelineSample) string { return fmt.Sprintf("%.2f", s.ROBOcc) }},
	{"mshrOcc", "misses", func(s *TimelineSample) string { return fmt.Sprintf("%.2f", s.MSHROcc) }},
	{"mode", "enum", func(s *TimelineSample) string { return s.Mode }},
	{"runaheadFrac", "fraction", func(s *TimelineSample) string { return fmt.Sprintf("%.3f", s.RunaheadFrac) }},
	{"chainCacheHitRate", "fraction", func(s *TimelineSample) string { return fmt.Sprintf("%.3f", s.ChainCacheHitRate) }},
}

// WriteCSV renders the timeline as CSV: a header row naming each column with
// its TimelineSample JSON key (so CSV and JSON exports share one schema), a
// "# units:" comment row (skipped by readers configured with comment='#'),
// then one row per sample, oldest first.
func (t *Timeline) WriteCSV(w io.Writer) error {
	names := make([]string, len(timelineColumns))
	units := make([]string, len(timelineColumns))
	for i, col := range timelineColumns {
		names[i] = col.name
		units[i] = col.unit
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# units: %s\n", strings.Join(units, ",")); err != nil {
		return err
	}
	fields := make([]string, len(timelineColumns))
	for _, s := range t.Samples() {
		for i, col := range timelineColumns {
			fields[i] = col.fmt(&s)
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the timeline as one JSON object with the sampling
// interval, drop count, and the sample array.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Interval int64            `json:"interval"`
		Dropped  uint64           `json:"dropped"`
		Samples  []TimelineSample `json:"samples"`
	}{t.Interval, t.dropped, t.Samples()})
}
