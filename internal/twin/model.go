package twin

import (
	"fmt"
	"math"

	"runaheadsim/internal/core"
)

// Feature indexes of the cycle model. Each feature is an interval term in
// cycle units (or a count whose per-event cost the coefficient carries), so
// a fitted coefficient near 1.0 means "this term costs what first-order
// interval analysis says it should".
const (
	// FIdeal: stall-free cycles — the larger of the issue-width bound
	// (uops/width) and the dataflow critical path with DRAM capped at LLC
	// latency.
	FIdeal = iota
	// FTaken: taken-branch count (fetch-bubble intervals).
	FTaken
	// FMispred: mispredict count times the branch penalty (recovery
	// intervals).
	FMispred
	// FLLC: L1-miss/LLC-hit loads times the LLC latency (short memory
	// intervals, mostly hidden by the window — the coefficient learns how
	// much leaks through).
	FLLC
	// FDRAM: DRAM stall clusters times the DRAM latency (MLP-adjusted
	// full-window stalls).
	FDRAM
	// FDRAMSerial: the dataflow critical path's excess under full DRAM
	// latency — dependent miss chains that MLP cannot overlap.
	FDRAMSerial
	// FDRAMWrite: DRAM write traffic — store misses plus dirty writebacks —
	// times the DRAM latency. Nominally latency-hidden, but write traffic
	// competes with demand fills for bank and bus bandwidth; the
	// coefficient learns how much of it leaks into stall time.
	FDRAMWrite
	// FCov: runahead-coverable misses times the DRAM latency (zero for the
	// baseline; expected negative coefficient — covered stalls vanish).
	FCov
	// FRAOver: runahead interval count (entry/exit flush overhead charge;
	// zero for the baseline).
	FRAOver
	// FBias: committed uops / 1000 — a per-kilouop bias absorbing costs
	// proportional to progress that no other term carries.
	FBias

	NumFeatures
)

// Energy-feature indexes. The slot ECycles is filled by the model with its
// own predicted cycles, so energy inherits the cycle model's accuracy.
const (
	EUops = iota
	EL1
	ELLC
	EDRAM
	ECycles
	ERA

	NumEnergyFeatures
)

// Point is one (workload, configuration) cell of the sweep matrix: the
// feature vectors plus — when it is a calibration point — the detailed
// simulator's observed targets.
type Point struct {
	Bench string
	Class string // workload.Class string: "low" | "medium" | "high"
	Mode  core.Mode

	X  []float64 // cycle features (NumFeatures)
	EX []float64 // energy features (NumEnergyFeatures, ECycles slot zero)

	Uops      uint64
	DRAMLoads uint64

	// Calibration targets (zero for screening points).
	DetCycles   float64
	DetIPC      float64
	DetEnergyUJ float64
}

// PointFrom builds the screening/calibration point for one workload profile
// under one runahead mode.
func PointFrom(wp *WorkloadProfile, m Machine, mode core.Mode, class string) Point {
	w := float64(m.IssueWidth)
	ideal := float64(wp.Prof.Uops) / w
	if cp := float64(wp.CPNoDRAM); cp > ideal {
		ideal = cp
	}
	x := make([]float64, NumFeatures)
	x[FIdeal] = ideal
	x[FTaken] = float64(wp.Prof.TakenBranches)
	x[FMispred] = float64(wp.Mispredicts) * float64(m.BranchPenalty)
	x[FLLC] = float64(wp.LLCHitLoads) * float64(m.LLCLat)
	x[FDRAM] = float64(wp.Clusters) * float64(m.DRAMLat)
	if ser := float64(wp.CPFull - wp.CPNoDRAM); ser > 0 {
		x[FDRAMSerial] = ser
	}
	x[FDRAMWrite] = float64(wp.DRAMStores+wp.Writebacks) * float64(m.DRAMLat)
	if mode != core.ModeNone {
		cov := wp.CoveredAny
		if mode.UsesBuffer() {
			cov = wp.CoveredChain
		}
		x[FCov] = float64(cov) * float64(m.DRAMLat)
		x[FRAOver] = float64(wp.Clusters)
	}
	x[FBias] = float64(wp.Prof.Uops) / 1000

	ex := make([]float64, NumEnergyFeatures)
	ex[EUops] = float64(wp.Prof.Uops)
	ex[EL1] = float64(wp.Prof.Loads + wp.Prof.Stores)
	ex[ELLC] = float64(wp.LLCHitLoads + wp.DRAMLoads + wp.LLCHitStores + wp.DRAMStores)
	ex[EDRAM] = float64(wp.DRAMLoads + wp.DRAMStores + wp.Writebacks)
	if mode != core.ModeNone {
		ex[ERA] = float64(wp.Clusters)
	}

	return Point{
		Bench:     wp.Bench,
		Class:     class,
		Mode:      mode,
		X:         x,
		EX:        ex,
		Uops:      wp.Prof.Uops,
		DRAMLoads: wp.DRAMLoads,
	}
}

// ClassGroup maps a workload class to a coefficient group: the small-
// footprint kernels ("low") behave differently enough from the memory-
// intensive set ("medium"/"high") to deserve their own fit, and each side
// keeps enough points for a stable regression.
func ClassGroup(class string) string {
	if class == "low" {
		return "low"
	}
	return "mh"
}

// Group is one fitted coefficient set: one runahead mode within one class
// group.
type Group struct {
	Mode       core.Mode `json:"mode"`
	ClassGroup string    `json:"class_group"`

	Theta       []float64 `json:"theta"`
	EnergyTheta []float64 `json:"energy_theta"`

	// MAPEPct is the fit residual of this group's own calibration points —
	// the model's self-reported uncertainty for predictions it makes with
	// these coefficients.
	MAPEPct float64 `json:"mape_pct"`
	Points  int     `json:"points"`
}

// BenchScale is one workload's calibration anchor: the geometric-mean ratio
// of detailed to model-predicted cycles (and energy) across every calibrated
// configuration of that workload. One scale is shared by all modes, so
// between-config deltas — what screening ranks on — stay purely structural;
// the anchor only absorbs workload-level costs the features cannot see
// (e.g. bandwidth contention of a dense store stream). Unknown workloads
// predict with scale 1 and surface as maximally uncertain.
type BenchScale struct {
	Bench  string  `json:"bench"`
	Cycles float64 `json:"cycles"`
	Energy float64 `json:"energy"`
}

// Model is a fitted twin: coefficient groups plus per-workload anchors and
// the calibration scores, keyed to one machine by config fingerprint.
type Model struct {
	Version     int    `json:"version"`
	Fingerprint uint64 `json:"-"`
	MeasureUops uint64 `json:"measure_uops"`
	IssueWidth  int    `json:"issue_width"`

	Groups []Group      `json:"groups"`
	Scales []BenchScale `json:"scales"`
	Scores Scores       `json:"scores"`
}

// scaleFor returns the workload's calibration anchor (1, 1 when unknown).
func (m *Model) scaleFor(bench string) (cycles, energy float64) {
	for _, s := range m.Scales {
		if s.Bench == bench {
			return s.Cycles, s.Energy
		}
	}
	return 1, 1
}

// group resolves the coefficient set for (mode, class). Resolution widens
// stepwise: the exact mode in the exact class group, then the mode's pooled
// group, then any mode of the same runahead mechanism family (buffer-driven
// vs front-end-driven vs none) — so an uncalibrated variant like
// ModeAdaptive borrows the nearest calibrated mechanism's coefficients.
func (m *Model) group(mode core.Mode, class string) *Group {
	cg := ClassGroup(class)
	find := func(match func(*Group) bool, wantCG string) *Group {
		for i := range m.Groups {
			g := &m.Groups[i]
			if match(g) && (wantCG == "" || g.ClassGroup == wantCG) {
				return g
			}
		}
		return nil
	}
	exact := func(g *Group) bool { return g.Mode == mode }
	family := func(g *Group) bool {
		if mode == core.ModeNone {
			return g.Mode == core.ModeNone
		}
		return g.Mode != core.ModeNone && g.Mode.UsesBuffer() == mode.UsesBuffer()
	}
	anyRA := func(g *Group) bool {
		if mode == core.ModeNone {
			return g.Mode == core.ModeNone
		}
		return g.Mode != core.ModeNone
	}
	for _, try := range []struct {
		match func(*Group) bool
		cg    string
	}{
		{exact, cg}, {exact, "all"}, {exact, ""},
		{family, cg}, {family, "all"}, {family, ""},
		{anyRA, cg}, {anyRA, "all"}, {anyRA, ""},
	} {
		if g := find(try.match, try.cg); g != nil {
			return g
		}
	}
	return nil
}

// Prediction is the twin's answer for one point: everything a harness
// Result reports, in model form.
type Prediction struct {
	Cycles      int64
	IPC         float64
	CPI         [core.NumCPIBuckets]int64
	MPKI        float64
	MemStallPct float64
	EnergyUJ    float64

	// GroupMAPEPct is the fit residual of the coefficient group that made
	// this prediction — the screening tier's uncertainty signal.
	GroupMAPEPct float64
}

// Predict evaluates the model on one point.
func (m *Model) Predict(pt Point) (Prediction, error) {
	g := m.group(pt.Mode, pt.Class)
	if g == nil {
		return Prediction{}, fmt.Errorf("twin: no coefficient group for mode %s (calibrate first)", pt.Mode)
	}
	terms := make([]float64, NumFeatures)
	var cycles float64
	for j := 0; j < NumFeatures; j++ {
		terms[j] = g.Theta[j] * pt.X[j]
		cycles += terms[j]
	}
	sCyc, sEn := m.scaleFor(pt.Bench)
	if sCyc > 0 {
		cycles *= sCyc
	}
	if cycles < 1 {
		cycles = 1
	}

	var p Prediction
	p.Cycles = int64(math.Round(cycles))
	if p.Cycles < 1 {
		p.Cycles = 1
	}
	p.IPC = float64(pt.Uops) / float64(p.Cycles)
	p.GroupMAPEPct = g.MAPEPct
	if pt.Uops > 0 {
		p.MPKI = 1000 * float64(pt.DRAMLoads) / float64(pt.Uops)
	}

	// CPI-stack shares: map the fitted terms onto the detailed simulator's
	// buckets, clamp the physically-nonnegative ones, and rescale so the
	// buckets sum to the predicted cycles (the invariant detailed Stats
	// obey).
	w := m.IssueWidth
	if w < 1 {
		w = 4
	}
	base := float64(pt.Uops) / float64(w) // never exceeds X[FIdeal] by construction
	shares := [core.NumCPIBuckets]float64{}
	shares[core.CPIBase] = base
	shares[core.CPIOther] = clamp0(terms[FIdeal] + terms[FBias] - base)
	shares[core.CPIFrontend] = clamp0(terms[FTaken])
	shares[core.CPIBranchRecovery] = clamp0(terms[FMispred])
	shares[core.CPILLCMiss] = clamp0(terms[FLLC])
	shares[core.CPIDRAM] = clamp0(terms[FDRAM] + terms[FDRAMSerial] + terms[FDRAMWrite] + terms[FCov])
	shares[core.CPIRunaheadOverhead] = clamp0(terms[FRAOver])
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum <= 0 {
		shares[core.CPIBase] = 1
		sum = 1
	}
	scale := cycles / sum
	var acc int64
	maxB, maxV := core.CPIBase, int64(-1)
	for b := core.CPIBucket(0); b < core.NumCPIBuckets; b++ {
		v := int64(math.Round(shares[b] * scale))
		if v < 0 {
			v = 0
		}
		p.CPI[b] = v
		acc += v
		if v > maxV {
			maxB, maxV = b, v
		}
	}
	p.CPI[maxB] += p.Cycles - acc // rounding remainder
	if p.CPI[maxB] < 0 {
		p.CPI[maxB] = 0
	}
	p.MemStallPct = 100 * float64(p.CPI[core.CPIDRAM]) / float64(p.Cycles)

	ex := make([]float64, NumEnergyFeatures)
	copy(ex, pt.EX)
	ex[ECycles] = float64(p.Cycles)
	for j := 0; j < NumEnergyFeatures; j++ {
		p.EnergyUJ += g.EnergyTheta[j] * ex[j]
	}
	if sEn > 0 {
		p.EnergyUJ *= sEn
	}
	if p.EnergyUJ < 0 {
		p.EnergyUJ = 0
	}
	return p, nil
}

func clamp0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
