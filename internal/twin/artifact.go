package twin

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

// ArtifactVersion is the schema version of persisted calibration artifacts.
// Bump it whenever the feature vector, grouping, or JSON layout changes:
// Load refuses mismatched versions, forcing a recalibration instead of
// silently applying stale coefficients to new features.
const ArtifactVersion = 1

// artifactFile is the on-disk form. The fingerprint travels as hex (JSON
// numbers cannot carry 64-bit values losslessly).
type artifactFile struct {
	Version     int          `json:"version"`
	Fingerprint string       `json:"fingerprint"`
	MeasureUops uint64       `json:"measure_uops"`
	IssueWidth  int          `json:"issue_width"`
	Groups      []Group      `json:"groups"`
	Scales      []BenchScale `json:"scales"`
	Scores      Scores       `json:"scores"`
}

// Save persists the fitted model as a versioned JSON artifact.
func (m *Model) Save(path string) error {
	f := artifactFile{
		Version:     m.Version,
		Fingerprint: fmt.Sprintf("%016x", m.Fingerprint),
		MeasureUops: m.MeasureUops,
		IssueWidth:  m.IssueWidth,
		Groups:      m.Groups,
		Scales:      m.Scales,
		Scores:      m.Scores,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a calibration artifact and verifies it matches this build and
// machine: the artifact version must equal ArtifactVersion and the config
// fingerprint must equal wantFingerprint (the digest of the baseline
// structural configuration the sweep will run). A measure-uops mismatch is
// tolerated — coefficients are largely scale-free — and left for the caller
// to surface; everything else is a hard error telling the user to
// recalibrate.
func Load(path string, wantFingerprint uint64) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f artifactFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("twin: parsing artifact %s: %w", path, err)
	}
	if f.Version != ArtifactVersion {
		return nil, fmt.Errorf("twin: artifact %s has version %d, this build expects %d: recalibrate with -calibrate",
			path, f.Version, ArtifactVersion)
	}
	fp, err := strconv.ParseUint(f.Fingerprint, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("twin: artifact %s has malformed fingerprint %q", path, f.Fingerprint)
	}
	if fp != wantFingerprint {
		return nil, fmt.Errorf("twin: artifact %s was calibrated for config fingerprint %016x, this machine is %016x: recalibrate with -calibrate",
			path, fp, wantFingerprint)
	}
	for _, g := range f.Groups {
		if len(g.Theta) != NumFeatures || len(g.EnergyTheta) != NumEnergyFeatures {
			return nil, fmt.Errorf("twin: artifact %s group %s/%s has %d/%d coefficients, expected %d/%d: recalibrate with -calibrate",
				path, g.Mode, g.ClassGroup, len(g.Theta), len(g.EnergyTheta), NumFeatures, NumEnergyFeatures)
		}
	}
	return &Model{
		Version:     f.Version,
		Fingerprint: fp,
		MeasureUops: f.MeasureUops,
		IssueWidth:  f.IssueWidth,
		Groups:      f.Groups,
		Scales:      f.Scales,
		Scores:      f.Scores,
	}, nil
}
