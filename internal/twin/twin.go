// Package twin is the analytical interval-model twin of the detailed
// simulator: a first-order performance model that predicts cycles, IPC,
// CPI-stack shares, and energy for a (workload, configuration) pair in
// microseconds instead of seconds.
//
// The model follows the classic interval-analysis decomposition — the same
// terms the detailed simulator's CPI stack attributes cycles to:
//
//	cycles ≈ θ·[ ideal, taken-branches, mispredict-intervals, LLC-miss
//	             intervals, DRAM-miss intervals (MLP-adjusted), serialized
//	             DRAM chains, runahead coverage, runahead overhead, bias ]
//
// Inputs come from one interpreter-speed profiling pass per workload
// (prog.Interp.RunProfile driving functional L1D/LLC tag arrays, the real
// branch predictor tables, and a dataflow virtual schedule), plus structural
// machine parameters extracted from the core configuration. The per-term
// coefficients θ are *fitted* against detailed runs by the calibration loop
// (calibrate.go) rather than derived from first principles: calibration
// absorbs everything the first-order terms cannot see (issue contention,
// partial overlap, prefetch-like wrong-path effects), and the residual it
// cannot absorb is reported as per-workload/per-config MAPE and Pearson-r —
// the uncertainty the screening tier promotes on.
//
// Known limits, by construction: the profile is configuration-independent,
// so configurations that change cache contents or miss counts (hardware
// prefetchers, runahead-buffer size sweeps, DepTrack instrumentation) are
// predicted with the nearest mode's coefficients and must be promoted to
// detailed simulation when their numbers matter.
package twin

import (
	"runaheadsim/internal/bpred"
	"runaheadsim/internal/cache"
	"runaheadsim/internal/core"
)

// Machine holds the structural parameters the model terms are built from.
// They are extracted from a core configuration by MachineFrom, never set by
// calibration: the coefficients scale the terms, the machine sizes them.
type Machine struct {
	IssueWidth int
	ROBSize    int

	// BranchPenalty is the fetch-to-rename refill depth plus the redirect
	// bubble — the cycles one mispredict interval costs at minimum.
	BranchPenalty int64

	// Load-to-use latencies by the deepest level an access reaches.
	L1Lat, LLCLat, DRAMLat int64

	L1D, LLC cache.Config
	BPred    bpred.Config
}

// MachineFrom extracts the model-relevant structural parameters from a full
// core configuration.
func MachineFrom(cfg core.Config) Machine {
	onChip := int64(cfg.Mem.L1Latency + cfg.Mem.LLCLatency)
	return Machine{
		IssueWidth:    cfg.IssueWidth,
		ROBSize:       cfg.ROBSize,
		BranchPenalty: int64(cfg.DecodeDepth+cfg.RedirectPenalty) + 1,
		L1Lat:         int64(cfg.Mem.L1Latency),
		LLCLat:        onChip,
		DRAMLat:       onChip + int64(cfg.Mem.DRAM.TRCD+cfg.Mem.DRAM.TCAS+cfg.Mem.DRAM.TransferCycles),
		L1D:           cfg.Mem.L1D,
		LLC:           cfg.Mem.LLC,
		BPred:         cfg.BPred,
	}
}

// reach is how many uops past a blocking miss a runahead interval can
// plausibly pre-execute: the window the ROB already holds plus what the
// front end can supply during one DRAM access.
func (m Machine) reach() int64 {
	return int64(m.ROBSize) + int64(m.IssueWidth)*m.DRAMLat
}
