package twin

import (
	"math"
	"path/filepath"
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/workload"
)

func testMachine() Machine { return MachineFrom(core.DefaultConfig()) }

// TestBuildProfileDeterministic: two passes over the same workload must be
// byte-for-byte identical — the profile feeds a memoized, provenance-tagged
// result cache, so any nondeterminism would poison sweeps.
func TestBuildProfileDeterministic(t *testing.T) {
	p := workload.MustLoad("mcf")
	m := testMachine()
	a := BuildProfile("mcf", p, m, 20_000, 30_000)
	b := BuildProfile("mcf", p, m, 20_000, 30_000)
	if *a != *b {
		t.Fatalf("profiles differ:\n%+v\n%+v", a, b)
	}
	if a.Prof.Uops != 30_000 {
		t.Fatalf("measured uops = %d, want 30000", a.Prof.Uops)
	}
	if a.DRAMLoads == 0 || a.Clusters == 0 {
		t.Fatalf("mcf should miss to DRAM in the measured window: %+v", a)
	}
	if a.Clusters > a.DRAMLoads {
		t.Fatalf("clusters (%d) cannot exceed DRAM misses (%d)", a.Clusters, a.DRAMLoads)
	}
	if a.CPFull < a.CPNoDRAM {
		t.Fatalf("full critical path (%d) below DRAM-capped one (%d)", a.CPFull, a.CPNoDRAM)
	}
}

// TestProfileSeparatesWorkloads: a pointer chase must show serialized DRAM
// behavior (critical path dominated by misses), a streaming kernel must
// show clustered-but-parallel misses, and a cache-resident kernel must show
// none. These contrasts are what the model's features discriminate on.
func TestProfileSeparatesWorkloads(t *testing.T) {
	m := testMachine()
	chase := BuildProfile("mcf", workload.MustLoad("mcf"), m, 100_000, 50_000)
	resident := BuildProfile("calculix", workload.MustLoad("calculix"), m, 100_000, 50_000)

	if resident.DRAMLoads*100 > chase.DRAMLoads {
		t.Fatalf("cache-resident kernel misses too much: %d vs chase %d",
			resident.DRAMLoads, chase.DRAMLoads)
	}
	if chase.CPFull-chase.CPNoDRAM == 0 {
		t.Fatalf("pointer chase shows no serialized DRAM critical path: %+v", chase)
	}
}

// synthPoints builds a set of points whose detailed targets are an exact
// linear function of the features, so the fit must recover near-zero error.
func synthPoints() []Point {
	theta := make([]float64, NumFeatures)
	theta[FIdeal], theta[FTaken], theta[FMispred] = 1.1, 0.5, 0.9
	theta[FLLC], theta[FDRAM], theta[FDRAMSerial] = 0.3, 1.0, 0.8
	theta[FCov], theta[FRAOver], theta[FBias] = -0.6, 12, 0.02
	etheta := make([]float64, NumEnergyFeatures)
	etheta[EUops], etheta[ECycles], etheta[EDRAM] = 0.0002, 0.0001, 0.0004

	var pts []Point
	benches := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9", "wa", "wb"}
	for bi, bench := range benches {
		for _, mode := range []core.Mode{core.ModeNone, core.ModeBuffer} {
			x := make([]float64, NumFeatures)
			uops := 100_000 + 1000*float64(bi)
			x[FIdeal] = uops/4 + 500*float64(bi%5)
			x[FTaken] = 8000 + 300*float64(bi)
			x[FMispred] = 700 * float64(bi%4)
			x[FLLC] = 900 * float64((bi+2)%5)
			x[FDRAM] = 12500 * float64(bi%6)
			x[FDRAMSerial] = 4000 * float64(bi%3)
			if mode != core.ModeNone {
				x[FCov] = 0.7 * x[FDRAM]
				x[FRAOver] = x[FDRAM] / 125
			}
			x[FBias] = uops / 1000
			var y float64
			for j := range x {
				y += theta[j] * x[j]
			}
			ex := make([]float64, NumEnergyFeatures)
			ex[EUops], ex[EDRAM] = uops, x[FDRAM]/125
			var e float64
			for j := range ex {
				e += etheta[j] * ex[j]
			}
			e += etheta[ECycles] * y
			pts = append(pts, Point{
				Bench: bench, Class: "high", Mode: mode,
				X: x, EX: ex, Uops: uint64(uops), DRAMLoads: uint64(x[FDRAM] / 125),
				DetCycles: y, DetIPC: uops / y, DetEnergyUJ: e,
			})
		}
	}
	return pts
}

// TestFitRecoversLinearModel: on exactly-linear synthetic data the fit must
// interpolate (tiny MAPE, r ≈ 1), proving the regression machinery.
func TestFitRecoversLinearModel(t *testing.T) {
	pts := synthPoints()
	m, err := Fit(pts, testMachine(), 0xabcd, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scores.MAPEPct > 0.5 {
		t.Fatalf("MAPE %.3f%% on exactly-linear data, want < 0.5%%", m.Scores.MAPEPct)
	}
	if m.Scores.PearsonR < 0.999 {
		t.Fatalf("Pearson r %.5f on exactly-linear data, want ~1", m.Scores.PearsonR)
	}
	if m.Scores.EnergyMAPEPct > 1 {
		t.Fatalf("energy MAPE %.3f%%, want < 1%%", m.Scores.EnergyMAPEPct)
	}
	// CPI stack of any prediction must sum to the predicted cycles.
	pred, err := m.Predict(pts[3])
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range pred.CPI {
		sum += v
	}
	if sum != pred.Cycles {
		t.Fatalf("CPI stack sums to %d, cycles %d", sum, pred.Cycles)
	}
	if pred.IPC <= 0 {
		t.Fatalf("nonpositive IPC %f", pred.IPC)
	}
}

// TestPredictModeFallback: a mode absent from calibration resolves to the
// nearest calibrated mechanism instead of failing.
func TestPredictModeFallback(t *testing.T) {
	m, err := Fit(synthPoints(), testMachine(), 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	pt := synthPoints()[1] // ModeBuffer point
	pt.Mode = core.ModeAdaptive
	if _, err := m.Predict(pt); err != nil {
		t.Fatalf("adaptive mode should fall back to a buffer-mode group: %v", err)
	}
	pt.Class = "low" // unseen class group pools to "all"/exact-mode fallback
	if _, err := m.Predict(pt); err != nil {
		t.Fatalf("unseen class group should still resolve: %v", err)
	}
}

// TestArtifactRoundTrip: save/load must preserve the model and enforce the
// version/fingerprint contract.
func TestArtifactRoundTrip(t *testing.T) {
	m, err := Fit(synthPoints(), testMachine(), 0xfeedbeef, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "twin.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, 0xfeedbeef)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != m.Fingerprint || len(got.Groups) != len(m.Groups) {
		t.Fatalf("round trip mangled the model: %+v", got)
	}
	for i := range got.Groups {
		for j := range got.Groups[i].Theta {
			if math.Abs(got.Groups[i].Theta[j]-m.Groups[i].Theta[j]) > 1e-12 {
				t.Fatalf("theta[%d][%d] drifted across the round trip", i, j)
			}
		}
	}
	if _, err := Load(path, 0xdeadbeef); err == nil {
		t.Fatal("fingerprint mismatch must refuse to load")
	}
}
