package twin

import (
	"fmt"
	"math"
	"sort"

	"runaheadsim/internal/core"
)

// Calibration: fit the per-term coefficients of each (mode, class-group)
// against detailed-run targets by relative-error-weighted least squares.
// Weighting each squared residual by 1/y² makes the optimizer minimize
// *relative* error — which is what MAPE and the screening tier care about —
// instead of letting the slowest workloads dominate.
//
// The fit is hierarchical: each mode first fits one pooled coefficient set
// over all its points (weak ridge toward zero), then each class group
// refits with a ridge *toward the pooled set*. Class groups are small (a
// dozen points against ten features), so an unshrunk fit interpolates with
// wild mutually-canceling coefficients that generalize badly; shrinkage
// keeps a group's coefficients at the pooled values except where its own
// points carry real evidence.
//
// On top of the coefficients sit per-workload anchors ([BenchScale]): fit,
// anchor each workload at the geomean detailed/predicted ratio, refit
// against the anchor-corrected targets, re-anchor. The anchors absorb
// workload-level costs the features cannot see (e.g. bandwidth contention
// of a dense store stream); because one anchor is shared by all of a
// workload's modes, cross-config deltas — what screening ranks on — remain
// purely structural.

// minGroupPoints is the fewest calibration points a (mode, class-group)
// needs for its own fit; smaller groups pool into the mode's "all" group.
const minGroupPoints = NumFeatures + 2

// Ridge strengths, relative to trace(XᵀWX)/nf: the pooled fit is nearly
// unregularized; class-group fits shrink gently toward the pooled set —
// just enough to damp the mutual cancellation an interpolating fit would
// produce, since the per-workload anchors already absorb bench-level
// offsets.
const (
	pooledLambda = 1e-6
	groupLambda  = 3e-4
)

// Scores reports calibration quality: overall and sliced per workload, per
// configuration (mode), and per workload class, each as IPC MAPE and
// Pearson correlation between twin and detailed IPC.
type Scores struct {
	MAPEPct       float64 `json:"ipc_mape_pct"`
	PearsonR      float64 `json:"pearson_r"`
	EnergyMAPEPct float64 `json:"energy_mape_pct"`

	PerWorkload []ScoreRow `json:"per_workload"`
	PerConfig   []ScoreRow `json:"per_config"`
	PerClass    []ScoreRow `json:"per_class"`
}

// ScoreRow is one slice of the calibration scores.
type ScoreRow struct {
	Name     string  `json:"name"`
	Points   int     `json:"points"`
	MAPEPct  float64 `json:"ipc_mape_pct"`
	PearsonR float64 `json:"pearson_r"`
}

// Fit calibrates a model against points carrying detailed targets
// (DetCycles, DetIPC, DetEnergyUJ). Points are grouped by (mode,
// class-group); groups with too few points pool into a per-mode "all"
// group. The returned model carries the fitted coefficients and the
// training-set scores.
func Fit(points []Point, machine Machine, fingerprint uint64, measureUops uint64) (*Model, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("twin: no calibration points")
	}
	m := &Model{
		Version:     ArtifactVersion,
		Fingerprint: fingerprint,
		MeasureUops: measureUops,
		IssueWidth:  machine.IssueWidth,
	}

	type gkey struct {
		mode core.Mode
		cg   string
	}
	var keys []gkey
	idx := func(k gkey) int {
		for i, have := range keys {
			if have == k {
				return i
			}
		}
		keys = append(keys, k)
		return len(keys) - 1
	}
	buckets := make([][]Point, 0, 8)
	for _, pt := range points {
		if pt.DetCycles <= 0 {
			return nil, fmt.Errorf("twin: calibration point %s/%s has no detailed cycles", pt.Bench, pt.Mode)
		}
		i := idx(gkey{pt.Mode, ClassGroup(pt.Class)})
		for len(buckets) <= i {
			buckets = append(buckets, nil)
		}
		buckets[i] = append(buckets[i], pt)
	}
	// Pool undersized class groups into per-mode "all" groups.
	pooled := make([][]Point, 0, 8)
	var pooledKeys []gkey
	pidx := func(k gkey) int {
		for i, have := range pooledKeys {
			if have == k {
				return i
			}
		}
		pooledKeys = append(pooledKeys, k)
		pooled = append(pooled, nil)
		return len(pooledKeys) - 1
	}
	for i, pts := range buckets {
		k := keys[i]
		if len(pts) < minGroupPoints {
			k = gkey{k.mode, "all"}
		}
		j := pidx(k)
		pooled[j] = append(pooled[j], pts...)
	}
	// Pooling only the undersized groups would fit "all" on a skewed
	// subset, so when any class group of a mode pooled, the "all" group
	// gets every point of that mode.
	for j, k := range pooledKeys {
		if k.cg != "all" {
			continue
		}
		pooled[j] = nil
		for _, pt := range points {
			if pt.Mode == k.mode {
				pooled[j] = append(pooled[j], pt)
			}
		}
	}

	// Targets are divided by the current per-workload anchors, so each fit
	// pass explains only what the anchors don't.
	scaleOf := func(string) (float64, float64) { return 1, 1 }
	cycTarget := func(pt Point) float64 {
		s, _ := scaleOf(pt.Bench)
		return pt.DetCycles / s
	}
	enTarget := func(pt Point) float64 {
		_, s := scaleOf(pt.Bench)
		return pt.DetEnergyUJ / s
	}

	fitGroups := func() error {
		m.Groups = m.Groups[:0]
		// Stage one: pooled per-mode coefficients over every point of the
		// mode.
		var pooledModes []core.Mode
		var pooledTheta, pooledETheta [][]float64
		pooledFor := func(mode core.Mode) ([]float64, []float64, error) {
			for i, have := range pooledModes {
				if have == mode {
					return pooledTheta[i], pooledETheta[i], nil
				}
			}
			var pts []Point
			for _, pt := range points {
				if pt.Mode == mode {
					pts = append(pts, pt)
				}
			}
			theta, err := wlsFit(pts, cycleRow, NumFeatures, cycTarget, nil, pooledLambda)
			if err != nil {
				return nil, nil, fmt.Errorf("twin: fitting mode %s: %w", mode, err)
			}
			etheta, err := wlsFit(pts, energyRow, NumEnergyFeatures, enTarget, nil, pooledLambda)
			if err != nil {
				return nil, nil, fmt.Errorf("twin: fitting energy for mode %s: %w", mode, err)
			}
			pooledModes = append(pooledModes, mode)
			pooledTheta = append(pooledTheta, theta)
			pooledETheta = append(pooledETheta, etheta)
			return theta, etheta, nil
		}

		// Stage two: each class group refits shrunk toward its mode's pooled
		// coefficients; "all" groups just take the pooled set.
		for j, k := range pooledKeys {
			pts := pooled[j]
			prior, ePrior, err := pooledFor(k.mode)
			if err != nil {
				return err
			}
			theta, etheta := prior, ePrior
			if k.cg != "all" {
				theta, err = wlsFit(pts, cycleRow, NumFeatures, cycTarget, prior, groupLambda)
				if err != nil {
					return fmt.Errorf("twin: fitting mode %s/%s: %w", k.mode, k.cg, err)
				}
				etheta, err = wlsFit(pts, energyRow, NumEnergyFeatures, enTarget, ePrior, groupLambda)
				if err != nil {
					return fmt.Errorf("twin: fitting energy for mode %s/%s: %w", k.mode, k.cg, err)
				}
			}
			m.Groups = append(m.Groups, Group{
				Mode:        k.mode,
				ClassGroup:  k.cg,
				Theta:       theta,
				EnergyTheta: etheta,
				Points:      len(pts),
			})
		}
		return nil
	}

	// Alternate: fit coefficients, anchor each workload, refit against the
	// anchor-corrected targets (so the coefficients model cross-config
	// structure, not workload-level offsets), then re-anchor against the
	// final coefficients.
	if err := fitGroups(); err != nil {
		return nil, err
	}
	scales, err := m.computeScales(points)
	if err != nil {
		return nil, err
	}
	m.Scales = scales
	scaleOf = m.scaleFor
	if err := fitGroups(); err != nil {
		return nil, err
	}
	if scales, err = m.computeScales(points); err != nil {
		return nil, err
	}
	m.Scales = scales

	// Per-group residual MAPE (the model's own uncertainty signal), then
	// overall scores on the full training set.
	for gi := range m.Groups {
		g := &m.Groups[gi]
		var sum float64
		var n int
		for _, pt := range points {
			if m.group(pt.Mode, pt.Class) != g {
				continue
			}
			pred, err := m.Predict(pt)
			if err != nil {
				return nil, err
			}
			sum += math.Abs(float64(pred.Cycles)-pt.DetCycles) / pt.DetCycles
			n++
		}
		if n > 0 {
			g.MAPEPct = 100 * sum / float64(n)
		}
	}
	sc, err := m.Score(points)
	if err != nil {
		return nil, err
	}
	m.Scores = sc
	return m, nil
}

// computeScales measures each workload's multiplicative anchor: the
// geometric mean of detailed over raw-predicted cycles (and energy) across
// the workload's calibration points, evaluated with the model's current
// anchors disabled so the result is always relative to the bare coefficients.
func (m *Model) computeScales(points []Point) ([]BenchScale, error) {
	saved := m.Scales
	m.Scales = nil
	defer func() { m.Scales = saved }()

	var names []string
	type acc struct {
		cyc, en float64
		n, nE   int
	}
	var accs []acc
	find := func(n string) int {
		for i, have := range names {
			if have == n {
				return i
			}
		}
		names = append(names, n)
		accs = append(accs, acc{})
		return len(names) - 1
	}
	for _, pt := range points {
		pred, err := m.Predict(pt)
		if err != nil {
			return nil, err
		}
		if pt.DetCycles <= 0 || pred.Cycles <= 0 {
			continue
		}
		a := &accs[find(pt.Bench)]
		a.cyc += math.Log(pt.DetCycles / float64(pred.Cycles))
		a.n++
		if pt.DetEnergyUJ > 0 && pred.EnergyUJ > 0 {
			a.en += math.Log(pt.DetEnergyUJ / pred.EnergyUJ)
			a.nE++
		}
	}
	out := make([]BenchScale, 0, len(names))
	for i, n := range names {
		s := BenchScale{Bench: n, Cycles: 1, Energy: 1}
		if accs[i].n > 0 {
			s.Cycles = math.Exp(accs[i].cyc / float64(accs[i].n))
		}
		if accs[i].nE > 0 {
			s.Energy = math.Exp(accs[i].en / float64(accs[i].nE))
		}
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Bench < out[b].Bench })
	return out, nil
}

func cycleRow(pt Point) []float64 { return pt.X }

func energyRow(pt Point) []float64 {
	ex := make([]float64, NumEnergyFeatures)
	copy(ex, pt.EX)
	// Energy is fitted with the *detailed* cycles in the ECycles slot; at
	// predict time the model substitutes its own cycle prediction, so
	// energy error compounds cycle error honestly.
	ex[ECycles] = pt.DetCycles
	return ex
}

// wlsFit solves the 1/y²-weighted ridge regression over the group's points.
// The ridge pulls the solution toward prior (zero when nil) with strength
// lambdaRel·trace(XᵀWX)/nf: (XᵀWX + λI)θ = XᵀWy + λ·prior.
func wlsFit(pts []Point, row func(Point) []float64, nf int, target func(Point) float64, prior []float64, lambdaRel float64) ([]float64, error) {
	a := make([][]float64, nf) // normal matrix XᵀWX
	for i := range a {
		a[i] = make([]float64, nf)
	}
	b := make([]float64, nf)
	var used int
	for _, pt := range pts {
		y := target(pt)
		if y <= 0 {
			continue // target not observed (e.g. energy disabled): skip
		}
		x := row(pt)
		w := 1 / (y * y)
		for i := 0; i < nf; i++ {
			for j := 0; j < nf; j++ {
				a[i][j] += w * x[i] * x[j]
			}
			b[i] += w * x[i] * y
		}
		used++
	}
	if used == 0 {
		if prior != nil {
			return append([]float64(nil), prior...), nil
		}
		return make([]float64, nf), nil
	}
	// Ridge scaled to the normal matrix so the penalty is unitless.
	var trace float64
	for i := 0; i < nf; i++ {
		trace += a[i][i]
	}
	lambda := lambdaRel * trace / float64(nf)
	if lambda <= 0 {
		lambda = 1e-12
	}
	for i := 0; i < nf; i++ {
		a[i][i] += lambda
		if prior != nil {
			b[i] += lambda * prior[i]
		}
	}
	return solve(a, b)
}

// solve runs Gaussian elimination with partial pivoting on a copy-free
// normal system (a is already scratch).
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-30 {
			return nil, fmt.Errorf("twin: singular normal matrix at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

// Score evaluates the model against points with detailed targets and
// returns the sliced MAPE/Pearson scores.
func (m *Model) Score(points []Point) (Scores, error) {
	type obs struct {
		name              string
		predIPC, detIPC   float64
		relErr, energyRel float64
		hasEnergy         bool
		class, modeLabel  string
	}
	all := make([]obs, 0, len(points))
	for _, pt := range points {
		pred, err := m.Predict(pt)
		if err != nil {
			return Scores{}, err
		}
		detIPC := pt.DetIPC
		if detIPC == 0 && pt.DetCycles > 0 {
			detIPC = float64(pt.Uops) / pt.DetCycles
		}
		o := obs{
			name:      pt.Bench,
			predIPC:   pred.IPC,
			detIPC:    detIPC,
			class:     pt.Class,
			modeLabel: pt.Mode.String(),
		}
		if detIPC > 0 {
			o.relErr = math.Abs(pred.IPC-detIPC) / detIPC
		}
		if pt.DetEnergyUJ > 0 {
			o.hasEnergy = true
			o.energyRel = math.Abs(pred.EnergyUJ-pt.DetEnergyUJ) / pt.DetEnergyUJ
		}
		all = append(all, o)
	}

	var sc Scores
	var sumRel, sumERel float64
	var nE int
	var xs, ys []float64
	for _, o := range all {
		sumRel += o.relErr
		xs = append(xs, o.predIPC)
		ys = append(ys, o.detIPC)
		if o.hasEnergy {
			sumERel += o.energyRel
			nE++
		}
	}
	sc.MAPEPct = 100 * sumRel / float64(len(all))
	sc.PearsonR = pearson(xs, ys)
	if nE > 0 {
		sc.EnergyMAPEPct = 100 * sumERel / float64(nE)
	}

	slice := func(key func(obs) string) []ScoreRow {
		var names []string
		find := func(n string) int {
			for i, have := range names {
				if have == n {
					return i
				}
			}
			names = append(names, n)
			return len(names) - 1
		}
		type agg struct {
			sum    float64
			xs, ys []float64
		}
		aggs := make([]agg, 0, 32)
		for _, o := range all {
			i := find(key(o))
			for len(aggs) <= i {
				aggs = append(aggs, agg{})
			}
			aggs[i].sum += o.relErr
			aggs[i].xs = append(aggs[i].xs, o.predIPC)
			aggs[i].ys = append(aggs[i].ys, o.detIPC)
		}
		rows := make([]ScoreRow, len(names))
		for i, n := range names {
			rows[i] = ScoreRow{
				Name:     n,
				Points:   len(aggs[i].xs),
				MAPEPct:  100 * aggs[i].sum / float64(len(aggs[i].xs)),
				PearsonR: pearson(aggs[i].xs, aggs[i].ys),
			}
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a].Name < rows[b].Name })
		return rows
	}
	sc.PerWorkload = slice(func(o obs) string { return o.name })
	sc.PerConfig = slice(func(o obs) string { return o.modeLabel })
	sc.PerClass = slice(func(o obs) string { return o.class })
	return sc, nil
}

// WorkloadMAPE returns the calibration-time per-workload IPC MAPE, or -1
// when the workload was not in the calibration set (the screening tier
// treats unknown workloads as maximally uncertain).
func (m *Model) WorkloadMAPE(bench string) float64 {
	for _, r := range m.Scores.PerWorkload {
		if r.Name == bench {
			return r.MAPEPct
		}
	}
	return -1
}

// pearson returns the sample correlation coefficient (0 when degenerate).
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
