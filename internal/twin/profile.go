package twin

import (
	"runaheadsim/internal/bpred"
	"runaheadsim/internal/cache"
	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// WorkloadProfile is everything the model needs to know about one workload,
// gathered in a single interpreter-speed pass: the instruction mix, the
// functional cache/branch-predictor behavior over the measured region, the
// DRAM-miss cluster structure (the MLP the detailed machine can exploit),
// how much of it a runahead interval could cover, and the dataflow critical
// path (which separates dependent miss chains from independent misses).
//
// The pass replays the same warmup the detailed harness runs before
// ResetStats, so the measured windows line up uop-for-uop.
type WorkloadProfile struct {
	Bench           string
	Warmup, Measure uint64

	Prof        prog.Profile // measured-region instruction mix
	Mispredicts uint64       // functional hybrid-predictor direction misses

	// Demand-load miss counts by deepest level (measured region).
	LLCHitLoads uint64 // L1D miss, LLC hit
	DRAMLoads   uint64 // L1D and LLC miss
	// Store-miss traffic (write-allocate fills; latency-hidden but energy-
	// and bandwidth-relevant).
	LLCHitStores, DRAMStores uint64
	// Writebacks counts dirty lines leaving the LLC (directly, or via an
	// inclusion-invalidated dirty L1 copy) — DRAM write traffic that
	// competes with demand fills for bandwidth.
	Writebacks uint64

	// DRAM-miss interval structure. Misses within one ROB-sized uop window
	// of a cluster leader overlap under that leader's full-window stall:
	// Clusters is the number of such stall intervals (the MLP-adjusted miss
	// count — a dense steady miss stream costs one stall per window, not
	// one stall total).
	Clusters uint64
	// CoveredAny counts clusters whose leader lies within runahead reach of
	// the previous cluster's leader — stalls that runahead triggered at the
	// previous stall could remove. CoveredChain restricts that to leaders
	// whose static load already missed in the previous cluster, the
	// filtered subset a runahead-buffer dependence chain replays.
	CoveredAny, CoveredChain uint64

	// Dataflow virtual-schedule critical paths over the measured region, in
	// cycles, with loads taking their functional-hit-level latency. CPFull
	// charges DRAM loads the full DRAM latency; CPNoDRAM caps them at the
	// LLC latency, so CPFull-CPNoDRAM isolates serialized (dependent) DRAM
	// misses that no amount of MLP can overlap.
	CPFull, CPNoDRAM int64
}

type missRec struct {
	pos    uint64 // committed-uop position within the measured region
	static int32  // static uop index of the load
}

// profiler drives the functional models under the interpreter hook.
type profiler struct {
	m   Machine
	l1d *cache.Cache
	llc *cache.Cache
	bp  *bpred.Predictor

	rec bool // inside the measured region
	wp  *WorkloadProfile

	// Dataflow virtual schedule: completion times per architectural
	// register under full DRAM latency [0] and DRAM-capped latency [1],
	// plus store-to-load forwarding times per 8-byte word.
	ready    [isa.NumArchRegs][2]int64
	memReady map[uint64][2]int64
	cpMax    [2]int64

	misses []missRec
}

// BuildProfile runs one functional profiling pass over p: warmup uops to
// warm the caches, predictor, and dataflow state (mirroring the detailed
// harness's warmup before ResetStats), then measure uops with recording on.
func BuildProfile(bench string, p *prog.Program, m Machine, warmup, measure uint64) *WorkloadProfile {
	wp := &WorkloadProfile{Bench: bench, Warmup: warmup, Measure: measure}
	pr := &profiler{
		m:        m,
		l1d:      cache.New(m.L1D),
		llc:      cache.New(m.LLC),
		bp:       bpred.New(m.BPred),
		wp:       wp,
		memReady: make(map[uint64][2]int64),
	}
	in := prog.NewInterp(p)
	var warmProf prog.Profile
	in.RunProfile(warmup, &warmProf, pr.step)
	pr.rec = true
	cpBase := pr.cpMax
	in.RunProfile(measure, &wp.Prof, pr.step)
	wp.CPFull = pr.cpMax[0] - cpBase[0]
	wp.CPNoDRAM = pr.cpMax[1] - cpBase[1]
	pr.clusterMisses()
	return wp
}

// step is the per-uop hook: functional branch prediction, functional cache
// walk, and the dataflow virtual schedule.
func (pr *profiler) step(u *isa.Uop, e Exec) {
	var lat [2]int64
	switch {
	case u.Op.IsLoad():
		lat = pr.load(e)
	case u.Op.IsStore():
		pr.store(e)
		lat = [2]int64{1, 1}
	case u.Op.IsBranch():
		pr.branch(u, e)
		lat = [2]int64{1, 1}
	default:
		l := int64(u.Op.ExecLatency())
		lat = [2]int64{l, l}
	}
	pr.dataflow(u, e, lat)
}

// load walks the functional L1D/LLC tag arrays (inclusive, write-allocate,
// true LRU — the same structural model the detailed hierarchy uses) and
// returns the load-to-use latency of the level that served it.
func (pr *profiler) load(e Exec) [2]int64 {
	line := pr.l1d.LineAddr(e.EA)
	if hit, _ := pr.l1d.Lookup(line); hit {
		return [2]int64{pr.m.L1Lat, pr.m.L1Lat}
	}
	if hit, _ := pr.llc.Lookup(line); hit {
		pr.fillL1(line)
		if pr.rec {
			pr.wp.LLCHitLoads++
		}
		return [2]int64{pr.m.LLCLat, pr.m.LLCLat}
	}
	pr.fillLLC(line)
	pr.fillL1(line)
	if pr.rec {
		pr.misses = append(pr.misses, missRec{pos: pr.wp.Prof.Uops, static: int32(e.Index)})
		pr.wp.DRAMLoads++
	}
	return [2]int64{pr.m.DRAMLat, pr.m.LLCLat}
}

func (pr *profiler) store(e Exec) {
	line := pr.l1d.LineAddr(e.EA)
	if hit, _ := pr.l1d.Lookup(line); hit {
		pr.l1d.MarkDirty(line)
		return
	}
	if hit, _ := pr.llc.Lookup(line); !hit {
		pr.fillLLC(line)
		if pr.rec {
			pr.wp.DRAMStores++
		}
	} else if pr.rec {
		pr.wp.LLCHitStores++
	}
	pr.fillL1(line)
	pr.l1d.MarkDirty(line)
}

func (pr *profiler) fillL1(line uint64) {
	if v := pr.l1d.Insert(line, false); v.Valid && v.Dirty {
		pr.llc.MarkDirty(v.Addr) // write the evicted dirty L1 line back
	}
}

func (pr *profiler) fillLLC(line uint64) {
	if v := pr.llc.Insert(line, false); v.Valid {
		present, dirty := pr.l1d.Invalidate(v.Addr) // inclusion
		if (v.Dirty || (present && dirty)) && pr.rec {
			pr.wp.Writebacks++
		}
	}
}

// branch runs the real predictor tables functionally: conditional branches
// predict and resolve, unconditional ones shift history, exactly as the
// detailed front end trains them on the correct path.
func (pr *profiler) branch(u *isa.Uop, e Exec) {
	if u.Op.IsConditional() {
		p := pr.bp.PredictDirection(e.PC)
		pr.bp.Resolve(e.PC, p, e.Taken)
		if p.Taken != e.Taken && pr.rec {
			pr.wp.Mispredicts++
		}
		return
	}
	pr.bp.NoteUnconditional()
}

// dataflow advances the virtual schedule: each uop starts when its sources
// (and, for loads, the last store to the same word) are ready and completes
// lat cycles later. The running maximum completion time is the dataflow
// critical path — a lower bound on execution with infinite resources, which
// is exactly the serialization the issue-width term cannot see.
func (pr *profiler) dataflow(u *isa.Uop, e Exec, lat [2]int64) {
	var start [2]int64
	if u.Src1 != isa.RegNone {
		start = pr.ready[u.Src1]
	}
	if u.Src2 != isa.RegNone {
		r := pr.ready[u.Src2]
		if r[0] > start[0] {
			start[0] = r[0]
		}
		if r[1] > start[1] {
			start[1] = r[1]
		}
	}
	if u.Op.IsLoad() {
		if r, ok := pr.memReady[e.EA&^7]; ok {
			if r[0] > start[0] {
				start[0] = r[0]
			}
			if r[1] > start[1] {
				start[1] = r[1]
			}
		}
	}
	comp := [2]int64{start[0] + lat[0], start[1] + lat[1]}
	if u.Op.IsStore() {
		pr.memReady[e.EA&^7] = comp
	}
	if u.HasDst() {
		pr.ready[u.Dst] = comp
	}
	if comp[0] > pr.cpMax[0] {
		pr.cpMax[0] = comp[0]
	}
	if comp[1] > pr.cpMax[1] {
		pr.cpMax[1] = comp[1]
	}
}

// clusterMisses groups the recorded DRAM misses into full-window stall
// intervals: a miss within one ROB of the current cluster's *leader* joins
// that cluster (it overlaps under the same window stall); the first miss
// beyond starts a new cluster. A new cluster whose leader lies within
// runahead reach of the previous leader is a stall runahead could have
// removed (CoveredAny), and when its static load already missed in the
// previous cluster the runahead buffer's replayed dependence chain covers
// it too (CoveredChain).
func (pr *profiler) clusterMisses() {
	wp := pr.wp
	if len(pr.misses) == 0 {
		return
	}
	reach := uint64(pr.m.reach())
	rob := uint64(pr.m.ROBSize)
	contains := func(s []int32, v int32) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	var leaderPos uint64
	var statics []int32 // static loads seen in the current cluster
	for i, mr := range pr.misses {
		if i > 0 && mr.pos-leaderPos < rob {
			if !contains(statics, mr.static) {
				statics = append(statics, mr.static)
			}
			continue
		}
		if i > 0 && mr.pos-leaderPos <= reach {
			wp.CoveredAny++
			if contains(statics, mr.static) {
				wp.CoveredChain++
			}
		}
		wp.Clusters++
		statics = append(statics[:0], mr.static)
		leaderPos = mr.pos
	}
}

// Exec aliases the interpreter's per-uop effect record.
type Exec = prog.Exec
