package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism flags constructs that make simulation results depend on
// something other than the configuration and the seed: map iteration order
// (randomized per process), wall-clock time, the shared global math/rand
// source, and floating-point accumulation inside the timing model (integral
// counters stay bit-exact; float sums invite order sensitivity under
// refactoring).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag map-order, wall-clock, global-rand and float-accumulation dependence",
	Run:  runDeterminism,
}

// simPackages are the timing-model packages where the strictest rules apply
// (float accumulation). The time.Now / global-rand rules apply to every
// internal package; range-over-map applies everywhere.
var simPackages = []string{
	"internal/core",
	"internal/cache",
	"internal/memsys",
	"internal/dram",
	"internal/bpred",
	"internal/prefetch",
	"internal/prog",
	"internal/isa",
	// The wire format must serialize identical machine states to identical
	// bytes, so the snapshot layer is held to the same determinism bar.
	"internal/snapshot",
}

func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func isSimPackage(path string) bool {
	for _, s := range simPackages {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

func isInternalPackage(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}

// randConstructors are the math/rand package-level functions that build an
// injectable source rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *Pass) {
	simPkg := isSimPackage(pass.Path)
	internal := isInternalPackage(pass.Path)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "range over %s: map iteration order is nondeterministic; traverse sorted keys instead (or //simlint:allow determinism with a justification if order cannot matter)", t)
					}
				}
			case *ast.CallExpr:
				if !internal {
					return true
				}
				fn := calleeFunc(pass, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				pkgLevel := sig != nil && sig.Recv() == nil
				switch path := fn.Pkg().Path(); {
				case path == "time" && fn.Name() == "Now" && pkgLevel:
					pass.Reportf(n.Pos(), "time.Now in simulation code: derive times from the simulated clock so runs are reproducible")
				case (path == "math/rand" || path == "math/rand/v2") && pkgLevel && !randConstructors[fn.Name()]:
					pass.Reportf(n.Pos(), "%s.%s uses the shared global source: inject a seeded *rand.Rand instead", path, fn.Name())
				}
			case *ast.AssignStmt:
				if !simPkg {
					return true
				}
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					for _, lhs := range n.Lhs {
						if isFloat(pass.Info.TypeOf(lhs)) {
							pass.Reportf(n.Pos(), "floating-point accumulation in a simulation package: keep model counters integral (accumulate in int64/uint64, convert at reporting time)")
						}
					}
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
