package simlint

import "testing"

func TestDeterminism(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/core": {"core.go": `package core

import (
	"math/rand"
	"time"
)

type C struct {
	m map[int]int
	f float64
}

func (c *C) bad() int {
	s := 0
	for k := range c.m {
		s += k
	}
	c.f += 1.5
	_ = time.Now()
	return s + rand.Intn(4)
}

func (c *C) good(r *rand.Rand) int {
	r2 := rand.New(rand.NewSource(1))
	//simlint:allow determinism -- suppression under test
	for k := range c.m {
		_ = k
	}
	return r.Intn(4) + r2.Intn(4)
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", Determinism)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{15, "map iteration order"},
		{18, "floating-point accumulation"},
		{19, "time.Now"},
		{20, "global source"},
	})
}

// TestDeterminismCoversSnapshotPackage checks the serialization layer is
// held to the strict float-accumulation tier like the timing model: the wire
// format must map identical machine states to identical bytes.
func TestDeterminismCoversSnapshotPackage(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/snapshot": {"w.go": `package snapshot

var f float64

func acc() { f += 1.5 }
`},
	}
	diags := runFixture(t, fixture, "fix/internal/snapshot", Determinism)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{5, "floating-point accumulation"},
	})
}

// TestDeterminismOutsideSimPackages checks scoping: float accumulation is
// only policed in timing-model packages, and the rand/time rules only in
// internal ones; range-over-map is flagged everywhere.
func TestDeterminismOutsideSimPackages(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/cmd/tool": {"main.go": `package main

import "time"

var f float64

func main() {
	f += 1.5
	_ = time.Now()
	for k := range map[int]int{} {
		_ = k
	}
}
`},
	}
	diags := runFixture(t, fixture, "fix/cmd/tool", Determinism)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{10, "map iteration order"},
	})
}
