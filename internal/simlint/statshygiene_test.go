package simlint

import "testing"

func TestStatsHygiene(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/stats": {"stats.go": `package stats

type Histogram struct{ Buckets []uint64 }
type Counter struct{ N int64 }

func NewHistogram() *Histogram { return &Histogram{} }
func NewCounter() *Counter     { return &Counter{} }
`},
		"fix/internal/core": {"core.go": `package core

import "fix/internal/stats"

type M struct {
	H stats.Histogram
	P *stats.Histogram
}

var bare = stats.Histogram{}
var boxed = new(stats.Counter)
var zero stats.Counter
var good = stats.NewHistogram()

//simlint:allow statshygiene -- suppression under test
var suppressed = stats.Histogram{}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", StatsHygiene)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{6, "value field"},
		{10, "bare stats.Histogram literal"},
		{11, "new(stats.Counter)"},
		{12, "zero-value stats.Counter"},
	})
}

// TestStatsHygieneCoreStatsOwnership checks the stat-ownership rule:
// core.Stats counters may be written only inside the core package — reads
// through the live pointer Core.Stats() returns are fine anywhere.
func TestStatsHygieneCoreStatsOwnership(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/core": {"core.go": `package core

type Stats struct {
	Issued   uint64
	PRFReads uint64
}

type Core struct{ st *Stats }

func (c *Core) Stats() *Stats { return c.st }

func (c *Core) issue() { c.st.Issued++ }
`},
		"fix/internal/harness": {"harness.go": `package harness

import "fix/internal/core"

func tally(c *core.Core) uint64 {
	st := c.Stats()
	st.Issued++
	st.PRFReads += 2
	st.Issued = 0
	n := st.Issued
	//simlint:allow statshygiene -- suppression under test
	st.PRFReads = 1
	return n
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/harness", StatsHygiene)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{7, "core.Stats field Issued"},
		{8, "core.Stats field PRFReads"},
		{9, "core.Stats field Issued"},
	})
	if d := runFixture(t, fixture, "fix/internal/core", StatsHygiene); len(d) != 0 {
		t.Fatalf("core package writes its own counters and should be exempt, got %v", d)
	}
}

// TestStatsHygieneExemptsStatsPackage checks the constructors' own package
// may build literals.
func TestStatsHygieneExemptsStatsPackage(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/stats": {"stats.go": `package stats

type Counter struct{ N int64 }

func NewCounter() *Counter { return &Counter{} }
`},
	}
	diags := runFixture(t, fixture, "fix/internal/stats", StatsHygiene)
	if len(diags) != 0 {
		t.Fatalf("stats package should be exempt, got %v", diags)
	}
}
