package simlint

import "testing"

func TestStatsHygiene(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/stats": {"stats.go": `package stats

type Histogram struct{ Buckets []uint64 }
type Counter struct{ N int64 }

func NewHistogram() *Histogram { return &Histogram{} }
func NewCounter() *Counter     { return &Counter{} }
`},
		"fix/internal/core": {"core.go": `package core

import "fix/internal/stats"

type M struct {
	H stats.Histogram
	P *stats.Histogram
}

var bare = stats.Histogram{}
var boxed = new(stats.Counter)
var zero stats.Counter
var good = stats.NewHistogram()

//simlint:allow statshygiene -- suppression under test
var suppressed = stats.Histogram{}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", StatsHygiene)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{6, "value field"},
		{10, "bare stats.Histogram literal"},
		{11, "new(stats.Counter)"},
		{12, "zero-value stats.Counter"},
	})
}

// TestStatsHygieneCoreStatsOwnership checks the stat-ownership rule:
// core.Stats counters may be written only inside the core package — reads
// through the live pointer Core.Stats() returns are fine anywhere.
func TestStatsHygieneCoreStatsOwnership(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/core": {"core.go": `package core

type Stats struct {
	Issued   uint64
	PRFReads uint64
}

type Core struct{ st *Stats }

func (c *Core) Stats() *Stats { return c.st }

func (c *Core) issue() { c.st.Issued++ }
`},
		"fix/internal/harness": {"harness.go": `package harness

import "fix/internal/core"

func tally(c *core.Core) uint64 {
	st := c.Stats()
	st.Issued++
	st.PRFReads += 2
	st.Issued = 0
	n := st.Issued
	//simlint:allow statshygiene -- suppression under test
	st.PRFReads = 1
	return n
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/harness", StatsHygiene)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{7, "core.Stats field Issued"},
		{8, "core.Stats field PRFReads"},
		{9, "core.Stats field Issued"},
	})
	if d := runFixture(t, fixture, "fix/internal/core", StatsHygiene); len(d) != 0 {
		t.Fatalf("core package writes its own counters and should be exempt, got %v", d)
	}
}

// TestStatsHygieneMetricsInstruments checks the telemetry extension of the
// ownership rule: metrics instruments must come from a Registry (which is
// what exporters walk), never from bare literals or zero values. The metrics
// package itself is exempt like stats is.
func TestStatsHygieneMetricsInstruments(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/metrics": {"metrics.go": `package metrics

type Counter struct{ v uint64 }
type Gauge struct{ v int64 }

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge     { return &Gauge{} }
`},
		"fix/internal/core": {"core.go": `package core

import "fix/internal/metrics"

type prof struct {
	C metrics.Counter
	P *metrics.Counter
}

var bare = metrics.Counter{}
var boxed = new(metrics.Gauge)
var zero metrics.Gauge
var reg metrics.Registry
var good = reg.Counter("x", "help")
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", StatsHygiene)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{6, "metrics.Counter value field"},
		{10, "bare metrics.Counter literal"},
		{11, "new(metrics.Gauge)"},
		{12, "zero-value metrics.Gauge"},
	})
	if d := runFixture(t, fixture, "fix/internal/metrics", StatsHygiene); len(d) != 0 {
		t.Fatalf("metrics package should be exempt, got %v", d)
	}
}

// TestStatsHygieneExemptsStatsPackage checks the constructors' own package
// may build literals.
func TestStatsHygieneExemptsStatsPackage(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/stats": {"stats.go": `package stats

type Counter struct{ N int64 }

func NewCounter() *Counter { return &Counter{} }
`},
	}
	diags := runFixture(t, fixture, "fix/internal/stats", StatsHygiene)
	if len(diags) != 0 {
		t.Fatalf("stats package should be exempt, got %v", diags)
	}
}
