package simlint

import "testing"

func TestStatsHygiene(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/stats": {"stats.go": `package stats

type Histogram struct{ Buckets []uint64 }
type Counter struct{ N int64 }

func NewHistogram() *Histogram { return &Histogram{} }
func NewCounter() *Counter     { return &Counter{} }
`},
		"fix/internal/core": {"core.go": `package core

import "fix/internal/stats"

type M struct {
	H stats.Histogram
	P *stats.Histogram
}

var bare = stats.Histogram{}
var boxed = new(stats.Counter)
var zero stats.Counter
var good = stats.NewHistogram()

//simlint:allow statshygiene -- suppression under test
var suppressed = stats.Histogram{}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", StatsHygiene)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{6, "value field"},
		{10, "bare stats.Histogram literal"},
		{11, "new(stats.Counter)"},
		{12, "zero-value stats.Counter"},
	})
}

// TestStatsHygieneExemptsStatsPackage checks the constructors' own package
// may build literals.
func TestStatsHygieneExemptsStatsPackage(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/stats": {"stats.go": `package stats

type Counter struct{ N int64 }

func NewCounter() *Counter { return &Counter{} }
`},
	}
	diags := runFixture(t, fixture, "fix/internal/stats", StatsHygiene)
	if len(diags) != 0 {
		t.Fatalf("stats package should be exempt, got %v", diags)
	}
}
