// Package simlint is the repository's static-analysis pass: repo-specific
// analyzers built on go/ast and go/types only (no external dependencies),
// enforcing the properties the simulator's results depend on.
//
// Analyzers:
//
//   - determinism: flags range over map types anywhere (iteration order is
//     randomized per run), and — in simulation packages — time.Now, the
//     global math/rand source, and floating-point accumulation, all of
//     which break run-to-run reproducibility or bit-exactness.
//   - statshygiene: statistics objects (stats.Histogram, stats.Set,
//     stats.Timeline) and telemetry instruments (metrics.Counter,
//     metrics.Gauge, metrics.Histogram, metrics.Rate) must be created
//     through their registering constructors, never bare struct literals or
//     new() — constructors validate geometry and establish the registry the
//     stable stats dump and the /metrics exporters rely on.
//   - tracehygiene: every trace-event emission site must sit behind the
//     nil-tracer guard established by the observability layer, so disabled
//     tracing costs nothing on the hot path.
//
// A finding can be suppressed with a comment on the same or preceding line:
//
//	//simlint:allow determinism -- keys are sorted before use
//
// Test files are not analyzed: the analyzers police simulation code, and
// tests legitimately use fixed-seed math/rand and wall-clock timeouts.
package simlint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All lists every analyzer, in reporting order.
var All = []*Analyzer{Determinism, StatsHygiene, TraceHygiene}

// Pass carries one (package, analyzer) run; analyzers report through it.
type Pass struct {
	*Package
	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos unless a //simlint:allow comment
// suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether an allow comment for this pass's analyzer sits
// on the finding's line or the line above it.
func (p *Pass) allowedAt(pos token.Position) bool {
	lines := p.allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == p.analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// collectAllows indexes every //simlint:allow comment in the package by file
// and line. The comment names one or more analyzers (comma-separated) and
// may carry a justification after "--".
func (pkg *Package) collectAllows() {
	pkg.allow = make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//simlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := pkg.allow[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					pkg.allow[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					lines[pos.Line] = append(lines[pos.Line], strings.TrimSpace(name))
				}
			}
		}
	}
}

// Run executes the analyzers over the packages and returns the findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Package: pkg, analyzer: a.Name, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
