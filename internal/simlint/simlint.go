// Package simlint is the repository's static-analysis pass: repo-specific
// analyzers built on go/ast and go/types only (no external dependencies),
// enforcing the properties the simulator's results depend on.
//
// Expression-level analyzers (since PR 2):
//
//   - determinism: flags range over map types anywhere (iteration order is
//     randomized per run), and — in simulation packages — time.Now, the
//     global math/rand source, and floating-point accumulation, all of
//     which break run-to-run reproducibility or bit-exactness.
//   - statshygiene: statistics objects (stats.Histogram, stats.Set,
//     stats.Timeline) and telemetry instruments (metrics.Counter,
//     metrics.Gauge, metrics.Histogram, metrics.Rate) must be created
//     through their registering constructors, never bare struct literals or
//     new() — constructors validate geometry and establish the registry the
//     stable stats dump and the /metrics exporters rely on.
//   - tracehygiene: every trace-event emission site must sit behind the
//     nil-tracer guard established by the observability layer, so disabled
//     tracing costs nothing on the hot path.
//
// Contract analyzers (whole-program checks over the type-checked tree):
//
//   - snapshotcomplete: for every type with the Snapshotter shape (paired
//     SnapshotTo/RestoreFrom methods taking *snapshot.Writer / *snapshot.Reader),
//     every struct field is either referenced by the snapshot/restore bodies
//     (transitively, through same-package helpers) or explicitly waived with
//     //simlint:nosnapshot <reason>. Catches the "new field, stale
//     checkpoint" bug class.
//   - fingerprint: every core.Config field is folded into the config
//     fingerprint unless configFingerprint canonicalizes it away, and every
//     canonicalized-away field carries //simlint:nofingerprint <reason> at
//     its declaration. Also flags Config fields whose types cannot
//     fingerprint stably (pointers, funcs, chans, interfaces).
//   - hotpathalloc: functions annotated //simlint:hotpath are verified
//     allocation-free by driving `go build -gcflags=-m` and cross-checking
//     the compiler's escape diagnostics against the annotated body spans.
//   - lockdiscipline: in internal/telemetry, internal/metrics, and
//     internal/harness, no mutex may be held across a channel send, a call
//     through a function value (user callback), or an http.ResponseWriter
//     write; and a field accessed through sync/atomic must never also be
//     read or written plainly.
//
// A finding can be suppressed with a comment on the same or preceding line,
// and the justification after "--" is mandatory:
//
//	//simlint:allow determinism -- keys are sorted before use
//
// Suppression hygiene is itself checked: an allow comment with no reason, an
// allow that suppresses nothing, a stale nosnapshot/nofingerprint waiver, or
// an unknown directive are all findings (analyzer name "suppression"), and
// they cannot themselves be suppressed.
//
// Test files are not analyzed: the analyzers police simulation code, and
// tests legitimately use fixed-seed math/rand and wall-clock timeouts.
package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All lists every analyzer, in reporting order.
var All = []*Analyzer{
	Determinism,
	StatsHygiene,
	TraceHygiene,
	SnapshotComplete,
	Fingerprint,
	HotPathAlloc,
	LockDiscipline,
}

// Options configures a Run.
type Options struct {
	// Root is the module root directory. hotpathalloc shells out to
	// `go build -gcflags=-m` there to obtain the compiler's escape
	// diagnostics; with Root empty that step is skipped (fixture mode).
	Root string
}

// directive is one parsed //simlint:<verb> comment.
type directive struct {
	verb   string   // "allow", "nosnapshot", "nofingerprint", "hotpath", or unknown
	names  []string // allow only: analyzer names
	reason string   // justification text
	pos    token.Position
	// ownLine is set when the comment has no code before it on its line. A
	// trailing directive governs only its own line; an own-line directive
	// governs the line below it. Without the distinction, a trailing
	// directive on one struct field would bleed onto the next field.
	ownLine bool
	used    bool // a finding was suppressed / a contract consumed the waiver
}

// state carries one whole Run: every package, the merged directive index,
// and the findings. Analyzers see it through Pass.
type state struct {
	opts Options
	ran  map[string]bool // analyzer names in this run
	// dirs merges every package's directives: file -> line -> directives.
	// Lookups (suppression, waivers) work cross-package through it.
	dirs map[string]map[int][]*directive
	// analyzedFiles holds every filename in the analyzed set, so analyzers
	// can tell "no directive collected" from "file never looked at".
	analyzedFiles map[string]bool
	hot           []hotSpan // //simlint:hotpath body spans, filled by hotpathalloc
	// fpAnchor is set by fingerprint when it finds core.Config and its
	// configFingerprint anchor; nofingerprint staleness is only judged when
	// the anchor was actually in the analyzed set.
	fpAnchor bool
	diags    []Diagnostic
}

// hotSpan is one annotated hot-path function body.
type hotSpan struct {
	file       string // filename as recorded in the FileSet
	start, end int    // inclusive line range of the body
	fn         string // qualified name, for messages
	pkgPath    string // import path, for the go build invocation
}

// Pass carries one (package, analyzer) run; analyzers report through it.
type Pass struct {
	*Package
	analyzer string
	st       *state
}

// Reportf records a finding at pos unless a //simlint:allow comment
// suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.st.report(p.analyzer, p.Fset.Position(pos), format, args...)
}

// report records a finding unless an allow directive suppresses it.
func (st *state) report(analyzer string, pos token.Position, format string, args ...any) {
	if st.allowed(analyzer, pos) {
		return
	}
	st.diags = append(st.diags, Diagnostic{
		Pos:      pos,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowed reports whether an allow directive for the analyzer sits on the
// finding's line or the line above it, marking any match as used.
func (st *state) allowed(analyzer string, pos token.Position) bool {
	lines := st.dirs[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.verb != "allow" || !d.governs(pos.Line) {
				continue
			}
			for _, name := range d.names {
				if name == analyzer || name == "all" {
					d.used = true
					return true
				}
			}
		}
	}
	return false
}

// governs reports whether the directive applies to the given line: its own
// line always; the line below only when the directive stands on a line of
// its own.
func (d *directive) governs(line int) bool {
	return d.pos.Line == line || (d.ownLine && d.pos.Line == line-1)
}

// directiveAt returns the directive with the given verb on pos's line or the
// line above it, or nil. Analyzers mark the result used themselves.
func (p *Pass) directiveAt(pos token.Pos, verb string) *directive {
	position := p.Fset.Position(pos)
	lines := p.st.dirs[position.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range lines[line] {
			if d.verb == verb && d.governs(position.Line) {
				return d
			}
		}
	}
	return nil
}

// collectDirectives parses every //simlint: comment in the package into the
// per-file index and the in-source-order list.
func (pkg *Package) collectDirectives() {
	pkg.dirs = make(map[string]map[int][]*directive)
	for _, f := range pkg.Files {
		codeLines := collectCodeLines(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//simlint:")
				if !ok {
					continue
				}
				body, reason, hasReason := strings.Cut(rest, "--")
				fields := strings.Fields(body)
				if len(fields) == 0 {
					continue
				}
				d := &directive{
					verb:   fields[0],
					pos:    pkg.Fset.Position(c.Pos()),
					reason: strings.TrimSpace(reason),
				}
				d.ownLine = !codeLines[d.pos.Line]
				switch d.verb {
				case "allow":
					// //simlint:allow name1,name2 -- reason
					if len(fields) > 1 {
						for _, name := range strings.Split(fields[1], ",") {
							d.names = append(d.names, strings.TrimSpace(name))
						}
					}
				case "nosnapshot", "nofingerprint":
					// //simlint:nosnapshot reason text ("--" optional)
					if !hasReason {
						d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
					}
				}
				lines := pkg.dirs[d.pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					pkg.dirs[d.pos.Filename] = lines
				}
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
				pkg.dirList = append(pkg.dirList, d)
			}
		}
	}
}

// collectCodeLines marks every line holding a non-comment token, so
// directive collection can tell trailing comments from own-line ones
// (comments never appear in the Inspect walk).
func collectCodeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.Ident, *ast.BasicLit:
			lines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	return lines
}

// Run executes the analyzers over the packages, then the hotpathalloc escape
// step and suppression hygiene, and returns the findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	st := &state{
		opts:          opts,
		ran:           make(map[string]bool),
		dirs:          make(map[string]map[int][]*directive),
		analyzedFiles: make(map[string]bool),
	}
	for _, a := range analyzers {
		st.ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		//simlint:allow determinism -- index merge only; findings are sorted before output
		for file, lines := range pkg.dirs {
			st.dirs[file] = lines
		}
		for _, f := range pkg.Files {
			st.analyzedFiles[pkg.Fset.Position(f.Package).Filename] = true
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Package: pkg, analyzer: a.Name, st: st})
		}
	}
	if st.ran[HotPathAlloc.Name] && opts.Root != "" && len(st.hot) > 0 {
		if err := st.checkEscapes(); err != nil {
			return nil, err
		}
	}
	st.hygiene(pkgs)
	sort.Slice(st.diags, func(i, j int) bool {
		a, b := st.diags[i], st.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return st.diags, nil
}

// checkEscapes drives `go build -gcflags=-m` over the packages that contain
// hot-path annotations and reports every escape-analysis diagnostic that
// lands inside an annotated body span.
func (st *state) checkEscapes() error {
	var paths []string
	seenPkg := make(map[string]bool)
	for _, h := range st.hot {
		if !seenPkg[h.pkgPath] {
			seenPkg[h.pkgPath] = true
			paths = append(paths, h.pkgPath)
		}
	}
	args := append([]string{"build", "-gcflags=-m"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = st.opts.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("hotpathalloc: go build -gcflags=-m failed: %v\n%s", err, out)
	}
	seenDiag := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		file, lno, col, msg, ok := parseBuildDiag(line)
		if !ok {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(st.opts.Root, file)
		}
		for i := range st.hot {
			h := &st.hot[i]
			if file != h.file || lno < h.start || lno > h.end {
				continue
			}
			pos := token.Position{Filename: file, Line: lno, Column: col}
			key := fmt.Sprintf("%s:%d:%d %s", file, lno, col, msg)
			if !seenDiag[key] {
				seenDiag[key] = true
				st.report(HotPathAlloc.Name, pos,
					"allocation in hot path %s: %s", h.fn, msg)
			}
			break
		}
	}
	return nil
}

// parseBuildDiag splits a `file.go:line:col: message` compiler diagnostic.
func parseBuildDiag(line string) (file string, lno, col int, msg string, ok bool) {
	if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, " ") {
		return "", 0, 0, "", false
	}
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, 0, "", false
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &lno); err != nil {
		return "", 0, 0, "", false
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &col); err != nil {
		return "", 0, 0, "", false
	}
	return parts[0], lno, col, strings.TrimSpace(parts[3]), true
}

// hygiene reports directive problems: suppressions without a reason,
// suppressions that suppressed nothing, stale waivers, and unknown verbs.
// These findings carry the analyzer name "suppression" and are not
// themselves suppressible.
func (st *state) hygiene(pkgs []*Package) {
	known := map[string]bool{"all": true}
	for _, a := range All {
		known[a.Name] = true
	}
	emit := func(pos token.Position, format string, args ...any) {
		st.diags = append(st.diags, Diagnostic{
			Pos:      pos,
			Analyzer: "suppression",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range pkgs {
		for _, d := range pkg.dirList {
			switch d.verb {
			case "allow":
				if len(d.names) == 0 {
					emit(d.pos, "//simlint:allow names no analyzers")
					continue
				}
				if d.reason == "" {
					emit(d.pos, "suppression has no justification: write //simlint:allow %s -- <reason>",
						strings.Join(d.names, ","))
					continue
				}
				ranAll := true
				for _, name := range d.names {
					if !known[name] {
						emit(d.pos, "suppression names unknown analyzer %q", name)
						ranAll = false
						continue
					}
					if name == "all" {
						for _, a := range All {
							ranAll = ranAll && st.ran[a.Name]
						}
					} else {
						ranAll = ranAll && st.ran[name]
					}
				}
				if ranAll && !d.used {
					emit(d.pos, "unused suppression: no %s finding here — remove the //simlint:allow",
						strings.Join(d.names, ","))
				}
			case "nosnapshot":
				if d.reason == "" {
					emit(d.pos, "waiver has no reason: write //simlint:nosnapshot <why this field is not snapshotted>")
					continue
				}
				if st.ran[SnapshotComplete.Name] && !d.used {
					emit(d.pos, "stale //simlint:nosnapshot: no snapshot contract covers this line — remove the waiver")
				}
			case "nofingerprint":
				if d.reason == "" {
					emit(d.pos, "waiver has no reason: write //simlint:nofingerprint <why this field is excluded>")
					continue
				}
				if st.ran[Fingerprint.Name] && st.fpAnchor && !d.used {
					emit(d.pos, "stale //simlint:nofingerprint: the config fingerprint does not exclude this field — remove the waiver")
				}
			case "hotpath":
				if st.ran[HotPathAlloc.Name] && !d.used {
					emit(d.pos, "//simlint:hotpath must sit on a function declaration (doc comment or the line above func)")
				}
			default:
				emit(d.pos, "unknown simlint directive %q (known: allow, nosnapshot, nofingerprint, hotpath)", d.verb)
			}
		}
	}
}
