package simlint

import (
	"go/ast"
	"go/types"
)

// Fingerprint audits the snapshot configuration fingerprint. The anchor is
// core's configFingerprint method, which copies the Config, canonicalizes
// away the fields that must not affect snapshot compatibility (assignments
// like `cfg.Scheduler = SchedEvent`), and hashes the %+v rendering of the
// rest. The contract:
//
//   - Every field the anchor canonicalizes away must carry a
//     //simlint:nofingerprint <reason> waiver at its declaration, so the
//     exclusion list is documented where the field lives.
//   - A //simlint:nofingerprint waiver on a field the anchor does NOT
//     exclude is stale and flagged (via suppression hygiene).
//   - Every non-excluded Config field must have a type that %+v renders
//     stably: pointers, funcs, chans, interfaces, and unsafe.Pointers
//     render addresses or dynamic types and are flagged.
var Fingerprint = &Analyzer{
	Name: "fingerprint",
	Doc:  "every core.Config field enters the fingerprint or is a documented exclusion",
	Run:  runFingerprint,
}

func runFingerprint(pass *Pass) {
	if pass.Types.Name() != "core" {
		return
	}
	cfgObj, ok := pass.Types.Scope().Lookup("Config").(*types.TypeName)
	if !ok {
		return
	}
	cfgNamed, ok := cfgObj.Type().(*types.Named)
	if !ok {
		return
	}
	cfgStruct, ok := cfgNamed.Underlying().(*types.Struct)
	if !ok {
		return
	}
	anchor := findConfigFingerprint(pass)
	if anchor == nil {
		pass.Reportf(cfgObj.Pos(),
			"core.Config exists but no configFingerprint method was found: the snapshot fingerprint contract has no anchor")
		return
	}
	pass.st.fpAnchor = true

	// Fields canonicalized away by the anchor: assignments whose LHS is a
	// selector chain rooted at a Config-typed variable.
	excluded := make(map[*types.Var]bool)
	var order []*types.Var
	assignPos := make(map[*types.Var]ast.Node)
	ast.Inspect(anchor.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			fld := configField(pass, lhs, cfgNamed)
			if fld == nil {
				continue
			}
			if !excluded[fld] {
				excluded[fld] = true
				order = append(order, fld)
				assignPos[fld] = assign
			}
		}
		return true
	})

	// Each excluded field's declaration must carry a nofingerprint waiver.
	// Fields declared in packages outside the analyzed set (possible when
	// linting a subset, e.g. ./internal/core alone while the exclusion
	// reaches into dram's nested config) are skipped: their directives were
	// never collected, so absence proves nothing.
	for _, fld := range order {
		d := pass.directiveAt(fld.Pos(), "nofingerprint")
		if d != nil {
			d.used = true
			continue
		}
		if !pass.st.analyzedFiles[pass.Fset.Position(fld.Pos()).Filename] {
			continue
		}
		pass.Reportf(assignPos[fld].Pos(),
			"configFingerprint excludes %s.%s but its declaration carries no //simlint:nofingerprint waiver (add one at %s)",
			fieldOwnerName(fld), fld.Name(), pass.Fset.Position(fld.Pos()))
	}

	// Kind safety: non-excluded fields must fingerprint stably under %+v.
	seen := make(map[*types.Struct]bool)
	checkFingerprintKinds(pass, cfgStruct, "Config", excluded, seen)
}

// findConfigFingerprint locates the configFingerprint method declaration.
func findConfigFingerprint(pass *Pass) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Name.Name == "configFingerprint" && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// configField resolves an assignment LHS like cfg.Mem.DRAM.Reference to the
// final field var, when the selector chain is rooted at a variable whose
// type is the Config named type.
func configField(pass *Pass, lhs ast.Expr, cfgNamed *types.Named) *types.Var {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	root := sel.X
	for {
		inner, ok := ast.Unparen(root).(*ast.SelectorExpr)
		if !ok {
			break
		}
		root = inner.X
	}
	if t := pass.Info.TypeOf(root); t == nil || !sameNamed(deref(t), cfgNamed) {
		return nil
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	fld, _ := s.Obj().(*types.Var)
	return fld
}

// fieldOwnerName names the struct type a field belongs to, best-effort, for
// messages.
func fieldOwnerName(fld *types.Var) string {
	if pkg := fld.Pkg(); pkg != nil {
		return pkg.Name() + " config"
	}
	return "config"
}

// checkFingerprintKinds walks the Config struct tree and flags non-excluded
// fields whose types render unstably under %+v.
func checkFingerprintKinds(pass *Pass, st *types.Struct, path string,
	excluded map[*types.Var]bool, seen map[*types.Struct]bool) {
	if seen[st] {
		return
	}
	seen[st] = true
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if excluded[fld] || fld.Name() == "_" {
			continue
		}
		fpath := path + "." + fld.Name()
		if bad := unstableKind(fld.Type(), make(map[types.Type]bool)); bad != "" {
			pass.Reportf(fld.Pos(),
				"%s has kind %s, which does not fingerprint stably under %%+v: exclude it in configFingerprint and waive it with //simlint:nofingerprint, or change its type",
				fpath, bad)
			continue
		}
		if sub, ok := deref(fld.Type().Underlying()).Underlying().(*types.Struct); ok {
			checkFingerprintKinds(pass, sub, fpath, excluded, seen)
		}
	}
}

// unstableKind returns the offending kind name if t (recursively) contains a
// type that renders addresses or dynamic values under %+v, else "".
func unstableKind(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return "pointer"
	case *types.Signature:
		return "func"
	case *types.Chan:
		return "chan"
	case *types.Interface:
		return "interface"
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "unsafe.Pointer"
		}
	case *types.Map:
		if bad := unstableKind(u.Key(), seen); bad != "" {
			return bad
		}
		return unstableKind(u.Elem(), seen)
	case *types.Slice:
		return unstableKind(u.Elem(), seen)
	case *types.Array:
		return unstableKind(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bad := unstableKind(u.Field(i).Type(), seen); bad != "" {
				return bad
			}
		}
	}
	return ""
}
