package simlint

import (
	"strings"
	"testing"
)

// snapFixtureLib is the minimal snapshot package the Snapshotter shape is
// keyed on: methods taking *snapshot.Writer / *snapshot.Reader.
var snapFixtureLib = map[string]string{"snapshot.go": `package snapshot

type Writer struct{}

func (w *Writer) I64(int64) {}

type Reader struct{}

func (r *Reader) I64() int64 { return 0 }
`}

// snapFixtureState exercises coverage through a helper, waived fields,
// stale waivers, and the trailing-waiver scoping rule (y's waiver must not
// bleed onto z one line below).
const snapFixtureState = `package state

import "fix/internal/snapshot"

type Machine struct {
	a       int
	b       int
	scratch int //simlint:nosnapshot per-cycle scratch; zero between cycles
	stale   int //simlint:nosnapshot claims exclusion but is serialized below
}

func (m *Machine) SnapshotTo(w *snapshot.Writer) {
	w.I64(int64(m.a))
	w.I64(int64(m.b))
	w.I64(int64(m.stale))
}

func (m *Machine) RestoreFrom(r *snapshot.Reader) {
	m.load(r)
}

func (m *Machine) load(r *snapshot.Reader) {
	m.a = int(r.I64())
	m.b = int(r.I64())
	m.stale = int(r.I64())
}

type Uncovered struct {
	x int
	y int //simlint:nosnapshot not serialized by design
	z int
}

func (u *Uncovered) SnapshotTo(w *snapshot.Writer)  { w.I64(int64(u.x)) }
func (u *Uncovered) RestoreFrom(r *snapshot.Reader) { u.x = int(r.I64()) }
`

func TestSnapshotComplete(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/snapshot": snapFixtureLib,
		"fix/internal/state":    {"state.go": snapFixtureState},
	}
	diags := runFixture(t, fixture, "fix/internal/state", SnapshotComplete)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{9, "stale //simlint:nosnapshot: field Machine.stale IS referenced"},
		{31, "field Uncovered.z is not referenced by SnapshotTo/RestoreFrom"},
	})
}

// TestSnapshotCompleteSeededMutation drops one field's serialization lines
// from the fixture — the checkpoint-truncation bug this analyzer exists to
// catch — and asserts the field is flagged.
func TestSnapshotCompleteSeededMutation(t *testing.T) {
	mutated := snapFixtureState
	for _, line := range []string{"\tw.I64(int64(m.b))\n", "\tm.b = int(r.I64())\n"} {
		if !strings.Contains(mutated, line) {
			t.Fatalf("fixture drifted: %q not found", line)
		}
		mutated = strings.Replace(mutated, line, "", 1)
	}
	fixture := map[string]map[string]string{
		"fix/internal/snapshot": snapFixtureLib,
		"fix/internal/state":    {"state.go": mutated},
	}
	diags := runFixture(t, fixture, "fix/internal/state", SnapshotComplete)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "field Machine.b is not referenced") {
			found = true
		}
	}
	if !found {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatal("dropping Machine.b's serialization was not flagged")
	}
}

// TestSnapshotCompleteReflection checks that a type serializing itself by
// reflection (like core.Stats) counts as fully covered — and that the
// reflective blanket is scoped to the type doing the reflecting, not every
// snapshotter whose closure reaches the helper.
func TestSnapshotCompleteReflection(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/snapshot": snapFixtureLib,
		"fix/internal/state": {"state.go": `package state

import (
	"reflect"

	"fix/internal/snapshot"
)

type Blob struct {
	p int
	q int
}

func (b *Blob) SnapshotTo(w *snapshot.Writer)  { _ = reflect.ValueOf(b) }
func (b *Blob) RestoreFrom(r *snapshot.Reader) { _ = reflect.ValueOf(b) }

type Outer struct {
	blob *Blob
	gap  int
}

func (o *Outer) SnapshotTo(w *snapshot.Writer)  { o.blob.SnapshotTo(w) }
func (o *Outer) RestoreFrom(r *snapshot.Reader) { o.blob.RestoreFrom(r) }
`},
	}
	diags := runFixture(t, fixture, "fix/internal/state", SnapshotComplete)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		// Blob's fields are reflectively covered; Outer must not inherit
		// Blob's reflection — its own unserialized field is still caught.
		{19, "field Outer.gap is not referenced"},
	})
}
