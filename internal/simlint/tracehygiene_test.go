package simlint

import "testing"

func TestTraceHygiene(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/trace": {"trace.go": `package trace

type Event struct{ Name string }

type Sink interface {
	Emit(*Event)
}
`},
		"fix/internal/core": {"core.go": `package core

import "fix/internal/trace"

type Core struct {
	tracer trace.Sink
}

// emit is guarded by an early return: legal.
func (c *Core) emit(ev *trace.Event) {
	if c.tracer == nil {
		return
	}
	c.tracer.Emit(ev)
}

func (c *Core) bad(ev *trace.Event) {
	c.tracer.Emit(ev)
	c.emit(ev)
}

func (c *Core) good(ev *trace.Event) {
	if c.tracer != nil {
		c.emit(ev)
		c.tracer.Emit(ev)
	}
	if tr := c.tracer; tr != nil {
		tr.Emit(ev)
	}
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", TraceHygiene)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{18, "unguarded trace emission"},
		{19, "unguarded trace emission"},
	})
}

// TestTraceHygieneExemptsTracePackage checks the sink implementations may
// emit freely (MultiSink fan-out has no tracer to nil-check).
func TestTraceHygieneExemptsTracePackage(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/trace": {"trace.go": `package trace

type Event struct{ Name string }

type Sink interface {
	Emit(*Event)
}

type MultiSink []Sink

func (m MultiSink) Emit(ev *Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/trace", TraceHygiene)
	if len(diags) != 0 {
		t.Fatalf("trace package should be exempt, got %v", diags)
	}
}
