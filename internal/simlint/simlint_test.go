package simlint

import (
	"os"
	"strings"
	"testing"
)

// runFixture type-checks an in-memory module and runs one analyzer over the
// target package, returning the diagnostics.
func runFixture(t *testing.T, pkgs map[string]map[string]string, target string, a *Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := CheckFixture(pkgs, target)
	if err != nil {
		t.Fatalf("CheckFixture: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a}, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

// wantDiags asserts that the diagnostics hit exactly the expected lines (in
// the target package's single file) with messages containing the given
// fragments, in order.
func wantDiags(t *testing.T, diags []Diagnostic, want []struct {
	Line     int
	Fragment string
}) {
	t.Helper()
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, d := range diags {
		if d.Pos.Line != want[i].Line {
			t.Errorf("diag %d at line %d, want line %d: %s", i, d.Pos.Line, want[i].Line, d)
		}
		if !strings.Contains(d.Message, want[i].Fragment) {
			t.Errorf("diag %d message %q does not contain %q", i, d.Message, want[i].Fragment)
		}
	}
}

// TestRepoPassesClean runs every analyzer over the real repository — the
// acceptance gate: the simulator's own code must carry no unsuppressed
// findings.
func TestRepoPassesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	diags, err := Run(pkgs, All, Options{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
