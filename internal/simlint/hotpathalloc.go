package simlint

import (
	"go/ast"
)

// HotPathAlloc verifies that functions annotated //simlint:hotpath (in the
// doc comment or on the line above the declaration) stay allocation-free.
// The analyzer collects the annotated body spans; after all packages run,
// the engine drives `go build -gcflags=-m` over the annotated packages and
// reports every "escapes to heap" / "moved to heap" diagnostic that lands
// inside a span. The check is deliberately shallow: an allocation inside a
// callee is reported at the callee's own source position, so annotate the
// helpers a hot path leans on rather than expecting the span to cover them.
//
// With Options.Root empty (fixture mode) only the annotation bookkeeping
// runs; the escape step needs a real module on disk.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//simlint:hotpath functions are verified allocation-free via go build -gcflags=-m",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			d := hotpathDirective(pass, fd)
			if d == nil {
				continue
			}
			d.used = true
			start := pass.Fset.Position(fd.Body.Lbrace)
			end := pass.Fset.Position(fd.Body.Rbrace)
			pass.st.hot = append(pass.st.hot, hotSpan{
				file:    start.Filename,
				start:   start.Line,
				end:     end.Line,
				fn:      funcDisplayName(fd),
				pkgPath: pass.Path,
			})
		}
	}
}

// hotpathDirective finds a //simlint:hotpath annotation attached to fd: on
// any line of its doc comment or on the line directly above the func
// keyword.
func hotpathDirective(pass *Pass, fd *ast.FuncDecl) *directive {
	if d := pass.directiveAt(fd.Pos(), "hotpath"); d != nil {
		return d
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if d := pass.directiveAt(c.Pos(), "hotpath"); d != nil {
				return d
			}
		}
	}
	return nil
}

// funcDisplayName renders "(*Core).Cycle" / "Tick" style names for messages.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
