package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TraceHygiene enforces the zero-cost-when-off contract of the trace layer:
// every event-emission call site must be dominated by a nil check on the
// tracer/sink, either an enclosing `if <tracer> != nil { ... }` or a
// preceding `if <tracer> == nil { return }` early-out in the same function.
// Emission sites are calls to Emit on a sink/tracer-typed value (or a field
// named sink/tracer), and calls to an unexported emit method on a type
// carrying a tracer field. The trace package itself — the sink
// implementations — is exempt.
var TraceHygiene = &Analyzer{
	Name: "tracehygiene",
	Doc:  "trace emissions must be guarded by the nil-tracer check",
	Run:  runTraceHygiene,
}

func runTraceHygiene(pass *Pass) {
	if hasPathSuffix(pass.Path, "internal/trace") {
		return
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || !isEmissionSite(pass, call) {
				return true
			}
			if !guardedByNilCheck(pass, stack) {
				pass.Reportf(call.Pos(), "unguarded trace emission: wrap the call in `if <tracer> != nil { ... }` (or early-return when nil) so disabled tracing stays off the hot path")
			}
			return true
		})
	}
}

// isEmissionSite recognizes the two emission forms: X.Emit(...) where X is
// tracer-ish, and X.emit(...) where X's type carries a tracer field (the
// core's internal wrapper).
func isEmissionSite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Emit":
		return isTracerishExpr(pass, sel.X)
	case "emit":
		return hasTracerField(pass.Info.TypeOf(sel.X))
	}
	return false
}

// isTracerishExpr reports whether expr denotes the tracing machinery: a
// selector of a field named sink/tracer, or any expression whose type is
// tracer-ish.
func isTracerishExpr(pass *Pass, expr ast.Expr) bool {
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		if name := sel.Sel.Name; name == "sink" || name == "tracer" || name == "Sink" || name == "Tracer" {
			return true
		}
	}
	return isTracerishType(pass.Info.TypeOf(expr))
}

// isTracerishType matches *Tracer / Tracer and any named type ending in
// "Sink" (the trace.Sink interface and its implementations).
func isTracerishType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Tracer" || strings.HasSuffix(name, "Sink")
}

// hasTracerField reports whether t (or its pointee) is a struct with a
// tracer-ish field — the shape of the core, whose emit wrapper must itself
// be called under guard.
func hasTracerField(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if (f.Name() == "tracer" || f.Name() == "sink") && isTracerishType(f.Type()) {
			return true
		}
	}
	return false
}

// guardedByNilCheck reports whether the innermost emission (stack's last
// node) is dominated by a tracer nil check: an ancestor if whose condition
// establishes non-nilness and whose then-branch contains the call, or an
// earlier statement in an enclosing block of the form
// `if <tracer> == nil { ...return }`.
func guardedByNilCheck(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if ifs, ok := stack[i].(*ast.IfStmt); ok &&
			i+1 < len(stack) && stack[i+1] == ast.Node(ifs.Body) &&
			condHasNilCompare(pass, ifs.Cond, token.NEQ) {
			return true
		}
		blk, ok := stack[i].(*ast.BlockStmt)
		if !ok || i+1 >= len(stack) {
			continue
		}
		inner := stack[i+1]
		for _, s := range blk.List {
			if ast.Node(s) == inner {
				break
			}
			if ifs, ok := s.(*ast.IfStmt); ok &&
				condHasNilCompare(pass, ifs.Cond, token.EQL) &&
				endsInReturn(ifs.Body) {
				return true
			}
		}
	}
	return false
}

// condHasNilCompare walks cond looking for `<tracer-ish> <op> nil`.
func condHasNilCompare(pass *Pass, cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		x, y := be.X, be.Y
		if isNilIdent(y) && isTracerishExpr(pass, x) {
			found = true
		}
		if isNilIdent(x) && isTracerishExpr(pass, y) {
			found = true
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func endsInReturn(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}
