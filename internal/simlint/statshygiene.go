package simlint

import (
	"go/ast"
	"go/types"
)

// StatsHygiene enforces constructor discipline for statistics objects: a
// stats.Histogram built as a bare literal skips the geometry validation in
// NewHistogram, and value declarations produce unregistered zero-value
// instances whose methods misbehave. Every instance must come from the
// registering constructor (stats.NewHistogram, stats.NewSet,
// stats.NewTimeline). The stats package itself — where the constructors
// live — is exempt.
//
// It also enforces stat ownership: core.Stats counters are mutable only
// inside the core package. Core.Stats() hands out a live pointer so callers
// can read results cheaply, but a write through it from outside — a harness
// "adjusting" a counter, a test fudging a baseline — silently corrupts the
// numbers every downstream table is built from. The scheduler rewrite moved
// counter bumps around (issue accounting now lives in the shared issue()
// path); this rule pins where such bumps are ever allowed to live.
var StatsHygiene = &Analyzer{
	Name: "statshygiene",
	Doc:  "stats objects and metrics instruments must be built with their registering constructors; core.Stats fields are written only by core",
	Run:  runStatsHygiene,
}

// constructorOnly lists, per owning package, the types that must come from a
// registering constructor. The stats types validate their geometry there;
// the metrics instruments are live registry entries — a bare metrics.Counter
// is invisible to every exporter and violates the same ownership rule the
// stats dump relies on.
var constructorOnly = map[string]map[string]string{
	"stats": {
		"Histogram": "stats.NewHistogram",
		"Set":       "stats.NewSet",
		"Counter":   "stats.NewCounter",
		"Timeline":  "stats.NewTimeline",
	},
	"metrics": {
		"Counter":   "Registry.Counter",
		"Gauge":     "Registry.Gauge",
		"Histogram": "Registry.Histogram",
		"Rate":      "Registry.Rate",
	},
}

func runStatsHygiene(pass *Pass) {
	if _, owns := constructorOnly[pass.Types.Name()]; owns {
		return
	}
	ownStats := pass.Types.Name() == "core"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if ownStats {
					return true
				}
				for _, lhs := range n.Lhs {
					if field, ok := coreStatsField(pass, lhs); ok {
						pass.Reportf(lhs.Pos(), "write to core.Stats field %s outside the core package: counters are owned by the simulation kernel; read them, don't adjust them", field)
					}
				}
			case *ast.IncDecStmt:
				if ownStats {
					return true
				}
				if field, ok := coreStatsField(pass, n.X); ok {
					pass.Reportf(n.Pos(), "write to core.Stats field %s outside the core package: counters are owned by the simulation kernel; read them, don't adjust them", field)
				}
			case *ast.CompositeLit:
				if name, ctor, ok := statsType(pass.Info.TypeOf(n)); ok {
					pass.Reportf(n.Pos(), "bare %s literal: construct it with %s, which validates and registers the instance", name, ctor)
				}
			case *ast.CallExpr:
				// new(stats.T)
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok || len(n.Args) != 1 {
					return true
				}
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin || id.Name != "new" {
					return true
				}
				if name, ctor, ok := statsType(pass.Info.TypeOf(n.Args[0])); ok {
					pass.Reportf(n.Pos(), "new(%s) bypasses %s: the zero value is unvalidated and unregistered", name, ctor)
				}
			case *ast.ValueSpec:
				// var h stats.T — a zero value by declaration.
				if n.Type == nil {
					return true
				}
				if name, ctor, ok := statsValueType(pass.Info.TypeOf(n.Type)); ok {
					pass.Reportf(n.Pos(), "zero-value %s declaration: declare a pointer and assign %s", name, ctor)
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if name, ctor, ok := statsValueType(pass.Info.TypeOf(field.Type)); ok {
						pass.Reportf(field.Pos(), "embedded %s value field: hold a pointer obtained from %s", name, ctor)
					}
				}
			}
			return true
		})
	}
}

// statsType matches T or *T for a constructor-only stats type.
func statsType(t types.Type) (name, ctor string, ok bool) {
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	return statsValueType(t)
}

// coreStatsField reports whether e selects a field of core.Stats (through a
// value or pointer), returning the field name.
func coreStatsField(pass *Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "core" || obj.Name() != "Stats" {
		return "", false
	}
	return sel.Sel.Name, true
}

// statsValueType matches only the value form T of a constructor-only type,
// returning its package-qualified name and constructor.
func statsValueType(t types.Type) (name, ctor string, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	pkgTypes, owns := constructorOnly[obj.Pkg().Name()]
	if !owns {
		return "", "", false
	}
	ctor, ok = pkgTypes[obj.Name()]
	return obj.Pkg().Name() + "." + obj.Name(), ctor, ok
}
