package simlint

import (
	"go/ast"
	"go/types"
)

// SnapshotComplete enforces the checkpoint contract: every struct field of a
// type implementing the Snapshotter shape (paired SnapshotTo/RestoreFrom —
// exported or not — taking *snapshot.Writer / *snapshot.Reader) must be
// referenced by both method bodies, transitively through same-package
// helpers, or carry an explicit //simlint:nosnapshot <reason> waiver on its
// declaration. A waived field that IS covered is a stale waiver and is also
// flagged. Types whose snapshot closure reaches into reflect (e.g.
// core.Stats walks itself with reflect.ValueOf) are treated as fully
// covered.
var SnapshotComplete = &Analyzer{
	Name: "snapshotcomplete",
	Doc:  "every field of a snapshottable type is serialized or explicitly waived",
	Run:  runSnapshotComplete,
}

func runSnapshotComplete(pass *Pass) {
	decls := funcDecls(pass)
	scope := pass.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		snap := snapshotMethod(named, "SnapshotTo", "snapshotTo", "Writer")
		rest := snapshotMethod(named, "RestoreFrom", "restoreFrom", "Reader")
		if snap == nil || rest == nil {
			continue
		}
		checkSnapshotter(pass, named, st, []*types.Func{snap, rest}, decls)
	}
}

// funcDecls indexes the package's function declarations by their object, so
// the coverage walk can follow calls into same-package helpers.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// snapshotMethod finds a method named expName or unexpName whose single
// parameter is a pointer to a type named paramType from a package named
// "snapshot".
func snapshotMethod(named *types.Named, expName, unexpName, paramType string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != expName && m.Name() != unexpName {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 {
			continue
		}
		ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
		if !ok {
			continue
		}
		pn, ok := ptr.Elem().(*types.Named)
		if !ok || pn.Obj().Name() != paramType {
			continue
		}
		if pkg := pn.Obj().Pkg(); pkg == nil || pkg.Name() != "snapshot" {
			continue
		}
		return m
	}
	return nil
}

// checkSnapshotter computes the set of fields of named covered by the
// closure of roots over same-package calls, then reports uncovered fields
// without waivers and stale waivers on covered fields.
func checkSnapshotter(pass *Pass, named *types.Named, st *types.Struct,
	roots []*types.Func, decls map[*types.Func]*ast.FuncDecl) {

	covered := make(map[int]bool)
	reflective := false
	visited := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		fd := decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel := pass.Info.Selections[n]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				if sameNamed(deref(sel.Recv()), named) {
					covered[sel.Index()[0]] = true
				}
			case *ast.CompositeLit:
				if t := pass.Info.TypeOf(n); t != nil && sameNamed(deref(t), named) {
					markLiteralFields(pass, n, st, covered)
				}
			case *ast.CallExpr:
				callee := calleeFunc(pass, n)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				// A reflect call covers the fields of the type whose method
				// (or a free helper) performs it — not the fields of every
				// snapshotter whose closure happens to reach it (Core's
				// snapshot calls Stats' reflective walk; that must not
				// blanket-cover Core).
				if callee.Pkg().Path() == "reflect" && reflectsOver(fn, named) {
					reflective = true
				}
				if callee.Pkg() == pass.Types && !visited[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if fld.Name() == "_" {
			continue
		}
		isCovered := covered[i] || reflective
		waiver := pass.directiveAt(fld.Pos(), "nosnapshot")
		switch {
		case isCovered && waiver != nil:
			waiver.used = true
			pass.Reportf(fld.Pos(),
				"stale //simlint:nosnapshot: field %s.%s IS referenced by the snapshot/restore path — remove the waiver",
				named.Obj().Name(), fld.Name())
		case !isCovered && waiver != nil:
			waiver.used = true
		case !isCovered && waiver == nil:
			pass.Reportf(fld.Pos(),
				"field %s.%s is not referenced by %s/%s: serialize it or waive it with //simlint:nosnapshot <reason>",
				named.Obj().Name(), fld.Name(), roots[0].Name(), roots[1].Name())
		}
	}
}

// reflectsOver reports whether a reflect call inside fn should count as
// covering named's fields: fn is a method on named, or a free function
// (which may walk any value handed to it).
func reflectsOver(fn *types.Func, named *types.Named) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if recv == nil {
		return true
	}
	return sameNamed(deref(recv.Type()), named)
}

// markLiteralFields marks fields covered by a composite literal of the
// snapshotter type: keyed elements by name, unkeyed literals in full.
func markLiteralFields(pass *Pass, lit *ast.CompositeLit, st *types.Struct, covered map[int]bool) {
	if len(lit.Elts) == 0 {
		return
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		for i := 0; i < st.NumFields(); i++ {
			covered[i] = true
		}
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == key.Name {
				covered[i] = true
			}
		}
	}
}

// sameNamed reports whether t is the named type (by type name object, so
// instantiations and the origin compare equal).
func sameNamed(t types.Type, named *types.Named) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
