package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline polices the concurrent observability layer — packages
// internal/telemetry, internal/metrics, and internal/harness — where a
// mutex guards hot shared state that simulation workers and HTTP handlers
// touch concurrently:
//
//   - Rule A (no slow or re-entrant work under a lock): while a mutex is
//     held, no channel send, no call through a function value (an injected
//     clock, a user callback, a stored closure — any of which can block or
//     re-enter the lock), and no call involving an http.ResponseWriter or
//     http.Flusher (a stalled client must never hold up the simulation).
//   - Rule B (atomic or locked, never both): a field passed by address to a
//     sync/atomic function must not also be read or written plainly
//     anywhere in the package.
//
// The held-lock tracking is a linear, path-insensitive walk: Lock/RLock
// adds the receiver expression to the held set, Unlock/RUnlock removes it,
// defer Unlock keeps it held to the end of the scope, and nested control
// flow is analyzed with a copy of the held set. Function literals are not
// entered (they run later, usually after the unlock).
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no channel sends, callbacks, or HTTP writes under a mutex; no atomic/plain mixing",
	Run:  runLockDiscipline,
}

// lockDisciplinePkgs are the concurrency-bearing packages the analyzer
// applies to.
var lockDisciplinePkgs = []string{
	"internal/telemetry",
	"internal/metrics",
	"internal/harness",
}

func runLockDiscipline(pass *Pass) {
	applies := false
	for _, p := range lockDisciplinePkgs {
		if hasPathSuffix(pass.Path, p) {
			applies = true
		}
	}
	if !applies {
		return
	}
	checkAtomicMixing(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkHeld(pass, fd.Body.List, map[string]token.Pos{})
		}
	}
}

// walkHeld processes a statement list tracking which mutexes are held.
// Nested control flow gets a copy of the held set, which keeps the walk
// conservative on the fall-through path (an unlock inside a branch does not
// clear the lock after the branch).
func walkHeld(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, locks, ok := mutexOp(pass, s.X); ok {
				if locks {
					held[key] = s.Pos()
				} else {
					delete(held, key)
				}
				continue
			}
			inspectUnderLock(pass, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to scope end; other
			// deferred work runs at return, outside this walk's scope.
			continue
		case *ast.BlockStmt:
			walkHeld(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			if s.Init != nil {
				inspectUnderLock(pass, s.Init, held)
			}
			inspectUnderLock(pass, s.Cond, held)
			walkHeld(pass, s.Body.List, copyHeld(held))
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				walkHeld(pass, e.List, copyHeld(held))
			case *ast.IfStmt:
				walkHeld(pass, []ast.Stmt{e}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				inspectUnderLock(pass, s.Init, held)
			}
			if s.Cond != nil {
				inspectUnderLock(pass, s.Cond, held)
			}
			if s.Post != nil {
				inspectUnderLock(pass, s.Post, held)
			}
			walkHeld(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			inspectUnderLock(pass, s.X, held)
			walkHeld(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				inspectUnderLock(pass, s.Tag, held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm != nil {
						inspectUnderLock(pass, cc.Comm, held)
					}
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			walkHeld(pass, []ast.Stmt{s.Stmt}, held)
		default:
			inspectUnderLock(pass, stmt, held)
		}
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	//simlint:allow determinism -- scratch set copy; never iterated for output
	for k, v := range held {
		out[k] = v
	}
	return out
}

// mutexOp recognizes m.Lock()/RLock() (locks=true) and
// m.Unlock()/RUnlock() (locks=false) where m is a sync.Mutex or
// sync.RWMutex (possibly embedded), returning the printed receiver
// expression as the held-set key.
func mutexOp(pass *Pass, expr ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false, false
	}
	recvName := ""
	if n, isNamed := deref(sig.Recv().Type()).(*types.Named); isNamed {
		recvName = n.Obj().Name()
	}
	if recvName != "Mutex" && recvName != "RWMutex" {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, true
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// inspectUnderLock flags channel sends, dynamic calls, and HTTP writes in
// node when at least one mutex is held. Function literals are not entered.
func inspectUnderLock(pass *Pass, node ast.Node, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	heldName := anyHeld(held)
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held: a full channel blocks every other holder — send after unlocking", heldName)
		case *ast.CallExpr:
			checkCallUnderLock(pass, n, heldName)
		}
		return true
	})
}

// anyHeld picks a deterministic representative from the held set for the
// message (the lexically smallest expression).
func anyHeld(held map[string]token.Pos) string {
	best := ""
	//simlint:allow determinism -- reduced to the minimum key, order-independent
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// checkCallUnderLock flags a single call made with a lock held when it is a
// call through a function value or involves an http.ResponseWriter.
func checkCallUnderLock(pass *Pass, call *ast.CallExpr, heldName string) {
	fun := ast.Unparen(call.Fun)
	// Type conversions are not calls.
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		return
	}
	if fn := calleeFunc(pass, call); fn != nil {
		// Static call: flag only HTTP-writer involvement (receiver or args).
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if isHTTPWriter(sig.Recv().Type()) {
				pass.Reportf(call.Pos(), "ResponseWriter.%s while %s is held: a stalled client must not hold the lock — copy under lock, write after", fn.Name(), heldName)
				return
			}
		}
		for _, arg := range call.Args {
			if t := pass.Info.TypeOf(arg); t != nil && isHTTPWriter(t) {
				pass.Reportf(call.Pos(), "HTTP response write while %s is held: a stalled client must not hold the lock — copy under lock, write after", heldName)
				return
			}
		}
		return
	}
	// Dynamic call: through a variable, field, or parameter of func type.
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[f.Sel]
	default:
		// Computed callee (map index, call result): still a dynamic call.
		if t := pass.Info.TypeOf(fun); t != nil {
			if _, isSig := t.Underlying().(*types.Signature); isSig {
				pass.Reportf(call.Pos(), "call through a function value while %s is held: callbacks can block or re-enter the lock — call after unlocking", heldName)
			}
		}
		return
	}
	if v, isVar := obj.(*types.Var); isVar {
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
			pass.Reportf(call.Pos(), "call through function value %q while %s is held: callbacks can block or re-enter the lock — call after unlocking", types.ExprString(fun), heldName)
		}
	}
}

// isHTTPWriter reports whether t is net/http.ResponseWriter or http.Flusher.
func isHTTPWriter(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil || pkg.Path() != "net/http" {
		return false
	}
	return n.Obj().Name() == "ResponseWriter" || n.Obj().Name() == "Flusher"
}

// checkAtomicMixing implements Rule B: fields passed by address to
// sync/atomic functions must not also be accessed plainly.
func checkAtomicMixing(pass *Pass) {
	atomicFields := make(map[*types.Var]bool)
	type span struct{ lo, hi token.Pos }
	var atomicArgSpans []span
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := addressedVar(pass, un.X); v != nil {
					atomicFields[v] = true
					atomicArgSpans = append(atomicArgSpans, span{un.Pos(), un.End()})
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range atomicArgSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var v *types.Var
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel := pass.Info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					v, _ = sel.Obj().(*types.Var)
				}
			case *ast.Ident:
				v, _ = pass.Info.Uses[n].(*types.Var)
			}
			if v == nil || !atomicFields[v] || inAtomicArg(n.Pos()) {
				return true
			}
			pass.Reportf(n.Pos(), "%s is accessed plainly but also through sync/atomic: pick one — plain access races with the atomic path", v.Name())
			return false
		})
	}
}

// addressedVar resolves &expr's operand to a struct field or variable.
func addressedVar(pass *Pass, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
	case *ast.Ident:
		v, _ := pass.Info.Uses[e].(*types.Var)
		return v
	}
	return nil
}
