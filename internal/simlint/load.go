package simlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The loader type-checks packages using only the standard library: module
// packages are resolved against the repository root and parsed from source;
// everything else (the standard library) is delegated to go/importer's
// source importer, which reads GOROOT. Imported packages are checked with
// IgnoreFuncBodies for speed; target packages get full bodies and a filled
// types.Info for the analyzers.
//
// Loading is parallel: a discovery pre-pass parses every module-local
// package reachable from the targets (rejecting import cycles up front, so
// in-flight waits below can never deadlock), then the targets are
// type-checked by a worker pool. Dependency packages are checked at most
// once behind a single-flight map; the standard-library source importer is
// not safe for concurrent use and sits behind its own mutex.

// Package is one fully type-checked analysis target.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// dirs indexes every //simlint: directive: file -> line -> directives.
	// dirList holds the same directives in source order for hygiene checks.
	dirs    map[string]map[int][]*directive
	dirList []*directive
}

type loader struct {
	fset    *token.FileSet
	root    string // module root directory ("" for pure fixtures)
	modPath string // module path from go.mod
	std     types.Importer
	stdMu   sync.Mutex // the source importer is not concurrency-safe
	// overlay holds in-memory fixture packages: import path -> file name ->
	// source. Paths under the fixture module resolve here before the disk.
	overlay map[string]map[string]string

	parseMu sync.Mutex
	parsed  map[string]*parseResult // single-flight parse cache, by import path

	mu   sync.Mutex
	deps map[string]*depResult // single-flight dependency checks
}

// depResult is one in-flight or finished dependency type-check.
type depResult struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

// parseResult is one in-flight or finished package parse.
type parseResult struct {
	done  chan struct{}
	files []*ast.File
	err   error
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		parsed:  make(map[string]*parseResult),
		deps:    make(map[string]*depResult),
	}
}

// isLocal reports whether path resolves inside the module (or fixture
// overlay) rather than the standard library.
func (l *loader) isLocal(path string) bool {
	if _, ok := l.overlay[path]; ok {
		return true
	}
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// Import implements types.Importer for the packages the targets depend on.
// Module-local packages are checked once behind the single-flight map; the
// discovery pre-pass guarantees the local import graph is acyclic, so
// waiting on another goroutine's in-flight check cannot deadlock.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !l.isLocal(path) {
		l.stdMu.Lock()
		defer l.stdMu.Unlock()
		return l.std.Import(path)
	}
	l.mu.Lock()
	if r, ok := l.deps[path]; ok {
		l.mu.Unlock()
		<-r.done
		return r.pkg, r.err
	}
	r := &depResult{done: make(chan struct{})}
	l.deps[path] = r
	l.mu.Unlock()
	r.pkg, _, r.err = l.check(path, false)
	close(r.done)
	return r.pkg, r.err
}

// parseFiles parses one package's files (overlay or disk) exactly once,
// single-flighted by import path; concurrent callers wait for the first.
// token.FileSet is safe for concurrent use, so parses of distinct packages
// proceed in parallel.
func (l *loader) parseFiles(path string) ([]*ast.File, error) {
	l.parseMu.Lock()
	if r, ok := l.parsed[path]; ok {
		l.parseMu.Unlock()
		<-r.done
		return r.files, r.err
	}
	r := &parseResult{done: make(chan struct{})}
	l.parsed[path] = r
	l.parseMu.Unlock()
	r.files, r.err = l.parseUncached(path)
	close(r.done)
	return r.files, r.err
}

// parseUncached does the actual parse for parseFiles.
func (l *loader) parseUncached(path string) ([]*ast.File, error) {
	var files []*ast.File
	if src, ok := l.overlay[path]; ok {
		names := make([]string, 0, len(src))
		//simlint:allow determinism -- file names are sorted before parsing
		for name := range src {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, path+"/"+name, src[name], parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
	} else {
		dir, err := l.dirOf(path)
		if err != nil {
			return nil, err
		}
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
	}
	return files, nil
}

// discover parses every module-local package reachable from the targets and
// rejects import cycles, so the concurrent checks that follow can never
// block on each other in a loop.
func (l *loader) discover(targets []string) error {
	imports := make(map[string][]string)
	queue := append([]string(nil), targets...)
	seen := make(map[string]bool)
	for _, t := range targets {
		seen[t] = true
	}
	for len(queue) > 0 {
		// Parse one wave in parallel; collect the next wave from imports.
		wave := queue
		queue = nil
		parsed := make([][]*ast.File, len(wave))
		errs := make([]error, len(wave))
		var wg sync.WaitGroup
		for i, path := range wave {
			wg.Add(1)
			go func(i int, path string) {
				defer wg.Done()
				parsed[i], errs[i] = l.parseFiles(path)
			}(i, path)
		}
		wg.Wait()
		for i, path := range wave {
			if errs[i] != nil {
				return errs[i]
			}
			for _, f := range parsed[i] {
				for _, imp := range f.Imports {
					dep := strings.Trim(imp.Path.Value, `"`)
					if dep == path || !l.isLocal(dep) {
						continue
					}
					imports[path] = append(imports[path], dep)
					if !seen[dep] {
						seen[dep] = true
						queue = append(queue, dep)
					}
				}
			}
		}
	}
	// DFS cycle check over the local import graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(path string, trail []string) error
	visit = func(path string, trail []string) error {
		switch color[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle: %s -> %s", strings.Join(trail, " -> "), path)
		}
		color[path] = grey
		for _, dep := range imports[path] {
			if err := visit(dep, append(trail, path)); err != nil {
				return err
			}
		}
		color[path] = black
		return nil
	}
	for _, t := range targets {
		if err := visit(t, nil); err != nil {
			return err
		}
	}
	return nil
}

// check type-checks one module-local (or overlay) package from the parse
// cache. With bodies set, function bodies are checked and a Package with
// filled types.Info is returned; without, bodies are skipped (dependency
// mode).
func (l *loader) check(path string, bodies bool) (*types.Package, *Package, error) {
	files, err := l.parseFiles(path)
	if err != nil {
		return nil, nil, err
	}
	var info *types.Info
	if bodies {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{Importer: l, IgnoreFuncBodies: !bodies, FakeImportC: true}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	if !bodies {
		return tpkg, nil, nil
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	pkg.collectDirectives()
	return tpkg, pkg, nil
}

func (l *loader) dirOf(path string) (string, error) {
	if path == l.modPath {
		return l.root, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("package %q is outside module %q", path, l.modPath)
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// Load type-checks the packages selected by go-style patterns ("./...",
// "./internal/...", "./cmd/simlint") relative to the module root, in
// parallel. Test files are excluded: the analyzers police simulation code,
// and tests legitimately use fixed-seed math/rand and float comparisons.
func Load(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(dirs))
	for i, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		paths[i] = modPath
		if rel != "." {
			paths[i] = modPath + "/" + filepath.ToSlash(rel)
		}
	}
	l := newLoader(root, modPath)
	if err := l.discover(paths); err != nil {
		return nil, err
	}
	out := make([]*Package, len(paths))
	errs := make([]error, len(paths))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, path := range paths {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, out[i], errs[i] = l.check(path, true)
		}(i, path)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CheckFixture type-checks an in-memory module (import path -> file name ->
// source) and returns the target package, fully checked. Analyzer tests use
// it to run diagnostics over small synthetic ASTs.
func CheckFixture(pkgs map[string]map[string]string, target string) (*Package, error) {
	l := newLoader("", "fix")
	l.overlay = pkgs
	if err := l.discover([]string{target}); err != nil {
		return nil, err
	}
	_, pkg, err := l.check(target, true)
	return pkg, err
}

// expandPatterns resolves go-style package patterns to package directories
// (directories containing at least one non-test .go file), in sorted order.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" {
				base = "."
			}
			start := filepath.Join(root, filepath.FromSlash(base))
			err := filepath.WalkDir(start, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			add(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a buildable non-test Go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
