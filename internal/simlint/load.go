package simlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks packages using only the standard library: module
// packages are resolved against the repository root and parsed from source;
// everything else (the standard library) is delegated to go/importer's
// source importer, which reads GOROOT. Imported packages are checked with
// IgnoreFuncBodies for speed; target packages get full bodies and a filled
// types.Info for the analyzers.

// Package is one fully type-checked analysis target.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allow maps file -> line -> analyzer names suppressed by a
	// //simlint:allow comment on that line.
	allow map[string]map[int][]string
}

type loader struct {
	fset    *token.FileSet
	root    string // module root directory ("" for pure fixtures)
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
	// overlay holds in-memory fixture packages: import path -> file name ->
	// source. Paths under the fixture module resolve here before the disk.
	overlay map[string]map[string]string
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer for the packages the targets depend on.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if _, local := l.overlay[path]; !local {
		if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
			return l.std.Import(path)
		}
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	tpkg, _, err := l.check(path, false)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = tpkg
	return tpkg, nil
}

// check parses and type-checks one module-local (or overlay) package. With
// bodies set, function bodies are checked and a Package with filled
// types.Info is returned; without, bodies are skipped (dependency mode).
func (l *loader) check(path string, bodies bool) (*types.Package, *Package, error) {
	var files []*ast.File
	if src, ok := l.overlay[path]; ok {
		names := make([]string, 0, len(src))
		//simlint:allow determinism -- file names are sorted before parsing
		for name := range src {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, path+"/"+name, src[name], parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
		}
	} else {
		dir, err := l.dirOf(path)
		if err != nil {
			return nil, nil, err
		}
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
		}
	}
	var info *types.Info
	if bodies {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{Importer: l, IgnoreFuncBodies: !bodies, FakeImportC: true}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	if !bodies {
		return tpkg, nil, nil
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	pkg.collectAllows()
	return tpkg, pkg, nil
}

func (l *loader) dirOf(path string) (string, error) {
	if path == l.modPath {
		return l.root, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("package %q is outside module %q", path, l.modPath)
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// Load type-checks the packages selected by go-style patterns ("./...",
// "./internal/...", "./cmd/simlint") relative to the module root. Test files
// are excluded: the analyzers police simulation code, and tests legitimately
// use fixed-seed math/rand and float comparisons.
func Load(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		tpkg, pkg, err := l.check(path, true)
		if err != nil {
			return nil, err
		}
		if _, ok := l.pkgs[path]; !ok {
			l.pkgs[path] = tpkg
		}
		out = append(out, pkg)
	}
	return out, nil
}

// CheckFixture type-checks an in-memory module (import path -> file name ->
// source) and returns the target package, fully checked. Analyzer tests use
// it to run diagnostics over small synthetic ASTs.
func CheckFixture(pkgs map[string]map[string]string, target string) (*Package, error) {
	l := newLoader("", "fix")
	l.overlay = pkgs
	_, pkg, err := l.check(target, true)
	return pkg, err
}

// expandPatterns resolves go-style package patterns to package directories
// (directories containing at least one non-test .go file), in sorted order.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" {
				base = "."
			}
			start := filepath.Join(root, filepath.FromSlash(base))
			err := filepath.WalkDir(start, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			add(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a buildable non-test Go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
