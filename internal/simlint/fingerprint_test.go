package simlint

import "testing"

func TestFingerprint(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/core": {"config.go": `package core

type Config struct {
	Width int
	//simlint:nofingerprint simulator speed knob under test
	Fast bool
	Undoc bool
	Cb    func()
	//simlint:nofingerprint claims exclusion but the anchor keeps it
	Stale int
}

func configFingerprint(c Config) int {
	cfg := c
	cfg.Fast = false
	cfg.Undoc = false
	return cfg.Width
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", Fingerprint)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		// Cb is in the fingerprint but its kind renders addresses.
		{8, "has kind func"},
		// Stale carries a waiver the anchor never consumes (suppression
		// hygiene, gated on the anchor having been found).
		{9, "stale //simlint:nofingerprint"},
		// Undoc is excluded by the anchor without a documented waiver.
		{16, "carries no //simlint:nofingerprint waiver"},
	})
}

// TestFingerprintMissingAnchor checks the contract fails loudly when the
// anchor function disappears, instead of silently checking nothing.
func TestFingerprintMissingAnchor(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/core": {"config.go": `package core

type Config struct {
	Width int
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", Fingerprint)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{3, "no configFingerprint method was found"},
	})
}
