package simlint

import "testing"

// TestSuppressionHygiene checks the directives-about-directives rules:
// every allow needs a reason, an allow that suppressed nothing is itself a
// finding (only when the analyzers it names all ran), unknown analyzer
// names and unknown verbs are flagged, and none of these findings are
// suppressible.
func TestSuppressionHygiene(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/x": {"x.go": `package x

//simlint:allow determinism
func a() {}

//simlint:allow determinism -- nothing here to suppress
func b() {}

//simlint:allow mystery -- no such analyzer
func c() {}

//simlint:frobnicate -- not a verb
func d() {}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/x", Determinism)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{3, "suppression has no justification"},
		{6, "unused suppression: no determinism finding here"},
		{9, `unknown analyzer "mystery"`},
		{12, `unknown simlint directive "frobnicate"`},
	})
	for _, d := range diags {
		if d.Analyzer != "suppression" {
			t.Errorf("hygiene finding attributed to %q, want \"suppression\": %s", d.Analyzer, d)
		}
	}
}

// TestUnusedAllowNeedsFullRun checks the no-false-positives rule for unused
// suppressions: an allow naming an analyzer that did NOT run this
// invocation is not reported (it may well suppress something on a full
// run).
func TestUnusedAllowNeedsFullRun(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/x": {"x.go": `package x

//simlint:allow tracehygiene -- consumed only when tracehygiene runs
func a() {}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/x", Determinism)
	wantDiags(t, diags, nil)
}
