package simlint

import "testing"

func TestLockDiscipline(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/telemetry": {"t.go": `package telemetry

import "sync"

type T struct {
	mu sync.Mutex
	cb func()
	ch chan int
}

func (t *T) bad() {
	t.mu.Lock()
	t.ch <- 1
	t.cb()
	t.mu.Unlock()
	t.cb()
}

func (t *T) deferred() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cb()
}

func (t *T) good() {
	var f func()
	t.mu.Lock()
	f = t.cb
	t.mu.Unlock()
	f()
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/telemetry", LockDiscipline)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{13, "channel send while t.mu is held"},
		{14, `call through function value "t.cb" while t.mu is held`},
		// defer t.mu.Unlock() keeps the lock held to scope end.
		{22, `call through function value "t.cb" while t.mu is held`},
		// good() copies under the lock and calls after — no findings.
	})
}

func TestLockDisciplineAtomicMixing(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/metrics": {"m.go": `package metrics

import "sync/atomic"

type A struct {
	n int64
	m int64
}

func (a *A) inc()       { atomic.AddInt64(&a.n, 1) }
func (a *A) read() int64 { return atomic.LoadInt64(&a.n) }
func (a *A) leak() int64 { return a.n }

func (a *A) plainOnly() int64 { a.m++; return a.m }
`},
	}
	diags := runFixture(t, fixture, "fix/internal/metrics", LockDiscipline)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{12, "n is accessed plainly but also through sync/atomic"},
	})
}

// TestLockDisciplineScope checks the analyzer stays out of packages that are
// not on the concurrency-bearing list: the same violations in a simulation
// package produce nothing (single-threaded code may hold locks however it
// likes — there are none).
func TestLockDisciplineScope(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/core": {"c.go": `package core

import "sync"

type C struct {
	mu sync.Mutex
	cb func()
}

func (c *C) f() {
	c.mu.Lock()
	c.cb()
	c.mu.Unlock()
}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/core", LockDiscipline)
	wantDiags(t, diags, nil)
}
