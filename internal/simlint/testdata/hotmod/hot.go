// Package hotmod is a fixture for the hotpathalloc analyzer: Leaky's
// Sprintf boxes its argument onto the heap, Clean allocates nothing. It
// lives under testdata so the repository's own module walk never sees it.
package hotmod

import "fmt"

var sink string

//simlint:hotpath
func Leaky(n int) {
	sink = fmt.Sprintf("%d", n)
}

//simlint:hotpath
func Clean(n int) int {
	return n * 2
}
