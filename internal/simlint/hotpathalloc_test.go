package simlint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestHotPathAllocEscape drives the full escape pipeline over the
// checked-in testdata module: annotate, load, `go build -gcflags=-m`,
// attribute diagnostics to spans. Leaky must be flagged, Clean must not.
func TestHotPathAllocEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go compiler; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("testdata", "hotmod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := Run(pkgs, []*Analyzer{HotPathAlloc}, Options{Root: root})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	leaky := 0
	for _, d := range diags {
		if d.Analyzer != "hotpathalloc" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
		if strings.Contains(d.Message, "Clean") {
			t.Errorf("Clean flagged: %s", d)
		}
		if strings.Contains(d.Message, "Leaky") && strings.Contains(d.Message, "escapes to heap") {
			leaky++
		}
	}
	if leaky == 0 {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatal("Leaky's Sprintf boxing was not flagged")
	}
}

// TestHotPathDirectiveOffFunction checks the misplacement rule: a hotpath
// annotation that is not attached to a function declaration is a hygiene
// finding (it would otherwise silently verify nothing).
func TestHotPathDirectiveOffFunction(t *testing.T) {
	fixture := map[string]map[string]string{
		"fix/internal/x": {"x.go": `package x

//simlint:hotpath
var counter int

//simlint:hotpath
func hot() {}
`},
	}
	diags := runFixture(t, fixture, "fix/internal/x", HotPathAlloc)
	wantDiags(t, diags, []struct {
		Line     int
		Fragment string
	}{
		{3, "must sit on a function declaration"},
	})
}
