package cache

import "fmt"

// This file holds the structural self-checks the simcheck sanitizer runs.
// They are ordinary methods (no build tag) so tests can call them directly;
// the per-cycle wiring lives in internal/simcheck.

// lifetime counters for conservation checking. Unlike the public statistics
// (which harnesses zero after warmup), these are never reset while entries
// are outstanding, so allocate/complete conservation holds for the whole
// life of the file.

// CheckConservation verifies MSHR allocate/free conservation: occupancy never
// exceeds capacity, and every allocation is either completed or still
// outstanding. A mismatch means an entry leaked or was double-completed.
func (f *MSHRFile) CheckConservation() error {
	if len(f.entries) > f.cap {
		return fmt.Errorf("mshr: %d entries outstanding, capacity %d", len(f.entries), f.cap)
	}
	if f.allocTotal != f.completeTotal+uint64(len(f.entries)) {
		return fmt.Errorf("mshr: conservation broken: %d allocated != %d completed + %d outstanding",
			f.allocTotal, f.completeTotal, len(f.entries))
	}
	//simlint:allow determinism -- order-insensitive validation scan
	for line, m := range f.entries {
		if m == nil {
			return fmt.Errorf("mshr: nil entry for line %#x", line)
		}
		if m.LineAddr != line {
			return fmt.Errorf("mshr: entry keyed %#x records line %#x", line, m.LineAddr)
		}
	}
	return nil
}

// CheckIntegrity verifies the LRU stack of every set: valid lines have
// distinct tags, and every recency stamp is unique within its set and no
// newer than the cache's global stamp. A violation means replacement state
// was corrupted (two lines claiming the same recency, or a stale refill
// resurrecting an evicted line).
func (c *Cache) CheckIntegrity() error {
	for si, set := range c.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			if set[i].lastUse > c.stamp {
				return fmt.Errorf("cache %s: set %d way %d stamp %d exceeds global stamp %d",
					c.cfg.Name, si, i, set[i].lastUse, c.stamp)
			}
			for j := i + 1; j < len(set); j++ {
				if !set[j].valid {
					continue
				}
				if set[i].tag == set[j].tag {
					return fmt.Errorf("cache %s: set %d holds tag %#x in ways %d and %d",
						c.cfg.Name, si, set[i].tag, i, j)
				}
				if set[i].lastUse == set[j].lastUse {
					return fmt.Errorf("cache %s: set %d ways %d and %d share LRU stamp %d",
						c.cfg.Name, si, i, j, set[i].lastUse)
				}
			}
		}
	}
	return nil
}

// ForEachValid calls fn with the line address of every valid line, in
// set/way order. Used by the inclusive-LLC containment check.
func (c *Cache) ForEachValid(fn func(lineAddr uint64)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				fn(set[i].tag << c.lineShift)
			}
		}
	}
}
