package cache

import (
	"fmt"

	"runaheadsim/internal/snapshot"
)

// SnapshotTo serializes the tag array: geometry first (a restore into a
// different geometry fails loudly), then every line in set-major, way-minor
// order — including LRU stamps, so replacement decisions after a restore
// match the uninterrupted run bit for bit.
func (c *Cache) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("cache")
	w.Str(c.cfg.Name)
	w.Int(c.cfg.SizeBytes)
	w.Int(c.cfg.Ways)
	w.Int(c.cfg.LineBytes)
	w.U64(c.stamp)
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			w.U64(l.tag)
			w.Bool(l.valid)
			w.Bool(l.dirty)
			w.Bool(l.prefetched)
			w.U64(l.lastUse)
		}
	}
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.Evictions)
	return nil
}

// RestoreFrom reads state written by SnapshotTo into c, which must have the
// same geometry.
func (c *Cache) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("cache")
	if name := r.Str(); r.Err() == nil && name != c.cfg.Name {
		r.Failf("cache: restoring %q snapshot into %q", name, c.cfg.Name)
	}
	for _, g := range []struct {
		name string
		have int
	}{
		{"size", c.cfg.SizeBytes},
		{"ways", c.cfg.Ways},
		{"line bytes", c.cfg.LineBytes},
	} {
		if got := r.Int(); r.Err() == nil && got != g.have {
			r.Failf("cache %q: %s is %d, snapshot has %d", c.cfg.Name, g.name, g.have, got)
		}
	}
	if r.Err() != nil {
		return r.Err()
	}
	c.stamp = r.U64()
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			l.tag = r.U64()
			l.valid = r.Bool()
			l.dirty = r.Bool()
			l.prefetched = r.Bool()
			l.lastUse = r.U64()
		}
	}
	c.Hits = r.U64()
	c.Misses = r.U64()
	c.Evictions = r.U64()
	return r.Err()
}

// SnapshotTo serializes the MSHR file's bookkeeping. Outstanding entries hold
// completion closures and are unserializable by design, so the file must be
// drained first; memsys refuses to snapshot until it is.
func (f *MSHRFile) SnapshotTo(w *snapshot.Writer) error {
	w.Mark("mshr")
	if n := f.Outstanding(); n != 0 {
		return fmt.Errorf("cache: snapshotting MSHR file with %d outstanding entries", n)
	}
	w.Int(f.cap)
	w.U64(f.Allocs)
	w.U64(f.Merges)
	w.U64(f.Full)
	w.Int(f.Peak)
	w.U64(f.allocTotal)
	w.U64(f.completeTotal)
	return nil
}

// RestoreFrom reads state written by SnapshotTo into f, which must have the
// same capacity and no outstanding entries.
func (f *MSHRFile) RestoreFrom(r *snapshot.Reader) error {
	r.Expect("mshr")
	if n := f.Outstanding(); n != 0 {
		r.Failf("cache: restoring MSHR file with %d outstanding entries", n)
		return r.Err()
	}
	if got := r.Int(); r.Err() == nil && got != f.cap {
		r.Failf("cache: MSHR capacity %d, snapshot has %d", f.cap, got)
	}
	if r.Err() != nil {
		return r.Err()
	}
	f.Allocs = r.U64()
	f.Merges = r.U64()
	f.Full = r.U64()
	f.Peak = r.Int()
	f.allocTotal = r.U64()
	f.completeTotal = r.U64()
	// Dropping the (empty) map and restoring the lifetime counters preserves
	// the conservation invariant: allocTotal == completeTotal + Outstanding().
	return r.Err()
}
