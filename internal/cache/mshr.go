package cache

// MSHRFile tracks outstanding misses for one cache level. Requests to a line
// that already has an entry merge into it instead of issuing a duplicate
// fill, which is also how runahead's extra loads to already-missing lines
// avoid generating redundant DRAM traffic.
type MSHRFile struct {
	cap     int
	entries map[uint64]*MSHR

	// Statistics.
	Allocs uint64
	Merges uint64
	Full   uint64
	// Peak is the maximum simultaneous occupancy seen — the MLP ceiling a
	// run actually reached, plotted against capacity by the timeline tools.
	Peak int

	// Lifetime conservation counters. Unlike Allocs (zeroed by ResetStats
	// while entries are outstanding), these are never reset, so
	// allocTotal == completeTotal + Outstanding() holds at all times; see
	// CheckConservation.
	allocTotal    uint64
	completeTotal uint64
}

// MSHR is one outstanding line fill.
type MSHR struct {
	LineAddr uint64
	// Waiters are completion callbacks invoked with the fill cycle.
	Waiters []func(cycle int64)
	// Prefetch is true while the fill is owed only to prefetch requests; a
	// demand merge clears it (late prefetch).
	Prefetch bool
	// DemandMerged records that a demand access merged into a prefetch MSHR
	// (FDP lateness signal).
	DemandMerged bool
	// FillFromMem is set by the owner when the fill had to go to DRAM, so
	// waiters can learn how deep the miss went.
	FillFromMem bool
	// EarlyMiss callbacks fire the moment the miss is known to be DRAM-bound
	// (runahead needs to learn this without waiting for data).
	EarlyMiss []func(cycle int64)
}

// NewMSHRFile returns an MSHR file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic("cache: MSHR file needs positive capacity")
	}
	return &MSHRFile{cap: capacity, entries: make(map[uint64]*MSHR, capacity)}
}

// Lookup returns the outstanding entry for lineAddr, if any.
func (f *MSHRFile) Lookup(lineAddr uint64) (*MSHR, bool) {
	m, ok := f.entries[lineAddr]
	return m, ok
}

// FullNow reports whether no new entry can be allocated.
func (f *MSHRFile) FullNow() bool { return len(f.entries) >= f.cap }

// Allocate creates an entry for lineAddr. It returns nil and counts the
// rejection when the file is full. lineAddr must not already be present
// (callers merge via Lookup first).
func (f *MSHRFile) Allocate(lineAddr uint64, prefetch bool) *MSHR {
	if _, ok := f.entries[lineAddr]; ok {
		panic("cache: MSHR already allocated for line")
	}
	if len(f.entries) >= f.cap {
		f.Full++
		return nil
	}
	m := &MSHR{LineAddr: lineAddr, Prefetch: prefetch}
	f.entries[lineAddr] = m
	f.Allocs++
	f.allocTotal++
	if n := len(f.entries); n > f.Peak {
		f.Peak = n
	}
	return m
}

// Merge attaches a waiter to an existing entry. A demand merge into a
// prefetch entry converts it and records the lateness.
func (f *MSHRFile) Merge(m *MSHR, demand bool, waiter func(int64)) {
	if waiter != nil {
		m.Waiters = append(m.Waiters, waiter)
	}
	if demand && m.Prefetch {
		m.Prefetch = false
		m.DemandMerged = true
	}
	f.Merges++
}

// Complete removes the entry and returns it so the caller can run waiters.
func (f *MSHRFile) Complete(lineAddr uint64) *MSHR {
	m, ok := f.entries[lineAddr]
	if !ok {
		panic("cache: completing MSHR that was never allocated")
	}
	delete(f.entries, lineAddr)
	f.completeTotal++
	return m
}

// Outstanding returns the number of in-flight entries.
func (f *MSHRFile) Outstanding() int { return len(f.entries) }

// Clear drops all entries (used only by whole-machine reset in tests). The
// dropped entries count as completed so conservation keeps holding.
func (f *MSHRFile) Clear() {
	clear(f.entries)
	f.completeTotal = f.allocTotal
}
