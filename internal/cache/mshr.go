package cache

// Level is the deepest hierarchy level an access had to reach. It lives here
// (rather than in memsys, which re-exports it) so MSHR waiter callbacks can
// receive a fully-formed Outcome without an adapter closure per miss.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelLLC
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelLLC:
		return "LLC"
	default:
		return "Mem"
	}
}

// Outcome reports the completion of an access. Line is the line address the
// access resolved to — callers that share one completion callback across all
// their outstanding accesses (the core's I-fetch path) use it to tell which
// access finished instead of capturing that state in a per-access closure.
type Outcome struct {
	When  int64
	Level Level
	Line  uint64
}

// Waiter is one completion callback attached to an MSHR. The fill loop
// constructs the Outcome (it knows the cycle, the fill level, and the line),
// so requesters append their completion function directly — the dominant
// demand-miss paths allocate no adapter closure. MarkDirty tags store
// waiters: the owner dirties the filled line before invoking Done.
type Waiter struct {
	Done      func(Outcome)
	MarkDirty bool
}

// MSHRFile tracks outstanding misses for one cache level. Requests to a line
// that already has an entry merge into it instead of issuing a duplicate
// fill, which is also how runahead's extra loads to already-missing lines
// avoid generating redundant DRAM traffic.
type MSHRFile struct {
	cap     int
	entries map[uint64]*MSHR

	// Statistics.
	Allocs uint64
	Merges uint64
	Full   uint64
	// Peak is the maximum simultaneous occupancy seen — the MLP ceiling a
	// run actually reached, plotted against capacity by the timeline tools.
	Peak int

	// Simulator self-profiling (not simulated state, not snapshotted):
	// Allocate outcomes against the recycle pool. PoolHits reuse an entry
	// (and its waiter-list backing array); PoolNews hit the Go allocator.
	// A warm file should be ~all hits after the first few misses.
	PoolHits uint64 //simlint:nosnapshot simulator self-profiling, not simulated state
	PoolNews uint64 //simlint:nosnapshot simulator self-profiling, not simulated state

	// Lifetime conservation counters. Unlike Allocs (zeroed by ResetStats
	// while entries are outstanding), these are never reset, so
	// allocTotal == completeTotal + Outstanding() holds at all times; see
	// CheckConservation.
	allocTotal    uint64
	completeTotal uint64

	// free holds recycled entries (see Recycle); their waiter-list backing
	// arrays are kept so steady-state misses allocate nothing.
	//simlint:nosnapshot host-side recycle pool; its contents never reach simulated state
	free []*MSHR
}

// MSHR is one outstanding line fill.
type MSHR struct {
	LineAddr uint64
	// Waiters are completion callbacks invoked at fill with the outcome.
	Waiters []Waiter
	// Prefetch is true while the fill is owed only to prefetch requests; a
	// demand merge clears it (late prefetch).
	Prefetch bool
	// DemandMerged records that a demand access merged into a prefetch MSHR
	// (FDP lateness signal).
	DemandMerged bool
	// FillFromMem is set by the owner when the fill had to go to DRAM, so
	// waiters can learn how deep the miss went.
	FillFromMem bool
	// EarlyMiss callbacks fire the moment the miss is known to be DRAM-bound
	// (runahead needs to learn this without waiting for data).
	EarlyMiss []func(cycle int64)
	// Req is the requestor (core) the fill is attributed to in shared MSHR
	// files — the LLC level uses it to charge eviction writebacks to the core
	// whose miss displaced the victim. Recycle zeroes it, so owners restamp
	// it after every Allocate.
	Req int
}

// NewMSHRFile returns an MSHR file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic("cache: MSHR file needs positive capacity")
	}
	return &MSHRFile{cap: capacity, entries: make(map[uint64]*MSHR, capacity)}
}

// Lookup returns the outstanding entry for lineAddr, if any.
func (f *MSHRFile) Lookup(lineAddr uint64) (*MSHR, bool) {
	m, ok := f.entries[lineAddr]
	return m, ok
}

// FullNow reports whether no new entry can be allocated.
func (f *MSHRFile) FullNow() bool { return len(f.entries) >= f.cap }

// Allocate creates an entry for lineAddr. It returns nil and counts the
// rejection when the file is full. lineAddr must not already be present
// (callers merge via Lookup first).
func (f *MSHRFile) Allocate(lineAddr uint64, prefetch bool) *MSHR {
	if _, ok := f.entries[lineAddr]; ok {
		panic("cache: MSHR already allocated for line")
	}
	if len(f.entries) >= f.cap {
		f.Full++
		return nil
	}
	var m *MSHR
	if n := len(f.free); n > 0 {
		m = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		m.LineAddr, m.Prefetch = lineAddr, prefetch
		f.PoolHits++
	} else {
		m = &MSHR{LineAddr: lineAddr, Prefetch: prefetch}
		f.PoolNews++
	}
	f.entries[lineAddr] = m
	f.Allocs++
	f.allocTotal++
	if n := len(f.entries); n > f.Peak {
		f.Peak = n
	}
	return m
}

// Merge attaches a waiter to an existing entry. A demand merge into a
// prefetch entry converts it and records the lateness.
func (f *MSHRFile) Merge(m *MSHR, demand bool, waiter Waiter) {
	if waiter.Done != nil {
		m.Waiters = append(m.Waiters, waiter)
	}
	if demand && m.Prefetch {
		m.Prefetch = false
		m.DemandMerged = true
	}
	f.Merges++
}

// Complete removes the entry and returns it so the caller can run waiters.
func (f *MSHRFile) Complete(lineAddr uint64) *MSHR {
	m, ok := f.entries[lineAddr]
	if !ok {
		panic("cache: completing MSHR that was never allocated")
	}
	delete(f.entries, lineAddr)
	f.completeTotal++
	return m
}

// Recycle returns a completed entry to the allocation pool. The caller must
// be done with every reference to m — waiters run, fill level inspected —
// because the next Allocate may hand the same entry out again. Callback slots
// are nil-ed so recycled lists don't retain dead closures, but the backing
// arrays survive for reuse.
func (f *MSHRFile) Recycle(m *MSHR) {
	for i := range m.Waiters {
		m.Waiters[i] = Waiter{}
	}
	for i := range m.EarlyMiss {
		m.EarlyMiss[i] = nil
	}
	*m = MSHR{Waiters: m.Waiters[:0], EarlyMiss: m.EarlyMiss[:0]}
	f.free = append(f.free, m)
}

// Outstanding returns the number of in-flight entries.
func (f *MSHRFile) Outstanding() int { return len(f.entries) }

// Clear drops all entries (used only by whole-machine reset in tests). The
// dropped entries count as completed so conservation keeps holding.
func (f *MSHRFile) Clear() {
	clear(f.entries)
	f.completeTotal = f.allocTotal
}
