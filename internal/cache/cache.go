// Package cache provides the structural cache model: set-associative tag
// arrays with true-LRU replacement, dirty and prefetch bits, and miss status
// holding registers (MSHRs). Timing and the miss path live in
// internal/memsys; this package answers only "is the line here, and what got
// evicted".
package cache

import "fmt"

// Config describes one cache array.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool // filled by a prefetch and not yet demanded (for FDP accuracy)
	lastUse    uint64
}

// Cache is a set-associative tag array.
type Cache struct {
	cfg       Config
	sets      [][]line
	lineShift uint   //simlint:nosnapshot derived from cfg geometry by the constructor
	setMask   uint64 //simlint:nosnapshot derived from cfg geometry by the constructor
	stamp     uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds an empty cache; it panics on invalid geometry (a configuration
// bug, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg}
	nsets := cfg.Sets()
	c.sets = make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			c.lineShift = shift
			break
		}
	}
	c.setMask = uint64(nsets - 1)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineBytes-1) }

func (c *Cache) setOf(addr uint64) []line { return c.sets[(addr>>c.lineShift)&c.setMask] }

func (c *Cache) tagOf(addr uint64) uint64 { return addr >> c.lineShift }

// Lookup checks for addr, updating LRU and hit/miss statistics. When the hit
// line was prefetched and not yet referenced, wasPrefetch is true and the bit
// is cleared (first demand use of a prefetched line).
func (c *Cache) Lookup(addr uint64) (hit, wasPrefetch bool) {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.stamp++
			l.lastUse = c.stamp
			wp := l.prefetched
			l.prefetched = false
			c.Hits++
			return true, wp
		}
	}
	c.Misses++
	return false, false
}

// Probe checks for addr without disturbing LRU, statistics or prefetch bits.
func (c *Cache) Probe(addr uint64) bool {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Insert fills addr, evicting the LRU line of the set if needed. The evicted
// line (if any) is returned so the caller can write it back or invalidate
// upper levels (inclusion).
func (c *Cache) Insert(addr uint64, prefetched bool) Victim {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	// Refill of a present line (e.g. racing fills) just refreshes it.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stamp++
			set[i].lastUse = c.stamp
			return Victim{}
		}
	}
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	var v Victim
	if set[vi].valid {
		v = Victim{Addr: set[vi].tag << c.lineShift, Dirty: set[vi].dirty, Valid: true}
		c.Evictions++
	}
	c.stamp++
	set[vi] = line{tag: tag, valid: true, prefetched: prefetched, lastUse: c.stamp}
	return v
}

// MarkDirty sets the dirty bit of the line containing addr (store hit or
// store fill). It reports whether the line was present.
func (c *Cache) MarkDirty(addr uint64) bool {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr, returning whether it was present
// and dirty (the caller may need to write it back).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = line{}
			return true, d
		}
	}
	return false, false
}

// PrefetchResident reports whether the line containing addr is present and
// still carries its prefetch bit (prefetched, never demanded). Used by FDP's
// pollution/accuracy accounting.
func (c *Cache) PrefetchResident(addr uint64) bool {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return set[i].prefetched
		}
	}
	return false
}
