package cache

import (
	"strings"
	"testing"
)

func TestMSHRConservationClean(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(0x100, false)
	f.Allocate(0x200, true)
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("clean file: %v", err)
	}
	f.Complete(0x100)
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("after complete: %v", err)
	}
	f.Clear()
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestMSHRConservationCatchesLeak(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(0x100, false)
	// Simulate a leaked entry: drop it without completing.
	delete(f.entries, 0x100)
	err := f.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("leaked entry not caught: %v", err)
	}
}

func TestMSHRConservationCatchesKeyMismatch(t *testing.T) {
	f := NewMSHRFile(4)
	m := f.Allocate(0x100, false)
	m.LineAddr = 0x140 // corrupt the entry's recorded line
	err := f.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "records line") {
		t.Fatalf("key mismatch not caught: %v", err)
	}
}

func testCache(t *testing.T) *Cache {
	t.Helper()
	c := New(Config{SizeBytes: 4096, Ways: 4, LineBytes: 64})
	for i := uint64(0); i < 32; i++ {
		c.Insert(i*64, false)
	}
	return c
}

func TestCacheIntegrityClean(t *testing.T) {
	c := testCache(t)
	if err := c.CheckIntegrity(); err != nil {
		t.Fatalf("clean cache: %v", err)
	}
}

func TestCacheIntegrityCatchesStaleStamp(t *testing.T) {
	c := testCache(t)
	// A recency stamp newer than the global stamp means a fill bypassed the
	// stamp counter.
	c.sets[0][0].lastUse = c.stamp + 100
	err := c.CheckIntegrity()
	if err == nil {
		t.Fatal("future lastUse not caught")
	}
}

func TestCacheIntegrityCatchesDuplicateTag(t *testing.T) {
	c := testCache(t)
	c.sets[0][1].tag = c.sets[0][0].tag
	c.sets[0][1].valid = true
	c.sets[0][0].valid = true
	err := c.CheckIntegrity()
	if err == nil {
		t.Fatal("duplicate tag not caught")
	}
}

func TestCacheIntegrityCatchesDuplicateStamp(t *testing.T) {
	c := testCache(t)
	c.sets[0][1].lastUse = c.sets[0][0].lastUse
	err := c.CheckIntegrity()
	if err == nil {
		t.Fatal("duplicate recency stamp not caught")
	}
}
