package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tiny() *Cache {
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2, LineBytes: 64}) // 4 sets
}

func TestGeometry(t *testing.T) {
	c := tiny()
	if c.Config().Sets() != 4 {
		t.Fatalf("sets = %d, want 4", c.Config().Sets())
	}
	if c.LineAddr(0x12345) != 0x12340 {
		t.Fatalf("LineAddr = %#x", c.LineAddr(0x12345))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 1, LineBytes: 64},
		{Name: "npo2sets", SizeBytes: 3 * 64, Ways: 1, LineBytes: 64},
		{Name: "npo2line", SizeBytes: 512, Ways: 2, LineBytes: 48},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %q should panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHitMiss(t *testing.T) {
	c := tiny()
	if hit, _ := c.Lookup(0x1000); hit {
		t.Fatal("empty cache must miss")
	}
	c.Insert(0x1000, false)
	if hit, _ := c.Lookup(0x1000); !hit {
		t.Fatal("inserted line must hit")
	}
	if hit, _ := c.Lookup(0x1040); hit {
		t.Fatal("different line must miss")
	}
	if c.Hits != 1 || c.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 2 ways; lines mapping to set 0 are multiples of 4*64=256
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Lookup(a) // a is now MRU
	v := c.Insert(d, false)
	if !v.Valid || v.Addr != b {
		t.Fatalf("victim = %+v, want line b (%#x)", v, b)
	}
	if !c.Probe(a) || !c.Probe(d) || c.Probe(b) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestInsertExistingIsRefresh(t *testing.T) {
	c := tiny()
	c.Insert(0x0000, false)
	v := c.Insert(0x0000, false)
	if v.Valid {
		t.Fatal("reinserting a resident line must not evict")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := tiny()
	c.Insert(0x0000, false)
	if !c.MarkDirty(0x0000) {
		t.Fatal("MarkDirty on resident line must succeed")
	}
	if c.MarkDirty(0x9999) {
		t.Fatal("MarkDirty on absent line must fail")
	}
	c.Insert(0x0100, false)
	v := c.Insert(0x0200, false) // evicts 0x0000 (LRU)
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("dirty victim = %+v", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Insert(0x0000, false)
	c.MarkDirty(0x0000)
	present, dirty := c.Invalidate(0x0000)
	if !present || !dirty {
		t.Fatalf("invalidate = %v,%v", present, dirty)
	}
	if c.Probe(0x0000) {
		t.Fatal("line still present after invalidate")
	}
	if present, _ := c.Invalidate(0x0000); present {
		t.Fatal("double invalidate must report absent")
	}
}

func TestPrefetchBitLifecycle(t *testing.T) {
	c := tiny()
	c.Insert(0x0000, true)
	if !c.PrefetchResident(0x0000) {
		t.Fatal("prefetch bit must be set after prefetch fill")
	}
	if c.Probe(0x0000); c.PrefetchResident(0x0000) == false {
		t.Fatal("Probe must not clear the prefetch bit")
	}
	hit, wasPrefetch := c.Lookup(0x0000)
	if !hit || !wasPrefetch {
		t.Fatal("first demand use must report wasPrefetch")
	}
	if c.PrefetchResident(0x0000) {
		t.Fatal("demand use must clear the prefetch bit")
	}
	if _, wp := c.Lookup(0x0000); wp {
		t.Fatal("second use must not report wasPrefetch")
	}
}

// Property: the cache never holds more than Ways lines of one set, and a
// line just inserted is always resident.
func TestPropertyWaysRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := tiny()
		resident := make(map[uint64]bool)
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(32)) * 64
			v := c.Insert(addr, false)
			resident[c.LineAddr(addr)] = true
			if v.Valid {
				delete(resident, v.Addr)
			}
			if !c.Probe(addr) {
				return false
			}
		}
		// Shadow model and cache must agree on residency.
		for a := range resident {
			if !c.Probe(a) {
				return false
			}
		}
		count := 0
		for a := uint64(0); a < 32*64; a += 64 {
			if c.Probe(a) {
				count++
			}
		}
		return count == len(resident) && count <= 8 // 4 sets * 2 ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRBasics(t *testing.T) {
	f := NewMSHRFile(2)
	m := f.Allocate(0x1000, false)
	if m == nil {
		t.Fatal("allocation in empty file must succeed")
	}
	if _, ok := f.Lookup(0x1000); !ok {
		t.Fatal("lookup of allocated entry must succeed")
	}
	f.Allocate(0x2000, false)
	if !f.FullNow() {
		t.Fatal("file with cap entries must be full")
	}
	if f.Allocate(0x3000, false) != nil {
		t.Fatal("allocation beyond capacity must fail")
	}
	if f.Full != 1 {
		t.Fatal("rejection not counted")
	}
	done := f.Complete(0x1000)
	if done.LineAddr != 0x1000 || f.Outstanding() != 1 {
		t.Fatal("completion bookkeeping wrong")
	}
}

func TestMSHRPeakOccupancy(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(0x1000, false)
	f.Allocate(0x2000, false)
	f.Complete(0x1000)
	f.Allocate(0x3000, false)
	if f.Peak != 2 {
		t.Fatalf("Peak = %d, want 2 (never more than 2 in flight)", f.Peak)
	}
	f.Allocate(0x4000, false)
	f.Allocate(0x5000, false)
	if f.Peak != 4 {
		t.Fatalf("Peak = %d, want 4", f.Peak)
	}
	// Draining does not lower the recorded peak.
	for _, a := range []uint64{0x2000, 0x3000, 0x4000, 0x5000} {
		f.Complete(a)
	}
	if f.Peak != 4 || f.Outstanding() != 0 {
		t.Fatalf("Peak/Outstanding = %d/%d after drain, want 4/0", f.Peak, f.Outstanding())
	}
}

func TestMSHRMergeSemantics(t *testing.T) {
	f := NewMSHRFile(4)
	m := f.Allocate(0x1000, true)
	if !m.Prefetch {
		t.Fatal("prefetch allocation must be marked")
	}
	called := 0
	f.Merge(m, true, Waiter{Done: func(Outcome) { called++ }})
	if m.Prefetch {
		t.Fatal("demand merge must convert a prefetch MSHR")
	}
	if !m.DemandMerged {
		t.Fatal("demand merge must record lateness")
	}
	f.Merge(m, false, Waiter{})
	if len(m.Waiters) != 1 {
		t.Fatalf("waiters = %d, want 1", len(m.Waiters))
	}
	for _, w := range m.Waiters {
		w.Done(Outcome{})
	}
	if called != 1 {
		t.Fatal("waiter not invoked")
	}
}

func TestMSHRDoubleAllocatePanics(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(0x1000, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double allocate must panic")
		}
	}()
	f.Allocate(0x1000, false)
}

func TestMSHRCompleteUnknownPanics(t *testing.T) {
	f := NewMSHRFile(4)
	defer func() {
		if recover() == nil {
			t.Fatal("completing unknown entry must panic")
		}
	}()
	f.Complete(0x1234)
}
