//go:build !nometrics

package metrics

import "time"

// Enabled reports whether the metrics layer is compiled in. It is a build
// constant: with the nometrics tag every instrument method reduces to a
// constant-false branch the compiler removes, so the layer can be compiled
// out entirely — the same escape hatch the simcheck tag provides in the
// other direction.
const Enabled = true

// wallNanos is the default Rate clock. Wall time never reaches simulation
// code: Rate instruments live on the telemetry side of the flush boundary,
// and simulated results are independent of anything they report.
func wallNanos() int64 {
	//simlint:allow determinism -- telemetry rate windows measure wall time by design; simulated state never reads it
	return time.Now().UnixNano()
}
