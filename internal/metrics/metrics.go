// Package metrics is the simulator's runtime self-profiling substrate: a
// low-overhead registry of named counters, gauges, histograms, and windowed
// rates that the telemetry HTTP server exports in Prometheus text and JSON
// form.
//
// The package is a leaf (standard library only), so every simulator
// component can publish counters without import cycles — the same property
// internal/trace has for events. Two disciplines keep it off the hot path:
//
//   - Instruments are atomics. One Counter.Add is a single atomic add with
//     no allocation, locking, or map lookup; handles are resolved once at
//     registration, never per observation.
//
//   - Simulation kernels do not even pay the atomic per cycle: they
//     accumulate into plain struct fields on their own single-goroutine
//     state and flush deltas here at run boundaries (see core.PublishMetrics).
//     The registry's atomics only absorb flush-rate traffic, so concurrent
//     sweep workers aggregate into one fleet-wide view for free.
//
// Like the tracer and the simcheck oracle, the whole layer can be compiled
// out: building with `-tags nometrics` turns every instrument method into a
// constant-false branch the compiler deletes (see enabled_off.go).
//
// Naming follows the Prometheus convention: `sim_<subsystem>_<what>_<unit>`
// with `_total` for monotonic counters. Instruments follow the same
// ownership rule simlint enforces for core.Stats: the package that registers
// an instrument is the only writer (and the only package holding the
// handle); everyone else reads through the exporters.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is NOT
// usable: obtain instances from Registry.Counter so they are named,
// registered, and exported (simlint's statshygiene rule enforces this, as it
// does for stats objects).
type Counter struct {
	v atomic.Uint64

	_ noCopy
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if !Enabled || c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if !Enabled || c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value (occupancy, active workers).
// Obtain instances from Registry.Gauge.
type Gauge struct {
	v atomic.Int64

	_ noCopy
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !Enabled || g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if !Enabled || g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if !Enabled || g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations in power-of-two buckets: bucket i counts
// values v with v <= 2^i (the first bucket holds v <= 1), plus an overflow
// bucket. Exponential buckets suit the quantities the simulator observes —
// warp jump lengths, queue depths, fan-outs — whose interesting structure is
// orders of magnitude, not absolute values. Obtain instances from
// Registry.Histogram.
type Histogram struct {
	buckets []atomic.Uint64 // buckets[i]: v <= 2^i; last = +Inf
	count   atomic.Uint64
	sum     atomic.Int64

	_ noCopy
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if !Enabled || h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 0
	for uint64(v) > uint64(1)<<i && i < len(h.buckets)-1 {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if !Enabled || h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() int64 {
	if !Enabled || h == nil {
		return 0
	}
	return h.sum.Load()
}

// Rate is a windowed event rate: Mark(n) feeds it timestamped event counts
// and Per(sec) reports the rate over the sliding window. The clock is
// injected at registration (wall time for live telemetry, a fake in tests),
// keeping the determinism rule — simulation code never reads wall time —
// intact: Rate lives on the telemetry side of the flush boundary. Obtain
// instances from Registry.Rate.
type Rate struct {
	mu     sync.Mutex
	now    func() int64 // nanoseconds
	window int64        // nanoseconds
	slots  []rateSlot   // ring, one slot per second of window
	total  uint64       // lifetime count
}

type rateSlot struct {
	start int64 // slot epoch (ns)
	used  bool
	n     uint64
}

const rateSlotNS = int64(1e9)

// Mark records n events now.
func (r *Rate) Mark(n uint64) {
	if !Enabled || r == nil {
		return
	}
	now := r.now()
	r.mu.Lock()
	r.total += n
	i := (now / rateSlotNS) % int64(len(r.slots))
	start := now - now%rateSlotNS
	if !r.slots[i].used || r.slots[i].start != start {
		r.slots[i] = rateSlot{start: start, used: true}
	}
	r.slots[i].n += n
	r.mu.Unlock()
}

// PerSecond returns the event rate over the window, counting only slots
// still inside it.
func (r *Rate) PerSecond() float64 {
	if !Enabled || r == nil {
		return 0
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, s := range r.slots {
		if s.used && now-s.start < r.window {
			n += s.n
		}
	}
	return float64(n) / (float64(r.window) / 1e9)
}

// Total returns the lifetime event count.
func (r *Rate) Total() uint64 {
	if !Enabled || r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// kind tags a registered instrument for the exporters.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindRate
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "rate"
	}
}

// instrument is one registered metric.
type instrument struct {
	name string
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	rate    *Rate
}

// Registry holds named instruments and renders them. Registration is
// idempotent: asking for an existing name of the same kind returns the same
// handle, so package-level instrument vars and re-constructed components
// share one instrument. Exported output is sorted by name, so it is stable
// across runs and registration orders.
type Registry struct {
	mu   sync.RWMutex
	by   map[string]*instrument
	nowf func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument), nowf: wallNanos}
}

// Default is the process-wide registry the telemetry server exports. Package
// init-time instrument registration goes here.
var Default = NewRegistry()

// SetClock overrides the nanosecond clock used by Rate instruments
// registered after the call (tests). The default is wall time.
func (r *Registry) SetClock(now func() int64) {
	r.mu.Lock()
	r.nowf = now
	r.mu.Unlock()
}

func (r *Registry) get(name, help string, k kind) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.by[name]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered as %v (was %v)", name, k, in.kind))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: k}
	switch k {
	case kindCounter:
		in.counter = &Counter{}
	case kindGauge:
		in.gauge = &Gauge{}
	case kindHistogram:
		in.hist = &Histogram{buckets: make([]atomic.Uint64, histBuckets)}
	case kindRate:
		in.rate = &Rate{now: r.nowf, window: rateWindowSlots * rateSlotNS, slots: make([]rateSlot, rateWindowSlots)}
	}
	r.by[name] = in
	return in
}

// histBuckets covers v <= 2^0 .. 2^30 plus overflow — warp jumps, queue
// depths, and fan-outs all fit with room to spare.
const histBuckets = 32

// rateWindowSlots is the sliding-rate window in seconds.
const rateWindowSlots = 10

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, kindCounter).counter
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, kindGauge).gauge
}

// Histogram returns (registering if needed) the named histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.get(name, help, kindHistogram).hist
}

// Rate returns (registering if needed) the named windowed rate.
func (r *Registry) Rate(name, help string) *Rate {
	return r.get(name, help, kindRate).rate
}

// sorted returns the instruments in name order.
func (r *Registry) sorted() []*instrument {
	r.mu.RLock()
	out := make([]*instrument, 0, len(r.by))
	//simlint:allow determinism -- instruments are sorted by name below
	for _, in := range r.by {
		out = append(out, in)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every instrument in the Prometheus text exposition
// format (version 0.0.4), sorted by name. Rates export their lifetime total
// as a counter plus a `<name>:persec` gauge.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, in := range r.sorted() {
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", in.name, in.name, in.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", in.name, in.name, in.gauge.Value())
		case kindHistogram:
			err = writePromHistogram(w, in.name, in.hist)
		case kindRate:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n# TYPE %s:persec gauge\n%s:persec %g\n",
				in.name, in.name, in.rate.Total(), in.name, in.name, in.rate.PerSecond())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 && i > 0 && i < len(h.buckets)-1 {
			continue // keep output compact: skip empty interior buckets
		}
		le := "+Inf"
		if i < len(h.buckets)-1 {
			le = fmt.Sprintf("%d", uint64(1)<<i)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.sum.Load(), name, h.count.Load())
	return err
}

// JSONMetric is one instrument in the JSON export.
type JSONMetric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value,omitempty"` // counter/gauge (counters as int64 for JSON friendliness)

	// Histogram fields.
	Count   uint64            `json:"count,omitempty"`
	Sum     int64             `json:"sum,omitempty"`
	Mean    float64           `json:"mean,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // le -> cumulative count

	// Rate fields.
	Total     uint64  `json:"total,omitempty"`
	PerSecond float64 `json:"perSecond,omitempty"`
}

// Export returns the instruments as JSON-ready values, sorted by name.
func (r *Registry) Export() []JSONMetric {
	ins := r.sorted()
	out := make([]JSONMetric, 0, len(ins))
	for _, in := range ins {
		m := JSONMetric{Name: in.name, Kind: in.kind.String(), Help: in.help}
		switch in.kind {
		case kindCounter:
			m.Value = int64(in.counter.Value())
		case kindGauge:
			m.Value = in.gauge.Value()
		case kindHistogram:
			m.Count = in.hist.Count()
			m.Sum = in.hist.Sum()
			if m.Count > 0 {
				m.Mean = float64(m.Sum) / float64(m.Count)
			}
			m.Buckets = make(map[string]uint64)
			var cum uint64
			for i := range in.hist.buckets {
				n := in.hist.buckets[i].Load()
				cum += n
				if n == 0 {
					continue
				}
				le := "+Inf"
				if i < len(in.hist.buckets)-1 {
					le = fmt.Sprintf("%d", uint64(1)<<i)
				}
				m.Buckets[le] = cum
			}
		case kindRate:
			m.Total = in.rate.Total()
			m.PerSecond = in.rate.PerSecond()
			if math.IsNaN(m.PerSecond) || math.IsInf(m.PerSecond, 0) {
				m.PerSecond = 0
			}
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON renders the instruments as a JSON array, sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}

// noCopy triggers `go vet -copylocks` on instruments copied by value —
// handles must be shared as pointers or the atomics split.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}
