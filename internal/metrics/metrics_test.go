package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim_test_ops_total", "ops")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("sim_test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sim_x_total", "x")
	b := r.Counter("sim_x_total", "x")
	if a != b {
		t.Fatal("same name must return the same handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name under a different kind must panic")
		}
	}()
	r.Gauge("sim_x_total", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sim_test_jump_cycles", "jumps")
	for _, v := range []int64{0, 1, 2, 3, 900, 1 << 40, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	// sum clamps negatives to 0
	if got := h.Sum(); got != 0+1+2+3+900+(1<<40) {
		t.Fatalf("sum = %d", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sim_test_jump_cycles_bucket{le="1"} 3`, // 0, 1 land in le=1 … plus -5 clamped
		`sim_test_jump_cycles_bucket{le="2"} 4`,
		`sim_test_jump_cycles_bucket{le="4"} 5`,
		`sim_test_jump_cycles_bucket{le="1024"} 6`,
		`sim_test_jump_cycles_bucket{le="+Inf"} 7`,
		`sim_test_jump_cycles_count 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRateWindow(t *testing.T) {
	r := NewRegistry()
	var fake int64
	r.SetClock(func() int64 { return fake })
	rate := r.Rate("sim_test_uops", "uops")
	rate.Mark(100)
	fake += 1e9
	rate.Mark(300)
	if got := rate.Total(); got != 400 {
		t.Fatalf("total = %d, want 400", got)
	}
	if got := rate.PerSecond(); got != 40 { // 400 over a 10s window
		t.Fatalf("rate = %g, want 40", got)
	}
	// Advance past the window: old slots age out.
	fake += 11e9
	if got := rate.PerSecond(); got != 0 {
		t.Fatalf("rate after window = %g, want 0", got)
	}
	if got := rate.Total(); got != 400 {
		t.Fatalf("total must be lifetime, got %d", got)
	}
}

// TestConcurrentAccess exercises the registry and instruments from many
// goroutines; `go test -race` proves the hot paths are data-race free.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("sim_conc_total", "shared counter")
			g := r.Gauge("sim_conc_gauge", "shared gauge")
			h := r.Histogram("sim_conc_hist", "shared histogram")
			ra := r.Rate("sim_conc_rate", "shared rate")
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j))
				ra.Mark(1)
				if j%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("sim_conc_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("sim_conc_hist", "").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Rate("sim_conc_rate", "").Total(); got != 8000 {
		t.Fatalf("rate total = %d, want 8000", got)
	}
}

// TestExportStability pins the exporter contract: output is sorted by name
// and byte-identical across repeated renders of an unchanged registry,
// regardless of registration order.
func TestExportStability(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_z_total", "z").Add(1)
	r.Gauge("sim_a_gauge", "a").Set(2)
	r.Histogram("sim_m_hist", "m").Observe(3)

	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("prometheus export not stable:\n%s\n----\n%s", a.String(), b.String())
	}
	// Sorted by name: a_gauge before m_hist before z_total.
	out := a.String()
	ia, im, iz := strings.Index(out, "sim_a_gauge"), strings.Index(out, "sim_m_hist"), strings.Index(out, "sim_z_total")
	if !(ia >= 0 && ia < im && im < iz) {
		t.Fatalf("export not name-sorted:\n%s", out)
	}

	var j1, j2 bytes.Buffer
	if err := r.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatal("JSON export not stable")
	}
	var ms []JSONMetric
	if err := json.Unmarshal(j1.Bytes(), &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].Name != "sim_a_gauge" || ms[2].Name != "sim_z_total" {
		t.Fatalf("unexpected JSON export: %+v", ms)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	// Components built before instrumentation wiring may hold nil handles;
	// every method must tolerate that.
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Rate
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	r.Mark(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || r.Total() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}
