//go:build nometrics

package metrics

// Enabled: metrics are compiled out. Instrument methods become constant-false
// branches that the compiler deletes; registries still exist (and export
// nothing changing) so telemetry endpoints keep serving.
const Enabled = false

// wallNanos pins the Rate clock to zero when the layer is compiled out.
func wallNanos() int64 { return 0 }
