package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"runaheadsim/internal/metrics"
)

// Server serves the introspection endpoints:
//
//	/metrics        Prometheus text exposition (version 0.0.4)
//	/metrics.json   the same registry as a JSON array
//	/healthz        liveness: {"status":"ok","uptimeSec":...,"pid":...}
//	/progress       sweep progress JSON; ?stream=1 (or Accept:
//	                text/event-stream) upgrades to SSE, one snapshot per tick
//	/debug/vars     expvar
//	/debug/pprof/   the standard pprof index, profiles, and traces
//
// The mux is private: nothing registers on http.DefaultServeMux.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	startNS int64
}

// Start binds addr (e.g. "localhost:9102", ":0" for an ephemeral port) and
// serves in a background goroutine. reg supplies /metrics and /metrics.json
// (nil means metrics.Default); tr supplies /progress (nil serves an empty
// snapshot, so dashboards can poll a plain runahead-sim too).
func Start(addr string, reg *metrics.Registry, tr *Tracker) (*Server, error) {
	if reg == nil {
		reg = metrics.Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, startNS: wallNanos()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":    "ok",
			"uptimeSec": float64(wallNanos()-s.startNS) / 1e9,
			"pid":       os.Getpid(),
		})
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stream") == "1" || r.Header.Get("Accept") == "text/event-stream" {
			s.streamProgress(w, r, tr)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snapshotOf(tr))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

func snapshotOf(tr *Tracker) ProgressSnapshot {
	if tr == nil {
		return ProgressSnapshot{}
	}
	return tr.Snapshot()
}

// streamProgress serves Server-Sent Events: one `data: <snapshot JSON>` frame
// immediately, then one per tick (default 1s, ?intervalMs= to change) until
// the client disconnects.
func (s *Server) streamProgress(w http.ResponseWriter, r *http.Request, tr *Tracker) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	period := time.Second
	if ms := r.URL.Query().Get("intervalMs"); ms != "" {
		var v int
		if _, err := fmt.Sscanf(ms, "%d", &v); err == nil && v >= 100 {
			period = time.Duration(v) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	enc := func() bool {
		b, err := json.Marshal(snapshotOf(tr))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !enc() {
		return
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !enc() {
				return
			}
		}
	}
}

// Addr returns the bound address, e.g. "127.0.0.1:9102" (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
