// Package telemetry is the live introspection layer: an HTTP server exposing
// the metrics registry (Prometheus text and JSON), sweep progress (polling
// JSON and SSE streaming), health, expvar, and pprof — all on a private mux
// so importing this package never pollutes http.DefaultServeMux.
//
// Everything here lives on the observability side of the simulator's flush
// boundary: it reads wall time and runs goroutines, but simulated results
// never depend on anything it does. A simulation with no -telemetry-addr
// never constructs any of it.
package telemetry

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// wallNanos is the telemetry clock. Wall time never reaches simulation code:
// progress rates and ETAs describe the simulator's own speed, and simulated
// results are independent of anything derived from them.
func wallNanos() int64 {
	//simlint:allow determinism -- telemetry measures wall time by design; simulated results never read it
	return time.Now().UnixNano()
}

// Tracker aggregates live progress from harness workers. Its method set
// matches the harness Monitor interface structurally, so the harness never
// imports this package (and vice versa). All methods are safe for concurrent
// use — sampled intervals and prewarmed sweeps report from many goroutines.
type Tracker struct {
	mu  sync.Mutex
	now func() int64 // nanoseconds; injectable for tests

	startNS     int64
	runsTotal   int
	runsStarted int
	runsDone    int

	units map[string]*unit
}

// unit is one in-flight piece of work: a full-detail run, one sampled
// interval, or the fast-forward pass (interval -1 covers the non-interval
// cases).
type unit struct {
	bench, config string
	interval      int
	phase         string
	done, total   uint64
	phaseStartNS  int64
}

// NewTracker returns an empty tracker using the wall clock.
func NewTracker() *Tracker {
	t := &Tracker{now: wallNanos, units: make(map[string]*unit)}
	t.startNS = t.now()
	return t
}

// SetClock replaces the wall clock (tests). The new clock is read before the
// lock is taken: an injected clock is foreign code and must never run under
// t.mu (lockdiscipline).
func (t *Tracker) SetClock(now func() int64) {
	start := now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.startNS = start
}

// clockNow reads the current clock without holding the lock across the
// call: the clock function is injectable, and foreign code under t.mu could
// block or re-enter it.
func (t *Tracker) clockNow() int64 {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// SetTotalRuns declares how many runs the sweep plans, enabling the
// sweep-level ETA. Zero means unknown.
func (t *Tracker) SetTotalRuns(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runsTotal = n
}

func unitKey(bench, config string, interval int) string {
	return bench + "|" + config + "|" + strconv.Itoa(interval)
}

// RunStart reports that a (benchmark, configuration) run began.
func (t *Tracker) RunStart(bench, config string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runsStarted++
}

// RunDone reports that a run finished; its remaining units are cleared.
func (t *Tracker) RunDone(bench, config string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runsDone++
	for k, u := range t.units { //simlint:allow determinism -- deleting matching keys; order cannot matter
		if u.bench == bench && u.config == config {
			delete(t.units, k)
		}
	}
}

// Phase reports one unit entering a phase ("fast-forward", "warmup",
// "measure") with a committed-uop goal (0 = unknown).
func (t *Tracker) Phase(bench, config string, interval int, phase string, total uint64) {
	start := t.clockNow()
	t.mu.Lock()
	defer t.mu.Unlock()
	k := unitKey(bench, config, interval)
	u := t.units[k]
	if u == nil {
		u = &unit{bench: bench, config: config, interval: interval}
		t.units[k] = u
	}
	u.phase = phase
	u.done, u.total = 0, total
	u.phaseStartNS = start
}

// Progress reports committed uops completed within the unit's current phase.
func (t *Tracker) Progress(bench, config string, interval int, done uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if u := t.units[unitKey(bench, config, interval)]; u != nil {
		u.done = done
	}
}

// Done reports the unit finished and removes it from the live view.
func (t *Tracker) Done(bench, config string, interval int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.units, unitKey(bench, config, interval))
}

// ProgressSnapshot is the /progress payload.
type ProgressSnapshot struct {
	ElapsedSec  float64        `json:"elapsedSec"`
	RunsTotal   int            `json:"runsTotal"` // 0 = unknown
	RunsStarted int            `json:"runsStarted"`
	RunsDone    int            `json:"runsDone"`
	ETASec      float64        `json:"etaSec"` // whole-sweep estimate; 0 = unknown
	Units       []UnitSnapshot `json:"units"`
}

// UnitSnapshot is one in-flight unit of work in a ProgressSnapshot.
type UnitSnapshot struct {
	Bench      string  `json:"bench"`
	Config     string  `json:"config"`
	Interval   int     `json:"interval"` // -1 for full-detail runs and fast-forward
	Phase      string  `json:"phase"`
	DoneUops   uint64  `json:"doneUops"`
	TotalUops  uint64  `json:"totalUops"` // 0 = unknown
	UopsPerSec float64 `json:"uopsPerSec"`
	ETASec     float64 `json:"etaSec"` // phase estimate; 0 = unknown
}

// Snapshot renders the current progress state. Units are sorted by
// (bench, config, interval) so repeated snapshots of the same state are
// byte-identical when serialized.
func (t *Tracker) Snapshot() ProgressSnapshot {
	now := t.clockNow()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := ProgressSnapshot{
		ElapsedSec:  float64(now-t.startNS) / 1e9,
		RunsTotal:   t.runsTotal,
		RunsStarted: t.runsStarted,
		RunsDone:    t.runsDone,
	}
	if t.runsTotal > 0 && t.runsDone > 0 && t.runsDone < t.runsTotal {
		perRun := s.ElapsedSec / float64(t.runsDone)
		s.ETASec = perRun * float64(t.runsTotal-t.runsDone)
	}
	s.Units = make([]UnitSnapshot, 0, len(t.units))
	for _, u := range t.units { //simlint:allow determinism -- collected then sorted below
		us := UnitSnapshot{
			Bench: u.bench, Config: u.config, Interval: u.interval,
			Phase: u.phase, DoneUops: u.done, TotalUops: u.total,
		}
		if dt := float64(now-u.phaseStartNS) / 1e9; dt > 0 && u.done > 0 {
			us.UopsPerSec = float64(u.done) / dt
			if u.total > u.done {
				us.ETASec = float64(u.total-u.done) / us.UopsPerSec
			}
		}
		s.Units = append(s.Units, us)
	}
	sort.Slice(s.Units, func(i, j int) bool {
		a, b := &s.Units[i], &s.Units[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Interval < b.Interval
	})
	return s
}
