package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"runaheadsim/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("test_requests_total", "requests").Add(7)
	reg.Gauge("test_depth", "queue depth").Set(3)

	tr := NewTracker()
	tr.SetTotalRuns(10)
	tr.RunStart("mcf", "Base")
	tr.Phase("mcf", "Base", 2, "measure", 1000)
	tr.Progress("mcf", "Base", 2, 250)

	s, err := Start("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# HELP test_requests_total requests",
		"# TYPE test_requests_total counter",
		"test_requests_total 7",
		"test_depth 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json status %d", code)
	}
	var exported []metrics.JSONMetric
	if err := json.Unmarshal([]byte(body), &exported); err != nil {
		t.Fatalf("/metrics.json invalid JSON: %v\n%s", err, body)
	}
	if len(exported) != 2 {
		t.Fatalf("/metrics.json has %d metrics, want 2", len(exported))
	}

	code, body = get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/progress")
	if code != 200 {
		t.Fatalf("/progress status %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress invalid JSON: %v", err)
	}
	if snap.RunsTotal != 10 || snap.RunsStarted != 1 || len(snap.Units) != 1 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	u := snap.Units[0]
	if u.Bench != "mcf" || u.Interval != 2 || u.Phase != "measure" || u.DoneUops != 250 {
		t.Fatalf("unexpected unit: %+v", u)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		if code, _ := get(t, base+path); code != 200 {
			t.Errorf("%s status %d", path, code)
		}
	}
}

func TestServerNilTrackerAndDefaultRegistry(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/progress")
	if code != 200 {
		t.Fatalf("/progress status %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("empty progress invalid JSON: %v", err)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/metrics"); code != 200 {
		t.Fatalf("/metrics with default registry: status %d", code)
	}
}

func TestProgressSSE(t *testing.T) {
	tr := NewTracker()
	tr.Phase("mcf", "RB", -1, "fast-forward", 0)
	s, err := Start("127.0.0.1:0", metrics.NewRegistry(), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/progress?stream=1&intervalMs=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// Two frames prove the ticker refires, not just the initial send.
	r := bufio.NewReader(resp.Body)
	frames := 0
	deadline := time.Now().Add(5 * time.Second)
	for frames < 2 && time.Now().Before(deadline) {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap ProgressSnapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &snap); err != nil {
			t.Fatalf("SSE frame invalid JSON: %v in %q", err, line)
		}
		if len(snap.Units) != 1 || snap.Units[0].Phase != "fast-forward" {
			t.Fatalf("unexpected SSE snapshot: %+v", snap)
		}
		frames++
	}
	if frames < 2 {
		t.Fatal("did not receive two SSE frames in time")
	}
}

func TestTrackerRatesAndETA(t *testing.T) {
	tr := NewTracker()
	clock := int64(0)
	tr.SetClock(func() int64 { return clock })

	tr.SetTotalRuns(4)
	tr.RunStart("mcf", "Base")
	tr.Phase("mcf", "Base", 0, "measure", 1_000_000)
	clock = 2e9 // 2s in
	tr.Progress("mcf", "Base", 0, 500_000)

	s := tr.Snapshot()
	if s.ElapsedSec != 2 {
		t.Fatalf("elapsed = %v, want 2", s.ElapsedSec)
	}
	u := s.Units[0]
	if u.UopsPerSec != 250_000 {
		t.Fatalf("rate = %v, want 250000", u.UopsPerSec)
	}
	if u.ETASec != 2 { // 500k remaining at 250k/s
		t.Fatalf("unit ETA = %v, want 2", u.ETASec)
	}

	// Sweep ETA: 1 of 4 runs done after 4s → 12s left.
	clock = 4e9
	tr.RunDone("mcf", "Base")
	s = tr.Snapshot()
	if s.RunsDone != 1 || s.ETASec != 12 {
		t.Fatalf("sweep ETA = %v (done %d), want 12", s.ETASec, s.RunsDone)
	}
	if len(s.Units) != 0 {
		t.Fatal("RunDone must clear the run's units")
	}

	// Done removes a unit explicitly.
	tr.Phase("lbm", "RB", 1, "warmup", 10)
	tr.Done("lbm", "RB", 1)
	if len(tr.Snapshot().Units) != 0 {
		t.Fatal("Done must remove the unit")
	}
}
