package trace

import (
	"bufio"
	"io"
)

// Ring is the flight recorder: a fixed-size ring of the most recent events,
// cheap enough to leave on for every run. Unlike a Sink-driven trace file it
// never touches I/O during simulation — Record is one struct copy into a
// preallocated buffer — and it retains only the last capacity events, so a
// multi-billion-cycle run carries the same memory cost as a short one.
//
// When a run dies (watchdog trip, simcheck violation, worker panic), the
// owner dumps the ring as JSONL and the opaque hang becomes an attributable
// event trace: the last misses, DRAM grants, runahead transitions, and
// occupancy samples leading up to the wedge.
//
// Ring is single-goroutine, like the core that feeds it. It implements Sink
// so it can also sit behind a MultiSink or be fed by anything that emits
// trace events.
type Ring struct {
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// NewRing returns a flight recorder retaining the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: flight ring needs positive capacity")
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record copies one event into the ring, overwriting the oldest when full.
func (r *Ring) Record(ev *Event) {
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = *ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Emit implements Sink.
func (r *Ring) Emit(ev *Event) { r.Record(ev) }

// Close implements Sink; the ring holds no I/O to flush.
func (r *Ring) Close() error { return nil }

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events were overwritten by wraparound.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Mark records an out-of-band annotation (kind "mark") — the terminal
// condition a crash dump should end with.
func (r *Ring) Mark(cycle int64, msg string) {
	r.Record(&Event{Cycle: cycle, Kind: Mark, Op: msg})
}

// WriteJSONL dumps the retained events, oldest first, one JSON object per
// line — the same encoding as the JSONL trace sink, so existing tooling
// reads flight dumps unchanged.
func (r *Ring) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := NewJSONLSink(bw)
	if r.full {
		for i := r.next; i < len(r.buf); i++ {
			s.Emit(&r.buf[i])
		}
	}
	for i := 0; i < r.next; i++ {
		s.Emit(&r.buf[i])
	}
	if err := s.Close(); err != nil {
		return err
	}
	return bw.Flush()
}
