package trace

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeSink writes Chrome trace_event JSON (the "JSON Object Format" with a
// traceEvents array), which Perfetto and chrome://tracing open directly. One
// simulated cycle maps to one microsecond of trace time.
//
// Tracks:
//   - "runahead mode": B/E slices spanning each runahead interval, named by
//     the flavour ("runahead(buffer)" / "runahead(traditional)").
//   - "pipeline lane N": one X (complete) slice per committed instruction,
//     spanning fetch to retirement; overlapping lifetimes spread across lanes
//     so concurrent instructions render side by side.
//   - "LLC misses" / "DRAM": instant events for memory traffic.
//   - "ROB" / "MSHR" counter tracks, fed by Sample events.
//
// The sink streams: events are written as they arrive and the closing
// bracket is appended by Close, so arbitrarily long traces never buffer in
// memory.
type ChromeSink struct {
	w     *bufio.Writer
	first bool

	named    map[int]bool // tids with a thread_name metadata record
	laneEnds []int64      // per-lane last slice end, for lane assignment
	raOpen   bool
	raName   string
	lastTS   int64
}

// Thread IDs for the fixed tracks; pipeline lanes start at laneBase.
const (
	chromePID   = 1
	tidRunahead = 1
	tidLLCMiss  = 2
	tidDRAM     = 3
	laneBase    = 16
	maxLanes    = 32
)

// NewChromeSink returns a Chrome trace_event sink writing to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), first: true, named: make(map[int]bool)}
	s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	s.meta("process_name", 0, "runaheadsim")
	return s
}

// sep writes the record separator (none before the first record).
func (s *ChromeSink) sep() {
	if s.first {
		s.first = false
		s.w.WriteByte('\n')
		return
	}
	s.w.WriteString(",\n")
}

// meta writes a metadata record; tid 0 names the process.
func (s *ChromeSink) meta(kind string, tid int, name string) {
	s.sep()
	if kind == "process_name" {
		fmt.Fprintf(s.w, `{"name":"process_name","ph":"M","pid":%d,"args":{"name":%q}}`, chromePID, name)
		return
	}
	fmt.Fprintf(s.w, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, chromePID, tid, name)
}

// ensureThread lazily emits the thread_name record for tid.
func (s *ChromeSink) ensureThread(tid int, name string) {
	if !s.named[tid] {
		s.named[tid] = true
		s.meta("thread_name", tid, name)
	}
}

// lane finds a pipeline lane free at cycle start (greedy first-fit; when all
// lanes are busy the least-loaded lane absorbs the overlap).
func (s *ChromeSink) lane(start int64) int {
	best, bestEnd := -1, int64(0)
	for i, end := range s.laneEnds {
		if end <= start {
			return i
		}
		if best < 0 || end < bestEnd {
			best, bestEnd = i, end
		}
	}
	if len(s.laneEnds) < maxLanes {
		s.laneEnds = append(s.laneEnds, 0)
		return len(s.laneEnds) - 1
	}
	return best
}

// Emit implements Sink. Only the kinds with a track render; the fine-grained
// per-stage events (fetch/dispatch/issue/complete) are folded into the
// commit-time lifetime slice.
func (s *ChromeSink) Emit(ev *Event) {
	if ev.Cycle > s.lastTS {
		s.lastTS = ev.Cycle
	}
	switch ev.Kind {
	case Commit:
		if ev.Pseudo {
			return // chain-loop iterations would swamp the lifetime tracks
		}
		start := ev.Start
		if start > ev.Cycle {
			start = ev.Cycle
		}
		l := s.lane(start)
		dur := ev.Cycle - start
		s.laneEnds[l] = start + dur
		tid := laneBase + l
		s.ensureThread(tid, fmt.Sprintf("pipeline lane %d", l))
		s.sep()
		fmt.Fprintf(s.w, `{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"seq":%d,"pc":"%#x"}}`,
			ev.Op, start, dur, chromePID, tid, ev.Seq, ev.PC)
	case RunaheadEnter:
		s.ensureThread(tidRunahead, "runahead mode")
		if s.raOpen {
			s.closeRunahead(ev.Cycle) // defensive: unmatched enter
		}
		s.raOpen = true
		s.raName = "runahead(" + ev.Mode + ")"
		s.sep()
		fmt.Fprintf(s.w, `{"name":%q,"ph":"B","ts":%d,"pid":%d,"tid":%d,"args":{"pc":"%#x","chain":%d}}`,
			s.raName, ev.Cycle, chromePID, tidRunahead, ev.PC, ev.ChainLen)
	case RunaheadExit:
		if !s.raOpen {
			return
		}
		s.sep()
		fmt.Fprintf(s.w, `{"name":%q,"ph":"E","ts":%d,"pid":%d,"tid":%d,"args":{"misses":%d}}`,
			s.raName, ev.Cycle, chromePID, tidRunahead, ev.Misses)
		s.raOpen = false
	case CacheMiss:
		s.ensureThread(tidLLCMiss, "LLC misses")
		s.sep()
		fmt.Fprintf(s.w, `{"name":"llc-miss","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"line":"%#x","instr":%v}}`,
			ev.Cycle, chromePID, tidLLCMiss, ev.Line, ev.Instr)
	case DRAMAccess:
		s.ensureThread(tidDRAM, "DRAM")
		op := "dram-read"
		if ev.Write {
			op = "dram-write"
		}
		s.sep()
		fmt.Fprintf(s.w, `{"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"line":"%#x","rowHit":%v}}`,
			op, ev.Cycle, chromePID, tidDRAM, ev.Line, ev.RowHit)
	case Sample:
		s.sep()
		fmt.Fprintf(s.w, `{"name":"ROB","ph":"C","ts":%d,"pid":%d,"args":{"entries":%d}}`,
			ev.Cycle, chromePID, ev.ROBOcc)
		s.sep()
		fmt.Fprintf(s.w, `{"name":"MSHR","ph":"C","ts":%d,"pid":%d,"args":{"outstanding":%d}}`,
			ev.Cycle, chromePID, ev.MSHROcc)
	}
}

func (s *ChromeSink) closeRunahead(ts int64) {
	s.sep()
	fmt.Fprintf(s.w, `{"name":%q,"ph":"E","ts":%d,"pid":%d,"tid":%d}`, s.raName, ts, chromePID, tidRunahead)
	s.raOpen = false
}

// Close balances any open slice, terminates the JSON document, and flushes.
func (s *ChromeSink) Close() error {
	if s.raOpen {
		s.closeRunahead(s.lastTS)
	}
	s.w.WriteString("\n]}\n")
	return s.w.Flush()
}
