// Package trace is the simulator's structured event layer: the core (and the
// memory system through it) emits typed pipeline events, and pluggable sinks
// render them — as the classic one-line-per-event text log, as JSONL for
// machine consumption, or as Chrome trace_event JSON that opens directly in
// Perfetto or chrome://tracing with per-stage tracks, a runahead-mode track,
// and ROB/MSHR counter tracks.
//
// The package is a leaf: it depends only on the standard library, so every
// simulator component can emit events without import cycles. Emission cost
// when tracing is disabled is a single nil check at the call site; sinks are
// only invoked for events that survive the caller's cycle-limit filter.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Kind enumerates the event types the simulator emits.
type Kind uint8

// Event kinds. Per-instruction events carry Seq/PC/Op; the memory events
// carry line addresses; Sample carries occupancy snapshots for counter
// tracks.
const (
	// Fetch: an instruction entered the front end (Seq, PC, Op, PredTaken).
	Fetch Kind = iota
	// Dispatch: renamed and inserted into the ROB (Seq, PC, ROBPos,
	// FromBuffer).
	Dispatch
	// Issue: selected for execution (Seq, Op).
	Issue
	// Complete: finished execution (Seq, Op, Value, Poisoned, EA, Level).
	Complete
	// Commit: retired on the correct path, or pseudo-retired during runahead
	// when Pseudo is set (Seq, PC, Start = fetch cycle).
	Commit
	// Squash: removed from the window by a misprediction or flush (Seq, PC).
	Squash
	// RunaheadEnter: the core entered runahead (PC, Mode, ChainLen).
	RunaheadEnter
	// RunaheadExit: the core left runahead (Misses = new DRAM misses found).
	RunaheadExit
	// CacheMiss: an LLC demand miss (Line, Instr).
	CacheMiss
	// DRAMAccess: the memory controller granted a request (Line, Write,
	// RowHit).
	DRAMAccess
	// Sample: a periodic occupancy snapshot (ROBOcc, MSHROcc) feeding the
	// Chrome counter tracks.
	Sample
	// Mark: an out-of-band annotation (Op carries the message). The flight
	// recorder uses it to pin terminal conditions — a watchdog trip, a
	// simcheck violation — into the ring right before the dump.
	Mark

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Dispatch:
		return "dispatch"
	case Issue:
		return "issue"
	case Complete:
		return "complete"
	case Commit:
		return "commit"
	case Squash:
		return "squash"
	case RunaheadEnter:
		return "runahead-enter"
	case RunaheadExit:
		return "runahead-exit"
	case CacheMiss:
		return "llc-miss"
	case DRAMAccess:
		return "dram"
	case Sample:
		return "sample"
	case Mark:
		return "mark"
	default:
		return "unknown"
	}
}

// Event is one structured pipeline event. It is a flat struct — only the
// fields relevant to the Kind are meaningful — so emission never allocates
// beyond the event itself and sinks can switch on Kind without type
// assertions.
type Event struct {
	Cycle int64
	Kind  Kind

	// Instruction identity (per-instruction kinds).
	Seq uint64
	PC  uint64
	Op  string

	// Stage payloads.
	ROBPos     int   // Dispatch
	Value      int64 // Complete
	EA         uint64
	Level      string // Complete: deepest memory level reached ("L1"/"LLC"/"Mem")
	Poisoned   bool
	FromBuffer bool  // Dispatch: injected from the runahead buffer
	Pseudo     bool  // Commit: runahead pseudo-retirement
	PredTaken  bool  // Fetch
	Start      int64 // Commit: the instruction's fetch cycle (lifetime track)

	// Runahead interval payloads.
	Mode     string // RunaheadEnter: "buffer" or "traditional"
	ChainLen int    // RunaheadEnter: dependence-chain length (buffer mode)
	Misses   uint64 // RunaheadExit: new DRAM misses generated in the interval

	// Memory system payloads.
	Line   uint64 // CacheMiss, DRAMAccess
	Instr  bool   // CacheMiss: instruction-side miss
	Write  bool   // DRAMAccess
	RowHit bool   // DRAMAccess

	// Sample payloads.
	ROBOcc  int
	MSHROcc int
}

// Sink consumes events. Emit must not retain ev past the call — emitters
// reuse event storage. Close flushes buffered output and finalizes formats
// that need a trailer (the Chrome sink's closing bracket).
type Sink interface {
	Emit(ev *Event)
	Close() error
}

// Formats accepted by NewSink.
const (
	FormatText   = "text"
	FormatJSONL  = "jsonl"
	FormatChrome = "chrome"
)

// NewSink builds a sink writing the given format to w. Supported formats:
// "text" (the classic line-per-event log), "jsonl" (one JSON object per
// line), and "chrome" (Chrome trace_event JSON for Perfetto).
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "", FormatText:
		return NewTextSink(w), nil
	case FormatJSONL:
		return NewJSONLSink(w), nil
	case FormatChrome:
		return NewChromeSink(w), nil
	default:
		return nil, fmt.Errorf("trace: unknown format %q (have text, jsonl, chrome)", format)
	}
}

// TextSink renders the classic human-readable trace, one event per line:
//
//	cycle=123 fetch    seq=45 pc=0x400048 muli predTaken=false
//	cycle=125 dispatch seq=45 rob=17
//	cycle=127 issue    seq=45
//	cycle=128 complete seq=45 val=90
//	cycle=130 commit   seq=45
//	cycle=140 runahead enter pc=0x400080 mode=buffer chain=9
//	cycle=260 runahead exit  misses=7
//
// TextSink writes through unbuffered so lines appear as they happen (the
// live-watching use case); wrap w in a bufio.Writer for bulk capture.
type TextSink struct {
	w io.Writer
}

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{w: w}
}

// Emit implements Sink.
func (s *TextSink) Emit(ev *Event) {
	fmt.Fprintf(s.w, "cycle=%d ", ev.Cycle)
	switch ev.Kind {
	case Fetch:
		fmt.Fprintf(s.w, "fetch    seq=%d pc=%#x %s predTaken=%v", ev.Seq, ev.PC, ev.Op, ev.PredTaken)
	case Dispatch:
		fmt.Fprintf(s.w, "dispatch seq=%d pc=%#x rob=%d", ev.Seq, ev.PC, ev.ROBPos)
		if ev.FromBuffer {
			fmt.Fprint(s.w, " from=buffer")
		}
	case Issue:
		fmt.Fprintf(s.w, "issue    seq=%d %s", ev.Seq, ev.Op)
	case Complete:
		fmt.Fprintf(s.w, "complete seq=%d %s val=%d", ev.Seq, ev.Op, ev.Value)
		switch {
		case ev.Poisoned:
			fmt.Fprint(s.w, " POISONED")
		case ev.Level != "":
			fmt.Fprintf(s.w, " ea=%#x lvl=%s", ev.EA, ev.Level)
		}
	case Commit:
		kind := "commit  "
		if ev.Pseudo {
			kind = "pretire "
		}
		fmt.Fprintf(s.w, "%s seq=%d pc=%#x", kind, ev.Seq, ev.PC)
	case Squash:
		fmt.Fprintf(s.w, "squash   seq=%d pc=%#x", ev.Seq, ev.PC)
	case RunaheadEnter:
		fmt.Fprintf(s.w, "runahead enter pc=%#x mode=%s chain=%d", ev.PC, ev.Mode, ev.ChainLen)
	case RunaheadExit:
		fmt.Fprintf(s.w, "runahead exit  misses=%d", ev.Misses)
	case CacheMiss:
		side := "data"
		if ev.Instr {
			side = "instr"
		}
		fmt.Fprintf(s.w, "llcmiss  line=%#x side=%s", ev.Line, side)
	case DRAMAccess:
		op := "read"
		if ev.Write {
			op = "write"
		}
		fmt.Fprintf(s.w, "dram     line=%#x op=%s rowhit=%v", ev.Line, op, ev.RowHit)
	case Sample:
		fmt.Fprintf(s.w, "sample   rob=%d mshr=%d", ev.ROBOcc, ev.MSHROcc)
	case Mark:
		fmt.Fprintf(s.w, "mark     %s", ev.Op)
	default:
		fmt.Fprintf(s.w, "%s", ev.Kind)
	}
	io.WriteString(s.w, "\n")
}

// Close is a no-op; TextSink does not buffer.
func (s *TextSink) Close() error { return nil }

// JSONLSink writes one JSON object per event per line. Fields irrelevant to
// the event kind are omitted, so logs stay compact and diffable.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit implements Sink. The encoding is hand-rolled append-based JSON: the
// field set is small and fixed, and avoiding encoding/json keeps the sink off
// the allocator on the per-instruction hot path.
func (s *JSONLSink) Emit(ev *Event) {
	b := s.buf[:0]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendInt(b, ev.Cycle, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	switch ev.Kind {
	case Fetch, Dispatch, Issue, Complete, Commit, Squash:
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
		if ev.PC != 0 {
			b = appendHexField(b, "pc", ev.PC)
		}
		if ev.Op != "" {
			b = append(b, `,"op":"`...)
			b = append(b, ev.Op...)
			b = append(b, '"')
		}
	}
	switch ev.Kind {
	case Fetch:
		b = appendBoolField(b, "predTaken", ev.PredTaken)
	case Dispatch:
		b = append(b, `,"rob":`...)
		b = strconv.AppendInt(b, int64(ev.ROBPos), 10)
		if ev.FromBuffer {
			b = appendBoolField(b, "fromBuffer", true)
		}
	case Complete:
		b = append(b, `,"val":`...)
		b = strconv.AppendInt(b, ev.Value, 10)
		if ev.Poisoned {
			b = appendBoolField(b, "poisoned", true)
		}
		if ev.Level != "" {
			b = appendHexField(b, "ea", ev.EA)
			b = append(b, `,"level":"`...)
			b = append(b, ev.Level...)
			b = append(b, '"')
		}
	case Commit:
		if ev.Pseudo {
			b = appendBoolField(b, "pseudo", true)
		}
		b = append(b, `,"fetchCycle":`...)
		b = strconv.AppendInt(b, ev.Start, 10)
	case RunaheadEnter:
		b = appendHexField(b, "pc", ev.PC)
		b = append(b, `,"mode":"`...)
		b = append(b, ev.Mode...)
		b = append(b, `","chain":`...)
		b = strconv.AppendInt(b, int64(ev.ChainLen), 10)
	case RunaheadExit:
		b = append(b, `,"misses":`...)
		b = strconv.AppendUint(b, ev.Misses, 10)
	case CacheMiss:
		b = appendHexField(b, "line", ev.Line)
		b = appendBoolField(b, "instr", ev.Instr)
	case DRAMAccess:
		b = appendHexField(b, "line", ev.Line)
		b = appendBoolField(b, "write", ev.Write)
		b = appendBoolField(b, "rowHit", ev.RowHit)
	case Sample:
		b = append(b, `,"rob":`...)
		b = strconv.AppendInt(b, int64(ev.ROBOcc), 10)
		b = append(b, `,"mshr":`...)
		b = strconv.AppendInt(b, int64(ev.MSHROcc), 10)
	case Mark:
		b = append(b, `,"msg":`...)
		b = strconv.AppendQuote(b, ev.Op)
	}
	b = append(b, '}', '\n')
	s.buf = b
	s.w.Write(b)
}

// Close flushes the sink.
func (s *JSONLSink) Close() error { return s.w.Flush() }

func appendHexField(b []byte, name string, v uint64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, `":"0x`...)
	b = strconv.AppendUint(b, v, 16)
	b = append(b, '"')
	return b
}

func appendBoolField(b []byte, name string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	b = strconv.AppendBool(b, v)
	return b
}

// MultiSink fans every event out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(ev *Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Close closes every sink, returning the first error.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
