package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("fresh ring must be empty")
	}
	for i := 0; i < 6; i++ {
		r.Record(&Event{Cycle: int64(i), Kind: DRAMAccess, Line: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.Cycle != want {
			t.Fatalf("events[%d].Cycle = %d, want %d (oldest-first after wrap)", i, ev.Cycle, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Record(&Event{Cycle: 1, Kind: CacheMiss, Line: 0x40})
	r.Record(&Event{Cycle: 2, Kind: RunaheadEnter, PC: 0x80, Mode: "buffer"})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("unexpected events: %+v", evs)
	}
}

func TestRingDumpJSONL(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(&Event{Cycle: int64(10 + i), Kind: DRAMAccess, Line: uint64(0x1000 + i), RowHit: i%2 == 0})
	}
	r.Mark(99, "watchdog: no progress")
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want 3 (ring capacity):\n%s", len(lines), buf.String())
	}
	// Every line is valid JSON; the last is the mark.
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["kind"] != "mark" || last["msg"] != "watchdog: no progress" || last["cycle"] != float64(99) {
		t.Fatalf("mark event wrong: %v", last)
	}
	// Oldest retained event survived the wrap in order.
	if !strings.Contains(lines[0], `"cycle":13`) {
		t.Fatalf("first dumped line should be cycle 13: %q", lines[0])
	}
}

func TestRingAsSink(t *testing.T) {
	r := NewRing(16)
	var s Sink = r
	ev := Event{Cycle: 7, Kind: Squash, Seq: 3, PC: 0x44}
	s.Emit(&ev)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Events()[0].Seq != 3 {
		t.Fatal("ring must retain emitted events")
	}
	// The ring copies: mutating the caller's event after Emit must not
	// change what was recorded.
	ev.Seq = 999
	if r.Events()[0].Seq != 3 {
		t.Fatal("ring must copy events, not retain pointers")
	}
}
