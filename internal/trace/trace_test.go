package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// events is a small but representative stream: a full instruction lifetime,
// a runahead interval, memory traffic, and a counter sample.
func events() []Event {
	return []Event{
		{Cycle: 10, Kind: Fetch, Seq: 1, PC: 0x400048, Op: "muli", PredTaken: false},
		{Cycle: 12, Kind: Dispatch, Seq: 1, PC: 0x400048, ROBPos: 17},
		{Cycle: 13, Kind: Issue, Seq: 1, Op: "muli"},
		{Cycle: 16, Kind: Complete, Seq: 1, Op: "muli", Value: 90},
		{Cycle: 18, Kind: Commit, Seq: 1, PC: 0x400048, Start: 10},
		{Cycle: 20, Kind: Dispatch, Seq: 2, PC: 0x400050, ROBPos: 18, FromBuffer: true},
		{Cycle: 21, Kind: Complete, Seq: 2, Op: "ld", Value: 7, EA: 0x8000, Level: "Mem"},
		{Cycle: 22, Kind: Commit, Seq: 2, PC: 0x400050, Start: 20, Pseudo: true},
		{Cycle: 23, Kind: Squash, Seq: 3, PC: 0x400058},
		{Cycle: 40, Kind: RunaheadEnter, PC: 0x400080, Mode: "buffer", ChainLen: 9},
		{Cycle: 45, Kind: CacheMiss, Line: 0x9000},
		{Cycle: 50, Kind: DRAMAccess, Line: 0x9000, RowHit: true},
		{Cycle: 60, Kind: Sample, ROBOcc: 57, MSHROcc: 4},
		{Cycle: 90, Kind: RunaheadExit, Misses: 7},
	}
}

func emitAll(t *testing.T, s Sink) {
	t.Helper()
	evs := events()
	for i := range evs {
		s.Emit(&evs[i])
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTextSinkFormat(t *testing.T) {
	var sb strings.Builder
	emitAll(t, NewTextSink(&sb))
	out := sb.String()
	for _, want := range []string{
		"cycle=10 fetch    seq=1 pc=0x400048 muli predTaken=false",
		"cycle=12 dispatch seq=1 pc=0x400048 rob=17",
		"cycle=13 issue    seq=1 muli",
		"cycle=16 complete seq=1 muli val=90",
		"cycle=18 commit   seq=1 pc=0x400048",
		"from=buffer",
		"ea=0x8000 lvl=Mem",
		"cycle=22 pretire  seq=2",
		"cycle=23 squash   seq=3",
		"cycle=40 runahead enter pc=0x400080 mode=buffer chain=9",
		"cycle=45 llcmiss  line=0x9000 side=data",
		"cycle=50 dram     line=0x9000 op=read rowhit=true",
		"cycle=60 sample   rob=57 mshr=4",
		"cycle=90 runahead exit  misses=7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLSinkEveryLineParses(t *testing.T) {
	var sb strings.Builder
	emitAll(t, NewJSONLSink(&sb))
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(events()) {
		t.Fatalf("got %d lines, want %d", len(lines), len(events()))
	}
	kinds := map[string]bool{}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
		if _, ok := m["cycle"].(float64); !ok {
			t.Fatalf("line missing numeric cycle: %q", line)
		}
		k, ok := m["kind"].(string)
		if !ok {
			t.Fatalf("line missing kind: %q", line)
		}
		kinds[k] = true
	}
	for _, want := range []string{"fetch", "dispatch", "issue", "complete", "commit",
		"squash", "runahead-enter", "runahead-exit", "llc-miss", "dram", "sample"} {
		if !kinds[want] {
			t.Errorf("JSONL stream missing kind %q", want)
		}
	}
}

// chromeEvent mirrors the trace_event record fields the test validates.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func TestChromeSinkIsValidTraceEventJSON(t *testing.T) {
	var sb strings.Builder
	emitAll(t, NewChromeSink(&sb))
	var doc chromeDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	depth := 0
	var sawX, sawCounter, sawInstant, sawMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			depth++
		case "E":
			depth--
			if depth < 0 {
				t.Fatal("E before matching B on the runahead track")
			}
		case "X":
			sawX = true
			if ev.Dur < 0 {
				t.Errorf("negative duration slice: %+v", ev)
			}
		case "C":
			sawCounter = true
		case "i":
			sawInstant = true
		case "M":
			sawMeta = true
			continue // metadata records carry no ts
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.PID != chromePID {
			t.Errorf("event with wrong pid: %+v", ev)
		}
	}
	if depth != 0 {
		t.Errorf("unbalanced B/E slices: depth %d at end", depth)
	}
	if !sawX || !sawCounter || !sawInstant || !sawMeta {
		t.Errorf("missing record classes: X=%v C=%v i=%v M=%v", sawX, sawCounter, sawInstant, sawMeta)
	}
}

// TestChromeSinkClosesOpenInterval checks the trailer balances a trace that
// ends mid-runahead (a truncated run must still load in Perfetto).
func TestChromeSinkClosesOpenInterval(t *testing.T) {
	var sb strings.Builder
	s := NewChromeSink(&sb)
	s.Emit(&Event{Cycle: 10, Kind: RunaheadEnter, Mode: "traditional"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	depth := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" {
			depth++
		}
		if ev.Ph == "E" {
			depth--
		}
	}
	if depth != 0 {
		t.Errorf("open interval not closed: depth %d", depth)
	}
}

func TestNewSinkFactory(t *testing.T) {
	var sb strings.Builder
	for _, f := range []string{"", FormatText, FormatJSONL, FormatChrome} {
		if _, err := NewSink(f, &sb); err != nil {
			t.Errorf("NewSink(%q): %v", f, err)
		}
	}
	if _, err := NewSink("xml", &sb); err == nil {
		t.Error("NewSink accepted an unknown format")
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	var a, b strings.Builder
	m := MultiSink{NewTextSink(&a), NewJSONLSink(&b)}
	ev := Event{Cycle: 5, Kind: Issue, Seq: 9, Op: "add"}
	m.Emit(&ev)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "issue") || !strings.Contains(b.String(), `"kind":"issue"`) {
		t.Errorf("multisink did not reach both sinks: %q / %q", a.String(), b.String())
	}
}
