package simcheck

import (
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/workload"
)

func testConfig(mode core.Mode) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.WatchdogCycles = 500_000
	return cfg
}

// TestWorkloadsUnderSanitizer runs every workload kernel under the lockstep
// oracle and the per-cycle invariant sweep, in both the baseline runahead
// mode and the paper's runahead-buffer configuration. Any architectural
// divergence or structural violation fails the test through Failf.
func TestWorkloadsUnderSanitizer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full kernel suite; skipped in -short")
	}
	for _, mode := range []core.Mode{core.ModeTraditional, core.ModeBufferCC} {
		for _, name := range workload.Names() {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				p := workload.MustLoad(name)
				c := core.New(testConfig(mode), p)
				chk := Attach(c, p, Options{
					Failf: func(format string, args ...any) { t.Fatalf(format, args...) },
				})
				c.Run(5_000)
				chk.Finish()
				if chk.Commits() == 0 {
					t.Fatal("oracle saw no commits")
				}
			})
		}
	}
}

// TestDigestsDeterministic is the same-seed regression: two identical runs
// must produce byte-identical commit streams and statistics, witnessed by
// equal FNV digests.
func TestDigestsDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		p := workload.MustLoad("mcf")
		c := core.New(testConfig(core.ModeHybrid), p)
		chk := Attach(c, p, Options{
			Failf: func(format string, args ...any) { t.Fatalf(format, args...) },
		})
		st := c.Run(8_000)
		chk.Finish()
		return chk.CommitDigest(), StatsDigest(st)
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Fatalf("commit digests differ across identical runs: %#x vs %#x", c1, c2)
	}
	if s1 != s2 {
		t.Fatalf("stats digests differ across identical runs: %#x vs %#x", s1, s2)
	}
	if c1 == 0 || s1 == 0 {
		t.Fatalf("degenerate digests: commits %#x stats %#x", c1, s1)
	}
}

// TestOracleCatchesDivergence corrupts an architectural register mid-run and
// asserts the oracle reports it — the sanitizer must be able to fire.
func TestOracleCatchesDivergence(t *testing.T) {
	p := workload.MustLoad("mcf")
	c := core.New(testConfig(core.ModeNone), p)
	caught := false
	chk := Attach(c, p, Options{
		Failf: func(format string, args ...any) {
			caught = true
			panic(stopChecking{})
		},
	})
	defer chk.Detach()
	// Warm up cleanly, then skew the reference interpreter's register file
	// so the next commit comparison must mismatch.
	c.Run(500)
	chk.in.Regs[3] += 1
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopChecking); !ok {
					panic(r)
				}
			}
		}()
		c.Run(2_000)
	}()
	if !caught {
		t.Fatal("oracle did not report an injected architectural divergence")
	}
}

type stopChecking struct{}
