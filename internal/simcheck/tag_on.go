//go:build simcheck

package simcheck

// TagEnabled reports whether the binary was built with the simcheck build
// tag, which forces the sanitizer on for every harness run (`make check`).
const TagEnabled = true
