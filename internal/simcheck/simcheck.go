// Package simcheck is the runtime sanitizer for the simulator: a lockstep
// architectural oracle plus per-cycle structural invariant sweeps.
//
// Attach runs the internal/prog functional interpreter beside the timing
// core. At every correct-path retirement the oracle steps the interpreter
// one uop and compares PCs, effective addresses, destination values, branch
// outcomes, and the full architectural register file; any divergence dumps
// the offending uop, the cycle, and the run's CPI-stack context. Every cycle
// the cheap structural invariants run (ROB seq order, queue-occupancy and
// free-list conservation, MSHR conservation), and every DeepInterval cycles
// the full scans run (exact physical-register partition, LRU stack
// integrity, inclusive-LLC containment).
//
// The sanitizer is enabled by the harness -check path, or unconditionally in
// binaries built with the simcheck build tag (`go test -tags simcheck ./...`
// — the `make check` suite). A commit-stream FNV digest plus StatsDigest
// give the byte-identical fingerprints the determinism regression tests
// compare across same-seed runs.
package simcheck

import (
	"fmt"
	"sync"

	"runaheadsim/internal/core"
	"runaheadsim/internal/isa"
	"runaheadsim/internal/metrics"
	"runaheadsim/internal/prog"
)

// Oracle telemetry: how much checking a process has done and whether any of
// it failed. Published at Finish/Detach (never per commit) so an attached
// checker's hot path stays the comparisons themselves.
var scm struct {
	once                sync.Once
	checked, violations *metrics.Counter
}

func regMetrics() {
	scm.once.Do(func() {
		scm.checked = metrics.Default.Counter("simcheck_commits_checked_total",
			"correct-path retirements compared against the architectural oracle")
		scm.violations = metrics.Default.Counter("simcheck_violations_total",
			"oracle divergences and invariant violations detected")
	})
}

// Options tunes an attached Checker.
type Options struct {
	// DeepInterval is the cycle period of the full-scan invariants (0 = 64).
	// The cheap conservation checks run every cycle regardless.
	DeepInterval int64
	// Failf handles a detected violation. The default panics, which is what
	// command-line -check runs want; tests install t.Fatalf-style handlers.
	Failf func(format string, args ...any)
}

// Checker is an attached sanitizer. All methods are single-goroutine, like
// the core itself.
type Checker struct {
	c    *core.Core
	in   *prog.Interp
	opts Options

	commits   uint64
	published uint64 // commits already flushed to the metrics registry
	lastSeq   uint64
	digest    uint64
}

// Attach hooks a Checker onto c, which must have been built from p and not
// yet run. The interpreter gets its own copy of p's initial memory image, so
// the oracle is blind to everything but the core's committed state.
func Attach(c *core.Core, p *prog.Program, opts Options) *Checker {
	if opts.DeepInterval <= 0 {
		opts.DeepInterval = 64
	}
	if opts.Failf == nil {
		opts.Failf = func(format string, args ...any) {
			panic("simcheck: " + fmt.Sprintf(format, args...))
		}
	}
	k := &Checker{c: c, in: prog.NewInterp(p), opts: opts, digest: fnvOffset}
	c.SetCommitHook(k.onCommit)
	c.SetCycleHook(k.onCycle)
	return k
}

// Detach removes the checker's hooks from the core.
func (k *Checker) Detach() {
	k.c.SetCommitHook(nil)
	k.c.SetCycleHook(nil)
}

// Commits returns the number of correct-path retirements observed.
func (k *Checker) Commits() uint64 { return k.commits }

// CommitDigest returns the FNV-1a digest of the observed commit stream
// (PC, value, and effective address of every retirement). Two same-seed
// runs must produce identical digests.
func (k *Checker) CommitDigest() uint64 { return k.digest }

// onCommit is the lockstep oracle: one interpreter step per retirement.
func (k *Checker) onCommit(d *core.DynInst) {
	k.commits++
	if k.commits > 1 && d.Seq <= k.lastSeq {
		k.failf(d, "ROB seq order broken at commit: seq %d retired after seq %d", d.Seq, k.lastSeq)
	}
	k.lastSeq = d.Seq
	if d.Poisoned {
		k.failf(d, "poisoned uop retired on the correct path")
	}
	if want := k.in.PC(); d.PC != want {
		k.failf(d, "commit stream diverged: core retired PC %#x, oracle expects %#x", d.PC, want)
	}
	e := k.in.Step()
	u := d.U
	switch {
	case u.Op.IsLoad():
		if d.EA != e.EA {
			k.failf(d, "load EA mismatch: core %#x, oracle %#x", d.EA, e.EA)
		}
		if d.Value != e.Value {
			k.failf(d, "load value mismatch at EA %#x: core %d, oracle %d", e.EA, d.Value, e.Value)
		}
	case u.Op.IsStore():
		if d.EA != e.EA {
			k.failf(d, "store EA mismatch: core %#x, oracle %#x", d.EA, e.EA)
		}
		if d.StoreData != e.Value {
			k.failf(d, "store data mismatch at EA %#x: core %d, oracle %d", e.EA, d.StoreData, e.Value)
		}
	case u.Op.IsBranch():
		if d.Taken != e.Taken {
			k.failf(d, "branch outcome mismatch: core taken=%v, oracle taken=%v", d.Taken, e.Taken)
		}
		if u.HasDst() && d.Value != e.Value {
			k.failf(d, "link value mismatch: core %d, oracle %d", d.Value, e.Value)
		}
	default:
		if u.HasDst() && d.Value != e.Value {
			k.failf(d, "result mismatch: core %d, oracle %d", d.Value, e.Value)
		}
	}
	regs := k.c.ArchRegs()
	for r := 0; r < isa.NumArchRegs; r++ {
		if regs[r] != k.in.Regs[r] {
			k.failf(d, "architectural r%d diverged after commit: core %d, oracle %d", r, regs[r], k.in.Regs[r])
		}
	}
	k.digest = fnvMix(k.digest, d.PC)
	k.digest = fnvMix(k.digest, uint64(e.Value))
	k.digest = fnvMix(k.digest, e.EA)
}

// onCycle runs the structural invariant sweep.
func (k *Checker) onCycle() {
	deep := k.c.Now()%k.opts.DeepInterval == 0
	if err := k.c.CheckInvariants(deep); err != nil {
		k.failf(nil, "structural invariant violated: %v", err)
	}
}

// Finish runs the end-of-run checks: the full invariant scan and bit-exact
// equality of the committed memory image against the oracle's. Call it after
// the last Run on the core.
func (k *Checker) Finish() {
	if err := k.c.CheckInvariants(true); err != nil {
		k.failf(nil, "structural invariant violated at finish: %v", err)
	}
	regs := k.c.ArchRegs()
	for r := 0; r < isa.NumArchRegs; r++ {
		if regs[r] != k.in.Regs[r] {
			k.failf(nil, "architectural r%d diverged at finish: core %d, oracle %d", r, regs[r], k.in.Regs[r])
		}
	}
	if !k.c.Mem().Equal(k.in.Mem) {
		addr, _ := k.c.Mem().FirstDiff(k.in.Mem)
		k.failf(nil, "committed memory diverged at %#x: core %d, oracle %d",
			addr, k.c.Mem().Read64(addr), k.in.Mem.Read64(addr))
	}
	k.publish()
}

// publish flushes the checked-commit delta to the metrics registry.
func (k *Checker) publish() {
	if !metrics.Enabled {
		return
	}
	regMetrics()
	if d := k.commits - k.published; d != 0 {
		scm.checked.Add(d)
		k.published = k.commits
	}
}

// failf reports a violation with full context: the offending uop (when the
// failure is commit-side), the cycle, the CPI-stack shape of the run so far,
// and the machine-state dump.
func (k *Checker) failf(d *core.DynInst, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if metrics.Enabled {
		regMetrics()
		scm.violations.Inc()
	}
	// Pin the violation into the flight recorder before reporting: Failf
	// usually panics, and the recover site dumps the ring — which should end
	// with the why, not just the last miss before it.
	k.c.FlightMark("simcheck: " + msg)
	k.publish()
	uop := ""
	if d != nil {
		uop = fmt.Sprintf("\n  uop: seq=%d pc=%#x %v runahead=%v fromBuffer=%v", d.Seq, d.PC, d.U.Op, d.Runahead, d.FromBuffer)
	}
	k.opts.Failf("%s%s\n  cycle=%d commit#%d\n  cpi-stack: %s\n  %s",
		msg, uop, k.c.Now(), k.commits, cpiContext(k.c.Stats()), k.c.DebugDump())
}

// cpiContext renders the CPI stack one-line, for mismatch reports.
func cpiContext(st *core.Stats) string {
	s := ""
	for _, b := range core.CPIBuckets() {
		if b > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", b, st.CPIStack[b])
	}
	return s
}
