package simcheck

import "runaheadsim/internal/core"

// FNV-1a, 64-bit. Hand-rolled (rather than hash/fnv) so the digest is a
// plain uint64 folded as values arrive, with no allocation on the commit
// path.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one 64-bit value into the digest, low byte first.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// hashBytes is FNV-1a over a byte string.
func hashBytes(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// StatsDigest fingerprints a run's full counter set. It hashes the sorted
// text rendering of every counter (the same stable format the -stats dump
// uses), so two same-seed runs must produce byte-identical statistics to
// digest equal.
func StatsDigest(st *core.Stats) uint64 {
	return hashBytes(fnvOffset, st.Counters().String())
}
