package simcheck

import (
	"fmt"

	"runaheadsim/internal/core"
	"runaheadsim/internal/prog"
)

// AttachResumed hooks a Checker onto a core whose architectural state is not
// the program entry — one restored from a snapshot (core.RestoreCore) or
// seeded from a functional checkpoint (core.NewFromArch). The oracle
// interpreter is synchronized to the core's committed state: a clone of its
// memory image, its architectural registers, and its resume PC. The core must
// be quiescent and not yet run since restore, so the next correct-path
// retirement is exactly the uop at the resume PC.
func AttachResumed(c *core.Core, p *prog.Program, opts Options) *Checker {
	if opts.DeepInterval <= 0 {
		opts.DeepInterval = 64
	}
	if opts.Failf == nil {
		opts.Failf = func(format string, args ...any) {
			panic("simcheck: " + fmt.Sprintf(format, args...))
		}
	}
	idx := p.IndexOf(c.FetchPC())
	if idx < 0 {
		panic(fmt.Sprintf("simcheck: resumed core's fetch PC %#x is not valid text", c.FetchPC()))
	}
	in := prog.NewInterpAt(p, prog.ArchState{
		Mem:   c.Mem().Clone(),
		Regs:  c.ArchRegs(),
		Index: idx,
	})
	k := &Checker{c: c, in: in, opts: opts, digest: fnvOffset}
	c.SetCommitHook(k.onCommit)
	c.SetCycleHook(k.onCycle)
	return k
}
