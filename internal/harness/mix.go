package harness

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"runaheadsim/internal/metrics"
	"runaheadsim/internal/multicore"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/simcheck"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// Multi-programmed methodology (the standard weighted-speedup harness, e.g.
// Snavely & Tullsen's symbiotic-job-scheduling metrics): every core runs its
// own kernel against the shared LLC + DRAM until each has committed the
// per-core quota. A core that finishes early keeps executing — its memory
// traffic is the contention under study — but its measurement stops at the
// quota crossing, so per-core IPC is quota/finish-cycle. Alone-IPCs come
// from the memoized single-core Runner under the identical configuration:
//
//	WeightedSpeedup = Σ_i IPC_shared,i / IPC_alone,i   (N = no interference)
//	Slowdown_i      = IPC_alone,i / IPC_shared,i       (≥ 1 under contention)
//	HmeanSlowdown   = N / Σ_i (1/Slowdown_i)           (lower is better)
//	MaxSlowdown     = max_i Slowdown_i                 (fairness: worst victim)

// MixCore is one core's row of a multi-programmed result.
type MixCore struct {
	Core  int    `json:"core"`
	Bench string `json:"bench"`

	Committed    uint64 `json:"committed_uops"`
	FinishCycles int64  `json:"finish_cycles"`

	IPCShared float64 `json:"ipc_shared"`
	IPCAlone  float64 `json:"ipc_alone"`
	Slowdown  float64 `json:"slowdown"`

	// Shared-resource contention seen by this core: average cycles each LLC
	// access waited in the arbiter, and this core's DRAM row-hit rate under
	// interleaved traffic.
	LLCArbWaitAvg float64 `json:"llc_arb_wait_avg_cycles"`
	DRAMRowHitPct float64 `json:"dram_row_hit_pct"`
}

// MixResult is one multi-programmed run: a mix of kernels, one per core,
// under one configuration.
type MixResult struct {
	Mix    []string  `json:"mix"`
	Config RunConfig `json:"-"`
	Label  string    `json:"config"`

	Cores []MixCore `json:"-"` // serialized keyed by core ID, see MarshalJSON

	WeightedSpeedup float64 `json:"weighted_speedup"`
	HmeanSlowdown   float64 `json:"hmean_slowdown"`
	MaxSlowdown     float64 `json:"max_slowdown"`
}

// MarshalJSON emits per-core stats keyed by core ID ("0", "1", ...) rather
// than positionally, so consumers can join cores across configurations
// without relying on array order.
func (m *MixResult) MarshalJSON() ([]byte, error) {
	type alias MixResult // drops the method, keeping the tagged fields
	perCore := make(map[string]MixCore, len(m.Cores))
	for _, c := range m.Cores {
		perCore[strconv.Itoa(c.Core)] = c
	}
	return json.Marshal(struct {
		*alias
		PerCore map[string]MixCore `json:"cores"`
	}{(*alias)(m), perCore})
}

// mixKey memoizes mixes the same way key memoizes single runs.
func mixKey(mix []string, rc RunConfig) string {
	return "mix:" + strings.Join(mix, "+") + "|" + key("", rc)
}

// RunMix simulates (or returns the memoized run of) one kernel mix — core i
// running mix[i] — under one configuration on a cluster sharing one LLC and
// DRAM controller. Alone-IPC reference runs come from the same runner's
// single-core memo cache, so a sweep over configurations shares them.
func (r *Runner) RunMix(mix []string, rc RunConfig) *MixResult {
	k := mixKey(mix, rc)
	r.mu.Lock()
	e := r.mixCache[k]
	if e == nil {
		e = &mixEntry{}
		r.mixCache[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.res = r.runMix(mix, rc) })
	return e.res
}

// mixEntry is one memoized mix run; once gates the single simulation.
type mixEntry struct {
	once sync.Once
	res  *MixResult
}

func (r *Runner) runMix(mix []string, rc RunConfig) *MixResult {
	if len(mix) == 0 {
		panic("harness: empty kernel mix")
	}
	cfg := r.cfgFor(rc)
	progs := make([]*prog.Program, len(mix))
	// Warmup must cover the slowest-warming member: the cluster runs every
	// core to the same warmup quota, so each member gets at least its own
	// single-core warmup and the shared LLC reaches steady occupancy.
	var warmup uint64
	for i, b := range mix {
		spec, ok := workload.SpecOf(b)
		if !ok {
			panic(fmt.Sprintf("harness: unknown benchmark %q in mix", b))
		}
		if w := r.opts.warmup(spec.Class); w > warmup {
			warmup = w
		}
		progs[i] = workload.MustLoad(b)
	}

	label := rc.Label() + "/mc" + strconv.Itoa(len(mix))
	mixName := strings.Join(mix, "+")
	m := r.opts.Monitor
	if m != nil {
		m.RunStart(mixName, label)
		defer m.RunDone(mixName, label)
	}
	if r.opts.Progress != nil {
		r.opts.Progress(mixName, label)
	}

	cl := multicore.New(cfg, progs)
	var checkers []*simcheck.Checker
	if r.opts.Check || simcheck.TagEnabled {
		for i, c := range cl.Cores() {
			checkers = append(checkers, simcheck.Attach(c, progs[i], simcheck.Options{}))
		}
	}
	// Per-core progress units: the Monitor's interval slot carries the core
	// index, so /progress shows one labeled row per core of the mix.
	phase := func(name string, total uint64) {
		if m == nil {
			return
		}
		for i, b := range mix {
			m.Phase(b, label, i, name, total)
		}
	}
	var report func(int, uint64)
	if m != nil {
		report = func(i int, committed uint64) { m.Progress(mix[i], label, i, committed) }
	}

	phase("warmup", warmup)
	cl.RunProgress(warmup, progressChunk, report)
	cl.ResetStats()
	phase("measure", r.opts.MeasureUops)
	sts := cl.RunProgress(r.opts.MeasureUops, progressChunk, report)
	if m != nil {
		for i, b := range mix {
			m.Done(b, label, i)
		}
	}
	for _, chk := range checkers {
		chk.Finish()
	}
	if err := cl.CheckInvariants(true); err != nil {
		panic(fmt.Sprintf("harness: mix %s/%s: %v", mixName, label, err))
	}

	res := &MixResult{Mix: mix, Config: rc, Label: label}
	quota := r.opts.MeasureUops
	var ws, invSum, maxSd float64
	h := cl.Hierarchy()
	for i, b := range mix {
		fin := cl.FinishCycle(i)
		ipcShared := stats.Div(float64(quota), float64(fin))
		ipcAlone := r.Result(b, rc).IPC
		sd := stats.Div(ipcAlone, ipcShared)
		ws += stats.Div(ipcShared, ipcAlone)
		invSum += stats.Div(1, sd)
		if sd > maxSd {
			maxSd = sd
		}
		rs := h.Req(i)
		dr := h.DRAM().PerRequestor[i]
		mc := MixCore{
			Core: i, Bench: b,
			Committed: sts[i].Committed, FinishCycles: fin,
			IPCShared: ipcShared, IPCAlone: ipcAlone, Slowdown: sd,
		}
		if rs.LLCArbGrants > 0 {
			mc.LLCArbWaitAvg = float64(rs.LLCArbWaitCycles) / float64(rs.LLCArbGrants)
		}
		if acc := dr.RowHits + dr.RowConflicts; acc > 0 {
			mc.DRAMRowHitPct = 100 * float64(dr.RowHits) / float64(acc)
		}
		res.Cores = append(res.Cores, mc)
	}
	res.WeightedSpeedup = ws
	res.HmeanSlowdown = stats.Div(float64(len(mix)), invSum)
	res.MaxSlowdown = maxSd
	publishMixMetrics(res)
	return res
}

// DefaultMix returns the default n-core kernel mix: the memory-bound
// rotation the memory-system benchmarks use, truncated or cycled to n.
func DefaultMix(n int) []string {
	pool := DefaultBenchMemBenches()
	mix := make([]string, n)
	for i := range mix {
		mix[i] = pool[i%len(pool)]
	}
	return mix
}

// MixConfigs are the two systems the multi-programmed comparison reports:
// the baseline and the paper's runahead buffer, whose filtered prefetch
// stream is the contention under study.
func MixConfigs() []RunConfig {
	return []RunConfig{Baseline, Buffer}
}

// MixTable renders multi-programmed results — per-core rows under each
// configuration, then the mix-level weighted-speedup/fairness summary.
func MixTable(results []*MixResult) Table {
	n := 0
	if len(results) > 0 {
		n = len(results[0].Mix)
	}
	t := Table{
		ID:    "multiprog",
		Title: fmt.Sprintf("Multi-programmed mix (%d cores): per-core IPC, weighted speedup, fairness", n),
		Columns: []string{"Config", "Core", "Bench", "IPC alone", "IPC shared", "Slowdown",
			"LLC arb wait", "DRAM row hit"},
	}
	for _, res := range results {
		for _, c := range res.Cores {
			t.AddRow(res.Config.Label(), strconv.Itoa(c.Core), c.Bench,
				f2(c.IPCAlone), f2(c.IPCShared), f2(c.Slowdown),
				f1(c.LLCArbWaitAvg), pct(c.DRAMRowHitPct))
		}
		t.AddRow(res.Config.Label(), "all", "(mix)",
			"", fmt.Sprintf("WS=%.2f/%d", res.WeightedSpeedup, len(res.Cores)),
			fmt.Sprintf("hmean=%.2f", res.HmeanSlowdown),
			fmt.Sprintf("max=%.2f", res.MaxSlowdown), "")
	}
	t.Notes = append(t.Notes,
		"WS = weighted speedup, Σ IPC_shared/IPC_alone (N = no interference); slowdowns: alone/shared, lower is better")
	if len(results) == 2 {
		d := results[1].WeightedSpeedup - results[0].WeightedSpeedup
		t.Notes = append(t.Notes, fmt.Sprintf("%s vs %s weighted speedup: %+0.2f",
			results[1].Config.Label(), results[0].Config.Label(), d))
	}
	return t
}

// Per-core mix gauges, registered once per (core, metric) name. The registry
// has no label dimension, so the core ID is part of the instrument name —
// "multicore_core0_ipc_shared_x1000" — which keeps Prometheus exposition
// flat while still separating cores.
var mixMetricsMu sync.Mutex

func publishMixMetrics(res *MixResult) {
	if !metrics.Enabled {
		return
	}
	mixMetricsMu.Lock()
	defer mixMetricsMu.Unlock()
	r := metrics.Default
	for _, c := range res.Cores {
		id := strconv.Itoa(c.Core)
		r.Gauge("multicore_core"+id+"_ipc_shared_x1000",
			"core "+id+" multi-programmed IPC under the shared memory system, x1000").Set(int64(1000 * c.IPCShared))
		r.Gauge("multicore_core"+id+"_slowdown_x1000",
			"core "+id+" slowdown vs running alone (alone IPC / shared IPC), x1000").Set(int64(1000 * c.Slowdown))
		r.Gauge("multicore_core"+id+"_finish_cycles",
			"cycle at which core "+id+" reached the measurement quota").Set(c.FinishCycles)
	}
	r.Gauge("multicore_weighted_speedup_x1000",
		"weighted speedup of the last multi-programmed mix, x1000").Set(int64(1000 * res.WeightedSpeedup))
	r.Gauge("multicore_max_slowdown_x1000",
		"max per-core slowdown of the last multi-programmed mix, x1000").Set(int64(1000 * res.MaxSlowdown))
}
